/**
 * @file
 * Shared helpers for the bench_* executables.
 *
 * Every bench main calls guardBuildType() first: numbers from an
 * unoptimized build are not comparable to the recorded perf
 * trajectory (BENCH_*.json), so non-Release builds get a prominent
 * stderr banner, and JSON-emitting benches must tag their reports
 * with buildType() so a stray Debug run can be identified (and
 * rejected) after the fact.
 */

#ifndef IADM_BENCH_COMMON_HPP
#define IADM_BENCH_COMMON_HPP

#include <cstdio>
#include <string_view>

namespace iadm::bench {

/** CMAKE_BUILD_TYPE the binary was compiled under. */
inline const char *
buildType()
{
#ifdef IADM_BENCH_BUILD_TYPE
    return IADM_BENCH_BUILD_TYPE;
#else
    return "unknown";
#endif
}

/** True for the optimized build types whose numbers are trustable. */
inline bool
optimizedBuild()
{
    const std::string_view bt = buildType();
    return bt == "Release" || bt == "RelWithDebInfo" ||
           bt == "MinSizeRel";
}

/** Warn loudly when benchmark numbers will be meaningless. */
inline void
guardBuildType()
{
    if (optimizedBuild())
        return;
    std::fprintf(
        stderr,
        "\n"
        "*** WARNING ********************************************\n"
        "*** This benchmark was built with CMAKE_BUILD_TYPE=%s\n"
        "*** (not an optimized build).  Timings are meaningless\n"
        "*** and must not be recorded in the perf trajectory.\n"
        "*** Rebuild with -DCMAKE_BUILD_TYPE=Release.\n"
        "********************************************************\n\n",
        buildType());
}

} // namespace iadm::bench

#endif // IADM_BENCH_COMMON_HPP
