/**
 * @file
 * Experiment E5 (extension): the Section 5 network controller.
 * Steady-state tag lookups are cache hits; a fault event pays one
 * targeted invalidation sweep.  The report compares amortized
 * lookup cost against naive per-message REROUTE under a live fault
 * event stream.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/controller.hpp"
#include "fault/injection.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const Label n_size = 64;
    const topo::IadmTopology net(n_size);
    Rng rng(2718);
    core::NetworkController ctl(net);
    const auto links = net.allLinks();
    std::vector<topo::Link> down;

    std::uint64_t messages = 0;
    for (int epoch = 0; epoch < 50; ++epoch) {
        // A burst of traffic...
        for (int k = 0; k < 2000; ++k) {
            const auto s = static_cast<Label>(rng.uniform(n_size));
            const auto d = static_cast<Label>(rng.uniform(n_size));
            (void)ctl.tagFor(s, d);
            ++messages;
        }
        // ...then a fault event.
        if (!down.empty() && rng.chance(0.4)) {
            const auto idx = rng.uniform(down.size());
            ctl.linkRepaired(down[idx]);
            down.erase(down.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        } else {
            const auto &l = links[rng.uniform(links.size())];
            ctl.linkFailed(l);
            down.push_back(l);
        }
    }
    const auto &st = ctl.stats();
    std::cout << "=== E5: network controller under a live fault "
                 "stream (N=64) ===\n";
    std::cout << "  messages: " << messages << ", fault events: 50\n";
    std::cout << "  REROUTE computes: " << st.computes
              << "  (vs " << messages
              << " for naive per-message recomputation)\n";
    std::cout << "  cache hits: " << st.hits << " ("
              << std::fixed << std::setprecision(1)
              << 100.0 * static_cast<double>(st.hits) /
                     static_cast<double>(st.lookups)
              << "%), invalidations: " << st.invalidations << "\n";
    std::cout << "  compute amplification: " << std::setprecision(3)
              << static_cast<double>(st.computes) /
                     static_cast<double>(messages)
              << " REROUTE calls per message\n\n";
}

void
BM_ControllerLookupSteadyState(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    core::NetworkController ctl(net);
    for (Label s = 0; s < 64; ++s)
        for (Label d = 0; d < 64; ++d)
            (void)ctl.tagFor(s, d); // warm the cache
    Label s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctl.tagFor(s, (s * 31 + 7) % 64));
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_ControllerLookupSteadyState);

void
BM_NaiveRerouteLookup(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    fault::FaultSet none;
    Label s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::universalRoute(net, none, s, (s * 31 + 7) % 64)
                .ok);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_NaiveRerouteLookup);

void
BM_ControllerFaultEvent(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    core::NetworkController ctl(net);
    for (Label s = 0; s < 64; ++s)
        for (Label d = 0; d < 64; ++d)
            (void)ctl.tagFor(s, d);
    const auto link = net.plusLink(2, 17);
    for (auto _ : state) {
        ctl.linkFailed(link);
        ctl.linkRepaired(link);
    }
}
BENCHMARK(BM_ControllerFaultEvent);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
