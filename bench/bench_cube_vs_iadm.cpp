/**
 * @file
 * Experiment C9: "the IADM network can be regarded as a
 * fault-tolerant ICube network" (Section 1).  The bare ICube has
 * exactly one path per pair — every fault on it is fatal — while
 * the IADM's spare links let REROUTE keep pairs connected.  The
 * report sweeps fault counts and compares routable-pair fractions,
 * for both random faults and faults restricted to the embedded
 * ICube's own links; benchmarks time the two routers.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/oracle.hpp"
#include "core/reroute.hpp"
#include "fault/injection.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const Label n_size = 64;
    const topo::IadmTopology iadm(n_size);
    const topo::ICubeTopology cube(n_size);
    Rng rng(65537);

    std::cout << "=== C9: routable pairs — bare ICube vs IADM with "
                 "REROUTE (N=64) ===\n";
    std::cout << "(faults drawn from the ICube's own links, so both "
                 "networks see them)\n";
    std::cout << std::setw(8) << "faults" << std::setw(12)
              << "ICube" << std::setw(12) << "IADM" << std::setw(14)
              << "IADM gain" << "\n";
    for (std::size_t f : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::size_t total = 0, cube_ok = 0, iadm_ok = 0;
        for (int trial = 0; trial < 120; ++trial) {
            // Pick faults among the ICube's links (which are also
            // IADM links).
            const auto cube_links = cube.allLinks();
            fault::FaultSet fs;
            for (std::size_t idx :
                 rng.sample(cube_links.size(), f))
                fs.blockLink(cube_links[idx]);
            for (int k = 0; k < 15; ++k) {
                const auto s =
                    static_cast<Label>(rng.uniform(n_size));
                const auto d =
                    static_cast<Label>(rng.uniform(n_size));
                ++total;
                cube_ok +=
                    core::icubeRoute(cube, fs, s, d).has_value();
                iadm_ok += core::universalRoute(iadm, fs, s, d).ok;
            }
        }
        const double pc =
            100.0 * static_cast<double>(cube_ok) / total;
        const double pi =
            100.0 * static_cast<double>(iadm_ok) / total;
        std::cout << std::setw(8) << f << std::setw(11) << std::fixed
                  << std::setprecision(1) << pc << "%"
                  << std::setw(11) << pi << "%" << std::setw(12)
                  << std::setprecision(2) << (pi - pc)
                  << "pp\n";
    }
    std::cout
        << "\nWith nonstraight-only faults the IADM loses nothing "
           "at all:\n";
    std::cout << std::setw(8) << "faults" << std::setw(12)
              << "ICube" << std::setw(12) << "IADM" << "\n";
    for (std::size_t f : {4u, 16u, 64u}) {
        std::size_t total = 0, cube_ok = 0, iadm_ok = 0;
        for (int trial = 0; trial < 120; ++trial) {
            // Nonstraight (cube-exchange) links of the ICube only.
            std::vector<topo::Link> exchange;
            for (const auto &l : cube.allLinks())
                if (l.kind != topo::LinkKind::Straight)
                    exchange.push_back(l);
            fault::FaultSet fs;
            for (std::size_t idx : rng.sample(exchange.size(), f))
                fs.blockLink(exchange[idx]);
            for (int k = 0; k < 15; ++k) {
                const auto s =
                    static_cast<Label>(rng.uniform(n_size));
                const auto d =
                    static_cast<Label>(rng.uniform(n_size));
                ++total;
                cube_ok +=
                    core::icubeRoute(cube, fs, s, d).has_value();
                iadm_ok += core::universalRoute(iadm, fs, s, d).ok;
            }
        }
        std::cout << std::setw(8) << f << std::setw(11) << std::fixed
                  << std::setprecision(1)
                  << 100.0 * static_cast<double>(cube_ok) / total
                  << "%" << std::setw(11)
                  << 100.0 * static_cast<double>(iadm_ok) / total
                  << "%\n";
    }
    std::cout << "\n";
}

void
BM_ICubeTagRoute(benchmark::State &state)
{
    const topo::ICubeTopology cube(256);
    fault::FaultSet none;
    Label s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::icubeRoute(cube, none, s, (s * 97 + 13) % 256));
        s = (s + 1) % 256;
    }
}
BENCHMARK(BM_ICubeTagRoute);

void
BM_IadmReroute256(benchmark::State &state)
{
    const topo::IadmTopology iadm(256);
    fault::FaultSet none;
    Label s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::universalRoute(iadm, none, s, (s * 97 + 13) % 256)
                .ok);
        s = (s + 1) % 256;
    }
}
BENCHMARK(BM_IadmReroute256);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
