/**
 * @file
 * Experiment E2 (extension): sender-computed versus dynamic
 * (in-network) TSDT rerouting — the implementation decision Section
 * 4 leaves open.  Both deliver identically (they run the same
 * algorithm); the report quantifies the dynamic walk's extra
 * movement (backtrack hops) and signaling (probes) as blockage
 * density grows, which is the cost a system designer trades against
 * the sender's need for a global blockage map.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/distributed.hpp"
#include "fault/injection.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const Label n_size = 64;
    const topo::IadmTopology net(n_size);
    Rng rng(777);

    std::cout << "=== E2: dynamic vs sender-side TSDT rerouting "
                 "(N=64) ===\n";
    std::cout << std::setw(8) << "faults" << std::setw(12)
              << "delivered" << std::setw(12) << "fwd hops"
              << std::setw(12) << "back hops" << std::setw(10)
              << "probes" << std::setw(10) << "flips"
              << std::setw(10) << "rewrites" << "\n";
    for (std::size_t f : {0u, 8u, 24u, 64u, 128u}) {
        std::uint64_t fwd = 0, back = 0, probes = 0, flips = 0,
                      rw = 0;
        unsigned delivered = 0, total = 0;
        for (int trial = 0; trial < 60; ++trial) {
            const auto fs = fault::randomLinkFaults(net, f, rng);
            for (int k = 0; k < 20; ++k) {
                const auto s =
                    static_cast<Label>(rng.uniform(n_size));
                const auto d =
                    static_cast<Label>(rng.uniform(n_size));
                const auto res =
                    core::distributedRoute(net, fs, s, d);
                ++total;
                if (!res.delivered)
                    continue;
                ++delivered;
                fwd += res.forwardHops;
                back += res.backtrackHops;
                probes += res.probes;
                flips += res.flips;
                rw += res.rewrites;
            }
        }
        const double dd = delivered ? delivered : 1;
        std::cout << std::setw(8) << f << std::setw(11)
                  << std::fixed << std::setprecision(1)
                  << 100.0 * delivered / total << "%"
                  << std::setw(12) << std::setprecision(2)
                  << fwd / dd << std::setw(12) << back / dd
                  << std::setw(10) << std::setprecision(2)
                  << probes / dd << std::setw(10) << flips / dd
                  << std::setw(10) << rw / dd << "\n";
    }
    std::cout << "(sender-side REROUTE always uses exactly n = 6 "
                 "hops; the dynamic walk\npays the backtracking in "
                 "message movement instead of global knowledge)\n\n";
}

void
BM_DistributedWalk(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(11);
    const auto fs = fault::randomLinkFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    Label s = 0;
    for (auto _ : state) {
        auto res = core::distributedRoute(net, fs, s, (s + 37) % 64);
        benchmark::DoNotOptimize(res.delivered);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_DistributedWalk)->Arg(0)->Arg(16)->Arg(64);

void
BM_SenderSideReroute(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(11);
    const auto fs = fault::randomLinkFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    Label s = 0;
    for (auto _ : state) {
        auto res = core::universalRoute(net, fs, s, (s + 37) % 64);
        benchmark::DoNotOptimize(res.ok);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_SenderSideReroute)->Arg(0)->Arg(16)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
