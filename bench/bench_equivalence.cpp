/**
 * @file
 * Experiment E4 (extension): the cube-family equivalence premise
 * ([16][17][20][21]) checked mechanically.  The report proves every
 * pair of cube-type networks isomorphic at N=8 by search and
 * verifies the closed-form witnesses at larger N; the benchmarks
 * time verification and search.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "topology/cube_family.hpp"
#include "topology/equivalence.hpp"
#include "topology/icube.hpp"

namespace {

using namespace iadm;
using namespace iadm::topo;

void
printReport()
{
    std::cout << "=== E4: cube-family pairwise isomorphism (search, "
                 "N=8) ===\n";
    const ICubeTopology cube(8);
    const GeneralizedCubeTopology gc(8);
    const OmegaTopology omega(8);
    const BaselineTopology baseline(8);
    const FlipTopology flip(8);
    const MultistageTopology *nets[] = {&cube, &gc, &omega,
                                        &baseline, &flip};
    for (const auto *a : nets) {
        std::cout << "  " << a->name() << ":";
        for (const auto *b : nets) {
            const auto maps = findLayeredIsomorphism(*a, *b);
            std::cout << " "
                      << (maps && verifyColumnIsomorphism(*a, *b,
                                                          *maps)
                              ? "iso"
                              : "NO!");
        }
        std::cout << "\n";
    }

    std::cout << "\nClosed-form witnesses at larger N:\n";
    for (Label n_size : {16u, 64u, 256u}) {
        const ICubeTopology c(n_size);
        const GeneralizedCubeTopology g(n_size);
        const FlipTopology f(n_size);
        const bool rev_ok = verifyColumnIsomorphism(
            c, g, bitReversalIsomorphism(n_size));
        const bool id_ok = verifyColumnIsomorphism(
            c, f, identityIsomorphism(n_size));
        std::cout << "  N=" << n_size
                  << ": ICube ~ GC via bit reversal: "
                  << (rev_ok ? "yes" : "NO")
                  << "; ICube = Flip: " << (id_ok ? "yes" : "NO")
                  << "\n";
    }
    std::cout << "\n";
}

void
BM_VerifyBitReversalWitness(benchmark::State &state)
{
    const Label n_size = static_cast<Label>(state.range(0));
    const ICubeTopology c(n_size);
    const GeneralizedCubeTopology g(n_size);
    const auto maps = bitReversalIsomorphism(n_size);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            verifyColumnIsomorphism(c, g, maps));
}
BENCHMARK(BM_VerifyBitReversalWitness)
    ->RangeMultiplier(4)
    ->Range(8, 512);

void
BM_SearchOmegaIso(benchmark::State &state)
{
    const Label n_size = static_cast<Label>(state.range(0));
    const ICubeTopology c(n_size);
    const OmegaTopology o(n_size);
    for (auto _ : state) {
        auto maps = findLayeredIsomorphism(c, o);
        benchmark::DoNotOptimize(maps.has_value());
    }
}
BENCHMARK(BM_SearchOmegaIso)->Arg(4)->Arg(8);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
