/**
 * @file
 * Experiment C7: fault-tolerance comparison across schemes — the
 * fraction of (source, destination) pairs still routable as random
 * link blockages accumulate, per scheme, against the oracle.  This
 * is the quantitative version of the paper's Section 1/4 claims:
 * the SDT schemes cover every blockage the prior schemes cover,
 * and REROUTE covers exactly what is physically coverable.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "baselines/lookahead.hpp"
#include "core/oracle.hpp"
#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "fault/injection.hpp"
#include "sim/route_cache.hpp"

namespace {

using namespace iadm;

void
sweep(const char *title, const topo::IadmTopology &net,
      const std::function<fault::FaultSet(std::size_t, Rng &)> &inject)
{
    const Label n_size = net.size();
    Rng rng(31337);
    std::cout << title << "\n";
    std::cout << std::setw(8) << "faults" << std::setw(10)
              << "oracle" << std::setw(10) << "REROUTE"
              << std::setw(10) << "SSDT" << std::setw(10)
              << "MS-bit" << std::setw(10) << "lookahd" << "\n";
    for (std::size_t f : {0u, 4u, 8u, 16u, 32u, 64u}) {
        std::size_t total = 0, oracle = 0, rr = 0, ss = 0, ms = 0,
                    la = 0;
        for (int trial = 0; trial < 150; ++trial) {
            const auto fs = inject(f, rng);
            for (int k = 0; k < 10; ++k) {
                const auto s =
                    static_cast<Label>(rng.uniform(n_size));
                const auto d =
                    static_cast<Label>(rng.uniform(n_size));
                ++total;
                oracle += core::oracleReachable(net, fs, s, d);
                rr += core::universalRoute(net, fs, s, d).ok;
                core::SsdtRouter router(net);
                ss += router.route(s, d, fs).delivered;
                ms += baselines::dynamicDistanceRoute(
                          net, fs, s, d,
                          baselines::McMillenScheme::ExtraTagBit)
                          .delivered;
                la += baselines::lookaheadRoute(net, fs, s, d)
                          .delivered;
            }
        }
        const auto pct = [&](std::size_t v) {
            return 100.0 * static_cast<double>(v) /
                   static_cast<double>(total);
        };
        std::cout << std::setw(8) << f << std::fixed
                  << std::setprecision(1) << std::setw(9)
                  << pct(oracle) << "%" << std::setw(9) << pct(rr)
                  << "%" << std::setw(9) << pct(ss) << "%"
                  << std::setw(9) << pct(ms) << "%" << std::setw(9)
                  << pct(la) << "%\n";
    }
    std::cout << "\n";
}

void
printReport()
{
    const topo::IadmTopology net(64);
    std::cout << "=== C7: routable pairs vs blockages (N=64) ===\n";
    sweep("-- arbitrary random link blockages --", net,
          [&](std::size_t f, Rng &rng) {
              return fault::randomLinkFaults(net, f, rng);
          });
    sweep("-- nonstraight-only blockages (SSDT's domain) --", net,
          [&](std::size_t f, Rng &rng) {
              return fault::randomNonstraightFaults(net, f, rng);
          });
    std::cout << "(REROUTE always matches the oracle; SSDT and the "
                 "[9]/[10] schemes trail\nonce straight links "
                 "block, and coincide with the oracle on the\n"
                 "nonstraight-only sweep until double blockages "
                 "appear.)\n\n";
}

void
BM_SsdtRouteFaulty(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(5);
    const auto fs = fault::randomNonstraightFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    core::SsdtRouter router(net);
    Label s = 0;
    for (auto _ : state) {
        auto res = router.route(s, (s * 13 + 5) % 64, fs);
        benchmark::DoNotOptimize(res.delivered);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_SsdtRouteFaulty)->Arg(0)->Arg(16)->Arg(64);

void
BM_McMillenExtraBitFaulty(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(5);
    const auto fs = fault::randomNonstraightFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    Label s = 0;
    for (auto _ : state) {
        auto res = baselines::dynamicDistanceRoute(
            net, fs, s, (s * 13 + 5) % 64,
            baselines::McMillenScheme::ExtraTagBit);
        benchmark::DoNotOptimize(res.delivered);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_McMillenExtraBitFaulty)->Arg(0)->Arg(16)->Arg(64);

/** Fresh REROUTE per (src, dst): the uncached injection cost. */
void
BM_RerouteUncached(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(5);
    const auto fs = fault::randomLinkFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    Label s = 0;
    for (auto _ : state) {
        auto res =
            core::universalRoute(net, fs, s, (s * 13 + 5) % 64);
        benchmark::DoNotOptimize(res.ok);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_RerouteUncached)->Arg(0)->Arg(16)->Arg(64);

/**
 * The same pair stream through the fault-epoch route cache: after
 * the first lap of 64 sources every resolution is a hit, so this
 * measures the steady-state replay cost a faulted simulation pays
 * per injected packet.
 */
void
BM_RerouteCached(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(5);
    const auto fs = fault::randomLinkFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    sim::RouteCache cache(64);
    Label s = 0;
    for (auto _ : state) {
        const auto [e, hit] =
            cache.resolveUniversal(net, fs, s, (s * 13 + 5) % 64);
        benchmark::DoNotOptimize(e->ok());
        benchmark::DoNotOptimize(hit);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_RerouteCached)->Arg(0)->Arg(16)->Arg(64);

/**
 * Pure decode cost of a compressed cache entry: expanding the
 * 16-bit delta word back into the per-stage switch list a packet
 * embeds.  This is the extra work a hit pays under the 16-byte
 * entry layout compared to copying a stored pathSw[] — the faults
 * arg only varies the state bits decoded, the cost is fault-blind
 * by construction (~n integer ops, no loads).
 */
void
BM_DecodeDelta(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(5);
    const auto fs = fault::randomLinkFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    // Pre-resolve the pair stream's delta words (the cache's job);
    // the loop then measures decode alone.
    std::uint16_t deltas[64];
    for (Label s = 0; s < 64; ++s) {
        const auto cr = core::universalRouteCompact(
            net, fs, s, (s * 13 + 5) % 64);
        deltas[s] =
            static_cast<std::uint16_t>(cr.tag.stateBits());
    }
    std::uint16_t sw[sim::RouteCache::kMaxPathSw];
    Label s = 0;
    for (auto _ : state) {
        const unsigned len = core::decodeDelta(
            s, (s * 13 + 5) % 64, deltas[s], net.stages(), sw);
        benchmark::DoNotOptimize(len);
        benchmark::DoNotOptimize(sw[net.stages()]);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_DecodeDelta)->Arg(0)->Arg(16)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
