/**
 * @file
 * Experiment F7 (paper Figure 7): regenerate "all routing paths
 * from 1 in S0 to 0 in S3 in an IADM network of size N=8" together
 * with the worked TSDT rerouting examples of Section 4, then
 * benchmark path enumeration and counting.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "baselines/redundant_number.hpp"
#include "common/modmath.hpp"
#include "core/oracle.hpp"
#include "core/tsdt.hpp"
#include "topology/iadm.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const topo::IadmTopology net(8);
    std::cout << "=== F7: all routing paths 1 -> 0, N=8 (Figure 7) "
                 "===\n";
    for (const core::Path &p : core::oracleAllPaths(net, 1, 0)) {
        const auto tag = core::tagForPath(p, 3);
        std::cout << "  tag b0..b5 = " << tag.str() << " : "
                  << p.str() << "\n";
    }

    std::cout << "\nWorked example (Section 4): s=1, d=0, tag "
                 "000000\n";
    auto tag = core::TsdtTag::decode(3, 0);
    auto path = core::tsdtTrace(1, tag, 8);
    std::cout << "  original: " << path.str() << "\n";
    tag = core::rerouteNonstraight(tag, 0);
    path = core::tsdtTrace(1, tag, 8);
    std::cout << "  (1,0) blocked -> tag " << tag.str() << ": "
              << path.str() << "\n";
    tag = core::rerouteNonstraight(tag, 1);
    path = core::tsdtTrace(1, tag, 8);
    std::cout << "  (2,0) blocked -> tag " << tag.str() << ": "
              << path.str() << "\n";

    std::cout << "\nPath multiplicity by distance (N=64, from "
                 "source 0):\n  D : paths\n";
    const topo::IadmTopology big(64);
    for (Label d : {0u, 1u, 3u, 7u, 15u, 21u, 31u, 42u, 63u}) {
        std::cout << "  " << d << " : "
                  << core::oracleCountPaths(big, 0, d) << "\n";
    }
    std::cout << "\n";
}

void
BM_AllPathsEnumeration(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    const Label d = net.size() - 1;
    for (auto _ : state) {
        auto paths = core::oracleAllPaths(net, 1, d);
        benchmark::DoNotOptimize(paths.data());
    }
}
BENCHMARK(BM_AllPathsEnumeration)->RangeMultiplier(2)->Range(8, 64);

void
BM_CountPathsDp(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::oracleCountPaths(net, 1, net.size() - 1));
    }
}
BENCHMARK(BM_CountPathsDp)->RangeMultiplier(4)->Range(8, 1024);

void
BM_RepresentationCount(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    const Label d = static_cast<Label>((Label{1} << n) / 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baselines::countRepresentations(n, d));
    }
}
BENCHMARK(BM_RepresentationCount)->DenseRange(3, 16, 3);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
