/**
 * @file
 * Hot-path microbenchmark for the cycle-level simulator.
 *
 * Drives NetworkSim::step() for every routing scheme at
 * N in {64, 256, 1024} and reports cycles/sec, hops/sec and the
 * p50/p99 per-step wall time.  The numbers land in an
 * iadm-bench-hotpath-v1 JSON document (default BENCH_hotpath.json)
 * tagged with the build type, so unoptimized runs cannot silently
 * enter the perf trajectory; docs/PERF.md describes the schema and
 * how to compare runs.
 *
 * Usage:
 *   bench_hotpath [--cycles N] [--net-size N] [--rate R]
 *                 [--faults K] [--no-cache] [--out FILE]
 *                 [--traffic uniform|transpose|bitrev|hotspot]
 *                 [--trace-overhead] [--health-overhead]
 *                 [--churn-overhead] [--shards S] [--cache-pairs]
 *
 * --trace-overhead runs every configuration twice in a paired
 * A/B — trace sink detached (the normal production setting) and
 * attached — and reports the relative cycles/sec cost of each.
 * Configs gain a "trace_mode" field ("off"/"on"); without the flag
 * the field is absent and the document is unchanged.  The paired
 * run is how the <=2% disabled-hook budget in docs/PERF.md is
 * measured: compare a --trace-overhead "off" rung of an IADM_TRACE
 * build against a plain run of a trace-off build.
 *
 * --health-overhead is the same paired A/B for the IADM_HEALTH
 * monitor hooks: every configuration runs with no monitor attached
 * and again with a HealthMonitor watching ("health_mode"
 * "off"/"on").  The "on" rung is the acceptance gate for the <=2%
 * monitor-on budget (docs/OBSERVABILITY.md); the "off" rung checks
 * the detached hook costs a plain run nothing.
 *
 * --churn-overhead is the same paired A/B for fault churn: every
 * configuration runs without churn and with a geometric MTBF/MTTR
 * process attached ("churn_mode" "off"/"on").  The "off" rung is
 * the acceptance gate that the churn machinery costs a churn-free
 * run nothing — its cycles/sec must stay within the run-to-run
 * noise band (±2%) of a plain BENCH_hotpath.json rung.
 *
 * --cache-pairs is the paired A/B for the fault-epoch route cache:
 * every configuration runs cache-on and again with the cache
 * force-disabled (the rungs are told apart by the existing
 * "route_cache" field, so the document schema is unchanged).  The
 * cache is routing-neutral by construction, so the paired rungs
 * must agree on delivered/hops exactly — the binary fails if they
 * diverge — and the cycles/sec ratio is the speedup the compressed
 * 16-byte entries buy (docs/PERF.md quotes these numbers).
 *
 * --shards S is the paired A/B for intra-simulation sharding:
 * every configuration runs serial (SimConfig::shards = 1) and again
 * sharded across S worker threads, and each rung reports its
 * *effective* shard count in a "shards" field (SsdtBalanced pins
 * itself serial, so its sharded rung records 1).  Sharding is
 * byte-deterministic, so the paired rungs must agree on delivered /
 * hops exactly — the A/B isolates pure scheduling overhead or
 * speedup.  Meaningful speedups need >= S free cores; see
 * docs/PERF.md for the single-core methodology note.
 *
 * --net-size 0 (default) runs the full {64, 256, 1024} ladder; a
 * specific size runs only that one (the perf-smoke ctest uses
 * --cycles 2000 --net-size 64).  By default every (size, scheme)
 * pair runs twice — fault-free and with 6 * (N / 64) random static
 * link blockages — so the faulted injection path (where the
 * fault-epoch route cache earns its keep) is always on the perf
 * trajectory; --faults K pins a single blockage count instead, and
 * --no-cache disables the route cache for an uncached baseline of
 * the same binary.  The binary re-reads and schema-checks its own
 * report before exiting, so a malformed document fails the run.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "obs/health.hpp"
#include "obs/trace_sink.hpp"
#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace iadm;
using namespace iadm::sim;
using Clock = std::chrono::steady_clock;

struct Options
{
    Cycle cycles = 8000;
    Label netSize = 0; //!< 0 = the full {64, 256, 1024} ladder
    double rate = 0.35;
    long faults = -1;  //!< -1 = ladder default {0, 6 * N / 64}
    bool noCache = false;
    bool cachePairs = false;
    bool traceOverhead = false;
    bool healthOverhead = false;
    bool churnOverhead = false;
    unsigned shards = 0; //!< 0 = no paired sharding rungs
    std::string traffic = "uniform"; //!< uniform|transpose|bitrev|hotspot
    std::string out = "BENCH_hotpath.json";
};

std::unique_ptr<TrafficPattern>
makeTraffic(const std::string &name, Label n_size)
{
    if (name == "transpose")
        return makeTransposeTraffic(n_size);
    if (name == "bitrev")
        return makeBitReversalTraffic(n_size);
    if (name == "hotspot")
        return std::make_unique<HotspotTraffic>(n_size, 0, 0.2);
    return std::make_unique<UniformTraffic>(n_size);
}

struct ConfigResult
{
    Label netSize;
    RoutingScheme scheme;
    Cycle cycles;
    std::size_t faultLinks;
    bool routeCache;
    double elapsedSec;
    double cyclesPerSec;
    double hopsPerSec;
    std::uint64_t stepP50Ns;
    std::uint64_t stepP99Ns;
    std::uint64_t delivered;
    std::uint64_t hops;
    std::uint64_t cacheHits;
    std::uint64_t cacheMisses;
    const char *traceMode = nullptr; //!< "off"/"on" in paired mode
    const char *healthMode = nullptr; //!< "off"/"on" in paired mode
    const char *churnMode = nullptr; //!< "off"/"on" in paired mode
    unsigned shards = 0; //!< effective shard count; 0 = field absent
};

std::uint64_t
percentileNs(std::vector<std::uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

ConfigResult
runConfig(Label n_size, RoutingScheme scheme, std::size_t fault_links,
          const Options &opt, obs::TraceSink *sink = nullptr,
          bool churn = false, unsigned shards = 1,
          bool force_no_cache = false, bool health = false)
{
    SimConfig cfg;
    cfg.netSize = n_size;
    cfg.scheme = scheme;
    cfg.injectionRate = opt.rate;
    cfg.seed = 97;
    cfg.routeCache = !opt.noCache && !force_no_cache;
    cfg.shards = shards;

    // Static random-link blockages, deterministically derived from
    // (N, count) so reruns and cached/uncached pairs see identical
    // fault sets.
    fault::FaultSet faults;
    if (fault_links != 0) {
        const topo::IadmTopology topo(n_size);
        Rng frng(0x8088 + n_size);
        faults = FaultScenario{FaultScenario::Kind::RandomLinks,
                               fault_links}
                     .make(topo, frng);
    }
    NetworkSim s(cfg, makeTraffic(opt.traffic, n_size),
                 std::move(faults));
    if (sink != nullptr) {
        sink->clear();
        s.setTraceSink(sink);
    }
    if (churn)
        // Mild, size-independent churn: enough transitions to keep
        // the epoch machinery hot without drowning the routing work.
        s.addFaultProcess(std::make_unique<fault::GeometricChurn>(
            s.topology(), 2000.0, 200.0, 0xbe11));

    s.run(opt.cycles / 10); // warm the queues into steady state
    s.resetMetrics();
    obs::HealthMonitor monitor; // must outlive the stepped loop
    if (health)
        s.setHealthMonitor(&monitor); // after warmup: watch the
                                      // measured cycles only
    const std::uint64_t hops0 = s.metrics().totalHops();

    std::vector<std::uint64_t> stepNs;
    stepNs.reserve(opt.cycles);
    std::uint64_t totalNs = 0;
    for (Cycle c = 0; c < opt.cycles; ++c) {
        const auto t0 = Clock::now();
        s.step();
        const auto t1 = Clock::now();
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count());
        stepNs.push_back(ns);
        totalNs += ns;
    }
    std::sort(stepNs.begin(), stepNs.end());

    ConfigResult r;
    r.netSize = n_size;
    r.scheme = scheme;
    r.cycles = opt.cycles;
    r.faultLinks = fault_links;
    r.routeCache = s.routeCacheEnabled();
    r.cacheHits = s.metrics().routeCacheHits();
    r.cacheMisses = s.metrics().routeCacheMisses();
    r.elapsedSec = static_cast<double>(totalNs) * 1e-9;
    r.cyclesPerSec = r.elapsedSec > 0
                         ? static_cast<double>(opt.cycles) /
                               r.elapsedSec
                         : 0.0;
    r.hops = s.metrics().totalHops() - hops0;
    r.hopsPerSec = r.elapsedSec > 0
                       ? static_cast<double>(r.hops) / r.elapsedSec
                       : 0.0;
    r.stepP50Ns = percentileNs(stepNs, 0.50);
    r.stepP99Ns = percentileNs(stepNs, 0.99);
    r.delivered = s.metrics().delivered();
    if (shards != 1)
        r.shards = s.shards(); // effective count, after clamping
    return r;
}

void
writeReport(std::ostream &os, const Options &opt,
            const std::vector<ConfigResult> &results)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("iadm-bench-hotpath-v1");
    w.key("build_type");
    w.value(iadm::bench::buildType());
    w.key("injection_rate");
    w.value(opt.rate);
    w.key("traffic");
    w.value(opt.traffic);
    w.key("configs");
    w.beginArray();
    for (const auto &r : results) {
        w.beginObject();
        w.key("net_size");
        w.value(static_cast<std::uint64_t>(r.netSize));
        w.key("scheme");
        w.value(routingSchemeName(r.scheme));
        w.key("cycles");
        w.value(r.cycles);
        w.key("fault_links");
        w.value(static_cast<std::uint64_t>(r.faultLinks));
        w.key("route_cache");
        w.value(r.routeCache);
        w.key("route_cache_hits");
        w.value(r.cacheHits);
        w.key("route_cache_misses");
        w.value(r.cacheMisses);
        w.key("elapsed_sec");
        w.value(r.elapsedSec);
        w.key("cycles_per_sec");
        w.value(r.cyclesPerSec);
        w.key("hops_per_sec");
        w.value(r.hopsPerSec);
        w.key("step_p50_ns");
        w.value(r.stepP50Ns);
        w.key("step_p99_ns");
        w.value(r.stepP99Ns);
        w.key("delivered");
        w.value(r.delivered);
        w.key("hops");
        w.value(r.hops);
        if (r.traceMode != nullptr) {
            w.key("trace_mode");
            w.value(r.traceMode);
        }
        if (r.healthMode != nullptr) {
            w.key("health_mode");
            w.value(r.healthMode);
        }
        if (r.churnMode != nullptr) {
            w.key("churn_mode");
            w.value(r.churnMode);
        }
        if (r.shards != 0) {
            w.key("shards");
            w.value(static_cast<std::uint64_t>(r.shards));
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

/** Minimal schema check of the emitted report (perf-smoke gate). */
bool
reportIsSchemaValid(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string doc = buf.str();
    for (const char *needle :
         {"\"schema\": \"iadm-bench-hotpath-v1\"", "\"build_type\"",
          "\"configs\"", "\"cycles_per_sec\"", "\"hops_per_sec\"",
          "\"step_p50_ns\"", "\"step_p99_ns\"", "\"fault_links\"",
          "\"route_cache\"", "\"route_cache_hits\"",
          "\"route_cache_misses\""}) {
        if (doc.find(needle) == std::string::npos) {
            std::cerr << "schema check failed: missing " << needle
                      << " in " << path << "\n";
            return false;
        }
    }
    return true;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        try {
            if (flag == "--cycles") {
                const char *v = next();
                if (!v)
                    return false;
                opt.cycles = std::stoull(v);
            } else if (flag == "--net-size") {
                const char *v = next();
                if (!v)
                    return false;
                opt.netSize = static_cast<Label>(std::stoul(v));
            } else if (flag == "--rate") {
                const char *v = next();
                if (!v)
                    return false;
                opt.rate = std::stod(v);
            } else if (flag == "--faults") {
                const char *v = next();
                if (!v)
                    return false;
                opt.faults = std::stol(v);
                if (opt.faults < 0)
                    return false;
            } else if (flag == "--no-cache") {
                opt.noCache = true;
            } else if (flag == "--cache-pairs") {
                opt.cachePairs = true;
            } else if (flag == "--trace-overhead") {
                opt.traceOverhead = true;
            } else if (flag == "--health-overhead") {
                opt.healthOverhead = true;
            } else if (flag == "--churn-overhead") {
                opt.churnOverhead = true;
            } else if (flag == "--shards") {
                const char *v = next();
                if (!v)
                    return false;
                opt.shards = static_cast<unsigned>(std::stoul(v));
                if (opt.shards < 2)
                    return false;
            } else if (flag == "--traffic") {
                const char *v = next();
                if (!v)
                    return false;
                opt.traffic = v;
                if (opt.traffic != "uniform" &&
                    opt.traffic != "transpose" &&
                    opt.traffic != "bitrev" &&
                    opt.traffic != "hotspot")
                    return false;
            } else if (flag == "--out") {
                const char *v = next();
                if (!v)
                    return false;
                opt.out = v;
            } else {
                std::cerr << "unknown flag: " << flag << "\n";
                return false;
            }
        } catch (...) {
            std::cerr << "bad value for " << flag << "\n";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();

    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        std::cerr << "usage: bench_hotpath [--cycles N] "
                     "[--net-size N] [--rate R] [--faults K] "
                     "[--no-cache] [--traffic "
                     "uniform|transpose|bitrev|hotspot] "
                     "[--trace-overhead] [--health-overhead] "
                     "[--churn-overhead] "
                     "[--shards S] [--cache-pairs] [--out FILE]\n";
        return 2;
    }

    const std::vector<Label> sizes =
        opt.netSize != 0 ? std::vector<Label>{opt.netSize}
                         : std::vector<Label>{64, 256, 1024};
    const std::vector<RoutingScheme> schemes{
        RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
        RoutingScheme::TsdtSender, RoutingScheme::DistanceTag,
        RoutingScheme::TsdtDynamic};

    std::vector<ConfigResult> results;
    std::cout << "  N  scheme         faults  cache   cycles/sec"
                 "      hops/sec    p50(ns)    p99(ns)\n";
    for (const Label n_size : sizes) {
        // Default ladder: fault-free plus a size-proportional
        // faulted row (6 blockages per 64 nodes); --faults K pins
        // one row.
        const std::vector<std::size_t> fault_counts =
            opt.faults >= 0
                ? std::vector<std::size_t>{static_cast<std::size_t>(
                      opt.faults)}
                : std::vector<std::size_t>{
                      0, static_cast<std::size_t>(6) * (n_size / 64)};
        for (const std::size_t fault_links : fault_counts) {
            for (const RoutingScheme scheme : schemes) {
                if (opt.traceOverhead) {
                    // Paired A/B: identical config, sink detached
                    // then attached.  Both rungs share one sink
                    // allocation so the "on" rung measures
                    // recording, not first-touch page faults.
                    static obs::TraceSink sink;
                    auto off =
                        runConfig(n_size, scheme, fault_links, opt);
                    off.traceMode = "off";
                    auto on = runConfig(n_size, scheme, fault_links,
                                        opt, &sink);
                    on.traceMode = "on";
                    const double pct =
                        off.cyclesPerSec > 0
                            ? 100.0 * (off.cyclesPerSec -
                                       on.cyclesPerSec) /
                                  off.cyclesPerSec
                            : 0.0;
                    std::printf(
                        "%5u  %-13s %6zu  %5s %12.0f  %12.0f  "
                        "trace on: %12.0f  (%+.1f%%)\n",
                        off.netSize, routingSchemeName(off.scheme),
                        off.faultLinks,
                        off.routeCache ? "on" : "off",
                        off.cyclesPerSec, off.hopsPerSec,
                        on.cyclesPerSec, pct);
                    results.push_back(off);
                    results.push_back(on);
                    continue;
                }
                if (opt.healthOverhead) {
                    // Paired A/B: identical config, monitor detached
                    // then attached.  The "on" rung carries the
                    // <=2% monitor budget (docs/OBSERVABILITY.md).
                    auto off =
                        runConfig(n_size, scheme, fault_links, opt);
                    off.healthMode = "off";
                    auto on =
                        runConfig(n_size, scheme, fault_links, opt,
                                  nullptr, false, 1, false, true);
                    on.healthMode = "on";
                    const double pct =
                        off.cyclesPerSec > 0
                            ? 100.0 * (off.cyclesPerSec -
                                       on.cyclesPerSec) /
                                  off.cyclesPerSec
                            : 0.0;
                    std::printf(
                        "%5u  %-13s %6zu  %5s %12.0f  %12.0f  "
                        "health on: %12.0f  (%+.1f%%)\n",
                        off.netSize, routingSchemeName(off.scheme),
                        off.faultLinks,
                        off.routeCache ? "on" : "off",
                        off.cyclesPerSec, off.hopsPerSec,
                        on.cyclesPerSec, pct);
                    results.push_back(off);
                    results.push_back(on);
                    continue;
                }
                if (opt.cachePairs) {
                    // Paired A/B: identical config, cache on then
                    // force-disabled.  Routing neutrality makes
                    // delivered/hops a built-in cross-check.
                    const auto on =
                        runConfig(n_size, scheme, fault_links, opt);
                    const auto off =
                        runConfig(n_size, scheme, fault_links, opt,
                                  nullptr, false, 1, true);
                    if (on.delivered != off.delivered ||
                        on.hops != off.hops) {
                        std::cerr << "cached run diverged from "
                                     "uncached (routing-neutrality "
                                     "bug)\n";
                        return 1;
                    }
                    const double speedup =
                        off.cyclesPerSec > 0
                            ? on.cyclesPerSec / off.cyclesPerSec
                            : 0.0;
                    std::printf(
                        "%5u  %-13s %6zu  cache %12.0f  %12.0f  "
                        "no-cache: %12.0f  (x%.2f)\n",
                        on.netSize, routingSchemeName(on.scheme),
                        on.faultLinks, on.cyclesPerSec,
                        on.hopsPerSec, off.cyclesPerSec, speedup);
                    results.push_back(on);
                    results.push_back(off);
                    continue;
                }
                if (opt.shards != 0) {
                    // Paired A/B: identical config, serial then
                    // sharded.  Determinism makes delivered/hops a
                    // built-in cross-check between the rungs.
                    auto serial =
                        runConfig(n_size, scheme, fault_links, opt,
                                  nullptr, false, 1);
                    serial.shards = 1;
                    const auto sharded =
                        runConfig(n_size, scheme, fault_links, opt,
                                  nullptr, false, opt.shards);
                    if (serial.delivered != sharded.delivered ||
                        serial.hops != sharded.hops) {
                        std::cerr << "sharded run diverged from "
                                     "serial (determinism bug)\n";
                        return 1;
                    }
                    const double speedup =
                        serial.cyclesPerSec > 0
                            ? sharded.cyclesPerSec /
                                  serial.cyclesPerSec
                            : 0.0;
                    std::printf(
                        "%5u  %-13s %6zu  %5s %12.0f  %12.0f  "
                        "shards=%u: %12.0f  (x%.2f)\n",
                        serial.netSize,
                        routingSchemeName(serial.scheme),
                        serial.faultLinks,
                        serial.routeCache ? "on" : "off",
                        serial.cyclesPerSec, serial.hopsPerSec,
                        sharded.shards, sharded.cyclesPerSec,
                        speedup);
                    results.push_back(serial);
                    results.push_back(sharded);
                    continue;
                }
                if (opt.churnOverhead) {
                    auto off =
                        runConfig(n_size, scheme, fault_links, opt);
                    off.churnMode = "off";
                    auto on = runConfig(n_size, scheme, fault_links,
                                        opt, nullptr, true);
                    on.churnMode = "on";
                    const double pct =
                        off.cyclesPerSec > 0
                            ? 100.0 * (off.cyclesPerSec -
                                       on.cyclesPerSec) /
                                  off.cyclesPerSec
                            : 0.0;
                    std::printf(
                        "%5u  %-13s %6zu  %5s %12.0f  %12.0f  "
                        "churn on: %12.0f  (%+.1f%%)\n",
                        off.netSize, routingSchemeName(off.scheme),
                        off.faultLinks,
                        off.routeCache ? "on" : "off",
                        off.cyclesPerSec, off.hopsPerSec,
                        on.cyclesPerSec, pct);
                    results.push_back(off);
                    results.push_back(on);
                    continue;
                }
                const auto r =
                    runConfig(n_size, scheme, fault_links, opt);
                std::printf(
                    "%5u  %-13s %6zu  %5s %12.0f  %12.0f  %9llu  "
                    "%9llu\n",
                    r.netSize, routingSchemeName(r.scheme),
                    r.faultLinks, r.routeCache ? "on" : "off",
                    r.cyclesPerSec, r.hopsPerSec,
                    static_cast<unsigned long long>(r.stepP50Ns),
                    static_cast<unsigned long long>(r.stepP99Ns));
                results.push_back(r);
            }
        }
    }

    std::ofstream os(opt.out, std::ios::binary);
    if (!os) {
        std::cerr << "cannot write " << opt.out << "\n";
        return 1;
    }
    writeReport(os, opt, results);
    os.close();

    if (!reportIsSchemaValid(opt.out))
        return 1;
    std::cout << "report: " << opt.out << " (build_type="
              << iadm::bench::buildType() << ")\n";
    return 0;
}
