/**
 * @file
 * Experiment C1-hw: the paper's hardware-complexity claim.  SSDT
 * and TSDT switches need a constant-size decoder ("a negligible
 * amount of extra hardware"); the distance-tag switches of [9]
 * carry O(log N) tag registers and arithmetic.  The report prints
 * per-switch gate-equivalent counts versus N; the benchmarks time
 * the gate-accurate evaluation paths.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "hw/switch_logic.hpp"

namespace {

using namespace iadm;
using namespace iadm::hw;

void
printReport()
{
    std::cout << "=== C1-hw: per-switch hardware (2-input gate "
                 "equivalents) ===\n";
    std::cout << std::setw(8) << "N" << std::setw(6) << "n"
              << std::setw(10) << "TSDT" << std::setw(10) << "SSDT"
              << std::setw(14) << "MS two's-c" << std::setw(14)
              << "MS digit-add" << std::setw(14) << "MS extra-bit"
              << "\n";
    for (unsigned n = 3; n <= 16; ++n) {
        std::cout << std::setw(8) << (1u << n) << std::setw(6) << n
                  << std::setw(10) << TsdtSwitch::gates().equivalents()
                  << std::setw(10)
                  << SsdtSwitch::gates().equivalents()
                  << std::setw(14)
                  << TwosComplementSwitch(n).gates().equivalents()
                  << std::setw(14)
                  << DigitAdditionSwitch(n).gates().equivalents()
                  << std::setw(14)
                  << ExtraTagBitSwitch(n).gates().equivalents()
                  << "\n";
    }
    std::cout << "\nBreakdown at n = 10:\n";
    std::cout << "  TSDT switch: " << TsdtSwitch::gates().str()
              << "\n";
    std::cout << "  SSDT switch: " << SsdtSwitch::gates().str()
              << "\n";
    std::cout << "  [9] two's-complement switch: "
              << TwosComplementSwitch(10).gates().str() << "\n";
    std::cout << "  [9] extra-tag-bit switch: "
              << ExtraTagBitSwitch(10).gates().str() << "\n\n";
}

void
BM_DecoderEvaluate(benchmark::State &state)
{
    unsigned i = 0;
    for (auto _ : state) {
        const auto sel = TsdtDecoder::evaluate(i & 1, (i >> 1) & 1,
                                               (i >> 2) & 1);
        benchmark::DoNotOptimize(sel);
        ++i;
    }
}
BENCHMARK(BM_DecoderEvaluate);

void
BM_SsdtSwitchEvaluate(benchmark::State &state)
{
    unsigned i = 0;
    for (auto _ : state) {
        const auto out = SsdtSwitch::evaluate(
            i & 1, (i >> 1) & 1, (i >> 2) & 1, (i >> 3) & 1,
            (i >> 4) & 1, (i >> 5) & 1);
        benchmark::DoNotOptimize(out);
        ++i;
    }
}
BENCHMARK(BM_SsdtSwitchEvaluate);

void
BM_GateLevelTwosComplement(benchmark::State &state)
{
    const TwosComplementSwitch sw(
        static_cast<unsigned>(state.range(0)));
    std::uint64_t m = 5;
    for (auto _ : state) {
        m = sw.rewriteMagnitude(m) | 1u;
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_GateLevelTwosComplement)->DenseRange(4, 16, 4);

void
BM_RippleAdd(benchmark::State &state)
{
    const RippleAdder adder(static_cast<unsigned>(state.range(0)));
    std::uint64_t a = 3;
    for (auto _ : state) {
        a = adder.add(a, 0x55aa55aa) ^ 1u;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_RippleAdd)->DenseRange(4, 32, 7);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
