/**
 * @file
 * Experiment C6: the Section 4 load-balancing claim in the packet
 * simulator.  The report prints latency / throughput / nonstraight
 * imbalance for static vs balanced SSDT across injection rates and
 * traffic patterns; the benchmarks measure simulation speed.
 *
 * Both report sections run through the deterministic parallel sweep
 * runner and are archived as bench/out/load_balance*.json.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace iadm;
using namespace iadm::sim;

/** Mean nonstraight imbalance over the non-final stages. */
double
meanImbalance(const Metrics &m)
{
    double sum = 0;
    unsigned counted = 0;
    for (unsigned i = 0; i + 1 < m.stages(); ++i) {
        sum += m.nonstraightImbalance(i);
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / counted;
}

std::vector<CellResult>
sweepAndSave(const SweepGrid &grid, const std::string &name)
{
    SweepOptions opts;
    const unsigned hw = std::thread::hardware_concurrency();
    opts.workers = hw == 0 ? 1 : hw;
    auto results = runSweep(grid, opts);
    std::filesystem::create_directories("bench/out");
    std::ofstream os("bench/out/" + name + ".json");
    if (os) {
        ReportOptions ropts;
        ropts.buildType = iadm::bench::buildType();
        writeSweepReport(os, grid, results, ropts);
    }
    return results;
}

void
printReport()
{
    const Label n_size = 32;
    const Cycle cycles = 8000;
    std::cout << "=== C6: SSDT load balancing (N=" << n_size
              << ", uniform traffic, " << cycles << " cycles) ===\n";

    SweepGrid c6;
    c6.netSizes = {n_size};
    c6.schemes = {RoutingScheme::SsdtStatic,
                  RoutingScheme::SsdtBalanced};
    c6.injectionRates = {0.1, 0.25, 0.4, 0.55};
    c6.warmupCycles = cycles / 5;
    c6.measureCycles = cycles;
    c6.masterSeed = 1234;
    const auto results = sweepAndSave(c6, "load_balance_uniform");

    std::cout << std::setw(7) << "rate" << std::setw(15) << "scheme"
              << std::setw(10) << "latency" << std::setw(12)
              << "thruput" << std::setw(12) << "imbalance"
              << std::setw(10) << "stalls" << "\n";
    for (const double rate : c6.injectionRates) {
        for (const auto scheme : c6.schemes) {
            for (const auto &cr : results) {
                if (cr.cell.scheme != scheme ||
                    cr.cell.injectionRate != rate)
                    continue;
                const auto &rep = cr.replicates[0];
                std::cout
                    << std::setw(7) << std::setprecision(2)
                    << std::fixed << rate << std::setw(15)
                    << routingSchemeName(scheme) << std::setw(10)
                    << rep.metrics.avgLatency() << std::setw(12)
                    << std::setprecision(4)
                    << rep.metrics.throughput(rep.measuredCycles)
                    << std::setw(12) << std::setprecision(3)
                    << meanImbalance(rep.metrics) << std::setw(10)
                    << rep.metrics.totalStalls() << "\n";
            }
        }
    }

    std::cout << "\n-- hotspot traffic (20% to node 0, rate 0.3) "
                 "--\n";
    SweepGrid hot = c6;
    hot.injectionRates = {0.3};
    hot.traffics = {
        TrafficSpec{TrafficSpec::Kind::Hotspot, 0, 0.2}};
    const auto hot_results =
        sweepAndSave(hot, "load_balance_hotspot");
    for (const auto &cr : hot_results) {
        const auto &rep = cr.replicates[0];
        std::cout << "  " << std::setw(14)
                  << routingSchemeName(cr.cell.scheme)
                  << "  latency=" << std::setprecision(2)
                  << std::fixed << rep.metrics.avgLatency()
                  << "  throughput=" << std::setprecision(4)
                  << rep.metrics.throughput(rep.measuredCycles)
                  << "  imbalance=" << std::setprecision(3)
                  << meanImbalance(rep.metrics) << "\n";
    }
    std::cout << "\n";
}

void
BM_SimCyclesPerSecond(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = static_cast<Label>(state.range(0));
    cfg.scheme = RoutingScheme::SsdtBalanced;
    cfg.injectionRate = 0.3;
    cfg.seed = 77;
    NetworkSim s(cfg,
                 std::make_unique<UniformTraffic>(cfg.netSize));
    for (auto _ : state)
        s.step();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimCyclesPerSecond)->Arg(16)->Arg(64)->Arg(256);

void
BM_SimSchemes(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = static_cast<RoutingScheme>(state.range(0));
    cfg.injectionRate = 0.3;
    cfg.seed = 78;
    NetworkSim s(cfg,
                 std::make_unique<UniformTraffic>(cfg.netSize));
    for (auto _ : state)
        s.step();
    state.SetLabel(routingSchemeName(cfg.scheme));
}
BENCHMARK(BM_SimSchemes)->DenseRange(0, 3, 1);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
