/**
 * @file
 * Experiment C6: the Section 4 load-balancing claim in the packet
 * simulator.  The report prints latency / throughput / nonstraight
 * imbalance for static vs balanced SSDT across injection rates and
 * traffic patterns; the benchmarks measure simulation speed.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "sim/network_sim.hpp"

namespace {

using namespace iadm;
using namespace iadm::sim;

struct RunResult
{
    double latency;
    double throughput;
    double imbalance;
    std::uint64_t stalls;
};

RunResult
runSim(Label n_size, RoutingScheme scheme, double rate,
       std::unique_ptr<TrafficPattern> traffic, Cycle cycles)
{
    SimConfig cfg;
    cfg.netSize = n_size;
    cfg.scheme = scheme;
    cfg.injectionRate = rate;
    cfg.queueCapacity = 4;
    cfg.seed = 1234;
    NetworkSim s(cfg, std::move(traffic));
    s.run(cycles / 5);
    s.resetMetrics();
    s.run(cycles);
    double imb = 0;
    unsigned counted = 0;
    for (unsigned i = 0; i + 1 < s.topology().stages(); ++i) {
        imb += s.metrics().nonstraightImbalance(i);
        ++counted;
    }
    return {s.metrics().avgLatency(), s.metrics().throughput(cycles),
            imb / counted, s.metrics().totalStalls()};
}

void
printReport()
{
    const Label n_size = 32;
    const Cycle cycles = 8000;
    std::cout << "=== C6: SSDT load balancing (N=" << n_size
              << ", uniform traffic, " << cycles << " cycles) ===\n";
    std::cout << std::setw(7) << "rate" << std::setw(15) << "scheme"
              << std::setw(10) << "latency" << std::setw(12)
              << "thruput" << std::setw(12) << "imbalance"
              << std::setw(10) << "stalls" << "\n";
    for (double rate : {0.1, 0.25, 0.4, 0.55}) {
        for (auto scheme : {RoutingScheme::SsdtStatic,
                            RoutingScheme::SsdtBalanced}) {
            const auto r = runSim(
                n_size, scheme, rate,
                std::make_unique<UniformTraffic>(n_size), cycles);
            std::cout << std::setw(7) << std::setprecision(2)
                      << std::fixed << rate << std::setw(15)
                      << routingSchemeName(scheme) << std::setw(10)
                      << r.latency << std::setw(12)
                      << std::setprecision(4) << r.throughput
                      << std::setw(12) << std::setprecision(3)
                      << r.imbalance << std::setw(10) << r.stalls
                      << "\n";
        }
    }

    std::cout << "\n-- hotspot traffic (20% to node 0, rate 0.3) "
                 "--\n";
    for (auto scheme : {RoutingScheme::SsdtStatic,
                        RoutingScheme::SsdtBalanced}) {
        const auto r = runSim(
            n_size, scheme, 0.3,
            std::make_unique<HotspotTraffic>(n_size, 0, 0.2),
            cycles);
        std::cout << "  " << std::setw(14)
                  << routingSchemeName(scheme)
                  << "  latency=" << std::setprecision(2)
                  << r.latency << "  throughput="
                  << std::setprecision(4) << r.throughput
                  << "  imbalance=" << std::setprecision(3)
                  << r.imbalance << "\n";
    }
    std::cout << "\n";
}

void
BM_SimCyclesPerSecond(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = static_cast<Label>(state.range(0));
    cfg.scheme = RoutingScheme::SsdtBalanced;
    cfg.injectionRate = 0.3;
    cfg.seed = 77;
    NetworkSim s(cfg,
                 std::make_unique<UniformTraffic>(cfg.netSize));
    for (auto _ : state)
        s.step();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimCyclesPerSecond)->Arg(16)->Arg(64)->Arg(256);

void
BM_SimSchemes(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = static_cast<RoutingScheme>(state.range(0));
    cfg.injectionRate = 0.3;
    cfg.seed = 78;
    NetworkSim s(cfg,
                 std::make_unique<UniformTraffic>(cfg.netSize));
    for (auto _ : state)
        s.step();
    state.SetLabel(routingSchemeName(cfg.scheme));
}
BENCHMARK(BM_SimSchemes)->DenseRange(0, 3, 1);

} // namespace

int
main(int argc, char **argv)
{
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
