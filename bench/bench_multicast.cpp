/**
 * @file
 * Experiment E7 (extension): one-to-many routing with the IADM's
 * replicating switches.  The report shows multicast tree cost
 * versus subset size (sharing versus separate unicasts) and the
 * sign-choice fault tolerance; benchmarks time tree construction.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/multicast.hpp"
#include "fault/injection.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const Label n_size = 64;
    const topo::IadmTopology net(n_size);
    fault::FaultSet none;
    Rng rng(8128);

    std::cout << "=== E7: multicast tree cost vs subset size (N=64, "
                 "n=6) ===\n";
    std::cout << std::setw(10) << "|dests|" << std::setw(14)
              << "tree links" << std::setw(16) << "unicast links"
              << std::setw(12) << "saving" << "\n";
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        double tree_total = 0;
        const int trials = 50;
        for (int t = 0; t < trials; ++t) {
            std::set<Label> want;
            while (want.size() < k)
                want.insert(static_cast<Label>(rng.uniform(n_size)));
            const auto tree = core::buildMulticastTree(
                net, none, static_cast<Label>(rng.uniform(n_size)),
                {want.begin(), want.end()});
            tree_total += static_cast<double>(tree->linkCount());
        }
        const double tree_avg = tree_total / trials;
        const double unicast = 6.0 * static_cast<double>(k);
        std::cout << std::setw(10) << k << std::setw(14)
                  << std::fixed << std::setprecision(1) << tree_avg
                  << std::setw(16) << unicast << std::setw(11)
                  << 100.0 * (1.0 - tree_avg / unicast) << "%\n";
    }

    std::cout << "\nBroadcast resilience to nonstraight faults "
                 "(sign-choice search):\n";
    std::vector<Label> all(n_size);
    for (Label d = 0; d < n_size; ++d)
        all[d] = d;
    std::cout << std::setw(8) << "faults" << std::setw(12)
              << "built" << "\n";
    for (std::size_t f : {1u, 4u, 16u, 48u}) {
        int ok = 0;
        const int trials = 100;
        for (int t = 0; t < trials; ++t) {
            const auto fs =
                fault::randomNonstraightFaults(net, f, rng);
            ok += core::buildMulticastTree(
                      net, fs, static_cast<Label>(rng.uniform(64)),
                      all)
                      .has_value();
        }
        std::cout << std::setw(8) << f << std::setw(11)
                  << 100.0 * ok / trials << "%\n";
    }
    std::cout << "\n";
}

void
BM_MulticastBroadcast(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    fault::FaultSet none;
    std::vector<Label> all(net.size());
    for (Label d = 0; d < net.size(); ++d)
        all[d] = d;
    for (auto _ : state) {
        auto t = core::buildMulticastTree(net, none, 3 % net.size(),
                                          all);
        benchmark::DoNotOptimize(t->linkCount());
    }
}
BENCHMARK(BM_MulticastBroadcast)->Arg(16)->Arg(64)->Arg(256);

void
BM_MulticastSmallSubset(benchmark::State &state)
{
    const topo::IadmTopology net(256);
    fault::FaultSet none;
    const std::vector<Label> dests{3, 77, 130, 200};
    for (auto _ : state) {
        auto t = core::buildMulticastTree(net, none, 9, dests);
        benchmark::DoNotOptimize(t->linkCount());
    }
}
BENCHMARK(BM_MulticastSmallSubset);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
