/**
 * @file
 * Experiment E3 (extension): multi-pass permutation scheduling.
 * One-pass capability is limited to cube-admissible permutations
 * (+ translates, Section 6); arbitrary permutations need several
 * switch-disjoint waves.  The report measures the pass distribution
 * for random permutations and classic hard cases versus N, with and
 * without faults.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "fault/injection.hpp"
#include "perm/multipass.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    Rng rng(909);
    std::cout << "=== E3: passes needed to route permutations ===\n";
    std::cout << std::setw(6) << "N" << std::setw(12) << "identity"
              << std::setw(12) << "bit-rev" << std::setw(12)
              << "shuffle" << std::setw(18) << "random(avg,max)"
              << "\n";
    for (Label n_size : {8u, 16u, 32u, 64u}) {
        const topo::IadmTopology net(n_size);
        const auto passes = [&](const perm::Permutation &p) {
            const auto res = perm::routeInPasses(net, p);
            return res.ok ? res.passes() : 0u;
        };
        double avg = 0;
        unsigned worst = 0;
        const int trials = 40;
        for (int t = 0; t < trials; ++t) {
            const auto k = passes(perm::randomPerm(n_size, rng));
            avg += k;
            worst = std::max(worst, k);
        }
        avg /= trials;
        std::cout << std::setw(6) << n_size << std::setw(12)
                  << passes(perm::Permutation(n_size))
                  << std::setw(12)
                  << passes(perm::bitReversalPerm(n_size))
                  << std::setw(12)
                  << passes(perm::perfectShufflePerm(n_size))
                  << std::setw(12) << std::fixed
                  << std::setprecision(2) << avg << " / "
                  << worst << "\n";
    }

    std::cout << "\nWith random link faults (N=32, random "
                 "permutations):\n";
    std::cout << std::setw(8) << "faults" << std::setw(12)
              << "complete" << std::setw(12) << "avg passes"
              << "\n";
    const topo::IadmTopology net(32);
    for (std::size_t f : {0u, 4u, 12u, 24u}) {
        int complete = 0;
        double avg = 0;
        const int trials = 40;
        for (int t = 0; t < trials; ++t) {
            const auto fs = fault::randomLinkFaults(net, f, rng);
            const auto res = perm::routeInPasses(
                net, perm::randomPerm(32, rng), fs);
            complete += res.ok;
            avg += res.passes();
        }
        std::cout << std::setw(8) << f << std::setw(11)
                  << 100.0 * complete / trials << "%"
                  << std::setw(12) << std::setprecision(2)
                  << avg / trials << "\n";
    }
    std::cout << "\n";
}

void
BM_MultipassRandom(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    Rng rng(4);
    const auto p = perm::randomPerm(net.size(), rng);
    for (auto _ : state) {
        auto res = perm::routeInPasses(net, p);
        benchmark::DoNotOptimize(res.ok);
    }
}
BENCHMARK(BM_MultipassRandom)->Arg(16)->Arg(64);

void
BM_MultipassBitReversal(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    const auto p = perm::bitReversalPerm(net.size());
    for (auto _ : state) {
        auto res = perm::routeInPasses(net, p);
        benchmark::DoNotOptimize(res.passes());
    }
}
BENCHMARK(BM_MultipassBitReversal)->Arg(16)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
