/**
 * @file
 * Experiment C5 (Section 6): permutation routing.  The report
 * prints which classic permutation families pass the IADM in one
 * conflict-free pass (and via which relabeling offset), the
 * fraction of random permutations passable vs N, and the fault
 * reconfiguration success rate.  Benchmarks time admissibility
 * checks and full permutation routing.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "fault/injection.hpp"
#include "perm/one_pass.hpp"
#include "perm/perm_router.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const Label n_size = 32;
    const topo::IadmTopology net(n_size);

    std::cout << "=== C5: permutation families through IADM(N="
              << n_size << ") ===\n";
    const auto report = [&](const char *name,
                            const perm::Permutation &p) {
        const auto offs = perm::passingOffsets(p);
        std::cout << "  " << std::left << std::setw(18) << name
                  << std::right;
        if (offs.empty()) {
            std::cout << "not passable in one pass\n";
        } else {
            std::cout << "passable via " << offs.size()
                      << " offsets (first x=" << offs.front()
                      << ")\n";
        }
    };
    report("identity", perm::Permutation(n_size));
    report("shift +1", perm::shiftPerm(n_size, 1));
    report("shift +5", perm::shiftPerm(n_size, 5));
    report("bit complement", perm::bitComplementPerm(n_size, 31));
    report("exchange b2", perm::exchangePerm(n_size, 2));
    report("bit reversal", perm::bitReversalPerm(n_size));
    report("perfect shuffle", perm::perfectShufflePerm(n_size));

    std::cout << "\nFraction of uniformly random permutations "
                 "passable in one pass:\n";
    std::cout << std::setw(6) << "N" << std::setw(14) << "passable"
              << std::setw(12) << "trials" << "\n";
    Rng rng(5150);
    for (Label sz : {4u, 8u, 16u}) {
        const int trials = 2000;
        int pass = 0;
        for (int t = 0; t < trials; ++t) {
            const auto p = perm::randomPerm(sz, rng);
            pass += perm::findPassingOffset(p).has_value();
        }
        std::cout << std::setw(6) << sz << std::setw(13)
                  << std::fixed << std::setprecision(2)
                  << 100.0 * pass / trials << "%" << std::setw(12)
                  << trials << "\n";
    }

    std::cout << "\nExact one-pass census at N=8 (the [19]-style "
                 "question):\n";
    const auto census = perm::onePassCensus(8);
    std::cout << "  permutations: " << census.permutations
              << ", via cube subgraphs: " << census.viaSubgraph
              << ", exactly one-pass passable: "
              << census.exactlyPassable << "\n";
    std::cout << "  (Section 6's construction certifies "
              << 100.0 * static_cast<double>(census.viaSubgraph) /
                     static_cast<double>(census.exactlyPassable)
              << "% of the true one-pass set)\n";

    std::cout << "\nReconfiguration under nonstraight faults "
                 "(shift permutations, N=16):\n";
    const topo::IadmTopology small(16);
    std::cout << std::setw(8) << "faults" << std::setw(12)
              << "routed" << "\n";
    for (std::size_t f : {1u, 2u, 4u, 8u}) {
        int ok = 0;
        const int trials = 200;
        for (int t = 0; t < trials; ++t) {
            const auto fs =
                fault::randomNonstraightFaults(small, f, rng);
            const auto p =
                perm::shiftPerm(16, rng.uniform(16));
            ok += perm::routePermutation(small, p, fs).ok;
        }
        std::cout << std::setw(8) << f << std::setw(11)
                  << 100.0 * ok / trials << "%\n";
    }
    std::cout << "\n";
}

void
BM_ICubeAdmissible(benchmark::State &state)
{
    Rng rng(1);
    const auto p =
        perm::randomPerm(static_cast<Label>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(perm::isICubeAdmissible(p));
}
BENCHMARK(BM_ICubeAdmissible)->RangeMultiplier(4)->Range(8, 1024);

void
BM_FindPassingOffset(benchmark::State &state)
{
    // Worst case: inadmissible permutation scans all N offsets.
    const auto p = perm::bitReversalPerm(
        static_cast<Label>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(perm::findPassingOffset(p));
}
BENCHMARK(BM_FindPassingOffset)->RangeMultiplier(4)->Range(8, 256);

void
BM_RoutePermutation(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    const auto p = perm::shiftPerm(net.size(), 3);
    for (auto _ : state) {
        auto res = perm::routePermutation(net, p);
        benchmark::DoNotOptimize(res.ok);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * net.size());
}
BENCHMARK(BM_RoutePermutation)->Arg(16)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
