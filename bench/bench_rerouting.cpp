/**
 * @file
 * Experiments C2, F5, F6: Corollary 4.2's O(k) backtracking cost
 * and the Figure 5/6 rerouting scenarios.
 *
 * The report prints state-bits-changed and stages-visited as a
 * function of the backtracking depth k (the straight-link blockage
 * sits k stages above the last nonstraight link), demonstrating the
 * O(k) claim, plus the Figure 5/6 shapes; the benchmarks time
 * BACKTRACK at each depth.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/backtrack.hpp"
#include "core/reroute.hpp"
#include "fault/injection.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    const unsigned n = 10;
    const Label n_size = Label{1} << n;
    const topo::IadmTopology net(n_size);

    std::cout << "=== C2: Corollary 4.2 cost is O(k) (N=" << n_size
              << ") ===\n";
    std::cout << std::setw(6) << "k" << std::setw(14) << "bits chgd"
              << std::setw(16) << "stages walked" << std::setw(13)
              << "iterations" << "\n";
    // Canonical 1 -> 0 path: nonstraight at stage 0, straight
    // above; a straight blockage at stage k forces k-stage
    // backtracking.
    for (unsigned k = 1; k < n; ++k) {
        fault::FaultSet fs;
        fs.blockLink(net.straightLink(k, 0));
        const auto path =
            core::tsdtTrace(1, core::initialTag(n, 0), n_size);
        core::BacktrackStats stats;
        const auto re = core::backtrack(
            net, fs, path, k, fault::BlockageKind::Straight,
            core::initialTag(n, 0), &stats);
        if (!re)
            continue;
        std::cout << std::setw(6) << k << std::setw(14)
                  << stats.bitsChanged << std::setw(16)
                  << stats.stagesVisited << std::setw(13)
                  << stats.iterations << "\n";
    }

    std::cout << "\n=== F5: straight-link blockage reroute (Figure "
                 "5 shape, N=16) ===\n";
    const topo::IadmTopology small(16);
    const auto p0 =
        core::tsdtTrace(1, core::initialTag(4, 0), 16);
    std::cout << "  original : " << p0.str() << "\n";
    fault::FaultSet f5;
    f5.blockLink(small.straightLink(2, 0));
    const auto r5 = core::universalRoute(small, f5, 1, 0);
    std::cout << "  block (0->0)@S2, reroute: " << r5.path.str()
              << "\n";

    std::cout << "\n=== F6: double-nonstraight blockage reroute "
                 "(Figure 6 shape, N=16) ===\n";
    const auto p1 =
        core::tsdtTrace(1, core::initialTag(4, 4), 16);
    std::cout << "  original : " << p1.str() << "\n";
    fault::FaultSet f6;
    f6.blockLink(small.plusLink(2, 0));
    f6.blockLink(small.minusLink(2, 0));
    const auto r6 = core::universalRoute(small, f6, 1, 4);
    std::cout << "  block both nonstraight of 0@S2, reroute: "
              << r6.path.str() << "\n\n";
}

void
BM_BacktrackDepthK(benchmark::State &state)
{
    const unsigned n = 12;
    const Label n_size = Label{1} << n;
    const topo::IadmTopology net(n_size);
    const auto k = static_cast<unsigned>(state.range(0));
    fault::FaultSet fs;
    fs.blockLink(net.straightLink(k, 0));
    const auto tag = core::initialTag(n, 0);
    const auto path = core::tsdtTrace(1, tag, n_size);
    for (auto _ : state) {
        auto re = core::backtrack(net, fs, path, k,
                                  fault::BlockageKind::Straight,
                                  tag);
        benchmark::DoNotOptimize(re.has_value());
    }
}
BENCHMARK(BM_BacktrackDepthK)->DenseRange(1, 11, 2);

void
BM_RerouteVsBlockageCount(benchmark::State &state)
{
    const Label n_size = 64;
    const topo::IadmTopology net(n_size);
    Rng rng(static_cast<std::uint64_t>(state.range(0)) * 13 + 7);
    const auto fs = fault::randomLinkFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) {
        for (Label s = 0; s < 8; ++s) {
            auto res =
                core::universalRoute(net, fs, s, (s * 29) % 64);
            benchmark::DoNotOptimize(res.ok);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_RerouteVsBlockageCount)->RangeMultiplier(2)->Range(2, 64);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
