/**
 * @file
 * Throughput/latency benchmark for the route-serving daemon.
 *
 * Spins up an in-process RouteServer (real Unix-domain socket, real
 * poll loop — the same bytes a production client would see) and
 * drives it with a windowed pipelining client: up to --window
 * requests in flight, sent in small bursts, responses matched back
 * to their send timestamps in connection order.  Every
 * configuration runs twice — batched (the acceptor drains
 * everything readable into one epoch-pinned batch) and one-at-a-
 * time (--no-batch semantics) — and the report records sustained
 * qps and p50/p99 latency for both plus the speedup ratio.
 *
 * Request mixes are seed-derived and replayable:
 *   uniform  src, dst ~ U[0, N)
 *   perm     dst = bitrev(src) (an admissible permutation load)
 *   hotspot  20% of destinations pinned to node 0
 *   any other --mix string parses as a traffic scenario
 *   (docs/SIMULATOR.md grammar), sharing workload definitions with
 *   iadm_tool sweep --scenario
 * --save-log FILE writes the generated request lines so a run can
 * be replayed byte-for-byte later with --replay FILE (the log is
 * the wire format itself, one request per line).
 *
 * Correctness is checked inside the bench, not just measured:
 * batched and unbatched response streams must be byte-identical,
 * and for the tsdt scheme every response is additionally compared
 * against a line rebuilt from a direct universalRouteCompact()
 * call (the serve path may add caching, batching and sockets —
 * never different answers).  Any mismatch fails the run.
 *
 * Default ladder (no flags): N=1024, links:96 static faults,
 * tsdt x {uniform, perm, hotspot} at 200k requests, then the other
 * four schemes x uniform at 20k.  The perf_smoke_serve ctest runs
 * --net 64 --faults links:6 --requests 2000 --mix uniform.
 *
 * Results land in an iadm-bench-serve-v1 JSON document (default
 * BENCH_serve.json) tagged with the build type; the binary
 * re-reads and schema-checks its own report before exiting.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "core/reroute.hpp"
#include "serve/server.hpp"
#include "sim/sweep.hpp"
#include "serve/server_core.hpp"
#include "serve/wire.hpp"
#include "sim/network_sim.hpp"

namespace {

using namespace iadm;
using Clock = std::chrono::steady_clock;

struct Options
{
    Label netSize = 1024;
    std::string faults = "links:96";
    std::string mix = "all"; //!< uniform|perm|hotspot|all
    std::string scheme;      //!< empty = the default scheme ladder
    std::size_t requests = 200000;
    std::size_t window = 256;
    std::size_t burst = 32;
    unsigned warmupPasses = 1; //!< untimed replays before measuring
    std::uint64_t seed = 7;
    std::string replay;  //!< request-log file to replay
    std::string saveLog; //!< write the generated log here
    std::string out = "BENCH_serve.json";
    bool ladder = true;  //!< false once --scheme/--mix pin a config
};

Label
bitrev(Label v, unsigned n)
{
    Label r = 0;
    for (unsigned i = 0; i < n; ++i)
        r |= ((v >> i) & 1u) << (n - 1 - i);
    return r;
}

/**
 * Generate one mix's request lines (ids 1..q, wire format).  The
 * three legacy mixes ("uniform", "perm", "hotspot") keep their
 * historical draw streams byte-for-byte; any other string is parsed
 * as a traffic scenario (sim/scenario.hpp), so the serving bench
 * replays the same workloads the simulator sweeps —
 * e.g. --mix shape:bursty:16:64/dst:hotspot:0:0.2.  Shaper gates
 * thin the request stream: a source whose gate is closed does not
 * issue, and the generator redraws (bounded) until an open source
 * comes up, so exactly q requests always emerge.
 */
std::vector<std::string>
makeMix(const std::string &mix, Label n_size, std::size_t q,
        std::uint64_t seed)
{
    const unsigned n = topo::IadmTopology(n_size).stages();
    Rng rng(seed ^ 0xbe7c4a11ull);
    const bool legacy =
        mix == "uniform" || mix == "perm" || mix == "hotspot";
    std::unique_ptr<sim::TrafficPattern> pattern;
    if (!legacy) {
        const auto spec = sim::TrafficSpec::parse(mix);
        if (!spec) {
            std::cerr << "bad mix / scenario spec: " << mix << "\n";
            std::exit(2);
        }
        if (const auto err = spec->validate(n_size)) {
            std::cerr << "invalid mix '" << mix << "': " << *err
                      << "\n";
            std::exit(2);
        }
        pattern = spec->make(n_size);
    }
    const bool gated = pattern && pattern->gated();
    std::vector<std::string> lines;
    lines.reserve(q);
    for (std::size_t i = 0; i < q; ++i) {
        if (gated)
            pattern->beginCycle(static_cast<sim::Cycle>(i));
        Label src =
            static_cast<Label>(rng.uniform(n_size));
        Label dst;
        if (mix == "perm")
            dst = bitrev(src, n);
        else if (mix == "hotspot")
            dst = rng.uniform(10) < 2
                      ? 0
                      : static_cast<Label>(rng.uniform(n_size));
        else if (!pattern)
            dst = static_cast<Label>(rng.uniform(n_size));
        else {
            if (gated) {
                // Redraw closed sources; cap the spin so a scenario
                // that gates everything off (e.g. ramp from 0 at
                // request 0) still terminates.
                for (int spin = 0;
                     spin < 10000 && !pattern->gate(src, rng);
                     ++spin)
                    src = static_cast<Label>(rng.uniform(n_size));
            }
            dst = pattern->pick(src, rng);
        }
        lines.push_back("{\"id\":" + std::to_string(i + 1) +
                        ",\"op\":\"route\",\"src\":" +
                        std::to_string(src) + ",\"dst\":" +
                        std::to_string(dst) + "}\n");
    }
    return lines;
}

std::vector<std::string>
loadLog(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "cannot read replay log " << path << "\n";
        std::exit(1);
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line + "\n");
    return lines;
}

/** One measured run: qps + latency percentiles + response bytes. */
struct RunResult
{
    double qps = 0;
    double p50Us = 0;
    double p99Us = 0;
    std::uint64_t maxBatch = 0;
    std::uint64_t cacheHits = 0;
    /** Daemon-side per-request service time (log-bucket upper
     *  bounds, µs) — the client-side p50/p99 minus socket and
     *  queueing delay. */
    std::uint64_t serviceP50Us = 0;
    std::uint64_t serviceP99Us = 0;
    std::string bytes; //!< concatenated response lines, in order
};

/**
 * Drive @p lines through a fresh daemon over a real socket with a
 * windowed pipelining client and collect per-response latency.
 */
RunResult
runOnce(const Options &opt, sim::RoutingScheme scheme,
        const std::vector<std::string> &lines, bool batching)
{
    serve::ServeConfig cfg;
    cfg.netSize = opt.netSize;
    cfg.scheme = scheme;
    cfg.seed = opt.seed;
    cfg.batching = batching;

    const topo::IadmTopology net(opt.netSize);
    fault::FaultSet faults;
    std::string err;
    if (!serve::ServerCore::parseFaultArg(net, opt.faults, opt.seed,
                                          faults, err)) {
        std::cerr << err << "\n";
        std::exit(1);
    }
    serve::ServerCore core(cfg, std::move(faults));
    const std::string path = "/tmp/iadm_bench_serve_" +
                             std::to_string(::getpid()) + ".sock";
    serve::RouteServer server(core, path);
    if (!server.start(&err)) {
        std::cerr << err << "\n";
        std::exit(1);
    }
    std::thread loop([&] { server.run(); });

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)) != 0) {
        std::cerr << "connect " << path << " failed\n";
        std::exit(1);
    }

    // Pre-concatenate the log so the writer sends plain slices of
    // one blob — no per-burst string building inside the timed
    // window.
    const std::size_t q = lines.size();
    std::string blob;
    std::vector<std::size_t> lineOff(q + 1, 0);
    for (std::size_t i = 0; i < q; ++i) {
        blob += lines[i];
        lineOff[i + 1] = blob.size();
    }

    std::vector<Clock::time_point> sentAt(q);
    std::vector<double> latUs(q);
    RunResult res;
    std::string buf;

    // One windowed-pipelining pass over the log.  Warmup passes run
    // the identical protocol untimed so the measured pass sees the
    // daemon's steady state (route cache warm, ssdt switch states
    // settled) — "sustained qps" in the report means exactly this.
    const auto drive = [&](bool measured) {
        std::atomic<std::size_t> received{0};
        std::mutex mu;
        std::condition_variable cv;
        std::thread writer([&] {
            std::size_t sent = 0;
            while (sent < q) {
                {
                    std::unique_lock<std::mutex> lk(mu);
                    cv.wait(lk, [&] {
                        return sent - received.load() < opt.window;
                    });
                }
                const std::size_t room =
                    opt.window - (sent - received.load());
                const std::size_t take =
                    std::min({opt.burst, room, q - sent});
                if (measured) {
                    const auto now = Clock::now();
                    for (std::size_t i = 0; i < take; ++i)
                        sentAt[sent + i] = now;
                }
                std::size_t off = lineOff[sent];
                const std::size_t end = lineOff[sent + take];
                while (off < end) {
                    const ssize_t w =
                        ::send(fd, blob.data() + off, end - off,
                               MSG_NOSIGNAL);
                    if (w <= 0) {
                        std::cerr << "client send failed\n";
                        std::exit(1);
                    }
                    off += static_cast<std::size_t>(w);
                }
                sent += take;
            }
        });

        // Reader (this thread): responses come back in request
        // order on the single connection, so response k matches
        // sentAt[k].
        buf.clear();
        char chunk[1 << 16];
        const auto t0 = Clock::now();
        std::size_t seen = 0;
        std::size_t scan = 0;
        while (seen < q) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                std::cerr << "daemon closed early (" << seen << "/"
                          << q << " responses)\n";
                std::exit(1);
            }
            const auto now = Clock::now();
            buf.append(chunk, static_cast<std::size_t>(n));
            for (;;) {
                const auto nl = buf.find('\n', scan);
                if (nl == std::string::npos)
                    break;
                if (measured)
                    latUs[seen] =
                        std::chrono::duration<double, std::micro>(
                            now - sentAt[seen])
                            .count();
                ++seen;
                scan = nl + 1;
            }
            received.store(seen);
            cv.notify_one();
        }
        const auto t1 = Clock::now();
        writer.join();
        if (measured) {
            const double secs =
                std::chrono::duration<double>(t1 - t0).count();
            res.qps =
                secs > 0 ? static_cast<double>(q) / secs : 0;
            res.bytes = std::move(buf);
        }
    };

    for (unsigned p = 0; p < opt.warmupPasses; ++p)
        drive(/*measured=*/false);
    drive(/*measured=*/true);

    const auto st = core.statsSnapshot();
    res.maxBatch = st.maxBatch;
    res.cacheHits = st.routeHits;
    res.serviceP50Us = st.servicePercentileUs(0.50);
    res.serviceP99Us = st.servicePercentileUs(0.99);
    server.stop();
    loop.join();
    ::close(fd);

    std::sort(latUs.begin(), latUs.end());
    res.p50Us = latUs[q / 2];
    res.p99Us = latUs[std::min(q - 1, q * 99 / 100)];
    return res;
}

/**
 * The byte-identity oracle for tsdt: rebuild every expected
 * response line from a direct universalRouteCompact() call against
 * the same static fault set and epoch.
 */
std::string
oracleBytes(const Options &opt,
            const std::vector<std::string> &lines,
            std::uint64_t epoch)
{
    const topo::IadmTopology net(opt.netSize);
    fault::FaultSet faults;
    std::string err;
    serve::ServerCore::parseFaultArg(net, opt.faults, opt.seed,
                                     faults, err);
    const unsigned n = net.stages();
    std::string want;
    want.reserve(lines.size() * 64);
    for (const auto &line : lines) {
        const auto r = serve::parseRequest(
            std::string_view(line.data(), line.size() - 1));
        serve::ResponseWriter w(want, r.id);
        w.field("op", std::string_view("route"));
        w.field("epoch", epoch);
        if (faults.empty()) {
            w.field("ok", true);
            w.field("tag", core::initialTag(n, r.dst).str());
            w.field("reroutes", std::uint64_t{0});
        } else {
            const auto c = core::universalRouteCompact(
                net, faults, r.src, r.dst);
            w.field("ok", c.ok);
            if (c.ok) {
                w.field("tag", c.tag.str());
                w.field("reroutes",
                        static_cast<std::uint64_t>(c.reroutes));
            }
        }
        w.finish();
    }
    return want;
}

struct ConfigResult
{
    sim::RoutingScheme scheme;
    std::string mix;
    std::size_t requests;
    RunResult batched;
    RunResult unbatched;
};

void
firstMismatch(const std::string &a, const std::string &b,
              const char *what)
{
    std::size_t pos = 0;
    while (pos < a.size() && pos < b.size() && a[pos] == b[pos])
        ++pos;
    const std::size_t ls = a.rfind('\n', pos);
    const std::size_t start = ls == std::string::npos ? 0 : ls + 1;
    std::cerr << what << " mismatch at byte " << pos << ":\n  got  "
              << a.substr(start, 120) << "\n  want "
              << b.substr(start, 120) << "\n";
}

ConfigResult
runConfig(const Options &opt, sim::RoutingScheme scheme,
          const std::string &mix,
          const std::vector<std::string> &lines)
{
    std::cerr << "  " << sim::routingSchemeName(scheme) << " x "
              << mix << " (" << lines.size() << " requests)"
              << std::flush;
    ConfigResult cr;
    cr.scheme = scheme;
    cr.mix = mix;
    cr.requests = lines.size();
    cr.batched = runOnce(opt, scheme, lines, /*batching=*/true);
    cr.unbatched = runOnce(opt, scheme, lines, /*batching=*/false);

    // Batching is a perf lever, not a semantics lever: both modes
    // must produce byte-identical response streams.
    if (cr.batched.bytes != cr.unbatched.bytes) {
        std::cerr << "\n";
        firstMismatch(cr.batched.bytes, cr.unbatched.bytes,
                      "batched vs unbatched");
        std::exit(1);
    }
    // And the served tsdt answers must equal direct REROUTE calls.
    if (scheme == sim::RoutingScheme::TsdtSender) {
        serve::ServeConfig probe;
        probe.netSize = opt.netSize;
        probe.seed = opt.seed;
        const topo::IadmTopology net(opt.netSize);
        fault::FaultSet faults;
        std::string err;
        serve::ServerCore::parseFaultArg(net, opt.faults, opt.seed,
                                         faults, err);
        const auto want =
            oracleBytes(opt, lines, faults.version());
        if (cr.batched.bytes != want) {
            std::cerr << "\n";
            firstMismatch(cr.batched.bytes, want,
                          "served vs direct REROUTE");
            std::exit(1);
        }
    }
    std::cerr << ": " << static_cast<std::uint64_t>(cr.batched.qps)
              << " qps batched, "
              << static_cast<std::uint64_t>(cr.unbatched.qps)
              << " unbatched ("
              << (cr.unbatched.qps > 0
                      ? cr.batched.qps / cr.unbatched.qps
                      : 0)
              << "x)\n";
    return cr;
}

void
writeRun(JsonWriter &w, const char *key, const RunResult &r)
{
    w.key(key);
    w.beginObject();
    w.key("qps");
    w.value(r.qps);
    w.key("p50_us");
    w.value(r.p50Us);
    w.key("p99_us");
    w.value(r.p99Us);
    w.key("max_batch");
    w.value(r.maxBatch);
    w.key("cache_hits");
    w.value(r.cacheHits);
    w.key("service_p50_us");
    w.value(r.serviceP50Us);
    w.key("service_p99_us");
    w.value(r.serviceP99Us);
    w.endObject();
}

int
writeReport(const Options &opt,
            const std::vector<ConfigResult> &results)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("iadm-bench-serve-v1");
    w.key("build_type");
    w.value(bench::buildType());
    w.key("net_size");
    w.value(static_cast<std::uint64_t>(opt.netSize));
    w.key("faults");
    w.value(opt.faults);
    w.key("window");
    w.value(static_cast<std::uint64_t>(opt.window));
    w.key("burst");
    w.value(static_cast<std::uint64_t>(opt.burst));
    w.key("warmup_passes");
    w.value(static_cast<std::uint64_t>(opt.warmupPasses));
    w.key("seed");
    w.value(opt.seed);
    w.key("configs");
    w.beginArray();
    for (const auto &cr : results) {
        w.beginObject();
        w.key("scheme");
        w.value(sim::routingSchemeName(cr.scheme));
        w.key("mix");
        w.value(cr.mix);
        w.key("requests");
        w.value(static_cast<std::uint64_t>(cr.requests));
        writeRun(w, "batched", cr.batched);
        writeRun(w, "unbatched", cr.unbatched);
        w.key("speedup");
        w.value(cr.unbatched.qps > 0
                    ? cr.batched.qps / cr.unbatched.qps
                    : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    std::ofstream of(opt.out);
    of << os.str() << "\n";
    of.close();

    // Schema self-check (the perf-smoke gate): re-read the emitted
    // document and require the load-bearing fields.
    std::ifstream is(opt.out);
    std::stringstream back;
    back << is.rdbuf();
    for (const char *needle :
         {"\"schema\": \"iadm-bench-serve-v1\"", "\"build_type\"",
          "\"configs\"", "\"qps\"", "\"p99_us\"", "\"speedup\""}) {
        if (back.str().find(needle) == std::string::npos) {
            std::cerr << "schema check failed: missing " << needle
                      << "\n";
            return 1;
        }
    }
    std::cerr << "wrote " << opt.out << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::guardBuildType();
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << a << " requires a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--net")
            opt.netSize = static_cast<Label>(
                std::atoi(next().c_str()));
        else if (a == "--faults")
            opt.faults = next();
        else if (a == "--mix") {
            opt.mix = next();
            opt.ladder = false;
        } else if (a == "--scheme") {
            opt.scheme = next();
            opt.ladder = false;
        } else if (a == "--requests")
            opt.requests = static_cast<std::size_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        else if (a == "--window")
            opt.window = static_cast<std::size_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        else if (a == "--burst")
            opt.burst = static_cast<std::size_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        else if (a == "--warmup")
            opt.warmupPasses = static_cast<unsigned>(
                std::atoi(next().c_str()));
        else if (a == "--seed")
            opt.seed = static_cast<std::uint64_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        else if (a == "--replay") {
            opt.replay = next();
            opt.ladder = false;
        } else if (a == "--save-log")
            opt.saveLog = next();
        else if (a == "--out")
            opt.out = next();
        else {
            std::cerr
                << "usage: bench_serve [--net N] [--faults SPEC] "
                   "[--scheme S] "
                   "[--mix uniform|perm|hotspot|SCENARIO-SPEC] "
                   "[--requests Q] [--window W] [--burst B] "
                   "[--warmup P] [--seed S] [--replay LOG] "
                   "[--save-log LOG] [--out FILE]\n"
                   "  SCENARIO-SPEC: the scenario grammar of "
                   "docs/SIMULATOR.md, e.g.\n"
                   "  shape:bursty:16:64/dst:hotspot:0:0.2 or "
                   "dst:adversarial\n";
            return 2;
        }
    }

    std::vector<ConfigResult> results;
    if (!opt.replay.empty()) {
        const auto lines = loadLog(opt.replay);
        const auto scheme = sim::parseRoutingScheme(
            opt.scheme.empty() ? "tsdt" : opt.scheme);
        if (!scheme) {
            std::cerr << "unknown scheme " << opt.scheme << "\n";
            return 2;
        }
        results.push_back(
            runConfig(opt, *scheme, "replay", lines));
    } else if (!opt.ladder) {
        const auto scheme = sim::parseRoutingScheme(
            opt.scheme.empty() ? "tsdt" : opt.scheme);
        if (!scheme) {
            std::cerr << "unknown scheme " << opt.scheme << "\n";
            return 2;
        }
        const std::string mix =
            opt.mix == "all" ? "uniform" : opt.mix;
        const auto lines =
            makeMix(mix, opt.netSize, opt.requests, opt.seed);
        if (!opt.saveLog.empty()) {
            std::ofstream of(opt.saveLog);
            for (const auto &l : lines)
                of << l;
        }
        results.push_back(runConfig(opt, *scheme, mix, lines));
    } else {
        // The full ladder: tsdt (the cached sender path batching is
        // built around) across all three mixes, then the remaining
        // schemes under uniform load.
        std::cerr << "bench_serve ladder: N=" << opt.netSize
                  << " faults=" << opt.faults << "\n";
        for (const char *mix : {"uniform", "perm", "hotspot"}) {
            const auto lines = makeMix(mix, opt.netSize,
                                       opt.requests, opt.seed);
            results.push_back(runConfig(
                opt, sim::RoutingScheme::TsdtSender, mix, lines));
        }
        const std::size_t q = std::max<std::size_t>(
            1, opt.requests / 10);
        for (const auto s : {sim::RoutingScheme::TsdtDynamic,
                             sim::RoutingScheme::SsdtStatic,
                             sim::RoutingScheme::SsdtBalanced,
                             sim::RoutingScheme::DistanceTag}) {
            const auto lines =
                makeMix("uniform", opt.netSize, q, opt.seed);
            results.push_back(runConfig(opt, s, "uniform", lines));
        }
    }
    return writeReport(opt, results);
}
