/**
 * @file
 * Extension experiment E1 (ablation): latency-vs-load curves for
 * all routing schemes in the packet simulator, the effect of
 * transient blockages, and the IADM's one-input switch versus the
 * Gamma network's 3x3 crossbar (the switch distinction Section 1
 * draws between the two networks).
 *
 * The report sections are parameter sweeps driven through the
 * deterministic parallel sweep runner (sim/sweep.hpp); each sweep
 * also lands as a structured JSON report under bench/out/.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "bench_common.hpp"
#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace iadm;
using namespace iadm::sim;

constexpr Label kNetSize = 32;
constexpr Cycle kCycles = 6000;

unsigned
benchWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/** Run the grid and drop the JSON report in bench/out/<name>.json. */
std::vector<CellResult>
sweepAndSave(const SweepGrid &grid, const std::string &name,
             const SweepOptions &opts = {})
{
    SweepOptions o = opts;
    if (o.workers == 0)
        o.workers = benchWorkers();
    auto results = runSweep(grid, o);
    std::filesystem::create_directories("bench/out");
    std::ofstream os("bench/out/" + name + ".json");
    if (os) {
        ReportOptions ropts;
        ropts.buildType = iadm::bench::buildType();
        writeSweepReport(os, grid, results, ropts);
    }
    return results;
}

/** First result whose cell matches scheme/rate/crossbar. */
const CellResult &
find(const std::vector<CellResult> &results, RoutingScheme scheme,
     double rate, bool crossbar = false)
{
    for (const auto &r : results)
        if (r.cell.scheme == scheme &&
            r.cell.injectionRate == rate &&
            r.cell.crossbar == crossbar)
            return r;
    throw std::logic_error("cell not found");
}

void
printReport()
{
    const std::vector<RoutingScheme> all_schemes{
        RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
        RoutingScheme::TsdtSender, RoutingScheme::DistanceTag,
        RoutingScheme::TsdtDynamic};

    std::cout << "=== E1a: latency vs offered load per scheme (N="
              << kNetSize << ") ===\n";
    SweepGrid e1a;
    e1a.netSizes = {kNetSize};
    e1a.schemes = all_schemes;
    e1a.injectionRates = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    e1a.warmupCycles = kCycles / 5;
    e1a.measureCycles = kCycles;
    e1a.masterSeed = 55;
    const auto ra = sweepAndSave(e1a, "sim_throughput_e1a_latency");
    std::cout << std::setw(7) << "rate";
    for (const auto scheme : all_schemes)
        std::cout << std::setw(14) << routingSchemeName(scheme);
    std::cout << "\n";
    for (const double rate : e1a.injectionRates) {
        std::cout << std::setw(7) << std::setprecision(2)
                  << std::fixed << rate;
        for (const auto scheme : all_schemes)
            std::cout << std::setw(14) << std::setprecision(2)
                      << find(ra, scheme, rate)
                             .replicates[0]
                             .metrics.avgLatency();
        std::cout << "\n";
    }

    std::cout << "\n=== E1b: IADM one-input switches vs Gamma 3x3 "
                 "crossbars ===\n";
    SweepGrid e1b;
    e1b.netSizes = {kNetSize};
    e1b.schemes = {RoutingScheme::SsdtBalanced};
    e1b.injectionRates = {0.3, 0.5, 0.7, 0.9};
    e1b.crossbarModes = {false, true};
    e1b.warmupCycles = kCycles / 5;
    e1b.measureCycles = kCycles;
    e1b.masterSeed = 56;
    const auto rb = sweepAndSave(e1b, "sim_throughput_e1b_crossbar");
    std::cout << std::setw(7) << "rate" << std::setw(14) << "IADM"
              << std::setw(14) << "Gamma" << "  (throughput)\n";
    for (const double rate : e1b.injectionRates) {
        std::cout << std::setw(7) << std::setprecision(2)
                  << std::fixed << rate;
        for (const bool crossbar : {false, true}) {
            const auto &rep =
                find(rb, RoutingScheme::SsdtBalanced, rate, crossbar)
                    .replicates[0];
            std::cout << std::setw(14) << std::setprecision(4)
                      << rep.metrics.throughput(rep.measuredCycles);
        }
        std::cout << "\n";
    }

    std::cout << "\n=== E1c: transient blockage storm (SSDT, rate "
                 "0.3) ===\n";
    SweepGrid e1c;
    e1c.netSizes = {kNetSize};
    e1c.schemes = {RoutingScheme::SsdtStatic};
    e1c.injectionRates = {0.3};
    e1c.measureCycles = kCycles;
    e1c.masterSeed = 57;
    SweepOptions storm;
    // 60 random nonstraight links each go down for 500 cycles; the
    // hook rng derives from the replicate seed, so the storm is as
    // reproducible as the rest of the sweep.
    storm.setup = [](NetworkSim &s, const SweepCell &cell,
                     Rng &rng) {
        const topo::IadmTopology topo(cell.netSize);
        for (int k = 0; k < 60; ++k) {
            const auto stage =
                static_cast<unsigned>(rng.uniform(topo.stages()));
            const auto j =
                static_cast<Label>(rng.uniform(cell.netSize));
            const auto from = 1000 + rng.uniform(3000);
            const auto link = rng.chance(0.5)
                                  ? topo.plusLink(stage, j)
                                  : topo.minusLink(stage, j);
            s.scheduleTransientBlockage(link, from, from + 500);
        }
    };
    const auto rc =
        sweepAndSave(e1c, "sim_throughput_e1c_storm", storm);
    std::cout << "  "
              << rc[0].replicates[0].metrics.summary(kCycles)
              << "\n";
    std::cout << "  (reroutes = spare-link repairs triggered by "
                 "transient blockages)\n";

    std::cout << "\n=== E1d: schemes under static link faults "
                 "(rate 0.2, 8 faults) ===\n";
    SweepGrid e1d;
    e1d.netSizes = {kNetSize};
    e1d.schemes = {RoutingScheme::SsdtStatic,
                   RoutingScheme::TsdtSender,
                   RoutingScheme::TsdtDynamic,
                   RoutingScheme::DistanceTag};
    e1d.injectionRates = {0.2};
    e1d.faults = {
        FaultScenario{FaultScenario::Kind::RandomLinks, 8}};
    e1d.measureCycles = kCycles;
    e1d.masterSeed = 62;
    const auto rd = sweepAndSave(e1d, "sim_throughput_e1d_faults");
    std::cout << std::setw(14) << "scheme" << std::setw(12)
              << "delivered" << std::setw(10) << "dropped"
              << std::setw(12) << "unroutable" << std::setw(12)
              << "back-hops" << std::setw(10) << "latency" << "\n";
    for (const auto &cr : rd) {
        const Metrics &m = cr.replicates[0].metrics;
        std::cout << std::setw(14)
                  << routingSchemeName(cr.cell.scheme)
                  << std::setw(12) << m.delivered() << std::setw(10)
                  << m.dropped() << std::setw(12) << m.unroutable()
                  << std::setw(12) << m.backtrackHops()
                  << std::setw(10) << std::setprecision(2)
                  << m.avgLatency() << "\n";
    }
    std::cout << "  (SSDT and distance-tag stall forever on pairs "
                 "needing straight-blockage\n   repair; the TSDT "
                 "schemes route or reject them — sender-side before "
                 "injection,\n   dynamic in-network with backtrack "
                 "hops)\n\n";
}

void
BM_ThroughputSaturation(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::SsdtBalanced;
    cfg.injectionRate = static_cast<double>(state.range(0)) / 100.0;
    cfg.seed = 59;
    NetworkSim s(cfg, std::make_unique<UniformTraffic>(64));
    for (auto _ : state)
        s.step();
    state.counters["delivered"] = static_cast<double>(
        s.metrics().delivered());
}
BENCHMARK(BM_ThroughputSaturation)->Arg(10)->Arg(40)->Arg(80);

void
BM_GammaCrossbarStep(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::SsdtBalanced;
    cfg.injectionRate = 0.5;
    cfg.crossbarSwitches = true;
    cfg.seed = 60;
    NetworkSim s(cfg, std::make_unique<UniformTraffic>(64));
    for (auto _ : state)
        s.step();
}
BENCHMARK(BM_GammaCrossbarStep);

/** Wall-clock scaling of the sweep runner itself. */
void
BM_SweepWorkers(benchmark::State &state)
{
    SweepGrid grid;
    grid.netSizes = {16};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender};
    grid.injectionRates = {0.1, 0.3};
    grid.replicates = 2;
    grid.measureCycles = 500;
    grid.masterSeed = 63;
    SweepOptions opts;
    opts.workers = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto results = runSweep(grid, opts);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * grid.runCount()));
}
BENCHMARK(BM_SweepWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
