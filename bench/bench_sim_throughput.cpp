/**
 * @file
 * Extension experiment E1 (ablation): latency-vs-load curves for
 * all four routing schemes in the packet simulator, the effect of
 * transient blockages, and the IADM's one-input switch versus the
 * Gamma network's 3x3 crossbar (the switch distinction Section 1
 * draws between the two networks).
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "sim/network_sim.hpp"

namespace {

using namespace iadm;
using namespace iadm::sim;

void
printReport()
{
    const Label n_size = 32;
    const Cycle cycles = 6000;

    std::cout << "=== E1a: latency vs offered load per scheme (N="
              << n_size << ") ===\n";
    std::cout << std::setw(7) << "rate";
    for (auto scheme : {RoutingScheme::SsdtStatic,
                        RoutingScheme::SsdtBalanced,
                        RoutingScheme::TsdtSender,
                        RoutingScheme::DistanceTag,
                        RoutingScheme::TsdtDynamic})
        std::cout << std::setw(14) << routingSchemeName(scheme);
    std::cout << "\n";
    for (double rate : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
        std::cout << std::setw(7) << std::setprecision(2)
                  << std::fixed << rate;
        for (auto scheme : {RoutingScheme::SsdtStatic,
                            RoutingScheme::SsdtBalanced,
                            RoutingScheme::TsdtSender,
                            RoutingScheme::DistanceTag,
                            RoutingScheme::TsdtDynamic}) {
            SimConfig cfg;
            cfg.netSize = n_size;
            cfg.scheme = scheme;
            cfg.injectionRate = rate;
            cfg.seed = 55;
            NetworkSim s(cfg,
                         std::make_unique<UniformTraffic>(n_size));
            s.run(cycles / 5);
            s.resetMetrics();
            s.run(cycles);
            std::cout << std::setw(14) << std::setprecision(2)
                      << s.metrics().avgLatency();
        }
        std::cout << "\n";
    }

    std::cout << "\n=== E1b: IADM one-input switches vs Gamma 3x3 "
                 "crossbars ===\n";
    std::cout << std::setw(7) << "rate" << std::setw(14) << "IADM"
              << std::setw(14) << "Gamma" << "  (throughput)\n";
    for (double rate : {0.3, 0.5, 0.7, 0.9}) {
        std::cout << std::setw(7) << std::setprecision(2)
                  << std::fixed << rate;
        for (bool crossbar : {false, true}) {
            SimConfig cfg;
            cfg.netSize = n_size;
            cfg.scheme = RoutingScheme::SsdtBalanced;
            cfg.injectionRate = rate;
            cfg.crossbarSwitches = crossbar;
            cfg.seed = 56;
            NetworkSim s(cfg,
                         std::make_unique<UniformTraffic>(n_size));
            s.run(cycles / 5);
            s.resetMetrics();
            s.run(cycles);
            std::cout << std::setw(14) << std::setprecision(4)
                      << s.metrics().throughput(cycles);
        }
        std::cout << "\n";
    }

    std::cout << "\n=== E1c: transient blockage storm (SSDT, rate "
                 "0.3) ===\n";
    const topo::IadmTopology topo(n_size);
    SimConfig cfg;
    cfg.netSize = n_size;
    cfg.scheme = RoutingScheme::SsdtStatic;
    cfg.injectionRate = 0.3;
    cfg.seed = 57;
    NetworkSim s(cfg, std::make_unique<UniformTraffic>(n_size));
    Rng rng(58);
    // 60 random nonstraight links each go down for 500 cycles.
    for (int k = 0; k < 60; ++k) {
        const auto stage =
            static_cast<unsigned>(rng.uniform(topo.stages()));
        const auto j = static_cast<Label>(rng.uniform(n_size));
        const auto from = 1000 + rng.uniform(3000);
        const auto link = rng.chance(0.5) ? topo.plusLink(stage, j)
                                          : topo.minusLink(stage, j);
        s.scheduleTransientBlockage(link, from, from + 500);
    }
    s.run(6000);
    std::cout << "  " << s.metrics().summary(6000) << "\n";
    std::cout << "  (reroutes = spare-link repairs triggered by "
                 "transient blockages)\n";

    std::cout << "\n=== E1d: schemes under static link faults "
                 "(rate 0.2, 8 faults) ===\n";
    const topo::IadmTopology net2(n_size);
    Rng frng(61);
    const auto fs = [&] {
        fault::FaultSet f;
        auto all = net2.allLinks();
        for (std::size_t idx : frng.sample(all.size(), 8))
            f.blockLink(all[idx]);
        return f;
    }();
    std::cout << std::setw(14) << "scheme" << std::setw(12)
              << "delivered" << std::setw(10) << "dropped"
              << std::setw(12) << "unroutable" << std::setw(12)
              << "back-hops" << std::setw(10) << "latency" << "\n";
    for (auto scheme : {RoutingScheme::SsdtStatic,
                        RoutingScheme::TsdtSender,
                        RoutingScheme::TsdtDynamic,
                        RoutingScheme::DistanceTag}) {
        SimConfig c2;
        c2.netSize = n_size;
        c2.scheme = scheme;
        c2.injectionRate = 0.2;
        c2.seed = 62;
        NetworkSim sim2(c2,
                        std::make_unique<UniformTraffic>(n_size),
                        fs);
        sim2.run(6000);
        const auto &m = sim2.metrics();
        std::cout << std::setw(14) << routingSchemeName(scheme)
                  << std::setw(12) << m.delivered() << std::setw(10)
                  << m.dropped() << std::setw(12) << m.unroutable()
                  << std::setw(12) << m.backtrackHops()
                  << std::setw(10) << std::setprecision(2)
                  << m.avgLatency() << "\n";
    }
    std::cout << "  (SSDT and distance-tag stall forever on pairs "
                 "needing straight-blockage\n   repair; the TSDT "
                 "schemes route or reject them — sender-side before "
                 "injection,\n   dynamic in-network with backtrack "
                 "hops)\n\n";
}

void
BM_ThroughputSaturation(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::SsdtBalanced;
    cfg.injectionRate = static_cast<double>(state.range(0)) / 100.0;
    cfg.seed = 59;
    NetworkSim s(cfg, std::make_unique<UniformTraffic>(64));
    for (auto _ : state)
        s.step();
    state.counters["delivered"] = static_cast<double>(
        s.metrics().delivered());
}
BENCHMARK(BM_ThroughputSaturation)->Arg(10)->Arg(40)->Arg(80);

void
BM_GammaCrossbarStep(benchmark::State &state)
{
    SimConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = RoutingScheme::SsdtBalanced;
    cfg.injectionRate = 0.5;
    cfg.crossbarSwitches = true;
    cfg.seed = 60;
    NetworkSim s(cfg, std::make_unique<UniformTraffic>(64));
    for (auto _ : state)
        s.step();
}
BENCHMARK(BM_GammaCrossbarStep);

} // namespace

int
main(int argc, char **argv)
{
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
