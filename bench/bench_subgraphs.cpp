/**
 * @file
 * Experiments C4 and F8 (Theorem 6.1, Figure 8): cube subgraph
 * counting.  The report regenerates Figure 8 (the x=1 relabeled
 * subgraph for N=8), verifies the constructive family's
 * distinctness (N/2 prefix families x 2^N last-stage masks), and
 * prints the exhaustive census for N=4 and N=8 — showing the lower
 * bound is in fact exact there.  Benchmarks time the isomorphism
 * search and the census.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "fault/injection.hpp"
#include "subgraph/enumeration.hpp"
#include "subgraph/reconfigure.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    std::cout << "=== F8: cube subgraph by relabeling x=1, N=8 "
                 "(Figure 8) ===\n";
    const topo::IadmTopology net(8);
    const subgraph::CubeSubgraph g(net, 1);
    for (unsigned i = 0; i < net.stages(); ++i) {
        std::cout << "  stage " << i << ": active nonstraight:";
        for (Label j = 0; j < 8; ++j) {
            const auto l = g.activeNonstraight(i, j);
            std::cout << " " << j
                      << (l.kind == topo::LinkKind::Plus ? "+"
                                                         : "-");
        }
        std::cout << "\n";
    }
    std::cout << "  (every straight link is also active; physical "
                 "switch j behaves as\n   logical j+1, so e.g. "
                 "0@S0 is in state Cbar — as Figure 8 notes)\n\n";

    std::cout << "=== C4: Theorem 6.1 counting ===\n";
    std::cout << std::setw(6) << "N" << std::setw(16)
              << "prefix families" << std::setw(18)
              << "bound N/2*2^N" << "\n";
    for (Label n_size : {4u, 8u, 16u, 32u}) {
        const topo::IadmTopology t(n_size);
        std::cout << std::setw(6) << n_size << std::setw(16)
                  << subgraph::countDistinctPrefixFamilies(t)
                  << std::setw(18)
                  << ((static_cast<std::uint64_t>(n_size) / 2)
                      << n_size)
                  << "\n";
    }

    std::cout << "\nExhaustive census (all per-switch sign choices, "
                 "exact isomorphism):\n";
    std::cout << std::setw(6) << "N" << std::setw(16)
              << "sign choices" << std::setw(14) << "involution"
              << std::setw(10) << "iso" << std::setw(18)
              << "total w/ S_{n-1}" << std::setw(14) << "bound"
              << "\n";
    for (Label n_size : {4u, 8u}) {
        const topo::IadmTopology t(n_size);
        const auto c = subgraph::exhaustiveCensus(t);
        std::cout << std::setw(6) << n_size << std::setw(16)
                  << c.stateSubgraphsPrefix << std::setw(14)
                  << c.involutionValid << std::setw(10)
                  << c.isoToICube << std::setw(18)
                  << c.totalWithLastStage << std::setw(14)
                  << c.paperLowerBound << "\n";
    }
    std::cout << "(empirical finding: for N=4 and N=8 the paper's "
                 "lower bound is exact)\n\n";

    std::cout << "Smart census (involution enumeration + blockwise "
                 "filter + exact iso):\n";
    std::cout << std::setw(6) << "N" << std::setw(13) << "involution"
              << std::setw(12) << "blockwise" << std::setw(10)
              << "family" << std::setw(14) << "non-family"
              << std::setw(10) << "iso" << std::setw(16) << "total"
              << "\n";
    for (Label n_size : {8u, 16u, 32u}) {
        const topo::IadmTopology t(n_size);
        const auto c = subgraph::smartCensus(t);
        std::cout << std::setw(6) << n_size << std::setw(13)
                  << c.involutionValid << std::setw(12)
                  << c.blockwiseValid << std::setw(10)
                  << c.familyMembers << std::setw(14)
                  << c.nonFamilyIso << std::setw(10) << c.isoToICube
                  << std::setw(16) << c.totalWithLastStage << "\n";
    }
    std::cout << "(non-family iso = 0 everywhere: Theorem 6.1's "
                 "bound is exact for N <= 32)\n\n";
}

void
BM_IsoCheckRelabelMember(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    const auto g = subgraph::StateSubgraph::fromCube(
        subgraph::CubeSubgraph(net, 1));
    for (auto _ : state)
        benchmark::DoNotOptimize(subgraph::isIsomorphicToICube(g));
}
BENCHMARK(BM_IsoCheckRelabelMember)->Arg(4)->Arg(8);

void
BM_CensusN4(benchmark::State &state)
{
    const topo::IadmTopology net(4);
    for (auto _ : state) {
        auto c = subgraph::exhaustiveCensus(net);
        benchmark::DoNotOptimize(c.isoToICube);
    }
}
BENCHMARK(BM_CensusN4);

void
BM_SubgraphRouteAllPairs(benchmark::State &state)
{
    const topo::IadmTopology net(
        static_cast<Label>(state.range(0)));
    const subgraph::CubeSubgraph g(net, 3 % net.size());
    for (auto _ : state) {
        for (Label s = 0; s < net.size(); ++s) {
            auto p = g.route(s, (s * 7 + 1) % net.size());
            benchmark::DoNotOptimize(p.destination());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * net.size());
}
BENCHMARK(BM_SubgraphRouteAllPairs)
    ->RangeMultiplier(4)
    ->Range(8, 512);

void
BM_ReconfigureSearch(benchmark::State &state)
{
    const topo::IadmTopology net(64);
    Rng rng(9);
    const auto fs = fault::randomNonstraightFaults(
        net, static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) {
        auto g = subgraph::reconfigureAroundFaults(net, fs);
        benchmark::DoNotOptimize(g.has_value());
    }
}
BENCHMARK(BM_ReconfigureSearch)->Arg(1)->Arg(4)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
