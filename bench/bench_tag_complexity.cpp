/**
 * @file
 * Experiment C1: the paper's complexity comparison.  A nonstraight
 * reroute costs O(1) time x space under SSDT/TSDT (one state-bit
 * complement, Corollary 4.1) versus O(log N) under the distance-tag
 * schemes of [9]/[10] (two's complement or carry propagation over
 * the remaining tag) and worse under exhaustive redundant-number
 * search [13].
 *
 * The report prints measured digit-operation counts per reroute as
 * N grows (the paper's table-style claim); the benchmarks measure
 * wall-clock time for the same operations.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "baselines/dynamic_reroute.hpp"
#include "baselines/redundant_number.hpp"
#include "common/modmath.hpp"
#include "core/reroute.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    std::cout << "=== C1: rerouting cost vs N (digit/bit operations "
                 "per nonstraight reroute) ===\n";
    std::cout << std::setw(6) << "N" << std::setw(8) << "n"
              << std::setw(12) << "TSDT" << std::setw(12) << "SSDT"
              << std::setw(14) << "MS two's-c" << std::setw(14)
              << "MS digit-add" << std::setw(14) << "PR redundant"
              << "\n";
    for (unsigned n = 3; n <= 16; ++n) {
        const Label n_size = Label{1} << n;
        const topo::IadmTopology net(n_size);
        fault::FaultSet fs;
        // The positive-dominant 1 -> 0 route takes +2^0 first;
        // block it to force exactly one reroute at stage 0 (worst
        // case for the O(n) repairs: the whole remaining tag).
        fs.blockLink(net.plusLink(0, 1));

        const auto ms2c = baselines::dynamicDistanceRoute(
            net, fs, 1, 0, baselines::McMillenScheme::TwosComplement);
        const auto msda = baselines::dynamicDistanceRoute(
            net, fs, 1, 0, baselines::McMillenScheme::DigitAddition);
        // Subtract the n-op tag setup to isolate the repair cost.
        const auto repair_2c = ms2c.ops.ops - n;
        const auto repair_da = msda.ops.ops - n;

        const auto pr =
            baselines::redundantNumberRoute(net, fs, 1, 0);

        std::cout << std::setw(6) << n_size << std::setw(8) << n
                  << std::setw(12) << 1 << std::setw(12) << 1
                  << std::setw(14) << repair_2c << std::setw(14)
                  << repair_da << std::setw(14) << pr.ops.ops
                  << "\n";
    }
    std::cout << "(TSDT = Corollary 4.1 complements one state bit; "
                 "SSDT flips one switch\nstate: O(1) by construction. "
                 "The [9] schemes rewrite O(n) digits; the\n[13] "
                 "search explores representations.)\n\n";
}

void
BM_TsdtCorollary41(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    core::TsdtTag tag(n, 0, 0);
    unsigned i = 0;
    for (auto _ : state) {
        tag.flipStateBit(i);
        benchmark::DoNotOptimize(tag);
        i = (i + 1) % n;
    }
}
BENCHMARK(BM_TsdtCorollary41)->DenseRange(3, 18, 3);

void
BM_McMillenTwosComplementReroute(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    const Label n_size = Label{1} << n;
    const topo::IadmTopology net(n_size);
    fault::FaultSet fs;
    fs.blockLink(net.plusLink(0, 1));
    for (auto _ : state) {
        auto res = baselines::dynamicDistanceRoute(
            net, fs, 1, 0,
            baselines::McMillenScheme::TwosComplement);
        benchmark::DoNotOptimize(res.ops.ops);
    }
}
BENCHMARK(BM_McMillenTwosComplementReroute)->DenseRange(3, 18, 3);

void
BM_McMillenDigitAdditionReroute(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    const Label n_size = Label{1} << n;
    const topo::IadmTopology net(n_size);
    fault::FaultSet fs;
    fs.blockLink(net.plusLink(0, 1));
    for (auto _ : state) {
        auto res = baselines::dynamicDistanceRoute(
            net, fs, 1, 0,
            baselines::McMillenScheme::DigitAddition);
        benchmark::DoNotOptimize(res.ops.ops);
    }
}
BENCHMARK(BM_McMillenDigitAdditionReroute)->DenseRange(3, 18, 3);

void
BM_RedundantNumberSearch(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    const Label n_size = Label{1} << n;
    const topo::IadmTopology net(n_size);
    fault::FaultSet fs;
    fs.blockLink(net.plusLink(0, 1));
    for (auto _ : state) {
        auto res =
            baselines::redundantNumberRoute(net, fs, 1, 0);
        benchmark::DoNotOptimize(res.ops.ops);
    }
}
BENCHMARK(BM_RedundantNumberSearch)->DenseRange(3, 15, 3);

void
BM_FullRerouteCall(benchmark::State &state)
{
    // End-to-end REROUTE (trace + repair) for the same scenario.
    const auto n = static_cast<unsigned>(state.range(0));
    const Label n_size = Label{1} << n;
    const topo::IadmTopology net(n_size);
    fault::FaultSet fs;
    fs.blockLink(net.minusLink(0, 1)); // canonical 1 -> 0 first hop
    for (auto _ : state) {
        auto res = core::universalRoute(net, fs, 1, 0);
        benchmark::DoNotOptimize(res.ok);
    }
}
BENCHMARK(BM_FullRerouteCall)->DenseRange(3, 18, 3);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
