/**
 * @file
 * Experiments F1-F3 (paper Figures 1-3): regenerate the network
 * structures and benchmark topology queries.
 *
 * The report section prints the ICube (both graph models) and IADM
 * networks for N=8 — the content of Figures 1, 2 and 3 — plus the
 * even/odd switch classification Figure 2 annotates.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "topology/cube_family.hpp"
#include "topology/iadm.hpp"
#include "topology/icube.hpp"
#include "topology/render.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    std::cout << "=== F1/F3: ICube network, N=8 (Figures 1 and 3) "
                 "===\n";
    topo::ICubeTopology cube(8);
    std::cout << topo::asciiDiagram(cube) << "\n";

    std::cout << "=== F2: IADM network, N=8 (Figure 2) ===\n";
    topo::IadmTopology iadm(8);
    std::cout << topo::asciiDiagram(iadm) << "\n";
    std::cout << "even/odd switch classification (Figure 2):\n"
              << topo::parityTable(iadm) << "\n";

    std::cout << "ICube-subgraph check: every ICube link is an IADM "
                 "link: ";
    std::size_t found = 0;
    const auto all = iadm.allLinks();
    for (const topo::Link &l : cube.allLinks()) {
        for (const topo::Link &m : all)
            if (l == m) {
                ++found;
                break;
            }
    }
    std::cout << found << "/" << cube.allLinks().size() << "\n\n";
}

void
BM_IadmConstructValidate(benchmark::State &state)
{
    const auto n_size = static_cast<Label>(state.range(0));
    for (auto _ : state) {
        topo::IadmTopology t(n_size);
        t.validate();
        benchmark::DoNotOptimize(t.linksPerStage());
    }
}
BENCHMARK(BM_IadmConstructValidate)->RangeMultiplier(4)->Range(8, 512);

void
BM_IadmAllLinks(benchmark::State &state)
{
    const topo::IadmTopology t(static_cast<Label>(state.range(0)));
    for (auto _ : state) {
        auto links = t.allLinks();
        benchmark::DoNotOptimize(links.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 3 *
        t.size() * t.stages());
}
BENCHMARK(BM_IadmAllLinks)->RangeMultiplier(4)->Range(8, 1024);

void
BM_ICubeDestinationTagHop(benchmark::State &state)
{
    const topo::ICubeTopology t(static_cast<Label>(state.range(0)));
    Label j = 1;
    for (auto _ : state) {
        for (unsigned i = 0; i < t.stages(); ++i)
            j = t.nextHop(i, j, 5 % t.size());
        benchmark::DoNotOptimize(j);
    }
}
BENCHMARK(BM_ICubeDestinationTagHop)
    ->RangeMultiplier(4)
    ->Range(8, 1024);

void
BM_InLinksScan(benchmark::State &state)
{
    const topo::IadmTopology t(static_cast<Label>(state.range(0)));
    for (auto _ : state) {
        auto in = t.inLinks(1, 0);
        benchmark::DoNotOptimize(in.data());
    }
}
BENCHMARK(BM_InLinksScan)->RangeMultiplier(4)->Range(8, 256);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
