/**
 * @file
 * Experiment C3: the universal rerouting claim (Section 5) at
 * scale.  REROUTE must agree with BFS reachability for any
 * combination of multiple blockages; the report sweeps blockage
 * density and prints agreement plus the division of labor between
 * Corollary 4.1 flips and BACKTRACK calls; the benchmarks compare
 * REROUTE's cost against the BFS oracle and the exhaustive
 * redundant-number search on identical instances.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "baselines/redundant_number.hpp"
#include "core/oracle.hpp"
#include "core/pivot.hpp"
#include "core/reroute.hpp"
#include "fault/injection.hpp"

namespace {

using namespace iadm;

void
printReport()
{
    std::cout << "=== C3: REROUTE vs BFS oracle, random multi-"
                 "blockage sweep (N=64) ===\n";
    std::cout << std::setw(8) << "faults" << std::setw(10) << "pairs"
              << std::setw(10) << "agree" << std::setw(12)
              << "reachable" << std::setw(10) << "cor4.1"
              << std::setw(12) << "backtracks" << "\n";
    const Label n_size = 64;
    const topo::IadmTopology net(n_size);
    Rng rng(424242);
    for (std::size_t f : {4u, 16u, 48u, 96u, 160u, 256u}) {
        std::size_t pairs = 0, agree = 0, reachable = 0;
        std::uint64_t flips = 0, backs = 0;
        for (int trial = 0; trial < 40; ++trial) {
            const auto fs = fault::randomLinkFaults(net, f, rng);
            for (int k = 0; k < 25; ++k) {
                const auto s =
                    static_cast<Label>(rng.uniform(n_size));
                const auto d =
                    static_cast<Label>(rng.uniform(n_size));
                ++pairs;
                const bool oracle =
                    core::oracleReachable(net, fs, s, d);
                const auto res =
                    core::universalRoute(net, fs, s, d);
                agree += (res.ok == oracle);
                reachable += oracle;
                flips += res.corollary41;
                backs += res.backtracks;
            }
        }
        std::cout << std::setw(8) << f << std::setw(10) << pairs
                  << std::setw(9)
                  << (100.0 * static_cast<double>(agree) /
                      static_cast<double>(pairs))
                  << "%" << std::setw(11)
                  << (100.0 * static_cast<double>(reachable) /
                      static_cast<double>(pairs))
                  << "%" << std::setw(10) << flips << std::setw(12)
                  << backs << "\n";
    }
    std::cout << "(agreement must be 100% at every density: REROUTE "
                 "finds a path iff one\nexists — the Section 5 "
                 "theorem)\n\n";

    // Exhaustive spot: for sampled pairs at N=16, EVERY subset of
    // the pair's participating links (the only links that matter).
    std::cout << "Exhaustive subset check, N=16 (every blockage "
                 "combination per pair):\n";
    const topo::IadmTopology net16(16);
    Rng rng2(99);
    std::uint64_t instances = 0, agreements = 0;
    for (int pair = 0; pair < 24; ++pair) {
        const auto s = static_cast<Label>(rng2.uniform(16));
        const auto d = static_cast<Label>(rng2.uniform(16));
        const auto part = core::participatingLinks(net16, s, d);
        const std::uint64_t subsets = std::uint64_t{1}
                                      << part.size();
        for (std::uint64_t mask = 0; mask < subsets; ++mask) {
            fault::FaultSet fs;
            for (std::size_t b = 0; b < part.size(); ++b)
                if ((mask >> b) & 1u)
                    fs.blockLink(part[b]);
            ++instances;
            agreements +=
                (core::universalRoute(net16, fs, s, d).ok ==
                 core::oracleReachable(net16, fs, s, d));
        }
    }
    std::cout << "  " << agreements << "/" << instances
              << " instances agree ("
              << (agreements == instances ? "100%" : "MISMATCH!")
              << ")\n\n";
}

constexpr Label kBenchN = 64;

fault::FaultSet
benchFaults(std::size_t count, std::uint64_t seed)
{
    const topo::IadmTopology net(kBenchN);
    Rng rng(seed);
    return fault::randomLinkFaults(net, count, rng);
}

void
BM_Reroute(benchmark::State &state)
{
    const topo::IadmTopology net(kBenchN);
    const auto fs = benchFaults(
        static_cast<std::size_t>(state.range(0)), 1);
    Label s = 0;
    for (auto _ : state) {
        auto res = core::universalRoute(net, fs, s, (s + 21) % 64);
        benchmark::DoNotOptimize(res.ok);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_Reroute)->Arg(8)->Arg(32)->Arg(128);

void
BM_BfsOracle(benchmark::State &state)
{
    const topo::IadmTopology net(kBenchN);
    const auto fs = benchFaults(
        static_cast<std::size_t>(state.range(0)), 1);
    Label s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::oracleReachable(net, fs, s, (s + 21) % 64));
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_BfsOracle)->Arg(8)->Arg(32)->Arg(128);

void
BM_RedundantSearch(benchmark::State &state)
{
    const topo::IadmTopology net(kBenchN);
    const auto fs = benchFaults(
        static_cast<std::size_t>(state.range(0)), 1);
    Label s = 0;
    for (auto _ : state) {
        auto res = baselines::redundantNumberRoute(net, fs, s,
                                                   (s + 21) % 64);
        benchmark::DoNotOptimize(res.delivered);
        s = (s + 1) % 64;
    }
}
BENCHMARK(BM_RedundantSearch)->Arg(8)->Arg(32)->Arg(128);

} // namespace

int
main(int argc, char **argv)
{
    iadm::bench::guardBuildType();
    printReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
