/**
 * @file
 * Dynamic in-network rerouting demo: watch a message walk through a
 * blocked IADM network, flipping state bits in place (Corollary
 * 4.1) and physically backtracking (Corollary 4.2) — the "dynamic
 * rerouting for the TSDT scheme" implementation Section 4 sketches.
 *
 * Usage: dynamic_rerouting [N]
 */

#include <cstdlib>
#include <iostream>

#include "core/distributed.hpp"
#include "fault/injection.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 16;
    const topo::IadmTopology net(n_size);

    const auto demo = [&](const char *title,
                          const fault::FaultSet &faults, Label s,
                          Label d) {
        std::cout << title << "\n";
        const auto res = core::distributedRoute(net, faults, s, d);
        if (res.delivered) {
            std::cout << "  delivered via " << res.path.str()
                      << "\n";
        } else {
            std::cout << "  undeliverable (blocked at stage "
                      << res.failedStage << ")\n";
        }
        std::cout << "  forward hops: " << res.forwardHops
                  << ", backtrack hops: " << res.backtrackHops
                  << ", probes: " << res.probes
                  << ", 4.1-flips: " << res.flips
                  << ", 4.2-rewrites: " << res.rewrites << "\n\n";
    };

    fault::FaultSet none;
    demo("== clean network: 1 -> 0 ==", none, 1 % n_size, 0);

    fault::FaultSet ns;
    ns.blockLink(net.minusLink(0, 1 % n_size));
    demo("== nonstraight link (1,0)@S0 busy ==", ns, 1 % n_size, 0);

    fault::FaultSet st;
    st.blockLink(net.straightLink(2 % net.stages(), 0));
    demo("== straight link (0,0)@S2 busy: backtracking ==", st,
         1 % n_size, 0);

    Rng rng(12);
    const auto storm = fault::randomLinkFaults(
        net, net.stages() * 3, rng);
    demo("== random blockage storm ==", storm, 1 % n_size,
         static_cast<Label>(n_size - 2));
    return 0;
}
