/**
 * @file
 * Fault-tolerant routing demo: sweep the number of random link
 * blockages and compare how each scheme copes — the SSDT local
 * repair, the TSDT universal REROUTE, the three McMillen-Siegel
 * dynamic techniques [9], single-stage look-ahead [10], and
 * exhaustive redundant-number search [13] — against the BFS oracle.
 *
 * Usage: fault_tolerant_routing [N] [max_faults] [trials]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "baselines/lookahead.hpp"
#include "baselines/redundant_number.hpp"
#include "core/oracle.hpp"
#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "fault/injection.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 32;
    const std::size_t max_faults =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;
    const int trials = argc > 3 ? std::atoi(argv[3]) : 200;

    const topo::IadmTopology net(n_size);
    Rng rng(2026);

    std::cout << "Delivery rate vs blocked links (N=" << n_size
              << ", " << trials << " trials/point)\n";
    std::cout << std::setw(8) << "faults" << std::setw(10) << "oracle"
              << std::setw(10) << "REROUTE" << std::setw(10) << "SSDT"
              << std::setw(10) << "MS-2c" << std::setw(10) << "MS-bit"
              << std::setw(10) << "lookahd" << std::setw(10)
              << "redund" << "\n";

    for (std::size_t f = 0; f <= max_faults; f += 4) {
        std::size_t oracle = 0, reroute = 0, ssdt_ok = 0, ms2c = 0,
                    msbit = 0, look = 0, redun = 0, total = 0;
        for (int t = 0; t < trials; ++t) {
            const auto fs = fault::randomLinkFaults(net, f, rng);
            const auto s = static_cast<Label>(rng.uniform(n_size));
            const auto d = static_cast<Label>(rng.uniform(n_size));
            ++total;
            oracle += core::oracleReachable(net, fs, s, d);
            reroute += core::universalRoute(net, fs, s, d).ok;
            core::SsdtRouter router(net);
            ssdt_ok += router.route(s, d, fs).delivered;
            ms2c += baselines::dynamicDistanceRoute(
                        net, fs, s, d,
                        baselines::McMillenScheme::TwosComplement)
                        .delivered;
            msbit += baselines::dynamicDistanceRoute(
                         net, fs, s, d,
                         baselines::McMillenScheme::ExtraTagBit)
                         .delivered;
            look += baselines::lookaheadRoute(net, fs, s, d)
                        .delivered;
            redun += baselines::redundantNumberRoute(net, fs, s, d)
                         .delivered;
        }
        const auto pct = [&](std::size_t k) {
            return 100.0 * static_cast<double>(k) /
                   static_cast<double>(total);
        };
        std::cout << std::setw(8) << f << std::fixed
                  << std::setprecision(1) << std::setw(9)
                  << pct(oracle) << "%" << std::setw(9)
                  << pct(reroute) << "%" << std::setw(9)
                  << pct(ssdt_ok) << "%" << std::setw(9) << pct(ms2c)
                  << "%" << std::setw(9) << pct(msbit) << "%"
                  << std::setw(9) << pct(look) << "%" << std::setw(9)
                  << pct(redun) << "%\n";
    }
    std::cout << "\nREROUTE and the redundant-number search track the "
                 "oracle exactly\n(universal rerouting); the local "
                 "schemes fall behind once straight\nblockages "
                 "appear.\n";
    return 0;
}
