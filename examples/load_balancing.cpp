/**
 * @file
 * Load-balancing demo (the Section 4 packet-switching motivation):
 * run the packet simulator under increasing load and compare static
 * SSDT against queue-balancing SSDT, reporting latency, throughput
 * and the plus/minus link imbalance.
 *
 * Usage: load_balancing [N] [cycles]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sim/network_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    using namespace iadm::sim;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 32;
    const Cycle cycles =
        argc > 2 ? static_cast<Cycle>(std::atoll(argv[2])) : 20000;

    std::cout << "SSDT static vs balanced (N=" << n_size << ", "
              << cycles << " cycles, uniform traffic)\n";
    std::cout << std::setw(8) << "rate" << std::setw(15) << "scheme"
              << std::setw(12) << "latency" << std::setw(12)
              << "throughput" << std::setw(12) << "imbalance"
              << std::setw(10) << "stalls" << "\n";

    for (double rate : {0.1, 0.2, 0.3, 0.4, 0.5}) {
        for (auto scheme : {RoutingScheme::SsdtStatic,
                            RoutingScheme::SsdtBalanced}) {
            SimConfig cfg;
            cfg.netSize = n_size;
            cfg.scheme = scheme;
            cfg.injectionRate = rate;
            cfg.queueCapacity = 4;
            cfg.seed = 99;
            NetworkSim s(cfg,
                         std::make_unique<UniformTraffic>(n_size));
            s.run(cycles / 5); // warmup
            s.resetMetrics();
            s.run(cycles);
            double imbalance = 0;
            unsigned counted = 0;
            for (unsigned i = 0; i + 1 < s.topology().stages();
                 ++i) {
                imbalance += s.metrics().nonstraightImbalance(i);
                ++counted;
            }
            imbalance /= counted;
            std::cout << std::setw(8) << std::setprecision(2)
                      << std::fixed << rate << std::setw(15)
                      << routingSchemeName(scheme) << std::setw(12)
                      << std::setprecision(2)
                      << s.metrics().avgLatency() << std::setw(12)
                      << std::setprecision(4)
                      << s.metrics().throughput(cycles)
                      << std::setw(12) << std::setprecision(3)
                      << imbalance << std::setw(10)
                      << s.metrics().totalStalls() << "\n";
        }
    }
    std::cout << "\nBalanced SSDT spreads messages over both "
                 "nonstraight links\n(imbalance -> 0) by assigning "
                 "each queued message the state whose\nspare queue "
                 "is emptier — the mechanism Section 4 proposes.\n";
    return 0;
}
