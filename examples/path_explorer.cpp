/**
 * @file
 * Path explorer: print every routing path between a source and a
 * destination with the TSDT tag and signed-digit representation
 * driving each (reproduces Figure 7 for s=1, d=0, N=8).
 *
 * Usage: path_explorer [N [src dst]]
 */

#include <cstdlib>
#include <iostream>

#include "baselines/redundant_number.hpp"
#include "common/modmath.hpp"
#include "core/oracle.hpp"
#include "core/pivot.hpp"
#include "core/tsdt.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 8;
    const Label src =
        argc > 3 ? static_cast<Label>(std::atoi(argv[2])) : 1;
    const Label dst =
        argc > 3 ? static_cast<Label>(std::atoi(argv[3])) : 0;
    const topo::IadmTopology net(n_size);
    const unsigned n = net.stages();

    const Label dist = distance(src, dst, n_size);
    std::cout << "All routing paths " << src << " -> " << dst
              << " in IADM(N=" << n_size << "), distance D=" << dist
              << ":\n\n";

    baselines::OpCount ops;
    const auto reps = baselines::allRepresentations(n, dist, ops);
    const auto paths = core::oracleAllPaths(net, src, dst);
    std::cout << "  " << paths.size()
              << " paths = " << reps.size()
              << " signed-digit representations of D\n\n";

    for (const auto &rep : reps) {
        const auto p = baselines::distanceTagTrace(net, src, rep);
        const auto tag = core::tagForPath(p, n);
        std::cout << "  digits " << rep.str() << "  tag "
                  << tag.str() << "  :  " << p.str() << "\n";
    }

    std::cout << "\nPivots (Lemma A2.1):\n";
    const core::PivotInfo info(src, dst, n_size);
    for (unsigned i = 0; i <= n; ++i) {
        std::cout << "  stage " << i << ": {";
        for (std::size_t k = 0; k < info.at(i).size(); ++k)
            std::cout << (k ? "," : "") << info.at(i)[k];
        std::cout << "}\n";
    }
    std::cout << "  k-hat = " << info.lowestNonstraightStage()
              << "\n";
    return 0;
}
