/**
 * @file
 * Permutation routing and fault reconfiguration (Section 6): pass
 * cube-admissible permutations through the IADM network in one
 * conflict-free pass, then break nonstraight links of the embedded
 * ICube and reconfigure to another cube subgraph that still passes
 * them.
 *
 * Usage: permutation_reconfig [N]
 */

#include <cstdlib>
#include <iostream>

#include "fault/injection.hpp"
#include "perm/perm_router.hpp"
#include "subgraph/enumeration.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 16;
    const topo::IadmTopology net(n_size);

    const auto show = [&](const char *name,
                          const perm::Permutation &p,
                          const fault::FaultSet &faults) {
        const auto res = perm::routePermutation(net, p, faults);
        std::cout << "  " << name << ": ";
        if (res.ok) {
            std::cout << "PASSES via cube subgraph x=" << res.offset
                      << " (tried " << res.offsetsTried
                      << " offsets)\n";
        } else {
            std::cout << "not passable in one pass\n";
        }
    };

    std::cout << "== Fault-free permutation routing (N=" << n_size
              << ") ==\n";
    fault::FaultSet none;
    show("identity        ", perm::Permutation(n_size), none);
    show("shift +3        ", perm::shiftPerm(n_size, 3), none);
    show("bit complement  ",
         perm::bitComplementPerm(n_size, n_size - 1), none);
    show("perfect shuffle ", perm::perfectShufflePerm(n_size), none);
    show("bit reversal    ", perm::bitReversalPerm(n_size), none);

    std::cout << "\n== After nonstraight-link faults ==\n";
    Rng rng(7);
    const auto faults = fault::randomNonstraightFaults(net, 2, rng);
    std::cout << "  (" << faults.count()
              << " nonstraight links broken)\n";
    const auto g = subgraph::reconfigureAroundFaults(net, faults);
    if (g) {
        std::cout << "  reconfigured to " << g->str() << "\n";
    } else {
        std::cout << "  no fault-free cube subgraph exists\n";
    }
    show("identity        ", perm::Permutation(n_size), faults);
    show("shift +3        ", perm::shiftPerm(n_size, 3), faults);
    show("bit complement  ",
         perm::bitComplementPerm(n_size, n_size - 1), faults);

    std::cout << "\n== Theorem 6.1 accounting ==\n";
    std::cout << "  distinct prefix families: "
              << subgraph::countDistinctPrefixFamilies(net) << " (= N/2)\n";
    std::cout << "  lower bound N/2 * 2^N = "
              << (static_cast<std::uint64_t>(n_size) / 2 << n_size)
              << " distinct cube subgraphs\n";
    return 0;
}
