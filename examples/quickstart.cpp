/**
 * @file
 * Quickstart: build an IADM network, route with a plain destination
 * tag, block some links, and watch the SDT machinery reroute.
 *
 * Usage: quickstart [N]   (N = power-of-two network size, default 8)
 */

#include <cstdlib>
#include <iostream>

#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "topology/render.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 8;
    const topo::IadmTopology net(n_size);
    const unsigned n = net.stages();

    std::cout << "== The IADM network ==\n"
              << topo::asciiDiagram(net) << "\n";

    // 1. Destination-tag routing (Theorem 3.1): the destination
    //    address itself is the tag, whatever the switch states are.
    const Label src = 1 % n_size, dst = 0;
    const auto tag = core::initialTag(n, dst);
    const auto path = core::tsdtTrace(src, tag, n_size);
    std::cout << "Destination-tag route " << src << " -> " << dst
              << ":\n  " << path.str() << "\n\n";

    // 2. Block the first link of that path; Corollary 4.1 repairs a
    //    nonstraight blockage by complementing one state bit.
    fault::FaultSet faults;
    faults.blockLink(path.linkAt(0));
    std::cout << "Blocking " << path.linkAt(0).str() << "\n";
    const auto repaired = core::universalRoute(net, faults, src, dst);
    std::cout << "REROUTE found:\n  " << repaired.path.str()
              << "\n  (corollary-4.1 flips: " << repaired.corollary41
              << ", backtracks: " << repaired.backtracks << ")\n\n";

    // 3. The SSDT scheme does the same repair inside the switches,
    //    transparently to the sender.
    core::SsdtRouter ssdt(net);
    const auto res = ssdt.route(src, dst, faults);
    std::cout << "SSDT route (self-repairing switches):\n  "
              << res.path.str() << "\n  state flips: "
              << res.stateFlips << "\n\n";

    // 4. Straight blockages need backtracking (Theorem 3.3); the
    //    TSDT tag is recomputed by the sender via REROUTE.
    fault::FaultSet straight;
    straight.blockLink(net.straightLink(n - 1, dst));
    const auto bt = core::universalRoute(net, straight, src, dst);
    if (bt.ok) {
        std::cout << "Straight blockage at stage " << n - 1
                  << " rerouted:\n  " << bt.path.str() << "\n";
    } else {
        std::cout << "No path around the straight blockage.\n";
    }
    return 0;
}
