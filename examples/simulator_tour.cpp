/**
 * @file
 * A tour of the packet simulator: traffic patterns, latency
 * percentiles, transient blockages, and the in-network dynamic
 * rerouting scheme — everything Section 4's MIMD setting implies.
 *
 * Usage: simulator_tour [N]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sim/network_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace iadm;
    using namespace iadm::sim;
    const Label n_size =
        argc > 1 ? static_cast<Label>(std::atoi(argv[1])) : 32;
    const Cycle cycles = 10000;

    const auto run = [&](const char *title, RoutingScheme scheme,
                         std::unique_ptr<TrafficPattern> traffic,
                         double rate, fault::FaultSet faults = {},
                         bool storm = false) {
        SimConfig cfg;
        cfg.netSize = n_size;
        cfg.scheme = scheme;
        cfg.injectionRate = rate;
        cfg.seed = 4242;
        NetworkSim s(cfg, std::move(traffic), std::move(faults));
        if (storm) {
            const topo::IadmTopology t(n_size);
            Rng rng(7);
            for (int k = 0; k < 40; ++k) {
                const auto stage = static_cast<unsigned>(
                    rng.uniform(t.stages()));
                const auto j =
                    static_cast<Label>(rng.uniform(n_size));
                const Cycle from = 500 + rng.uniform(cycles - 1500);
                s.scheduleTransientBlockage(
                    rng.chance(0.5) ? t.plusLink(stage, j)
                                    : t.minusLink(stage, j),
                    from, from + 400);
            }
        }
        s.run(cycles / 5);
        s.resetMetrics();
        s.run(cycles);
        const auto &m = s.metrics();
        std::cout << "  " << std::left << std::setw(34) << title
                  << std::right << " thr=" << std::fixed
                  << std::setprecision(4) << m.throughput(cycles)
                  << "  lat p50/p99=" << m.latencyPercentile(0.5)
                  << "/" << m.latencyPercentile(0.99)
                  << "  reroutes=" << m.totalReroutes()
                  << "  backhops=" << m.backtrackHops()
                  << "  dropped=" << m.dropped() << "\n";
    };

    std::cout << "== Packet simulator tour (N=" << n_size << ", "
              << cycles << " measured cycles) ==\n";

    run("uniform / ssdt-balanced", RoutingScheme::SsdtBalanced,
        std::make_unique<UniformTraffic>(n_size), 0.35);
    run("hotspot / ssdt-balanced", RoutingScheme::SsdtBalanced,
        std::make_unique<HotspotTraffic>(n_size, 0, 0.25), 0.3);
    run("bursty / ssdt-balanced", RoutingScheme::SsdtBalanced,
        std::make_unique<BurstyTraffic>(n_size, 60.0, 120.0), 0.6);
    // Transpose needs an even bit count; fall back to bit reversal.
    if (log2Floor(n_size) % 2 == 0) {
        run("transpose perm / tsdt", RoutingScheme::TsdtSender,
            makeTransposeTraffic(n_size), 0.4);
    } else {
        run("bit-reversal perm / tsdt", RoutingScheme::TsdtSender,
            makeBitReversalTraffic(n_size), 0.4);
    }
    run("uniform+storm / ssdt", RoutingScheme::SsdtStatic,
        std::make_unique<UniformTraffic>(n_size), 0.3, {}, true);

    // Static faults: dynamic in-network rerouting vs sender tags.
    const topo::IadmTopology t(n_size);
    Rng frng(9);
    fault::FaultSet fs;
    auto all = t.allLinks();
    for (std::size_t idx : frng.sample(all.size(), 6))
        fs.blockLink(all[idx]);
    fault::FaultSet fs2 = fs;
    run("6 static faults / tsdt-sender", RoutingScheme::TsdtSender,
        std::make_unique<UniformTraffic>(n_size), 0.3,
        std::move(fs));
    run("6 static faults / tsdt-dynamic",
        RoutingScheme::TsdtDynamic,
        std::make_unique<UniformTraffic>(n_size), 0.3,
        std::move(fs2));
    return 0;
}
