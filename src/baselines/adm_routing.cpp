#include "baselines/adm_routing.hpp"

#include "common/logging.hpp"

namespace iadm::baselines {

namespace {

topo::LinkKind
swappedSign(topo::LinkKind k)
{
    switch (k) {
      case topo::LinkKind::Straight: return topo::LinkKind::Straight;
      case topo::LinkKind::Plus: return topo::LinkKind::Minus;
      case topo::LinkKind::Minus: return topo::LinkKind::Plus;
      default: IADM_PANIC("no such ADM link kind");
    }
}

} // namespace

topo::Link
reversedTwin(const topo::AdmTopology &adm, const topo::Link &adm_link)
{
    const unsigned n = adm.stages();
    const topo::IadmTopology iadm(adm.size());
    // ADM stage i moves by 2^{n-1-i}; walking the link backwards is
    // an IADM stage n-1-i move of the opposite sign.
    return iadm.link(n - 1 - adm_link.stage, adm_link.to,
                     swappedSign(adm_link.kind));
}

fault::FaultSet
reversedFaults(const topo::AdmTopology &adm,
               const fault::FaultSet &adm_faults)
{
    fault::FaultSet out;
    // Translate by scanning all ADM links (fault sets store opaque
    // keys, so enumerate and test membership).
    for (unsigned i = 0; i < adm.stages(); ++i) {
        for (Label j = 0; j < adm.size(); ++j) {
            for (const topo::Link &l : adm.outLinks(i, j))
                if (adm_faults.isBlocked(l))
                    out.blockLink(reversedTwin(adm, l));
        }
    }
    return out;
}

AdmRouteResult
admRoute(const topo::AdmTopology &adm,
         const fault::FaultSet &adm_faults, Label src, Label dest)
{
    const unsigned n = adm.stages();
    const topo::IadmTopology iadm(adm.size());

    AdmRouteResult res;
    const fault::FaultSet twins = reversedFaults(adm, adm_faults);
    res.inner = core::reroute(iadm, twins, dest,
                              core::initialTag(n, src));
    if (!res.inner.ok)
        return res;

    // Reverse the IADM path dest -> src into an ADM path
    // src -> dest.
    const core::Path &p = res.inner.path;
    res.switches.resize(n + 1);
    for (unsigned j = 0; j <= n; ++j)
        res.switches[j] = p.switchAt(n - j);
    for (unsigned j = 0; j < n; ++j) {
        const topo::Link inner_link = p.linkAt(n - 1 - j);
        const topo::Link adm_link =
            topo::Link{j, res.switches[j], res.switches[j + 1],
                       swappedSign(inner_link.kind)};
        IADM_ASSERT(!adm_faults.isBlocked(adm_link),
                    "reversed path crosses a blocked ADM link");
        res.links.push_back(adm_link);
    }
    res.ok = true;
    return res;
}

} // namespace iadm::baselines
