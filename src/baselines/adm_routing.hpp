/**
 * @file
 * Routing the ADM network with the IADM machinery.
 *
 * The paper (Section 1): "The IADM network and the ADM network
 * differ only in that the input side of one of them corresponds to
 * the output side of the other and vice versa."  Concretely, a path
 * w_0, w_1, ..., w_n through the IADM network read backwards is a
 * path through the ADM network (stage i of the ADM moves by
 * +-2^{n-1-i}, exactly what the reversed IADM stage does).  This
 * adapter therefore routes src -> dest in the ADM by solving
 * dest -> src in the IADM — with every blocked ADM link translated
 * to its reversed IADM twin — and reversing the result, which
 * transfers the whole SDT theory (including universal rerouting) to
 * the ADM network.
 */

#ifndef IADM_BASELINES_ADM_ROUTING_HPP
#define IADM_BASELINES_ADM_ROUTING_HPP

#include <optional>

#include "core/path.hpp"
#include "core/reroute.hpp"
#include "fault/fault_set.hpp"

namespace iadm::baselines {

/** A path through the ADM network (switches per ADM column). */
struct AdmRouteResult
{
    bool ok = false;
    std::vector<Label> switches;        //!< ADM columns 0..n
    std::vector<topo::Link> links;      //!< ADM links taken
    core::RerouteResult inner;          //!< the IADM solution used
};

/** Translate a blocked ADM link to its reversed IADM twin. */
topo::Link reversedTwin(const topo::AdmTopology &adm,
                        const topo::Link &adm_link);

/** Translate a whole ADM fault set. */
fault::FaultSet reversedFaults(const topo::AdmTopology &adm,
                               const fault::FaultSet &adm_faults);

/**
 * Route src -> dest through the ADM network, avoiding the blocked
 * ADM links, via the reversed-IADM reduction.  Complete: finds a
 * path iff one exists (inherited from REROUTE).
 */
AdmRouteResult admRoute(const topo::AdmTopology &adm,
                        const fault::FaultSet &adm_faults, Label src,
                        Label dest);

} // namespace iadm::baselines

#endif // IADM_BASELINES_ADM_ROUTING_HPP
