#include "baselines/distance_tag.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::baselines {

void
SignedDigitTag::setDigit(unsigned i, int v)
{
    IADM_ASSERT(i < digits_.size(), "digit index out of range");
    IADM_ASSERT(v >= -1 && v <= 1, "digit must be in {-1,0,1}");
    digits_[i] = static_cast<std::int8_t>(v);
}

std::int64_t
SignedDigitTag::value() const
{
    std::int64_t v = 0;
    for (unsigned i = 0; i < digits_.size(); ++i)
        v += static_cast<std::int64_t>(digits_[i]) << i;
    return v;
}

SignedDigitTag
SignedDigitTag::positiveDominant(unsigned n_stages, Label d,
                                 OpCount &ops)
{
    SignedDigitTag tag(n_stages);
    for (unsigned i = 0; i < n_stages; ++i) {
        tag.digits_[i] = static_cast<std::int8_t>(bit(d, i));
        ops.charge();
    }
    return tag;
}

SignedDigitTag
SignedDigitTag::negativeDominant(unsigned n_stages, Label d,
                                 OpCount &ops)
{
    const Label n_size = Label{1} << n_stages;
    const Label neg = static_cast<Label>((n_size - d) & (n_size - 1));
    SignedDigitTag tag(n_stages);
    for (unsigned i = 0; i < n_stages; ++i) {
        tag.digits_[i] =
            static_cast<std::int8_t>(-static_cast<int>(bit(neg, i)));
        ops.charge();
    }
    return tag;
}

std::string
SignedDigitTag::str() const
{
    std::ostringstream os;
    for (auto d : digits_)
        os << (d == 0 ? '0' : (d > 0 ? '+' : '-'));
    return os.str();
}

core::Path
distanceTagTrace(const topo::IadmTopology &topo, Label src,
                 const SignedDigitTag &tag)
{
    const unsigned n = topo.stages();
    IADM_ASSERT(tag.stages() == n, "tag/network mismatch");
    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;
    for (unsigned i = 0; i < n; ++i) {
        topo::Link l = topo.straightLink(i, j);
        if (tag.digit(i) > 0)
            l = topo.plusLink(i, j);
        else if (tag.digit(i) < 0)
            l = topo.minusLink(i, j);
        kinds.push_back(l.kind);
        j = l.to;
        sw.push_back(j);
    }
    return {std::move(sw), std::move(kinds)};
}

core::Path
distanceTagRoute(const topo::IadmTopology &topo, Label src, Label dest,
                 OpCount &ops)
{
    const Label d = distance(src, dest, topo.size());
    const auto tag =
        SignedDigitTag::positiveDominant(topo.stages(), d, ops);
    core::Path p = distanceTagTrace(topo, src, tag);
    IADM_ASSERT(p.destination() == dest, "distance tag missed");
    return p;
}

} // namespace iadm::baselines
