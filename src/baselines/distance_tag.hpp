/**
 * @file
 * Distance-tag routing for the IADM network (the prior-art family
 * the paper improves on).
 *
 * McMillen & Siegel [9] and Parker & Raghavendra [13] route by the
 * distance D = (d - s) mod N: a routing tag is a signed-digit
 * representation (digits in {-1, 0, +1}, digit l weighted 2^l) of a
 * value congruent to D mod N; digit 0 takes the straight link,
 * +1/-1 the +-2^l links.  Rerouting means finding an alternate
 * representation, which costs O(log N) time x space — the complexity
 * the SDT schemes reduce to O(1).
 *
 * All operations count their digit-level work so benchmarks can
 * reproduce the paper's complexity comparison (experiment C1).
 */

#ifndef IADM_BASELINES_DISTANCE_TAG_HPP
#define IADM_BASELINES_DISTANCE_TAG_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/path.hpp"
#include "topology/iadm.hpp"

namespace iadm::baselines {

/** Work counter: elementary digit/bit operations performed. */
struct OpCount
{
    std::uint64_t ops = 0;

    void charge(std::uint64_t k = 1) { ops += k; }
};

/** A signed-digit distance tag: digit l in {-1, 0, +1} drives stage l. */
class SignedDigitTag
{
  public:
    SignedDigitTag() = default;
    explicit SignedDigitTag(unsigned n_stages)
        : digits_(n_stages, 0) {}

    unsigned stages() const
    {
        return static_cast<unsigned>(digits_.size());
    }

    int digit(unsigned i) const { return digits_[i]; }
    void setDigit(unsigned i, int v);

    /** Sum of digit_l * 2^l (a plain integer, not reduced mod N). */
    std::int64_t value() const;

    /**
     * The positive dominant tag: binary digits of D itself
     * (D = (dest - src) mod N).  Charges one op per digit.
     */
    static SignedDigitTag positiveDominant(unsigned n_stages, Label d,
                                           OpCount &ops);

    /**
     * The negative dominant tag: all-negative digits of D - N
     * (= -(N - D)).  Charges one op per digit.
     */
    static SignedDigitTag negativeDominant(unsigned n_stages, Label d,
                                           OpCount &ops);

    /** "0+-0" rendering, digit 0 first. */
    std::string str() const;

    friend bool
    operator==(const SignedDigitTag &a, const SignedDigitTag &b)
    {
        return a.digits_ == b.digits_;
    }

  private:
    std::vector<std::int8_t> digits_;
};

/** The path followed from @p src when stages obey @p tag's digits. */
core::Path distanceTagTrace(const topo::IadmTopology &topo, Label src,
                            const SignedDigitTag &tag);

/**
 * Plain distance-tag routing [9]: compute the positive dominant tag
 * and follow it; no rerouting capability by itself.
 */
core::Path distanceTagRoute(const topo::IadmTopology &topo, Label src,
                            Label dest, OpCount &ops);

} // namespace iadm::baselines

#endif // IADM_BASELINES_DISTANCE_TAG_HPP
