#include "baselines/dynamic_reroute.hpp"

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::baselines {

namespace {

/**
 * Rewrite digits i..n-1 of @p tag to the alternate (two's
 * complement) representation of the remaining distance: R -> R - N
 * when R > 0, R -> R + N when R < 0.  O(n - i) digit operations.
 */
void
twosComplementRemaining(SignedDigitTag &tag, unsigned i, unsigned n,
                        OpCount &ops)
{
    std::int64_t rem = 0;
    for (unsigned l = i; l < n; ++l) {
        rem += static_cast<std::int64_t>(tag.digit(l)) << l;
        ops.charge();
    }
    IADM_ASSERT(rem != 0, "two's complement of a zero remainder");
    const std::int64_t n_size = std::int64_t{1} << n;
    const std::int64_t alt = rem > 0 ? rem - n_size : rem + n_size;
    const int sign = alt >= 0 ? 1 : -1;
    std::uint64_t mag = static_cast<std::uint64_t>(sign * alt);
    for (unsigned l = i; l < n; ++l) {
        tag.setDigit(l, sign * static_cast<int>((mag >> l) & 1u));
        ops.charge();
    }
}

/**
 * Flip digit i's sign and repair the tag by propagating the
 * compensating +-2^{i+1} carry upward.  O(carry run length) digit
 * operations; a carry past digit n-1 is 2^n == 0 (mod N) and drops.
 */
void
digitAdditionRepair(SignedDigitTag &tag, unsigned i, unsigned n,
                    OpCount &ops)
{
    const int old = tag.digit(i);
    IADM_ASSERT(old != 0, "digit-addition repair of a straight digit");
    tag.setDigit(i, -old);
    ops.charge();
    int carry = old;
    for (unsigned l = i + 1; l < n && carry != 0; ++l) {
        const int v = tag.digit(l) + carry;
        ops.charge();
        if (v == 2 || v == -2) {
            tag.setDigit(l, 0);
        } else {
            tag.setDigit(l, v);
            carry = 0;
        }
    }
}

} // namespace

DynamicRouteResult
dynamicDistanceRoute(const topo::IadmTopology &topo,
                     const fault::FaultSet &faults, Label src,
                     Label dest, McMillenScheme scheme)
{
    const unsigned n = topo.stages();
    const Label n_size = topo.size();

    DynamicRouteResult res;
    const Label d0 = distance(src, dest, n_size);
    SignedDigitTag tag =
        SignedDigitTag::positiveDominant(n, d0, res.ops);
    if (scheme == McMillenScheme::ExtraTagBit) {
        // The message carries both dominant tags (the extra bit
        // selects one); setting up the second costs another pass.
        (void)SignedDigitTag::negativeDominant(n, d0, res.ops);
    }

    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;

    for (unsigned i = 0; i < n; ++i) {
        topo::Link link = topo.straightLink(i, j);
        bool straight;
        if (scheme == McMillenScheme::ExtraTagBit) {
            // Both dominant digits of the remaining distance R are
            // zero iff R == 0 (mod 2^{i+1}); otherwise one is +1 and
            // the other -1, so either nonstraight link is available.
            const Label rem = distance(j, dest, n_size);
            straight = (rem & lowMask(i + 1)) == 0;
            res.ops.charge();
            if (!straight) {
                link = topo.plusLink(i, j);
                if (faults.isBlocked(link)) {
                    link = topo.minusLink(i, j);
                    ++res.reroutes;
                    res.ops.charge(); // flip the extra bit
                }
            }
        } else {
            straight = tag.digit(i) == 0;
            if (!straight) {
                link = tag.digit(i) > 0 ? topo.plusLink(i, j)
                                        : topo.minusLink(i, j);
                if (faults.isBlocked(link)) {
                    if (scheme == McMillenScheme::TwosComplement)
                        twosComplementRemaining(tag, i, n, res.ops);
                    else
                        digitAdditionRepair(tag, i, n, res.ops);
                    ++res.reroutes;
                    link = tag.digit(i) > 0 ? topo.plusLink(i, j)
                                            : topo.minusLink(i, j);
                }
            }
        }

        if (faults.isBlocked(link)) {
            // A straight blockage, or both nonstraight links dead:
            // none of the three techniques of [9] can recover.
            res.failedStage = static_cast<int>(i);
            res.path = core::Path(std::move(sw), std::move(kinds));
            return res;
        }
        kinds.push_back(link.kind);
        j = link.to;
        sw.push_back(j);
    }

    IADM_ASSERT(j == dest, "distance-tag walk missed destination");
    res.delivered = true;
    res.path = core::Path(std::move(sw), std::move(kinds));
    return res;
}

} // namespace iadm::baselines
