/**
 * @file
 * The three McMillen-Siegel dynamic rerouting techniques [9] for
 * avoiding blocked nonstraight links, reconstructed from their
 * description in the paper (Section 1):
 *
 *  1. Two's-complement rerouting: on a blocked +-2^i link, replace
 *     the remaining distance representation by its alternate
 *     (two's-complemented) form — O(log N) digit work in a switch
 *     capable of two's-complement arithmetic.
 *  2. +-2^i addition rerouting: take the oppositely-signed link and
 *     repair the tag by adding +-2^{i+1}, propagating the carry
 *     through higher digits — O(log N) worst-case digit work.
 *  3. Extra-tag-bit rerouting: the message carries both dominant
 *     tags plus one extra bit selecting the active one, updated
 *     dynamically as the message propagates.
 *
 * All three repair only nonstraight blockages; a straight blockage
 * defeats them (which the paper's Theorem 3.3 proves is inherent to
 * any non-backtracking scheme).
 */

#ifndef IADM_BASELINES_DYNAMIC_REROUTE_HPP
#define IADM_BASELINES_DYNAMIC_REROUTE_HPP

#include "baselines/distance_tag.hpp"
#include "fault/fault_set.hpp"

namespace iadm::baselines {

/** Which of the three rerouting techniques of [9] to apply. */
enum class McMillenScheme
{
    TwosComplement,
    DigitAddition,
    ExtraTagBit,
};

/** Outcome of a dynamic distance-tag routing attempt. */
struct DynamicRouteResult
{
    bool delivered = false;
    core::Path path;       //!< full path when delivered
    unsigned reroutes = 0; //!< dynamic tag repairs performed
    int failedStage = -1;  //!< stage of the fatal blockage
    OpCount ops;           //!< digit-level work, tag setup included
};

/**
 * Route src -> dest with the positive dominant tag, dynamically
 * repairing blocked nonstraight links per @p scheme.  Straight
 * blockages (and double-nonstraight ones) end the attempt.
 */
DynamicRouteResult dynamicDistanceRoute(const topo::IadmTopology &topo,
                                        const fault::FaultSet &faults,
                                        Label src, Label dest,
                                        McMillenScheme scheme);

} // namespace iadm::baselines

#endif // IADM_BASELINES_DYNAMIC_REROUTE_HPP
