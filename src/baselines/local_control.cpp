#include "baselines/local_control.hpp"

#include "baselines/dynamic_reroute.hpp"
#include "common/logging.hpp"

namespace iadm::baselines {

core::Path
destinationTagLocalControl(const topo::IadmTopology &topo, Label src,
                           Label dest, OpCount &ops)
{
    const unsigned n = topo.stages();
    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;
    for (unsigned i = 0; i < n; ++i) {
        ops.charge(); // one tag-bit comparison per stage
        topo::Link l = topo.straightLink(i, j);
        if (bit(j, i) != bit(dest, i)) {
            l = bit(j, i) == 0 ? topo.plusLink(i, j)
                               : topo.minusLink(i, j);
        }
        kinds.push_back(l.kind);
        j = l.to;
        sw.push_back(j);
    }
    IADM_ASSERT(j == dest, "local control missed destination");
    return {std::move(sw), std::move(kinds)};
}

SignedDigitTag
signedBitDifferenceTag(unsigned n_stages, Label src, Label dest,
                       OpCount &ops)
{
    SignedDigitTag tag(n_stages);
    for (unsigned i = 0; i < n_stages; ++i) {
        tag.setDigit(i, static_cast<int>(bit(dest, i)) -
                            static_cast<int>(bit(src, i)));
        ops.charge();
    }
    return tag;
}

core::Path
signedBitDifferenceRoute(const topo::IadmTopology &topo, Label src,
                         Label dest, OpCount &ops)
{
    const auto tag =
        signedBitDifferenceTag(topo.stages(), src, dest, ops);
    core::Path p = distanceTagTrace(topo, src, tag);
    IADM_ASSERT(p.destination() == dest,
                "signed-bit-difference tag missed destination");
    return p;
}

LocalControlResult
localControlRoute(const topo::IadmTopology &topo,
                  const fault::FaultSet &faults, Label src, Label dest)
{
    LocalControlResult res;
    core::Path p =
        destinationTagLocalControl(topo, src, dest, res.ops);
    if (p.isBlockageFree(faults)) {
        res.delivered = true;
        res.path = std::move(p);
        return res;
    }
    // [7] has no rerouting of its own: resort to the distance-tag
    // machinery of [9].
    res.usedFallback = true;
    auto dyn = dynamicDistanceRoute(topo, faults, src, dest,
                                    McMillenScheme::ExtraTagBit);
    res.ops.charge(dyn.ops.ops);
    res.delivered = dyn.delivered;
    res.path = std::move(dyn.path);
    return res;
}

} // namespace iadm::baselines
