/**
 * @file
 * Lee & Lee local control algorithms [7] for the ADM/IADM networks.
 *
 * Two tag-only algorithms that need no distance computation but
 * find exactly one routing path per (s, d) pair:
 *
 *  - Destination-tag local control: switch j at stage i goes
 *    straight when j_i == d_i, else takes the carry-free nonstraight
 *    link that sets bit i to d_i (+2^i from an even_i switch, -2^i
 *    from an odd_i one).  This coincides with the paper's state-C
 *    (ICube-emulation) route.
 *
 *  - Signed-bit-difference tag: digit e_i = d_i - s_i in {-1, 0, +1}
 *    drives stage i directly (sum of e_i 2^i is exactly d - s).
 *
 * Because only one path is produced, any blockage on it forces a
 * fallback to distance-tag recomputation [9] for rerouting — the
 * limitation the SDT schemes remove.
 */

#ifndef IADM_BASELINES_LOCAL_CONTROL_HPP
#define IADM_BASELINES_LOCAL_CONTROL_HPP

#include "baselines/distance_tag.hpp"
#include "fault/fault_set.hpp"

namespace iadm::baselines {

/** The unique destination-tag local-control path (state-C route). */
core::Path destinationTagLocalControl(const topo::IadmTopology &topo,
                                      Label src, Label dest,
                                      OpCount &ops);

/** The signed-bit-difference tag e_i = d_i - s_i. */
SignedDigitTag signedBitDifferenceTag(unsigned n_stages, Label src,
                                      Label dest, OpCount &ops);

/** The path driven by the signed-bit-difference tag. */
core::Path signedBitDifferenceRoute(const topo::IadmTopology &topo,
                                    Label src, Label dest,
                                    OpCount &ops);

/** Outcome of local-control routing with distance-tag fallback. */
struct LocalControlResult
{
    bool delivered = false;
    core::Path path;
    bool usedFallback = false; //!< had to recompute a distance tag
    OpCount ops;
};

/**
 * Route with destination-tag local control; on any blockage, fall
 * back to the dynamic distance-tag scheme of [9] from scratch
 * (what [7] prescribes when rerouting is needed).
 */
LocalControlResult localControlRoute(const topo::IadmTopology &topo,
                                     const fault::FaultSet &faults,
                                     Label src, Label dest);

} // namespace iadm::baselines

#endif // IADM_BASELINES_LOCAL_CONTROL_HPP
