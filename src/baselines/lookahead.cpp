#include "baselines/lookahead.hpp"

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::baselines {

DynamicRouteResult
lookaheadRoute(const topo::IadmTopology &topo,
               const fault::FaultSet &faults, Label src, Label dest,
               McMillenScheme nonstraight_scheme)
{
    IADM_ASSERT(nonstraight_scheme != McMillenScheme::ExtraTagBit,
                "look-ahead variant uses explicit digit tags");
    const unsigned n = topo.stages();
    const Label n_size = topo.size();

    DynamicRouteResult res;
    const Label d0 = distance(src, dest, n_size);
    SignedDigitTag tag =
        SignedDigitTag::positiveDominant(n, d0, res.ops);

    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;

    const auto link_for = [&](unsigned i, Label at, int digit) {
        if (digit > 0)
            return topo.plusLink(i, at);
        if (digit < 0)
            return topo.minusLink(i, at);
        return topo.straightLink(i, at);
    };

    for (unsigned i = 0; i < n; ++i) {
        // Single-stage look-ahead: if the next stage's hop would be
        // a blocked straight link and this stage's digit is
        // nonstraight, rewrite (d_i, 0) -> (-d_i, d_i).
        if (i + 1 < n && tag.digit(i) != 0 && tag.digit(i + 1) == 0) {
            const topo::Link here = link_for(i, j, tag.digit(i));
            const topo::Link ahead =
                topo.straightLink(i + 1, here.to);
            res.ops.charge(); // look-ahead probe
            if (!faults.isBlocked(here) && faults.isBlocked(ahead)) {
                const int d = tag.digit(i);
                tag.setDigit(i, -d);
                tag.setDigit(i + 1, d);
                res.ops.charge(2);
                ++res.reroutes;
            }
        }

        topo::Link link = link_for(i, j, tag.digit(i));
        if (tag.digit(i) != 0 && faults.isBlocked(link)) {
            // Nonstraight repair inherited from [9].
            if (nonstraight_scheme == McMillenScheme::TwosComplement) {
                std::int64_t rem = 0;
                for (unsigned l = i; l < n; ++l) {
                    rem += static_cast<std::int64_t>(tag.digit(l))
                           << l;
                    res.ops.charge();
                }
                const std::int64_t full = std::int64_t{1} << n;
                const std::int64_t alt =
                    rem > 0 ? rem - full : rem + full;
                const int sign = alt >= 0 ? 1 : -1;
                const auto mag =
                    static_cast<std::uint64_t>(sign * alt);
                for (unsigned l = i; l < n; ++l) {
                    tag.setDigit(
                        l, sign * static_cast<int>((mag >> l) & 1u));
                    res.ops.charge();
                }
            } else {
                const int old = tag.digit(i);
                tag.setDigit(i, -old);
                res.ops.charge();
                int carry = old;
                for (unsigned l = i + 1; l < n && carry != 0; ++l) {
                    const int v = tag.digit(l) + carry;
                    res.ops.charge();
                    if (v == 2 || v == -2) {
                        tag.setDigit(l, 0);
                    } else {
                        tag.setDigit(l, v);
                        carry = 0;
                    }
                }
            }
            ++res.reroutes;
            link = link_for(i, j, tag.digit(i));
        }

        if (faults.isBlocked(link)) {
            res.failedStage = static_cast<int>(i);
            res.path = core::Path(std::move(sw), std::move(kinds));
            return res;
        }
        kinds.push_back(link.kind);
        j = link.to;
        sw.push_back(j);
    }

    IADM_ASSERT(j == dest, "look-ahead walk missed destination");
    res.delivered = true;
    res.path = core::Path(std::move(sw), std::move(kinds));
    return res;
}

} // namespace iadm::baselines
