/**
 * @file
 * The single-stage look-ahead scheme of McMillen & Siegel [10] for
 * avoiding *some* straight-link blockages, reconstructed from its
 * description in the paper.
 *
 * At stage i, before committing, the switch looks one stage ahead.
 * If the tag calls for a straight hop at stage i+1 that is blocked,
 * and the current digit d_i is nonstraight, the digit pair is
 * rewritten with the identity  d_i*2^i + 0*2^{i+1}  =
 * (-d_i)*2^i + d_i*2^{i+1},  steering around the blocked straight
 * link.  The rewrite requires two's-complement-style tag arithmetic
 * (O(log N) hardware per [10]) and is valid only when d_i != 0 —
 * exactly the "only some cases" limitation the paper notes, and a
 * special case (k = 1) of Theorem 3.3.
 */

#ifndef IADM_BASELINES_LOOKAHEAD_HPP
#define IADM_BASELINES_LOOKAHEAD_HPP

#include "baselines/dynamic_reroute.hpp"

namespace iadm::baselines {

/**
 * Route src -> dest with the positive dominant tag, applying both
 * the nonstraight repair of @p nonstraight_scheme and the
 * single-stage look-ahead rewrite for straight blockages.
 */
DynamicRouteResult lookaheadRoute(
    const topo::IadmTopology &topo, const fault::FaultSet &faults,
    Label src, Label dest,
    McMillenScheme nonstraight_scheme = McMillenScheme::DigitAddition);

} // namespace iadm::baselines

#endif // IADM_BASELINES_LOOKAHEAD_HPP
