#include "baselines/redundant_number.hpp"

#include <map>

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::baselines {

namespace {

/**
 * DFS over digit choices.  At stage i the digit t must satisfy
 * (R - t*2^i) == 0 (mod 2^{i+1}); the final residue is then
 * automatically == 0 (mod 2^n).
 */
template <typename Visit>
void
enumerate(unsigned n_stages, std::int64_t residue, unsigned i,
          SignedDigitTag &tag, OpCount &ops, Visit &&visit)
{
    if (i == n_stages) {
        visit(tag);
        return;
    }
    static constexpr int choices[3] = {0, 1, -1};
    for (int t : choices) {
        ops.charge();
        const std::int64_t next =
            residue - (static_cast<std::int64_t>(t) << i);
        if ((next & static_cast<std::int64_t>(lowMask(i + 1))) != 0)
            continue;
        tag.setDigit(i, t);
        enumerate(n_stages, next, i + 1, tag, ops,
                  std::forward<Visit>(visit));
    }
    tag.setDigit(i, 0);
}

} // namespace

std::vector<SignedDigitTag>
allRepresentations(unsigned n_stages, Label d, OpCount &ops)
{
    std::vector<SignedDigitTag> out;
    SignedDigitTag tag(n_stages);
    enumerate(n_stages, static_cast<std::int64_t>(d), 0, tag, ops,
              [&](const SignedDigitTag &t) { out.push_back(t); });
    return out;
}

std::uint64_t
countRepresentations(unsigned n_stages, Label d)
{
    // DP mirror of the DFS: track v_i = residue / 2^i.  An even v
    // forces the straight digit (t = 0, v -> v/2); an odd v branches
    // into t = +1 (v -> (v-1)/2) and t = -1 (v -> (v+1)/2).  Every
    // leaf residue is == 0 (mod 2^n == N), so all leaves count.
    std::map<std::int64_t, std::uint64_t> cur{
        {static_cast<std::int64_t>(d), 1}};
    for (unsigned i = 0; i < n_stages; ++i) {
        std::map<std::int64_t, std::uint64_t> next;
        for (const auto &[v, c] : cur) {
            if ((v & 1) == 0) {
                next[v / 2] += c;
            } else {
                next[(v - 1) / 2] += c;
                next[(v + 1) / 2] += c;
            }
        }
        cur = std::move(next);
    }
    std::uint64_t total = 0;
    for (const auto &[v, c] : cur)
        total += c;
    return total;
}

RedundantRouteResult
redundantNumberRoute(const topo::IadmTopology &topo,
                     const fault::FaultSet &faults, Label src,
                     Label dest)
{
    const unsigned n = topo.stages();
    RedundantRouteResult res;
    const Label d = distance(src, dest, topo.size());

    SignedDigitTag tag(n);
    bool found = false;
    SignedDigitTag winner(n);
    enumerate(n, static_cast<std::int64_t>(d), 0, tag, res.ops,
              [&](const SignedDigitTag &t) {
                  if (found)
                      return;
                  ++res.representationsTried;
                  const core::Path p =
                      distanceTagTrace(topo, src, t);
                  res.ops.charge(n);
                  if (p.isBlockageFree(faults)) {
                      found = true;
                      winner = t;
                  }
              });
    if (found) {
        res.delivered = true;
        res.path = distanceTagTrace(topo, src, winner);
    }
    return res;
}

} // namespace iadm::baselines
