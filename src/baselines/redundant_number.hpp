/**
 * @file
 * Parker-Raghavendra redundant number representation routing [13].
 *
 * Every routing path from s to d corresponds to a signed-digit
 * representation (digits in {-1, 0, +1}) of a value congruent to
 * D = (d - s) mod N.  The algorithm of [13] enumerates all such
 * representations; routing around blockages means searching the
 * enumeration for a representation whose path is clear.  The cost
 * is exponential in the number of representations — the reason the
 * paper (and [19]) call dynamic use of this scheme infeasible.
 */

#ifndef IADM_BASELINES_REDUNDANT_NUMBER_HPP
#define IADM_BASELINES_REDUNDANT_NUMBER_HPP

#include <optional>
#include <vector>

#include "baselines/distance_tag.hpp"
#include "fault/fault_set.hpp"

namespace iadm::baselines {

/**
 * All signed-digit representations of values congruent to
 * D (mod 2^n), in lexicographic digit order (0 < +1 < -1 per
 * stage).  Charges one op per digit decision explored.
 */
std::vector<SignedDigitTag> allRepresentations(unsigned n_stages,
                                               Label d, OpCount &ops);

/** Number of representations without materializing them. */
std::uint64_t countRepresentations(unsigned n_stages, Label d);

/** Outcome of the exhaustive redundant-representation search. */
struct RedundantRouteResult
{
    bool delivered = false;
    core::Path path;
    unsigned representationsTried = 0;
    OpCount ops;
};

/**
 * Route src -> dest by enumerating representations until one yields
 * a blockage-free path (complete, like REROUTE, but exponential
 * work instead of O(n) per reroute).
 */
RedundantRouteResult redundantNumberRoute(const topo::IadmTopology &topo,
                                          const fault::FaultSet &faults,
                                          Label src, Label dest);

} // namespace iadm::baselines

#endif // IADM_BASELINES_REDUNDANT_NUMBER_HPP
