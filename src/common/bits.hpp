/**
 * @file
 * Bit-manipulation utilities shared across the IADM routing library.
 *
 * The paper (Rau/Fortes/Siegel, TR-EE 87-39) writes a label as
 * j = j_0 j_1 ... j_{n-1} where j_0 is the LEAST significant bit and
 * stage i of the network manipulates bit i (weight 2^i).  All helpers
 * here follow that convention: bit(j, 0) is the low-order bit.
 */

#ifndef IADM_COMMON_BITS_HPP
#define IADM_COMMON_BITS_HPP

#include <cstdint>
#include <string>

namespace iadm {

/** Unsigned label type for switches, ports and addresses. */
using Label = std::uint32_t;

/** Extract bit @p i (LSB = bit 0) of @p v. */
constexpr unsigned
bit(std::uint64_t v, unsigned i)
{
    return static_cast<unsigned>((v >> i) & 1u);
}

/** Return @p v with bit @p i forced to @p b (b must be 0 or 1). */
constexpr std::uint64_t
withBit(std::uint64_t v, unsigned i, unsigned b)
{
    return (v & ~(std::uint64_t{1} << i)) |
           (static_cast<std::uint64_t>(b & 1u) << i);
}

/** Return @p v with bit @p i complemented. */
constexpr std::uint64_t
flipBit(std::uint64_t v, unsigned i)
{
    return v ^ (std::uint64_t{1} << i);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be nonzero. */
constexpr unsigned
log2Floor(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Number of set bits. */
constexpr unsigned
popcount(std::uint64_t v)
{
    unsigned r = 0;
    while (v) {
        v &= v - 1;
        ++r;
    }
    return r;
}

/** Mask with the low @p k bits set. */
constexpr std::uint64_t
lowMask(unsigned k)
{
    return k >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << k) - 1);
}

/**
 * Render @p v as the paper writes labels: j_0 j_1 ... j_{n-1}, i.e.
 * least significant bit FIRST.  Useful when cross-checking worked
 * examples from the paper.
 */
inline std::string
toLsbFirstString(std::uint64_t v, unsigned n)
{
    std::string s;
    s.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        s.push_back(bit(v, i) ? '1' : '0');
    return s;
}

/** Render @p v MSB-first (conventional binary), n bits wide. */
inline std::string
toMsbFirstString(std::uint64_t v, unsigned n)
{
    std::string s;
    s.reserve(n);
    for (unsigned i = n; i-- > 0;)
        s.push_back(bit(v, i) ? '1' : '0');
    return s;
}

/** Reverse the low @p n bits of @p v. */
constexpr std::uint64_t
reverseBits(std::uint64_t v, unsigned n)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < n; ++i)
        r |= static_cast<std::uint64_t>(bit(v, i)) << (n - 1 - i);
    return r;
}

} // namespace iadm

#endif // IADM_COMMON_BITS_HPP
