#include "common/json_writer.hpp"

#include <charconv>
#include <cmath>

#include "common/logging.hpp"

namespace iadm {

std::string
jsonNumber(double d)
{
    IADM_ASSERT(std::isfinite(d), "JSON numbers must be finite");
    // Shortest round-trip representation; avoids locale and iostream
    // precision state so output is byte-stable.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, d);
    IADM_ASSERT(res.ec == std::errc{}, "to_chars failed");
    return std::string(buf, res.ptr);
}

void
JsonWriter::newline()
{
    os_.put('\n');
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    IADM_ASSERT(!rootDone_, "value after the root value closed");
    if (stack_.empty()) {
        rootDone_ = true; // the root value itself
        return;
    }
    if (stack_.back() == Scope::Object) {
        IADM_ASSERT(keyPending_, "object member without a key");
        keyPending_ = false;
        return;
    }
    if (!first_.back())
        os_.put(',');
    first_.back() = false;
    newline();
}

void
JsonWriter::key(std::string_view k)
{
    IADM_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
                "key() outside an object");
    IADM_ASSERT(!keyPending_, "two keys in a row");
    if (!first_.back())
        os_.put(',');
    first_.back() = false;
    newline();
    writeEscaped(k);
    os_ << ": ";
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    rootDone_ = false; // an open container is never a finished root
    os_.put('{');
    stack_.push_back(Scope::Object);
    first_.push_back(true);
}

void
JsonWriter::endObject()
{
    IADM_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
                "endObject() without a matching beginObject()");
    IADM_ASSERT(!keyPending_, "dangling key at endObject()");
    const bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        newline();
    os_.put('}');
    if (stack_.empty())
        rootDone_ = true;
}

void
JsonWriter::beginArray()
{
    beforeValue();
    rootDone_ = false; // an open container is never a finished root
    os_.put('[');
    stack_.push_back(Scope::Array);
    first_.push_back(true);
}

void
JsonWriter::endArray()
{
    IADM_ASSERT(!stack_.empty() && stack_.back() == Scope::Array,
                "endArray() without a matching beginArray()");
    const bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        newline();
    os_.put(']');
    if (stack_.empty())
        rootDone_ = true;
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    os_.put('"');
    for (const char c : s) {
        switch (c) {
          case '"': os_ << "\\\""; break;
          case '\\': os_ << "\\\\"; break;
          case '\n': os_ << "\\n"; break;
          case '\r': os_ << "\\r"; break;
          case '\t': os_ << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os_ << buf;
            } else {
                os_.put(c);
            }
        }
    }
    os_.put('"');
}

void
JsonWriter::value(std::string_view s)
{
    beforeValue();
    writeEscaped(s);
}

void
JsonWriter::value(bool b)
{
    beforeValue();
    os_ << (b ? "true" : "false");
}

void
JsonWriter::value(double d)
{
    beforeValue();
    os_ << jsonNumber(d);
}

void
JsonWriter::value(std::uint64_t u)
{
    beforeValue();
    os_ << u;
}

void
JsonWriter::value(std::int64_t i)
{
    beforeValue();
    os_ << i;
}

} // namespace iadm
