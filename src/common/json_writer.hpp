/**
 * @file
 * Minimal deterministic streaming JSON writer.
 *
 * The sweep runner's reports must be byte-identical across runs and
 * worker counts, so the writer is built for determinism: keys are
 * emitted in caller order, doubles use the shortest round-trip form
 * (std::to_chars), and indentation is fixed two-space.  No locale,
 * no iostream formatting state, no reordering.
 */

#ifndef IADM_COMMON_JSON_WRITER_HPP
#define IADM_COMMON_JSON_WRITER_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace iadm {

/**
 * Streaming JSON emitter with automatic commas and pretty-printing.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("delivered"); w.value(std::uint64_t{12});
 *   w.key("cells"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * Misuse (a key outside an object, a bare value where a key is
 * required) trips an assertion — reports are machine-read, so a
 * malformed document is a bug, not a formatting preference.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value belongs to it. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(double d);
    void value(std::uint64_t u);
    void value(std::int64_t i);
    void value(unsigned u) { value(static_cast<std::uint64_t>(u)); }
    void value(int i) { value(static_cast<std::int64_t>(i)); }

    /** True once the root value is complete. */
    bool done() const { return stack_.empty() && rootDone_; }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    std::ostream &os_;
    std::vector<Scope> stack_;
    std::vector<bool> first_;   //!< no comma yet at this depth
    bool keyPending_ = false;
    bool rootDone_ = false;

    void beforeValue();
    void newline();
    void writeEscaped(std::string_view s);
};

/** Shortest round-trip decimal form of @p d (to_chars, no locale). */
std::string jsonNumber(double d);

} // namespace iadm

#endif // IADM_COMMON_JSON_WRITER_HPP
