/**
 * @file
 * Minimal logging / error facility in the gem5 spirit.
 *
 * panic()  - a library bug: a condition that should never happen
 *            regardless of what the user does.  Aborts.
 * fatal()  - a user error (bad configuration, invalid arguments).
 *            Exits with status 1.
 * warn()   - something works but is suspicious.
 * inform() - plain status output.
 */

#ifndef IADM_COMMON_LOGGING_HPP
#define IADM_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace iadm {

namespace detail {

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: internal invariant violated. */
#define IADM_PANIC(...) \
    ::iadm::detail::panicImpl(__FILE__, __LINE__, \
                              ::iadm::detail::concat(__VA_ARGS__))

/** Exit with a message: user/configuration error. */
#define IADM_FATAL(...) \
    ::iadm::detail::fatalImpl(__FILE__, __LINE__, \
                              ::iadm::detail::concat(__VA_ARGS__))

/** Warn on stderr; execution continues. */
#define IADM_WARN(...) \
    ::iadm::detail::warnImpl(::iadm::detail::concat(__VA_ARGS__))

/** Informational message on stderr; execution continues. */
#define IADM_INFORM(...) \
    ::iadm::detail::informImpl(::iadm::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; panics when violated. */
#define IADM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) \
            IADM_PANIC("assertion failed: ", #cond, " ", ##__VA_ARGS__); \
    } while (0)

} // namespace iadm

#endif // IADM_COMMON_LOGGING_HPP
