/**
 * @file
 * Modulo-N arithmetic helpers.
 *
 * All switch-label arithmetic in the IADM network is mod N where
 * N = 2^n is the network size; the paper's "j + a" always means
 * (j + a) mod N.  These helpers keep the wrap-around in one place.
 */

#ifndef IADM_COMMON_MODMATH_HPP
#define IADM_COMMON_MODMATH_HPP

#include <cstdint>

#include "common/bits.hpp"

namespace iadm {

/** (a + b) mod n for unsigned a < n, arbitrary signed offset b. */
constexpr Label
modAdd(Label a, std::int64_t b, Label n)
{
    std::int64_t r = (static_cast<std::int64_t>(a) + b) %
                     static_cast<std::int64_t>(n);
    if (r < 0)
        r += n;
    return static_cast<Label>(r);
}

/** (a - b) mod n. */
constexpr Label
modSub(Label a, Label b, Label n)
{
    return modAdd(a, -static_cast<std::int64_t>(b), n);
}

/**
 * Routing distance from source @p s to destination @p d, as the
 * nonnegative residue (d - s) mod n.  Prior "distance tag" schemes
 * ([9],[13] in the paper) route by finding signed-digit
 * representations of this value.
 */
constexpr Label
distance(Label s, Label d, Label n)
{
    return modSub(d, s, n);
}

/**
 * Signed distance in (-n/2, n/2]: the smaller-magnitude of the two
 * representations D and D - N of the routing distance.
 */
constexpr std::int64_t
signedDistance(Label s, Label d, Label n)
{
    auto dd = static_cast<std::int64_t>(distance(s, d, n));
    if (dd > static_cast<std::int64_t>(n) / 2)
        dd -= n;
    return dd;
}

} // namespace iadm

#endif // IADM_COMMON_MODMATH_HPP
