#include "common/rng.hpp"

#include <numeric>

#include "common/logging.hpp"

namespace iadm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto &s : state)
        s = splitmix64(seed);
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    IADM_ASSERT(lo <= hi, "bad range");
    // hi - lo + 1 wraps to 0 when the range spans all 2^64 values,
    // which would trip uniform()'s zero-bound assertion; every raw
    // draw is already uniform over that range.
    const std::uint64_t span = hi - lo + 1;
    if (span == 0)
        return (*this)();
    return lo + uniform(span);
}

std::vector<std::size_t>
Rng::sample(std::size_t pool, std::size_t k)
{
    IADM_ASSERT(k <= pool, "sample larger than pool");
    std::vector<std::size_t> idx(pool);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    // Partial Fisher-Yates: fix the first k slots.
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + uniform(pool - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

} // namespace iadm
