/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Used by fault injection, traffic generation and property tests.
 * A self-contained generator keeps experiments reproducible across
 * standard-library versions.
 */

#ifndef IADM_COMMON_RNG_HPP
#define IADM_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace iadm {

/**
 * xoshiro256** by Blackman & Vigna; seeded via splitmix64.
 * Satisfies the UniformRandomBitGenerator requirements.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t uniform(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t k = uniform(i);
            std::swap(v[i - 1], v[k]);
        }
    }

    /** Choose @p k distinct indices from [0, pool) (k <= pool). */
    std::vector<std::size_t> sample(std::size_t pool, std::size_t k);

  private:
    std::uint64_t state[4];
};

} // namespace iadm

#endif // IADM_COMMON_RNG_HPP
