/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Used by fault injection, traffic generation and property tests.
 * A self-contained generator keeps experiments reproducible across
 * standard-library versions.
 */

#ifndef IADM_COMMON_RNG_HPP
#define IADM_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace iadm {

namespace detail {

constexpr std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace detail

/**
 * xoshiro256** by Blackman & Vigna; seeded via splitmix64.
 * Satisfies the UniformRandomBitGenerator requirements.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /**
     * Next raw 64-bit value.  Inline (as are the draws built on
     * it): the simulator makes two draws per node per cycle, so a
     * call per draw is measurable on the hot path.
     */
    result_type
    operator()()
    {
        const std::uint64_t result =
            detail::rotl64(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = detail::rotl64(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        IADM_ASSERT(bound != 0, "uniform() with zero bound");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = max() - max() % bound;
        std::uint64_t v;
        do {
            v = (*this)();
        } while (v >= limit);
        return v % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform real in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniformReal() < p; }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t k = uniform(i);
            std::swap(v[i - 1], v[k]);
        }
    }

    /** Choose @p k distinct indices from [0, pool) (k <= pool). */
    std::vector<std::size_t> sample(std::size_t pool, std::size_t k);

  private:
    std::uint64_t state[4];
};

} // namespace iadm

#endif // IADM_COMMON_RNG_HPP
