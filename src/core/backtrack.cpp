#include "core/backtrack.hpp"

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::core {

namespace {

/**
 * Lemma A1.1: the state bit value that makes switch @p j at stage
 * @p i take its nonstraight link of kind @p kind (Plus needs
 * b_{n+i} = j_i, Minus needs b_{n+i} = ~j_i).
 */
unsigned
stateBitForKind(Label j, unsigned i, topo::LinkKind kind)
{
    const unsigned ji = bit(j, i);
    IADM_ASSERT(kind == topo::LinkKind::Plus ||
                kind == topo::LinkKind::Minus,
                "state bit only disambiguates nonstraight links");
    return kind == topo::LinkKind::Plus ? ji : (ji ^ 1u);
}

} // namespace

std::optional<TsdtTag>
backtrack(const topo::IadmTopology &topo, const fault::FaultSet &faults,
          const Path &path, unsigned block_stage,
          fault::BlockageKind block_kind, TsdtTag tag,
          BacktrackStats *stats)
{
    IADM_ASSERT(block_kind == fault::BlockageKind::Straight ||
                block_kind == fault::BlockageKind::DoubleNonstraight,
                "BACKTRACK handles straight and double-nonstraight "
                "blockages only");
    const Label n_size = topo.size();
    const Label dest = path.destination();

    BacktrackStats local;
    BacktrackStats &st = stats ? *stats : local;

    // Step 0: q is the blockage stage, j the blocked switch on P.
    unsigned q = block_stage;
    Label j = path.switchAt(q);

    // Step 1: backtrack on P for the nearest nonstraight link.
    int r = path.lastNonstraightBefore(q);
    if (r < 0)
        return std::nullopt; // FAIL: Theorems 3.3/3.4 "only if".
    st.stagesVisited += q - static_cast<unsigned>(r);

    // Step 2: linkfound.  sigma is the sign of the rerouting side:
    // a -2^r link on P (linkfound = 1) reroutes via +2^l links and
    // vice versa (Figure 5 / Corollary 4.2).
    const topo::LinkKind found =
        path.kindAt(static_cast<unsigned>(r));
    const int sigma = (found == topo::LinkKind::Plus) ? -1 : +1;
    const topo::LinkKind side_kind =
        sigma > 0 ? topo::LinkKind::Plus : topo::LinkKind::Minus;

    // The switch of the rerouting path at stage l in (r, q]:
    // j + sigma * 2^l.
    const auto reroute_switch = [&](Label base, unsigned l) {
        return modAdd(base, sigma * (std::int64_t{1} << l), n_size);
    };

    // Step 3 (and step 10 in later iterations): state bits of
    // stages r..q-1 select the sigma-signed links (Lemma A1.2).
    const auto set_state_range = [&](unsigned lo, unsigned hi) {
        for (unsigned l = lo; l < hi; ++l) {
            const unsigned dl = bit(dest, l);
            tag.setStateBit(l, sigma > 0 ? (dl ^ 1u) : dl);
            ++st.bitsChanged;
        }
    };
    set_state_range(static_cast<unsigned>(r), q);

    bool first_iteration = true;
    while (true) {
        ++st.iterations;
        const Label jq = reroute_switch(j, q);

        if (first_iteration &&
            block_kind == fault::BlockageKind::Straight) {
            // Step 4a: the rerouting link at stage q is one of jq's
            // two nonstraight links; default to the sigma-signed one
            // (continuing away from the blocked column), fall back
            // to the other, FAIL if both are blocked (both pivots of
            // stage q are then closed).
            const topo::Link def = topo.link(q, jq, side_kind);
            const topo::Link alt = topo.oppositeNonstraight(def);
            if (!faults.isBlocked(def)) {
                tag.setStateBit(q, stateBitForKind(jq, q, def.kind));
            } else if (!faults.isBlocked(alt)) {
                tag.setStateBit(q, stateBitForKind(jq, q, alt.kind));
            } else {
                return std::nullopt; // FAIL
            }
            ++st.bitsChanged;
        } else {
            // Step 4b: the rerouting path must use jq's straight
            // link at stage q; if it is blocked both pivots of
            // stage q are closed.
            if (faults.isBlocked(topo.straightLink(q, jq)))
                return std::nullopt; // FAIL
            // The tag selects the straight link automatically:
            // bit q of jq equals d_q here.
            IADM_ASSERT(bit(jq, q) == bit(dest, q),
                        "rerouting switch must match destination "
                        "bit at stage ", q);
        }

        // Step 5: blockages strictly inside the climb
        // (j+sigma*2^{r+1} ... j+sigma*2^q) close the path for good.
        for (unsigned l = static_cast<unsigned>(r) + 1; l < q; ++l) {
            const topo::Link lk =
                topo.link(l, reroute_switch(j, l), side_kind);
            if (faults.isBlocked(lk))
                return std::nullopt; // FAIL
        }

        // Step 6: the stage-r link of the rerouting path leaves P's
        // switch at stage r on the sigma side.
        const topo::Link lr =
            topo.link(static_cast<unsigned>(r), path.switchAt(r),
                      side_kind);
        if (!faults.isBlocked(lr))
            return tag;

        // Step 7: the switch j+sigma*2^r is now closed; iterate.
        j = reroute_switch(j, static_cast<unsigned>(r));
        q = static_cast<unsigned>(r);

        // Step 8: continue backtracking along P.
        r = path.lastNonstraightBefore(q);
        if (r < 0)
            return std::nullopt; // FAIL
        st.stagesVisited += q - static_cast<unsigned>(r);

        // Step 9: the sign of every later-found nonstraight link
        // must match the first; otherwise no blockage-free path
        // exists (Figure 9).
        if (path.kindAt(static_cast<unsigned>(r)) != found)
            return std::nullopt; // FAIL

        // Step 10: rewrite the new range, then re-enter at step 4b.
        set_state_range(static_cast<unsigned>(r), q);
        first_iteration = false;
    }
}

} // namespace iadm::core
