/**
 * @file
 * Algorithm BACKTRACK (Section 5).
 *
 * Given the current routing path P, the stage q of a straight or
 * double-nonstraight link blockage, and the state bits of P's tag,
 * BACKTRACK performs iterated backtracking along P (steps 0-10 of
 * the paper) and returns updated state bits specifying a rerouting
 * path that is blockage-free from stage 0 through stage q — or FAIL
 * (nullopt) exactly when the blockages make source-destination
 * communication impossible (proved via the pivot lemmas A2.1-A2.3).
 */

#ifndef IADM_CORE_BACKTRACK_HPP
#define IADM_CORE_BACKTRACK_HPP

#include <optional>

#include "core/tsdt.hpp"
#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"

namespace iadm::core {

/** Instrumentation of one BACKTRACK invocation. */
struct BacktrackStats
{
    unsigned iterations = 0;    //!< backtracking iterations executed
    unsigned stagesVisited = 0; //!< total stages walked backwards
    unsigned bitsChanged = 0;   //!< state bits rewritten
};

/**
 * Run algorithm BACKTRACK.
 *
 * @param topo        the IADM network
 * @param faults      global blockage map (the paper's network
 *                    controller knowledge)
 * @param path        current routing path P
 * @param block_stage stage q of the blockage on P
 * @param block_kind  Straight or DoubleNonstraight (the two cases
 *                    the algorithm handles; a repairable
 *                    single-nonstraight blockage is Corollary 4.1's
 *                    job, not BACKTRACK's)
 * @param tag         the tag specifying P (b' in the paper)
 * @param stats       optional instrumentation sink
 * @return the rerouting tag, or nullopt (FAIL)
 */
std::optional<TsdtTag> backtrack(const topo::IadmTopology &topo,
                                 const fault::FaultSet &faults,
                                 const Path &path, unsigned block_stage,
                                 fault::BlockageKind block_kind,
                                 TsdtTag tag,
                                 BacktrackStats *stats = nullptr);

} // namespace iadm::core

#endif // IADM_CORE_BACKTRACK_HPP
