#include "core/controller.hpp"

#include <vector>

#include "common/logging.hpp"

namespace iadm::core {

NetworkController::NetworkController(const topo::IadmTopology &topo)
    : topo_(topo)
{
}

std::uint64_t
NetworkController::key(Label s, Label d) const
{
    return (static_cast<std::uint64_t>(s) << 32) | d;
}

std::optional<TsdtTag>
NetworkController::tagFor(Label src, Label dest)
{
    ++stats_.lookups;
    const auto it = cache_.find(key(src, dest));
    if (it != cache_.end()) {
        ++stats_.hits;
        if (!it->second.routable)
            return std::nullopt;
        return it->second.tag;
    }
    ++stats_.computes;
    const RerouteResult res =
        reroute(topo_, faults_, src, initialTag(topo_.stages(), dest));
    Entry e{res.ok, res.tag};
    cache_.emplace(key(src, dest), e);
    if (!res.ok)
        return std::nullopt;
    return res.tag;
}

void
NetworkController::linkFailed(const topo::Link &link)
{
    faults_.blockLink(link);
    // Drop exactly the cached tags whose path uses the failed link.
    // Disconnected entries stay disconnected (more faults cannot
    // reconnect a pair).
    std::vector<std::uint64_t> doomed;
    for (const auto &[k, e] : cache_) {
        if (!e.routable)
            continue;
        const auto src = static_cast<Label>(k >> 32);
        const Path p = tsdtTrace(src, e.tag, topo_.size());
        if (!p.isBlockageFree(faults_))
            doomed.push_back(k);
    }
    for (auto k : doomed)
        cache_.erase(k);
    stats_.invalidations += doomed.size();
}

void
NetworkController::linkRepaired(const topo::Link &link)
{
    faults_.unblockLink(link);
    // Routable entries remain valid; disconnected verdicts may have
    // been caused by this link, so they must be retried.
    std::vector<std::uint64_t> doomed;
    for (const auto &[k, e] : cache_)
        if (!e.routable)
            doomed.push_back(k);
    for (auto k : doomed)
        cache_.erase(k);
    stats_.invalidations += doomed.size();
}

} // namespace iadm::core
