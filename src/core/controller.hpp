/**
 * @file
 * The network controller of Section 5.
 *
 * "Algorithm BACKTRACK (and REROUTE) presumes existence of the
 * knowledge of all blockages in the network.  The network
 * controller is responsible for collecting this information and
 * maintaining a global map of blockages, which is accessible to
 * every sender of the messages in order to compute a path to avoid
 * the blockages."
 *
 * NetworkController realizes that component: it owns the global
 * blockage map, hands senders blockage-free TSDT tags on demand
 * (computed by REROUTE and cached), and — when a link fails or
 * recovers — invalidates exactly the cached tags the event can
 * affect, so steady-state tag lookups are O(1).
 */

#ifndef IADM_CORE_CONTROLLER_HPP
#define IADM_CORE_CONTROLLER_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/reroute.hpp"

namespace iadm::core {

/** Cache statistics of a NetworkController. */
struct ControllerStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t computes = 0;     //!< REROUTE invocations
    std::uint64_t invalidations = 0; //!< cached tags dropped
};

/** Global blockage map + per-pair tag cache. */
class NetworkController
{
  public:
    explicit NetworkController(const topo::IadmTopology &topo);

    /** The current global blockage map. */
    const fault::FaultSet &faults() const { return faults_; }

    /**
     * A blockage-free TSDT tag for (src, dest), or nullopt when the
     * pair is disconnected.  Cached; recomputed only after an
     * invalidating fault event.
     */
    std::optional<TsdtTag> tagFor(Label src, Label dest);

    /**
     * Report a failed (or newly busy) link.  Invalidates the cached
     * tags whose current path crosses the link; others stay valid
     * (their paths are still blockage-free).
     */
    void linkFailed(const topo::Link &link);

    /**
     * Report a repaired link.  Previously-computed tags stay valid;
     * pairs recorded as disconnected get another chance.
     */
    void linkRepaired(const topo::Link &link);

    const ControllerStats &stats() const { return stats_; }

    /** Number of cached entries (diagnostics). */
    std::size_t cacheSize() const { return cache_.size(); }

  private:
    struct Entry
    {
        bool routable;
        TsdtTag tag;   //!< valid when routable
    };

    std::uint64_t key(Label s, Label d) const;

    const topo::IadmTopology &topo_;
    fault::FaultSet faults_;
    std::unordered_map<std::uint64_t, Entry> cache_;
    ControllerStats stats_;
};

} // namespace iadm::core

#endif // IADM_CORE_CONTROLLER_HPP
