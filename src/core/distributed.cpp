#include "core/distributed.hpp"

#include "common/logging.hpp"

namespace iadm::core {

DistributedResult
distributedRoute(const topo::IadmTopology &topo,
                 const fault::FaultSet &faults, Label src,
                 const TsdtTag &initial)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();

    DistributedResult res;
    TsdtTag tag = initial;
    Path path = tsdtTrace(src, tag, n_size);
    unsigned at = 0; // stage the message currently occupies

    const unsigned guard = 4 * n + 8;
    for (unsigned iter = 0; iter < guard; ++iter) {
        // Walk forward along the current path until a blocked
        // output port is probed.
        const int blocked = path.firstBlockedStage(faults);
        if (blocked < 0) {
            res.forwardHops += n - at;
            res.delivered = true;
            res.path = path;
            res.tag = tag;
            return res;
        }
        const auto i = static_cast<unsigned>(blocked);
        IADM_ASSERT(i >= at, "walk resumed past a blockage");
        res.forwardHops += i - at;
        at = i;
        ++res.probes; // the blocked port

        const topo::Link link = path.linkAt(i);
        std::optional<TsdtTag> next;
        if (link.kind != topo::LinkKind::Straight) {
            ++res.probes; // the spare port
            if (!faults.isBlocked(topo.oppositeNonstraight(link))) {
                // Corollary 4.1: flip in place, no movement.
                next = rerouteNonstraight(tag, i);
                ++res.flips;
                tag = *next;
                path = tsdtTrace(src, tag, n_size);
                continue;
            }
        }

        // Straight or double-nonstraight blockage: the blockage
        // signal propagates backward and the message walks back to
        // the rewrite stage (Corollary 4.2 / BACKTRACK).
        const auto kind = link.kind == topo::LinkKind::Straight
                              ? fault::BlockageKind::Straight
                              : fault::BlockageKind::DoubleNonstraight;
        BacktrackStats stats;
        next = backtrack(topo, faults, path, i, kind, tag, &stats);
        if (!next) {
            res.failedStage = static_cast<int>(i);
            res.path = path;
            res.tag = tag;
            return res;
        }
        ++res.rewrites;
        // The message walks backward over every stage the
        // backtracking visited, and the reroute-side probes of
        // steps 4-6 are status signals from neighboring switches.
        res.backtrackHops += stats.stagesVisited;
        res.probes += stats.stagesVisited + 2 * stats.iterations;
        IADM_ASSERT(stats.stagesVisited <= at,
                    "backtracked past the input column");
        at -= stats.stagesVisited;
        tag = *next;
        path = tsdtTrace(src, tag, n_size);
    }
    IADM_PANIC("dynamic TSDT walk failed to converge");
}

DistributedResult
distributedRoute(const topo::IadmTopology &topo,
                 const fault::FaultSet &faults, Label src, Label dest)
{
    return distributedRoute(topo, faults, src,
                            initialTag(topo.stages(), dest));
}

} // namespace iadm::core
