/**
 * @file
 * Dynamic (in-network) TSDT rerouting.
 *
 * Section 4: "An alternative is to implement dynamic rerouting for
 * the TSDT scheme.  Since backtracking is indispensable for
 * avoiding a straight link blockage, it is required that each
 * switch can detect the inaccessibility of any output port and
 * signal the presence of the blockage back to the switches of
 * previous stages."
 *
 * This module models that implementation: the *message itself*
 * executes REROUTE as it walks.  A repairable nonstraight blockage
 * costs one in-place state-bit flip (Corollary 4.1); a straight or
 * double-nonstraight blockage makes the message physically walk
 * backward to the rewrite stage (Corollary 4.2 / BACKTRACK) before
 * resuming.  The result carries the hop/probe accounting that
 * distinguishes the dynamic implementation from sender-side tag
 * computation — the trade-off the paper leaves as "an
 * implementation decision".
 */

#ifndef IADM_CORE_DISTRIBUTED_HPP
#define IADM_CORE_DISTRIBUTED_HPP

#include "core/reroute.hpp"

namespace iadm::core {

/** Outcome and cost accounting of a dynamic TSDT walk. */
struct DistributedResult
{
    bool delivered = false;
    Path path;               //!< final delivery path (when ok)
    TsdtTag tag;             //!< final tag
    unsigned forwardHops = 0;   //!< links traversed forward
    unsigned backtrackHops = 0; //!< links walked backward
    unsigned probes = 0;        //!< output-port status checks
    unsigned flips = 0;         //!< Corollary 4.1 in-place repairs
    unsigned rewrites = 0;      //!< Corollary 4.2 backtracking repairs
    int failedStage = -1;       //!< stage of an unrepairable blockage

    /** Total message movement (forward + backward). */
    unsigned totalHops() const { return forwardHops + backtrackHops; }
};

/**
 * Walk a message from @p src to the tag's destination, repairing
 * blockages dynamically.  Delivery succeeds exactly when REROUTE
 * would succeed (the walk executes the same algorithm); the
 * difference is the cost model.
 */
DistributedResult distributedRoute(const topo::IadmTopology &topo,
                                   const fault::FaultSet &faults,
                                   Label src, const TsdtTag &initial);

/** Convenience wrapper starting from the all-state-C tag. */
DistributedResult distributedRoute(const topo::IadmTopology &topo,
                                   const fault::FaultSet &faults,
                                   Label src, Label dest);

} // namespace iadm::core

#endif // IADM_CORE_DISTRIBUTED_HPP
