#include "core/multicast.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace iadm::core {

std::size_t
MulticastTree::linkCount() const
{
    std::size_t total = 0;
    for (const auto &stage_links : links)
        total += stage_links.size();
    return total;
}

std::set<Label>
MulticastTree::coverage(Label) const
{
    // Walk the per-stage links from the source, tracking the active
    // switch set; the final active set is the coverage.
    std::set<Label> active{source};
    for (const auto &stage_links : links) {
        std::set<Label> next;
        for (const topo::Link &l : stage_links) {
            IADM_ASSERT(active.count(l.from),
                        "tree link from inactive switch: ", l.str());
            next.insert(l.to);
        }
        active = std::move(next);
    }
    return active;
}

namespace {

/**
 * Recursive builder: the copy at switch j of stage i must deliver
 * the destination subset S (whose members agree with j on bits
 * 0..i-1).  Returns false when no sign assignment works.
 */
bool
build(const topo::IadmTopology &topo, const fault::FaultSet &faults,
      unsigned stage, Label j, const std::vector<Label> &subset,
      std::vector<std::vector<topo::Link>> &links)
{
    const unsigned n = topo.stages();
    if (stage == n) {
        IADM_ASSERT(subset.size() == 1 && subset.front() == j,
                    "unresolved multicast subset at the output");
        return true;
    }

    std::vector<Label> same, diff;
    for (Label d : subset) {
        if (bit(d, stage) == bit(j, stage))
            same.push_back(d);
        else
            diff.push_back(d);
    }

    // Deeper stages may have appended too before a failure; record
    // their sizes for rollback.
    std::vector<std::size_t> marks(n);
    for (unsigned i = stage; i < n; ++i)
        marks[i] = links[i].size();
    const auto rollback = [&] {
        for (unsigned i = stage; i < n; ++i)
            links[i].resize(marks[i]);
    };

    // The straight copy, if any destination keeps bit i.
    if (!same.empty()) {
        const topo::Link s = topo.straightLink(stage, j);
        if (faults.isBlocked(s))
            return false; // mandatory straight segment is dead
        links[stage].push_back(s);
        if (!build(topo, faults, stage + 1, j, same, links)) {
            rollback();
            return false;
        }
    }

    if (diff.empty())
        return true;

    // The diverging copy: either nonstraight link sets bit i.
    for (const topo::LinkKind kind :
         {topo::LinkKind::Plus, topo::LinkKind::Minus}) {
        const topo::Link l = topo.link(stage, j, kind);
        if (faults.isBlocked(l))
            continue;
        std::vector<std::size_t> sub_marks(n);
        for (unsigned i = stage; i < n; ++i)
            sub_marks[i] = links[i].size();
        links[stage].push_back(l);
        if (build(topo, faults, stage + 1, l.to, diff, links))
            return true;
        for (unsigned i = stage; i < n; ++i)
            links[i].resize(sub_marks[i]);
    }
    rollback();
    return false;
}

} // namespace

std::optional<MulticastTree>
buildMulticastTree(const topo::IadmTopology &topo,
                   const fault::FaultSet &faults, Label src,
                   const std::vector<Label> &dests)
{
    IADM_ASSERT(!dests.empty(), "empty multicast set");
    MulticastTree tree;
    tree.source = src;
    for (Label d : dests) {
        IADM_ASSERT(d < topo.size(), "destination out of range");
        tree.destinations.insert(d);
    }
    tree.links.assign(topo.stages(), {});

    std::vector<Label> subset(tree.destinations.begin(),
                              tree.destinations.end());
    if (!build(topo, faults, 0, src, subset, tree.links))
        return std::nullopt;

    // Copies can merge only at the shared last-stage switch; links
    // are unique by construction, but assert it defensively.
    for (const auto &stage_links : tree.links) {
        for (std::size_t a = 0; a < stage_links.size(); ++a)
            for (std::size_t b = a + 1; b < stage_links.size(); ++b)
                IADM_ASSERT(!(stage_links[a] == stage_links[b]),
                            "duplicate link in multicast tree");
    }
    return tree;
}

} // namespace iadm::core
