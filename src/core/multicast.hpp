/**
 * @file
 * One-to-many (multicast) routing in the IADM network.
 *
 * The paper's switch "selects one of its input links and connects
 * it to ONE OR MORE of its three output links" — the hardware can
 * replicate a message, though the paper studies only one-to-one and
 * permutation routing (its Figure 1 note).  This module exercises
 * that capability: a multicast tree fixes destination bits stage by
 * stage, splitting a copy whenever its destination subset disagrees
 * on the current bit.  The straight copy keeps bit i; the diverging
 * copy may use either nonstraight link (both set bit i to its
 * complement — the same freedom Theorem 3.2 exploits), which the
 * builder searches over to avoid blocked links.
 *
 * Scope note: fault avoidance here is complete over those sign
 * choices only; combining multicast with Corollary 4.2-style
 * backtracking is future work beyond the paper.
 */

#ifndef IADM_CORE_MULTICAST_HPP
#define IADM_CORE_MULTICAST_HPP

#include <optional>
#include <set>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"

namespace iadm::core {

/** A multicast tree: the links carrying copies, per stage. */
struct MulticastTree
{
    Label source = 0;
    std::set<Label> destinations;
    std::vector<std::vector<topo::Link>> links; //!< [stage]

    /** Total links used (the tree's cost). */
    std::size_t linkCount() const;

    /**
     * Follow the tree and return every output reached; equals
     * destinations for a valid tree.
     */
    std::set<Label> coverage(Label n_size) const;
};

/**
 * Build a multicast tree from @p src to @p dests avoiding
 * @p faults, or nullopt if the bit-fixing strategy cannot (blocked
 * straight links on mandatory segments, or both signs dead at a
 * divergence).
 */
std::optional<MulticastTree> buildMulticastTree(
    const topo::IadmTopology &topo, const fault::FaultSet &faults,
    Label src, const std::vector<Label> &dests);

} // namespace iadm::core

#endif // IADM_CORE_MULTICAST_HPP
