#include "core/oracle.hpp"

#include <algorithm>
#include <queue>

#include "common/logging.hpp"

namespace iadm::core {

namespace {

/** Flat node id for (stage, switch). */
std::size_t
nodeId(const topo::IadmTopology &topo, unsigned stage, Label j)
{
    return static_cast<std::size_t>(stage) * topo.size() + j;
}

} // namespace

bool
oracleReachable(const topo::IadmTopology &topo,
                const fault::FaultSet &faults, Label src, Label dest)
{
    return oracleFindPath(topo, faults, src, dest).has_value();
}

std::optional<Path>
oracleFindPath(const topo::IadmTopology &topo,
               const fault::FaultSet &faults, Label src, Label dest)
{
    const unsigned n = topo.stages();
    const Label n_size = topo.size();
    IADM_ASSERT(src < n_size && dest < n_size, "bad address");

    const std::size_t nodes =
        static_cast<std::size_t>(n + 1) * n_size;
    // parent[v] = link taken into v; parentValid marks visited.
    std::vector<topo::Link> parent(nodes);
    std::vector<bool> visited(nodes, false);

    std::queue<std::pair<unsigned, Label>> q;
    visited[nodeId(topo, 0, src)] = true;
    q.push({0, src});
    while (!q.empty()) {
        auto [stage, j] = q.front();
        q.pop();
        if (stage == n)
            continue;
        for (const topo::Link &l : topo.outLinks(stage, j)) {
            if (faults.isBlocked(l))
                continue;
            const std::size_t v = nodeId(topo, stage + 1, l.to);
            if (visited[v])
                continue;
            visited[v] = true;
            parent[v] = l;
            q.push({stage + 1, l.to});
        }
    }

    if (!visited[nodeId(topo, n, dest)])
        return std::nullopt;

    std::vector<Label> sw(n + 1);
    std::vector<topo::LinkKind> kinds(n);
    sw[n] = dest;
    for (unsigned stage = n; stage > 0; --stage) {
        const topo::Link &l = parent[nodeId(topo, stage, sw[stage])];
        kinds[stage - 1] = l.kind;
        sw[stage - 1] = l.from;
    }
    IADM_ASSERT(sw[0] == src, "BFS parent chain broken");
    return Path(std::move(sw), std::move(kinds));
}

std::vector<Path>
oracleAllPaths(const topo::IadmTopology &topo, Label src, Label dest)
{
    const unsigned n = topo.stages();
    std::vector<Path> out;
    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;

    // Iterative DFS over link choices, lexicographic in
    // (Straight, Plus, Minus) order.
    struct Frame { unsigned next_choice; };
    std::vector<Frame> stack{{0}};
    static constexpr topo::LinkKind order[3] = {
        topo::LinkKind::Straight, topo::LinkKind::Plus,
        topo::LinkKind::Minus};

    while (!stack.empty()) {
        const unsigned stage =
            static_cast<unsigned>(stack.size()) - 1;
        Frame &f = stack.back();
        if (stage == n) {
            if (sw.back() == dest)
                out.emplace_back(sw, kinds);
            stack.pop_back();
            if (!kinds.empty()) {
                sw.pop_back();
                kinds.pop_back();
            }
            continue;
        }
        if (f.next_choice >= 3) {
            stack.pop_back();
            if (!kinds.empty()) {
                sw.pop_back();
                kinds.pop_back();
            }
            continue;
        }
        const topo::LinkKind kind = order[f.next_choice++];
        const topo::Link l = topo.link(stage, sw.back(), kind);
        // Prune: after stage i, bits 0..i of the label must match
        // the destination (Lemma 2.1), or the path cannot end at d.
        if ((l.to & lowMask(stage + 1)) !=
            (dest & lowMask(stage + 1)))
            continue;
        sw.push_back(l.to);
        kinds.push_back(kind);
        stack.push_back({0});
    }
    return out;
}

bool
genericReachable(const topo::MultistageTopology &topo,
                 const fault::FaultSet &faults, Label src, Label dest)
{
    const unsigned n = topo.stages();
    const Label n_size = topo.size();
    IADM_ASSERT(src < n_size && dest < n_size, "bad address");
    std::vector<bool> cur(n_size, false), next(n_size, false);
    cur[src] = true;
    for (unsigned stage = 0; stage < n; ++stage) {
        std::fill(next.begin(), next.end(), false);
        for (Label j = 0; j < n_size; ++j) {
            if (!cur[j])
                continue;
            for (const topo::Link &l : topo.outLinks(stage, j))
                if (!faults.isBlocked(l))
                    next[l.to] = true;
        }
        std::swap(cur, next);
    }
    return cur[dest];
}

std::optional<Path>
icubeRoute(const topo::ICubeTopology &topo,
           const fault::FaultSet &faults, Label src, Label dest)
{
    const unsigned n = topo.stages();
    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;
    for (unsigned i = 0; i < n; ++i) {
        const Label next = topo.nextHop(i, j, dest);
        const topo::Link link =
            next == j ? topo.outLinks(i, j)[0] : topo.cubeLink(i, j);
        if (faults.isBlocked(link))
            return std::nullopt;
        kinds.push_back(link.kind);
        j = next;
        sw.push_back(j);
    }
    IADM_ASSERT(j == dest, "ICube tag routing missed destination");
    return Path(std::move(sw), std::move(kinds));
}

std::uint64_t
oracleCountPaths(const topo::IadmTopology &topo, Label src, Label dest)
{
    const unsigned n = topo.stages();
    const Label n_size = topo.size();
    std::vector<std::uint64_t> cur(n_size, 0), next(n_size, 0);
    cur[src] = 1;
    for (unsigned stage = 0; stage < n; ++stage) {
        std::fill(next.begin(), next.end(), 0);
        for (Label j = 0; j < n_size; ++j) {
            if (!cur[j])
                continue;
            for (const topo::Link &l : topo.outLinks(stage, j))
                next[l.to] += cur[j];
        }
        std::swap(cur, next);
    }
    return cur[dest];
}

} // namespace iadm::core
