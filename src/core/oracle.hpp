/**
 * @file
 * Brute-force oracles used to verify the routing theory.
 *
 * Every stage-respecting path from an input switch to an output
 * switch of the IADM network is a legal routing path (it results
 * from some network state, per the discussion under Theorem 3.1), so
 * plain graph search over the layered graph — with blocked links
 * removed — decides reachability exactly.  The REROUTE algorithm's
 * "finds a path iff one exists" claim is tested against these
 * oracles.
 */

#ifndef IADM_CORE_ORACLE_HPP
#define IADM_CORE_ORACLE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/path.hpp"
#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"
#include "topology/icube.hpp"

namespace iadm::core {

/** True iff an unblocked path src -> dest exists (BFS). */
bool oracleReachable(const topo::IadmTopology &topo,
                     const fault::FaultSet &faults, Label src,
                     Label dest);

/** Some unblocked path src -> dest, or nullopt (BFS with parents). */
std::optional<Path> oracleFindPath(const topo::IadmTopology &topo,
                                   const fault::FaultSet &faults,
                                   Label src, Label dest);

/**
 * Every routing path src -> dest in the fault-free network, in
 * lexicographic link-kind order.  Exponential in the worst case; use
 * for small N.  Cross-checks the Parker-Raghavendra redundant
 * number representation enumeration.
 */
std::vector<Path> oracleAllPaths(const topo::IadmTopology &topo,
                                 Label src, Label dest);

/** Number of routing paths src -> dest (64-bit DP count). */
std::uint64_t oracleCountPaths(const topo::IadmTopology &topo,
                               Label src, Label dest);

/**
 * Destination-tag routing through a bare ICube network: each pair
 * has exactly ONE path, so any blockage on it is fatal.  Returns
 * the path, or nullopt when a link of it is blocked.  This is the
 * contrast that makes the IADM "a fault-tolerant ICube network"
 * (Section 1).
 */
std::optional<Path> icubeRoute(const topo::ICubeTopology &topo,
                               const fault::FaultSet &faults,
                               Label src, Label dest);

/**
 * Layered BFS reachability for ANY multistage topology (ADM,
 * Gamma, Omega, ...): true iff an unblocked stage-respecting path
 * joins input @p src to output @p dest.
 */
bool genericReachable(const topo::MultistageTopology &topo,
                      const fault::FaultSet &faults, Label src,
                      Label dest);

} // namespace iadm::core

#endif // IADM_CORE_ORACLE_HPP
