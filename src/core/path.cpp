#include "core/path.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace iadm::core {

Path::Path(std::vector<Label> sw, std::vector<topo::LinkKind> kinds)
    : sw_(std::move(sw)), kinds_(std::move(kinds))
{
    IADM_ASSERT(sw_.size() == kinds_.size() + 1,
                "path needs one more switch than links");
}

Label
Path::switchAt(unsigned i) const
{
    IADM_ASSERT(i < sw_.size(), "stage out of range");
    return sw_[i];
}

topo::LinkKind
Path::kindAt(unsigned i) const
{
    IADM_ASSERT(i < kinds_.size(), "stage out of range");
    return kinds_[i];
}

topo::Link
Path::linkAt(unsigned i) const
{
    IADM_ASSERT(i < kinds_.size(), "stage out of range");
    return {i, sw_[i], sw_[i + 1], kinds_[i]};
}

std::vector<topo::Link>
Path::links() const
{
    std::vector<topo::Link> out;
    out.reserve(kinds_.size());
    for (unsigned i = 0; i < kinds_.size(); ++i)
        out.push_back(linkAt(i));
    return out;
}

int
Path::lastNonstraightBefore(unsigned before) const
{
    IADM_ASSERT(before <= kinds_.size(), "stage out of range");
    for (unsigned i = before; i-- > 0;) {
        if (kinds_[i] != topo::LinkKind::Straight)
            return static_cast<int>(i);
    }
    return -1;
}

int
Path::firstBlockedStage(const fault::FaultSet &faults) const
{
    for (unsigned i = 0; i < kinds_.size(); ++i)
        if (faults.isBlocked(linkAt(i)))
            return static_cast<int>(i);
    return -1;
}

bool
Path::isBlockageFree(const fault::FaultSet &faults) const
{
    return firstBlockedStage(faults) < 0;
}

void
Path::validate(const topo::IadmTopology &topo) const
{
    IADM_ASSERT(length() == topo.stages(),
                "path length ", length(), " != stages ",
                topo.stages());
    for (unsigned i = 0; i < length(); ++i) {
        const topo::Link expect = topo.link(i, sw_[i], kinds_[i]);
        IADM_ASSERT(expect.to == sw_[i + 1],
                    "path hop mismatch at stage ", i, ": ",
                    expect.str(), " vs switch ", sw_[i + 1]);
    }
}

std::string
Path::str() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < kinds_.size(); ++i) {
        os << sw_[i];
        switch (kinds_[i]) {
          case topo::LinkKind::Straight: os << " =(0)=> "; break;
          case topo::LinkKind::Plus:
            os << " =(+" << (1u << i) << ")=> ";
            break;
          case topo::LinkKind::Minus:
            os << " =(-" << (1u << i) << ")=> ";
            break;
          case topo::LinkKind::Exchange: os << " =(x)=> "; break;
        }
    }
    if (!sw_.empty())
        os << sw_.back();
    return os.str();
}

} // namespace iadm::core
