/**
 * @file
 * Routing paths through the IADM network.
 *
 * A path records the switch visited at every stage 0..n plus the
 * physical kind of the link taken at each of the n link stages.
 * Kinds must be stored explicitly because at stage n-1 the +2^{n-1}
 * and -2^{n-1} links join the same pair of switches yet are
 * physically distinct.
 */

#ifndef IADM_CORE_PATH_HPP
#define IADM_CORE_PATH_HPP

#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"

namespace iadm::core {

/** A source-to-destination path through the IADM network. */
class Path
{
  public:
    Path() = default;

    /**
     * @param sw    switch labels at stages 0..n (n+1 entries)
     * @param kinds link kinds at stages 0..n-1 (n entries)
     */
    Path(std::vector<Label> sw, std::vector<topo::LinkKind> kinds);

    /** Number of link stages. */
    unsigned length() const
    {
        return static_cast<unsigned>(kinds_.size());
    }

    bool empty() const { return kinds_.empty(); }

    Label source() const { return sw_.front(); }
    Label destination() const { return sw_.back(); }

    /** Switch visited at stage @p i (0 <= i <= n). */
    Label switchAt(unsigned i) const;

    /** Kind of the link taken at stage @p i. */
    topo::LinkKind kindAt(unsigned i) const;

    /** The physical link taken at stage @p i. */
    topo::Link linkAt(unsigned i) const;

    /** All n links of the path. */
    std::vector<topo::Link> links() const;

    /**
     * Largest stage r < @p before whose link is nonstraight, or -1
     * when the path is all-straight below @p before.  This is the
     * backtracking search of Theorems 3.3/3.4 and of step 1/8 of
     * algorithm BACKTRACK.
     */
    int lastNonstraightBefore(unsigned before) const;

    /** Smallest stage whose link is blocked in @p faults, or -1. */
    int firstBlockedStage(const fault::FaultSet &faults) const;

    /** True iff no link of the path is blocked. */
    bool isBlockageFree(const fault::FaultSet &faults) const;

    /**
     * Structural validation against the IADM topology: every hop
     * must be a real link of the right kind.  Panics on violation.
     */
    void validate(const topo::IadmTopology &topo) const;

    /** "1 =(+1)=> 2 =(0)=> 2 ..." rendering. */
    std::string str() const;

    friend bool
    operator==(const Path &a, const Path &b)
    {
        return a.sw_ == b.sw_ && a.kinds_ == b.kinds_;
    }

  private:
    std::vector<Label> sw_;
    std::vector<topo::LinkKind> kinds_;
};

} // namespace iadm::core

#endif // IADM_CORE_PATH_HPP
