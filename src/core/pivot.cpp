#include "core/pivot.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::core {

PivotInfo::PivotInfo(Label src, Label dest, Label n_size)
    : src_(src), dest_(dest), nSize_(n_size)
{
    IADM_ASSERT(isPowerOfTwo(n_size), "bad network size");
    IADM_ASSERT(src < n_size && dest < n_size, "bad address");
    const unsigned n = log2Floor(n_size);
    const Label dist = distance(src, dest, n_size);

    kHat_ = n;
    for (unsigned i = 0; i < n; ++i) {
        if (bit(dist, i)) {
            kHat_ = i;
            break;
        }
    }

    pivots_.resize(n + 1);
    for (unsigned i = 0; i <= n; ++i) {
        // Reachable-and-useful switches at stage i are s + x mod N
        // with x == D (mod 2^i) and |x| <= 2^i - 1: x = D mod 2^i
        // and, when nonzero, x - 2^i.
        const Label partial =
            (i >= n) ? dist : static_cast<Label>(dist & lowMask(i));
        pivots_[i].push_back(modAdd(src, partial, n_size));
        if (i < n && partial != 0) {
            pivots_[i].push_back(modAdd(
                src,
                static_cast<std::int64_t>(partial) -
                    (std::int64_t{1} << i),
                n_size));
        }
        std::sort(pivots_[i].begin(), pivots_[i].end());
    }
}

const std::vector<Label> &
PivotInfo::at(unsigned i) const
{
    IADM_ASSERT(i < pivots_.size(), "stage out of range");
    return pivots_[i];
}

bool
PivotInfo::isPivot(unsigned i, Label j) const
{
    const auto &p = at(i);
    return std::find(p.begin(), p.end(), j) != p.end();
}

fault::FaultSet
cutPair(const topo::IadmTopology &topo, Label src, Label dest)
{
    // Block every participating link of the stage with the fewest
    // of them (stage 0 when source-local, else the cheapest cut).
    const auto links = participatingLinks(topo, src, dest);
    std::vector<std::size_t> per_stage(topo.stages(), 0);
    for (const topo::Link &l : links)
        ++per_stage[l.stage];
    unsigned best = 0;
    for (unsigned i = 1; i < topo.stages(); ++i)
        if (per_stage[i] < per_stage[best])
            best = i;
    fault::FaultSet fs;
    for (const topo::Link &l : links)
        if (l.stage == best)
            fs.blockLink(l);
    return fs;
}

std::vector<topo::Link>
participatingLinks(const topo::IadmTopology &topo, Label src,
                   Label dest)
{
    const PivotInfo info(src, dest, topo.size());
    std::vector<topo::Link> out;
    for (unsigned i = 0; i < topo.stages(); ++i) {
        for (Label j : info.at(i)) {
            for (const topo::Link &l : topo.outLinks(i, j)) {
                if (info.isPivot(i + 1, l.to))
                    out.push_back(l);
            }
        }
    }
    return out;
}

} // namespace iadm::core
