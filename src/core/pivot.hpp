/**
 * @file
 * Pivot theory (Appendix A2, Lemmas A2.1-A2.2).
 *
 * For a source/destination pair, a *pivot* of stage i is a switch
 * lying on some routing path; a path reaches the destination iff it
 * passes through a pivot at every stage.  Lemma A2.1: with k-hat the
 * lowest stage carrying a nonstraight link on any routing path
 * (= index of the lowest set bit of the distance D = (d-s) mod N),
 * stages 0..k-hat have exactly one pivot, d_{0/i-1} s_{i/n-1}, and
 * stages k-hat+1..n-1 have exactly two pivots spaced 2^i apart.
 *
 * A link is *participating* iff it lies on some routing path, which
 * happens exactly when it joins a pivot of stage i to a pivot of
 * stage i+1.
 */

#ifndef IADM_CORE_PIVOT_HPP
#define IADM_CORE_PIVOT_HPP

#include <vector>

#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"

namespace iadm::core {

/** The pivot switches for one (source, destination) pair. */
class PivotInfo
{
  public:
    /** Compute pivots analytically (Lemma A2.1). */
    PivotInfo(Label src, Label dest, Label n_size);

    Label source() const { return src_; }
    Label destination() const { return dest_; }
    Label size() const { return nSize_; }

    /**
     * k-hat: the smallest stage with a nonstraight link on some
     * routing path; equals the index of the lowest set bit of
     * (d - s) mod N, or n when source == destination.
     */
    unsigned lowestNonstraightStage() const { return kHat_; }

    /** The 1 or 2 pivot switches of stage @p i (0 <= i <= n). */
    const std::vector<Label> &at(unsigned i) const;

    /** True iff @p j is a pivot of stage @p i. */
    bool isPivot(unsigned i, Label j) const;

  private:
    Label src_, dest_, nSize_;
    unsigned kHat_;
    std::vector<std::vector<Label>> pivots_; //!< indexed by stage 0..n
};

/**
 * All participating links of the pair (pivot-to-pivot links).  At
 * stage n-1 both physical nonstraight links participate whenever a
 * nonstraight hop participates.
 */
std::vector<topo::Link> participatingLinks(const topo::IadmTopology &topo,
                                           Label src, Label dest);

/**
 * Adversarial cut: the participating links of the pair's
 * sparsest stage (Lemma A2.2 — closing every pivot of one stage
 * disconnects the pair).  Useful for exercising FAIL paths
 * deterministically.
 */
fault::FaultSet cutPair(const topo::IadmTopology &topo, Label src,
                        Label dest);

} // namespace iadm::core

#endif // IADM_CORE_PIVOT_HPP
