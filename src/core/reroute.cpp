#include "core/reroute.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace iadm::core {

RerouteResult
reroute(const topo::IadmTopology &topo, const fault::FaultSet &faults,
        Label src, const TsdtTag &initial)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();

    RerouteResult res;
    TsdtTag tag = initial;
    Path path = tsdtTrace(src, tag, n_size);

    // Each iteration leaves the path blockage-free through a
    // strictly higher stage, so n+1 iterations always suffice; the
    // guard only trips on an implementation bug.
    const unsigned guard = 4 * n + 8;
    for (unsigned iter = 0; iter < guard; ++iter) {
        ++res.iterations;

        // Step 1: smallest blocked stage on the current path.
        const int blocked = path.firstBlockedStage(faults);
        if (blocked < 0) {
            res.ok = true;
            res.tag = tag;
            res.path = path;
            return res;
        }
        const auto i = static_cast<unsigned>(blocked);
        const topo::Link link = path.linkAt(i);

        std::optional<TsdtTag> next;
        if (link.kind != topo::LinkKind::Straight &&
            !faults.isBlocked(topo.oppositeNonstraight(link))) {
            // Step 2 / Corollary 4.1: complement one state bit.
            next = rerouteNonstraight(tag, i);
            ++res.corollary41;
        } else {
            // Step 3: straight or double-nonstraight blockage.
            const auto kind =
                link.kind == topo::LinkKind::Straight
                    ? fault::BlockageKind::Straight
                    : fault::BlockageKind::DoubleNonstraight;
            next = backtrack(topo, faults, path, i, kind, tag,
                             &res.backtrackStats);
            ++res.backtracks;
        }
        if (!next) {
            res.ok = false;
            res.tag = tag;
            res.path = path;
            return res;
        }

        // Step 4: adopt the rerouting path and iterate.
        tag = *next;
        path = tsdtTrace(src, tag, n_size);
    }
    IADM_PANIC("REROUTE failed to converge within ", guard,
               " iterations (src=", src, ", dest=",
               initial.destination(), ")");
}

RerouteResult
universalRoute(const topo::IadmTopology &topo,
               const fault::FaultSet &faults, Label src, Label dest)
{
    return reroute(topo, faults, src, initialTag(topo.stages(), dest));
}

std::string
explainReroute(const topo::IadmTopology &topo,
               const fault::FaultSet &faults, Label src, Label dest)
{
    // A narrated re-run of algorithm REROUTE (kept in sync with
    // reroute() above; the outcome is asserted identical).
    const Label n_size = topo.size();
    const unsigned n = topo.stages();
    std::ostringstream os;

    TsdtTag tag = initialTag(n, dest);
    Path path = tsdtTrace(src, tag, n_size);
    os << "route " << src << " -> " << dest << " (N=" << n_size
       << ")\n";
    os << "  initial tag " << tag.str() << " : " << path.str()
       << "\n";

    const unsigned guard = 4 * n + 8;
    for (unsigned iter = 0; iter < guard; ++iter) {
        const int blocked = path.firstBlockedStage(faults);
        if (blocked < 0) {
            os << "  => blockage-free; final tag " << tag.str()
               << "\n";
            IADM_ASSERT(universalRoute(topo, faults, src, dest).ok,
                        "narration diverged from REROUTE");
            return os.str();
        }
        const auto i = static_cast<unsigned>(blocked);
        const topo::Link link = path.linkAt(i);
        os << "  blocked: " << link.str() << "\n";

        std::optional<TsdtTag> next;
        if (link.kind != topo::LinkKind::Straight &&
            !faults.isBlocked(topo.oppositeNonstraight(link))) {
            next = rerouteNonstraight(tag, i);
            os << "    corollary 4.1: complement state bit b_"
               << n + i << " -> tag " << next->str() << "\n";
        } else {
            const auto kind =
                link.kind == topo::LinkKind::Straight
                    ? fault::BlockageKind::Straight
                    : fault::BlockageKind::DoubleNonstraight;
            BacktrackStats stats;
            next = backtrack(topo, faults, path, i, kind, tag,
                             &stats);
            if (next) {
                os << "    BACKTRACK ("
                   << fault::blockageKindName(kind) << "): walked "
                   << stats.stagesVisited << " stage(s) back over "
                   << stats.iterations << " iteration(s), rewrote "
                   << stats.bitsChanged << " state bit(s) -> tag "
                   << next->str() << "\n";
            } else {
                os << "    BACKTRACK ("
                   << fault::blockageKindName(kind)
                   << "): FAIL — no blockage-free path exists\n";
            }
        }
        if (!next) {
            IADM_ASSERT(!universalRoute(topo, faults, src, dest).ok,
                        "narration diverged from REROUTE");
            return os.str();
        }
        tag = *next;
        path = tsdtTrace(src, tag, n_size);
        os << "    new path : " << path.str() << "\n";
    }
    IADM_PANIC("explainReroute failed to converge");
}

} // namespace iadm::core
