#include "core/reroute.hpp"

#include <sstream>
#include <unordered_set>

#include "common/logging.hpp"
#include "obs/trace_sink.hpp"

namespace iadm::core {

namespace {

/**
 * The REROUTE loop shared by every entry point: iterates Corollary
 * 4.1 / BACKTRACK from the lowest blocked stage upward, leaving the
 * final tag and path in @p tag / @p path and the work counters in
 * @p res (res.path is NOT filled — the caller decides whether the
 * Path payload is wanted).  Returns true iff a blockage-free path
 * was found.
 */
bool
rerouteCore(const topo::IadmTopology &topo,
            const fault::FaultSet &faults, Label src, TsdtTag &tag,
            Path &path, RerouteResult &res)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();

    // Each iteration leaves the path blockage-free through a
    // strictly higher stage, so n+1 iterations always suffice; the
    // guard only trips on an implementation bug.
    const unsigned guard = 4 * n + 8;
    for (unsigned iter = 0; iter < guard; ++iter) {
        ++res.iterations;

        // Step 1: smallest blocked stage on the current path.
        const int blocked = path.firstBlockedStage(faults);
        if (blocked < 0)
            return true;
        const auto i = static_cast<unsigned>(blocked);
        const topo::Link link = path.linkAt(i);

        std::optional<TsdtTag> next;
        [[maybe_unused]] unsigned bits_changed = 1;
        if (link.kind != topo::LinkKind::Straight &&
            !faults.isBlocked(topo.oppositeNonstraight(link))) {
            // Step 2 / Corollary 4.1: complement one state bit.
            next = rerouteNonstraight(tag, i);
            ++res.corollary41;
        } else {
            // Step 3: straight or double-nonstraight blockage.
            const auto kind =
                link.kind == topo::LinkKind::Straight
                    ? fault::BlockageKind::Straight
                    : fault::BlockageKind::DoubleNonstraight;
            const unsigned before = res.backtrackStats.bitsChanged;
            next = backtrack(topo, faults, path, i, kind, tag,
                             &res.backtrackStats);
            ++res.backtracks;
            bits_changed = res.backtrackStats.bitsChanged - before;
        }
        if (!next)
            return false;

#if IADM_TRACE
        // A simulator running REROUTE on a packet's behalf parks the
        // packet identity in the thread-local bridge; outside that
        // window the sink is null and this is a dead branch.
        if (const obs::RouteTraceContext &ctx =
                obs::routeTraceContext();
            ctx.sink != nullptr) {
            ctx.sink->record(
                obs::EventKind::Reroute, ctx.packet, ctx.cycle, i,
                link.from, static_cast<std::uint8_t>(link.kind),
                bits_changed, static_cast<Label>(next->destination()),
                static_cast<Label>(next->stateBits()));
        }
#endif

        // Step 4: adopt the rerouting path and iterate.
        tag = *next;
        path = tsdtTrace(src, tag, n_size);
    }
    IADM_PANIC("REROUTE failed to converge within ", guard,
               " iterations (src=", src, ", dest=",
               tag.destination(), ")");
}

} // namespace

RerouteResult
reroute(const topo::IadmTopology &topo, const fault::FaultSet &faults,
        Label src, const TsdtTag &initial)
{
    RerouteResult res;
    TsdtTag tag = initial;
    Path path = tsdtTrace(src, tag, topo.size());
    res.ok = rerouteCore(topo, faults, src, tag, path, res);
    res.tag = tag;
    res.path = std::move(path);
    return res;
}

RerouteResult
universalRoute(const topo::IadmTopology &topo,
               const fault::FaultSet &faults, Label src, Label dest)
{
    return reroute(topo, faults, src, initialTag(topo.stages(), dest));
}

CompactRoute
universalRouteCompact(const topo::IadmTopology &topo,
                      const fault::FaultSet &faults, Label src,
                      Label dest)
{
    const unsigned n = topo.stages();
    RerouteResult work;
    TsdtTag tag = initialTag(n, dest);
    Path path = tsdtTrace(src, tag, topo.size());

    CompactRoute res;
    res.ok = rerouteCore(topo, faults, src, tag, path, work);
    res.tag = tag;
    res.reroutes = work.corollary41 + work.backtrackStats.bitsChanged;
#ifdef IADM_SANITIZE_BUILD
    // The delta encoding must be lossless: the path REROUTE settled
    // on is exactly what decodeDelta() reconstructs from the tag.
    if (res.ok) {
        std::uint16_t sw[17];
        IADM_ASSERT(n + 1 <= 17, "decode scratch too small");
        decodeDelta(src, dest, tag.stateBits(), n, sw);
        for (unsigned i = 0; i <= n; ++i)
            IADM_ASSERT(sw[i] == path.switchAt(i),
                        "delta decode diverged from REROUTE path at "
                        "stage ",
                        i, " for ", src, "->", dest);
    }
#endif
    return res;
}

unsigned
decodeDelta(Label src, Label dest, Label state_bits,
            unsigned n_stages, std::uint16_t *path_sw) noexcept
{
    const Label n_size = Label{1} << n_stages;
    const Label mask = n_size - 1;
    Label j = src;
    path_sw[0] = static_cast<std::uint16_t>(j);
    for (unsigned i = 0; i < n_stages; ++i) {
        const Label step = Label{1} << i;
        // Lemma A1.1: straight iff b_i == j_i; else Plus (+2^i) iff
        // b_{n+i} == j_i, Minus (-2^i) otherwise.  -2^i mod N is
        // N - 2^i, so both nonstraight offsets fold into one
        // multiply-free select.
        const Label ns = ((dest ^ j) >> i) & 1u;
        const Label minus = ((state_bits ^ j) >> i) & 1u;
        j = (j + ns * (step + minus * (n_size - 2 * step))) & mask;
        path_sw[i + 1] = static_cast<std::uint16_t>(j);
    }
    return n_stages + 1;
}

std::optional<TsdtTag>
rerouteFromSwitch(const topo::IadmTopology &topo,
                  const fault::FaultSet &faults, unsigned stage,
                  Label j, const TsdtTag &tag)
{
    const unsigned n = topo.stages();
    IADM_ASSERT(stage < n, "rerouteFromSwitch past the last stage");
    TsdtTag out = tag;

    // Dead-end memo over (stage, switch): whether a blockage-free
    // continuation exists from a switch is independent of how the
    // DFS reached it, so each pair is expanded at most once.
    std::unordered_set<std::uint64_t> dead;
    const auto key = [&](unsigned i, Label sw) {
        return static_cast<std::uint64_t>(i) * topo.size() + sw;
    };

    const auto dfs = [&](auto &&self, unsigned i, Label sw) -> bool {
        if (i == n)
            return true;
        if (dead.count(key(i, sw)) != 0)
            return false;
        if (out.destBit(i) == bit(sw, i)) {
            // Straight link forced (Theorem 3.3): the nonstraight
            // links of this switch cannot appear on a path to the
            // destination from here.
            const topo::Link l = topo.straightLink(i, sw);
            if (!faults.isBlocked(l) && self(self, i + 1, l.to))
                return true;
        } else {
            // Try the link the current state bit selects first, so a
            // clear continuation perturbs the tag minimally.
            const unsigned preferred =
                out.stateBit(i) == bit(sw, i) ? bit(sw, i)
                                              : 1 - bit(sw, i);
            for (const unsigned v : {preferred, 1 - preferred}) {
                const topo::Link l = v == bit(sw, i)
                                         ? topo.plusLink(i, sw)
                                         : topo.minusLink(i, sw);
                if (faults.isBlocked(l))
                    continue;
                out.setStateBit(i, v);
                if (self(self, i + 1, l.to))
                    return true;
            }
        }
        dead.insert(key(i, sw));
        return false;
    };

    if (!dfs(dfs, stage, j))
        return std::nullopt;
    return out;
}

std::string
explainReroute(const topo::IadmTopology &topo,
               const fault::FaultSet &faults, Label src, Label dest)
{
    // A narrated re-run of algorithm REROUTE (kept in sync with
    // reroute() above; the outcome is asserted identical).
    const Label n_size = topo.size();
    const unsigned n = topo.stages();
    std::ostringstream os;

    TsdtTag tag = initialTag(n, dest);
    Path path = tsdtTrace(src, tag, n_size);
    os << "route " << src << " -> " << dest << " (N=" << n_size
       << ")\n";
    os << "  initial tag " << tag.str() << " : " << path.str()
       << "\n";

    const unsigned guard = 4 * n + 8;
    for (unsigned iter = 0; iter < guard; ++iter) {
        const int blocked = path.firstBlockedStage(faults);
        if (blocked < 0) {
            os << "  => blockage-free; final tag " << tag.str()
               << "\n";
            IADM_ASSERT(universalRoute(topo, faults, src, dest).ok,
                        "narration diverged from REROUTE");
            return os.str();
        }
        const auto i = static_cast<unsigned>(blocked);
        const topo::Link link = path.linkAt(i);
        os << "  blocked: " << link.str() << "\n";

        std::optional<TsdtTag> next;
        if (link.kind != topo::LinkKind::Straight &&
            !faults.isBlocked(topo.oppositeNonstraight(link))) {
            next = rerouteNonstraight(tag, i);
            os << "    corollary 4.1: complement state bit b_"
               << n + i << " -> tag " << next->str() << "\n";
        } else {
            const auto kind =
                link.kind == topo::LinkKind::Straight
                    ? fault::BlockageKind::Straight
                    : fault::BlockageKind::DoubleNonstraight;
            BacktrackStats stats;
            next = backtrack(topo, faults, path, i, kind, tag,
                             &stats);
            if (next) {
                os << "    BACKTRACK ("
                   << fault::blockageKindName(kind) << "): walked "
                   << stats.stagesVisited << " stage(s) back over "
                   << stats.iterations << " iteration(s), rewrote "
                   << stats.bitsChanged << " state bit(s) -> tag "
                   << next->str() << "\n";
            } else {
                os << "    BACKTRACK ("
                   << fault::blockageKindName(kind)
                   << "): FAIL — no blockage-free path exists\n";
            }
        }
        if (!next) {
            IADM_ASSERT(!universalRoute(topo, faults, src, dest).ok,
                        "narration diverged from REROUTE");
            return os.str();
        }
        tag = *next;
        path = tsdtTrace(src, tag, n_size);
        os << "    new path : " << path.str() << "\n";
    }
    IADM_PANIC("explainReroute failed to converge");
}

} // namespace iadm::core
