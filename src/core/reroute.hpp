/**
 * @file
 * Algorithm REROUTE (Section 5): the universal rerouting algorithm.
 *
 * REROUTE iterates from the lowest-stage blockage upward, applying
 * Corollary 4.1 for repairable nonstraight blockages and algorithm
 * BACKTRACK for straight / double-nonstraight blockages, until the
 * current path is blockage-free or a FAIL proves that no
 * blockage-free path exists for the pair.
 */

#ifndef IADM_CORE_REROUTE_HPP
#define IADM_CORE_REROUTE_HPP

#include <optional>
#include <string>

#include "core/backtrack.hpp"
#include "core/tsdt.hpp"

namespace iadm::core {

/** Outcome of algorithm REROUTE. */
struct RerouteResult
{
    bool ok = false;           //!< a blockage-free path was found
    TsdtTag tag;               //!< its TSDT tag (valid when ok)
    Path path;                 //!< the blockage-free path (when ok)
    unsigned iterations = 0;   //!< outer-loop iterations
    unsigned corollary41 = 0;  //!< O(1) nonstraight reroutes applied
    unsigned backtracks = 0;   //!< BACKTRACK invocations
    BacktrackStats backtrackStats; //!< accumulated BACKTRACK work
};

/**
 * Run algorithm REROUTE starting from routing tag @p initial.
 *
 * @param topo    the IADM network
 * @param faults  global blockage map
 * @param src     source switch (stage 0)
 * @param initial tag of the original routing path (e.g.
 *                initialTag(n, dest))
 */
RerouteResult reroute(const topo::IadmTopology &topo,
                      const fault::FaultSet &faults, Label src,
                      const TsdtTag &initial);

/**
 * Compact REROUTE outcome for route caching: everything a cached
 * route needs to be *replayed* later without re-running the path
 * search — the final tag and the simulator's per-packet reroute
 * count.  No Path payload, no allocation in the result.
 *
 * The tag is also the route's *compressed path encoding*.  The
 * switch visited at each stage is a pure function of
 * (src, destination bits, state bits) under Lemma A1.1, so the n
 * state bits of the final tag are exactly the delta word that
 * distinguishes the rerouted path from the all-state-C base path —
 * a set bit at stage i means "the complement choice at stage i".
 * decodeDelta() expands the word back into explicit switch labels;
 * the inverse property decode(encode(path)) == path is pinned by
 * tests/route_cache_test.cpp against the state model and the
 * reachability oracle.
 */
struct CompactRoute
{
    bool ok = false;        //!< a blockage-free path was found
    TsdtTag tag;            //!< its TSDT tag (valid when ok)
    /**
     * Corollary-4.1 flips plus BACKTRACK state bits changed — the
     * value the simulator charges a sender-routed packet as
     * Packet::reroutes.
     */
    unsigned reroutes = 0;
};

/**
 * Algorithm REROUTE for hot callers (the fault-epoch route cache):
 * identical decisions to universalRoute(), but the result carries
 * no Path — the final tag's state bits are the compressed path
 * (see CompactRoute).
 */
CompactRoute universalRouteCompact(const topo::IadmTopology &topo,
                                   const fault::FaultSet &faults,
                                   Label src, Label dest);

/**
 * Expand a compressed path delta back into explicit switch labels:
 * writes the n+1 switches the TSDT path from @p src visits under
 * destination bits @p dest and state bits @p state_bits into
 * @p path_sw (packet-embedded Packet::pathSw form, path_sw[0] =
 * src) and returns n+1.
 *
 * This is tsdtTrace() re-derived from Lemma A1.1 in branch-light
 * form — per stage i with j the current switch and step = 2^i:
 *
 *   ns     = ((dest ^ j) >> i) & 1        straight iff b_i == j_i
 *   minus  = ((state_bits ^ j) >> i) & 1  else Plus iff b_{n+i}==j_i
 *   j      = (j + ns * (step + minus * (N - 2*step))) mod N
 *
 * No table loads, no branches in the loop body: decoding a cached
 * route costs ~n integer ops, which is what lets a route-cache
 * entry drop the explicit per-stage switch list entirely.
 */
unsigned decodeDelta(Label src, Label dest, Label state_bits,
                     unsigned n_stages,
                     std::uint16_t *path_sw) noexcept;

/**
 * Convenience wrapper: route @p src -> @p dest through @p faults,
 * starting from the canonical all-state-C path.
 */
RerouteResult universalRoute(const topo::IadmTopology &topo,
                             const fault::FaultSet &faults, Label src,
                             Label dest);

/**
 * Mid-flight REROUTE: find state bits for stages >= @p stage such
 * that the TSDT path continuing from switch @p j of stage @p stage
 * is blockage-free, keeping @p tag's destination and the state bits
 * of the stages already traversed.
 *
 * This is the repair a stalled FIFO head needs when the blockage map
 * changed after its sender computed the tag: the packet cannot
 * revisit earlier stages, but any assignment of the remaining state
 * bits still delivers to tag.destination() (Theorem 3.1 — the
 * destination bits alone guarantee delivery), so the search space is
 * exactly the subtree of nonstraight choices ahead.  Straight links
 * are forced wherever b_i == j_i (Theorem 3.3): a blocked forced
 * link is a dead end.  Returns nullopt when every continuation is
 * blocked.
 *
 * Cost: DFS over at most 2^(nonstraight stages ahead) branches with
 * dead-(stage, switch) memoization, so each (stage, switch) pair is
 * expanded once.  Cold path — called at most once per fault epoch
 * per stalled head.
 */
std::optional<TsdtTag>
rerouteFromSwitch(const topo::IadmTopology &topo,
                  const fault::FaultSet &faults, unsigned stage,
                  Label j, const TsdtTag &tag);

/**
 * Human-readable narration of a REROUTE run: the initial path, each
 * blockage encountered, the repair applied (Corollary 4.1 flip or
 * BACKTRACK rewrite with its range) and the final outcome.  Useful
 * for teaching and debugging (iadm_tool route prints it with -v).
 */
std::string explainReroute(const topo::IadmTopology &topo,
                           const fault::FaultSet &faults, Label src,
                           Label dest);

} // namespace iadm::core

#endif // IADM_CORE_REROUTE_HPP
