/**
 * @file
 * Algorithm REROUTE (Section 5): the universal rerouting algorithm.
 *
 * REROUTE iterates from the lowest-stage blockage upward, applying
 * Corollary 4.1 for repairable nonstraight blockages and algorithm
 * BACKTRACK for straight / double-nonstraight blockages, until the
 * current path is blockage-free or a FAIL proves that no
 * blockage-free path exists for the pair.
 */

#ifndef IADM_CORE_REROUTE_HPP
#define IADM_CORE_REROUTE_HPP

#include <optional>
#include <string>

#include "core/backtrack.hpp"
#include "core/tsdt.hpp"

namespace iadm::core {

/** Outcome of algorithm REROUTE. */
struct RerouteResult
{
    bool ok = false;           //!< a blockage-free path was found
    TsdtTag tag;               //!< its TSDT tag (valid when ok)
    Path path;                 //!< the blockage-free path (when ok)
    unsigned iterations = 0;   //!< outer-loop iterations
    unsigned corollary41 = 0;  //!< O(1) nonstraight reroutes applied
    unsigned backtracks = 0;   //!< BACKTRACK invocations
    BacktrackStats backtrackStats; //!< accumulated BACKTRACK work
};

/**
 * Run algorithm REROUTE starting from routing tag @p initial.
 *
 * @param topo    the IADM network
 * @param faults  global blockage map
 * @param src     source switch (stage 0)
 * @param initial tag of the original routing path (e.g.
 *                initialTag(n, dest))
 */
RerouteResult reroute(const topo::IadmTopology &topo,
                      const fault::FaultSet &faults, Label src,
                      const TsdtTag &initial);

/**
 * Compact REROUTE outcome for route caching: everything a cached
 * route needs to be *replayed* later without re-running the path
 * search or re-tracing the tag — the final tag, the per-stage
 * switch labels of the blockage-free path, and the simulator's
 * per-packet reroute count.  No Path payload, no allocation in the
 * result.
 */
struct CompactRoute
{
    bool ok = false;        //!< a blockage-free path was found
    TsdtTag tag;            //!< its TSDT tag (valid when ok)
    /**
     * Corollary-4.1 flips plus BACKTRACK state bits changed — the
     * value the simulator charges a sender-routed packet as
     * Packet::reroutes.
     */
    unsigned reroutes = 0;
    unsigned pathLen = 0;   //!< switch labels written to path_sw
};

/**
 * Algorithm REROUTE for hot callers (the fault-epoch route cache):
 * identical decisions to universalRoute(), but the result carries
 * no Path.  When @p path_sw is non-null and the path's n+1 switch
 * labels fit in @p max_sw slots, they are written there in the
 * packet-embedded form (Packet::pathSw) and pathLen is set;
 * otherwise pathLen stays 0 and the caller must re-trace.
 */
CompactRoute universalRouteCompact(const topo::IadmTopology &topo,
                                   const fault::FaultSet &faults,
                                   Label src, Label dest,
                                   std::uint16_t *path_sw = nullptr,
                                   unsigned max_sw = 0);

/**
 * Convenience wrapper: route @p src -> @p dest through @p faults,
 * starting from the canonical all-state-C path.
 */
RerouteResult universalRoute(const topo::IadmTopology &topo,
                             const fault::FaultSet &faults, Label src,
                             Label dest);

/**
 * Mid-flight REROUTE: find state bits for stages >= @p stage such
 * that the TSDT path continuing from switch @p j of stage @p stage
 * is blockage-free, keeping @p tag's destination and the state bits
 * of the stages already traversed.
 *
 * This is the repair a stalled FIFO head needs when the blockage map
 * changed after its sender computed the tag: the packet cannot
 * revisit earlier stages, but any assignment of the remaining state
 * bits still delivers to tag.destination() (Theorem 3.1 — the
 * destination bits alone guarantee delivery), so the search space is
 * exactly the subtree of nonstraight choices ahead.  Straight links
 * are forced wherever b_i == j_i (Theorem 3.3): a blocked forced
 * link is a dead end.  Returns nullopt when every continuation is
 * blocked.
 *
 * Cost: DFS over at most 2^(nonstraight stages ahead) branches with
 * dead-(stage, switch) memoization, so each (stage, switch) pair is
 * expanded once.  Cold path — called at most once per fault epoch
 * per stalled head.
 */
std::optional<TsdtTag>
rerouteFromSwitch(const topo::IadmTopology &topo,
                  const fault::FaultSet &faults, unsigned stage,
                  Label j, const TsdtTag &tag);

/**
 * Human-readable narration of a REROUTE run: the initial path, each
 * blockage encountered, the repair applied (Corollary 4.1 flip or
 * BACKTRACK rewrite with its range) and the final outcome.  Useful
 * for teaching and debugging (iadm_tool route prints it with -v).
 */
std::string explainReroute(const topo::IadmTopology &topo,
                           const fault::FaultSet &faults, Label src,
                           Label dest);

} // namespace iadm::core

#endif // IADM_CORE_REROUTE_HPP
