#include "core/ssdt.hpp"

#include "common/logging.hpp"

namespace iadm::core {

SsdtRouter::SsdtRouter(const topo::IadmTopology &topo,
                       SwitchState initial)
    : topo_(topo), state_(topo.size(), initial)
{
}

SsdtResult
SsdtRouter::route(Label src, Label dest, const fault::FaultSet &faults)
{
    return route(src, dest, faults, BalancePolicy{});
}

SsdtResult
SsdtRouter::route(Label src, Label dest, const fault::FaultSet &faults,
                  const BalancePolicy &balance)
{
    const Label n_size = topo_.size();
    const unsigned n = topo_.stages();
    IADM_ASSERT(src < n_size && dest < n_size, "bad address");

    SsdtResult res;
    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;

    for (unsigned i = 0; i < n; ++i) {
        const unsigned t = bit(dest, i);
        SwitchState st = state_.get(i, j);
        topo::LinkKind kind = linkKindFor(j, t, i, st);
        topo::Link link = topo_.link(i, j, kind);

        if (kind == topo::LinkKind::Straight) {
            if (faults.isBlocked(link)) {
                // Theorem 3.2 "only if": no local repair exists for
                // a straight blockage.
                res.failedStage = static_cast<int>(i);
                res.failure = fault::BlockageKind::Straight;
                res.path = Path(std::move(sw), std::move(kinds));
                return res;
            }
        } else {
            const topo::Link spare = topo_.oppositeNonstraight(link);
            const bool link_ok = !faults.isBlocked(link);
            const bool spare_ok = !faults.isBlocked(spare);
            if (!link_ok && !spare_ok) {
                res.failedStage = static_cast<int>(i);
                res.failure = fault::BlockageKind::DoubleNonstraight;
                res.path = Path(std::move(sw), std::move(kinds));
                return res;
            }
            bool flip = !link_ok;
            if (link_ok && spare_ok && balance &&
                balance(i, j, link, spare)) {
                flip = true;
            }
            if (flip) {
                // Theorem 3.2 "if": the oppositely-signed link of
                // the same switch leads to the same destinations.
                state_.flip(i, j);
                ++res.stateFlips;
                st = state_.get(i, j);
                kind = linkKindFor(j, t, i, st);
                link = topo_.link(i, j, kind);
            }
        }

        kinds.push_back(kind);
        j = link.to;
        sw.push_back(j);
    }

    IADM_ASSERT(j == dest,
                "SSDT terminated at ", j, " instead of ", dest,
                " (Theorem 3.1 violated)");
    res.delivered = true;
    res.path = Path(std::move(sw), std::move(kinds));
    return res;
}

void
SsdtRouter::reset(SwitchState st)
{
    state_.fill(st);
}

} // namespace iadm::core
