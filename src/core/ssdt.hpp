/**
 * @file
 * The Self-Repairing State-Based Destination Tag (SSDT) scheme
 * (Section 4).
 *
 * Messages carry plain n-bit destination tags.  Each switch owns a
 * dynamic state (C or Cbar); when the link its current state selects
 * is a blocked *nonstraight* link, the switch flips its state and
 * uses the oppositely-signed spare link (Theorem 3.2) — rerouting is
 * O(1), fully distributed and transparent to the sender.  Straight
 * and double-nonstraight blockages cannot be repaired locally
 * (Theorem 3.2 "only if"); the route attempt then fails and the
 * caller must fall back to a sender-side scheme such as TSDT+REROUTE.
 *
 * The same state freedom supports load balancing: when both
 * nonstraight links are usable, a policy callback may pick either,
 * e.g. by comparing queue occupancies in a packet-switched setting.
 */

#ifndef IADM_CORE_SSDT_HPP
#define IADM_CORE_SSDT_HPP

#include <functional>
#include <optional>

#include "core/path.hpp"
#include "core/state_model.hpp"
#include "fault/fault_set.hpp"

namespace iadm::core {

/** Outcome of one SSDT routing attempt. */
struct SsdtResult
{
    bool delivered = false;        //!< reached the destination
    Path path;                     //!< traversed path (full if delivered)
    unsigned stateFlips = 0;       //!< number of O(1) reroutes performed
    int failedStage = -1;          //!< stage of the unrepairable blockage
    fault::BlockageKind failure = fault::BlockageKind::None;
};

/**
 * SSDT router: a network-resident state plus the local repair rule.
 *
 * The object owns the per-switch states; routing mutates them (the
 * repair is persistent, exactly like a hardware switch latching its
 * new state), so later messages inherit earlier repairs.
 */
class SsdtRouter
{
  public:
    /**
     * A load-balancing hook: called when the switch is about to use
     * a nonstraight link and BOTH nonstraight links are unblocked.
     * Receives (stage, switch, state-chosen link, spare link) and
     * returns true to flip to the spare anyway.
     */
    using BalancePolicy = std::function<bool(
        unsigned, Label, const topo::Link &, const topo::Link &)>;

    explicit SsdtRouter(const topo::IadmTopology &topo,
                        SwitchState initial = SwitchState::C);

    /** Route one message; repairs switch states along the way. */
    SsdtResult route(Label src, Label dest,
                     const fault::FaultSet &faults);

    /** Route with a load-balancing policy active. */
    SsdtResult route(Label src, Label dest,
                     const fault::FaultSet &faults,
                     const BalancePolicy &balance);

    /** Access the current network state. */
    const NetworkState &state() const { return state_; }
    NetworkState &state() { return state_; }

    /** Reset every switch to @p st. */
    void reset(SwitchState st = SwitchState::C);

  private:
    const topo::IadmTopology &topo_;
    NetworkState state_;
};

} // namespace iadm::core

#endif // IADM_CORE_SSDT_HPP
