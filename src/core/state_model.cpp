#include "core/state_model.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace iadm::core {

NetworkState::NetworkState(Label n_size, SwitchState init)
    : netSize(n_size), numStages(log2Floor(n_size)),
      states(static_cast<std::size_t>(n_size) * numStages, init)
{
    IADM_ASSERT(isPowerOfTwo(n_size) && n_size >= 2,
                "bad network size ", n_size);
}

void
NetworkState::fill(SwitchState st)
{
    states.assign(states.size(), st);
}

std::vector<Label>
NetworkState::trace(Label src, Label dest) const
{
    IADM_ASSERT(src < netSize && dest < netSize, "bad address");
    std::vector<Label> sw;
    sw.reserve(numStages + 1);
    Label j = src;
    sw.push_back(j);
    for (unsigned i = 0; i < numStages; ++i) {
        j = applyState(j, bit(dest, i), i, netSize, get(i, j));
        sw.push_back(j);
    }
    return sw;
}

std::string
NetworkState::str() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < numStages; ++i) {
        os << "S" << i << ":";
        for (Label j = 0; j < netSize; ++j)
            os << (get(i, j) == SwitchState::C ? 'C' : 'c');
        os << (i + 1 < numStages ? " " : "");
    }
    return os.str();
}

} // namespace iadm::core
