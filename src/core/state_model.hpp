/**
 * @file
 * The network state model of Section 2.
 *
 * Every switch of the IADM network is statically an even_i or odd_i
 * switch (bit i of its label) and dynamically in one of two states:
 *
 *   state C    - routing follows C_i(j, t)    = j + deltaC_i(j, t)
 *   state Cbar - routing follows Cbar_i(j, t) = j + deltaCbar_i(j, t)
 *
 * with (paper, Section 2):
 *
 *   deltaC_i(j, t) = 0      if (even_i and t=0) or (odd_i and t=1)
 *                    -2^i   if odd_i and t=0
 *                    +2^i   if even_i and t=1
 *   deltaCbar_i(j, t) = -deltaC_i(j, t)
 *
 * Lemma 2.1: C_i(j,t) sets bit i of j to t and leaves every other
 * bit unchanged; Cbar_i(j,t) also sets bit i to t but alters some
 * higher-order bits through carry/borrow propagation.  Consequently
 * (Theorem 3.1) the destination address is the unique n-bit
 * destination tag regardless of the network state.
 */

#ifndef IADM_CORE_STATE_MODEL_HPP
#define IADM_CORE_STATE_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/modmath.hpp"
#include "topology/topology.hpp"

namespace iadm::core {

/** The two routing states of an IADM switch. */
enum class SwitchState : std::uint8_t
{
    C = 0,     //!< route per C_i(j, t)
    Cbar = 1,  //!< route per Cbar_i(j, t)
};

/** The opposite state. */
constexpr SwitchState
flipped(SwitchState s)
{
    return s == SwitchState::C ? SwitchState::Cbar : SwitchState::C;
}

/** True iff switch @p j is an odd_i switch at stage @p i. */
constexpr bool
isOddSwitch(Label j, unsigned i)
{
    return bit(j, i) == 1;
}

/** deltaC_i(j, t): the signed offset of the state-C link. */
constexpr std::int64_t
deltaC(Label j, unsigned t, unsigned i)
{
    if (bit(j, i) == (t & 1u))
        return 0;
    return isOddSwitch(j, i) ? -(std::int64_t{1} << i)
                             : (std::int64_t{1} << i);
}

/** deltaCbar_i(j, t) = -deltaC_i(j, t). */
constexpr std::int64_t
deltaCbar(Label j, unsigned t, unsigned i)
{
    return -deltaC(j, t, i);
}

/** C_i(j, t) = j + deltaC_i(j, t) (mod N). */
constexpr Label
applyC(Label j, unsigned t, unsigned i, Label n_size)
{
    return modAdd(j, deltaC(j, t, i), n_size);
}

/** Cbar_i(j, t) = j + deltaCbar_i(j, t) (mod N). */
constexpr Label
applyCbar(Label j, unsigned t, unsigned i, Label n_size)
{
    return modAdd(j, deltaCbar(j, t, i), n_size);
}

/** The offset chosen by a switch in state @p st for tag bit @p t. */
constexpr std::int64_t
deltaFor(Label j, unsigned t, unsigned i, SwitchState st)
{
    return st == SwitchState::C ? deltaC(j, t, i)
                                : deltaCbar(j, t, i);
}

/** Next-stage switch for state @p st and tag bit @p t. */
constexpr Label
applyState(Label j, unsigned t, unsigned i, Label n_size,
           SwitchState st)
{
    return modAdd(j, deltaFor(j, t, i, st), n_size);
}

/**
 * The physical kind of the link a switch in state @p st takes for
 * tag bit @p t: Straight when t equals bit i of j, otherwise the
 * nonstraight link whose sign depends on parity and state.
 */
constexpr topo::LinkKind
linkKindFor(Label j, unsigned t, unsigned i, SwitchState st)
{
    const std::int64_t d = deltaFor(j, t, i, st);
    if (d == 0)
        return topo::LinkKind::Straight;
    return d > 0 ? topo::LinkKind::Plus : topo::LinkKind::Minus;
}

/**
 * A complete assignment of states to the switches of link stages
 * 0..n-1 ("the state of the network").  The default state is C
 * everywhere, in which the IADM network behaves exactly like the
 * embedded ICube network.
 */
class NetworkState
{
  public:
    /** All switches in state @p init (default C). */
    NetworkState(Label n_size, SwitchState init = SwitchState::C);

    Label size() const { return netSize; }
    unsigned stages() const { return numStages; }

    /**
     * State of switch @p j at stage @p i.  Inline: the simulator
     * reads it once per serviced packet per cycle.
     */
    SwitchState
    get(unsigned i, Label j) const
    {
        return states[static_cast<std::size_t>(i) * netSize + j];
    }

    /** Set the state of one switch. */
    void
    set(unsigned i, Label j, SwitchState st)
    {
        states[static_cast<std::size_t>(i) * netSize + j] = st;
    }

    /** Flip the state of one switch. */
    void
    flip(unsigned i, Label j)
    {
        set(i, j, flipped(get(i, j)));
    }

    /** Reset all switches to @p st. */
    void fill(SwitchState st);

    /**
     * The switch reached at each stage when a message with
     * destination tag @p dest enters at switch @p src: returns the
     * n+1 switch labels of the traversed path (Theorem 3.1
     * guarantees the last one equals @p dest).
     */
    std::vector<Label> trace(Label src, Label dest) const;

    /** Compact per-stage rendering for diagnostics. */
    std::string str() const;

  private:
    Label netSize;
    unsigned numStages;
    std::vector<SwitchState> states; //!< [stage * N + j]
};

} // namespace iadm::core

#endif // IADM_CORE_STATE_MODEL_HPP
