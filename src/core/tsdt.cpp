#include "core/tsdt.hpp"

#include "common/logging.hpp"

namespace iadm::core {

TsdtTag::TsdtTag(unsigned n_stages, Label dest, Label state_bits)
    : n_(n_stages), dest_(dest), state_(state_bits)
{
    IADM_ASSERT(n_ >= 1 && n_ <= 31, "bad stage count ", n_);
    IADM_ASSERT(dest_ < (Label{1} << n_), "destination out of range");
    IADM_ASSERT(state_ < (Label{1} << n_), "state bits out of range");
}

unsigned
TsdtTag::stateBit(unsigned i) const
{
    IADM_ASSERT(i < n_, "stage out of range");
    return bit(state_, i);
}

unsigned
TsdtTag::destBit(unsigned i) const
{
    IADM_ASSERT(i < n_, "stage out of range");
    return bit(dest_, i);
}

SwitchState
TsdtTag::stateAt(unsigned i) const
{
    return stateBit(i) ? SwitchState::Cbar : SwitchState::C;
}

void
TsdtTag::setStateBit(unsigned i, unsigned v)
{
    IADM_ASSERT(i < n_, "stage out of range");
    state_ = static_cast<Label>(withBit(state_, i, v));
}

void
TsdtTag::flipStateBit(unsigned i)
{
    IADM_ASSERT(i < n_, "stage out of range");
    state_ = static_cast<Label>(flipBit(state_, i));
}

std::uint64_t
TsdtTag::encoded() const
{
    return static_cast<std::uint64_t>(dest_) |
           (static_cast<std::uint64_t>(state_) << n_);
}

TsdtTag
TsdtTag::decode(unsigned n_stages, std::uint64_t word)
{
    const auto dest = static_cast<Label>(word & lowMask(n_stages));
    const auto state =
        static_cast<Label>((word >> n_stages) & lowMask(n_stages));
    return {n_stages, dest, state};
}

std::string
TsdtTag::str() const
{
    return toLsbFirstString(encoded(), 2 * n_);
}

topo::LinkKind
tsdtLinkKind(Label j, unsigned i, const TsdtTag &tag)
{
    const unsigned ji = bit(j, i);
    if (tag.destBit(i) == ji)
        return topo::LinkKind::Straight;
    return tag.stateBit(i) == ji ? topo::LinkKind::Plus
                                 : topo::LinkKind::Minus;
}

Label
tsdtNext(Label j, unsigned i, const TsdtTag &tag, Label n_size)
{
    switch (tsdtLinkKind(j, i, tag)) {
      case topo::LinkKind::Straight:
        return j;
      case topo::LinkKind::Plus:
        return modAdd(j, std::int64_t{1} << i, n_size);
      case topo::LinkKind::Minus:
        return modAdd(j, -(std::int64_t{1} << i), n_size);
      default:
        IADM_PANIC("unreachable");
    }
}

Path
tsdtTrace(Label src, const TsdtTag &tag, Label n_size)
{
    const unsigned n = tag.stages();
    IADM_ASSERT((Label{1} << n) == n_size, "tag/network size mismatch");
    std::vector<Label> sw;
    std::vector<topo::LinkKind> kinds;
    sw.reserve(n + 1);
    kinds.reserve(n);
    Label j = src;
    sw.push_back(j);
    for (unsigned i = 0; i < n; ++i) {
        kinds.push_back(tsdtLinkKind(j, i, tag));
        j = tsdtNext(j, i, tag, n_size);
        sw.push_back(j);
    }
    return {std::move(sw), std::move(kinds)};
}

TsdtTag
initialTag(unsigned n_stages, Label dest)
{
    return {n_stages, dest, 0};
}

TsdtTag
tagForPath(const Path &path, unsigned n_stages)
{
    IADM_ASSERT(path.length() == n_stages, "path/stage mismatch");
    const Label dest = path.destination();
    Label state = 0;
    for (unsigned i = 0; i < n_stages; ++i) {
        const Label j = path.switchAt(i);
        const unsigned ji = bit(j, i);
        switch (path.kindAt(i)) {
          case topo::LinkKind::Straight:
            IADM_ASSERT(bit(dest, i) == ji,
                        "straight hop inconsistent with destination");
            break;
          case topo::LinkKind::Plus:
            // Lemma A1.1: +2^i selected by b_i b_{n+i} = ~j_i j_i.
            IADM_ASSERT(bit(dest, i) != ji,
                        "nonstraight hop inconsistent with destination");
            state = static_cast<Label>(withBit(state, i, ji));
            break;
          case topo::LinkKind::Minus:
            // Lemma A1.1: -2^i selected by b_i b_{n+i} = ~j_i ~j_i.
            IADM_ASSERT(bit(dest, i) != ji,
                        "nonstraight hop inconsistent with destination");
            state = static_cast<Label>(withBit(state, i, ji ^ 1u));
            break;
          default:
            IADM_PANIC("exchange link in an IADM path");
        }
    }
    return {n_stages, dest, state};
}

TsdtTag
rerouteNonstraight(const TsdtTag &tag, unsigned i)
{
    TsdtTag out = tag;
    out.flipStateBit(i);
    return out;
}

std::optional<TsdtTag>
rerouteBacktrack(const TsdtTag &tag, const Path &path, unsigned i)
{
    const int r = path.lastNonstraightBefore(i);
    if (r < 0)
        return std::nullopt;

    // Corollary 4.2: if the nonstraight link at stage r is -2^r the
    // rerouting path climbs on +2^l links (state bits ~d_l, Lemma
    // A1.2(i)); if it is +2^r the rerouting path descends on -2^l
    // links (state bits d_l, Lemma A1.2(ii)).
    const bool found_minus =
        path.kindAt(static_cast<unsigned>(r)) == topo::LinkKind::Minus;
    TsdtTag out = tag;
    for (unsigned l = static_cast<unsigned>(r); l < i; ++l) {
        const unsigned dl = tag.destBit(l);
        out.setStateBit(l, found_minus ? (dl ^ 1u) : dl);
    }
    return out;
}

} // namespace iadm::core
