/**
 * @file
 * The Two-Bit State-Based Destination Tag (TSDT) scheme (Section 4).
 *
 * A TSDT routing tag has 2n bits: destination bits b_0..b_{n-1}
 * (always equal to the destination address) and state bits
 * b_n..b_{2n-1} (b_{n+i} = 0 puts stage i's switch in state C,
 * b_{n+i} = 1 in state Cbar).  Per the paper's switching table:
 *
 *   even_i switch: b_i b_{n+i} = 00,01 -> straight;
 *                  10 -> +2^i; 11 -> -2^i
 *   odd_i  switch: b_i b_{n+i} = 10,11 -> straight;
 *                  01 -> +2^i; 00 -> -2^i
 *
 * equivalently: straight iff b_i == j_i, else Plus iff b_{n+i} == j_i
 * (Lemma A1.1).
 *
 * Corollary 4.1: a nonstraight blockage at stage i is bypassed by
 * complementing state bit b_{n+i} (O(1)).
 * Corollary 4.2: a straight or double-nonstraight blockage at stage
 * i is bypassed by rewriting state bits b_{n+(i-k)}..b_{n+i-1},
 * where i-k is the nearest preceding stage with a nonstraight link
 * on the path (O(k)).
 */

#ifndef IADM_CORE_TSDT_HPP
#define IADM_CORE_TSDT_HPP

#include <optional>
#include <string>

#include "common/bits.hpp"
#include "core/path.hpp"
#include "core/state_model.hpp"

namespace iadm::core {

/** A 2n-bit TSDT routing tag. */
class TsdtTag
{
  public:
    TsdtTag() = default;

    /**
     * @param n_stages  n = log2 N
     * @param dest      destination bits b_0..b_{n-1}
     * @param state_bits state bits b_n..b_{2n-1} (bit i = stage i)
     */
    TsdtTag(unsigned n_stages, Label dest, Label state_bits = 0);

    unsigned stages() const { return n_; }

    /** The destination address (= destination bits, Theorem 3.1). */
    Label destination() const { return dest_; }

    /** All n state bits, bit i = b_{n+i}. */
    Label stateBits() const { return state_; }

    /** State bit b_{n+i}. */
    unsigned stateBit(unsigned i) const;

    /** Destination bit b_i. */
    unsigned destBit(unsigned i) const;

    /** The switch state stage @p i is put into. */
    SwitchState stateAt(unsigned i) const;

    /** Overwrite state bit b_{n+i}. */
    void setStateBit(unsigned i, unsigned v);

    /** Complement state bit b_{n+i} (Corollary 4.1's operation). */
    void flipStateBit(unsigned i);

    /** The full 2n-bit word b_0..b_{2n-1} (LSB = b_0). */
    std::uint64_t encoded() const;

    /** Decode a 2n-bit word. */
    static TsdtTag decode(unsigned n_stages, std::uint64_t word);

    /** Paper-style rendering: "b0..b_{2n-1}" LSB first. */
    std::string str() const;

    friend bool
    operator==(const TsdtTag &a, const TsdtTag &b)
    {
        return a.n_ == b.n_ && a.dest_ == b.dest_ &&
               a.state_ == b.state_;
    }

  private:
    unsigned n_ = 0;
    Label dest_ = 0;
    Label state_ = 0;
};

/** Link kind chosen by switch @p j at stage @p i under @p tag. */
topo::LinkKind tsdtLinkKind(Label j, unsigned i, const TsdtTag &tag);

/** Next-stage switch chosen by @p j at stage @p i under @p tag. */
Label tsdtNext(Label j, unsigned i, const TsdtTag &tag, Label n_size);

/**
 * Trace the full path a message takes from @p src under @p tag.
 * By Theorem 3.1 the path always ends at tag.destination().
 */
Path tsdtTrace(Label src, const TsdtTag &tag, Label n_size);

/**
 * The canonical initial tag for (src, dest): destination bits = dest,
 * all state bits 0 (every switch in state C), under which the IADM
 * network emulates the ICube network and the path visits
 * d_{0/i-1} s_{i/n-1} at stage i.
 */
TsdtTag initialTag(unsigned n_stages, Label dest);

/**
 * Reconstruct a tag that drives a message along @p path
 * (Lemma A1.1).  State bits of straight-link stages are set to 0.
 */
TsdtTag tagForPath(const Path &path, unsigned n_stages);

/**
 * Corollary 4.1: the rerouting tag that bypasses a nonstraight
 * blockage at stage @p i by using the oppositely-signed nonstraight
 * link of the same switch.
 */
TsdtTag rerouteNonstraight(const TsdtTag &tag, unsigned i);

/**
 * Corollary 4.2: the rerouting tag that bypasses a straight or
 * double-nonstraight blockage at stage @p i of @p path by
 * backtracking to the nearest preceding nonstraight link.  Returns
 * nullopt when the path is all-straight below stage i, in which
 * case no alternate path exists (Theorems 3.3/3.4, "only if").
 *
 * State bits at stages >= i are left unchanged (the corollary allows
 * them to be arbitrary).
 */
std::optional<TsdtTag> rerouteBacktrack(const TsdtTag &tag,
                                        const Path &path, unsigned i);

} // namespace iadm::core

#endif // IADM_CORE_TSDT_HPP
