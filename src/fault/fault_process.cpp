#include "fault/fault_process.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace iadm::fault {

// --- BernoulliChurn -------------------------------------------------

BernoulliChurn::BernoulliChurn(const topo::MultistageTopology &topo,
                               double p_fail, double p_repair,
                               std::uint64_t seed)
    : links_(topo.allLinks()), down_(links_.size(), 0),
      pFail_(p_fail), pRepair_(p_repair), rng_(seed)
{
    IADM_ASSERT(p_fail >= 0.0 && p_fail <= 1.0 &&
                    p_repair >= 0.0 && p_repair <= 1.0,
                "churn probabilities must be in [0,1]");
}

std::uint64_t
BernoulliChurn::nextTransition() const
{
    // One Bernoulli draw per link per cycle: the process "may fire"
    // every cycle after the last one it covered.
    return ranThrough_ + 1;
}

void
BernoulliChurn::runUntil(std::uint64_t now, FaultSet &faults,
                         const Observer &obs)
{
    // Fixed (cycle, link-index) draw order is the determinism
    // contract: the same seed always yields the same outage history.
    for (std::uint64_t cycle = ranThrough_ + 1; cycle <= now; ++cycle) {
        for (std::size_t i = 0; i < links_.size(); ++i) {
            if (down_[i]) {
                if (!rng_.chance(pRepair_))
                    continue;
                down_[i] = 0;
                faults.unblockLink(links_[i]);
                if (obs)
                    obs(cycle, links_[i], false);
            } else {
                if (!rng_.chance(pFail_))
                    continue;
                down_[i] = 1;
                faults.blockLink(links_[i]);
                if (obs)
                    obs(cycle, links_[i], true);
            }
        }
    }
    ranThrough_ = std::max(ranThrough_, now);
}

std::string
BernoulliChurn::name() const
{
    std::ostringstream os;
    os << "bernoulli(pFail=" << pFail_ << ",pRepair=" << pRepair_
       << ")";
    return os.str();
}

// --- GeometricChurn -------------------------------------------------

GeometricChurn::GeometricChurn(const topo::MultistageTopology &topo,
                               double mtbf, double mttr,
                               std::uint64_t seed)
    : links_(topo.allLinks()), down_(links_.size(), 0),
      nextAt_(links_.size()), mtbf_(mtbf), mttr_(mttr), rng_(seed)
{
    IADM_ASSERT(mtbf >= 1.0 && mttr >= 1.0,
                "mean holding times must be >= 1 cycle");
    for (std::size_t i = 0; i < links_.size(); ++i)
        nextAt_[i] = holdingTime(mtbf_);
    cachedNext_ = links_.empty()
                      ? kNever
                      : *std::min_element(nextAt_.begin(),
                                          nextAt_.end());
}

std::uint64_t
GeometricChurn::holdingTime(double mean)
{
    // Discretized exponential with the requested mean, floored at
    // one cycle so a link is never down-and-up within one step.
    const double u = rng_.uniformReal();
    return 1 + static_cast<std::uint64_t>(-mean * std::log1p(-u));
}

std::uint64_t
GeometricChurn::nextTransition() const
{
    return cachedNext_;
}

void
GeometricChurn::runUntil(std::uint64_t now, FaultSet &faults,
                         const Observer &obs)
{
    if (cachedNext_ > now)
        return;
    // Links are independent renewal processes, so draining each
    // link's transitions in turn (links in fixed index order, each
    // link's transitions in time order) is deterministic.
    std::uint64_t next = kNever;
    for (std::size_t i = 0; i < links_.size(); ++i) {
        while (nextAt_[i] <= now) {
            const std::uint64_t t = nextAt_[i];
            if (down_[i]) {
                down_[i] = 0;
                faults.unblockLink(links_[i]);
                if (obs)
                    obs(t, links_[i], false);
                nextAt_[i] = t + holdingTime(mtbf_);
            } else {
                down_[i] = 1;
                faults.blockLink(links_[i]);
                if (obs)
                    obs(t, links_[i], true);
                nextAt_[i] = t + holdingTime(mttr_);
            }
        }
        next = std::min(next, nextAt_[i]);
    }
    cachedNext_ = next;
}

std::string
GeometricChurn::name() const
{
    std::ostringstream os;
    os << "geometric(mtbf=" << mtbf_ << ",mttr=" << mttr_ << ")";
    return os.str();
}

// --- BurstChurn -----------------------------------------------------

BurstChurn::BurstChurn(const topo::MultistageTopology &topo,
                       std::uint64_t interval, std::uint64_t duration,
                       Label span, std::uint64_t seed)
    : stages_(topo.stages()), n_(topo.size()), interval_(interval),
      duration_(duration), span_(std::min<Label>(span, topo.size())),
      rng_(seed), nextStart_(interval)
{
    IADM_ASSERT(interval > 0 && duration > 0 && span > 0,
                "burst interval, duration and span must be positive");
    outLinks_.reserve(static_cast<std::size_t>(stages_) * n_);
    for (unsigned stage = 0; stage < stages_; ++stage)
        for (Label j = 0; j < n_; ++j)
            outLinks_.push_back(topo.outLinks(stage, j));
}

std::uint64_t
BurstChurn::nextTransition() const
{
    std::uint64_t next = nextStart_;
    if (!active_.empty())
        next = std::min(next, active_.front().endsAt);
    return next;
}

void
BurstChurn::runUntil(std::uint64_t now, FaultSet &faults,
                     const Observer &obs)
{
    // Chronological merge of burst ends (repairs) and starts; on a
    // tie the ending burst releases its links before the new one
    // claims.  Constant duration keeps active_ sorted by endsAt.
    for (;;) {
        const std::uint64_t end =
            active_.empty() ? kNever : active_.front().endsAt;
        if (std::min(end, nextStart_) > now)
            return;
        if (end <= nextStart_) {
            for (const topo::Link &l : active_.front().links) {
                faults.unblockLink(l);
                if (obs)
                    obs(end, l, false);
            }
            active_.erase(active_.begin());
        } else {
            startBurst(nextStart_, faults, obs);
            nextStart_ += interval_;
        }
    }
}

void
BurstChurn::startBurst(std::uint64_t when, FaultSet &faults,
                       const Observer &obs)
{
    const auto stage = static_cast<unsigned>(rng_.uniform(stages_));
    const auto first = static_cast<Label>(rng_.uniform(n_));
    Burst b;
    b.endsAt = when + duration_;
    for (Label k = 0; k < span_; ++k) {
        const Label j = (first + k) % n_;
        const auto &out =
            outLinks_[static_cast<std::size_t>(stage) * n_ + j];
        for (const topo::Link &l : out) {
            faults.blockLink(l);
            if (obs)
                obs(when, l, true);
            b.links.push_back(l);
        }
    }
    active_.push_back(std::move(b));
}

std::string
BurstChurn::name() const
{
    std::ostringstream os;
    os << "burst(interval=" << interval_ << ",duration=" << duration_
       << ",span=" << span_ << ")";
    return os.str();
}

} // namespace iadm::fault
