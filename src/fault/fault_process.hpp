/**
 * @file
 * Deterministic fault-churn processes: live link failure/repair.
 *
 * The paper's robustness claims (SSDT "self-repair", the universal
 * BACKTRACK+REROUTE procedure) are about networks whose blockage set
 * *changes while packets are in flight*.  A FaultProcess is a
 * seed-derived generator of such changes: it owns a private Rng and
 * a set of outstanding blockage claims on a FaultSet, fires
 * down/up transitions at deterministic cycle times, and composes
 * with static faults and transient windows through the FaultSet's
 * refcounted blockage model (its repairs release only its own
 * claims).
 *
 * Layering: fault/ sits below sim/, so cycle times are plain
 * std::uint64_t here; the simulator drives processes from its event
 * loop and forwards transitions to tracing/metrics via Observer.
 */

#ifndef IADM_FAULT_FAULT_PROCESS_HPP
#define IADM_FAULT_FAULT_PROCESS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "topology/topology.hpp"

namespace iadm::fault {

/**
 * Abstract seed-derived failure/repair process over a topology's
 * links.  Drive it by polling nextTransition() and calling
 * runUntil(now) whenever the horizon is reached; runUntil applies
 * every transition with time <= now, in deterministic order, to the
 * given FaultSet.
 */
class FaultProcess
{
  public:
    /** Sentinel: the process will never fire again. */
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    /**
     * Transition callback: (cycle, link, down).  down = true for a
     * failure (blockLink), false for a repair (unblockLink).  The
     * FaultSet mutation has already happened when this is called.
     */
    using Observer = std::function<void(
        std::uint64_t cycle, const topo::Link &link, bool down)>;

    virtual ~FaultProcess() = default;

    /** Earliest cycle at which a transition may fire (or kNever). */
    virtual std::uint64_t nextTransition() const = 0;

    /**
     * Apply all transitions with time <= @p now to @p faults, in a
     * deterministic order, invoking @p obs (if set) per transition.
     */
    virtual void runUntil(std::uint64_t now, FaultSet &faults,
                          const Observer &obs) = 0;

    /** Human-readable process description for diagnostics. */
    virtual std::string name() const = 0;
};

/**
 * Memoryless per-cycle churn: every cycle, each healthy link fails
 * with probability pFail and each failed link is repaired with
 * probability pRepair.  Expected steady-state outage fraction is
 * pFail / (pFail + pRepair).
 */
class BernoulliChurn final : public FaultProcess
{
  public:
    BernoulliChurn(const topo::MultistageTopology &topo, double p_fail,
                   double p_repair, std::uint64_t seed);

    std::uint64_t nextTransition() const override;
    void runUntil(std::uint64_t now, FaultSet &faults,
                  const Observer &obs) override;
    std::string name() const override;

  private:
    std::vector<topo::Link> links_;
    std::vector<std::uint8_t> down_;
    double pFail_;
    double pRepair_;
    Rng rng_;
    std::uint64_t ranThrough_ = 0; //!< cycles [1, ranThrough_] done
};

/**
 * Per-link renewal churn with geometric up/down times: each link
 * alternates healthy-for-~MTBF / failed-for-~MTTR, with holding
 * times drawn independently per link (discretized exponential,
 * mean = the respective parameter, minimum 1 cycle).  Unlike
 * BernoulliChurn this skips ahead: cost is O(active transitions),
 * not O(links) per cycle.
 */
class GeometricChurn final : public FaultProcess
{
  public:
    GeometricChurn(const topo::MultistageTopology &topo, double mtbf,
                   double mttr, std::uint64_t seed);

    std::uint64_t nextTransition() const override;
    void runUntil(std::uint64_t now, FaultSet &faults,
                  const Observer &obs) override;
    std::string name() const override;

  private:
    std::uint64_t holdingTime(double mean);

    std::vector<topo::Link> links_;
    std::vector<std::uint8_t> down_;
    std::vector<std::uint64_t> nextAt_;
    double mtbf_;
    double mttr_;
    Rng rng_;
    std::uint64_t cachedNext_ = kNever;
};

/**
 * Regional burst outages: every @p interval cycles a random stage
 * and a contiguous run of @p span switches lose all their output
 * links for @p duration cycles.  Bursts overlap freely — each owns
 * its blocked-link list, and the refcounted FaultSet unwinds them
 * independently.
 */
class BurstChurn final : public FaultProcess
{
  public:
    BurstChurn(const topo::MultistageTopology &topo,
               std::uint64_t interval, std::uint64_t duration,
               Label span, std::uint64_t seed);

    std::uint64_t nextTransition() const override;
    void runUntil(std::uint64_t now, FaultSet &faults,
                  const Observer &obs) override;
    std::string name() const override;

  private:
    struct Burst
    {
        std::uint64_t endsAt;
        std::vector<topo::Link> links;
    };

    void startBurst(std::uint64_t when, FaultSet &faults,
                    const Observer &obs);

    unsigned stages_;
    Label n_;
    //! Out-links per switch, flat [stage * N + j] (no topo ref kept).
    std::vector<std::vector<topo::Link>> outLinks_;
    std::uint64_t interval_;
    std::uint64_t duration_;
    Label span_;
    Rng rng_;
    std::uint64_t nextStart_;
    std::vector<Burst> active_; //!< sorted by endsAt (FIFO: equal durations)
};

} // namespace iadm::fault

#endif // IADM_FAULT_FAULT_PROCESS_HPP
