#include "fault/fault_set.hpp"

#include <algorithm>
#include <sstream>

namespace iadm::fault {

const char *
blockageKindName(BlockageKind k)
{
    switch (k) {
      case BlockageKind::None: return "none";
      case BlockageKind::Nonstraight: return "nonstraight";
      case BlockageKind::Straight: return "straight";
      case BlockageKind::DoubleNonstraight: return "double-nonstraight";
    }
    return "?";
}

void
FaultSet::blockLink(const topo::Link &l)
{
    blocked.insert(l.key());
    ++version_;
}

void
FaultSet::unblockLink(const topo::Link &l)
{
    blocked.erase(l.key());
    ++version_;
}

void
FaultSet::blockSwitch(const topo::MultistageTopology &topo,
                      unsigned stage, Label j)
{
    if (stage == 0) {
        // An input switch has no network input links; blocking it
        // blocks all of its output links instead, which is the only
        // way its unavailability manifests.
        for (const topo::Link &l : topo.outLinks(0, j))
            blockLink(l);
        return;
    }
    for (const topo::Link &l : topo.inLinks(stage, j))
        blockLink(l);
}

bool
FaultSet::isBlocked(const topo::Link &l) const
{
    return blocked.count(l.key()) != 0;
}

void
FaultSet::clear()
{
    blocked.clear();
    ++version_;
}

void
FaultSet::merge(const FaultSet &other)
{
    blocked.insert(other.blocked.begin(), other.blocked.end());
    ++version_;
}

std::string
FaultSet::str() const
{
    std::vector<std::uint64_t> keys(blocked.begin(), blocked.end());
    std::sort(keys.begin(), keys.end());
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < keys.size(); ++i)
        os << (i ? "," : "") << keys[i];
    os << "}";
    return os.str();
}

} // namespace iadm::fault
