#include "fault/fault_set.hpp"

#include <algorithm>
#include <sstream>

namespace iadm::fault {

const char *
blockageKindName(BlockageKind k)
{
    switch (k) {
      case BlockageKind::None: return "none";
      case BlockageKind::Nonstraight: return "nonstraight";
      case BlockageKind::Straight: return "straight";
      case BlockageKind::DoubleNonstraight: return "double-nonstraight";
    }
    return "?";
}

void
FaultSet::blockLink(const topo::Link &l)
{
    ++blocked[l.key()];
    ++version_;
}

void
FaultSet::unblockLink(const topo::Link &l)
{
    const auto it = blocked.find(l.key());
    if (it == blocked.end())
        return; // no outstanding claim: nothing to release
    if (--it->second == 0)
        blocked.erase(it);
    ++version_;
}

void
FaultSet::blockSwitch(const topo::MultistageTopology &topo,
                      unsigned stage, Label j)
{
    if (stage == 0) {
        // An input switch has no network input links; blocking it
        // blocks all of its output links instead, which is the only
        // way its unavailability manifests.
        for (const topo::Link &l : topo.outLinks(0, j))
            blockLink(l);
        return;
    }
    for (const topo::Link &l : topo.inLinks(stage, j))
        blockLink(l);
}

bool
FaultSet::isBlocked(const topo::Link &l) const
{
    return blocked.count(l.key()) != 0;
}

void
FaultSet::clear()
{
    blocked.clear();
    ++version_;
}

void
FaultSet::merge(const FaultSet &other)
{
    for (const auto &[key, cnt] : other.blocked)
        blocked[key] += cnt;
    ++version_;
}

std::uint32_t
FaultSet::refcount(const topo::Link &l) const
{
    const auto it = blocked.find(l.key());
    return it == blocked.end() ? 0 : it->second;
}

std::string
FaultSet::str() const
{
    std::vector<std::uint64_t> keys;
    keys.reserve(blocked.size());
    for (const auto &[key, cnt] : blocked)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < keys.size(); ++i)
        os << (i ? "," : "") << keys[i];
    os << "}";
    return os.str();
}

} // namespace iadm::fault
