/**
 * @file
 * Blockage model for multistage networks (Section 3 of the paper).
 *
 * A blockage is a link that is faulty or busy; the routing theory
 * treats both identically.  A switch blockage "has the same effect
 * as blocking all of the switch's input links and can be transformed
 * into a link blockage problem accordingly" — blockSwitch() performs
 * exactly that transformation.
 */

#ifndef IADM_FAULT_FAULT_SET_HPP
#define IADM_FAULT_FAULT_SET_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/topology.hpp"

namespace iadm::fault {

/**
 * Classification of the blockage situation at one switch for one
 * routing problem (Section 3): the participating output links of a
 * switch are either its straight link or both nonstraight links,
 * never all three, so exactly these cases can affect a path.
 */
enum class BlockageKind : std::uint8_t
{
    None,               //!< link on the path is not blocked
    Nonstraight,        //!< one nonstraight output link blocked
    Straight,           //!< the straight output link blocked
    DoubleNonstraight,  //!< both nonstraight output links blocked
};

/** Human-readable name for a BlockageKind. */
const char *blockageKindName(BlockageKind k);

/**
 * A set of blocked links, with switch blockage support.
 *
 * Blockages are refcounted: independent sources of blockage (a
 * static fault, an overlapping transient window, a churn process)
 * each call blockLink() and later unblockLink(), and the link stays
 * blocked until every source has released it.  An unblockLink() with
 * no matching blockLink() is a no-op, so releasing a blockage can
 * never erase someone else's.
 */
class FaultSet
{
  public:
    FaultSet() = default;

    /** Add one blockage claim on a link (faulty or busy). */
    void blockLink(const topo::Link &l);

    /**
     * Release one blockage claim; the link unblocks only when the
     * last claim is released.  No-op if the link is not blocked.
     */
    void unblockLink(const topo::Link &l);

    /**
     * Block a switch: blocks all input links of switch @p j of
     * stage @p stage in @p topo (the paper's transformation).
     */
    void blockSwitch(const topo::MultistageTopology &topo,
                     unsigned stage, Label j);

    /** True iff the link is blocked. */
    bool isBlocked(const topo::Link &l) const;

    /** Remove all blockages. */
    void clear();

    /** Add every blockage claim of @p other to this set. */
    void merge(const FaultSet &other);

    /** Number of blocked links (not claims). */
    std::size_t count() const { return blocked.size(); }

    bool empty() const { return blocked.empty(); }

    /**
     * Mutation counter, bumped by every block/unblock/clear/merge.
     * Cached views of the set (e.g. the simulator's bitset-backed
     * FaultView) compare it to decide when to refresh.
     */
    std::uint64_t version() const { return version_; }

    /** Outstanding claims on link @p l (0 when unblocked). */
    std::uint32_t refcount(const topo::Link &l) const;

    /**
     * The blocked links as stored keys (stage/from/kind encoded),
     * mapped to their outstanding claim counts.
     */
    const std::unordered_map<std::uint64_t, std::uint32_t> &
    keys() const
    {
        return blocked;
    }

    /** Render as a sorted list of link keys for diagnostics. */
    std::string str() const;

  private:
    std::unordered_map<std::uint64_t, std::uint32_t> blocked;
    std::uint64_t version_ = 0;
};

} // namespace iadm::fault

#endif // IADM_FAULT_FAULT_SET_HPP
