#include "fault/injection.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace iadm::fault {

namespace {

FaultSet
pickLinks(std::vector<topo::Link> pool, std::size_t count, Rng &rng)
{
    IADM_ASSERT(count <= pool.size(),
                "cannot block ", count, " of ", pool.size(), " links");
    FaultSet fs;
    for (std::size_t idx : rng.sample(pool.size(), count))
        fs.blockLink(pool[idx]);
    return fs;
}

} // namespace

FaultSet
randomLinkFaults(const topo::MultistageTopology &topo,
                 std::size_t count, Rng &rng)
{
    return pickLinks(topo.allLinks(), count, rng);
}

FaultSet
randomNonstraightFaults(const topo::MultistageTopology &topo,
                        std::size_t count, Rng &rng)
{
    auto all = topo.allLinks();
    std::vector<topo::Link> ns;
    std::copy_if(all.begin(), all.end(), std::back_inserter(ns),
                 [](const topo::Link &l) {
                     return l.kind != topo::LinkKind::Straight;
                 });
    return pickLinks(std::move(ns), count, rng);
}

FaultSet
bernoulliLinkFaults(const topo::MultistageTopology &topo, double p,
                    Rng &rng)
{
    FaultSet fs;
    for (const topo::Link &l : topo.allLinks())
        if (rng.chance(p))
            fs.blockLink(l);
    return fs;
}

FaultSet
randomSwitchFaults(const topo::MultistageTopology &topo,
                   std::size_t count, Rng &rng)
{
    // Switches of stages 1..n-1 (inner columns); input switches are
    // senders and output switches are receivers in our experiments.
    const std::size_t pool = static_cast<std::size_t>(topo.size()) *
                             (topo.stages() - 1);
    IADM_ASSERT(count <= pool, "too many switch faults");
    FaultSet fs;
    for (std::size_t idx : rng.sample(pool, count)) {
        const unsigned stage = 1 + static_cast<unsigned>(
            idx / topo.size());
        const auto j = static_cast<Label>(idx % topo.size());
        fs.blockSwitch(topo, stage, j);
    }
    return fs;
}

FaultSet
randomDoubleNonstraightFaults(const topo::MultistageTopology &topo,
                              std::size_t count, Rng &rng)
{
    const std::size_t pool = static_cast<std::size_t>(topo.size()) *
                             topo.stages();
    IADM_ASSERT(count <= pool, "too many switch faults");
    FaultSet fs;
    for (std::size_t idx : rng.sample(pool, count)) {
        const auto stage = static_cast<unsigned>(idx / topo.size());
        const auto j = static_cast<Label>(idx % topo.size());
        for (const topo::Link &l : topo.outLinks(stage, j))
            if (l.kind != topo::LinkKind::Straight)
                fs.blockLink(l);
    }
    return fs;
}

} // namespace iadm::fault
