/**
 * @file
 * Fault-injection policies used by experiments and property tests.
 */

#ifndef IADM_FAULT_INJECTION_HPP
#define IADM_FAULT_INJECTION_HPP

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "topology/topology.hpp"

namespace iadm::fault {

/** Block @p count distinct links chosen uniformly at random. */
FaultSet randomLinkFaults(const topo::MultistageTopology &topo,
                          std::size_t count, Rng &rng);

/**
 * Block @p count distinct *nonstraight* links chosen uniformly at
 * random (the blockage type the SSDT scheme repairs).
 */
FaultSet randomNonstraightFaults(const topo::MultistageTopology &topo,
                                 std::size_t count, Rng &rng);

/** Block each link independently with probability @p p. */
FaultSet bernoulliLinkFaults(const topo::MultistageTopology &topo,
                             double p, Rng &rng);

/** Block @p count random switches (transformed to link blockages). */
FaultSet randomSwitchFaults(const topo::MultistageTopology &topo,
                            std::size_t count, Rng &rng);

/**
 * Congestion-style blockage: block all nonstraight links of @p count
 * random switches (the "double nonstraight" case of Theorem 3.4).
 */
FaultSet randomDoubleNonstraightFaults(
    const topo::MultistageTopology &topo, std::size_t count, Rng &rng);

} // namespace iadm::fault

#endif // IADM_FAULT_INJECTION_HPP
