#include "hw/adder.hpp"

#include "common/bits.hpp"
#include "common/logging.hpp"

namespace iadm::hw {

std::string
GateCount::str() const
{
    return std::to_string(andGates) + " AND + " +
           std::to_string(orGates) + " OR + " +
           std::to_string(notGates) + " NOT + " +
           std::to_string(xorGates) + " XOR + " +
           std::to_string(flipFlops) + " FF (= " +
           std::to_string(equivalents()) + " gate eq.)";
}

RippleAdder::RippleAdder(unsigned width) : width_(width)
{
    IADM_ASSERT(width >= 1 && width <= 63, "bad adder width");
}

GateCount
RippleAdder::gates() const
{
    // One full adder per bit: sum = a ^ b ^ cin (2 XOR),
    // cout = a&b | cin&(a^b) (2 AND, 1 OR).
    GateCount g;
    g.xorGates = 2 * width_;
    g.andGates = 2 * width_;
    g.orGates = width_;
    return g;
}

std::uint64_t
RippleAdder::add(std::uint64_t a, std::uint64_t b,
                 unsigned carry_in) const
{
    std::uint64_t sum = 0;
    unsigned carry = carry_in & 1u;
    for (unsigned i = 0; i < width_; ++i) {
        const unsigned ai = bit(a, i), bi = bit(b, i);
        const unsigned s = ai ^ bi ^ carry;
        carry = (ai & bi) | (carry & (ai ^ bi));
        sum |= static_cast<std::uint64_t>(s) << i;
    }
    return sum;
}

TwosComplementer::TwosComplementer(unsigned width) : width_(width)
{
    IADM_ASSERT(width >= 1 && width <= 63, "bad width");
}

GateCount
TwosComplementer::gates() const
{
    // w inverters plus a ripple incrementer: bit i needs one XOR
    // (sum) and one AND (carry chain).
    GateCount g;
    g.notGates = width_;
    g.xorGates = width_;
    g.andGates = width_;
    return g;
}

std::uint64_t
TwosComplementer::complement(std::uint64_t a) const
{
    std::uint64_t out = 0;
    unsigned carry = 1; // +1 after inversion
    for (unsigned i = 0; i < width_; ++i) {
        const unsigned inv = bit(a, i) ^ 1u;
        out |= static_cast<std::uint64_t>(inv ^ carry) << i;
        carry &= inv;
    }
    return out;
}

} // namespace iadm::hw
