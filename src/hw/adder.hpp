/**
 * @file
 * Ripple-carry adder / two's complement blocks: the O(log N)
 * hardware the distance-tag rerouting schemes of [9]/[10] put in
 * every switch.
 */

#ifndef IADM_HW_ADDER_HPP
#define IADM_HW_ADDER_HPP

#include <cstdint>

#include "hw/gates.hpp"

namespace iadm::hw {

/**
 * A w-bit ripple-carry adder built from full adders (2 XOR, 2 AND,
 * 1 OR each).
 */
class RippleAdder
{
  public:
    explicit RippleAdder(unsigned width);

    unsigned width() const { return width_; }

    /** Gate census of the combinational array. */
    GateCount gates() const;

    /**
     * Evaluate: (a + b + carry_in) mod 2^w, emulated gate by gate
     * (full-adder recurrence), for cross-checking against integer
     * arithmetic.
     */
    std::uint64_t add(std::uint64_t a, std::uint64_t b,
                      unsigned carry_in = 0) const;

  private:
    unsigned width_;
};

/**
 * A w-bit two's complement unit (invert + increment), the core of
 * rerouting scheme 1 of [9]: w NOT gates feeding a ripple
 * incrementer (w half adders).
 */
class TwosComplementer
{
  public:
    explicit TwosComplementer(unsigned width);

    unsigned width() const { return width_; }
    GateCount gates() const;

    /** Evaluate -a mod 2^w gate by gate. */
    std::uint64_t complement(std::uint64_t a) const;

  private:
    unsigned width_;
};

} // namespace iadm::hw

#endif // IADM_HW_ADDER_HPP
