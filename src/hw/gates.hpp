/**
 * @file
 * Gate-level cost accounting for switch hardware.
 *
 * The paper argues its schemes "require less complex hardware than
 * previously proposed routing schemes": an SSDT/TSDT switch needs a
 * constant-size decoder (plus one state flip-flop for SSDT), while
 * the distance-tag schemes of [9] need an O(log N) two's-complement
 * or +-2^i adder in every switch.  This module makes that claim
 * measurable: combinational blocks report gate counts, and evaluate
 * functions let tests check the logic against the functional models
 * exhaustively.
 */

#ifndef IADM_HW_GATES_HPP
#define IADM_HW_GATES_HPP

#include <cstdint>
#include <string>

namespace iadm::hw {

/** Gate census of a combinational/sequential block. */
struct GateCount
{
    unsigned andGates = 0;
    unsigned orGates = 0;
    unsigned notGates = 0;
    unsigned xorGates = 0;
    unsigned flipFlops = 0;

    /** Total 2-input gate equivalents (XOR counted as 3, FF as 6). */
    unsigned
    equivalents() const
    {
        return andGates + orGates + notGates + 3 * xorGates +
               6 * flipFlops;
    }

    GateCount &
    operator+=(const GateCount &o)
    {
        andGates += o.andGates;
        orGates += o.orGates;
        notGates += o.notGates;
        xorGates += o.xorGates;
        flipFlops += o.flipFlops;
        return *this;
    }

    friend GateCount
    operator+(GateCount a, const GateCount &b)
    {
        a += b;
        return a;
    }

    std::string str() const;
};

} // namespace iadm::hw

#endif // IADM_HW_GATES_HPP
