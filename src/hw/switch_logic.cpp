#include "hw/switch_logic.hpp"

#include "common/logging.hpp"

namespace iadm::hw {

TsdtDecoder::Select
TsdtDecoder::evaluate(unsigned parity_bit, unsigned dest_bit,
                      unsigned state_bit)
{
    const unsigned p = parity_bit & 1u;
    const unsigned b = dest_bit & 1u;
    const unsigned s = state_bit & 1u;
    const unsigned bx = b ^ p; // XOR 1
    const unsigned sx = s ^ p; // XOR 2
    Select out;
    out.straight = !bx;        // NOT 1
    out.plus = bx & !sx;       // NOT 2, AND 1
    out.minus = bx & sx;       // AND 2
    return out;
}

topo::LinkKind
TsdtDecoder::kindOf(const Select &s)
{
    IADM_ASSERT(s.straight + s.plus + s.minus == 1,
                "select must be one-hot");
    if (s.straight)
        return topo::LinkKind::Straight;
    return s.plus ? topo::LinkKind::Plus : topo::LinkKind::Minus;
}

GateCount
TsdtDecoder::gates()
{
    GateCount g;
    g.xorGates = 2;
    g.andGates = 2;
    g.notGates = 2;
    return g;
}

SsdtSwitch::Out
SsdtSwitch::evaluate(unsigned parity_bit, bool state_cbar,
                     unsigned tag_bit, bool blocked_straight,
                     bool blocked_plus, bool blocked_minus)
{
    const auto sel = TsdtDecoder::evaluate(
        parity_bit, tag_bit, state_cbar ? 1u : 0u);
    Out out{TsdtDecoder::kindOf(sel), false, false};
    if (sel.straight) {
        // Theorem 3.2 "only if": no repair for a straight blockage.
        out.fail = blocked_straight;
        return out;
    }
    const bool blocked_now =
        (sel.plus && blocked_plus) || (sel.minus && blocked_minus);
    if (blocked_now) {
        // Toggle the state flip-flop: the spare link is the
        // oppositely signed one (Theorem 3.2 "if").
        out.toggled = true;
        out.kind = sel.plus ? topo::LinkKind::Minus
                            : topo::LinkKind::Plus;
        const bool spare_blocked =
            (out.kind == topo::LinkKind::Plus) ? blocked_plus
                                               : blocked_minus;
        out.fail = spare_blocked;
    }
    return out;
}

GateCount
SsdtSwitch::gates()
{
    // Decoder + repair network (blocked_now: 2 AND + 1 OR;
    // fail: 2 AND + 1 OR; toggle enable reuses blocked_now) +
    // parity FF + state FF.
    GateCount g = TsdtDecoder::gates();
    g.andGates += 4;
    g.orGates += 2;
    g.flipFlops += 2;
    return g;
}

GateCount
TsdtSwitch::gates()
{
    GateCount g = TsdtDecoder::gates();
    g.flipFlops += 1; // parity configuration bit
    return g;
}

TwosComplementSwitch::TwosComplementSwitch(unsigned n_stages)
    : n_(n_stages), comp_(n_stages + 1)
{
}

GateCount
TwosComplementSwitch::gates() const
{
    GateCount g = TsdtDecoder::gates(); // still needs a decoder
    g.flipFlops += n_ + 2; // remaining tag (n+1 bits) + sign
    g += comp_.gates();    // the O(n) rewrite arithmetic
    return g;
}

std::uint64_t
TwosComplementSwitch::rewriteMagnitude(std::uint64_t magnitude) const
{
    return comp_.complement(magnitude) & lowMask(n_ + 1);
}

DigitAdditionSwitch::DigitAdditionSwitch(unsigned n_stages)
    : n_(n_stages)
{
}

GateCount
DigitAdditionSwitch::gates() const
{
    // Signed-digit tag: 2 bits per stage digit in registers; the
    // carry-propagation cell per digit costs ~(2 XOR, 2 AND, 1 OR).
    GateCount g = TsdtDecoder::gates();
    g.flipFlops += 2 * n_;
    g.xorGates += 2 * n_;
    g.andGates += 2 * n_;
    g.orGates += n_;
    return g;
}

ExtraTagBitSwitch::ExtraTagBitSwitch(unsigned n_stages) : n_(n_stages)
{
}

GateCount
ExtraTagBitSwitch::gates() const
{
    // Two dominant tags (2 x (n+1) bits) + the extra select bit in
    // per-message registers; constant select/mux logic per digit
    // pair at the examined position (2:1 mux = 2 AND + 1 OR + 1
    // NOT).
    GateCount g = TsdtDecoder::gates();
    g.flipFlops += 2 * (n_ + 1) + 1;
    g.andGates += 2;
    g.orGates += 1;
    g.notGates += 1;
    return g;
}

} // namespace iadm::hw
