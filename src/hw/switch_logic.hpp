/**
 * @file
 * Switch decoder logic for each routing scheme, with gate counts.
 *
 * TSDT/SSDT switches decode (parity, destination bit, state bit)
 * into a link select with a constant handful of gates; the
 * distance-tag switches of [9] additionally carry the remaining tag
 * in registers and rewrite it with O(log N) arithmetic on every
 * reroute.  Evaluate functions mirror the gate network exactly so
 * tests can prove them equivalent to the functional models.
 */

#ifndef IADM_HW_SWITCH_LOGIC_HPP
#define IADM_HW_SWITCH_LOGIC_HPP

#include "hw/adder.hpp"
#include "topology/topology.hpp"

namespace iadm::hw {

/** Combinational TSDT link decoder (Section 4 switching table). */
class TsdtDecoder
{
  public:
    /** One-hot link select. */
    struct Select
    {
        bool straight;
        bool plus;
        bool minus;
    };

    /**
     * Gate network: straight = NOT(b XOR p), plus = (b XOR p) AND
     * NOT(s XOR p), minus = (b XOR p) AND (s XOR p).
     */
    static Select evaluate(unsigned parity_bit, unsigned dest_bit,
                           unsigned state_bit);

    /** The selected kind (exactly one select line is ever high). */
    static topo::LinkKind kindOf(const Select &s);

    /** 2 XOR + 2 AND + 2 NOT, independent of N. */
    static GateCount gates();
};

/**
 * An SSDT switch: the TSDT decoder plus a parity configuration
 * flip-flop, a state flip-flop and the local repair rule (toggle
 * the state when the chosen nonstraight link is blocked).
 */
class SsdtSwitch
{
  public:
    struct Out
    {
        topo::LinkKind kind;  //!< link actually used
        bool toggled;         //!< state flip-flop was toggled
        bool fail;            //!< no usable link (message blocked)
    };

    static Out evaluate(unsigned parity_bit, bool state_cbar,
                        unsigned tag_bit, bool blocked_straight,
                        bool blocked_plus, bool blocked_minus);

    /** Decoder + repair gates + 2 flip-flops; independent of N. */
    static GateCount gates();
};

/**
 * A TSDT switch as the paper proposes it: the decoder alone — state
 * is carried in the tag, so no flip-flop and no rerouting hardware
 * at all (the sender rewrites tags).
 */
class TsdtSwitch
{
  public:
    /** Decoder + the parity configuration flip-flop. */
    static GateCount gates();
};

/**
 * Distance-tag switch with two's-complement rerouting ([9] scheme
 * 1): registers for the n+1-bit remaining tag plus a two's
 * complement unit.  O(log N) hardware.
 */
class TwosComplementSwitch
{
  public:
    explicit TwosComplementSwitch(unsigned n_stages);

    GateCount gates() const;

    /**
     * Apply the reroute rewrite to a remaining-magnitude tag: the
     * new magnitude is 2^{n} - magnitude with the sign flipped
     * (gate-level two's complement over n+1 bits).
     */
    std::uint64_t rewriteMagnitude(std::uint64_t magnitude) const;

  private:
    unsigned n_;
    TwosComplementer comp_;
};

/**
 * Distance-tag switch with +-2^{i+1} addition rerouting ([9] scheme
 * 2): signed-digit tag registers plus a digit-carry chain.
 * O(log N) hardware.
 */
class DigitAdditionSwitch
{
  public:
    explicit DigitAdditionSwitch(unsigned n_stages);
    GateCount gates() const;

  private:
    unsigned n_;
};

/**
 * Distance-tag switch with the extra-tag-bit technique ([9] scheme
 * 3): both dominant tags travel with the message (2(n+1) register
 * bits) and a single select bit flips on blockage; the per-switch
 * combinational logic is constant but the per-message state is
 * O(log N).
 */
class ExtraTagBitSwitch
{
  public:
    explicit ExtraTagBitSwitch(unsigned n_stages);
    GateCount gates() const;

  private:
    unsigned n_;
};

} // namespace iadm::hw

#endif // IADM_HW_SWITCH_LOGIC_HPP
