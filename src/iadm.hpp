/**
 * @file
 * Umbrella header: the complete public API of the IADM routing
 * library.  Include this for exploratory use; production code
 * should include the specific module headers it needs.
 */

#ifndef IADM_IADM_HPP
#define IADM_IADM_HPP

// Substrate
#include "common/bits.hpp"
#include "common/logging.hpp"
#include "common/modmath.hpp"
#include "common/rng.hpp"

// Topologies
#include "topology/cube_family.hpp"
#include "topology/equivalence.hpp"
#include "topology/iadm.hpp"
#include "topology/icube.hpp"
#include "topology/render.hpp"
#include "topology/topology.hpp"

// Blockage model
#include "fault/fault_set.hpp"
#include "fault/injection.hpp"

// The paper's contribution
#include "core/backtrack.hpp"
#include "core/controller.hpp"
#include "core/distributed.hpp"
#include "core/multicast.hpp"
#include "core/oracle.hpp"
#include "core/path.hpp"
#include "core/pivot.hpp"
#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "core/state_model.hpp"
#include "core/tsdt.hpp"

// Section 6: cube subgraphs
#include "subgraph/cube_subgraph.hpp"
#include "subgraph/enumeration.hpp"
#include "subgraph/reconfigure.hpp"

// Prior schemes
#include "baselines/adm_routing.hpp"
#include "baselines/distance_tag.hpp"
#include "baselines/dynamic_reroute.hpp"
#include "baselines/local_control.hpp"
#include "baselines/lookahead.hpp"
#include "baselines/redundant_number.hpp"

// Permutation routing
#include "perm/admissibility.hpp"
#include "perm/multipass.hpp"
#include "perm/one_pass.hpp"
#include "perm/perm_router.hpp"
#include "perm/permutation.hpp"

// Hardware cost model
#include "hw/adder.hpp"
#include "hw/gates.hpp"
#include "hw/switch_logic.hpp"

// Packet-switched simulation
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/network_sim.hpp"
#include "sim/packet.hpp"
#include "sim/switch_model.hpp"
#include "sim/traffic.hpp"

#endif // IADM_IADM_HPP
