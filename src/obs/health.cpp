#include "obs/health.hpp"

#include <algorithm>
#ifdef IADM_HEALTH_DEBUG_DUMP
#include <cstdio>
#endif

namespace iadm::obs {

namespace {

/** splitmix64 finalizer — commutative sum of these per node makes a
 *  start-point-independent cycle signature. */
std::uint64_t
mixNode(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

void
HealthMonitor::beginScan(std::uint64_t /*cycle*/,
                         std::uint32_t queue_count)
{
    if (edgeTo_.size() < queue_count) {
        edgeTo_.resize(queue_count, kNoQueue);
        stamp_.resize(queue_count, 0);
        mark_.resize(queue_count, 0);
        prevStuck_.resize(queue_count, 0);
    }
    std::fill(edgeTo_.begin(), edgeTo_.end(), kNoQueue);
    std::fill(mark_.begin(), mark_.end(), 0);
    nodes_.clear();
}

void
HealthMonitor::waitEdge(std::uint32_t from_q, std::uint32_t to_q,
                        std::uint64_t head_stamp)
{
    if (from_q >= edgeTo_.size() || to_q >= edgeTo_.size())
        return;
    if (edgeTo_[from_q] == kNoQueue)
        nodes_.push_back(from_q);
    edgeTo_[from_q] = to_q;
    stamp_[from_q] = head_stamp;
}

void
HealthMonitor::headStuck(std::uint32_t q, std::uint64_t stuck_cycles)
{
    if (q >= prevStuck_.size())
        return;
    if (stuck_cycles > rep_.maxHeadStall)
        rep_.maxHeadStall = stuck_cycles;
    if (cfg_.progressBound != 0 && stuck_cycles >= cfg_.progressBound) {
        // Count each stuck episode once: the previous scan already
        // counted it iff the same head was past the bound then (its
        // stall can only have grown since).
        const std::uint64_t prev = prevStuck_[q];
        const bool already =
            prev >= cfg_.progressBound && prev <= stuck_cycles;
        if (!already)
            ++rep_.progressViolations;
    }
    prevStuck_[q] = stuck_cycles;
}

void
HealthMonitor::endScan()
{
    ++rep_.scans;
    seenThisScan_.clear();

    // The graph is functional: walk successor chains, stamping each
    // node with its walk id.  Re-entering the *current* walk closes a
    // cycle; hitting an older stamp merges into an already-resolved
    // tail.
    std::uint32_t walk = 0;
    for (const std::uint32_t start : nodes_) {
        if (mark_[start] != 0)
            continue;
        ++walk;
        std::uint32_t v = start;
        while (v != kNoQueue && mark_[v] == 0) {
            mark_[v] = walk;
            v = edgeTo_[v];
        }
        if (v != kNoQueue && mark_[v] == walk) {
            ++rep_.waitCycleSightings;
            // Signature over (queue, waiting head) pairs: the cycle
            // "persists" only while the same unmoved heads close it.
            std::uint64_t sig = 0;
            std::uint32_t u = v;
            do {
                sig += mixNode(mixNode(u) ^ stamp_[u]);
                u = edgeTo_[u];
            } while (u != v);
#ifdef IADM_HEALTH_DEBUG_DUMP
            std::fprintf(stderr, "[health] sighting sig=%016llx:",
                         static_cast<unsigned long long>(sig));
            u = v;
            do {
                std::fprintf(stderr, " %u", u);
                u = edgeTo_[u];
            } while (u != v);
            std::fprintf(stderr, "\n");
#endif
            seenThisScan_.push_back(sig);
        }
    }

    // Age confirmation streaks: a signature seen `confirmScans`
    // scans in a row is a deadlock (counted once, streak saturates).
    for (const std::uint64_t sig : seenThisScan_) {
        unsigned &streak = cycleStreak_[sig];
        if (streak < cfg_.confirmScans) {
            ++streak;
            if (streak == cfg_.confirmScans)
                ++rep_.deadlocks;
        }
    }
    for (auto it = cycleStreak_.begin(); it != cycleStreak_.end();) {
        const bool seen =
            std::find(seenThisScan_.begin(), seenThisScan_.end(),
                      it->first) != seenThisScan_.end();
        it = seen ? std::next(it) : cycleStreak_.erase(it);
    }
}

void
HealthMonitor::noteDelivered(std::uint64_t cycle, std::uint64_t total)
{
    if (total > lastDeliveredTotal_) {
        lastDeliveredTotal_ = total;
        rep_.lastProgressCycle = cycle;
    }
}

} // namespace iadm::obs
