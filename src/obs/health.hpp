/**
 * @file
 * Online liveness monitor: wait-for-cycle deadlock detection and
 * per-packet progress invariants.
 *
 * PR 5's park-and-retry lifecycle makes starvation *possible* in
 * principle; nothing in the test suite proved it absent — liveness
 * was only inferred from tests finishing.  The HealthMonitor turns
 * that inference into a checked invariant, following Stramaglia et
 * al.'s characterization of packet-switching deadlock: a set of full
 * queues each waiting for space in the next is deadlocked exactly
 * when the wait-for graph among them contains a cycle.
 *
 * The monitor is observation-driven and simulator-agnostic: a host
 * (NetworkSim, or a test fixture constructing graphs by hand) feeds
 * it scans via beginScan()/waitEdge()/headStuck()/endScan().  Each
 * head packet waits for at most one queue, so the wait-for graph is
 * functional (out-degree <= 1) and cycle detection is a stamped walk
 * — O(nodes) per scan, no recursion.
 *
 * Two liveness checks:
 *
 *  - **Deadlock**: a wait-for cycle whose node-set signature persists
 *    for `confirmScans` consecutive scans.  One scan is only a
 *    *sighting* — churn restores and age-based drops dissolve
 *    transient cycles, and counting those would cry wolf.  Forward
 *    traffic alone cannot close a cycle (stage s waits only on stage
 *    s+1 — a DAG); only tsdt-dynamic's backward walks can, which is
 *    what makes a clean report meaningful rather than vacuous.
 *
 *  - **Progress bound** (livelock/starvation): a head packet that has
 *    neither hopped nor been delivered within `progressBound` cycles.
 *    Each stuck episode is counted once, not once per scan.
 *
 * The monitor also owns a SteadyStateTracker fed with fixed-width
 * window rollups by the host, so one attachment point yields both
 * liveness verdicts and warmup-truncated steady-state statistics.
 */

#ifndef IADM_OBS_HEALTH_HPP
#define IADM_OBS_HEALTH_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/steady_state.hpp"

namespace iadm::obs {

/**
 * Compile-time gate, same discipline as the TraceSink: with
 * IADM_HEALTH=OFF the per-cycle hook in NetworkSim::step() compiles
 * away entirely and attaching a monitor is a no-op.
 */
constexpr bool
healthCompiledIn()
{
#if IADM_HEALTH
    return true;
#else
    return false;
#endif
}

struct HealthConfig
{
    /** Cycles between wait-for scans. */
    std::uint64_t checkInterval = 64;
    /**
     * A head packet stuck (no hop, no delivery) for this many cycles
     * is a progress violation.  0 disables the check.
     */
    std::uint64_t progressBound = 4096;
    /**
     * Consecutive scans a wait-for cycle must persist (with the same
     * frozen heads) before it counts as a deadlock.  Sizing rule:
     * confirmScans * checkInterval must exceed the largest recovery
     * horizon armed in the experiment — the packet age cap above
     * all, since a wait-for cycle is guaranteed to dissolve once a
     * participant head expires.  Cycles that dissolve within the
     * horizon are recoverable stall storms (visible as sightings and
     * maxHeadStall), not deadlocks, and flagging them would cry
     * wolf.  A permanent cycle cannot hide behind any horizon, and
     * its frozen heads trip the progress bound regardless.  The
     * default — 12 scans at the default interval, 768 cycles —
     * comfortably clears the 400-600-cycle age caps the experiment
     * grids use.
     */
    unsigned confirmScans = 12;
    /** Cycles per steady-state rollup window. */
    std::uint64_t windowCycles = 256;
};

/** Cumulative liveness verdicts. */
struct HealthReport
{
    std::uint64_t scans = 0;
    /** Wait-for cycles confirmed for `confirmScans` scans. */
    std::uint64_t deadlocks = 0;
    /** Wait-for cycles seen in any single scan (incl. transient). */
    std::uint64_t waitCycleSightings = 0;
    /** Distinct head-stuck episodes past the progress bound. */
    std::uint64_t progressViolations = 0;
    /** Longest observed head stall, in cycles. */
    std::uint64_t maxHeadStall = 0;
    /** Cycle at which the delivered counter last advanced. */
    std::uint64_t lastProgressCycle = 0;

    bool
    healthy() const
    {
        return deadlocks == 0 && progressViolations == 0;
    }
};

class HealthMonitor
{
  public:
    /** Sentinel for "head waits on no queue". */
    static constexpr std::uint32_t kNoQueue = ~std::uint32_t{0};

    explicit HealthMonitor(HealthConfig cfg = {}) : cfg_(cfg) {}

    const HealthConfig &config() const { return cfg_; }

    /**
     * Open a scan at `cycle` over a network with `queue_count`
     * queues.  Queue ids are host-defined, dense in
     * [0, queue_count).
     */
    void beginScan(std::uint64_t cycle, std::uint32_t queue_count);
    /**
     * Full queue `from_q`'s head waits for space in full queue
     * `to_q`.  At most one edge per `from_q` per scan (the head has
     * exactly one next hop).  `head_stamp` identifies the waiting
     * head (e.g. packet id mixed with its last-move cycle); it is
     * folded into the cycle signature, so a cycle only *persists*
     * across scans while the very same unmoved heads keep waiting —
     * congestion that re-forms a cycle among the same queues with
     * fresh traffic is a new sighting, not a confirmed deadlock.
     */
    void waitEdge(std::uint32_t from_q, std::uint32_t to_q,
                  std::uint64_t head_stamp = 0);
    /**
     * Queue `q`'s head has neither hopped nor been delivered for
     * `stuck_cycles` cycles.  Call for every occupied queue (full or
     * not — starvation does not require a full queue).
     */
    void headStuck(std::uint32_t q, std::uint64_t stuck_cycles);
    /** Close the scan: detect cycles, age confirmation streaks. */
    void endScan();

    /**
     * Record the cumulative delivered counter; advancing it updates
     * lastProgressCycle.
     */
    void noteDelivered(std::uint64_t cycle, std::uint64_t total);

    const HealthReport &report() const { return rep_; }

    SteadyStateTracker &steadyState() { return steady_; }
    const SteadyStateTracker &steadyState() const { return steady_; }

  private:
    HealthConfig cfg_;
    HealthReport rep_;
    SteadyStateTracker steady_;

    std::vector<std::uint32_t> edgeTo_; //!< successor per queue
    std::vector<std::uint64_t> stamp_;  //!< waiting head per queue
    std::vector<std::uint32_t> nodes_;  //!< queues with an out-edge
    std::vector<std::uint32_t> mark_;   //!< walk stamp per queue
    /** Last scan's head stall per queue, for episode dedup. */
    std::vector<std::uint64_t> prevStuck_;
    /** Cycle-signature -> consecutive-scan streak. */
    std::unordered_map<std::uint64_t, unsigned> cycleStreak_;
    std::vector<std::uint64_t> seenThisScan_;
    std::uint64_t lastDeliveredTotal_ = 0;
};

} // namespace iadm::obs

#endif // IADM_OBS_HEALTH_HPP
