#include "obs/inspector.hpp"

#include <bit>
#include <sstream>
#include <unordered_map>

#include "common/logging.hpp"
#include "core/reroute.hpp"
#include "obs/trace_sink.hpp"

namespace iadm::obs {

namespace {

/** The oppositely-signed nonstraight link (Theorem 3.2's spare). */
topo::LinkKind
spareOf(topo::LinkKind k)
{
    return k == topo::LinkKind::Plus ? topo::LinkKind::Minus
                                     : topo::LinkKind::Plus;
}

Label
linkTarget(Label j, unsigned i, topo::LinkKind k, Label n_size)
{
    const std::int64_t d =
        k == topo::LinkKind::Straight
            ? 0
            : (k == topo::LinkKind::Plus ? (std::int64_t{1} << i)
                                         : -(std::int64_t{1} << i));
    return modAdd(j, d, n_size);
}

void
emitHop(TraceSink *sink, std::uint64_t pid, const ReplayHop &h,
        Label tag_dest, Label tag_state)
{
    if (sink == nullptr)
        return;
    if (h.flipped) {
        sink->record(EventKind::StateFlip, pid, h.stage, h.stage,
                     h.sw, static_cast<std::uint8_t>(h.kind),
                     static_cast<std::uint32_t>(h.state), tag_dest,
                     tag_state);
    }
    sink->record(EventKind::Hop, pid, h.stage, h.stage, h.sw,
                 static_cast<std::uint8_t>(h.kind), h.next, tag_dest,
                 tag_state);
}

/**
 * SSDT: walk src -> dst with the local repair rule of Theorem 3.2 —
 * a blocked nonstraight link flips the switch state and uses the
 * spare; straight / double-nonstraight blockages are unrepairable.
 */
ReplayResult
replaySsdt(const topo::IadmTopology &topo,
           const fault::FaultSet &faults, Label src, Label dst,
           TraceSink *sink, std::uint64_t pid)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();

    ReplayResult r;
    r.src = src;
    r.dst = dst;
    r.netSize = n_size;
    r.scheme = ReplayScheme::Ssdt;

    core::NetworkState state(n_size);
    Label j = src;
    for (unsigned i = 0; i < n; ++i) {
        ReplayHop h;
        h.stage = i;
        h.sw = j;
        h.odd = core::isOddSwitch(j, i);
        h.state = state.get(i, j);
        h.tagBit = bit(dst, i);
        h.kind = core::linkKindFor(j, h.tagBit, i, h.state);
        h.next = core::applyState(j, h.tagBit, i, n_size, h.state);

        const topo::Link chosen{i, j, h.next, h.kind};
        if (faults.isBlocked(chosen)) {
            if (h.kind == topo::LinkKind::Straight) {
                r.failReason =
                    "straight blockage at stage " +
                    std::to_string(i) +
                    " is locally unrepairable (Theorem 3.2)";
                r.hops.push_back(h);
                break;
            }
            const topo::LinkKind spare = spareOf(h.kind);
            const Label spareTo = linkTarget(j, i, spare, n_size);
            const topo::Link spareLink{i, j, spareTo, spare};
            if (faults.isBlocked(spareLink)) {
                r.failReason =
                    "double-nonstraight blockage at stage " +
                    std::to_string(i) +
                    " is locally unrepairable (Theorem 3.2)";
                r.hops.push_back(h);
                break;
            }
            // Flip the switch state and take the spare (Lemma 2.1:
            // both states set bit i of the label to the tag bit).
            state.flip(i, j);
            h.state = state.get(i, j);
            h.kind = spare;
            h.next = spareTo;
            h.flipped = true;
            ++r.reroutes;
        }
        h.stateBit = h.state == core::SwitchState::Cbar ? 1u : 0u;
        r.hops.push_back(h);
        emitHop(sink, pid, h, dst, 0);
        j = h.next;
    }
    r.delivered = r.failReason.empty() && j == dst;
    return r;
}

/** TSDT: run REROUTE, then narrate the tag's path hop by hop. */
ReplayResult
replayTsdt(const topo::IadmTopology &topo,
           const fault::FaultSet &faults, Label src, Label dst,
           TraceSink *sink, std::uint64_t pid)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();

    ReplayResult r;
    r.src = src;
    r.dst = dst;
    r.netSize = n_size;
    r.scheme = ReplayScheme::Tsdt;

    const core::RerouteResult route =
        core::universalRoute(topo, faults, src, dst);
    r.reroutes = route.corollary41;
    r.backtracks = route.backtracks;
    if (!route.ok) {
        r.failReason = "REROUTE: FAIL — no blockage-free path "
                       "exists for this pair (Theorem 5.1)";
        return r;
    }

    r.tag = route.tag;
    Label j = src;
    for (unsigned i = 0; i < n; ++i) {
        ReplayHop h;
        h.stage = i;
        h.sw = j;
        h.odd = core::isOddSwitch(j, i);
        h.state = r.tag.stateAt(i);
        h.tagBit = r.tag.destBit(i);
        h.stateBit = r.tag.stateBit(i);
        h.kind = core::tsdtLinkKind(j, i, r.tag);
        h.next = core::tsdtNext(j, i, r.tag, n_size);
        r.hops.push_back(h);
        emitHop(sink, pid, h,
                static_cast<Label>(r.tag.destination()),
                static_cast<Label>(r.tag.stateBits()));
        j = h.next;
    }
    r.delivered = j == dst;
    IADM_ASSERT(r.delivered,
                "REROUTE tag failed to reach its destination");
    return r;
}

char
depthChar(std::uint32_t d)
{
    if (d == 0)
        return '.';
    if (d > 9)
        return '+';
    return static_cast<char>('0' + d);
}

} // namespace

const char *
replaySchemeName(ReplayScheme s)
{
    return s == ReplayScheme::Ssdt ? "ssdt" : "tsdt";
}

ReplayResult
replayRoute(const topo::IadmTopology &topo,
            const fault::FaultSet &faults, Label src, Label dst,
            ReplayScheme scheme, TraceSink *sink,
            std::uint64_t packet_id)
{
    IADM_ASSERT(src < topo.size() && dst < topo.size(),
                "replay endpoints must be switch labels");
    if (sink != nullptr) {
        sink->record(EventKind::Inject, packet_id, 0, 0, src,
                     TraceEvent::kNoLink, dst, dst, 0);
    }
    ReplayResult r =
        scheme == ReplayScheme::Ssdt
            ? replaySsdt(topo, faults, src, dst, sink, packet_id)
            : replayTsdt(topo, faults, src, dst, sink, packet_id);
    if (sink != nullptr) {
        const unsigned n = topo.stages();
        if (r.delivered) {
            sink->record(EventKind::Deliver, packet_id, n,
                         n == 0 ? 0 : n - 1, dst, TraceEvent::kNoLink,
                         dst, dst, 0);
        } else {
            const unsigned stage =
                r.hops.empty() ? 0 : r.hops.back().stage;
            const Label sw = r.hops.empty() ? src : r.hops.back().sw;
            sink->record(EventKind::Drop, packet_id, r.hops.size(),
                         stage, sw, TraceEvent::kNoLink, dst, dst, 0,
                         TraceEvent::kFlagUnroutable);
        }
    }
    return r;
}

std::string
printReplay(const ReplayResult &r)
{
    std::ostringstream os;
    const unsigned n = r.hops.empty()
                           ? 0
                           : r.hops.back().stage + 1;
    os << "replay " << r.src << " -> " << r.dst << "  N="
       << r.netSize << "  scheme=" << replaySchemeName(r.scheme)
       << "\n";
    if (r.scheme == ReplayScheme::Tsdt && r.delivered) {
        os << "tag " << r.tag.str() << "  (dest bits = "
           << r.tag.destination() << ", state bits = "
           << r.tag.stateBits() << ")\n";
    }
    for (const ReplayHop &h : r.hops) {
        os << "stage " << h.stage << ": switch " << h.sw << " ("
           << (h.odd ? "odd_" : "even_") << h.stage << ", state "
           << (h.state == core::SwitchState::C ? "C" : "C~") << ")  ";
        if (r.scheme == ReplayScheme::Tsdt) {
            os << "b_" << h.stage << "=" << h.tagBit << " b_"
               << (n + h.stage) << "=" << h.stateBit;
        } else {
            os << "tag bit " << h.tagBit;
        }
        os << "  -> " << topo::linkKindName(h.kind) << " -> "
           << h.next;
        if (h.flipped)
            os << "  [state flipped: spare link used, Theorem 3.2]";
        os << "\n";
    }
    if (r.delivered) {
        os << "delivered at switch " << r.dst << " after "
           << r.hops.size() << " hops";
        if (r.scheme == ReplayScheme::Tsdt) {
            os << "; Corollary 4.1 reroutes: " << r.reroutes
               << ", BACKTRACKs: " << r.backtracks;
        } else if (r.reroutes != 0) {
            os << "; local state flips: " << r.reroutes;
        }
        os << "\n";
    } else {
        os << "NOT delivered: " << r.failReason << "\n";
    }
    return os.str();
}

QueueSnapshot
queueSnapshot(const BinaryTrace &trace, std::uint64_t cycle)
{
    QueueSnapshot s;
    s.cycle = cycle;
    s.netSize = trace.meta.netSize;
    s.stages = trace.meta.stages;
    s.scheme = trace.meta.scheme;
    if (s.netSize == 0 || s.stages == 0)
        return s;

    std::vector<std::vector<std::int64_t>> depth(
        s.stages, std::vector<std::int64_t>(s.netSize, 0));
    s.state.assign(s.stages,
                   std::vector<signed char>(s.netSize, -1));

    auto add = [&](unsigned stage, Label sw, std::int64_t d) {
        if (stage < s.stages && sw < s.netSize)
            depth[stage][sw] += d;
    };

    // Per-link outstanding blockage claims, [stage][3*sw + kind]:
    // FaultUp releases one claim, so overlapping outage windows on
    // the same link keep it down until the last one lifts (the
    // simulator's refcounted FaultSet semantics).
    std::vector<std::vector<std::int32_t>> claims(
        s.stages,
        std::vector<std::int32_t>(std::size_t{3} * s.netSize, 0));
    auto claim = [&](const TraceEvent &e, std::int32_t d) {
        if (e.stage < s.stages && e.sw < s.netSize && e.link < 3)
            claims[e.stage][std::size_t{3} * e.sw + e.link] += d;
    };

    // Per-packet fold for the parked-packet heatmap: a packet is
    // *parked* when its most recent event is a Stall; any movement
    // (hop, backtrack) or exit (deliver, drop) clears it.  lastMoved
    // tracks the cycle of the packet's last position change so the
    // snapshot can report how long each parked head has been stuck.
    struct PktState
    {
        unsigned stage;
        Label sw;
        std::uint64_t lastMoved;
        bool parked;
    };
    std::unordered_map<std::uint64_t, PktState> pkts;
    auto move = [&](std::uint64_t pid, unsigned stage, Label sw,
                    std::uint64_t cyc) {
        pkts[pid] = PktState{stage, sw, cyc, false};
    };

    for (const TraceEvent &e : trace.events) {
        if (e.cycle > cycle)
            continue;
        switch (e.kind) {
          case EventKind::Inject:
            if (!(e.flags & TraceEvent::kFlagNotEnqueued)) {
                add(e.stage, e.sw, +1);
                move(e.packet, e.stage, e.sw, e.cycle);
            }
            break;
          case EventKind::Hop:
            add(e.stage, e.sw, -1);
            add(e.stage + 1, e.aux, +1);
            move(e.packet, e.stage + 1, e.aux, e.cycle);
            break;
          case EventKind::BacktrackHop:
            add(e.stage, e.sw, -1);
            if (e.stage > 0) {
                add(e.stage - 1, e.aux, +1);
                move(e.packet, e.stage - 1, e.aux, e.cycle);
            }
            break;
          case EventKind::Stall:
            if (auto it = pkts.find(e.packet); it != pkts.end())
                it->second.parked = true;
            break;
          case EventKind::Deliver:
            add(e.stage, e.sw, -1);
            pkts.erase(e.packet);
            break;
          case EventKind::Drop:
            if (!(e.flags & TraceEvent::kFlagNotEnqueued))
                add(e.stage, e.sw, -1);
            pkts.erase(e.packet);
            break;
          case EventKind::StateFlip:
            if (e.stage < s.stages && e.sw < s.netSize)
                s.state[e.stage][e.sw] =
                    static_cast<signed char>(e.aux & 1u);
            break;
          case EventKind::FaultDown:
            claim(e, +1);
            break;
          case EventKind::FaultUp:
            claim(e, -1);
            break;
          default:
            break;
        }
    }

    s.depth.assign(s.stages,
                   std::vector<std::uint32_t>(s.netSize, 0));
    for (unsigned i = 0; i < s.stages; ++i) {
        for (Label j = 0; j < s.netSize; ++j) {
            const std::int64_t d = depth[i][j] < 0 ? 0 : depth[i][j];
            s.depth[i][j] = static_cast<std::uint32_t>(d);
            s.inFlight += static_cast<std::uint64_t>(d);
        }
    }
    s.down.assign(s.stages,
                  std::vector<std::uint8_t>(s.netSize, 0));
    for (unsigned i = 0; i < s.stages; ++i)
        for (Label j = 0; j < s.netSize; ++j)
            for (unsigned k = 0; k < 3; ++k)
                if (claims[i][std::size_t{3} * j + k] > 0)
                    ++s.down[i][j];
    s.parked.assign(s.stages,
                    std::vector<std::uint32_t>(s.netSize, 0));
    s.parkedAge.assign(s.stages,
                       std::vector<std::uint32_t>(s.netSize, 0));
    for (const auto &[pid, p] : pkts) {
        if (!p.parked || p.stage >= s.stages || p.sw >= s.netSize)
            continue;
        ++s.parked[p.stage][p.sw];
        const std::uint64_t age =
            cycle > p.lastMoved ? cycle - p.lastMoved : 0;
        const auto a = static_cast<std::uint32_t>(
            age > ~std::uint32_t{0} ? ~std::uint32_t{0} : age);
        if (a > s.parkedAge[p.stage][p.sw])
            s.parkedAge[p.stage][p.sw] = a;
    }
    return s;
}

std::string
printSnapshot(const QueueSnapshot &s)
{
    std::ostringstream os;
    os << "snapshot at cycle " << s.cycle << "  N=" << s.netSize
       << "  scheme=" << (s.scheme.empty() ? "?" : s.scheme)
       << "  in-flight=" << s.inFlight << "\n";
    os << "queue depth per stage (one column per switch; '.'=0, "
          "'+'=10+):\n";
    for (unsigned i = 0; i < s.stages; ++i) {
        os << "  S" << i << (i < 10 ? " " : "") << " |";
        for (Label j = 0; j < s.netSize; ++j)
            os << depthChar(s.depth[i][j]);
        os << "|\n";
    }
    os << "switch states ('C'=C, '~'=C~, '.'=never flipped):\n";
    for (unsigned i = 0; i < s.stages; ++i) {
        os << "  S" << i << (i < 10 ? " " : "") << " |";
        for (Label j = 0; j < s.netSize; ++j) {
            const signed char st = s.state[i][j];
            os << (st < 0 ? '.' : (st == 0 ? 'C' : '~'));
        }
        os << "|\n";
    }
    bool any_parked = false;
    for (const auto &row : s.parked)
        for (const std::uint32_t p : row)
            any_parked = any_parked || p != 0;
    if (any_parked) {
        os << "parked packets per switch (head stalled; '.'=0, "
              "'+'=10+):\n";
        for (unsigned i = 0; i < s.stages; ++i) {
            os << "  S" << i << (i < 10 ? " " : "") << " |";
            for (Label j = 0; j < s.netSize; ++j)
                os << depthChar(s.parked[i][j]);
            os << "|\n";
        }
        os << "max parked age, log scale (char = bit_width(cycles); "
              "'.'=none):\n";
        for (unsigned i = 0; i < s.stages; ++i) {
            os << "  S" << i << (i < 10 ? " " : "") << " |";
            for (Label j = 0; j < s.netSize; ++j)
                os << depthChar(static_cast<std::uint32_t>(
                       std::bit_width(s.parkedAge[i][j])));
            os << "|\n";
        }
    }
    bool any_down = false;
    for (const auto &row : s.down)
        for (const std::uint8_t d : row)
            any_down = any_down || d != 0;
    if (any_down) {
        os << "down out-links per switch ('.'=0, 1-3):\n";
        for (unsigned i = 0; i < s.stages; ++i) {
            os << "  S" << i << (i < 10 ? " " : "") << " |";
            for (Label j = 0; j < s.netSize; ++j)
                os << (s.down[i][j] == 0
                           ? '.'
                           : static_cast<char>('0' + s.down[i][j]));
            os << "|\n";
        }
    }
    return os.str();
}

} // namespace iadm::obs
