/**
 * @file
 * Network-state inspector: single-packet route replay and trace-file
 * snapshots (iadm_tool trace / iadm_tool snapshot).
 *
 * replayRoute() routes one (src, dst) pair through a faulted network
 * and narrates every hop in the paper's vocabulary — the switch's
 * static parity (even_i / odd_i), its dynamic state (C / Cbar), the
 * tag bit consumed and the physical link taken — so a reader can
 * check each step against the switching table of Section 4.  The
 * replay is itself an instrumentation client: given a TraceSink it
 * emits the same event stream the simulator does.
 *
 * queueSnapshot() rebuilds per-stage queue occupancy and switch-state
 * maps at a chosen cycle by folding a recorded binary trace forward —
 * the trace is a complete event log, so the network state at any
 * cycle is a deterministic function of its prefix.
 */

#ifndef IADM_OBS_INSPECTOR_HPP
#define IADM_OBS_INSPECTOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/ssdt.hpp"
#include "core/tsdt.hpp"
#include "obs/trace_export.hpp"

namespace iadm::obs {

class TraceSink;

/** Routing scheme replayed by the inspector. */
enum class ReplayScheme : std::uint8_t
{
    Ssdt, //!< n-bit tag + local state-flip repair (Theorem 3.2)
    Tsdt, //!< 2n-bit tag + sender-side REROUTE (Section 5)
};

const char *replaySchemeName(ReplayScheme s);

/** One narrated hop of a replayed route. */
struct ReplayHop
{
    unsigned stage = 0;
    Label sw = 0;                //!< switch label at this stage
    bool odd = false;            //!< odd_i switch (bit i of sw)
    core::SwitchState state = core::SwitchState::C;
    unsigned tagBit = 0;         //!< destination tag bit b_i consumed
    unsigned stateBit = 0;       //!< state bit driving the switch
    topo::LinkKind kind = topo::LinkKind::Straight;
    Label next = 0;              //!< switch reached at stage+1
    bool flipped = false;        //!< SSDT local repair fired here
};

/** Full outcome of a single-packet replay. */
struct ReplayResult
{
    bool delivered = false;
    Label src = 0;
    Label dst = 0;
    Label netSize = 0;
    ReplayScheme scheme = ReplayScheme::Tsdt;
    core::TsdtTag tag;           //!< final routing tag (Tsdt only)
    unsigned reroutes = 0;       //!< Corollary-4.1 flips / state flips
    unsigned backtracks = 0;     //!< BACKTRACK invocations (Tsdt)
    std::vector<ReplayHop> hops;
    std::string failReason;      //!< set when !delivered
};

/**
 * Route one packet and narrate it.  When @p sink is non-null the
 * replay also records inject/hop/state-flip/deliver/drop events
 * under packet id @p packet_id.
 */
ReplayResult replayRoute(const topo::IadmTopology &topo,
                         const fault::FaultSet &faults, Label src,
                         Label dst, ReplayScheme scheme,
                         TraceSink *sink = nullptr,
                         std::uint64_t packet_id = 0);

/** Multi-line human rendering of a replay (iadm_tool trace). */
std::string printReplay(const ReplayResult &r);

/** Network state at one cycle, rebuilt from a binary trace. */
struct QueueSnapshot
{
    std::uint64_t cycle = 0;
    Label netSize = 0;
    unsigned stages = 0;
    std::string scheme;
    std::uint64_t inFlight = 0;  //!< packets enqueued at the cycle
    /** Queue occupancy, [stage][switch]. */
    std::vector<std::vector<std::uint32_t>> depth;
    /** Switch state: -1 never flipped (unknown), 0 C, 1 Cbar. */
    std::vector<std::vector<signed char>> state;
    /**
     * Out-links currently down per switch (0-3), folded from
     * FaultDown/FaultUp events with a per-link claim counter: a
     * link counts as down while it holds more claims than repairs,
     * mirroring the simulator's refcounted FaultSet (overlapping
     * transient windows and churn never cancel early).
     */
    std::vector<std::vector<std::uint8_t>> down;
    /**
     * Parked packets per switch, [stage][switch]: enqueued packets
     * whose most recent event at or before the cycle is a Stall —
     * the head could not move, so the queue is wedged behind it.
     * Rebuilt by a per-packet fold (any hop un-parks the packet).
     */
    std::vector<std::vector<std::uint32_t>> parked;
    /**
     * Max age in cycles (snapshot cycle minus last move) among the
     * parked packets at each switch; 0 where nothing is parked.
     */
    std::vector<std::vector<std::uint32_t>> parkedAge;
};

/** Fold @p trace forward through events with cycle <= @p cycle. */
QueueSnapshot queueSnapshot(const BinaryTrace &trace,
                            std::uint64_t cycle);

/** Per-stage heatmap rendering (iadm_tool snapshot). */
std::string printSnapshot(const QueueSnapshot &s);

} // namespace iadm::obs

#endif // IADM_OBS_INSPECTOR_HPP
