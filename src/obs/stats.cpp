#include "obs/stats.hpp"

#include <sstream>

#include "common/json_writer.hpp"
#include "common/logging.hpp"

namespace iadm::obs {

StatsRegistry::Entry &
StatsRegistry::emplace(std::string_view name, Type type)
{
    IADM_ASSERT(find(name) == nullptr,
                "duplicate stat name registered");
    Entry &e = entries_.emplace_back();
    e.name = std::string(name);
    e.type = type;
    return e;
}

void
StatsRegistry::counter(std::string_view name, std::uint64_t v)
{
    emplace(name, Type::Counter).counter = v;
}

void
StatsRegistry::scalar(std::string_view name, double v)
{
    emplace(name, Type::Scalar).scalar = v;
}

void
StatsRegistry::vector(std::string_view name,
                      std::vector<std::uint64_t> values)
{
    emplace(name, Type::Vector).values = std::move(values);
}

void
StatsRegistry::histogram(std::string_view name,
                         std::vector<std::uint64_t> buckets)
{
    emplace(name, Type::Histogram).values = std::move(buckets);
}

const StatsRegistry::Entry *
StatsRegistry::find(std::string_view name) const
{
    for (const Entry &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

void
StatsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const Entry &e : entries_) {
        w.key(e.name);
        switch (e.type) {
          case Type::Counter:
            w.value(e.counter);
            break;
          case Type::Scalar:
            w.value(e.scalar);
            break;
          case Type::Vector:
            w.beginArray();
            for (std::uint64_t v : e.values)
                w.value(v);
            w.endArray();
            break;
          case Type::Histogram:
            // Sparse [bucket, count] pairs, same shape as the sweep
            // report's latency_hist.
            w.beginArray();
            for (std::size_t b = 0; b != e.values.size(); ++b) {
                if (e.values[b] == 0)
                    continue;
                w.beginArray();
                w.value(static_cast<std::uint64_t>(b));
                w.value(e.values[b]);
                w.endArray();
            }
            w.endArray();
            break;
        }
    }
    w.endObject();
}

std::string
StatsRegistry::str() const
{
    std::ostringstream os;
    for (const Entry &e : entries_) {
        os << e.name;
        switch (e.type) {
          case Type::Counter:
            os << " " << e.counter;
            break;
          case Type::Scalar:
            os << " " << e.scalar;
            break;
          case Type::Vector:
            for (std::uint64_t v : e.values)
                os << " " << v;
            break;
          case Type::Histogram:
            for (std::size_t b = 0; b != e.values.size(); ++b) {
                if (e.values[b] != 0)
                    os << " " << b << ":" << e.values[b];
            }
            break;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace iadm::obs
