/**
 * @file
 * StatsRegistry: a named-counter/histogram registry in the gem5
 * spirit (matching common/logging.hpp's role for messages).
 *
 * Components export their counters under dotted hierarchical names
 * ("sim.delivered", "route_cache.hits", "sim.stalls_by_stage"), and
 * every consumer — sweep JSON, iadm_tool sim, future dashboards —
 * renders the one registry instead of hand-plumbing each new field
 * through every report writer.  Naming scheme and conventions are
 * documented in docs/OBSERVABILITY.md.
 *
 * The registry is a snapshot container: providers dump values into
 * it after a run (Metrics::exportStats, RouteCache::exportStats),
 * order of registration is preserved, and the JSON/text renderings
 * are deterministic — a registry built from deterministic metrics is
 * itself byte-stable, so sweep reports keep their reproducibility
 * guarantee with the stats section enabled.
 */

#ifndef IADM_OBS_STATS_HPP
#define IADM_OBS_STATS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iadm {
class JsonWriter;
}

namespace iadm::obs {

/** Ordered collection of named stats (see file header). */
class StatsRegistry
{
  public:
    enum class Type : std::uint8_t
    {
        Counter,   //!< one u64
        Scalar,    //!< one double
        Vector,    //!< u64 per index (e.g. per stage)
        Histogram, //!< u64 per bucket, rendered sparsely
    };

    struct Entry
    {
        std::string name;
        Type type = Type::Counter;
        std::uint64_t counter = 0;
        double scalar = 0.0;
        std::vector<std::uint64_t> values; //!< Vector / Histogram
    };

    /** Register one stat.  Names must be unique per registry. */
    void counter(std::string_view name, std::uint64_t v);
    void scalar(std::string_view name, double v);
    void vector(std::string_view name,
                std::vector<std::uint64_t> values);
    void histogram(std::string_view name,
                   std::vector<std::uint64_t> buckets);

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    const std::vector<Entry> &entries() const { return entries_; }

    /** Entry by exact name; nullptr when absent. */
    const Entry *find(std::string_view name) const;

    /**
     * Render as one JSON object, keys in registration order.
     * Histograms are emitted sparsely as [bucket, count] pairs (the
     * same convention as the sweep report's latency_hist).
     */
    void writeJson(JsonWriter &w) const;

    /** gem5-stats.txt-style "name value" lines, one per stat. */
    std::string str() const;

    void clear() { entries_.clear(); }

  private:
    std::vector<Entry> entries_;

    Entry &emplace(std::string_view name, Type type);
};

} // namespace iadm::obs

#endif // IADM_OBS_STATS_HPP
