#include "obs/steady_state.hpp"

#include <cmath>

namespace iadm::obs {

namespace {

struct SuffixStats
{
    double mean = 0;
    double var = 0; // population variance
};

/**
 * Mean/variance of windows[d..n-1] in one backward pass would need
 * O(n) storage anyway, so keep it simple: suffix sums of x and x^2
 * are computed incrementally by the caller.
 */
SuffixStats
suffixStats(double sum, double sum_sq, std::size_t count)
{
    SuffixStats s;
    const double n = static_cast<double>(count);
    s.mean = sum / n;
    const double v = sum_sq / n - s.mean * s.mean;
    s.var = v > 0 ? v : 0;
    return s;
}

} // namespace

SteadyStateTracker::Result
SteadyStateTracker::analyze() const
{
    Result r;
    r.windows = windows_.size();

    // Whole-run aggregates (latency weighted by deliveries: windows
    // have equal width, so throughput is proportional to deliveries).
    double tp_sum = 0;
    double lat_wsum = 0;
    for (const SteadyWindow &w : windows_) {
        tp_sum += w.throughput;
        lat_wsum += w.avgLatency * w.throughput;
    }
    if (!windows_.empty()) {
        r.wholeThroughput = tp_sum / static_cast<double>(r.windows);
        r.wholeAvgLatency = tp_sum > 0 ? lat_wsum / tp_sum : 0;
    }

    if (r.windows < kMinWindows) {
        r.steadyThroughput = r.wholeThroughput;
        r.steadyAvgLatency = r.wholeAvgLatency;
        return r;
    }

    // MSER: minimize SE(d) = sqrt(var(x_d..x_{n-1}) / (n - d)) over
    // d in [0, n/2].  Scan d from n/2 down to 0, growing suffix sums
    // as the retained prefix extends; ties prefer the smaller d
    // (delete less).
    const std::size_t n = r.windows;
    const std::size_t d_max = n / 2;
    double sum = 0;
    double sum_sq = 0;
    for (std::size_t i = n; i-- > d_max;) {
        const double x = windows_[i].throughput;
        sum += x;
        sum_sq += x * x;
    }
    std::size_t best_d = d_max;
    double best_se = suffixStats(sum, sum_sq, n - d_max).var
                     / static_cast<double>(n - d_max);
    for (std::size_t d = d_max; d-- > 0;) {
        const double x = windows_[d].throughput;
        sum += x;
        sum_sq += x * x;
        const double se = suffixStats(sum, sum_sq, n - d).var
                          / static_cast<double>(n - d);
        if (se <= best_se) {
            best_se = se;
            best_d = d;
        }
    }

    r.stable = true;
    r.truncatedWindows = best_d;
    double s_tp = 0;
    double s_lat = 0;
    for (std::size_t i = best_d; i < n; ++i) {
        s_tp += windows_[i].throughput;
        s_lat += windows_[i].avgLatency * windows_[i].throughput;
    }
    r.steadyThroughput = s_tp / static_cast<double>(n - best_d);
    r.steadyAvgLatency = s_tp > 0 ? s_lat / s_tp : 0;
    return r;
}

} // namespace iadm::obs
