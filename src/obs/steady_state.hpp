/**
 * @file
 * Steady-state detection over windowed time-series rollups.
 *
 * Long-horizon churn runs pollute whole-run averages with their
 * warmup transient: queues fill, the route cache warms, SSDT switch
 * states settle.  The tracker collects fixed-width windows of
 * (throughput, avg latency) and finds the truncation point with the
 * MSER rule (Marginal Standard Error Rule, the batch-means variant
 * of White's heuristic): choose the prefix-deletion point d that
 * minimizes the standard error of the retained suffix,
 *
 *     SE(d) = stddev(x_d .. x_{n-1}) / sqrt(n - d),
 *
 * restricted to the first half of the series so the rule cannot
 * "converge" by deleting almost everything.  Steady-state statistics
 * are then the aggregates over the retained windows, reported
 * separately from (never instead of) the whole-run numbers.
 *
 * The tracker is pure arithmetic over the window series — it knows
 * nothing about simulators or daemons, so the same code serves the
 * sweep's per-replicate rollups and any future online consumer.
 */

#ifndef IADM_OBS_STEADY_STATE_HPP
#define IADM_OBS_STEADY_STATE_HPP

#include <cstddef>
#include <vector>

namespace iadm::obs {

/** One rollup window's aggregates. */
struct SteadyWindow
{
    double throughput = 0; //!< deliveries per cycle in this window
    double avgLatency = 0; //!< mean delivery latency in this window
};

/** MSER warmup detector over a window series. */
class SteadyStateTracker
{
  public:
    /**
     * Below this many windows the MSER statistic is noise; analyze()
     * reports the whole-run aggregates with stable == false.
     */
    static constexpr std::size_t kMinWindows = 8;

    struct Result
    {
        /** True when enough windows exist for the MSER rule. */
        bool stable = false;
        std::size_t windows = 0;          //!< total windows collected
        std::size_t truncatedWindows = 0; //!< MSER deletion point d*
        double steadyThroughput = 0;  //!< mean over retained windows
        double steadyAvgLatency = 0;  //!< delivery-weighted mean
        double wholeThroughput = 0;   //!< mean over every window
        double wholeAvgLatency = 0;
    };

    void
    addWindow(double throughput, double avg_latency)
    {
        windows_.push_back({throughput, avg_latency});
    }

    std::size_t windowCount() const { return windows_.size(); }
    const std::vector<SteadyWindow> &windows() const
    {
        return windows_;
    }
    void clear() { windows_.clear(); }

    /** Run MSER over the throughput series collected so far. */
    Result analyze() const;

  private:
    std::vector<SteadyWindow> windows_;
};

} // namespace iadm::obs

#endif // IADM_OBS_STEADY_STATE_HPP
