/**
 * @file
 * The cycle-accurate trace record (src/obs observability layer).
 *
 * One TraceEvent is emitted per observable simulator action: packet
 * injection, every forward/backward hop, stalls, reroutes (Corollary
 * 4.1 flips and BACKTRACK rewrites), SSDT switch-state flips,
 * deliveries, drops and route-cache probes.  The record is a fixed
 * 24-byte POD so a sink is a flat ring of slots (no allocation, no
 * pointers) and the binary trace format is a straight memory image
 * (docs/OBSERVABILITY.md).
 *
 * The tag snapshot (tagDest/tagState) mirrors core::TsdtTag at the
 * moment of the event, truncated to 16 bits per word — the same
 * N <= 2^16 bound the simulator's in-packet path cache already
 * imposes (Packet::kMaxTracedStages).
 */

#ifndef IADM_OBS_TRACE_EVENT_HPP
#define IADM_OBS_TRACE_EVENT_HPP

#include <cstdint>
#include <type_traits>

#include "common/bits.hpp"

namespace iadm::obs {

/** What happened.  Values are frozen: they appear in binary traces. */
enum class EventKind : std::uint8_t
{
    Inject = 0,       //!< packet entered its stage-0 queue
    Hop = 1,          //!< forward move across one link
    Stall = 2,        //!< head packet could not move this cycle
    Reroute = 3,      //!< tag repair (Corollary 4.1 / BACKTRACK) or
                      //!< spare-link substitution
    BacktrackHop = 4, //!< one physical backward hop (dynamic TSDT)
    StateFlip = 5,    //!< an SSDT switch toggled C <-> Cbar
    Deliver = 6,      //!< packet left the output column
    Drop = 7,         //!< packet left the network undelivered
    CacheHit = 8,     //!< injection route resolved from the cache
    CacheMiss = 9,    //!< injection route computed and cached
    FaultDown = 10,   //!< a link went down (churn or transient);
                      //!< packet field is 0, sw/stage/link identify
                      //!< the link, aux is its destination switch
    FaultUp = 11,     //!< the link was repaired (same field layout)
};

/** Number of distinct EventKind values. */
inline constexpr unsigned kEventKinds = 12;

const char *eventKindName(EventKind k);

/** One observable simulator action.  Trivially copyable, 24 bytes. */
struct TraceEvent
{
    /** Drop/Inject flag: the packet never occupied a queue (it was
     *  refused at injection), so occupancy reconstruction must skip
     *  it. */
    static constexpr std::uint8_t kFlagNotEnqueued = 1;
    /** Drop flag: REROUTE/BACKTRACK proved no blockage-free path. */
    static constexpr std::uint8_t kFlagUnroutable = 2;

    /** Link field value when no link is involved in the event. */
    static constexpr std::uint8_t kNoLink = 0xff;

    std::uint64_t packet = 0;   //!< simulator packet id
    std::uint32_t cycle = 0;    //!< cycle the event happened
    std::uint16_t sw = 0;       //!< switch label at the event
    /**
     * Kind-specific companion value: destination switch for
     * Hop/Deliver/BacktrackHop, packet destination for
     * Inject/Drop/Cache*, state bits rewritten for Reroute, the new
     * state (0 = C, 1 = Cbar) for StateFlip.
     */
    std::uint16_t aux = 0;
    std::uint16_t tagDest = 0;  //!< tag snapshot: destination bits
    std::uint16_t tagState = 0; //!< tag snapshot: state bits
    EventKind kind = EventKind::Inject;
    std::uint8_t stage = 0;     //!< link stage of the event
    std::uint8_t link = kNoLink; //!< topo::LinkKind, or kNoLink
    std::uint8_t flags = 0;     //!< kFlagNotEnqueued | kFlagUnroutable
};

static_assert(sizeof(TraceEvent) == 24,
              "TraceEvent is a pinned binary-format record");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must be memcpy-safe (binary trace format)");

} // namespace iadm::obs

#endif // IADM_OBS_TRACE_EVENT_HPP
