#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "obs/trace_sink.hpp"

namespace iadm::obs {

namespace {

/** "IADMTRC1" as a little-endian u64. */
constexpr std::uint64_t kMagic = 0x3143525444414449ull;
constexpr std::uint32_t kBinaryVersion = 1;

/** Fixed binary header; sizeof must stay 48 (pinned format). */
struct BinaryHeader
{
    std::uint64_t magic = kMagic;
    std::uint32_t version = kBinaryVersion;
    std::uint32_t netSize = 0;
    std::uint32_t stages = 0;
    std::uint32_t reserved = 0;
    char scheme[16] = {}; //!< NUL-padded scheme name
    std::uint64_t count = 0;
};
static_assert(sizeof(BinaryHeader) == 48, "binary header is pinned");

/** Human label for the link byte of a trace record. */
const char *
linkName(std::uint8_t link)
{
    switch (link) {
      case 0: return "straight";
      case 1: return "plus";
      case 2: return "minus";
      default: return "none";
    }
}

/** True for kinds drawn as 1-cycle duration slices ("X" phase). */
bool
isSlice(EventKind k)
{
    return k == EventKind::Hop || k == EventKind::Stall ||
           k == EventKind::BacktrackHop || k == EventKind::Deliver;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 const TraceMeta &meta)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("otherData");
    w.beginObject();
    w.key("schema");
    w.value("iadm-trace-chrome-v1");
    w.key("net_size");
    w.value(static_cast<std::uint64_t>(meta.netSize));
    w.key("stages");
    w.value(meta.stages);
    w.key("scheme");
    w.value(meta.scheme);
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    // Name the single process track after the run.
    w.beginObject();
    w.key("name");
    w.value("process_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("args");
    w.beginObject();
    w.key("name");
    w.value("iadm-sim " + meta.scheme);
    w.endObject();
    w.endObject();

    for (const TraceEvent &e : events) {
        w.beginObject();
        w.key("name");
        if (e.kind == EventKind::Hop) {
            w.value(std::string("hop ") + linkName(e.link));
        } else {
            w.value(eventKindName(e.kind));
        }
        w.key("cat");
        w.value("stage" + std::to_string(e.stage));
        w.key("ph");
        w.value(isSlice(e.kind) ? "X" : "i");
        w.key("ts");
        w.value(static_cast<std::uint64_t>(e.cycle));
        if (isSlice(e.kind)) {
            w.key("dur");
            w.value(std::uint64_t{1});
        } else {
            w.key("s");
            w.value("t"); // thread-scoped instant
        }
        w.key("pid");
        w.value(std::uint64_t{1});
        w.key("tid");
        w.value(e.packet);
        w.key("args");
        w.beginObject();
        w.key("switch");
        w.value(static_cast<std::uint64_t>(e.sw));
        w.key("aux");
        w.value(static_cast<std::uint64_t>(e.aux));
        w.key("link");
        w.value(linkName(e.link));
        w.key("tag_dest");
        w.value(static_cast<std::uint64_t>(e.tagDest));
        w.key("tag_state");
        w.value(static_cast<std::uint64_t>(e.tagState));
        if (e.flags != 0) {
            w.key("flags");
            w.value(static_cast<std::uint64_t>(e.flags));
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    IADM_ASSERT(w.done(), "unterminated chrome trace document");
}

void
writeChromeTrace(std::ostream &os, const TraceSink &sink,
                 const TraceMeta &meta)
{
    writeChromeTrace(os, sink.snapshot(), meta);
}

void
writeBinaryTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 const TraceMeta &meta)
{
    BinaryHeader h;
    h.netSize = meta.netSize;
    h.stages = meta.stages;
    const std::size_t len =
        std::min(meta.scheme.size(), sizeof(h.scheme) - 1);
    std::memcpy(h.scheme, meta.scheme.data(), len);
    h.count = events.size();
    os.write(reinterpret_cast<const char *>(&h), sizeof h);
    os.write(reinterpret_cast<const char *>(events.data()),
             static_cast<std::streamsize>(events.size() *
                                          sizeof(TraceEvent)));
}

void
writeBinaryTrace(std::ostream &os, const TraceSink &sink,
                 const TraceMeta &meta)
{
    writeBinaryTrace(os, sink.snapshot(), meta);
}

std::optional<BinaryTrace>
readBinaryTrace(std::istream &is)
{
    BinaryHeader h;
    if (!is.read(reinterpret_cast<char *>(&h), sizeof h))
        return std::nullopt;
    if (h.magic != kMagic || h.version != kBinaryVersion)
        return std::nullopt;
    BinaryTrace out;
    out.meta.netSize = h.netSize;
    out.meta.stages = h.stages;
    std::size_t slen = 0;
    while (slen < sizeof h.scheme && h.scheme[slen] != '\0')
        ++slen;
    out.meta.scheme.assign(h.scheme, slen);
    out.events.resize(h.count);
    if (h.count != 0 &&
        !is.read(reinterpret_cast<char *>(out.events.data()),
                 static_cast<std::streamsize>(h.count *
                                              sizeof(TraceEvent))))
        return std::nullopt;
    return out;
}

} // namespace iadm::obs
