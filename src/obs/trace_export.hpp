/**
 * @file
 * Trace exporters: Chrome trace_event JSON and the compact binary
 * format (docs/OBSERVABILITY.md).
 *
 * Chrome export maps the trace onto the chrome://tracing / Perfetto
 * data model: packet id -> tid (one track per packet), stage ->
 * category, hops/stalls/deliveries as 1-cycle "X" slices, the
 * point-like events (inject, reroute, state-flip, cache probes,
 * drop) as "i" instants.  Timestamps are the raw cycle numbers (the
 * viewer's microseconds are our cycles).
 *
 * The binary format is a 48-byte header followed by the raw
 * TraceEvent array — a memory image, native-endian, intended for
 * same-machine round trips (iadm_tool snapshot), not archival.
 */

#ifndef IADM_OBS_TRACE_EXPORT_HPP
#define IADM_OBS_TRACE_EXPORT_HPP

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace iadm::obs {

class TraceSink;

/** Run context stamped into both export formats. */
struct TraceMeta
{
    Label netSize = 0;
    unsigned stages = 0;
    std::string scheme; //!< routing-scheme name (<= 15 chars kept)
};

/** Write the Chrome trace_event JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const TraceMeta &meta);

/** writeChromeTrace of everything a sink retains. */
void writeChromeTrace(std::ostream &os, const TraceSink &sink,
                      const TraceMeta &meta);

/** Write the compact binary trace (iadm-trace-bin v1). */
void writeBinaryTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const TraceMeta &meta);

void writeBinaryTrace(std::ostream &os, const TraceSink &sink,
                      const TraceMeta &meta);

/** A binary trace read back into memory. */
struct BinaryTrace
{
    TraceMeta meta;
    std::vector<TraceEvent> events;
};

/** Parse a binary trace; nullopt on bad magic/version/truncation. */
std::optional<BinaryTrace> readBinaryTrace(std::istream &is);

} // namespace iadm::obs

#endif // IADM_OBS_TRACE_EXPORT_HPP
