#include "obs/trace_sink.hpp"

#include "common/logging.hpp"

namespace iadm::obs {

namespace {

/** Smallest power of two >= max(v, 1). */
std::size_t
ringSlots(std::size_t v)
{
    std::size_t s = 1;
    while (s < v)
        s <<= 1;
    return s;
}

} // namespace

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Inject: return "inject";
      case EventKind::Hop: return "hop";
      case EventKind::Stall: return "stall";
      case EventKind::Reroute: return "reroute";
      case EventKind::BacktrackHop: return "backtrack-hop";
      case EventKind::StateFlip: return "state-flip";
      case EventKind::Deliver: return "deliver";
      case EventKind::Drop: return "drop";
      case EventKind::CacheHit: return "cache-hit";
      case EventKind::CacheMiss: return "cache-miss";
      case EventKind::FaultDown: return "fault-down";
      case EventKind::FaultUp: return "fault-up";
    }
    return "?";
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(ringSlots(capacity)), mask_(ring_.size() - 1)
{
    IADM_ASSERT(capacity > 0, "trace sink needs at least one slot");
}

void
TraceSink::record(EventKind kind, std::uint64_t packet,
                  std::uint64_t cycle, unsigned stage, Label sw,
                  std::uint8_t link, std::uint32_t aux,
                  std::uint32_t tag_dest, std::uint32_t tag_state,
                  std::uint8_t flags)
{
    TraceEvent &e = ring_[count_++ & mask_];
    e.packet = packet;
    e.cycle = static_cast<std::uint32_t>(cycle);
    e.sw = static_cast<std::uint16_t>(sw);
    e.aux = static_cast<std::uint16_t>(aux);
    e.tagDest = static_cast<std::uint16_t>(tag_dest);
    e.tagState = static_cast<std::uint16_t>(tag_state);
    e.kind = kind;
    e.stage = static_cast<std::uint8_t>(stage);
    e.link = link;
    e.flags = flags;
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest retained event first: the ring holds the last n writes,
    // starting at count_ - n.
    for (std::uint64_t i = count_ - n; i != count_; ++i)
        out.push_back(ring_[i & mask_]);
    return out;
}

RouteTraceContext &
routeTraceContext()
{
    thread_local RouteTraceContext ctx;
    return ctx;
}

} // namespace iadm::obs
