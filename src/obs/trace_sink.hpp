/**
 * @file
 * TraceSink: a per-owner, lock-free ring buffer of TraceEvents.
 *
 * Each simulator (or sweep replicate) owns exactly one sink — the
 * share-nothing design the sweep runner already uses for Metrics —
 * so recording is a plain store with no synchronization.  The ring
 * has power-of-two slots indexed by a free-running counter; when it
 * fills, the oldest events are overwritten (droppedOldest() says how
 * many), never the newest: the most recent window is what a
 * regression post-mortem needs.
 *
 * Two gates keep the simulator hot loop honest (docs/PERF.md):
 *
 *  - compile-time: the IADM_TRACE_EVENT macro below compiles to
 *    nothing unless the build defines IADM_TRACE (CMake option
 *    IADM_TRACE, ON by default; the trace-off preset turns it off);
 *  - runtime: instrumented code holds a TraceSink* that is null
 *    until a sink is attached.  The simulator's service loop is
 *    additionally specialized on traced-vs-not (one test per stage
 *    call selects an instantiation whose hooks folded away), so the
 *    compiled-in-but-disabled path costs <= 2% on the paired
 *    bench_hotpath ladder (see --trace-overhead).
 *
 * routeTraceContext() is the bridge into core::rerouteCore — the
 * algorithmic layer cannot depend on the simulator, so the simulator
 * parks (sink, packet, cycle) in a thread-local slot around each
 * injection-time REROUTE call and reroute.cpp emits Reroute events
 * through it.
 *
 * The single-owner contract also interacts with intra-simulation
 * sharding (SimConfig::shards): a sink's event order is defined to
 * be the serial service order, and recording is an unsynchronized
 * store, so a simulator with an attached sink pins itself to the
 * serial step — sharded execution resumes when the sink is
 * detached.  See docs/SIMULATOR.md "Intra-simulation sharding".
 */

#ifndef IADM_OBS_TRACE_SINK_HPP
#define IADM_OBS_TRACE_SINK_HPP

#include <cstdint>
#include <vector>

#include "obs/trace_event.hpp"

namespace iadm::obs {

/** True when this build compiled the trace hooks in. */
constexpr bool
traceCompiledIn()
{
#if IADM_TRACE
    return true;
#else
    return false;
#endif
}

/** Fixed-capacity ring buffer of TraceEvents (one owner, no locks). */
class TraceSink
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1}
                                                    << 20;

    explicit TraceSink(std::size_t capacity = kDefaultCapacity);

    /**
     * Record one event (overwrites the oldest slot when full).
     *
     * Deliberately out of line and cold: the hook macro inlines only
     * a null test at each instrumented site, so a
     * compiled-in-but-disabled build pays one branch, not the
     * I-cache and register-pressure cost of an inlined slot write at
     * every hook (measured in docs/PERF.md).  When tracing is on,
     * one call per recorded event is noise next to the slot write.
     */
    __attribute__((noinline, cold)) void
    record(EventKind kind, std::uint64_t packet, std::uint64_t cycle,
           unsigned stage, Label sw, std::uint8_t link,
           std::uint32_t aux, std::uint32_t tag_dest,
           std::uint32_t tag_state, std::uint8_t flags = 0);

    void push(const TraceEvent &e) { ring_[count_++ & mask_] = e; }

    /** Events currently retained (<= capacity()). */
    std::size_t
    size() const
    {
        return count_ < ring_.size() ? static_cast<std::size_t>(count_)
                                     : ring_.size();
    }

    /** Ring slots (power of two >= the requested capacity). */
    std::size_t capacity() const { return ring_.size(); }

    /** Total events ever recorded, including overwritten ones. */
    std::uint64_t recorded() const { return count_; }

    /** Events lost to ring wrap (oldest-first eviction). */
    std::uint64_t
    droppedOldest() const
    {
        return count_ - size();
    }

    /** Retained events in chronological order (oldest first). */
    std::vector<TraceEvent> snapshot() const;

    /** Forget every event (capacity unchanged). */
    void clear() { count_ = 0; }

  private:
    std::vector<TraceEvent> ring_;
    std::uint64_t count_ = 0; //!< free-running write index
    std::uint64_t mask_ = 0;
};

/**
 * Thread-local bridge for instrumenting core::rerouteCore (which
 * must stay simulator-agnostic): the caller that is about to run
 * REROUTE on behalf of a packet fills this in, reroute.cpp emits
 * through it, and the caller clears it afterwards.  Null sink means
 * no tracing.
 */
struct RouteTraceContext
{
    TraceSink *sink = nullptr;
    std::uint64_t packet = 0;
    std::uint64_t cycle = 0;
};

RouteTraceContext &routeTraceContext();

} // namespace iadm::obs

/**
 * Hot-path event hook: compiles to nothing without IADM_TRACE; with
 * it, a null-pointer test guards the record call (arguments are not
 * evaluated when the sink is detached).
 */
#if IADM_TRACE
// The -Wnonnull suppression covers sites where the sink expression
// is a compile-time nullptr (the simulator's untraced service-loop
// instantiation): the guard makes the call unreachable, but the
// warning pass runs before dead-code elimination sees that.
#define IADM_TRACE_EVENT(sink, ...) \
    do { \
        _Pragma("GCC diagnostic push") \
        _Pragma("GCC diagnostic ignored \"-Wnonnull\"") \
        if (__builtin_expect((sink) != nullptr, 0)) \
            (sink)->record(__VA_ARGS__); \
        _Pragma("GCC diagnostic pop") \
    } while (0)
#else
#define IADM_TRACE_EVENT(sink, ...) ((void)0)
#endif

#endif // IADM_OBS_TRACE_SINK_HPP
