#include "perm/admissibility.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace iadm::perm {

namespace {

/**
 * Generic conflict check: advance all N message positions with
 * @p next_hop(stage, position, dest) and verify bijectivity after
 * every stage.
 */
template <typename NextHop>
bool
conflictFree(const Permutation &p, unsigned n_stages,
             NextHop &&next_hop)
{
    const Label n_size = p.size();
    std::vector<Label> pos(n_size);
    for (Label u = 0; u < n_size; ++u)
        pos[u] = u;
    std::vector<bool> used(n_size);
    for (unsigned i = 0; i < n_stages; ++i) {
        used.assign(n_size, false);
        for (Label u = 0; u < n_size; ++u) {
            pos[u] = next_hop(i, pos[u], p(u));
            if (used[pos[u]])
                return false;
            used[pos[u]] = true;
        }
    }
    for (Label u = 0; u < n_size; ++u)
        IADM_ASSERT(pos[u] == p(u), "tag routing missed destination");
    return true;
}

} // namespace

bool
isICubeAdmissible(const Permutation &p)
{
    const unsigned n = log2Floor(p.size());
    return conflictFree(p, n, [](unsigned i, Label at, Label dest) {
        return static_cast<Label>(withBit(at, i, bit(dest, i)));
    });
}

bool
isOmegaAdmissible(const Permutation &p)
{
    const topo::OmegaTopology omega(p.size());
    return conflictFree(
        p, omega.stages(),
        [&](unsigned i, Label at, Label dest) {
            return omega.nextHop(i, at, dest);
        });
}

bool
isGeneralizedCubeAdmissible(const Permutation &p)
{
    const topo::GeneralizedCubeTopology gc(p.size());
    return conflictFree(
        p, gc.stages(),
        [&](unsigned i, Label at, Label dest) {
            return gc.nextHop(i, at, dest);
        });
}

bool
passableViaSubgraph(const Permutation &p, Label x)
{
    // Physical routing through the offset-x cube subgraph is the
    // logical (translated) permutation routed through an ICube.
    return isICubeAdmissible(p.translated(x));
}

std::vector<Label>
passingOffsets(const Permutation &p)
{
    std::vector<Label> out;
    for (Label x = 0; x < p.size(); ++x)
        if (passableViaSubgraph(p, x))
            out.push_back(x);
    return out;
}

std::optional<Label>
findPassingOffset(const Permutation &p)
{
    for (Label x = 0; x < p.size(); ++x)
        if (passableViaSubgraph(p, x))
            return x;
    return std::nullopt;
}

bool
pathsSwitchDisjoint(const std::vector<core::Path> &paths)
{
    if (paths.empty())
        return true;
    const unsigned n = paths.front().length();
    Label max_label = 0;
    for (const core::Path &p : paths)
        for (unsigned i = 0; i <= n; ++i)
            max_label = std::max(max_label, p.switchAt(i));
    std::vector<bool> used(max_label + 1);
    for (unsigned i = 1; i <= n; ++i) {
        used.assign(max_label + 1, false);
        for (const core::Path &p : paths) {
            const Label j = p.switchAt(i);
            if (used[j])
                return false;
            used[j] = true;
        }
    }
    return true;
}

} // namespace iadm::perm
