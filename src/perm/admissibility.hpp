/**
 * @file
 * Permutation admissibility for cube-type networks and the IADM
 * (Section 6).
 *
 * A permutation is ICube-admissible when destination-tag routing of
 * all N messages simultaneously is conflict-free: after every stage
 * the message positions are still a bijection (each switch handles
 * exactly one message).  Because the IADM switch connects only one
 * of its inputs to its outputs, one-pass IADM permutation routing
 * needs switch-disjoint paths, and a cube subgraph with offset x
 * passes permutation pi exactly when the translated permutation
 * u -> pi(u - x) + x is ICube-admissible.
 */

#ifndef IADM_PERM_ADMISSIBILITY_HPP
#define IADM_PERM_ADMISSIBILITY_HPP

#include <optional>
#include <vector>

#include "perm/permutation.hpp"
#include "subgraph/cube_subgraph.hpp"
#include "topology/cube_family.hpp"
#include "topology/icube.hpp"

namespace iadm::perm {

/** True iff @p p routes conflict-free through the ICube network. */
bool isICubeAdmissible(const Permutation &p);

/** Conflict-free through the Omega network (destination tags). */
bool isOmegaAdmissible(const Permutation &p);

/** Conflict-free through the Generalized Cube (destination tags). */
bool isGeneralizedCubeAdmissible(const Permutation &p);

/**
 * True iff the cube subgraph with offset @p x passes @p p in one
 * conflict-free pass of the IADM network.
 */
bool passableViaSubgraph(const Permutation &p, Label x);

/**
 * The offsets x for which @p p is passable; Section 6 shows the set
 * of IADM-passable permutations contains every cube-admissible
 * permutation plus its +x translates, 0 <= x < N/2 (offsets x and
 * x + N/2 route identically).
 */
std::vector<Label> passingOffsets(const Permutation &p);

/** First passing offset, if any. */
std::optional<Label> findPassingOffset(const Permutation &p);

/**
 * Switch-disjointness check for explicit IADM paths: true iff at
 * every stage all N messages occupy distinct switches.
 */
bool pathsSwitchDisjoint(const std::vector<core::Path> &paths);

} // namespace iadm::perm

#endif // IADM_PERM_ADMISSIBILITY_HPP
