#include "perm/multipass.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/oracle.hpp"
#include "perm/perm_router.hpp"

namespace iadm::perm {

namespace {

/** Remove a switch from the layered graph by blocking its inputs. */
void
occupySwitch(const topo::IadmTopology &topo, fault::FaultSet &occ,
             unsigned stage, Label j)
{
    if (stage == 0)
        return; // sources are distinct by construction
    for (const topo::Link &l : topo.inLinks(stage, j))
        occ.blockLink(l);
}

} // namespace

MultipassResult
routeInPasses(const topo::IadmTopology &topo, const Permutation &p,
              const fault::FaultSet &faults)
{
    IADM_ASSERT(p.size() == topo.size(), "permutation size mismatch");
    MultipassResult res;

    std::vector<Label> pending;
    for (Label s = 0; s < p.size(); ++s)
        pending.push_back(s);

    // Fast path: one conflict-free pass via a cube subgraph (the
    // subgraph router's last-stage sign masks support N <= 64).
    if (topo.size() <= 64) {
        const auto one = routePermutation(topo, p, faults);
        if (one.ok) {
            Wave w;
            w.sources = pending;
            w.paths = one.paths;
            res.waves.push_back(std::move(w));
            res.ok = true;
            return res;
        }
    }

    // Greedy packing: each pass claims switch-disjoint BFS paths
    // through the switches no earlier message of the pass occupies.
    const unsigned guard = 4 * topo.size();
    while (!pending.empty()) {
        if (res.waves.size() >= guard)
            IADM_PANIC("multipass scheduler failed to converge");
        Wave wave;
        fault::FaultSet occupied = faults;
        std::vector<Label> next_pending;
        for (Label s : pending) {
            const auto path =
                core::oracleFindPath(topo, occupied, s, p(s));
            if (!path) {
                next_pending.push_back(s);
                continue;
            }
            for (unsigned i = 1; i <= topo.stages(); ++i)
                occupySwitch(topo, occupied, i, path->switchAt(i));
            wave.sources.push_back(s);
            wave.paths.push_back(*path);
        }
        if (wave.sources.empty()) {
            // No remaining message is routable even alone: the
            // faults disconnect some pair.
            res.ok = false;
            return res;
        }
        res.waves.push_back(std::move(wave));
        pending = std::move(next_pending);
    }
    res.ok = true;
    return res;
}

} // namespace iadm::perm
