/**
 * @file
 * Multi-pass permutation routing.
 *
 * Permutations outside the cube-admissible (+translate) set cannot
 * cross the IADM in one conflict-free pass (each switch connects
 * only one input at a time).  This scheduler partitions an
 * arbitrary permutation into waves: the first wave tries the
 * Section 6 cube-subgraph route; remaining messages are packed
 * greedily, each new message claiming the switch-disjoint path the
 * BFS oracle finds through the yet-unoccupied switches.
 */

#ifndef IADM_PERM_MULTIPASS_HPP
#define IADM_PERM_MULTIPASS_HPP

#include <vector>

#include "fault/fault_set.hpp"
#include "perm/admissibility.hpp"

namespace iadm::perm {

/** One scheduled wave: switch-disjoint messages routed together. */
struct Wave
{
    std::vector<Label> sources;        //!< senders active this pass
    std::vector<core::Path> paths;     //!< their disjoint paths
};

/** Outcome of multi-pass scheduling. */
struct MultipassResult
{
    bool ok = false;           //!< every message scheduled
    std::vector<Wave> waves;   //!< passes in order
    unsigned passes() const
    {
        return static_cast<unsigned>(waves.size());
    }
};

/**
 * Schedule @p p through @p topo in as few greedy passes as
 * possible, avoiding the blocked links of @p faults.  Fails only if
 * some individual pair is disconnected by the faults.
 */
MultipassResult routeInPasses(const topo::IadmTopology &topo,
                              const Permutation &p,
                              const fault::FaultSet &faults = {});

} // namespace iadm::perm

#endif // IADM_PERM_MULTIPASS_HPP
