#include "perm/one_pass.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "core/oracle.hpp"
#include "perm/admissibility.hpp"

namespace iadm::perm {

namespace {

/** One message's candidate paths, deduplicated by switch trace. */
struct Candidate
{
    Label source;
    std::vector<core::Path> paths;
};

/** DFS over sources assigning switch-disjoint paths. */
bool
assign(const std::vector<Candidate> &cands, std::size_t idx,
       std::vector<std::uint64_t> &occupied,
       std::vector<const core::Path *> &chosen)
{
    if (idx == cands.size())
        return true;
    const unsigned n =
        static_cast<unsigned>(occupied.size()); // stages 1..n
    for (const core::Path &p : cands[idx].paths) {
        bool free = true;
        for (unsigned i = 1; i <= n && free; ++i)
            free = !((occupied[i - 1] >> p.switchAt(i)) & 1u);
        if (!free)
            continue;
        for (unsigned i = 1; i <= n; ++i)
            occupied[i - 1] |= std::uint64_t{1} << p.switchAt(i);
        chosen[idx] = &p;
        if (assign(cands, idx + 1, occupied, chosen))
            return true;
        for (unsigned i = 1; i <= n; ++i)
            occupied[i - 1] &=
                ~(std::uint64_t{1} << p.switchAt(i));
    }
    return false;
}

} // namespace

std::optional<std::vector<core::Path>>
onePassWitness(const topo::IadmTopology &topo, const Permutation &p)
{
    IADM_ASSERT(topo.size() <= 64,
                "occupancy bitmasks support N <= 64");
    IADM_ASSERT(p.size() == topo.size(), "size mismatch");
    const unsigned n = topo.stages();

    std::vector<Candidate> cands;
    for (Label s = 0; s < topo.size(); ++s) {
        Candidate c;
        c.source = s;
        for (core::Path &path : core::oracleAllPaths(topo, s, p(s))) {
            // Paths differing only in the +-2^{n-1} physical link
            // occupy the same switches; keep one representative.
            bool dup = false;
            for (const core::Path &q : c.paths) {
                bool same = true;
                for (unsigned i = 0; i <= n && same; ++i)
                    same = q.switchAt(i) == path.switchAt(i);
                dup |= same;
            }
            if (!dup)
                c.paths.push_back(std::move(path));
        }
        cands.push_back(std::move(c));
    }
    // Fewest-alternatives-first ordering sharpens the search.
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.paths.size() < b.paths.size();
              });

    std::vector<std::uint64_t> occupied(n, 0);
    std::vector<const core::Path *> chosen(cands.size(), nullptr);
    if (!assign(cands, 0, occupied, chosen))
        return std::nullopt;

    // Reorder the witness by source label.
    std::vector<core::Path> result(topo.size());
    for (std::size_t k = 0; k < cands.size(); ++k)
        result[cands[k].source] = *chosen[k];
    return result;
}

bool
onePassPassable(const topo::IadmTopology &topo, const Permutation &p)
{
    return onePassWitness(topo, p).has_value();
}

OnePassCensus
onePassCensus(Label n_size)
{
    IADM_ASSERT(n_size <= 8, "census enumerates N! permutations");
    const topo::IadmTopology topo(n_size);
    OnePassCensus census;
    std::vector<Label> images(n_size);
    std::iota(images.begin(), images.end(), Label{0});
    do {
        const Permutation p{std::vector<Label>(images)};
        ++census.permutations;
        const bool via_subgraph =
            findPassingOffset(p).has_value();
        census.viaSubgraph += via_subgraph;
        // Subgraph passability implies exact passability; only the
        // rest need the search.
        if (via_subgraph || onePassPassable(topo, p))
            ++census.exactlyPassable;
    } while (std::next_permutation(images.begin(), images.end()));
    return census;
}

} // namespace iadm::perm
