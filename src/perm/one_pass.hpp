/**
 * @file
 * Exact one-pass permutation passability for the IADM network.
 *
 * A permutation crosses the IADM in one pass iff there is a family
 * of pairwise switch-disjoint routing paths, one per message (each
 * switch connects only one input at a time).  The Section 6 cube-
 * subgraph test is sufficient but not necessary: this module
 * decides the property exactly by backtracking over each message's
 * redundant paths — the question [19] (Varma & Raghavendra, "On
 * Permutations Passable by the Gamma Network") studies for the
 * topologically identical Gamma network.
 */

#ifndef IADM_PERM_ONE_PASS_HPP
#define IADM_PERM_ONE_PASS_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "perm/permutation.hpp"
#include "topology/iadm.hpp"
#include "core/path.hpp"

namespace iadm::perm {

/**
 * Decide exactly whether @p p is one-pass passable, returning a
 * witness family of switch-disjoint paths when it is.  Exponential
 * worst case; intended for N <= 16.
 */
std::optional<std::vector<core::Path>> onePassWitness(
    const topo::IadmTopology &topo, const Permutation &p);

/** Convenience boolean form. */
bool onePassPassable(const topo::IadmTopology &topo,
                     const Permutation &p);

/** Census over every permutation of N elements (N <= 8). */
struct OnePassCensus
{
    std::uint64_t permutations = 0;     //!< N!
    std::uint64_t viaSubgraph = 0;      //!< Section 6 sufficient set
    std::uint64_t exactlyPassable = 0;  //!< true one-pass set
};

OnePassCensus onePassCensus(Label n_size);

} // namespace iadm::perm

#endif // IADM_PERM_ONE_PASS_HPP
