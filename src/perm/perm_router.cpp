#include "perm/perm_router.hpp"

#include "common/logging.hpp"

namespace iadm::perm {

PermRouteResult
routePermutation(const topo::IadmTopology &topo, const Permutation &p,
                 const fault::FaultSet &faults)
{
    IADM_ASSERT(p.size() == topo.size(), "permutation size mismatch");
    IADM_ASSERT(topo.size() <= 64,
                "last-stage sign mask limited to N <= 64");
    PermRouteResult res;

    for (Label x : subgraph::viableOffsets(topo, faults)) {
        ++res.offsetsTried;
        if (!passableViaSubgraph(p, x))
            continue;
        // Build the subgraph with last-stage signs that avoid the
        // faults (per-switch free choice).
        std::uint64_t minus_mask = 0;
        const unsigned last = topo.stages() - 1;
        bool ok = true;
        for (Label j = 0; ok && j < topo.size(); ++j) {
            if (faults.isBlocked(topo.straightLink(last, j))) {
                ok = false;
                break;
            }
            const bool plus_ok =
                !faults.isBlocked(topo.plusLink(last, j));
            const bool minus_ok =
                !faults.isBlocked(topo.minusLink(last, j));
            if (!plus_ok && !minus_ok)
                ok = false;
            else if (!plus_ok)
                minus_mask |= std::uint64_t{1} << j;
        }
        if (!ok)
            continue;

        const subgraph::CubeSubgraph g(topo, x, minus_mask);
        std::vector<core::Path> paths;
        paths.reserve(topo.size());
        for (Label s = 0; s < topo.size(); ++s)
            paths.push_back(g.route(s, p(s)));
        IADM_ASSERT(pathsSwitchDisjoint(paths),
                    "admissible permutation produced a conflict");
        res.ok = true;
        res.offset = x;
        res.paths = std::move(paths);
        return res;
    }
    return res;
}

PermRouteResult
routePermutation(const topo::IadmTopology &topo, const Permutation &p)
{
    return routePermutation(topo, p, fault::FaultSet{});
}

} // namespace iadm::perm
