/**
 * @file
 * One-pass permutation routing in the IADM network (Section 6).
 *
 * Strategy: find a cube subgraph (relabeling offset) that passes the
 * permutation conflict-free; under nonstraight-link faults, restrict
 * the search to subgraphs that avoid the faulty links (the paper's
 * reconfiguration application).  The router reports the chosen
 * subgraph and the N switch-disjoint paths.
 */

#ifndef IADM_PERM_PERM_ROUTER_HPP
#define IADM_PERM_PERM_ROUTER_HPP

#include <optional>
#include <vector>

#include "fault/fault_set.hpp"
#include "perm/admissibility.hpp"
#include "subgraph/reconfigure.hpp"

namespace iadm::perm {

/** Outcome of a one-pass permutation routing attempt. */
struct PermRouteResult
{
    bool ok = false;
    Label offset = 0;                 //!< the relabeling used
    std::vector<core::Path> paths;    //!< one per source, disjoint
    unsigned offsetsTried = 0;
};

/**
 * Route @p p through @p topo in one pass via a cube subgraph whose
 * links all avoid @p faults.  Returns failure when no constructive
 * family member both avoids the faults and passes the permutation.
 */
PermRouteResult routePermutation(const topo::IadmTopology &topo,
                                 const Permutation &p,
                                 const fault::FaultSet &faults);

/** Fault-free convenience overload. */
PermRouteResult routePermutation(const topo::IadmTopology &topo,
                                 const Permutation &p);

} // namespace iadm::perm

#endif // IADM_PERM_PERM_ROUTER_HPP
