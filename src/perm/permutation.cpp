#include "perm/permutation.hpp"

#include <numeric>
#include <sstream>

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::perm {

Permutation::Permutation(Label n_size) : images_(n_size)
{
    IADM_ASSERT(isPowerOfTwo(n_size), "bad permutation size");
    std::iota(images_.begin(), images_.end(), Label{0});
}

Permutation::Permutation(std::vector<Label> images)
    : images_(std::move(images))
{
    std::vector<bool> seen(images_.size(), false);
    for (Label v : images_) {
        IADM_ASSERT(v < images_.size(), "image out of range");
        IADM_ASSERT(!seen[v], "not a bijection");
        seen[v] = true;
    }
}

Permutation
Permutation::inverse() const
{
    std::vector<Label> inv(images_.size());
    for (Label u = 0; u < images_.size(); ++u)
        inv[images_[u]] = u;
    return Permutation(std::move(inv));
}

Permutation
Permutation::compose(const Permutation &g) const
{
    IADM_ASSERT(size() == g.size(), "size mismatch");
    std::vector<Label> out(images_.size());
    for (Label u = 0; u < images_.size(); ++u)
        out[u] = images_[g(u)];
    return Permutation(std::move(out));
}

Permutation
Permutation::translated(Label x) const
{
    const Label n = size();
    std::vector<Label> out(n);
    for (Label u = 0; u < n; ++u)
        out[u] = modAdd(images_[modSub(u, x, n)], x, n);
    return Permutation(std::move(out));
}

bool
Permutation::isIdentity() const
{
    for (Label u = 0; u < images_.size(); ++u)
        if (images_[u] != u)
            return false;
    return true;
}

std::string
Permutation::str() const
{
    std::ostringstream os;
    os << "[";
    for (Label u = 0; u < images_.size(); ++u)
        os << (u ? " " : "") << images_[u];
    os << "]";
    return os.str();
}

Permutation
shiftPerm(Label n_size, Label x)
{
    std::vector<Label> out(n_size);
    for (Label u = 0; u < n_size; ++u)
        out[u] = modAdd(u, x, n_size);
    return Permutation(std::move(out));
}

Permutation
bitReversalPerm(Label n_size)
{
    const unsigned n = log2Floor(n_size);
    std::vector<Label> out(n_size);
    for (Label u = 0; u < n_size; ++u)
        out[u] = static_cast<Label>(reverseBits(u, n));
    return Permutation(std::move(out));
}

Permutation
bitComplementPerm(Label n_size, Label mask)
{
    IADM_ASSERT(mask < n_size, "mask out of range");
    std::vector<Label> out(n_size);
    for (Label u = 0; u < n_size; ++u)
        out[u] = u ^ mask;
    return Permutation(std::move(out));
}

Permutation
perfectShufflePerm(Label n_size)
{
    const unsigned n = log2Floor(n_size);
    std::vector<Label> out(n_size);
    for (Label u = 0; u < n_size; ++u)
        out[u] = static_cast<Label>(((u << 1) | bit(u, n - 1)) &
                                    lowMask(n));
    return Permutation(std::move(out));
}

Permutation
exchangePerm(Label n_size, unsigned k)
{
    IADM_ASSERT((Label{1} << k) < n_size, "dimension out of range");
    std::vector<Label> out(n_size);
    for (Label u = 0; u < n_size; ++u)
        out[u] = static_cast<Label>(flipBit(u, k));
    return Permutation(std::move(out));
}

Permutation
bpcPerm(Label n_size, const std::vector<unsigned> &bit_map,
        Label complement_mask)
{
    const unsigned n = log2Floor(n_size);
    IADM_ASSERT(bit_map.size() == n, "bit map size mismatch");
    std::vector<Label> out(n_size);
    for (Label u = 0; u < n_size; ++u) {
        Label v = 0;
        for (unsigned i = 0; i < n; ++i)
            v = static_cast<Label>(withBit(v, i, bit(u, bit_map[i])));
        out[u] = v ^ complement_mask;
    }
    return Permutation(std::move(out));
}

Permutation
transposePerm(Label n_size)
{
    const unsigned n = log2Floor(n_size);
    IADM_ASSERT(n % 2 == 0, "transpose needs an even bit count");
    std::vector<Label> out(n_size);
    const unsigned h = n / 2;
    for (Label u = 0; u < n_size; ++u) {
        const Label lo = u & static_cast<Label>(lowMask(h));
        const Label hi = u >> h;
        out[u] = static_cast<Label>((lo << h) | hi);
    }
    return Permutation(std::move(out));
}

Permutation
randomPerm(Label n_size, Rng &rng)
{
    std::vector<Label> out(n_size);
    std::iota(out.begin(), out.end(), Label{0});
    rng.shuffle(out);
    return Permutation(std::move(out));
}

} // namespace iadm::perm
