/**
 * @file
 * Permutations of network addresses and standard generator families
 * used in permutation-routing experiments (Section 6).
 */

#ifndef IADM_PERM_PERMUTATION_HPP
#define IADM_PERM_PERMUTATION_HPP

#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace iadm::perm {

/** A bijection on {0..N-1}; element i maps source i to perm[i]. */
class Permutation
{
  public:
    /** Identity permutation on @p n_size elements. */
    explicit Permutation(Label n_size);

    /** From an explicit image table (validated). */
    explicit Permutation(std::vector<Label> images);

    Label size() const
    {
        return static_cast<Label>(images_.size());
    }

    /** Image of @p u. */
    Label operator()(Label u) const { return images_[u]; }

    /** The inverse permutation. */
    Permutation inverse() const;

    /** this after other: (compose(g))(u) = this(g(u)). */
    Permutation compose(const Permutation &g) const;

    /**
     * The +x translate of Section 6: u -> perm(u - x) + x (mod N),
     * the form in which cube-admissible permutations transfer to
     * relabeled cube subgraphs.
     */
    Permutation translated(Label x) const;

    bool isIdentity() const;

    std::string str() const;

    friend bool
    operator==(const Permutation &a, const Permutation &b)
    {
        return a.images_ == b.images_;
    }

  private:
    std::vector<Label> images_;
};

/** u -> (u + x) mod N (uniform shift). */
Permutation shiftPerm(Label n_size, Label x);

/** u -> u with its n-bit label reversed. */
Permutation bitReversalPerm(Label n_size);

/** u -> u ^ mask (bit complement family). */
Permutation bitComplementPerm(Label n_size, Label mask);

/** u -> left-rotate of the n-bit label (perfect shuffle). */
Permutation perfectShufflePerm(Label n_size);

/** u -> u ^ 2^k (exchange along one cube dimension). */
Permutation exchangePerm(Label n_size, unsigned k);

/**
 * Bit-permute-complement: output bit i = input bit bit_map[i],
 * xored with bit i of @p complement_mask.  BPC permutations are a
 * classic benchmark family for cube networks.
 */
Permutation bpcPerm(Label n_size, const std::vector<unsigned> &bit_map,
                    Label complement_mask);

/** Matrix transpose (swap label halves); n must be even. */
Permutation transposePerm(Label n_size);

/** Uniformly random permutation. */
Permutation randomPerm(Label n_size, Rng &rng);

} // namespace iadm::perm

#endif // IADM_PERM_PERMUTATION_HPP
