#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace iadm::serve {

namespace {

/** Longest tolerated request line; longer input is a bad client. */
constexpr std::size_t kMaxLine = 1 << 16;

/** read() chunk size. */
constexpr std::size_t kReadChunk = 1 << 16;

bool
setNonBlocking(int fd)
{
    const int fl = fcntl(fd, F_GETFL, 0);
    return fl >= 0 && fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0;
}

} // namespace

RouteServer::RouteServer(ServerCore &core, std::string path)
    : core_(core), path_(std::move(path))
{
}

RouteServer::~RouteServer()
{
    closeAll();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(path_.c_str());
    }
    for (const int fd : wakeFd_)
        if (fd >= 0)
            ::close(fd);
}

bool
RouteServer::start(std::string *err)
{
    const auto fail = [err](const std::string &what) {
        if (err)
            *err = what + ": " + std::strerror(errno);
        return false;
    };

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + path_;
        return false;
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    ::unlink(path_.c_str()); // stale socket from a dead daemon
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + path_);
    if (::listen(listenFd_, 64) != 0)
        return fail("listen");
    if (!setNonBlocking(listenFd_))
        return fail("fcntl");
    if (::pipe(wakeFd_) != 0)
        return fail("pipe");
    setNonBlocking(wakeFd_[0]);
    setNonBlocking(wakeFd_[1]);
    return true;
}

void
RouteServer::stop()
{
    stopping_.store(true, std::memory_order_release);
    // A byte on the self-pipe interrupts a parked poll(); the
    // write can only fail when the pipe is already full of wakeups,
    // which serves the same purpose.
    const char b = 0;
    [[maybe_unused]] const auto n = ::write(wakeFd_[1], &b, 1);
}

void
RouteServer::closeConn(Conn &c)
{
    if (c.fd >= 0)
        ::close(c.fd);
    c.fd = -1;
}

void
RouteServer::closeAll()
{
    for (auto &c : conns_)
        closeConn(c);
    conns_.clear();
}

bool
RouteServer::drainInput(Conn &c)
{
    char buf[kReadChunk];
    for (;;) {
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.size() > kMaxLine &&
                c.in.find('\n') == std::string::npos)
                return false; // unbounded line: protect the daemon
            if (static_cast<std::size_t>(n) < sizeof(buf))
                return true; // short read: nothing more for now
            continue;
        }
        if (n == 0) {
            // Peer closed its write side: serve what is already
            // buffered, flush, then close.
            c.closing = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        return errno == EINTR; // retry next round; real error closes
    }
}

bool
RouteServer::flushOutput(Conn &c)
{
    while (c.outOff < c.out.size()) {
        const ssize_t n =
            ::send(c.fd, c.out.data() + c.outOff,
                   c.out.size() - c.outOff, MSG_NOSIGNAL);
        if (n > 0) {
            c.outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break; // socket buffer full; POLLOUT resumes us
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (c.outOff == c.out.size()) {
        c.out.clear();
        c.outOff = 0;
    } else if (c.outOff > kReadChunk) {
        // Keep the pending tail compact so a slow reader cannot
        // pin an ever-growing buffer prefix.
        c.out.erase(0, c.outOff);
        c.outOff = 0;
    }
    return true;
}

void
RouteServer::run()
{
    const bool batching = core_.config().batching;

    // Batch scratch, reused across rounds.
    std::vector<Request> reqs;
    std::vector<std::size_t> reqConn; //!< conns_ index per request
    std::string batchOut;
    std::vector<ServerCore::Extent> extents;

    bool shutdown = false;
    while (!shutdown && !stopping_.load(std::memory_order_acquire)) {
        std::vector<pollfd> pfds;
        pfds.push_back({wakeFd_[0], POLLIN, 0});
        pfds.push_back({listenFd_, POLLIN, 0});
        for (const auto &c : conns_) {
            short ev = POLLIN;
            if (c.outOff < c.out.size())
                ev |= POLLOUT;
            pfds.push_back({c.fd, ev, 0});
        }

        if (::poll(pfds.data(), pfds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        if (pfds[0].revents & POLLIN) {
            char sink[64];
            while (::read(wakeFd_[0], sink, sizeof(sink)) > 0) {
            }
        }

        if (pfds[1].revents & POLLIN) {
            for (;;) {
                const int fd = ::accept(listenFd_, nullptr, nullptr);
                if (fd < 0)
                    break;
                setNonBlocking(fd);
                Conn c;
                c.fd = fd;
                conns_.push_back(std::move(c));
                accepted_.fetch_add(1, std::memory_order_relaxed);
            }
        }

        // Step 2: drain readable connections into the batch.  The
        // pollfd list was built from conns_ before any accept, so
        // index i+2 maps to the pre-accept prefix of conns_.
        reqs.clear();
        reqConn.clear();
        const std::size_t polled = pfds.size() - 2;
        for (std::size_t i = 0; i < polled; ++i) {
            Conn &c = conns_[i];
            const short rev = pfds[i + 2].revents;
            if (rev & (POLLERR | POLLHUP | POLLNVAL))
                c.closing = true;
            if ((rev & POLLIN) && !drainInput(c)) {
                closeConn(c);
                continue;
            }
            if (rev & POLLOUT)
                if (!flushOutput(c))
                    closeConn(c);
            if (c.fd < 0)
                continue;
            std::size_t start = 0;
            for (;;) {
                const auto nl = c.in.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string_view line(c.in.data() + start,
                                      nl - start);
                if (!line.empty()) {
                    reqs.push_back(parseRequest(line));
                    reqConn.push_back(i);
                }
                start = nl + 1;
            }
            if (start > 0)
                c.in.erase(0, start);
        }

        // Steps 3 + 4: resolve and scatter.  Batched mode pins one
        // epoch for everything drained this round; unbatched mode
        // re-pins (and flushes) per request.
        if (!reqs.empty()) {
            if (batching) {
                batchOut.clear();
                extents.clear();
                const auto bo = core_.resolveBatch(
                    reqs.data(), reqs.size(), batchOut, &extents);
                shutdown = shutdown || bo.shutdown;
                for (std::size_t k = 0; k < extents.size(); ++k) {
                    Conn &c = conns_[reqConn[k]];
                    if (c.fd < 0)
                        continue;
                    c.out.append(batchOut, extents[k].off,
                                 extents[k].len);
                }
                for (std::size_t i = 0; i < polled; ++i)
                    if (conns_[i].fd >= 0 &&
                        !flushOutput(conns_[i]))
                        closeConn(conns_[i]);
            } else {
                for (std::size_t k = 0; k < reqs.size(); ++k) {
                    Conn &c = conns_[reqConn[k]];
                    if (c.fd < 0)
                        continue;
                    const auto bo = core_.resolveBatch(
                        &reqs[k], 1, c.out, nullptr);
                    shutdown = shutdown || bo.shutdown;
                    if (!flushOutput(c))
                        closeConn(c);
                }
            }
        }

        // Retire closed / fully-flushed-EOF connections.
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->fd >= 0 && it->closing &&
                it->outOff >= it->out.size() && it->in.empty())
                closeConn(*it);
            it = it->fd < 0 ? conns_.erase(it) : std::next(it);
        }
    }

    // Give every connection one last flush before tearing down so
    // the shutdown response reaches the requester.
    for (auto &c : conns_)
        if (c.fd >= 0)
            flushOutput(c);
    closeAll();
}

ChurnTicker::ChurnTicker(ServerCore &core)
{
    if (core.config().churn.kind == sim::ChurnSpec::Kind::None)
        return;
    const auto cadence =
        std::chrono::microseconds(core.config().tickUs);
    thread_ = std::thread([this, &core, cadence] {
        while (!stop_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(cadence);
            core.tickChurn();
        }
    });
}

ChurnTicker::~ChurnTicker()
{
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

HealthWatchdog::HealthWatchdog(ServerCore &core)
{
    const auto cadence =
        std::chrono::microseconds(core.config().tickUs);
    thread_ = std::thread([this, &core, cadence] {
        while (!stop_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(cadence);
            core.heartbeat();
        }
    });
}

HealthWatchdog::~HealthWatchdog()
{
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

} // namespace iadm::serve
