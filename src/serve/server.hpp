/**
 * @file
 * Unix-domain-socket front end of the route-serving daemon.
 *
 * A single-threaded poll() loop owns every connection; a background
 * ChurnTicker thread drives the fault processes.  The loop is the
 * *acceptor-drains-a-batch* design from docs/SERVING.md:
 *
 *   1. poll() until something is readable,
 *   2. drain every readable connection's complete request lines
 *      into one batch (in connection, then arrival order),
 *   3. resolve the whole batch through ServerCore under one epoch
 *      guard,
 *   4. scatter the response extents back to per-connection output
 *      buffers and flush each with (usually) one write().
 *
 * With batching disabled (ServeConfig::batching = false) step 3
 * runs per request and step 4 flushes per response — the
 * one-request-at-a-time baseline bench_serve compares against.
 * The request work is identical either way; what batching amortizes
 * is the mutex/epoch pin, the cache-probe prefetch ladder, and —
 * dominant on a real socket — the per-response write() syscall.
 */

#ifndef IADM_SERVE_SERVER_HPP
#define IADM_SERVE_SERVER_HPP

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/server_core.hpp"

namespace iadm::serve {

/** The socket server. */
class RouteServer
{
  public:
    /**
     * @param core  serving engine (owned by the caller; must
     *              outlive the server)
     * @param path  filesystem path of the Unix socket to bind
     */
    RouteServer(ServerCore &core, std::string path);
    ~RouteServer();

    RouteServer(const RouteServer &) = delete;
    RouteServer &operator=(const RouteServer &) = delete;

    /**
     * Bind + listen (unlinking a stale socket file first).  Returns
     * false with a diagnostic in @p err on failure.
     */
    bool start(std::string *err = nullptr);

    /**
     * Serve until a shutdown request arrives or stop() is called.
     * Blocks; run it on a dedicated thread for in-process use.
     */
    void run();

    /** Thread-safe: wake the loop and make run() return. */
    void stop();

    const std::string &socketPath() const { return path_; }

    /** Total connections accepted (for diagnostics/tests). */
    std::uint64_t accepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

  private:
    struct Conn
    {
        int fd = -1;
        std::string in;   //!< unparsed request bytes
        std::string out;  //!< unsent response bytes
        std::size_t outOff = 0;
        bool closing = false; //!< peer EOF seen: flush, then close
    };

    ServerCore &core_;
    std::string path_;
    int listenFd_ = -1;
    int wakeFd_[2] = {-1, -1}; //!< self-pipe for stop()
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> accepted_{0};
    std::vector<Conn> conns_;

    /** Read everything available; false = close the connection. */
    bool drainInput(Conn &c);

    /** Flush pending output; false = close the connection. */
    bool flushOutput(Conn &c);

    void closeConn(Conn &c);
    void closeAll();
};

/**
 * Background churn driver: calls ServerCore::tickChurn() every
 * ServeConfig::tickUs microseconds from its own thread until
 * destroyed.  Constructing one on a churn-free core is a cheap
 * no-op (no thread is spawned).
 */
class ChurnTicker
{
  public:
    explicit ChurnTicker(ServerCore &core);
    ~ChurnTicker();

    ChurnTicker(const ChurnTicker &) = delete;
    ChurnTicker &operator=(const ChurnTicker &) = delete;

  private:
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/**
 * Background liveness watchdog: calls ServerCore::heartbeat() every
 * ServeConfig::tickUs microseconds from its own thread until
 * destroyed.  Each beat try-locks the serving mutex; a run of missed
 * beats flips the `health` wire query's status to "stalled", so a
 * wedged daemon is observable from outside instead of a client
 * timeout (docs/SERVING.md, "Health").
 */
class HealthWatchdog
{
  public:
    explicit HealthWatchdog(ServerCore &core);
    ~HealthWatchdog();

    HealthWatchdog(const HealthWatchdog &) = delete;
    HealthWatchdog &operator=(const HealthWatchdog &) = delete;

  private:
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

} // namespace iadm::serve

#endif // IADM_SERVE_SERVER_HPP
