#include "serve/server_core.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "baselines/distance_tag.hpp"
#include "common/modmath.hpp"
#include "core/distributed.hpp"
#include "core/reroute.hpp"
#include "serve/snapshot.hpp"

namespace iadm::serve {

namespace {

/** Requests the prefetch ladder applies to (cache-probing ops). */
bool
probesCache(const Request &r)
{
    return r.op == Request::Op::Route || r.op == Request::Op::Trace;
}

} // namespace

ServerCore::ServerCore(const ServeConfig &cfg,
                       fault::FaultSet static_faults)
    : cfg_(cfg), topo_(cfg.netSize),
      faults_(std::move(static_faults)),
      rcache_(cfg.netSize, cfg.cacheCapacity), ssdt_(topo_)
{
    if (cfg_.churn.kind != sim::ChurnSpec::Kind::None) {
        // Same seed-stream split the sweep runner uses, so a served
        // churn trajectory is comparable to a simulated one.
        auto p = cfg_.churn.make(topo_, cfg_.seed ^ 0xc402d5eed5ull);
        if (p)
            churn_.push_back(std::move(p));
    }
}

ServerCore::BatchOutcome
ServerCore::resolveBatch(const Request *reqs, std::size_t n,
                         std::string &out,
                         std::vector<Extent> *extents)
{
    BatchOutcome bo;
    if (n == 0)
        return bo;

    const auto t0 = std::chrono::steady_clock::now();

    EpochGuard guard(mu_, faults_);

    stats_.batches += 1;
    stats_.requests += n;
    stats_.maxBatch = std::max<std::uint64_t>(stats_.maxBatch, n);

    // Slot-prefetch ladder over the batch's cache-probing requests,
    // exactly as NetworkSim::inject() runs it over a cycle's
    // injection attempts: pull the probe line of request i+4 while
    // request i resolves, so the per-probe DRAM miss overlaps the
    // current resolution instead of stalling the next one.
    const bool lad = cfg_.scheme == sim::RoutingScheme::TsdtSender &&
                     !faults_.empty();
    constexpr std::size_t kGuess = 4;
    if (lad) {
        for (std::size_t i = 0; i < n && i < kGuess; ++i)
            if (probesCache(reqs[i]))
                rcache_.prefetch(reqs[i].src, reqs[i].dst);
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (lad && i + kGuess < n && probesCache(reqs[i + kGuess]))
            rcache_.prefetch(reqs[i + kGuess].src,
                             reqs[i + kGuess].dst);

        // The torn-snapshot invariant: between requests of one
        // batch the fault version may move only through this
        // batch's own inject/clear-fault handling (which repins).
        stats_.epochTorn = guard.tornObserved() > 0
                               ? stats_.epochTorn + 1
                               : stats_.epochTorn;

        const std::size_t off = out.size();
        const Request &r = reqs[i];
        if (r.op == Request::Op::InjectFault ||
            r.op == Request::Op::ClearFault) {
            topo::Link l{};
            if (!parseLinkSpec(topo_, r.link, l)) {
                ++stats_.errors;
                ResponseWriter w(out, r.id);
                w.field("error",
                        std::string("bad link spec '") + r.link +
                            "'");
                w.finish();
            } else {
                if (r.op == Request::Op::InjectFault)
                    faults_.blockLink(l);
                else
                    faults_.unblockLink(l);
                guard.repin();
                ResponseWriter w(out, r.id);
                w.field("op", std::string_view(opName(r.op)));
                w.field("epoch", guard.epoch());
                w.field("ok", true);
                w.field("link", r.link);
                w.field("faults",
                        static_cast<std::uint64_t>(faults_.count()));
                w.finish();
            }
        } else {
            resolveOne(r, guard.epoch(), bo, out);
        }
        ++bo.served;
        if (extents)
            extents->push_back({off, out.size() - off});
    }

    // Batch-amortized daemon-side service time: two clock reads per
    // batch, each request charged the per-request average.  Batched
    // and unbatched modes fill the same histogram, so BENCH_serve
    // can put daemon-side p50/p99 next to the client-side numbers.
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    const std::uint64_t per_req = us / n;
    const unsigned bucket =
        per_req == 0
            ? 0
            : std::min<unsigned>(std::bit_width(per_req),
                                 kServiceBuckets - 1);
    stats_.serviceHist[bucket] += n;
    stats_.serviceSamples += n;

    // The liveness breadcrumb: a wedged daemon's last-progress epoch
    // freezes while the churn clock keeps moving.
    stats_.lastProgressEpoch = guard.epoch();
    return bo;
}

void
ServerCore::resolveOne(const Request &r, std::uint64_t epoch,
                       BatchOutcome &bo, std::string &out)
{
    switch (r.op) {
      case Request::Op::Route:
        answerRoute(r, epoch, /*want_path=*/false, out);
        return;
      case Request::Op::Trace:
        answerRoute(r, epoch, /*want_path=*/true, out);
        return;
      case Request::Op::Stats:
        answerStats(r, epoch, out);
        return;
      case Request::Op::Health:
        answerHealth(r, epoch, out);
        return;
      case Request::Op::Shutdown: {
        bo.shutdown = true;
        ResponseWriter w(out, r.id);
        w.field("op", std::string_view("shutdown"));
        w.field("epoch", epoch);
        w.field("ok", true);
        w.finish();
        return;
      }
      case Request::Op::InjectFault:
      case Request::Op::ClearFault:
        break; // handled inline by resolveBatch (repin)
      case Request::Op::Bad: {
        ++stats_.errors;
        ResponseWriter w(out, r.id);
        w.field("error", r.error);
        w.finish();
        return;
      }
    }
}

void
ServerCore::answerRoute(const Request &r, std::uint64_t epoch,
                        bool want_path, std::string &out)
{
    const Label n_size = topo_.size();
    const unsigned n = topo_.stages();
    if (r.src >= n_size || r.dst >= n_size) {
        ++stats_.errors;
        ResponseWriter w(out, r.id);
        w.field("error",
                std::string_view("src/dst out of range for this "
                                 "network"));
        w.finish();
        return;
    }

    ResponseWriter w(out, r.id);
    w.field("op",
            std::string_view(want_path ? "trace" : "route"));
    w.field("epoch", epoch);

    switch (cfg_.scheme) {
      case sim::RoutingScheme::TsdtSender: {
        core::TsdtTag tag;
        unsigned reroutes = 0;
        bool ok;
        if (faults_.empty()) {
            // Fault-free REROUTE returns the initial tag untouched
            // (NetworkSim::inject() takes the same shortcut).
            tag = core::initialTag(n, r.dst);
            reroutes = 0;
            ok = true;
        } else {
            const auto [e, hit] =
                rcache_.resolveUniversal(topo_, faults_, r.src,
                                         r.dst);
            if (hit)
                ++stats_.routeHits;
            else
                ++stats_.routeMisses;
            ok = e->ok();
            if (ok) {
                tag = e->tagFor(n);
                reroutes = e->reroutes;
            }
        }
        w.field("ok", ok);
        if (ok) {
            w.field("tag", tag.str());
            w.field("reroutes",
                    static_cast<std::uint64_t>(reroutes));
            if (want_path) {
                std::uint16_t sw[sim::RouteCache::kMaxPathSw];
                const unsigned cnt = core::decodeDelta(
                    r.src, r.dst, tag.stateBits(), n, sw);
                w.beginArray("path");
                for (unsigned i = 0; i < cnt; ++i)
                    w.element(sw[i]);
                w.endArray();
            }
        } else {
            ++stats_.unroutable;
        }
        break;
      }
      case sim::RoutingScheme::TsdtDynamic: {
        const auto d =
            core::distributedRoute(topo_, faults_, r.src, r.dst);
        if (!d.delivered)
            ++stats_.unroutable;
        w.field("ok", d.delivered);
        w.field("hops",
                static_cast<std::uint64_t>(d.totalHops()));
        w.field("backtracks",
                static_cast<std::uint64_t>(d.backtrackHops));
        w.field("probes", static_cast<std::uint64_t>(d.probes));
        w.field("flips", static_cast<std::uint64_t>(d.flips));
        w.field("rewrites",
                static_cast<std::uint64_t>(d.rewrites));
        if (want_path && d.delivered) {
            w.beginArray("path");
            for (unsigned i = 0; i <= d.path.length(); ++i)
                w.element(d.path.switchAt(i));
            w.endArray();
        }
        break;
      }
      case sim::RoutingScheme::SsdtStatic:
      case sim::RoutingScheme::SsdtBalanced: {
        // Queue-occupancy balancing has no meaning for a single
        // served query (there are no queues), so both SSDT variants
        // answer with the plain self-repairing walk; the persistent
        // switch-state repairs accumulate across requests exactly
        // like latched hardware states (docs/SERVING.md).
        const auto s = ssdt_.route(r.src, r.dst, faults_);
        if (!s.delivered)
            ++stats_.unroutable;
        w.field("ok", s.delivered);
        w.field("flips",
                static_cast<std::uint64_t>(s.stateFlips));
        if (want_path && s.delivered) {
            w.beginArray("path");
            for (unsigned i = 0; i <= s.path.length(); ++i)
                w.element(s.path.switchAt(i));
            w.endArray();
        }
        break;
      }
      case sim::RoutingScheme::DistanceTag: {
        baselines::OpCount ops;
        const Label dist = modSub(r.dst, r.src, n_size);
        const auto tag = baselines::SignedDigitTag::positiveDominant(
            n, dist, ops);
        const auto path =
            baselines::distanceTagTrace(topo_, r.src, tag);
        const bool ok = path.isBlockageFree(faults_);
        if (!ok)
            ++stats_.unroutable;
        w.field("ok", ok);
        w.field("tag", tag.str());
        w.field("ops", ops.ops);
        if (want_path && ok) {
            w.beginArray("path");
            for (unsigned i = 0; i <= path.length(); ++i)
                w.element(path.switchAt(i));
            w.endArray();
        }
        break;
      }
    }
    w.finish();
}

void
ServerCore::answerStats(const Request &r, std::uint64_t epoch,
                        std::string &out)
{
    ResponseWriter w(out, r.id);
    w.field("op", std::string_view("stats"));
    w.field("epoch", epoch);
    w.field("scheme",
            std::string_view(sim::routingSchemeName(cfg_.scheme)));
    w.field("net_size", static_cast<std::uint64_t>(cfg_.netSize));
    w.field("faults", static_cast<std::uint64_t>(faults_.count()));
    w.field("requests", stats_.requests);
    w.field("batches", stats_.batches);
    w.field("max_batch", stats_.maxBatch);
    w.field("cache_hits", stats_.routeHits);
    w.field("cache_misses", stats_.routeMisses);
    w.field("unroutable", stats_.unroutable);
    w.field("errors", stats_.errors);
    w.field("epoch_torn", stats_.epochTorn);
    w.field("churn_ticks", stats_.churnTicks);
    w.field("fault_downs", stats_.faultDowns);
    w.field("fault_ups", stats_.faultUps);
    w.field("service_samples", stats_.serviceSamples);
    w.field("service_p50_us", stats_.servicePercentileUs(0.5));
    w.field("service_p99_us", stats_.servicePercentileUs(0.99));
    // Sparse log-bucket histogram, [upper_bound_us, count] pairs —
    // the sweep report's latency_hist convention.
    w.beginArray("service_hist");
    for (unsigned b = 0; b < kServiceBuckets; ++b) {
        if (stats_.serviceHist[b] == 0)
            continue;
        w.pairElement(b == 0 ? 0 : std::uint64_t{1} << b,
                      stats_.serviceHist[b]);
    }
    w.endArray();
    w.finish();
}

std::uint64_t
ServerCore::Stats::servicePercentileUs(double q) const
{
    if (serviceSamples == 0)
        return 0;
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(serviceSamples));
    if (target == 0)
        target = 1;
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kServiceBuckets; ++b) {
        cum += serviceHist[b];
        if (cum >= target)
            return b == 0 ? 0 : std::uint64_t{1} << b;
    }
    return std::uint64_t{1} << (kServiceBuckets - 1);
}

void
ServerCore::answerHealth(const Request &r, std::uint64_t epoch,
                         std::string &out)
{
    // Running at all under the serving mutex is itself the liveness
    // statement a client cares about most; the watchdog counters
    // report what happened while no client was looking.
    const std::uint64_t missed_run =
        wdMissedRun_.load(std::memory_order_relaxed);
    ResponseWriter w(out, r.id);
    w.field("op", std::string_view("health"));
    w.field("status",
            std::string_view(missed_run >= kWatchdogStallRun
                                 ? "stalled"
                                 : "ok"));
    w.field("epoch", epoch);
    w.field("epoch_torn", stats_.epochTorn);
    w.field("last_progress_epoch", stats_.lastProgressEpoch);
    w.field("requests", stats_.requests);
    w.field("batches", stats_.batches);
    w.field("churn_ticks", stats_.churnTicks);
    w.field("watchdog_ticks",
            wdTicks_.load(std::memory_order_relaxed));
    w.field("watchdog_missed",
            wdMissed_.load(std::memory_order_relaxed));
    w.field("watchdog_missed_run", missed_run);
    w.field("watchdog_max_missed_run",
            wdMaxMissedRun_.load(std::memory_order_relaxed));
    // Requests served per completed uptime window (kTicksPerWindow
    // heartbeats each), oldest first: a stall shows up as zeroed
    // windows even after the daemon recovers.
    w.beginArray("uptime_windows");
    const auto filled = static_cast<unsigned>(
        std::min<std::uint64_t>(wdWindowFilled_, kUptimeWindows));
    for (unsigned i = 0; i < filled; ++i) {
        const unsigned idx =
            (wdWindowPos_ + kUptimeWindows - filled + i) %
            kUptimeWindows;
        w.element(wdWindowReq_[idx]);
    }
    w.endArray();
    w.finish();
}

void
ServerCore::heartbeat()
{
    wdTicks_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
        // The serving mutex is held — by a batch in flight (fine) or
        // a wedged resolution (what the run-length exposes).
        wdMissed_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t run =
            wdMissedRun_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (run > wdMaxMissedRun_.load(std::memory_order_relaxed))
            wdMaxMissedRun_.store(run, std::memory_order_relaxed);
        return;
    }
    wdMissedRun_.store(0, std::memory_order_relaxed);
    if (++wdWindowTicks_ >= kTicksPerWindow) {
        wdWindowTicks_ = 0;
        wdWindowReq_[wdWindowPos_] =
            stats_.requests - wdLastRequests_;
        wdLastRequests_ = stats_.requests;
        wdWindowPos_ = (wdWindowPos_ + 1) % kUptimeWindows;
        if (wdWindowFilled_ < kUptimeWindows)
            ++wdWindowFilled_;
    }
}

void
ServerCore::tickChurn()
{
    if (churn_.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    ++churnCycle_;
    ++stats_.churnTicks;
    for (auto &p : churn_) {
        if (p->nextTransition() > churnCycle_)
            continue;
        p->runUntil(churnCycle_, faults_,
                    [this](std::uint64_t, const topo::Link &,
                           bool down) {
                        if (down)
                            ++stats_.faultDowns;
                        else
                            ++stats_.faultUps;
                    });
    }
}

std::uint64_t
ServerCore::epoch() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return faults_.version();
}

ServerCore::Stats
ServerCore::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

bool
ServerCore::parseFaultArg(const topo::IadmTopology &net,
                          const std::string &spec,
                          std::uint64_t seed, fault::FaultSet &out,
                          std::string &err)
{
    if (spec.empty() || spec == "none")
        return true;
    if (const auto sc = sim::FaultScenario::parse(spec)) {
        Rng rng(seed ^ 0x5eedfa17ull);
        out.merge(sc->make(net, rng));
        return true;
    }
    // Fall back to explicit comma-separated link specs.
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const auto comma = spec.find(',', pos);
        const std::string one =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        topo::Link l{};
        if (!parseLinkSpec(net, one, l)) {
            err = "bad fault spec '" + one +
                  "' (want a scenario like links:4 or a "
                  "stage:from:kind list)";
            return false;
        }
        out.blockLink(l);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

} // namespace iadm::serve
