/**
 * @file
 * The I/O-free serving engine: topology + refcounted FaultSet +
 * fault-epoch RouteCache behind the epoch-guard discipline
 * (snapshot.hpp), resolving batches of parsed requests into
 * deterministic response bytes.
 *
 * Splitting the engine from the socket front end (server.hpp) keeps
 * every interesting property testable in-process: the perf smoke
 * test replays a canned request log straight through resolveBatch()
 * and byte-compares the answers against direct
 * universalRouteCompact() calls, and the bench drives the same code
 * over a real Unix socket.
 *
 * Batching is the perf core (docs/SERVING.md): a batch pins one
 * fault epoch, claims the serving mutex once, walks the route
 * cache with the same slot-prefetch ladder NetworkSim::inject()
 * uses (probe i+4 while resolving i), and appends every response to
 * one output buffer the caller flushes with one write() per
 * connection.  One-at-a-time resolution (cfg.batching = false at
 * the server layer — the engine itself just sees batches of 1)
 * re-pins, re-locks and re-flushes per request; bench_serve
 * measures the gap.
 */

#ifndef IADM_SERVE_SERVER_CORE_HPP
#define IADM_SERVE_SERVER_CORE_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ssdt.hpp"
#include "fault/fault_process.hpp"
#include "fault/fault_set.hpp"
#include "serve/wire.hpp"
#include "sim/network_sim.hpp"
#include "sim/route_cache.hpp"
#include "sim/sweep.hpp"
#include "topology/iadm.hpp"

namespace iadm::serve {

/** Daemon configuration (the `iadm_tool serve` flags). */
struct ServeConfig
{
    Label netSize = 16;
    sim::RoutingScheme scheme = sim::RoutingScheme::TsdtSender;

    /** Route-cache entries; 0 = RouteCache::autoCapacity(). */
    std::size_t cacheCapacity = 0;

    /**
     * Drain-everything batching in the socket server; the engine
     * honors whatever batch sizes it is handed either way.
     */
    bool batching = true;

    /** Background churn; Kind::None runs a churn-free daemon. */
    sim::ChurnSpec churn;

    /** Seed for churn processes and fault-scenario materialization. */
    std::uint64_t seed = 1;

    /**
     * Churn ticker cadence in microseconds: every tick advances the
     * churn clock one cycle (docs/SERVING.md, "Time").
     */
    unsigned tickUs = 1000;
};

/** The serving engine. */
class ServerCore
{
  public:
    /** Offset/length of one response line within a batch buffer. */
    struct Extent
    {
        std::size_t off;
        std::size_t len;
    };

    struct BatchOutcome
    {
        std::size_t served = 0;  //!< responses appended
        bool shutdown = false;   //!< a shutdown request was seen
    };

    /** Log-bucket count for the service-time histogram: bucket b
     *  holds requests that took [2^(b-1), 2^b) µs (b = 0: < 1 µs). */
    static constexpr unsigned kServiceBuckets = 32;

    /** Cumulative serving counters (all mutex-guarded). */
    struct Stats
    {
        std::uint64_t requests = 0;
        std::uint64_t batches = 0;
        std::uint64_t maxBatch = 0;
        std::uint64_t routeHits = 0;   //!< route-cache hits
        std::uint64_t routeMisses = 0; //!< route-cache misses
        std::uint64_t unroutable = 0;  //!< FAIL verdicts served
        std::uint64_t errors = 0;      //!< error responses
        std::uint64_t epochTorn = 0;   //!< torn snapshots (must be 0)
        std::uint64_t churnTicks = 0;
        std::uint64_t faultDowns = 0;
        std::uint64_t faultUps = 0;

        /** Epoch pinned by the last completed batch — a wedged
         *  daemon's value stops advancing while churn keeps the
         *  clock moving, which is what the watchdog reports. */
        std::uint64_t lastProgressEpoch = 0;

        /**
         * Daemon-side per-request service time, log-bucketed (µs,
         * amortized: a batch's wall time divided by its size).  The
         * daemon-side complement of bench_serve's client-side
         * latency: client numbers include socket + queueing delay,
         * these isolate resolution + serialization.
         */
        std::uint64_t serviceSamples = 0;
        std::array<std::uint64_t, kServiceBuckets> serviceHist{};

        /** Histogram quantile as the bucket upper bound in µs. */
        std::uint64_t servicePercentileUs(double q) const;
    };

    ServerCore(const ServeConfig &cfg,
               fault::FaultSet static_faults = {});

    /**
     * Resolve @p n requests under one epoch guard, appending one
     * response line per request to @p out (in request order).  When
     * @p extents is non-null it receives the (offset, length) of
     * each response within @p out, so a multi-connection caller can
     * scatter the shared batch buffer back to the right sockets.
     *
     * Thread-safe: the engine's own mutex serializes batches and
     * churn ticks.
     */
    BatchOutcome resolveBatch(const Request *reqs, std::size_t n,
                              std::string &out,
                              std::vector<Extent> *extents = nullptr);

    /**
     * Advance the churn clock one cycle and apply due transitions
     * (called by the ticker thread between batches).  No-op without
     * churn processes.
     */
    void tickChurn();

    /** Current fault epoch (locks). */
    std::uint64_t epoch() const;

    /** Snapshot of the serving counters (locks). */
    Stats statsSnapshot() const;

    /**
     * One watchdog beat (called by the HealthWatchdog thread every
     * tick).  Tries the serving mutex without blocking: a held-up
     * mutex is a *missed* beat, and a run of misses past
     * kWatchdogStallRun flips the `health` query status to
     * "stalled" — a wedged daemon becomes observable instead of a
     * client timeout.  On a successful beat the uptime-window ring
     * rotates: each window records the requests served during
     * kTicksPerWindow beats, so a stall shows up as zeroed windows
     * even after the daemon recovers.
     */
    void heartbeat();

    /** Consecutive missed beats that flip status to "stalled". */
    static constexpr std::uint64_t kWatchdogStallRun = 8;
    /** Heartbeats per uptime window. */
    static constexpr std::uint64_t kTicksPerWindow = 64;
    /** Uptime-window ring length. */
    static constexpr unsigned kUptimeWindows = 8;

    const topo::IadmTopology &topology() const { return topo_; }
    const ServeConfig &config() const { return cfg_; }

    /**
     * Build the static FaultSet for `--faults SPEC`: either a
     * seed-derived sweep scenario ("links:4", "switches:2", ...) or
     * a comma-separated list of explicit "stage:from:kind" specs.
     * Returns false (with a diagnostic in @p err) on a bad spec.
     */
    static bool parseFaultArg(const topo::IadmTopology &net,
                              const std::string &spec,
                              std::uint64_t seed,
                              fault::FaultSet &out, std::string &err);

  private:
    ServeConfig cfg_;
    topo::IadmTopology topo_;

    mutable std::mutex mu_;
    fault::FaultSet faults_;
    sim::RouteCache rcache_;
    core::SsdtRouter ssdt_; //!< ssdt/ssdt-balanced serving state
    std::vector<std::unique_ptr<fault::FaultProcess>> churn_;
    std::uint64_t churnCycle_ = 0;
    Stats stats_;

    // --- watchdog state (docs/SERVING.md, "Health") ---------------
    // Counters are written only by the watchdog thread but read by
    // answerHealth without it holding still — hence atomics with
    // relaxed ordering (monotonic counters, no ordering needed).
    std::atomic<std::uint64_t> wdTicks_{0};
    std::atomic<std::uint64_t> wdMissed_{0};
    std::atomic<std::uint64_t> wdMissedRun_{0};
    std::atomic<std::uint64_t> wdMaxMissedRun_{0};
    // Ring state below is touched only with mu_ held (successful
    // beats and answerHealth both hold it).
    std::uint64_t wdWindowTicks_ = 0;
    std::uint64_t wdLastRequests_ = 0;
    unsigned wdWindowPos_ = 0;
    std::uint64_t wdWindowFilled_ = 0;
    std::array<std::uint64_t, kUptimeWindows> wdWindowReq_{};

    /** Resolve one request under the batch's pinned epoch. */
    void resolveOne(const Request &r, std::uint64_t epoch,
                    BatchOutcome &bo, std::string &out);

    void answerRoute(const Request &r, std::uint64_t epoch,
                     bool want_path, std::string &out);
    void answerStats(const Request &r, std::uint64_t epoch,
                     std::string &out);
    void answerHealth(const Request &r, std::uint64_t epoch,
                      std::string &out);
};

} // namespace iadm::serve

#endif // IADM_SERVE_SERVER_CORE_HPP
