/**
 * @file
 * Epoch-consistent snapshots for the route-serving daemon.
 *
 * The daemon's mutable state — the refcounted FaultSet, the
 * fault-epoch RouteCache, the per-switch SSDT state — is shared
 * between the serving loop and a background churn ticker.  A query
 * must never observe a half-applied fault update: a route resolved
 * partly under fault version V and partly under V+1 could pair a
 * tag from one epoch with a FAIL verdict from another.
 *
 * EpochGuard is the whole concurrency discipline, made explicit:
 * one mutex serializes *mutation* and *batch resolution*, and each
 * batch pins the FaultSet::version() it entered under for its whole
 * lifetime.  Within the batch the fault set cannot move under the
 * resolver (the churn ticker blocks on the same mutex), so every
 * response of the batch is stamped with one epoch — and the hit
 * path of the RouteCache runs lock-free *within* the guard: entries
 * are epoch-stamped (route_cache.hpp), so a batch under version V
 * shares every entry earlier batches computed under V without any
 * per-entry synchronization, and entries from other epochs read as
 * ordinary misses.
 *
 * An in-batch fault mutation (an inject-fault request) is the one
 * legitimate epoch edge: the guard re-pins, and subsequent requests
 * of the same batch resolve under the new epoch — exactly the
 * behavior an unbatched server would produce for the same request
 * order.  Any *other* observed movement of the version mid-batch
 * would be a torn snapshot; the guard counts it (tornObserved())
 * and the serving stats export it as `epoch_torn`, a client-visible
 * invariant the concurrency test asserts stays zero under heavy
 * churn (tests/serve_test.cpp).
 */

#ifndef IADM_SERVE_SNAPSHOT_HPP
#define IADM_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <mutex>

#include "fault/fault_set.hpp"

namespace iadm::serve {

/**
 * RAII batch snapshot: locks the serving mutex and pins the fault
 * epoch until destruction.
 */
class EpochGuard
{
  public:
    EpochGuard(std::mutex &mu, const fault::FaultSet &faults)
        : lock_(mu), faults_(faults), pinned_(faults.version())
    {
    }

    /** The epoch every response of this batch is stamped with. */
    std::uint64_t epoch() const { return pinned_; }

    /**
     * Check the pinned epoch still matches the live fault set;
     * call before resolving each request.  Returns the number of
     * torn observations so far (0 = consistent).  The only writer
     * that can legitimately move the version while the guard is
     * held is the guard's own holder — who must call repin().
     */
    std::uint64_t
    tornObserved()
    {
        if (faults_.version() != pinned_)
            ++torn_;
        return torn_;
    }

    /**
     * Adopt the current version after an intentional in-batch
     * mutation (inject-fault / clear-fault).
     */
    void repin() { pinned_ = faults_.version(); }

  private:
    std::lock_guard<std::mutex> lock_;
    const fault::FaultSet &faults_;
    std::uint64_t pinned_;
    std::uint64_t torn_ = 0;
};

} // namespace iadm::serve

#endif // IADM_SERVE_SNAPSHOT_HPP
