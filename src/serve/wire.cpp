#include "serve/wire.hpp"

#include <charconv>
#include <cstdint>
#include <sstream>

namespace iadm::serve {

namespace {

/** Cursor over one request line. */
struct Scanner
{
    std::string_view s;
    std::size_t i = 0;

    void
    skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\r'))
            ++i;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return false;
        ++i;
        return true;
    }

    bool
    peek(char c)
    {
        skipWs();
        return i < s.size() && s[i] == c;
    }

    /**
     * Parse a JSON string literal into @p out.  Only the escapes a
     * client has any reason to send (\" \\ \/) are unescaped; the
     * protocol never carries control characters.
     */
    bool
    string(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (i < s.size()) {
            const char c = s[i++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (i >= s.size())
                    return false;
                const char e = s[i++];
                if (e == '"' || e == '\\' || e == '/')
                    out.push_back(e);
                else
                    return false;
                continue;
            }
            out.push_back(c);
        }
        return false;
    }

    bool
    number(std::uint64_t &out)
    {
        skipWs();
        const char *first = s.data() + i;
        const char *last = s.data() + s.size();
        const auto [p, ec] = std::from_chars(first, last, out);
        if (ec != std::errc{} || p == first)
            return false;
        i += static_cast<std::size_t>(p - first);
        return true;
    }

    bool
    literal(std::string_view word)
    {
        skipWs();
        if (s.substr(i, word.size()) != word)
            return false;
        i += word.size();
        return true;
    }
};

Request
bad(const std::string &why)
{
    Request r;
    r.op = Request::Op::Bad;
    r.error = why;
    return r;
}

} // namespace

Request
parseRequest(std::string_view line)
{
    Scanner sc{line};
    if (!sc.eat('{'))
        return bad("expected '{'");

    Request r;
    std::string op_name;
    bool have_op = false, have_src = false, have_dst = false,
         have_link = false;

    if (!sc.peek('}')) {
        do {
            std::string key;
            if (!sc.string(key))
                return bad("expected key string");
            if (!sc.eat(':'))
                return bad("expected ':' after key");
            if (key == "op") {
                if (!sc.string(op_name))
                    return bad("op must be a string");
                have_op = true;
            } else if (key == "id") {
                if (!sc.number(r.id))
                    return bad("id must be an unsigned integer");
            } else if (key == "src" || key == "dst") {
                std::uint64_t v = 0;
                if (!sc.number(v) || v > 0xffffu)
                    return bad(key + " must be an integer in "
                                     "[0, 65535]");
                if (key == "src") {
                    r.src = static_cast<Label>(v);
                    have_src = true;
                } else {
                    r.dst = static_cast<Label>(v);
                    have_dst = true;
                }
            } else if (key == "link") {
                if (!sc.string(r.link))
                    return bad("link must be a string");
                have_link = true;
            } else {
                // Unknown keys are skipped (string / integer /
                // boolean) so the protocol can grow additively.
                std::string junk;
                std::uint64_t num;
                if (!sc.string(junk) && !sc.number(num) &&
                    !sc.literal("true") && !sc.literal("false"))
                    return bad("unsupported value for key '" + key +
                               "'");
            }
        } while (sc.eat(','));
    }
    if (!sc.eat('}'))
        return bad("expected '}'");
    sc.skipWs();
    if (sc.i != line.size())
        return bad("trailing bytes after object");

    if (!have_op)
        return bad("missing \"op\"");
    if (op_name == "route" || op_name == "trace") {
        if (!have_src || !have_dst)
            return bad(op_name + " needs \"src\" and \"dst\"");
        r.op = op_name == "route" ? Request::Op::Route
                                  : Request::Op::Trace;
    } else if (op_name == "stats") {
        r.op = Request::Op::Stats;
    } else if (op_name == "health") {
        r.op = Request::Op::Health;
    } else if (op_name == "inject-fault" ||
               op_name == "clear-fault") {
        if (!have_link)
            return bad(op_name + " needs \"link\"");
        r.op = op_name == "inject-fault" ? Request::Op::InjectFault
                                         : Request::Op::ClearFault;
    } else if (op_name == "shutdown") {
        r.op = Request::Op::Shutdown;
    } else {
        return bad("unknown op '" + op_name + "'");
    }
    return r;
}

const char *
opName(Request::Op op)
{
    switch (op) {
      case Request::Op::Route: return "route";
      case Request::Op::Trace: return "trace";
      case Request::Op::Stats: return "stats";
      case Request::Op::Health: return "health";
      case Request::Op::InjectFault: return "inject-fault";
      case Request::Op::ClearFault: return "clear-fault";
      case Request::Op::Shutdown: return "shutdown";
      case Request::Op::Bad: break;
    }
    return "bad";
}

ResponseWriter::ResponseWriter(std::string &out, std::uint64_t id)
    : out_(out)
{
    out_.append("{\"id\":");
    char buf[24];
    const auto [p, ec] =
        std::to_chars(buf, buf + sizeof(buf), id);
    (void)ec;
    out_.append(buf, p);
}

void
ResponseWriter::field(std::string_view key, std::uint64_t v)
{
    out_.push_back(',');
    out_.push_back('"');
    out_.append(key);
    out_.append("\":");
    char buf[24];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    out_.append(buf, p);
}

void
ResponseWriter::field(std::string_view key, bool v)
{
    out_.push_back(',');
    out_.push_back('"');
    out_.append(key);
    out_.append(v ? "\":true" : "\":false");
}

void
ResponseWriter::field(std::string_view key, std::string_view v)
{
    out_.push_back(',');
    out_.push_back('"');
    out_.append(key);
    out_.append("\":\"");
    for (const char c : v) {
        if (c == '"' || c == '\\')
            out_.push_back('\\');
        out_.push_back(c);
    }
    out_.push_back('"');
}

void
ResponseWriter::beginArray(std::string_view key)
{
    out_.push_back(',');
    out_.push_back('"');
    out_.append(key);
    out_.append("\":[");
    inArray_ = true;
    firstElem_ = true;
}

void
ResponseWriter::element(std::uint64_t v)
{
    if (!firstElem_)
        out_.push_back(',');
    firstElem_ = false;
    char buf[24];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    out_.append(buf, p);
}

void
ResponseWriter::pairElement(std::uint64_t a, std::uint64_t b)
{
    if (!firstElem_)
        out_.push_back(',');
    firstElem_ = false;
    out_.push_back('[');
    char buf[24];
    auto [p1, ec1] = std::to_chars(buf, buf + sizeof(buf), a);
    (void)ec1;
    out_.append(buf, p1);
    out_.push_back(',');
    auto [p2, ec2] = std::to_chars(buf, buf + sizeof(buf), b);
    (void)ec2;
    out_.append(buf, p2);
    out_.push_back(']');
}

void
ResponseWriter::endArray()
{
    out_.push_back(']');
    inArray_ = false;
}

void
ResponseWriter::finish()
{
    out_.append("}\n");
}

bool
parseLinkSpec(const topo::IadmTopology &net, const std::string &spec,
              topo::Link &out)
{
    unsigned stage;
    Label from;
    char kind, c1, c2;
    std::istringstream is(spec);
    if (!(is >> stage >> c1 >> from >> c2 >> kind) || c1 != ':' ||
        c2 != ':')
        return false;
    if (stage >= net.stages() || from >= net.size())
        return false;
    switch (kind) {
      case 's': out = net.straightLink(stage, from); return true;
      case 'p': out = net.plusLink(stage, from); return true;
      case 'm': out = net.minusLink(stage, from); return true;
      default: return false;
    }
}

} // namespace iadm::serve
