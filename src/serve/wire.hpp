/**
 * @file
 * Wire protocol of the route-serving daemon (docs/SERVING.md).
 *
 * Requests and responses are newline-delimited JSON objects — one
 * flat object per line, no nesting on the request side.  The format
 * is deliberately minimal: a hand-rolled scanner over flat objects
 * (string / integer / boolean values) keeps the daemon free of any
 * external JSON dependency and makes parse cost negligible next to
 * a route resolution.
 *
 * Requests:
 *   {"op":"route","src":5,"dst":12}          resolve a route
 *   {"op":"trace","src":5,"dst":12}          route + per-stage path
 *   {"op":"stats"}                           serving counters
 *   {"op":"health"}                          liveness/watchdog status
 *   {"op":"inject-fault","link":"1:0:s"}     block a link (new epoch)
 *   {"op":"clear-fault","link":"1:0:s"}      release one claim
 *   {"op":"shutdown"}                        stop the daemon
 *
 * An optional "id" (unsigned integer) is echoed back verbatim so a
 * pipelining client can match responses to requests; responses are
 * always delivered in request order per connection regardless.
 *
 * Responses are single lines with a fixed key order (deterministic
 * byte-for-byte — the serve smoke test compares response bytes
 * against answers rebuilt from direct universalRouteCompact calls).
 * Every response carries the fault epoch (FaultSet::version()) its
 * batch was pinned to; see snapshot.hpp.
 */

#ifndef IADM_SERVE_WIRE_HPP
#define IADM_SERVE_WIRE_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bits.hpp"
#include "topology/iadm.hpp"

namespace iadm::serve {

/** One parsed request line. */
struct Request
{
    enum class Op : std::uint8_t
    {
        Route,
        Trace,
        Stats,
        Health,
        InjectFault,
        ClearFault,
        Shutdown,
        Bad, //!< parse failure; error holds the reason
    };

    Op op = Op::Bad;
    std::uint64_t id = 0; //!< echoed back (0 when absent)
    Label src = 0;
    Label dst = 0;
    std::string link;  //!< inject/clear-fault "stage:from:kind" spec
    std::string error; //!< Op::Bad reason
};

/**
 * Parse one request line (without the trailing newline).  Never
 * throws: malformed input yields Op::Bad with a diagnostic, which
 * the server answers with an error response instead of dropping the
 * connection.
 */
Request parseRequest(std::string_view line);

/** The canonical spelling of a request op ("route", "stats", ...). */
const char *opName(Request::Op op);

/**
 * Deterministic response assembly: appends `,"key":value` (or the
 * bare first pair) to a line under construction.  Integer rendering
 * uses to_chars — no locale, no iostream state, byte-stable.
 */
class ResponseWriter
{
  public:
    /** Start a response line for request @p id in @p out. */
    explicit ResponseWriter(std::string &out, std::uint64_t id);

    void field(std::string_view key, std::uint64_t v);
    void field(std::string_view key, bool v);
    void field(std::string_view key, std::string_view v);

    /** Begin `"key":[` for an integer array; end with endArray(). */
    void beginArray(std::string_view key);
    void element(std::uint64_t v);
    /** Append a `[a,b]` pair element (sparse-histogram convention,
     *  same as the sweep report's latency_hist). */
    void pairElement(std::uint64_t a, std::uint64_t b);
    void endArray();

    /** Terminate the line: `}` + newline. */
    void finish();

  private:
    std::string &out_;
    bool inArray_ = false;
    bool firstElem_ = false;
};

/**
 * Parse a "stage:from:kind" link spec (kind one of s/p/m) against
 * @p net into @p out.  Shared by the daemon's inject-fault handler
 * and iadm_tool's route/trace fault arguments.
 */
bool parseLinkSpec(const topo::IadmTopology &net,
                   const std::string &spec, topo::Link &out);

} // namespace iadm::serve

#endif // IADM_SERVE_WIRE_HPP
