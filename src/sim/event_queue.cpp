#include "sim/event_queue.hpp"

#include "common/logging.hpp"

namespace iadm::sim {

void
EventQueue::schedule(Cycle when, Callback fn)
{
    heap_.push({when, seq_++, std::move(fn)});
}

void
EventQueue::runUntil(Cycle now)
{
    while (!heap_.empty() && heap_.top().time <= now) {
        // priority_queue::top() is const; move via const_cast is
        // UB-adjacent, so copy the callback out instead.
        Callback fn = heap_.top().fn;
        heap_.pop();
        fn();
    }
}

Cycle
EventQueue::nextTime() const
{
    IADM_ASSERT(!heap_.empty(), "no pending events");
    return heap_.top().time;
}

void
EventQueue::setShardCount(unsigned shards)
{
    if (staging_.size() < shards)
        staging_.resize(shards);
}

void
EventQueue::scheduleFromShard(unsigned shard, Cycle when,
                              Callback fn)
{
    IADM_ASSERT(shard < staging_.size(),
                "scheduleFromShard: shard ", shard,
                " outside setShardCount(", staging_.size(), ")");
    staging_[shard].push_back({when, std::move(fn)});
}

void
EventQueue::commitShardSchedules()
{
    // Fixed shard order, then local staging order: the seqs handed
    // out here depend only on what each shard staged, never on how
    // the worker threads were scheduled.
    for (auto &stage : staging_) {
        for (auto &e : stage)
            schedule(e.time, std::move(e.fn));
        stage.clear();
    }
}

std::size_t
EventQueue::staged() const
{
    std::size_t total = 0;
    for (const auto &stage : staging_)
        total += stage.size();
    return total;
}

} // namespace iadm::sim
