#include "sim/event_queue.hpp"

#include "common/logging.hpp"

namespace iadm::sim {

void
EventQueue::schedule(Cycle when, Callback fn)
{
    heap_.push({when, seq_++, std::move(fn)});
}

void
EventQueue::runUntil(Cycle now)
{
    while (!heap_.empty() && heap_.top().time <= now) {
        // priority_queue::top() is const; move via const_cast is
        // UB-adjacent, so copy the callback out instead.
        Callback fn = heap_.top().fn;
        heap_.pop();
        fn();
    }
}

Cycle
EventQueue::nextTime() const
{
    IADM_ASSERT(!heap_.empty(), "no pending events");
    return heap_.top().time;
}

} // namespace iadm::sim
