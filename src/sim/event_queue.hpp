/**
 * @file
 * A minimal discrete-event calendar.
 *
 * The network itself advances cycle by cycle; the calendar schedules
 * asynchronous events against that clock — transient link blockages
 * appearing and clearing, fault injections, traffic phase changes —
 * and fires them as the simulation reaches their timestamps.
 */

#ifndef IADM_SIM_EVENT_QUEUE_HPP
#define IADM_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/packet.hpp"

namespace iadm::sim {

/** Time-ordered callback calendar. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn to run at cycle @p when. */
    void schedule(Cycle when, Callback fn);

    /** Fire every event with time <= @p now, in time order. */
    void runUntil(Cycle now);

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Time of the earliest pending event. */
    Cycle nextTime() const;

    // --- sharded scheduling (docs/SIMULATOR.md, "Determinism") ----
    //
    // schedule() hands out seq_ tie-break numbers in call order,
    // which assumes a single scheduling thread: calls racing from a
    // sharded service loop would interleave seqs nondeterministically
    // (and corrupt the heap outright).  Sharded callers instead stage
    // entries per shard — scheduleFromShard() is thread-safe across
    // *distinct* shard ids, with no locking — and the owner commits
    // the staged entries serially in fixed shard order, so the final
    // ordering key is the deterministic (shard, localSeq) pair no
    // matter how the worker threads interleaved.

    /** Size the per-shard staging buffers (idempotent). */
    void setShardCount(unsigned shards);

    /**
     * Stage @p fn for cycle @p when from shard @p shard.  Not
     * visible to pending()/runUntil() until commitShardSchedules().
     */
    void scheduleFromShard(unsigned shard, Cycle when, Callback fn);

    /**
     * Drain every staged entry into the heap, shard 0 first, each
     * shard's entries in its local staging order.  Must be called
     * from the owning thread between sharded phases (the simulator
     * does so at the start of each step).
     */
    void commitShardSchedules();

    /** Staged-but-uncommitted entry count (tests/diagnostics). */
    std::size_t staged() const;

  private:
    struct Entry
    {
        Cycle time;
        std::uint64_t seq; //!< FIFO tie-break for equal times
        Callback fn;
    };
    struct StagedEntry
    {
        Cycle time;
        Callback fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.time != b.time ? a.time > b.time
                                    : a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t seq_ = 0;
    std::vector<std::vector<StagedEntry>> staging_; //!< per shard
};

} // namespace iadm::sim

#endif // IADM_SIM_EVENT_QUEUE_HPP
