/**
 * @file
 * A minimal discrete-event calendar.
 *
 * The network itself advances cycle by cycle; the calendar schedules
 * asynchronous events against that clock — transient link blockages
 * appearing and clearing, fault injections, traffic phase changes —
 * and fires them as the simulation reaches their timestamps.
 */

#ifndef IADM_SIM_EVENT_QUEUE_HPP
#define IADM_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/packet.hpp"

namespace iadm::sim {

/** Time-ordered callback calendar. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn to run at cycle @p when. */
    void schedule(Cycle when, Callback fn);

    /** Fire every event with time <= @p now, in time order. */
    void runUntil(Cycle now);

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Time of the earliest pending event. */
    Cycle nextTime() const;

  private:
    struct Entry
    {
        Cycle time;
        std::uint64_t seq; //!< FIFO tie-break for equal times
        Callback fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.time != b.time ? a.time > b.time
                                    : a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t seq_ = 0;
};

} // namespace iadm::sim

#endif // IADM_SIM_EVENT_QUEUE_HPP
