#include "sim/link_table.hpp"

#include "common/logging.hpp"

namespace iadm::sim {

LinkTable::LinkTable(const topo::IadmTopology &topo)
    : stages_(topo.stages()), n_(topo.size()),
      to_(static_cast<std::size_t>(stages_) * n_ * 3)
{
    for (unsigned stage = 0; stage < stages_; ++stage) {
        for (Label j = 0; j < n_; ++j) {
            to_[index(stage, j, topo::LinkKind::Straight)] =
                topo.straightLink(stage, j).to;
            to_[index(stage, j, topo::LinkKind::Plus)] =
                topo.plusLink(stage, j).to;
            to_[index(stage, j, topo::LinkKind::Minus)] =
                topo.minusLink(stage, j).to;
        }
    }
}

} // namespace iadm::sim
