/**
 * @file
 * Flat precomputed routing data for the simulator hot path.
 *
 * The paper's whole premise is that the link a switch takes is a
 * pure function of (switch parity, state, tag bit) — so the
 * simulator should never re-derive link endpoints with modular
 * arithmetic, or touch the topology object at all, while packets
 * are moving.  LinkTable freezes the entire IADM link graph into
 * one contiguous [stage][switch][kind] array of destination labels
 * at construction; FaultView mirrors a FaultSet into a bitset over
 * the same flat index so the per-hop blockage test is one word
 * load.  Both are built once per NetworkSim; the view re-syncs only
 * when FaultSet::version() changes (transient blockage events).
 */

#ifndef IADM_SIM_LINK_TABLE_HPP
#define IADM_SIM_LINK_TABLE_HPP

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"

namespace iadm::sim {

/**
 * Contiguous [stage][switch][kind] table of IADM link destinations.
 *
 * Flat index: (stage * N + j) * 3 + kind, with kind in
 * {Straight = 0, Plus = 1, Minus = 2} (the only IADM link kinds).
 */
class LinkTable
{
  public:
    explicit LinkTable(const topo::IadmTopology &topo);

    unsigned stages() const { return stages_; }
    Label size() const { return n_; }

    /** Flat index of link (stage, j, kind). */
    std::size_t
    index(unsigned stage, Label j, topo::LinkKind kind) const
    {
        return (static_cast<std::size_t>(stage) * n_ + j) * 3 +
               static_cast<std::size_t>(kind);
    }

    /** Destination label of link (stage, j, kind); no arithmetic. */
    Label
    to(unsigned stage, Label j, topo::LinkKind kind) const
    {
        return to_[index(stage, j, kind)];
    }

    /** Materialize the Link struct straight from the table. */
    topo::Link
    link(unsigned stage, Label j, topo::LinkKind kind) const
    {
        return {stage, j, to(stage, j, kind), kind};
    }

    /** The oppositely-signed nonstraight link (Theorem 3.2 spare). */
    static topo::LinkKind
    oppositeKind(topo::LinkKind kind)
    {
        return kind == topo::LinkKind::Plus ? topo::LinkKind::Minus
                                            : topo::LinkKind::Plus;
    }

  private:
    unsigned stages_;
    Label n_;
    std::vector<Label> to_; //!< [(stage * N + j) * 3 + kind]
};

/**
 * Bitset-backed O(1) view of a FaultSet, indexed like LinkTable.
 *
 * refresh() decodes the set's stored link keys
 * ((stage << 40) | (from << 8) | kind, see topo::Link::key()) into
 * the flat bitset; the owner re-calls it whenever
 * FaultSet::version() moves.
 */
class FaultView
{
  public:
    FaultView(unsigned stages, Label n_size)
        : stages_(stages), n_(n_size),
          words_((static_cast<std::size_t>(stages) * n_size * 3 +
                  63) /
                 64)
    {
    }

    /** Rebuild the bitset from @p faults (O(faults + words)). */
    void
    refresh(const fault::FaultSet &faults)
    {
        std::fill(words_.begin(), words_.end(), 0);
        any_ = false;
        for (const auto &[key, refs] : faults.keys()) {
            const auto stage = static_cast<unsigned>(key >> 40);
            const auto from =
                static_cast<Label>((key >> 8) & 0xffffffffu);
            const auto kind = static_cast<unsigned>(key & 0xffu);
            if (stage >= stages_ || from >= n_ || kind > 2)
                continue; // not an IADM link of this network
            const std::size_t idx =
                (static_cast<std::size_t>(stage) * n_ + from) * 3 +
                kind;
            words_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            any_ = true;
        }
    }

    /** True iff the link at flat index @p idx is blocked. */
    bool
    isBlocked(std::size_t idx) const
    {
        return (words_[idx >> 6] >> (idx & 63)) & 1u;
    }

    bool
    isBlocked(unsigned stage, Label j, topo::LinkKind kind) const
    {
        return isBlocked(
            (static_cast<std::size_t>(stage) * n_ + j) * 3 +
            static_cast<std::size_t>(kind));
    }

    /** False iff the whole view is known blockage-free. */
    bool anyBlocked() const { return any_; }

  private:
    unsigned stages_;
    Label n_;
    std::vector<std::uint64_t> words_;
    bool any_ = false;
};

} // namespace iadm::sim

#endif // IADM_SIM_LINK_TABLE_HPP
