#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.hpp"
#include "obs/stats.hpp"

namespace iadm::sim {

const char *
dropReasonName(DropReason r)
{
    switch (r) {
      case DropReason::Unroutable: return "unroutable";
      case DropReason::Expired: return "expired";
      case DropReason::Legacy: return "legacy";
    }
    return "?";
}

Metrics::Metrics(Label n_size, unsigned n_stages)
    : nSize_(n_size), nStages_(n_stages),
      dropsByStage_(n_stages, 0), stalls_(n_stages, 0),
      reroutes_(n_stages, 0),
      hopsByLink_(static_cast<std::size_t>(n_stages) * n_size * 3, 0),
      depthSum_(n_stages, 0), depthSamples_(n_stages, 0),
      latencyHist_(kLatencyCap + 1, 0)
{
}

void
Metrics::recordDelivered(const Packet &p, Cycle now)
{
    ++delivered_;
    const Cycle lat = now - p.injected;
    latencySum_ += lat;
    maxLatency_ = std::max(maxLatency_, lat);
    if (lat > kLatencyCap && !latencyCapped_) {
        latencyCapped_ = true;
        IADM_WARN("latency ", lat, " exceeds the histogram cap of ",
                  kLatencyCap,
                  " cycles; high percentiles are now lower bounds "
                  "(latency_capped will be set in reports)");
    }
    ++latencyHist_[std::min<Cycle>(lat, kLatencyCap)];
}

void
Metrics::merge(const Metrics &other)
{
    IADM_ASSERT(nSize_ == other.nSize_ &&
                    nStages_ == other.nStages_,
                "Metrics::merge across different network shapes");
    const auto addVec = [](std::vector<std::uint64_t> &dst,
                           const std::vector<std::uint64_t> &src) {
        for (std::size_t i = 0; i < dst.size(); ++i)
            dst[i] += src[i];
    };
    injected_ += other.injected_;
    delivered_ += other.delivered_;
    throttled_ += other.throttled_;
    unroutable_ += other.unroutable_;
    dropped_ += other.dropped_;
    latencySum_ += other.latencySum_;
    maxLatency_ = std::max(maxLatency_, other.maxLatency_);
    latencyCapped_ = latencyCapped_ || other.latencyCapped_;
    backtrackHops_ += other.backtrackHops_;
    routeCacheHits_ += other.routeCacheHits_;
    routeCacheMisses_ += other.routeCacheMisses_;
    routeCacheEvictions_ += other.routeCacheEvictions_;
    for (unsigned r = 0; r < kDropReasons; ++r)
        dropsByReason_[r] += other.dropsByReason_[r];
    faultDowns_ += other.faultDowns_;
    faultUps_ += other.faultUps_;
    deliveredDuringFaults_ += other.deliveredDuringFaults_;
    recoveries_ += other.recoveries_;
    recoveryWaitSum_ += other.recoveryWaitSum_;
    addVec(dropsByStage_, other.dropsByStage_);
    addVec(stalls_, other.stalls_);
    addVec(reroutes_, other.reroutes_);
    addVec(hopsByLink_, other.hopsByLink_);
    addVec(depthSum_, other.depthSum_);
    addVec(depthSamples_, other.depthSamples_);
    addVec(latencyHist_, other.latencyHist_);
}

void
Metrics::sampleQueueDepth(unsigned stage, std::size_t depth)
{
    depthSum_[stage] += depth;
    ++depthSamples_[stage];
}

std::uint64_t
Metrics::totalReroutes() const
{
    return std::accumulate(reroutes_.begin(), reroutes_.end(),
                           std::uint64_t{0});
}

std::uint64_t
Metrics::totalStalls() const
{
    return std::accumulate(stalls_.begin(), stalls_.end(),
                           std::uint64_t{0});
}

std::uint64_t
Metrics::totalHops() const
{
    return std::accumulate(hopsByLink_.begin(), hopsByLink_.end(),
                           std::uint64_t{0});
}

double
Metrics::avgRecoveryWait() const
{
    return recoveries_ == 0
               ? 0.0
               : static_cast<double>(recoveryWaitSum_) /
                     static_cast<double>(recoveries_);
}

double
Metrics::avgLatency() const
{
    return delivered_ == 0
               ? 0.0
               : static_cast<double>(latencySum_) /
                     static_cast<double>(delivered_);
}

Cycle
Metrics::latencyPercentile(double q) const
{
    IADM_ASSERT(q >= 0.0 && q <= 1.0, "percentile out of range");
    if (delivered_ == 0)
        return 0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(delivered_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t lat = 0; lat < latencyHist_.size(); ++lat) {
        seen += latencyHist_[lat];
        if (seen > rank)
            return lat;
    }
    return maxLatency_;
}

double
Metrics::throughput(Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(delivered_) /
           (static_cast<double>(cycles) * nSize_);
}

double
Metrics::linkUtilization(unsigned stage, Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    std::uint64_t used = 0;
    for (Label j = 0; j < nSize_; ++j)
        for (unsigned k = 0; k < 3; ++k)
            used += hopsByLink_[linkIndex(
                stage, j, static_cast<topo::LinkKind>(k))];
    return static_cast<double>(used) /
           (static_cast<double>(cycles) * nSize_ * 3);
}

double
Metrics::nonstraightImbalance(unsigned stage) const
{
    double sum = 0.0;
    unsigned counted = 0;
    for (Label j = 0; j < nSize_; ++j) {
        const auto plus = static_cast<double>(
            hopsByLink_[linkIndex(stage, j, topo::LinkKind::Plus)]);
        const auto minus = static_cast<double>(
            hopsByLink_[linkIndex(stage, j, topo::LinkKind::Minus)]);
        if (plus + minus == 0)
            continue;
        sum += std::abs(plus - minus) / (plus + minus);
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / counted;
}

double
Metrics::avgQueueDepth(unsigned stage) const
{
    return depthSamples_[stage] == 0
               ? 0.0
               : static_cast<double>(depthSum_[stage]) /
                     static_cast<double>(depthSamples_[stage]);
}

void
Metrics::exportStats(obs::StatsRegistry &reg, Cycle cycles) const
{
    reg.counter("sim.injected", injected_);
    reg.counter("sim.delivered", delivered_);
    reg.counter("sim.throttled", throttled_);
    reg.counter("sim.unroutable", unroutable_);
    reg.counter("sim.dropped", dropped_);
    for (unsigned r = 0; r < kDropReasons; ++r)
        reg.counter(std::string("sim.dropped_") +
                        dropReasonName(static_cast<DropReason>(r)),
                    dropsByReason_[r]);
    reg.vector("sim.drops_by_stage", dropsByStage_);
    reg.counter("sim.fault_downs", faultDowns_);
    reg.counter("sim.fault_ups", faultUps_);
    reg.counter("sim.delivered_during_faults",
                deliveredDuringFaults_);
    reg.counter("sim.reroute_recoveries", recoveries_);
    reg.scalar("sim.avg_recovery_wait", avgRecoveryWait());
    reg.counter("sim.hops", totalHops());
    reg.counter("sim.backtrack_hops", backtrackHops_);
    reg.counter("sim.reroutes", totalReroutes());
    reg.counter("sim.stalls", totalStalls());
    reg.scalar("sim.avg_latency", avgLatency());
    reg.counter("sim.max_latency", maxLatency_);
    reg.counter("sim.latency_capped", latencyCapped_ ? 1 : 0);
    reg.scalar("sim.throughput", throughput(cycles));
    reg.vector("sim.stalls_by_stage", stalls_);
    reg.vector("sim.reroutes_by_stage", reroutes_);
    reg.histogram("sim.latency_hist", latencyHist_);
}

std::string
Metrics::summary(Cycle cycles) const
{
    std::ostringstream os;
    os << "injected=" << injected_ << " delivered=" << delivered_
       << " throttled=" << throttled_
       << " avg_latency=" << avgLatency()
       << " max_latency=" << maxLatency_
       << " throughput=" << throughput(cycles)
       << " reroutes=" << totalReroutes()
       << " stalls=" << totalStalls()
       << " dropped=" << dropped_
       << " unroutable=" << unroutable_;
    return os.str();
}

} // namespace iadm::sim
