/**
 * @file
 * Measurement sinks for the packet-switched simulation.
 */

#ifndef IADM_SIM_METRICS_HPP
#define IADM_SIM_METRICS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "sim/packet.hpp"
#include "topology/topology.hpp"

namespace iadm::obs {
class StatsRegistry;
}

namespace iadm::sim {

/**
 * Why a packet was removed from the network undelivered
 * (docs/SIMULATOR.md, "Fault lifecycle").  Values index the
 * drops-by-reason counters and name the drops_by_reason report keys.
 */
enum class DropReason : std::uint8_t
{
    Unroutable = 0, //!< REROUTE/BACKTRACK proved no path exists
    Expired = 1,    //!< stall-age cap (SimConfig::maxPacketAge) hit
    Legacy = 2,     //!< recorded through the reasonless legacy API
};

/** Number of distinct DropReason values. */
inline constexpr unsigned kDropReasons = 3;

const char *dropReasonName(DropReason r);

/** Aggregate counters and distributions for one simulation run. */
class Metrics
{
  public:
    Metrics(Label n_size, unsigned n_stages);

    // --- recording -------------------------------------------------
    void recordInjected() { ++injected_; }
    void recordThrottled() { ++throttled_; }
    void recordUnroutable() { ++unroutable_; }

    /** Drop with context: the stage it happened at and why. */
    void
    recordDropped(unsigned stage, DropReason reason)
    {
        ++dropped_;
        ++dropsByReason_[static_cast<unsigned>(reason)];
        ++dropsByStage_[stage];
    }

    /** Legacy reasonless drop (external callers; stage unknown). */
    void recordDropped()
    {
        ++dropped_;
        ++dropsByReason_[static_cast<unsigned>(DropReason::Legacy)];
    }

    void recordDelivered(const Packet &p, Cycle now);

    /** A delivery that happened while any link was blocked. */
    void recordFaultedDelivery() { ++deliveredDuringFaults_; }

    /** One churn/transient link transition (down or repaired). */
    void
    recordFaultTransition(bool down)
    {
        ++(down ? faultDowns_ : faultUps_);
    }

    /**
     * A stalled head successfully re-resolved its route after
     * @p wait cycles without progress (time-to-reroute).
     */
    void
    recordRecovery(Cycle wait)
    {
        ++recoveries_;
        recoveryWaitSum_ += wait;
    }

    /** Inline: called once per forward hop of every packet. */
    void
    recordHop(const topo::Link &l)
    {
        ++hopsByLink_[linkIndex(l.stage, l.from, l.kind)];
    }
    /**
     * Hint recordHop's counter slots for switch @p from of @p stage
     * into cache: hopsByLink_ outgrows L2 on large networks, so the
     * increment is a miss unless issued ahead of use.
     */
    void
    prefetchHopCounters(unsigned stage, Label from) const
    {
        __builtin_prefetch(
            &hopsByLink_[(static_cast<std::size_t>(stage) * nSize_ +
                          from) *
                         3],
            1);
    }

    void recordStall(unsigned stage) { ++stalls_[stage]; }
    void recordReroute(unsigned stage) { ++reroutes_[stage]; }
    void recordBacktrackHop() { ++backtrackHops_; }
    void recordRouteCacheHit() { ++routeCacheHits_; }
    void recordRouteCacheMiss() { ++routeCacheMisses_; }
    /** Fold a batch's eviction delta (RouteCache::Stats) in. */
    void
    recordRouteCacheEvictions(std::uint64_t n)
    {
        routeCacheEvictions_ += n;
    }
    void sampleQueueDepth(unsigned stage, std::size_t depth);

    /**
     * Aggregate form of sampleQueueDepth: add @p total_depth over
     * @p n_switches samples in one call.  Valid whenever per-switch
     * depths are summable at a single instant (queues of a stage do
     * not change while that stage's service scan runs, so the sum
     * over switches equals the sum of individual samples).
     */
    void
    sampleStageDepths(unsigned stage, std::uint64_t total_depth,
                      std::uint64_t n_switches)
    {
        depthSum_[stage] += total_depth;
        depthSamples_[stage] += n_switches;
    }

    // --- results ---------------------------------------------------
    std::uint64_t injected() const { return injected_; }
    std::uint64_t delivered() const { return delivered_; }
    /** Sum of delivery latencies — window rollups take deltas of
     *  this and delivered() to get per-window averages. */
    std::uint64_t latencySum() const { return latencySum_; }
    std::uint64_t throttled() const { return throttled_; }
    std::uint64_t unroutable() const { return unroutable_; }
    std::uint64_t dropped() const { return dropped_; }

    std::uint64_t
    droppedFor(DropReason reason) const
    {
        return dropsByReason_[static_cast<unsigned>(reason)];
    }
    std::uint64_t dropsAt(unsigned stage) const
    {
        return dropsByStage_[stage];
    }

    /** Churn/recovery counters (docs/SIMULATOR.md). */
    std::uint64_t faultDowns() const { return faultDowns_; }
    std::uint64_t faultUps() const { return faultUps_; }
    std::uint64_t deliveredDuringFaults() const
    {
        return deliveredDuringFaults_;
    }
    std::uint64_t recoveries() const { return recoveries_; }
    double avgRecoveryWait() const;

    std::uint64_t totalReroutes() const;
    std::uint64_t totalStalls() const;

    /** Forward hops recorded across every link of the network. */
    std::uint64_t totalHops() const;
    std::uint64_t backtrackHops() const { return backtrackHops_; }

    /** Injection-time route-cache traffic (docs/PERF.md). */
    std::uint64_t routeCacheHits() const { return routeCacheHits_; }
    std::uint64_t routeCacheMisses() const
    {
        return routeCacheMisses_;
    }
    std::uint64_t routeCacheEvictions() const
    {
        return routeCacheEvictions_;
    }

    double avgLatency() const;
    Cycle maxLatency() const { return maxLatency_; }

    /**
     * Latency percentile in [0, 1] from the exact histogram
     * (latencies above kLatencyCap cycles share the top bucket).
     * When latencyCapped(), percentiles that land in the overflow
     * bucket under-report the true latency.
     */
    Cycle latencyPercentile(double q) const;

    /** Histogram resolution limit (the overflow-bucket index). */
    static constexpr Cycle latencyCap() { return kLatencyCap; }

    /**
     * True once any delivered latency exceeded latencyCap() and was
     * clamped into the overflow bucket: high percentiles and the
     * histogram tail are then lower bounds, not exact values.  The
     * first such delivery also emits a one-time IADM_WARN.
     */
    bool latencyCapped() const { return latencyCapped_; }

    /** Delivered packets per cycle per node over @p cycles. */
    double throughput(Cycle cycles) const;

    /** Mean busy fraction of the links of one stage over @p cycles. */
    double linkUtilization(unsigned stage, Cycle cycles) const;

    /**
     * Imbalance of nonstraight-link use at one stage: the mean over
     * switches of |plusUse - minusUse| / (plusUse + minusUse); 0 is
     * perfectly balanced (the SSDT load-balancing target).
     */
    double nonstraightImbalance(unsigned stage) const;

    double avgQueueDepth(unsigned stage) const;

    // --- structured export (sweep reports) -------------------------
    unsigned stages() const { return nStages_; }
    std::uint64_t stallsAt(unsigned stage) const
    {
        return stalls_[stage];
    }
    std::uint64_t reroutesAt(unsigned stage) const
    {
        return reroutes_[stage];
    }

    /**
     * Exact latency histogram, indexed by latency in cycles; the
     * final bucket (kLatencyCap) also counts every longer latency.
     */
    const std::vector<std::uint64_t> &latencyHistogram() const
    {
        return latencyHist_;
    }

    std::string summary(Cycle cycles) const;

    /**
     * Fold another Metrics instance (same network shape) into this
     * one.  Commutative and associative by construction: every
     * stored field is a plain sum, an element-wise vector sum, a max
     * (maxLatency_) or a boolean OR (latencyCapped_) — the averaged
     * and derived report fields (avg_recovery_wait, avg_latency,
     * percentiles, rates) are computed from the raw accumulators at
     * read time, never stored.  This is what makes per-shard metric
     * deltas mergeable in any grouping with byte-identical reports:
     * a naive merge of the *derived* values (averaging the
     * averages) is order- and partition-sensitive and wrong —
     * see shard_test.cpp's regression.
     */
    void merge(const Metrics &other);

    /**
     * Register every counter into @p reg under the "sim." prefix
     * (docs/OBSERVABILITY.md lists the names).  @p cycles scales the
     * derived rates, exactly as in the sweep report.
     */
    void exportStats(obs::StatsRegistry &reg, Cycle cycles) const;

  private:
    Label nSize_;
    unsigned nStages_;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t throttled_ = 0;
    std::uint64_t unroutable_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t latencySum_ = 0;
    Cycle maxLatency_ = 0;
    static constexpr std::size_t kLatencyCap = 4096;
    bool latencyCapped_ = false;
    std::uint64_t backtrackHops_ = 0;
    std::uint64_t routeCacheHits_ = 0;
    std::uint64_t routeCacheMisses_ = 0;
    std::uint64_t routeCacheEvictions_ = 0;
    std::uint64_t dropsByReason_[kDropReasons] = {};
    std::uint64_t faultDowns_ = 0;
    std::uint64_t faultUps_ = 0;
    std::uint64_t deliveredDuringFaults_ = 0;
    std::uint64_t recoveries_ = 0;
    std::uint64_t recoveryWaitSum_ = 0;
    std::vector<std::uint64_t> dropsByStage_; //!< per stage
    std::vector<std::uint64_t> stalls_;     //!< per stage
    std::vector<std::uint64_t> reroutes_;   //!< per stage
    std::vector<std::uint64_t> hopsByLink_; //!< [stage][switch][kind]
    std::vector<std::uint64_t> depthSum_;   //!< per stage
    std::vector<std::uint64_t> depthSamples_; //!< per stage
    std::vector<std::uint64_t> latencyHist_; //!< [latency cycles]

    std::size_t
    linkIndex(unsigned stage, Label from, topo::LinkKind kind) const
    {
        IADM_ASSERT(kind != topo::LinkKind::Exchange,
                    "IADM links only in the simulator");
        return (static_cast<std::size_t>(stage) * nSize_ + from) *
                   3 +
               static_cast<std::size_t>(kind);
    }
};

} // namespace iadm::sim

#endif // IADM_SIM_METRICS_HPP
