#include "sim/network_sim.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.hpp"
#include "core/backtrack.hpp"
#include "core/reroute.hpp"

namespace iadm::sim {

namespace {

/**
 * TSDT link kind straight from the tag words (Lemma A1.1:
 * straight iff b_i == j_i, else Plus iff b_{n+i} == j_i).  Matches
 * core::tsdtLinkKind without the per-bit accessor calls.
 */
inline topo::LinkKind
fastTsdtKind(Label j, unsigned i, const core::TsdtTag &tag)
{
    const unsigned j_i = bit(j, i);
    if (bit(tag.destination(), i) == j_i)
        return topo::LinkKind::Straight;
    return bit(tag.stateBits(), i) == j_i ? topo::LinkKind::Plus
                                          : topo::LinkKind::Minus;
}

/**
 * Residency bound for the dynamic scheme's route-cache table: the
 * initial-tag fill it memoizes is so cheap (a handful of integer
 * ops since the compressed entry carries no explicit path) that the
 * cache only pays while the table itself stays cache-resident.  At
 * the 16-byte compressed entry size the unchanged 4 MiB bound holds
 * 4x the slots the 64-byte layout did — the full auto-sized table
 * of N <= 362 networks, vs N <= 181 before — so uniform dynamic
 * traffic keeps the cache on across the mid sizes that previously
 * fell off the residency cliff.  Beyond that the gate still turns
 * the cache off rather than shrink it: a 4x-oversubscribed table
 * evicts faster than it hits and loses to the ~10-load link-table
 * trace it replaces (measured at N=1024 — docs/PERF.md).
 */
constexpr std::size_t kDynamicCacheMaxBytes = 4u << 20;

} // namespace

const char *
routingSchemeName(RoutingScheme s)
{
    switch (s) {
      case RoutingScheme::SsdtStatic: return "ssdt";
      case RoutingScheme::SsdtBalanced: return "ssdt-balanced";
      case RoutingScheme::TsdtSender: return "tsdt";
      case RoutingScheme::DistanceTag: return "distance-tag";
      case RoutingScheme::TsdtDynamic: return "tsdt-dynamic";
    }
    return "?";
}

std::optional<RoutingScheme>
parseRoutingScheme(const std::string &name)
{
    for (const auto s :
         {RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
          RoutingScheme::TsdtSender, RoutingScheme::DistanceTag,
          RoutingScheme::TsdtDynamic}) {
        if (name == routingSchemeName(s))
            return s;
    }
    return std::nullopt;
}

NetworkSim::NetworkSim(const SimConfig &cfg,
                       std::unique_ptr<TrafficPattern> traffic,
                       fault::FaultSet static_faults)
    : cfg_(cfg), topo_(cfg.netSize), faults_(std::move(static_faults)),
      traffic_(std::move(traffic)), rng_(cfg.seed),
      metrics_(cfg.netSize, topo_.stages()),
      ssdtState_(cfg.netSize, core::SwitchState::C), ltab_(topo_),
      fview_(topo_.stages(), cfg.netSize),
      queues_(topo_.stages(), cfg.netSize, cfg.queueCapacity),
      stageSize_(topo_.stages(), 0),
      stageOccupied_(topo_.stages(), 0),
      occWordsPerStage_((cfg.netSize + 63) / 64),
      serviceList_(cfg.netSize, 0), accepted_(cfg.netSize, 0),
      mask_(cfg.netSize - 1)
{
    IADM_ASSERT(traffic_ != nullptr, "traffic pattern required");
    occWords_.assign(
        static_cast<std::size_t>(topo_.stages()) * occWordsPerStage_,
        0);
    gated_ = traffic_->gated();
    feedback_ = traffic_->closedLoop();
    // The route cache exists whenever the scheme resolves tags at
    // injection and the packet path cache can hold a full path; the
    // config flag only governs whether it starts enabled, so the
    // uncached baseline is one setRouteCacheEnabled(true) away.
    if (schemeResolvesTags(cfg.scheme) &&
        topo_.stages() <= Packet::kMaxTracedStages) {
        rcache_ = RouteCache(cfg.netSize, cfg.routeCacheCapacity);
        rcacheEnabled_ = cfg.routeCache;
    }
    pending_.reserve(cfg.netSize);
    // Intra-sim sharding: clamp, partition rows contiguously, and
    // spin up the persistent pool.  SsdtBalanced is pinned serial —
    // its emptier-queue choice reads next-stage depths mid-scan,
    // which no deterministic merge can decompose (docs/SIMULATOR.md).
    shards_ = cfg.shards == 0 ? 1 : cfg.shards;
    if (shards_ > cfg.netSize)
        shards_ = static_cast<unsigned>(cfg.netSize);
    if (cfg.scheme == RoutingScheme::SsdtBalanced)
        shards_ = 1;
    // Closed-loop traffic gets onRetire callbacks from the service
    // loop, which shards would run concurrently: pin serial, exactly
    // like SsdtBalanced.
    if (feedback_)
        shards_ = 1;
    if (shards_ > 1) {
        rowsPerShard_ =
            static_cast<Label>((cfg.netSize + shards_ - 1) / shards_);
        pool_ = std::make_unique<ShardPool>(shards_);
        shard_.resize(shards_);
        shardMetrics_.reserve(shards_);
        for (unsigned k = 0; k < shards_; ++k)
            shardMetrics_.emplace_back(cfg.netSize, topo_.stages());
        events_.setShardCount(shards_);
    }
    refreshFaultView();
}

void
NetworkSim::foldShardMetrics() const
{
    if (!shardDirty_)
        return;
    shardDirty_ = false;
    for (auto &m : shardMetrics_) {
        metrics_.merge(m);
        m = Metrics(cfg_.netSize, topo_.stages());
    }
}

void
NetworkSim::setRouteCacheEnabled(bool on)
{
    IADM_ASSERT(!on || rcache_.capacity() != 0,
                "no route cache exists for scheme ",
                routingSchemeName(cfg_.scheme), " at N=",
                cfg_.netSize);
    rcacheEnabled_ = on;
}

void
NetworkSim::resetMetrics()
{
    metrics_ = Metrics(cfg_.netSize, topo_.stages());
    for (auto &m : shardMetrics_)
        m = Metrics(cfg_.netSize, topo_.stages());
    shardDirty_ = false;
}

std::size_t
NetworkSim::inFlight() const
{
#ifdef IADM_SANITIZE_BUILD
    // Shard-aware: while worker phases run (merging_), per-shard
    // deltas have not been folded into inFlight_ yet and a totalSize
    // scan would race with in-flight queue commits — the cross-check
    // is only meaningful between phases, where phase C has restored
    // the invariant.
    IADM_ASSERT(merging_ || inFlight_ == queues_.totalSize(),
                "inFlight counter drift: ", inFlight_,
                " != ", queues_.totalSize());
#endif
    return inFlight_;
}

void
NetworkSim::reconcileRow(unsigned stage, Label j)
{
    // Idempotent: compares the occupancy bit against the final queue
    // state, so a row touched by several phase records settles after
    // the first call and the rest are no-ops.
    const std::size_t q = queues_.qid(stage, j);
    const std::size_t w =
        static_cast<std::size_t>(stage) * occWordsPerStage_ +
        (j >> 6);
    const std::uint64_t bit = std::uint64_t{1} << (j & 63);
    const bool marked = (occWords_[w] & bit) != 0;
    const bool occupied = !queues_.empty(q);
    if (marked == occupied)
        return;
    if (occupied) {
        occWords_[w] |= bit;
        ++stageOccupied_[stage];
    } else {
        occWords_[w] &= ~bit;
        --stageOccupied_[stage];
    }
}

void
NetworkSim::refreshFaultView()
{
    fview_.refresh(faults_);
    faultsVersion_ = faults_.version();
}

void
NetworkSim::recordFaultTransition(Cycle cycle, const topo::Link &link,
                                  bool down)
{
    metrics_.recordFaultTransition(down);
    IADM_TRACE_EVENT(trace_,
                     down ? obs::EventKind::FaultDown
                          : obs::EventKind::FaultUp,
                     0, cycle, link.stage, link.from,
                     static_cast<std::uint8_t>(link.kind), link.to, 0,
                     0);
}

void
NetworkSim::scheduleTransientBlockage(const topo::Link &link,
                                      Cycle from, Cycle until)
{
    IADM_ASSERT(from < until, "empty blockage interval");
    // Each window holds exactly one blockage claim: the restore
    // releases only this window's claim, so overlap with a static
    // fault, another window or a churn process composes instead of
    // clobbering (the FaultSet refcounts claims per link).
    events_.schedule(from, [this, link] {
        faults_.blockLink(link);
        recordFaultTransition(now_, link, true);
    });
    events_.schedule(until, [this, link] {
        faults_.unblockLink(link);
        recordFaultTransition(now_, link, false);
    });
}

void
NetworkSim::addFaultProcess(std::unique_ptr<fault::FaultProcess> p)
{
    IADM_ASSERT(p != nullptr, "null fault process");
    churnNext_ = std::min<Cycle>(churnNext_, p->nextTransition());
    churn_.push_back(std::move(p));
}

void
NetworkSim::runChurn()
{
    const fault::FaultProcess::Observer obs =
        [this](std::uint64_t cycle, const topo::Link &link,
               bool down) {
            recordFaultTransition(cycle, link, down);
        };
    Cycle next = fault::FaultProcess::kNever;
    for (const auto &p : churn_) {
        if (p->nextTransition() <= now_)
            p->runUntil(now_, faults_, obs);
        next = std::min<Cycle>(next, p->nextTransition());
    }
    churnNext_ = next;
}

void
NetworkSim::cachePath(Packet &p) const
{
    const unsigned n = ltab_.stages();
    if (n > Packet::kMaxTracedStages) {
        p.pathValid = false; // huge network: fall back to re-tracing
        return;
    }
    Label j = p.src;
    p.pathSw[0] = static_cast<std::uint16_t>(j);
    for (unsigned i = 0; i < n; ++i) {
        j = ltab_.to(i, j, fastTsdtKind(j, i, p.tag));
        p.pathSw[i + 1] = static_cast<std::uint16_t>(j);
    }
    p.pathValid = true;
}

Label
NetworkSim::pathSwitchAt(const Packet &p, unsigned stage) const
{
    if (p.pathValid)
        return p.pathSw[stage];
    return core::tsdtTrace(p.src, p.tag, cfg_.netSize)
        .switchAt(stage);
}

core::Path
NetworkSim::materializePath(const Packet &p) const
{
    if (!p.pathValid)
        return core::tsdtTrace(p.src, p.tag, cfg_.netSize);
    const unsigned n = ltab_.stages();
    std::vector<Label> sw(n + 1);
    std::vector<topo::LinkKind> kinds(n);
    for (unsigned i = 0; i <= n; ++i)
        sw[i] = p.pathSw[i];
    for (unsigned i = 0; i < n; ++i)
        kinds[i] = fastTsdtKind(sw[i], i, p.tag);
    return {std::move(sw), std::move(kinds)};
}

void
NetworkSim::inject()
{
    const unsigned n = ltab_.stages();

    // Phase 1: collect this cycle's injection attempts.  The RNG
    // draw order — gate, then chance, then destination pick, per
    // source in ascending order — matches the unbatched loop bit
    // for bit, so batching cannot perturb any random stream.
    if (gated_)
        traffic_->beginCycle(now_);
    pending_.clear();
    for (Label s = 0; s < cfg_.netSize; ++s) {
        const bool open = gated_ ? traffic_->gate(s, rng_) : true;
        if (!rng_.chance(cfg_.injectionRate) || !open)
            continue;
        pending_.push_back({s, traffic_->pick(s, rng_)});
    }
    if (pending_.empty())
        return;

    // Phase 2: resolve tags (through the fault-epoch route cache
    // when enabled) and construct packets in their slab slots.  A
    // packet id is consumed per attempt — before routability or
    // queue-space checks — exactly as the unbatched loop did.
    const bool sender = cfg_.scheme == RoutingScheme::TsdtSender;
    // Fault-free sender tags are the plain initial tags: cheaper to
    // recompute than to probe for, so the cache sits this out.  The
    // dynamic scheme's fill (an initial tag, decoded to a path only
    // at packet construction) is almost as cheap, so memoizing it
    // only pays while the table stays cache-resident
    // (kDynamicCacheMaxBytes above; the compressed entries put the
    // full auto-sized table of N <= 362 under the bound).
    const bool use_cache =
        rcacheEnabled_ &&
        (sender ? !faults_.empty()
                : rcache_.capacity() * sizeof(RouteCache::Entry) <=
                      kDynamicCacheMaxBytes);
    const std::uint64_t version = faults_.version();
    const std::uint64_t evict0 =
        use_cache ? rcache_.stats().evictions : 0;
    const std::size_t cnt = pending_.size();
    constexpr std::size_t kGuess = 4;
    if (use_cache) {
        for (std::size_t i = 0; i < cnt && i < kGuess; ++i)
            rcache_.prefetch(pending_[i].src, pending_[i].dst);
    }
    for (std::size_t i = 0; i < cnt; ++i) {
        if (use_cache && i + kGuess < cnt)
            rcache_.prefetch(pending_[i + kGuess].src,
                             pending_[i + kGuess].dst);
        const Label src = pending_[i].src;
        const Label dst = pending_[i].dst;
        const std::uint64_t id = nextPacketId_++;
        core::TsdtTag tag;
        bool has_tag = false;
        unsigned reroutes = 0;
        const RouteCache::Entry *path_entry = nullptr;
        if (sender) {
            if (faults_.empty()) {
                // Nothing blocked: REROUTE would trace the initial
                // path, find it clear and return the initial tag
                // untouched — skip its path search (and its
                // allocations) entirely.
                tag = core::initialTag(n, dst);
                has_tag = true;
            } else if (use_cache) {
                // Memoized REROUTE: one computation per (src, dst)
                // per fault epoch, replayed (tag, reroute count and
                // FAIL bit alike) for every later packet.
#if IADM_TRACE
                // A cache miss re-runs REROUTE inside the resolve
                // call; park the identity so reroute.cpp can emit
                // Reroute events through the thread-local bridge.
                if (__builtin_expect(trace_ != nullptr, 0))
                    obs::routeTraceContext() = {trace_, id, now_};
#endif
                const auto [entry, hit] = rcache_.resolveUniversal(
                    topo_, faults_, src, dst);
#if IADM_TRACE
                if (__builtin_expect(trace_ != nullptr, 0))
                    obs::routeTraceContext().sink = nullptr;
#endif
                if (hit)
                    metrics_.recordRouteCacheHit();
                else
                    metrics_.recordRouteCacheMiss();
                IADM_TRACE_EVENT(trace_,
                                 hit ? obs::EventKind::CacheHit
                                     : obs::EventKind::CacheMiss,
                                 id, now_, 0, src,
                                 obs::TraceEvent::kNoLink, dst, dst,
                                 0);
                if (!entry->ok()) {
                    metrics_.recordUnroutable();
                    IADM_TRACE_EVENT(
                        trace_, obs::EventKind::Drop, id, now_, 0,
                        src, obs::TraceEvent::kNoLink, dst, dst, 0,
                        obs::TraceEvent::kFlagNotEnqueued |
                            obs::TraceEvent::kFlagUnroutable);
                    continue;
                }
                tag = entry->tagFor(n);
                has_tag = true;
                reroutes = entry->reroutes;
            } else {
                // The sender computes a blockage-avoiding tag
                // against the global blockage map via REROUTE.
#if IADM_TRACE
                if (__builtin_expect(trace_ != nullptr, 0))
                    obs::routeTraceContext() = {trace_, id, now_};
#endif
                auto rr =
                    core::universalRoute(topo_, faults_, src, dst);
#if IADM_TRACE
                if (__builtin_expect(trace_ != nullptr, 0))
                    obs::routeTraceContext().sink = nullptr;
#endif
                if (!rr.ok) {
                    metrics_.recordUnroutable();
                    IADM_TRACE_EVENT(
                        trace_, obs::EventKind::Drop, id, now_, 0,
                        src, obs::TraceEvent::kNoLink, dst, dst, 0,
                        obs::TraceEvent::kFlagNotEnqueued |
                            obs::TraceEvent::kFlagUnroutable);
                    continue;
                }
                tag = rr.tag;
                has_tag = true;
                reroutes =
                    rr.corollary41 + rr.backtrackStats.bitsChanged;
            }
        } else if (cfg_.scheme == RoutingScheme::TsdtDynamic &&
                   use_cache) {
            // Dynamic TSDT packets start from the initial tag; the
            // cache memoizes the packet-embedded path trace that
            // cachePath() would otherwise redo per packet.
            const auto [entry, hit] =
                rcache_.acquire(src, dst, version, 0);
            IADM_TRACE_EVENT(trace_,
                             hit ? obs::EventKind::CacheHit
                                 : obs::EventKind::CacheMiss,
                             id, now_, 0, src,
                             obs::TraceEvent::kNoLink, dst, dst, 0);
            if (hit) {
                metrics_.recordRouteCacheHit();
#ifdef IADM_SANITIZE_BUILD
                const core::TsdtTag fresh = core::initialTag(n, dst);
                IADM_ASSERT(fresh == entry->tagFor(n),
                            "route cache hit diverged (tag) for ",
                            src, "->", dst);
                // Decode the compressed entry and replay it against
                // the link table — the cross-check that pins
                // decodeDelta() to the simulator's own topology.
                std::uint16_t chk[RouteCache::kMaxPathSw];
                core::decodeDelta(src, dst, entry->delta, n, chk);
                Label jv = src;
                for (unsigned st = 0; st <= n; ++st) {
                    IADM_ASSERT(chk[st] == jv,
                                "route cache hit diverged (path) "
                                "for ",
                                src, "->", dst, " at stage ", st);
                    if (st < n)
                        jv = ltab_.to(st, jv,
                                      fastTsdtKind(jv, st, fresh));
                }
#endif
            } else {
                metrics_.recordRouteCacheMiss();
                // The initial tag's all-state-C path: delta word 0.
                entry->delta = 0;
                entry->reroutes = 0;
                entry->flags |= RouteCache::Entry::kOk;
            }
            tag = entry->tagFor(n);
            path_entry = entry;
        } else {
            tag = core::initialTag(n, dst);
        }
        // Build the packet directly in its slab slot; every live
        // field of the stale slot is overwritten (pathSw is only
        // read while pathValid).
        Packet *slot = emplaceAt(0, src);
        if (slot == nullptr) {
            metrics_.recordThrottled();
            IADM_TRACE_EVENT(trace_, obs::EventKind::Drop, id, now_,
                             0, src, obs::TraceEvent::kNoLink, dst,
                             dst, 0,
                             obs::TraceEvent::kFlagNotEnqueued);
            continue;
        }
        IADM_TRACE_EVENT(trace_, obs::EventKind::Inject, id, now_, 0,
                         src, obs::TraceEvent::kNoLink, dst,
                         static_cast<Label>(tag.destination()),
                         static_cast<Label>(tag.stateBits()));
        slot->id = id;
        slot->injected = now_;
        slot->movedAt = ~Cycle{0};
        slot->tag = tag;
        slot->src = src;
        slot->dst = dst;
        slot->reroutes = reroutes;
        slot->resumeStage = 0;
        // The tag (when sender-computed) was resolved against the
        // current fault epoch: in-flight re-resolution triggers only
        // once the version moves past this stamp.
        slot->lastEpoch = static_cast<std::uint16_t>(version);
        slot->hasTag = has_tag;
        slot->goingBack = false;
        slot->undeliverable = false;
        if (path_entry != nullptr) {
            // Expand the compressed delta straight into the packet's
            // path buffer — the decode IS the fill (~n integer ops,
            // no table loads; see core::decodeDelta).
            core::decodeDelta(src, dst, path_entry->delta, n,
                              slot->pathSw);
            slot->pathValid = true;
        } else {
            slot->pathValid = false;
            if (cfg_.scheme == RoutingScheme::TsdtDynamic)
                cachePath(*slot);
        }
        ++inFlight_;
        if (feedback_)
            traffic_->onInject(src);
        metrics_.recordInjected();
    }
    if (use_cache)
        metrics_.recordRouteCacheEvictions(rcache_.stats().evictions -
                                           evict0);
}

template <RoutingScheme S, bool Traced>
std::optional<topo::Link>
NetworkSim::chooseLink(unsigned stage, Label j, Packet &p,
                       Metrics &m)
{
    // Constant null when untraced: every hook below folds away and
    // this instantiation matches a trace-off build's code exactly.
    [[maybe_unused]] obs::TraceSink *const trace =
        Traced ? trace_ : nullptr;
    if constexpr (S == RoutingScheme::SsdtStatic ||
                  S == RoutingScheme::SsdtBalanced) {
        const unsigned t = bit(p.dst, stage);
        const core::SwitchState st = ssdtState_.get(stage, j);
        const topo::LinkKind kind = core::linkKindFor(j, t, stage, st);
        if (kind == topo::LinkKind::Straight) {
            if (fview_.isBlocked(ltab_.index(stage, j, kind)))
                return std::nullopt;
            return ltab_.link(stage, j, kind);
        }
        const topo::LinkKind spare_kind = LinkTable::oppositeKind(kind);
        const bool link_ok =
            !fview_.isBlocked(ltab_.index(stage, j, kind));
        const bool spare_ok =
            !fview_.isBlocked(ltab_.index(stage, j, spare_kind));
        if (!link_ok && !spare_ok)
            return std::nullopt;
        bool flip = !link_ok;
        if (S == RoutingScheme::SsdtBalanced && link_ok && spare_ok &&
            stage + 1 < ltab_.stages()) {
            // Balance message load: prefer the emptier queue.
            const std::size_t via_spare = queues_.size(
                queues_.qid(stage + 1, ltab_.to(stage, j, spare_kind)));
            const std::size_t via_link = queues_.size(
                queues_.qid(stage + 1, ltab_.to(stage, j, kind)));
            if (via_spare < via_link)
                flip = true;
        }
        if (flip) {
            ssdtState_.flip(stage, j);
            ++p.reroutes;
            m.recordReroute(stage);
            IADM_TRACE_EVENT(
                trace, obs::EventKind::StateFlip, p.id, now_, stage,
                j, static_cast<std::uint8_t>(spare_kind),
                static_cast<std::uint32_t>(ssdtState_.get(stage, j)),
                p.dst, 0);
            return ltab_.link(stage, j, spare_kind);
        }
        return ltab_.link(stage, j, kind);
    } else if constexpr (S == RoutingScheme::TsdtSender) {
        const topo::LinkKind kind = fastTsdtKind(j, stage, p.tag);
        if (!fview_.isBlocked(ltab_.index(stage, j, kind)))
            return ltab_.link(stage, j, kind);
        // Sender-computed tags do not adapt in flight, so a blocked
        // link here means the fault map changed after the tag was
        // resolved.  Rather than wedging this FIFO forever, the head
        // re-runs REROUTE from its current switch — at most once per
        // fault epoch (the lastEpoch stamp suppresses re-searching
        // an unchanged map).
        const auto ep = static_cast<std::uint16_t>(faults_.version());
        if (p.lastEpoch == ep)
            return std::nullopt;
        p.lastEpoch = ep;
        const auto re =
            core::rerouteFromSwitch(topo_, faults_, stage, j, p.tag);
        if (!re)
            return std::nullopt;
        m.recordRecovery(
            now_ - (p.movedAt == ~Cycle{0} ? p.injected : p.movedAt));
        p.tag = *re;
        ++p.reroutes;
        m.recordReroute(stage);
        IADM_TRACE_EVENT(trace, obs::EventKind::Reroute, p.id, now_,
                         stage, j, obs::TraceEvent::kNoLink, 1,
                         static_cast<Label>(p.tag.destination()),
                         static_cast<Label>(p.tag.stateBits()));
        // The repaired tag's stage link is unblocked by construction.
        return ltab_.link(stage, j, fastTsdtKind(j, stage, p.tag));
    } else if constexpr (S == RoutingScheme::TsdtDynamic) {
        const topo::LinkKind kind = fastTsdtKind(j, stage, p.tag);
        if (!fview_.isBlocked(ltab_.index(stage, j, kind)))
            return ltab_.link(stage, j, kind);
        if (kind != topo::LinkKind::Straight) {
            const topo::LinkKind spare_kind =
                LinkTable::oppositeKind(kind);
            if (!fview_.isBlocked(
                    ltab_.index(stage, j, spare_kind))) {
                // Corollary 4.1 applied by the switch: complement
                // the tag's state bit in flight.
                p.tag.flipStateBit(stage);
                cachePath(p);
                ++p.reroutes;
                m.recordReroute(stage);
                IADM_TRACE_EVENT(
                    trace, obs::EventKind::Reroute, p.id, now_,
                    stage, j, static_cast<std::uint8_t>(spare_kind),
                    1, static_cast<Label>(p.tag.destination()),
                    static_cast<Label>(p.tag.stateBits()));
                return ltab_.link(stage, j, spare_kind);
            }
        }
        // Straight or double-nonstraight blockage: rewrite the tag
        // (Corollary 4.2 / BACKTRACK) and turn the packet around.
        // Failure leaves the packet to be dropped by the caller.
        const core::Path path = materializePath(p);
        const auto kind2 =
            kind == topo::LinkKind::Straight
                ? fault::BlockageKind::Straight
                : fault::BlockageKind::DoubleNonstraight;
        core::BacktrackStats stats;
        const auto re = core::backtrack(topo_, faults_, path, stage,
                                        kind2, p.tag, &stats);
        if (!re) {
            // FAIL is a verdict about the *current* fault map: stamp
            // the epoch so the caller can park the packet and retry
            // only after the map changes.
            p.undeliverable = true;
            p.lastEpoch = static_cast<std::uint16_t>(faults_.version());
            return std::nullopt;
        }
        p.tag = *re;
        cachePath(p);
        ++p.reroutes;
        m.recordReroute(stage);
        IADM_TRACE_EVENT(trace, obs::EventKind::Reroute, p.id, now_,
                         stage, j, obs::TraceEvent::kNoLink,
                         stats.bitsChanged,
                         static_cast<Label>(p.tag.destination()),
                         static_cast<Label>(p.tag.stateBits()));
        p.goingBack = stats.stagesVisited > 0;
        p.resumeStage = stage - stats.stagesVisited;
        return std::nullopt; // no forward move this cycle
    } else {
        static_assert(S == RoutingScheme::DistanceTag);
        // Extra-tag-bit dominant-tag scheme of [9]: both dominant
        // digits are simultaneously zero or of opposite signs.
        const Label rem = (p.dst - j) & mask_;
        if ((rem & lowMask(stage + 1)) == 0) {
            const auto straight = topo::LinkKind::Straight;
            if (fview_.isBlocked(ltab_.index(stage, j, straight)))
                return std::nullopt;
            return ltab_.link(stage, j, straight);
        }
        if (!fview_.isBlocked(
                ltab_.index(stage, j, topo::LinkKind::Plus)))
            return ltab_.link(stage, j, topo::LinkKind::Plus);
        if (!fview_.isBlocked(
                ltab_.index(stage, j, topo::LinkKind::Minus))) {
            ++p.reroutes;
            m.recordReroute(stage);
            IADM_TRACE_EVENT(
                trace, obs::EventKind::Reroute, p.id, now_, stage,
                j,
                static_cast<std::uint8_t>(topo::LinkKind::Minus), 1,
                p.dst, 0);
            return ltab_.link(stage, j, topo::LinkKind::Minus);
        }
        return std::nullopt;
    }
}

unsigned
NetworkSim::gatherOccupied(unsigned stage, Label offset)
{
    const std::uint64_t *words =
        &occWords_[static_cast<std::size_t>(stage) *
                   occWordsPerStage_];
    Label *list = serviceList_.data();
    unsigned cnt = 0;
    // Emit the set bits of [lo, hi) in ascending order.
    const auto emitRange = [&](Label lo, Label hi) {
        if (lo >= hi)
            return;
        unsigned wi = lo >> 6;
        const unsigned w_last = (hi - 1) >> 6;
        std::uint64_t word =
            words[wi] & (~std::uint64_t{0} << (lo & 63));
        for (;;) {
            if (wi == w_last && (hi & 63) != 0)
                word &= (std::uint64_t{1} << (hi & 63)) - 1;
            while (word != 0) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(word));
                word &= word - 1;
                list[cnt++] = static_cast<Label>((wi << 6) | b);
            }
            if (wi == w_last)
                break;
            word = words[++wi];
        }
    };
    // Rotated service order: offset..N-1, then 0..offset-1.
    emitRange(offset, cfg_.netSize);
    emitRange(0, offset);
    return cnt;
}

template <RoutingScheme S, bool Traced>
void
NetworkSim::advanceStageImpl(unsigned stage)
{
    const unsigned n = ltab_.stages();
    const bool deliver = stage + 1 == n;
    const unsigned accept_limit = cfg_.crossbarSwitches ? 3 : 1;
    // Constant null when untraced (see the header comment): the
    // hook branches below fold away instead of running once per
    // serviced packet.
    [[maybe_unused]] obs::TraceSink *const trace =
        Traced ? trace_ : nullptr;

    // One aggregate depth sample per switch: while this stage is
    // being serviced nothing is pushed into its queues, so the sum
    // of per-switch depths at visit time equals the stage total now.
    metrics_.sampleStageDepths(stage, stageSize_[stage],
                               cfg_.netSize);
    if (stageOccupied_[stage] == 0)
        return;

    // Rotate the service order so no switch is systematically
    // favored under contention.  The gathered list is stable for
    // the whole scan: servicing this stage never fills another
    // queue of the same stage.
    const auto offset = static_cast<Label>(now_ & mask_);
    const unsigned cnt = gatherOccupied(stage, offset);
    const Label *list = serviceList_.data();

    constexpr unsigned kPrefetch = 8;
    for (unsigned i = 0; i < cnt && i < kPrefetch; ++i)
        queues_.prefetchFront(queues_.qid(stage, list[i]));

    // Guess the landing slot of the head packet a few queues ahead
    // of processing and prefetch it: the exact prefetchTail issued
    // at move time fires nanoseconds before the slab write and
    // cannot cover a miss.  The guess ignores blockage and the
    // balanced-queue flip; a wrong guess costs one spare line
    // fetch, a right one turns the landing-slot miss into a hit.
    constexpr unsigned kGuess = 4;
    const auto prefetchDestGuess = [&](Label j2) {
        const Packet &h = queues_.front(queues_.qid(stage, j2));
        if (h.movedAt == now_)
            return;
        if (h.goingBack) {
            if (stage > h.resumeStage && h.pathValid)
                queues_.prefetchTail(
                    queues_.qid(stage - 1, h.pathSw[stage - 1]));
            return;
        }
        Label to;
        if constexpr (S == RoutingScheme::SsdtStatic ||
                      S == RoutingScheme::SsdtBalanced) {
            const unsigned t = bit(h.dst, stage);
            to = ltab_.to(stage, j2,
                          core::linkKindFor(
                              j2, t, stage,
                              ssdtState_.get(stage, j2)));
        } else if constexpr (S == RoutingScheme::DistanceTag) {
            const Label rem = (h.dst - j2) & mask_;
            to = (rem & lowMask(stage + 1)) == 0
                     ? j2
                     : ltab_.to(stage, j2, topo::LinkKind::Plus);
        } else {
            to = ltab_.to(stage, j2,
                          fastTsdtKind(j2, stage, h.tag));
        }
        queues_.prefetchTail(queues_.qid(stage + 1, to));
    };

    for (unsigned i = 0; i < cnt; ++i) {
        if (i + kPrefetch < cnt)
            queues_.prefetchFront(
                queues_.qid(stage, list[i + kPrefetch]));
        if (i + kGuess < cnt) {
            metrics_.prefetchHopCounters(stage, list[i + kGuess]);
            if (!deliver)
                prefetchDestGuess(list[i + kGuess]);
        }
        const Label j = list[i];
        const std::size_t q = queues_.qid(stage, j);
        Packet &head = queues_.front(q);
        if (head.movedAt == now_)
            continue; // one hop per packet per cycle

        // Disposition of a head whose REROUTE/BACKTRACK returned
        // FAIL: in a dynamic environment (pending transients or an
        // attached churn process) the verdict only holds until the
        // fault map changes, so the packet parks and retries after
        // the next FaultSet::version() bump.  It is dropped outright
        // when nothing can ever change, or once it ages past
        // cfg_.maxPacketAge.
        [[maybe_unused]] const auto parkOrDrop = [&](Packet &h) {
            const bool dynamic_env =
                events_.pending() != 0 || !churn_.empty();
            const bool aged = cfg_.maxPacketAge != 0 &&
                              now_ - h.injected >= cfg_.maxPacketAge;
            if (dynamic_env && !aged) {
                metrics_.recordStall(stage);
                IADM_TRACE_EVENT(
                    trace, obs::EventKind::Stall, h.id, now_, stage,
                    j, obs::TraceEvent::kNoLink, h.dst,
                    static_cast<Label>(h.tag.destination()),
                    static_cast<Label>(h.tag.stateBits()));
                return;
            }
            metrics_.recordDropped(stage, DropReason::Unroutable);
            IADM_TRACE_EVENT(
                trace, obs::EventKind::Drop, h.id, now_, stage, j,
                obs::TraceEvent::kNoLink, h.dst,
                static_cast<Label>(h.tag.destination()),
                static_cast<Label>(h.tag.stateBits()),
                obs::TraceEvent::kFlagUnroutable);
            dropAt(stage, j);
            --inFlight_;
            if (feedback_)
                traffic_->onRetire(h.src);
        };

        // Only the dynamic scheme can carry a FAIL verdict (the
        // undeliverable flag comes from in-network BACKTRACK), so
        // the whole retry protocol folds away for every other
        // scheme's service loop.
        [[maybe_unused]] bool retried = false;
        if constexpr (S == RoutingScheme::TsdtDynamic) {
            if (head.undeliverable) {
                const auto ep =
                    static_cast<std::uint16_t>(faults_.version());
                if (head.lastEpoch == ep) {
                    // Fault map unchanged since the FAIL verdict; a
                    // new search would reach the same dead ends.
                    parkOrDrop(head);
                    continue;
                }
                // The map changed: clear the verdict and re-run the
                // route search from this switch.
                head.undeliverable = false;
                retried = true;
            }
        }

        if (head.goingBack) {
            if (stage > head.resumeStage) {
                // Walk one stage backward along the (rewritten)
                // path; below the rewrite stage old and new paths
                // coincide, so the previous switch is the new
                // path's stage-1 switch.
                const Label down_j = pathSwitchAt(head, stage - 1);
                if (queues_.full(queues_.qid(stage - 1, down_j))) {
                    // A backward walker stalled on a full queue can
                    // be one arc of a wait-for cycle (the queue's
                    // own head waiting forward on this one); the age
                    // cap must cover this wait class too, or such
                    // cycles wedge until churn happens to break
                    // them (HealthMonitor found exactly that).
                    if (cfg_.maxPacketAge != 0 &&
                        now_ - head.injected >= cfg_.maxPacketAge) {
                        metrics_.recordDropped(stage,
                                               DropReason::Expired);
                        IADM_TRACE_EVENT(
                            trace, obs::EventKind::Drop, head.id,
                            now_, stage, j, obs::TraceEvent::kNoLink,
                            head.dst,
                            static_cast<Label>(
                                head.tag.destination()),
                            static_cast<Label>(head.tag.stateBits()));
                        dropAt(stage, j);
                        --inFlight_;
                        if (feedback_)
                            traffic_->onRetire(head.src);
                        continue;
                    }
                    metrics_.recordStall(stage);
                    IADM_TRACE_EVENT(
                        trace, obs::EventKind::Stall, head.id, now_,
                        stage, j, obs::TraceEvent::kNoLink, down_j,
                        static_cast<Label>(head.tag.destination()),
                        static_cast<Label>(head.tag.stateBits()));
                    continue;
                }
                head.movedAt = now_;
                if (stage - 1 == head.resumeStage)
                    head.goingBack = false;
                metrics_.recordBacktrackHop();
                IADM_TRACE_EVENT(
                    trace, obs::EventKind::BacktrackHop, head.id,
                    now_, stage, j, obs::TraceEvent::kNoLink, down_j,
                    static_cast<Label>(head.tag.destination()),
                    static_cast<Label>(head.tag.stateBits()));
                moveAt(stage, j, stage - 1, down_j);
                continue;
            }
            head.goingBack = false;
        }

        const auto link =
            chooseLink<S, Traced>(stage, j, head, metrics_);
        if constexpr (S == RoutingScheme::TsdtDynamic) {
            if (retried && !head.undeliverable)
                metrics_.recordRecovery(
                    now_ - (head.movedAt == ~Cycle{0}
                                ? head.injected
                                : head.movedAt));
        }
        if (!link) {
            if constexpr (S == RoutingScheme::TsdtDynamic) {
                if (head.undeliverable) {
                    // Fresh FAIL verdict this cycle (chooseLink
                    // stamped the epoch): park or drop.
                    parkOrDrop(head);
                    continue;
                }
            }
            if (cfg_.maxPacketAge != 0 &&
                now_ - head.injected >= cfg_.maxPacketAge) {
                // Stalled past the age cap with a route that may yet
                // open: expired, not proven unroutable.
                metrics_.recordDropped(stage, DropReason::Expired);
                IADM_TRACE_EVENT(
                    trace, obs::EventKind::Drop, head.id, now_,
                    stage, j, obs::TraceEvent::kNoLink, head.dst,
                    static_cast<Label>(head.tag.destination()),
                    static_cast<Label>(head.tag.stateBits()));
                dropAt(stage, j);
                --inFlight_;
                if (feedback_)
                    traffic_->onRetire(head.src);
                continue;
            }
            metrics_.recordStall(stage);
            IADM_TRACE_EVENT(
                trace, obs::EventKind::Stall, head.id, now_, stage,
                j, obs::TraceEvent::kNoLink, head.dst,
                static_cast<Label>(head.tag.destination()),
                static_cast<Label>(head.tag.stateBits()));
            continue;
        }
        if (!deliver) {
            const Label to = link->to;
            const std::size_t next = queues_.qid(stage + 1, to);
            queues_.prefetchTail(next); // landing slot of the move
            const std::uint64_t v = accepted_[to];
            const std::uint64_t acc =
                (v >> 8) == epoch_ ? (v & 0xff) : 0;
            if (queues_.full(next) || acc >= accept_limit) {
                // Space-stalled heads age out exactly like
                // link-blocked ones: without this, a forward head
                // waiting on a queue whose backward-walking head
                // waits on *this* queue is a two-cycle deadlock no
                // recovery mechanism can reach.
                if (cfg_.maxPacketAge != 0 &&
                    now_ - head.injected >= cfg_.maxPacketAge) {
                    metrics_.recordDropped(stage,
                                           DropReason::Expired);
                    IADM_TRACE_EVENT(
                        trace, obs::EventKind::Drop, head.id, now_,
                        stage, j, obs::TraceEvent::kNoLink, head.dst,
                        static_cast<Label>(head.tag.destination()),
                        static_cast<Label>(head.tag.stateBits()));
                    dropAt(stage, j);
                    --inFlight_;
                    if (feedback_)
                        traffic_->onRetire(head.src);
                    continue;
                }
                metrics_.recordStall(stage);
                IADM_TRACE_EVENT(
                    trace, obs::EventKind::Stall, head.id, now_,
                    stage, j,
                    static_cast<std::uint8_t>(link->kind), to,
                    static_cast<Label>(head.tag.destination()),
                    static_cast<Label>(head.tag.stateBits()));
                continue;
            }
            accepted_[to] = (epoch_ << 8) | (acc + 1);
            head.movedAt = now_;
            metrics_.recordHop(*link);
            IADM_TRACE_EVENT(
                trace, obs::EventKind::Hop, head.id, now_, stage, j,
                static_cast<std::uint8_t>(link->kind), to,
                static_cast<Label>(head.tag.destination()),
                static_cast<Label>(head.tag.stateBits()));
            moveAt(stage, j, stage + 1, to);
        } else {
            --inFlight_;
            if (feedback_)
                traffic_->onRetire(head.src);
            metrics_.recordHop(*link);
            IADM_ASSERT(link->to == head.dst,
                        "delivery at wrong output: ", link->to,
                        " != ", head.dst);
            metrics_.recordDelivered(head, now_ + 1);
            if (fview_.anyBlocked())
                metrics_.recordFaultedDelivery();
            IADM_TRACE_EVENT(
                trace, obs::EventKind::Deliver, head.id, now_,
                stage, j, static_cast<std::uint8_t>(link->kind),
                head.dst,
                static_cast<Label>(head.tag.destination()),
                static_cast<Label>(head.tag.stateBits()));
            dropAt(stage, j);
        }
    }
}

void
NetworkSim::advanceStage(unsigned stage)
{
    // One traced-or-not test per stage call selects the loop body;
    // the untraced instantiations carry no hook code at all.
    const bool traced = obs::traceCompiledIn() && trace_ != nullptr;
    switch (cfg_.scheme) {
      case RoutingScheme::SsdtStatic:
        return traced
                   ? advanceStageImpl<RoutingScheme::SsdtStatic,
                                      true>(stage)
                   : advanceStageImpl<RoutingScheme::SsdtStatic,
                                      false>(stage);
      case RoutingScheme::SsdtBalanced:
        return traced
                   ? advanceStageImpl<RoutingScheme::SsdtBalanced,
                                      true>(stage)
                   : advanceStageImpl<RoutingScheme::SsdtBalanced,
                                      false>(stage);
      case RoutingScheme::TsdtSender:
        return traced
                   ? advanceStageImpl<RoutingScheme::TsdtSender,
                                      true>(stage)
                   : advanceStageImpl<RoutingScheme::TsdtSender,
                                      false>(stage);
      case RoutingScheme::DistanceTag:
        return traced
                   ? advanceStageImpl<RoutingScheme::DistanceTag,
                                      true>(stage)
                   : advanceStageImpl<RoutingScheme::DistanceTag,
                                      false>(stage);
      case RoutingScheme::TsdtDynamic:
        return traced
                   ? advanceStageImpl<RoutingScheme::TsdtDynamic,
                                      true>(stage)
                   : advanceStageImpl<RoutingScheme::TsdtDynamic,
                                      false>(stage);
    }
    IADM_PANIC("unreachable scheme");
}

void
NetworkSim::injectSharded()
{
    const unsigned n = ltab_.stages();

    // Draw phase: byte-identical to inject()'s — the RNG stream must
    // not depend on the shard count.  (Closed-loop patterns never
    // reach this path: feedback_ pins shards_ = 1 at construction,
    // so onInject/onRetire hooks live only in the serial loop.)
    if (gated_)
        traffic_->beginCycle(now_);
    pending_.clear();
    for (Label s = 0; s < cfg_.netSize; ++s) {
        const bool open = gated_ ? traffic_->gate(s, rng_) : true;
        if (!rng_.chance(cfg_.injectionRate) || !open)
            continue;
        pending_.push_back({s, traffic_->pick(s, rng_)});
    }
    if (pending_.empty())
        return;

    // Serially pre-assign the ids the unbatched loop would hand out:
    // attempt i (source order) consumed one id regardless of
    // routability or queue space.
    const std::size_t cnt = pending_.size();
    const std::uint64_t base = nextPacketId_;
    nextPacketId_ += cnt;

    const bool sender = cfg_.scheme == RoutingScheme::TsdtSender;
    // Same cache gate as inject() — see the comment there.
    const bool use_cache =
        rcacheEnabled_ &&
        (sender ? !faults_.empty()
                : rcache_.capacity() * sizeof(RouteCache::Entry) <=
                      kDynamicCacheMaxBytes);
    const std::uint64_t version = faults_.version();
    const std::uint64_t evict0 =
        use_cache ? rcache_.stats().evictions : 0;

    // Probe phase (serial): claim cache slots in attempt order so
    // the hit/miss/eviction sequence is exactly the serial one.
    // Fills never influence probe outcomes (acquire() reads only the
    // header fields it sets itself), so they defer to the parallel
    // phase.  Hits are snapshotted — a later claim of this batch may
    // evict the hit's slot before construction reads it.
    islots_.assign(cnt, InjectSlot{});
    // Claims of this batch still pointing into the table.  When a
    // later claim evicts one, the earlier claim redirects to its
    // pre-seeded local copy: serially it would have been filled and
    // consumed before the eviction.
    std::vector<std::pair<RouteCache::Entry *, std::size_t>> claims;
    const auto stageClaim = [&](std::size_t i, RouteCache::Entry *e,
                                bool hit) {
        InjectSlot &sl = islots_[i];
        if (hit) {
            metrics_.recordRouteCacheHit();
            sl.local = *e;
            sl.entry = &sl.local;
            sl.hitCheck = true;
            return;
        }
        metrics_.recordRouteCacheMiss();
        for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
            if (it->first == e && islots_[it->second].entry == e) {
                islots_[it->second].entry =
                    &islots_[it->second].local;
                break;
            }
        }
        sl.local = *e; // claim-time header, in case of redirection
        sl.entry = e;
        sl.needFill = true;
        claims.push_back({e, i});
    };
    for (std::size_t i = 0; i < cnt; ++i) {
        InjectSlot &sl = islots_[i];
        const Label src = pending_[i].src;
        const Label dst = pending_[i].dst;
        if (sender) {
            if (faults_.empty()) {
                sl.kind = InjectSlot::Kind::SenderPlain;
            } else if (use_cache) {
                sl.kind = InjectSlot::Kind::SenderEntry;
                const auto [e, hit] = rcache_.acquire(
                    src, dst, version,
                    RouteCache::Entry::kUniversal);
                stageClaim(i, e, hit);
            } else {
                sl.kind = InjectSlot::Kind::SenderUncached;
                sl.entry = &sl.local;
                sl.needFill = true;
            }
        } else if (cfg_.scheme == RoutingScheme::TsdtDynamic &&
                   use_cache) {
            sl.kind = InjectSlot::Kind::DynamicEntry;
            const auto [e, hit] = rcache_.acquire(src, dst, version, 0);
            stageClaim(i, e, hit);
        } else {
            sl.kind = InjectSlot::Kind::PlainTag;
        }
    }
    if (use_cache)
        metrics_.recordRouteCacheEvictions(rcache_.stats().evictions -
                                           evict0);

    // Fill + construct phase (parallel): shard k owns a contiguous
    // block of attempts.  Sources are distinct within a cycle, so
    // every stage-0 queue (and every claimed cache entry) is written
    // by exactly one shard; stage totals and inFlight_ fold in the
    // serial epilogue.
    shardDirty_ = true;
    merging_ = true;
    const std::size_t per = (cnt + shards_ - 1) / shards_;
    const std::function<void(unsigned)> job = [&](unsigned k) {
        ShardScratch &sc = shard_[k];
        Metrics &sm = shardMetrics_[k];
        sc.filled.clear();
        const std::size_t lo = std::min(cnt, k * per);
        const std::size_t hi = std::min(cnt, lo + per);
        for (std::size_t i = lo; i < hi; ++i) {
            InjectSlot &sl = islots_[i];
            const Label src = pending_[i].src;
            const Label dst = pending_[i].dst;
            if (sl.needFill) {
                switch (sl.kind) {
                  case InjectSlot::Kind::SenderEntry:
                    RouteCache::fillUniversal(*sl.entry, topo_,
                                              faults_, src, dst);
                    break;
                  case InjectSlot::Kind::SenderUncached: {
                    const auto rr = core::universalRoute(
                        topo_, faults_, src, dst);
                    // The local entry never entered the table, so
                    // stamp the key tagFor() derives the
                    // destination bits from.
                    sl.local.key =
                        RouteCache::Entry::packKey(src, dst);
                    sl.local.delta = static_cast<std::uint16_t>(
                        rr.tag.stateBits());
                    const unsigned rcount =
                        rr.corollary41 +
                        rr.backtrackStats.bitsChanged;
                    IADM_ASSERT(rcount <= 0xffffu,
                                "reroute count ", rcount,
                                " overflows the compressed entry");
                    sl.local.reroutes =
                        static_cast<std::uint16_t>(rcount);
                    if (rr.ok)
                        sl.local.flags |= RouteCache::Entry::kOk;
                    break;
                  }
                  case InjectSlot::Kind::DynamicEntry: {
                    // The initial tag's all-state-C path: delta 0.
                    RouteCache::Entry &e = *sl.entry;
                    e.delta = 0;
                    e.reroutes = 0;
                    e.flags |= RouteCache::Entry::kOk;
                    break;
                  }
                  default:
                    break;
                }
            }
#ifdef IADM_SANITIZE_BUILD
            if (sl.hitCheck) {
                if (sl.kind == InjectSlot::Kind::SenderEntry) {
                    RouteCache::checkUniversalHit(sl.local, topo_,
                                                  faults_, src, dst);
                } else {
                    const core::TsdtTag fresh =
                        core::initialTag(n, dst);
                    IADM_ASSERT(fresh == sl.local.tagFor(n),
                                "route cache hit diverged (tag) "
                                "for ",
                                src, "->", dst);
                    std::uint16_t chk[RouteCache::kMaxPathSw];
                    core::decodeDelta(src, dst, sl.local.delta, n,
                                      chk);
                    Label jv = src;
                    for (unsigned st = 0; st <= n; ++st) {
                        IADM_ASSERT(chk[st] == jv,
                                    "route cache hit diverged "
                                    "(path) for ",
                                    src, "->", dst, " at stage ",
                                    st);
                        if (st < n)
                            jv = ltab_.to(
                                st, jv,
                                fastTsdtKind(jv, st, fresh));
                    }
                }
            }
#endif
            core::TsdtTag tag;
            bool has_tag = false;
            unsigned reroutes = 0;
            const RouteCache::Entry *path_entry = nullptr;
            switch (sl.kind) {
              case InjectSlot::Kind::PlainTag:
                tag = core::initialTag(n, dst);
                break;
              case InjectSlot::Kind::SenderPlain:
                tag = core::initialTag(n, dst);
                has_tag = true;
                break;
              case InjectSlot::Kind::SenderEntry:
              case InjectSlot::Kind::SenderUncached:
                if (!sl.entry->ok()) {
                    sm.recordUnroutable();
                    continue;
                }
                tag = sl.entry->tagFor(n);
                has_tag = true;
                reroutes = sl.entry->reroutes;
                break;
              case InjectSlot::Kind::DynamicEntry:
                tag = sl.entry->tagFor(n);
                path_entry = sl.entry;
                break;
            }
            const std::size_t q = queues_.qid(0, src);
            if (queues_.full(q)) {
                sm.recordThrottled();
                continue;
            }
            Packet &slot = queues_.emplaceBack(q);
            slot.id = base + i;
            slot.injected = now_;
            slot.movedAt = ~Cycle{0};
            slot.tag = tag;
            slot.src = src;
            slot.dst = dst;
            slot.reroutes = reroutes;
            slot.resumeStage = 0;
            slot.lastEpoch = static_cast<std::uint16_t>(version);
            slot.hasTag = has_tag;
            slot.goingBack = false;
            slot.undeliverable = false;
            if (path_entry != nullptr) {
                core::decodeDelta(src, dst, path_entry->delta, n,
                                  slot.pathSw);
                slot.pathValid = true;
            } else {
                slot.pathValid = false;
                if (cfg_.scheme == RoutingScheme::TsdtDynamic)
                    cachePath(slot);
            }
            sc.filled.push_back(src);
            sm.recordInjected();
        }
    };
    pool_->run(job);
    merging_ = false;

    // Serial epilogue: fold the shared counters in fixed shard order.
    for (unsigned k = 0; k < shards_; ++k) {
        for (const Label src : shard_[k].filled) {
            ++stageSize_[0];
            reconcileRow(0, src);
            ++inFlight_;
        }
    }
}

template <RoutingScheme S>
void
NetworkSim::shardServiceRows(unsigned stage, unsigned k, Label offset,
                             bool deliver)
{
    static_assert(S != RoutingScheme::SsdtBalanced,
                  "the balanced scheme's mid-scan queue-depth reads "
                  "are order-dependent by definition; it never "
                  "shards");
    ShardScratch &sc = shard_[k];
    Metrics &sm = shardMetrics_[k];
    sc.props.clear();
    sc.pops.clear();
    sc.grants.clear();

    const Label lo =
        std::min<Label>(cfg_.netSize,
                        static_cast<Label>(k) * rowsPerShard_);
    const Label hi = std::min<Label>(cfg_.netSize, lo + rowsPerShard_);
    if (lo >= hi)
        return;
    const std::uint64_t *words =
        &occWords_[static_cast<std::size_t>(stage) *
                   occWordsPerStage_];

    // Ascending-row iteration over the shard's set bits.  Row order
    // within this phase is immaterial: every decision reads only
    // state that is stable for the whole phase or exclusive to the
    // row, so only the recorded serial rank matters — the rotated
    // service order is reimposed by the rank-sorted grant scan.
    unsigned wi = lo >> 6;
    const unsigned w_last = (hi - 1) >> 6;
    std::uint64_t word = words[wi] & (~std::uint64_t{0} << (lo & 63));
    for (;;) {
        if (wi == w_last && (hi & 63) != 0)
            word &= (std::uint64_t{1} << (hi & 63)) - 1;
        while (word != 0) {
            const auto b =
                static_cast<unsigned>(std::countr_zero(word));
            word &= word - 1;
            const Label j = static_cast<Label>((wi << 6) | b);

            const std::size_t q = queues_.qid(stage, j);
            Packet &head = queues_.front(q);
            if (head.movedAt == now_)
                continue; // one hop per packet per cycle
            const auto rank = static_cast<Label>((j - offset) & mask_);

            // See advanceStageImpl for the disposition rationale;
            // drops pop here (head_ is row-exclusive) and defer the
            // shared counters to the phase C record drain.
            const auto parkOrDrop = [&](const Packet &h) {
                const bool dynamic_env =
                    events_.pending() != 0 || !churn_.empty();
                const bool aged =
                    cfg_.maxPacketAge != 0 &&
                    now_ - h.injected >= cfg_.maxPacketAge;
                if (dynamic_env && !aged) {
                    sm.recordStall(stage);
                    return;
                }
                sm.recordDropped(stage, DropReason::Unroutable);
                queues_.dropFront(q);
                sc.pops.push_back(j);
            };

            [[maybe_unused]] bool retried = false;
            if constexpr (S == RoutingScheme::TsdtDynamic) {
                if (head.undeliverable) {
                    const auto ep = static_cast<std::uint16_t>(
                        faults_.version());
                    if (head.lastEpoch == ep) {
                        parkOrDrop(head);
                        continue;
                    }
                    head.undeliverable = false;
                    retried = true;
                }
            }

            if (head.goingBack) {
                if (stage > head.resumeStage) {
                    // The backward walk contends for a stage-1 slot
                    // exactly like a forward move contends for a
                    // stage+1 slot: propose, and let the rank-ordered
                    // grant scan apply the full check.
                    sc.props.push_back(
                        {rank, j, pathSwitchAt(head, stage - 1),
                         topo::LinkKind::Straight, true});
                    continue;
                }
                head.goingBack = false;
            }

            const auto link =
                chooseLink<S, false>(stage, j, head, sm);
            if constexpr (S == RoutingScheme::TsdtDynamic) {
                if (retried && !head.undeliverable)
                    sm.recordRecovery(
                        now_ - (head.movedAt == ~Cycle{0}
                                    ? head.injected
                                    : head.movedAt));
            }
            if (!link) {
                if constexpr (S == RoutingScheme::TsdtDynamic) {
                    if (head.undeliverable) {
                        parkOrDrop(head);
                        continue;
                    }
                }
                if (cfg_.maxPacketAge != 0 &&
                    now_ - head.injected >= cfg_.maxPacketAge) {
                    sm.recordDropped(stage, DropReason::Expired);
                    queues_.dropFront(q);
                    sc.pops.push_back(j);
                    continue;
                }
                sm.recordStall(stage);
                continue;
            }
            if (!deliver) {
                sc.props.push_back(
                    {rank, j, link->to, link->kind, false});
            } else {
                sm.recordHop(*link);
                IADM_ASSERT(link->to == head.dst,
                            "delivery at wrong output: ", link->to,
                            " != ", head.dst);
                sm.recordDelivered(head, now_ + 1);
                if (fview_.anyBlocked())
                    sm.recordFaultedDelivery();
                queues_.dropFront(q);
                sc.pops.push_back(j);
            }
        }
        if (wi == w_last)
            break;
        word = words[++wi];
    }
}

void
NetworkSim::shardCommitMoves(unsigned stage, unsigned k,
                             unsigned accept_limit)
{
    ShardScratch &sc = shard_[k];
    Metrics &sm = shardMetrics_[k];

    // Collect every proposal whose destination row this shard owns.
    // Reading the other shards' proposal vectors is safe: phase A
    // completed before this phase was dispatched (ShardPool::run is
    // a barrier), and phase B never appends to props.
    std::vector<const MoveProposal *> cands;
    for (unsigned a = 0; a < shards_; ++a) {
        for (const MoveProposal &p : shard_[a].props) {
            if (shardOf(p.toJ) == k)
                cands.push_back(&p);
        }
    }
    if (cands.empty())
        return;
    // (destination queue, serial rank) order.  Backward and forward
    // proposals on the same toJ target different stages, so the
    // backward bit is part of the queue key; ranks are unique per
    // source switch, so the sort is a deterministic total order.
    std::sort(cands.begin(), cands.end(),
              [](const MoveProposal *a, const MoveProposal *b) {
                  if (a->toJ != b->toJ)
                      return a->toJ < b->toJ;
                  if (a->backward != b->backward)
                      return !a->backward && b->backward;
                  return a->rank < b->rank;
              });

    const std::size_t cap = queues_.capacity();
    std::size_t i = 0;
    while (i < cands.size()) {
        std::size_t e = i + 1;
        while (e < cands.size() && cands[e]->toJ == cands[i]->toJ &&
               cands[e]->backward == cands[i]->backward)
            ++e;
        const bool backward = cands[i]->backward;
        const unsigned to_stage = backward ? stage - 1 : stage + 1;
        const Label to_j = cands[i]->toJ;
        const std::size_t dq = queues_.qid(to_stage, to_j);
        // During the serial scan a destination queue's size changes
        // only through that scan's own grants — refills of this
        // stage happen in other cycles and deliveries pop from the
        // last stage only.  So size-at-rank-r equals the phase-B
        // entry size plus this group's earlier grants, and the
        // serial accept counter (forward moves only, reset per
        // stage) is this group's forward grant count.
        std::size_t size = queues_.size(dq);
        unsigned granted = 0;
        for (; i < e; ++i) {
            const MoveProposal &p = *cands[i];
            if (size >= cap ||
                (!backward && granted >= accept_limit)) {
                // Denied-grant heads age out like link-blocked ones
                // (see advanceStageImpl); touching the source queue
                // here is safe for the same reason moveFront below
                // is — a head proposes to exactly one destination,
                // so no other shard reaches this fq in phase B.
                const std::size_t fq0 = queues_.qid(stage, p.fromJ);
                if (cfg_.maxPacketAge != 0 &&
                    now_ - queues_.front(fq0).injected >=
                        cfg_.maxPacketAge) {
                    sm.recordDropped(stage, DropReason::Expired);
                    queues_.dropFront(fq0);
                    sc.pops.push_back(p.fromJ);
                    continue;
                }
                sm.recordStall(stage);
                continue;
            }
            const std::size_t fq = queues_.qid(stage, p.fromJ);
            Packet &head = queues_.front(fq);
            head.movedAt = now_;
            if (backward) {
                if (to_stage == head.resumeStage)
                    head.goingBack = false;
                sm.recordBacktrackHop();
            } else {
                sm.recordHop(ltab_.link(stage, p.fromJ, p.kind));
                ++granted;
            }
            queues_.moveFront(fq, dq);
            ++size;
            sc.grants.push_back({p.fromJ, to_stage, to_j});
        }
    }
}

template <RoutingScheme S>
void
NetworkSim::advanceStageSharded(unsigned stage)
{
    const bool deliver = stage + 1 == ltab_.stages();
    const unsigned accept_limit = cfg_.crossbarSwitches ? 3 : 1;

    metrics_.sampleStageDepths(stage, stageSize_[stage],
                               cfg_.netSize);
    if (stageOccupied_[stage] == 0)
        return;

    const auto offset = static_cast<Label>(now_ & mask_);
    // The dirty mark must precede the worker phases: flipping it
    // from a worker would race the (mutable, lazily folded) flag.
    shardDirty_ = true;
    merging_ = true;
    // Phase A: service own rows; cross-row moves become rank-stamped
    // proposals, pops (drops/deliveries) leave shared counters to C.
    const std::function<void(unsigned)> phase_a = [&](unsigned k) {
        shardServiceRows<S>(stage, k, offset, deliver);
    };
    pool_->run(phase_a);
    // Phase B: each shard grants the proposals targeting its own
    // rows, replaying the serial rotated order per destination.
    const std::function<void(unsigned)> phase_b = [&](unsigned k) {
        shardCommitMoves(stage, k, accept_limit);
    };
    pool_->run(phase_b);
    merging_ = false;
    // Phase C: drain bookkeeping records in fixed shard order.
    for (unsigned k = 0; k < shards_; ++k) {
        ShardScratch &sc = shard_[k];
        for (const Label j : sc.pops) {
            --stageSize_[stage];
            --inFlight_;
            reconcileRow(stage, j);
        }
        for (const MoveGrant &g : sc.grants) {
            --stageSize_[stage];
            ++stageSize_[g.toStage];
            reconcileRow(stage, g.fromJ);
            reconcileRow(g.toStage, g.toJ);
        }
    }
}

void
NetworkSim::advanceStageShardedDispatch(unsigned stage)
{
    switch (cfg_.scheme) {
      case RoutingScheme::SsdtStatic:
        return advanceStageSharded<RoutingScheme::SsdtStatic>(stage);
      case RoutingScheme::TsdtSender:
        return advanceStageSharded<RoutingScheme::TsdtSender>(stage);
      case RoutingScheme::DistanceTag:
        return advanceStageSharded<RoutingScheme::DistanceTag>(stage);
      case RoutingScheme::TsdtDynamic:
        return advanceStageSharded<RoutingScheme::TsdtDynamic>(stage);
      case RoutingScheme::SsdtBalanced:
        break; // pinned serial at construction; pool_ never exists
    }
    IADM_PANIC("unreachable sharded scheme");
}

void
NetworkSim::setHealthMonitor(obs::HealthMonitor *m)
{
    health_ = m;
    if (m == nullptr)
        return;
    const auto &hc = m->config();
    healthNextScan_ = now_ + hc.checkInterval;
    healthWinStart_ = now_;
    const Metrics &mt = metrics();
    healthWinDelivered_ = mt.delivered();
    healthWinLatSum_ = mt.latencySum();
}

std::size_t
NetworkSim::healthNextQueue(unsigned stage, Label j,
                            const Packet &h) const
{
    // Backward walks wait purely on queue space (the mover checks
    // only fullness, never the fault view).
    if (h.goingBack && stage > h.resumeStage)
        return queues_.qid(stage - 1, pathSwitchAt(h, stage - 1));
    if (stage + 1 == ltab_.stages())
        return kHealthNoQueue; // delivery never waits on a queue
    // A head parked on a FAIL verdict or a downed link is waiting on
    // the fault map, not on space — that wait class is bounded by
    // the age cap / churn repair and must not feed the wait-for
    // graph (a reroute may also move it somewhere else entirely).
    if (h.undeliverable)
        return kHealthNoQueue;
    topo::LinkKind kind;
    switch (cfg_.scheme) {
      case RoutingScheme::SsdtStatic:
      case RoutingScheme::SsdtBalanced:
        kind = core::linkKindFor(j, bit(h.dst, stage), stage,
                                 ssdtState_.get(stage, j));
        break;
      case RoutingScheme::DistanceTag: {
        const Label rem = (h.dst - j) & mask_;
        kind = (rem & lowMask(stage + 1)) == 0
                   ? topo::LinkKind::Straight
                   : topo::LinkKind::Plus;
        break;
      }
      default:
        kind = fastTsdtKind(j, stage, h.tag);
    }
    if (fview_.isBlocked(ltab_.index(stage, j, kind)))
        return kHealthNoQueue;
    return queues_.qid(stage + 1, ltab_.to(stage, j, kind));
}

void
NetworkSim::healthScan()
{
    obs::HealthMonitor &hm = *health_;
    const unsigned n = ltab_.stages();
    const auto queue_count =
        static_cast<std::uint32_t>(std::size_t{n} * cfg_.netSize);
    hm.beginScan(now_, queue_count);
    for (unsigned stage = 0; stage < n; ++stage) {
        const std::uint64_t *words =
            occWords_.data() +
            std::size_t{stage} * occWordsPerStage_;
        for (unsigned w = 0; w < occWordsPerStage_; ++w) {
            std::uint64_t word = words[w];
            while (word != 0) {
                const auto b = static_cast<unsigned>(
                    std::countr_zero(word));
                word &= word - 1;
                const auto j = static_cast<Label>((w << 6) | b);
                const std::size_t q = queues_.qid(stage, j);
                const Packet &h = queues_.front(q);
                // A head that moved this cycle is progressing, not
                // waiting — it contributes neither stall nor edge.
                if (h.movedAt == now_)
                    continue;
                const Cycle last = h.movedAt == ~Cycle{0}
                                       ? h.injected
                                       : h.movedAt;
                hm.headStuck(static_cast<std::uint32_t>(q),
                             now_ > last ? now_ - last : 0);
                if (!queues_.full(q))
                    continue;
                const std::size_t next =
                    healthNextQueue(stage, j, h);
                // The edge stamp is (packet id, last-move cycle):
                // the cycle signature then survives scan-to-scan
                // only while these exact heads stay frozen, which is
                // the deadlock condition — recurring congestion
                // among the same queues yields fresh signatures.
                if (next != kHealthNoQueue && queues_.full(next))
                    hm.waitEdge(static_cast<std::uint32_t>(q),
                                static_cast<std::uint32_t>(next),
                                h.id ^ (last *
                                        0x9e3779b97f4a7c15ull));
            }
        }
    }
    hm.endScan();
}

void
NetworkSim::healthTick()
{
    obs::HealthMonitor &hm = *health_;
    const auto &hc = hm.config();
    const Cycle done = now_ + 1; // cycles completed incl. this one
    if (hc.windowCycles != 0 &&
        done - healthWinStart_ >= hc.windowCycles) {
        const Metrics &mt = metrics(); // folds shard deltas
        const std::uint64_t d = mt.delivered();
        const std::uint64_t ls = mt.latencySum();
        const std::uint64_t dd = d - healthWinDelivered_;
        const std::uint64_t dl = ls - healthWinLatSum_;
        hm.steadyState().addWindow(
            static_cast<double>(dd) /
                static_cast<double>(done - healthWinStart_),
            dd != 0 ? static_cast<double>(dl) /
                          static_cast<double>(dd)
                    : 0.0);
        hm.noteDelivered(done, d);
        healthWinDelivered_ = d;
        healthWinLatSum_ = ls;
        healthWinStart_ = done;
    }
    if (done >= healthNextScan_) {
        healthScan();
        hm.noteDelivered(done, metrics().delivered());
        healthNextScan_ = done + hc.checkInterval;
    }
}

void
NetworkSim::step()
{
    if (now_ >= churnNext_)
        runChurn();
    events_.commitShardSchedules();
    events_.runUntil(now_);
    if (faults_.version() != faultsVersion_)
        refreshFaultView();
    if (shardedActive()) {
        injectSharded();
        for (unsigned stage = ltab_.stages(); stage-- > 0;) {
            ++epoch_;
            advanceStageShardedDispatch(stage);
        }
    } else {
        inject();
        for (unsigned stage = ltab_.stages(); stage-- > 0;) {
            ++epoch_; // resets every acceptance count to zero, O(1)
            advanceStage(stage);
        }
    }
    if constexpr (obs::healthCompiledIn()) {
        // Post-join: every shard phase of this cycle has completed,
        // so the scan reads settled queue state serially.
        if (__builtin_expect(health_ != nullptr, 0))
            healthTick();
    }
    ++now_;
}

void
NetworkSim::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c)
        step();
}

} // namespace iadm::sim
