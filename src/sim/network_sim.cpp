#include "sim/network_sim.hpp"

#include "common/logging.hpp"
#include "common/modmath.hpp"
#include "core/backtrack.hpp"

namespace iadm::sim {

const char *
routingSchemeName(RoutingScheme s)
{
    switch (s) {
      case RoutingScheme::SsdtStatic: return "ssdt";
      case RoutingScheme::SsdtBalanced: return "ssdt-balanced";
      case RoutingScheme::TsdtSender: return "tsdt";
      case RoutingScheme::DistanceTag: return "distance-tag";
      case RoutingScheme::TsdtDynamic: return "tsdt-dynamic";
    }
    return "?";
}

std::optional<RoutingScheme>
parseRoutingScheme(const std::string &name)
{
    for (const auto s :
         {RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
          RoutingScheme::TsdtSender, RoutingScheme::DistanceTag,
          RoutingScheme::TsdtDynamic}) {
        if (name == routingSchemeName(s))
            return s;
    }
    return std::nullopt;
}

NetworkSim::NetworkSim(const SimConfig &cfg,
                       std::unique_ptr<TrafficPattern> traffic,
                       fault::FaultSet static_faults)
    : cfg_(cfg), topo_(cfg.netSize), faults_(std::move(static_faults)),
      traffic_(std::move(traffic)), rng_(cfg.seed),
      metrics_(cfg.netSize, topo_.stages()),
      ssdtState_(cfg.netSize, core::SwitchState::C)
{
    IADM_ASSERT(traffic_ != nullptr, "traffic pattern required");
    queues_.resize(topo_.stages());
    for (auto &col : queues_)
        col.assign(cfg_.netSize, SwitchQueue(cfg_.queueCapacity));
}

void
NetworkSim::resetMetrics()
{
    metrics_ = Metrics(cfg_.netSize, topo_.stages());
}

std::size_t
NetworkSim::inFlight() const
{
    std::size_t total = 0;
    for (const auto &col : queues_)
        for (const auto &q : col)
            total += q.size();
    return total;
}

void
NetworkSim::scheduleTransientBlockage(const topo::Link &link,
                                      Cycle from, Cycle until)
{
    IADM_ASSERT(from < until, "empty blockage interval");
    events_.schedule(from, [this, link] { faults_.blockLink(link); });
    events_.schedule(until,
                     [this, link] { faults_.unblockLink(link); });
}

void
NetworkSim::inject()
{
    const unsigned n = topo_.stages();
    for (Label s = 0; s < cfg_.netSize; ++s) {
        const bool open = traffic_->gate(s, rng_);
        if (!rng_.chance(cfg_.injectionRate) || !open)
            continue;
        Packet p;
        p.id = nextPacketId_++;
        p.src = s;
        p.dst = traffic_->pick(s, rng_);
        p.injected = now_;
        if (cfg_.scheme == RoutingScheme::TsdtSender) {
            // The sender computes a blockage-avoiding tag against
            // the (static) global blockage map via REROUTE.
            auto rr = core::universalRoute(topo_, faults_, s, p.dst);
            if (!rr.ok) {
                metrics_.recordUnroutable();
                continue;
            }
            p.tag = rr.tag;
            p.hasTag = true;
            p.reroutes =
                rr.corollary41 + rr.backtrackStats.bitsChanged;
        } else {
            p.tag = core::initialTag(n, p.dst);
        }
        if (queues_[0][s].push(p))
            metrics_.recordInjected();
        else
            metrics_.recordThrottled();
    }
}

std::optional<topo::Link>
NetworkSim::chooseLink(unsigned stage, Label j, Packet &p)
{
    const unsigned t = bit(p.dst, stage);

    // A link is usable when it is not blocked; downstream capacity
    // and acceptance limits are enforced by the caller.
    const auto usable = [&](const topo::Link &l) {
        return !faults_.isBlocked(l);
    };

    switch (cfg_.scheme) {
      case RoutingScheme::SsdtStatic:
      case RoutingScheme::SsdtBalanced: {
        const core::SwitchState st = ssdtState_.get(stage, j);
        const topo::LinkKind kind = core::linkKindFor(j, t, stage, st);
        topo::Link link = topo_.link(stage, j, kind);
        if (kind == topo::LinkKind::Straight)
            return usable(link) ? std::optional(link) : std::nullopt;

        const topo::Link spare = topo_.oppositeNonstraight(link);
        const bool link_ok = usable(link);
        const bool spare_ok = usable(spare);
        if (!link_ok && !spare_ok)
            return std::nullopt;
        bool flip = !link_ok;
        if (cfg_.scheme == RoutingScheme::SsdtBalanced && link_ok &&
            spare_ok && stage + 1 < topo_.stages()) {
            // Balance message load: prefer the emptier queue.
            const auto &next = queues_[stage + 1];
            if (next[spare.to].size() < next[link.to].size())
                flip = true;
        }
        if (flip) {
            ssdtState_.flip(stage, j);
            ++p.reroutes;
            metrics_.recordReroute(stage);
            return spare;
        }
        return link;
      }
      case RoutingScheme::TsdtSender: {
        const topo::LinkKind kind = tsdtLinkKind(j, stage, p.tag);
        const topo::Link link = topo_.link(stage, j, kind);
        // Sender-computed tags do not adapt in flight; a transient
        // blockage simply stalls the packet.
        return usable(link) ? std::optional(link) : std::nullopt;
      }
      case RoutingScheme::TsdtDynamic: {
        const topo::LinkKind kind = tsdtLinkKind(j, stage, p.tag);
        const topo::Link link = topo_.link(stage, j, kind);
        if (usable(link))
            return link;
        if (kind != topo::LinkKind::Straight) {
            const topo::Link spare = topo_.oppositeNonstraight(link);
            if (usable(spare)) {
                // Corollary 4.1 applied by the switch: complement
                // the tag's state bit in flight.
                p.tag.flipStateBit(stage);
                ++p.reroutes;
                metrics_.recordReroute(stage);
                return spare;
            }
        }
        // Straight or double-nonstraight blockage: rewrite the tag
        // (Corollary 4.2 / BACKTRACK) and turn the packet around.
        // Failure leaves the packet to be dropped by the caller.
        const core::Path path =
            core::tsdtTrace(p.src, p.tag, cfg_.netSize);
        const auto kind2 =
            kind == topo::LinkKind::Straight
                ? fault::BlockageKind::Straight
                : fault::BlockageKind::DoubleNonstraight;
        core::BacktrackStats stats;
        const auto re = core::backtrack(topo_, faults_, path, stage,
                                        kind2, p.tag, &stats);
        if (!re) {
            p.undeliverable = true;
            return std::nullopt;
        }
        p.tag = *re;
        ++p.reroutes;
        metrics_.recordReroute(stage);
        p.goingBack = stats.stagesVisited > 0;
        p.resumeStage = stage - stats.stagesVisited;
        return std::nullopt; // no forward move this cycle
      }
      case RoutingScheme::DistanceTag: {
        // Extra-tag-bit dominant-tag scheme of [9]: both dominant
        // digits are simultaneously zero or of opposite signs.
        const Label rem = distance(j, p.dst, cfg_.netSize);
        if ((rem & lowMask(stage + 1)) == 0) {
            const topo::Link link = topo_.straightLink(stage, j);
            return usable(link) ? std::optional(link) : std::nullopt;
        }
        const topo::Link plus = topo_.plusLink(stage, j);
        if (usable(plus))
            return plus;
        const topo::Link minus = topo_.minusLink(stage, j);
        if (usable(minus)) {
            ++p.reroutes;
            metrics_.recordReroute(stage);
            return minus;
        }
        return std::nullopt;
      }
    }
    IADM_PANIC("unreachable scheme");
}

void
NetworkSim::advanceStage(unsigned stage,
                         std::vector<unsigned> &accepted_next)
{
    const unsigned n = topo_.stages();
    const bool deliver = stage + 1 == n;
    const unsigned accept_limit = cfg_.crossbarSwitches ? 3 : 1;

    // Rotate the service order so no switch is systematically
    // favored under contention.
    const auto offset = static_cast<Label>(now_ % cfg_.netSize);
    for (Label k = 0; k < cfg_.netSize; ++k) {
        const Label j = modAdd(k, offset, cfg_.netSize);
        SwitchQueue &q = queues_[stage][j];
        metrics_.sampleQueueDepth(stage, q.size());
        if (q.empty())
            continue;
        Packet &head = q.front();
        if (head.movedAt == now_)
            continue; // one hop per packet per cycle

        if (head.goingBack) {
            if (stage > head.resumeStage) {
                // Walk one stage backward along the (rewritten)
                // path; below the rewrite stage old and new paths
                // coincide, so the previous switch is the new
                // path's stage-1 switch.
                const core::Path path = core::tsdtTrace(
                    head.src, head.tag, cfg_.netSize);
                SwitchQueue &down =
                    queues_[stage - 1][path.switchAt(stage - 1)];
                if (down.full()) {
                    metrics_.recordStall(stage);
                    continue;
                }
                Packet moving = q.pop();
                moving.movedAt = now_;
                metrics_.recordBacktrackHop();
                if (stage - 1 == moving.resumeStage)
                    moving.goingBack = false;
                const bool pushed = down.push(std::move(moving));
                IADM_ASSERT(pushed, "queue overflow despite check");
                continue;
            }
            head.goingBack = false;
        }

        const auto link = chooseLink(stage, j, head);
        if (!link) {
            if (head.undeliverable) {
                // No blockage-free path from this source exists.
                metrics_.recordDropped();
                (void)q.pop();
            } else {
                metrics_.recordStall(stage);
            }
            continue;
        }
        if (!deliver) {
            SwitchQueue &next = queues_[stage + 1][link->to];
            if (next.full() ||
                accepted_next[link->to] >= accept_limit) {
                metrics_.recordStall(stage);
                continue;
            }
            ++accepted_next[link->to];
            Packet moving = q.pop();
            moving.movedAt = now_;
            metrics_.recordHop(*link);
            const bool pushed = next.push(std::move(moving));
            IADM_ASSERT(pushed, "queue overflow despite check");
        } else {
            Packet moving = q.pop();
            metrics_.recordHop(*link);
            IADM_ASSERT(link->to == moving.dst,
                        "delivery at wrong output: ", link->to,
                        " != ", moving.dst);
            metrics_.recordDelivered(moving, now_ + 1);
        }
    }
}

void
NetworkSim::step()
{
    events_.runUntil(now_);
    inject();
    std::vector<unsigned> accepted(cfg_.netSize, 0);
    for (unsigned stage = topo_.stages(); stage-- > 0;) {
        accepted.assign(cfg_.netSize, 0);
        advanceStage(stage, accepted);
    }
    ++now_;
}

void
NetworkSim::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c)
        step();
}

} // namespace iadm::sim
