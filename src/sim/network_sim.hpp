/**
 * @file
 * Cycle-accurate packet-switched simulation of the IADM network.
 *
 * The simulator is the MIMD packet-switching environment that
 * Section 4 of the paper assumes: bounded per-switch queues, one
 * packet forwarded per switch per cycle, per-cycle injection at the
 * input column, and routing-scheme plug-ins (SSDT with and without
 * queue balancing, sender-computed TSDT, and the distance-tag
 * baseline of [9]) so the schemes can be compared under identical
 * traffic and blockage conditions.  Transient blockages can be
 * scheduled on the event calendar to model busy links.
 *
 * The hot path is flat (docs/PERF.md): link destinations come from
 * a precomputed LinkTable, blockage tests from a bitset FaultView
 * that re-syncs on FaultSet mutation, queues live in one
 * ring-buffer QueueArena slab, and the dynamic TSDT scheme reads
 * the path cached in each packet instead of re-tracing its tag.
 * step() performs no heap allocation and no virtual topology calls
 * in steady state.
 */

#ifndef IADM_SIM_NETWORK_SIM_HPP
#define IADM_SIM_NETWORK_SIM_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "fault/fault_process.hpp"
#include "fault/fault_set.hpp"
#include "obs/health.hpp"
#include "obs/trace_sink.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_table.hpp"
#include "sim/metrics.hpp"
#include "sim/route_cache.hpp"
#include "sim/shard_pool.hpp"
#include "sim/switch_model.hpp"
#include "sim/traffic.hpp"
#include "topology/iadm.hpp"

namespace iadm::sim {

/** Per-hop routing discipline used by the simulated switches. */
enum class RoutingScheme
{
    SsdtStatic,    //!< SSDT, flip only on blockage (Section 4)
    SsdtBalanced,  //!< SSDT + emptier-queue nonstraight choice
    TsdtSender,    //!< sender-computed TSDT tags via REROUTE
    DistanceTag,   //!< extra-tag-bit distance scheme of [9]
    TsdtDynamic,   //!< in-network TSDT: packets repair tags and
                   //!< physically backtrack (Section 4's dynamic
                   //!< implementation)
};

const char *routingSchemeName(RoutingScheme s);

/** Inverse of routingSchemeName(); nullopt for unknown names. */
std::optional<RoutingScheme>
parseRoutingScheme(const std::string &name);

/** Simulation parameters. */
struct SimConfig
{
    Label netSize = 16;
    RoutingScheme scheme = RoutingScheme::SsdtStatic;
    double injectionRate = 0.1; //!< packets/node/cycle
    std::size_t queueCapacity = 4;
    std::uint64_t seed = 1;
    bool crossbarSwitches = false; //!< Gamma semantics: accept up to 3

    /**
     * Memoize injection-time route resolution in a fault-epoch
     * RouteCache (tag-computing schemes only; see docs/PERF.md).
     * Off recovers the uncached per-packet computation — routing
     * results are identical either way, only speed differs.
     */
    bool routeCache = true;

    /** Route-cache entries; 0 = RouteCache::autoCapacity(). */
    std::size_t routeCacheCapacity = 0;

    /**
     * Stall-age cap in cycles; 0 disables it.  A head packet that
     * has been in the network longer than this and still cannot
     * move is dropped (DropReason::Expired for plain stalls,
     * Unroutable for packets whose BACKTRACK verdict was FAIL) —
     * the livelock/starvation guard for churning fault maps, where
     * "wait for the next repair" may never terminate.
     */
    Cycle maxPacketAge = 0;

    /**
     * Worker shards inside one simulation: switch rows of each
     * stage are partitioned into this many contiguous shards and
     * serviced in parallel (docs/SIMULATOR.md, "Determinism").
     * Deterministic by construction — metrics, queues and report
     * bytes are identical at any shard count.  1 (the default)
     * keeps the serial step, with no pool, no scratch buffers and
     * no synchronization.  Clamped to netSize.  SsdtBalanced
     * always runs serially (its emptier-queue choice reads
     * next-stage depths mid-scan, which is order-dependent by
     * definition), as does any simulator with a trace sink
     * attached (a TraceSink is single-owner and event order must
     * stay deterministic).
     */
    unsigned shards = 1;
};

/** The simulator. */
class NetworkSim
{
  public:
    NetworkSim(const SimConfig &cfg,
               std::unique_ptr<TrafficPattern> traffic,
               fault::FaultSet static_faults = {});

    /** Advance one cycle. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    Cycle now() const { return now_; }
    const SimConfig &config() const { return cfg_; }
    const Metrics &metrics() const
    {
        foldShardMetrics();
        return metrics_;
    }
    Metrics &metrics()
    {
        foldShardMetrics();
        return metrics_;
    }

    /** Effective shard count (cfg.shards clamped; 1 = serial). */
    unsigned shards() const { return shards_; }
    const topo::IadmTopology &topology() const { return topo_; }
    const fault::FaultSet &faults() const { return faults_; }

    /** Discard metrics collected so far (end-of-warmup reset). */
    void resetMetrics();

    /** Change the injection rate (e.g. to 0 for a drain phase). */
    void setInjectionRate(double rate) { cfg_.injectionRate = rate; }

    /**
     * Packets currently queued in the network.  O(1): the count is
     * maintained on every push/deliver/drop (and cross-checked
     * against a full arena scan under IADM_SANITIZE builds).
     */
    std::size_t inFlight() const;

    /**
     * Schedule a transient blockage: @p link goes down at @p from
     * and comes back at @p until.  Blockages are refcounted claims
     * on the FaultSet, so overlapping windows (or overlap with a
     * static fault or a churn process) compose: the link stays
     * blocked until the last claim is released.
     */
    void scheduleTransientBlockage(const topo::Link &link, Cycle from,
                                   Cycle until);

    /**
     * Attach a fault-churn process (fault::FaultProcess): its
     * failure/repair transitions are applied at the start of each
     * cycle they fall on, before scheduled events and injection.
     * Transitions emit FaultDown/FaultUp trace events and bump the
     * sim.fault_downs/ups counters.  Multiple processes compose
     * through the refcounted blockage model.
     */
    void addFaultProcess(std::unique_ptr<fault::FaultProcess> p);

    /** Number of attached churn processes. */
    std::size_t faultProcessCount() const { return churn_.size(); }

    /** Access the calendar for custom scheduled events. */
    EventQueue &events() { return events_; }

    /**
     * The fault-epoch route cache, or nullptr when the scheme does
     * not resolve tags at injection (SSDT / distance-tag) or the
     * network exceeds the packet path-cache size.  Exposed for
     * tests and tools; warming it never changes routing outcomes,
     * only hit rates.
     */
    RouteCache *routeCache()
    {
        return rcache_.capacity() != 0 ? &rcache_ : nullptr;
    }

    /**
     * Toggle route-cache use at runtime (e.g. to measure the
     * uncached baseline with the same binary, or from a sweep's
     * setup hook).  Enabling requires the cache to exist — see
     * routeCache().
     */
    void setRouteCacheEnabled(bool on);
    bool routeCacheEnabled() const { return rcacheEnabled_; }

    /**
     * Attach (or detach, with nullptr) an event-trace sink.  The
     * hooks only exist when the build compiled them in (CMake option
     * IADM_TRACE; see obs::traceCompiledIn()) — attaching a sink to
     * a trace-free build records nothing.  Detached tracing costs
     * one predictable branch per would-be event (docs/PERF.md).
     */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }
    obs::TraceSink *traceSink() const { return trace_; }

    /**
     * Attach (or detach, with nullptr) a liveness monitor
     * (docs/OBSERVABILITY.md).  Gated like the trace sink: hooks
     * only exist when the build compiled them in (CMake option
     * IADM_HEALTH; see obs::healthCompiledIn()), and a detached
     * monitor costs one predicted-false branch per cycle.  When
     * attached, step() feeds it wait-for scans every
     * HealthConfig::checkInterval cycles and a steady-state rollup
     * window every HealthConfig::windowCycles.  Unlike the trace
     * sink the monitor does not force a sharded sim serial: it runs
     * after the cycle's shard phases have joined.
     */
    void setHealthMonitor(obs::HealthMonitor *m);
    obs::HealthMonitor *healthMonitor() const { return health_; }

  private:
    SimConfig cfg_;
    topo::IadmTopology topo_;
    fault::FaultSet faults_;
    std::unique_ptr<TrafficPattern> traffic_;
    Rng rng_;
    Cycle now_ = 0;
    std::uint64_t nextPacketId_ = 0;
    /**
     * Serial accumulation stream.  With shards > 1 some counters
     * accumulate in shardMetrics_ instead and are folded in on
     * access (foldShardMetrics) — hence mutable: folding happens
     * behind the const metrics() accessor.
     */
    mutable Metrics metrics_;
    EventQueue events_;
    core::NetworkState ssdtState_;
    obs::TraceSink *trace_ = nullptr; //!< null = tracing disabled

    // --- liveness monitoring (docs/OBSERVABILITY.md) --------------
    obs::HealthMonitor *health_ = nullptr; //!< null = monitor off
    Cycle healthNextScan_ = 0;   //!< next wait-for scan cycle
    Cycle healthWinStart_ = 0;   //!< current rollup window start
    std::uint64_t healthWinDelivered_ = 0; //!< delivered() baseline
    std::uint64_t healthWinLatSum_ = 0;    //!< latencySum() baseline

    // --- fault churn (docs/SIMULATOR.md, "Fault lifecycle") -------
    std::vector<std::unique_ptr<fault::FaultProcess>> churn_;
    /**
     * Earliest pending churn transition; kNever with no processes
     * attached, so a churn-free run pays one compare per cycle.
     */
    Cycle churnNext_ = fault::FaultProcess::kNever;

    // --- flattened hot-path state (docs/PERF.md) ------------------
    LinkTable ltab_;    //!< [stage][switch][kind] -> destination
    FaultView fview_;   //!< bitset mirror of faults_, same indexing
    std::uint64_t faultsVersion_ = ~std::uint64_t{0};
    QueueArena queues_; //!< all stages x N queues, one Packet slab
    std::vector<std::uint32_t> stageSize_;     //!< packets per stage
    std::vector<std::uint32_t> stageOccupied_; //!< nonempty queues
    /**
     * One bit per queue, set iff nonempty, [stage][j / 64]: the
     * service scan walks set bits instead of probing all N queues.
     */
    std::vector<std::uint64_t> occWords_;
    unsigned occWordsPerStage_ = 0;
    std::vector<Label> serviceList_; //!< per-stage scratch, size N
    /**
     * Per-switch acceptance counts for the stage currently being
     * serviced, packed as (epoch << 8) | count so they never need
     * clearing: a count whose stamp is not the current epoch reads
     * as zero.  One load per check instead of two.
     */
    std::vector<std::uint64_t> accepted_;
    std::uint64_t epoch_ = 0;
    std::size_t inFlight_ = 0;
    Label mask_ = 0;     //!< netSize - 1 (N is a power of two)
    bool gated_ = true;  //!< traffic_->gated(), cached at build
    /** traffic_->closedLoop(), cached at build.  When set, the
     *  pattern gets onInject/onRetire feedback and the simulator is
     *  pinned serial (shards = 1) so retirement callbacks fire from
     *  single-threaded code only (see traffic.hpp). */
    bool feedback_ = false;

    // --- batched injection through the route cache ----------------
    RouteCache rcache_;       //!< per-sim: sweeps stay share-nothing
    bool rcacheEnabled_ = false;
    /** One cycle's injection draws, collected before resolution. */
    struct PendingInjection
    {
        Label src;
        Label dst;
    };
    std::vector<PendingInjection> pending_; //!< scratch, size N

    // --- intra-simulation sharding (docs/SIMULATOR.md) ------------
    //
    // With shards_ > 1 each stage's service scan runs as three
    // phases: (A) every shard services its own contiguous row range
    // in parallel — packet-local and own-row work commits in place,
    // cross-row moves become rank-stamped proposals; (B) shards
    // grant the proposals targeting their own destination rows, in
    // serial rank order, reproducing the serial contention outcome
    // exactly; (C) the owner drains per-shard bookkeeping records
    // in fixed shard order.  The serial path (shards_ == 1) never
    // touches any of this.
    unsigned shards_ = 1;   //!< effective count (cfg clamped)
    Label rowsPerShard_ = 0;
    std::unique_ptr<ShardPool> pool_; //!< null when serial
    /** True while worker phases run: bookkeeping counters lag the
     *  queue state until the merge completes, so the IADM_SANITIZE
     *  inFlight cross-check must not fire mid-merge. */
    bool merging_ = false;

    /** A cross-row packet move proposed in phase A. */
    struct MoveProposal
    {
        Label rank; //!< serial service rank of the source switch
        Label fromJ;
        Label toJ;
        topo::LinkKind kind; //!< forward proposals only
        bool backward;
    };
    /** A move committed in phase B (bookkeeping record). */
    struct MoveGrant
    {
        Label fromJ;
        unsigned toStage;
        Label toJ;
    };
    /** Per-shard scratch; reused every phase, cleared in place. */
    struct ShardScratch
    {
        std::vector<MoveProposal> props; //!< phase A output
        std::vector<Label> pops;   //!< rows popped in phase A
        std::vector<MoveGrant> grants; //!< phase B output
        std::vector<Label> filled; //!< rows injected into (inject)
    };
    std::vector<ShardScratch> shard_;
    /** Per-shard Metrics deltas.  Folding into metrics_ is lazy
     *  (hopsByLink_ alone is ~1.2 MB at N=4096 — a per-cycle fold
     *  would dwarf the serviced work); mutable for the same reason
     *  metrics_ is. */
    mutable std::vector<Metrics> shardMetrics_;
    mutable bool shardDirty_ = false;

    /** Per-attempt staging for the sharded two-phase inject. */
    struct InjectSlot
    {
        enum class Kind : std::uint8_t
        {
            PlainTag,       //!< initial tag, hasTag = false
            SenderPlain,    //!< initial tag, hasTag = true
            SenderEntry,    //!< sender outcome via cache entry
            SenderUncached, //!< universalRoute into local
            DynamicEntry,   //!< dynamic path trace via cache entry
        };
        RouteCache::Entry local; //!< hit snapshot / redirected fill
        RouteCache::Entry *entry = nullptr; //!< construct reads here
        Kind kind = Kind::PlainTag;
        bool needFill = false; //!< run the fill phase for this slot
        bool hitCheck = false; //!< sanitize cross-check in fill
    };
    std::vector<InjectSlot> islots_; //!< scratch, size = attempts

    /** True iff @p s resolves routing tags at injection time. */
    static bool
    schemeResolvesTags(RoutingScheme s)
    {
        return s == RoutingScheme::TsdtSender ||
               s == RoutingScheme::TsdtDynamic;
    }

    void inject();

    /** Dispatch to the scheme-specialized service loop. */
    void advanceStage(unsigned stage);

    /** True when this step must take the sharded path. */
    bool
    shardedActive() const
    {
        return pool_ != nullptr &&
               !(obs::traceCompiledIn() && trace_ != nullptr);
    }

    /** Shard owning switch row @p j (contiguous partition). */
    unsigned
    shardOf(Label j) const
    {
        return static_cast<unsigned>(j / rowsPerShard_);
    }

    /** Merge per-shard Metrics deltas into metrics_ (lazy). */
    void foldShardMetrics() const;

    /** Re-sync a row's occupancy bit / counters with its queue. */
    void reconcileRow(unsigned stage, Label j);

    /** Sharded inject: serial draws/probes, parallel fill+build. */
    void injectSharded();

    /** Dispatch to the scheme-specialized sharded service loop. */
    void advanceStageShardedDispatch(unsigned stage);

    /** Sharded service of one stage (phases A/B/C). */
    template <RoutingScheme S>
    void advanceStageSharded(unsigned stage);

    /** Phase A: shard @p k services rows it owns at @p stage. */
    template <RoutingScheme S>
    void shardServiceRows(unsigned stage, unsigned k, Label offset,
                          bool deliver);

    /** Phase B: shard @p k grants proposals into rows it owns. */
    void shardCommitMoves(unsigned stage, unsigned k,
                          unsigned accept_limit);

    /**
     * Service every occupied queue of one stage.  Templated on the
     * scheme so chooseLink() inlines into the loop with the scheme
     * branches resolved at compile time, and on whether a trace
     * sink is attached: with Traced == false the trace hooks fold
     * away entirely, so a compiled-in-but-disabled build runs the
     * same loop body as a trace-off build (the sink test is paid
     * once per stage call in advanceStage(), not per event).
     */
    template <RoutingScheme S, bool Traced>
    void advanceStageImpl(unsigned stage);

    /**
     * Choose the output link for the head packet of (stage, j) under
     * scheme @p S; returns nullopt to stall this cycle.  Counter
     * updates go to @p m — metrics_ on the serial path, the
     * caller's shard delta on the sharded one — so both paths run
     * the identical routing logic.
     */
    template <RoutingScheme S, bool Traced>
    std::optional<topo::Link> chooseLink(unsigned stage, Label j,
                                         Packet &p, Metrics &m);

    /**
     * Cold body of the per-cycle health hook: cadences rollup
     * windows and wait-for scans.  Runs after the cycle's service
     * phases complete (post-join on the sharded path), so it reads
     * settled queue state.
     */
    __attribute__((noinline, cold)) void healthTick();

    /** One wait-for-graph scan over the queue arena. */
    void healthScan();

    /**
     * Queue the head packet of (stage, j) waits to enter, computed
     * without mutating routing state (mirrors prefetchDestGuess);
     * kHealthNoQueue when the head never waits on a queue (last
     * stage delivers unconditionally).
     */
    std::size_t healthNextQueue(unsigned stage, Label j,
                                const Packet &h) const;

    static constexpr std::size_t kHealthNoQueue = ~std::size_t{0};

    /** Re-sync fview_ with faults_ (called when version() moves). */
    void refreshFaultView();

    /** Drain due churn transitions; recomputes churnNext_. */
    void runChurn();

    /** Trace + metrics for one link transition (churn/transient). */
    void recordFaultTransition(Cycle cycle, const topo::Link &link,
                               bool down);

    /** Refresh p.pathSw from (p.src, p.tag); see Packet::pathSw. */
    void cachePath(Packet &p) const;

    /** Switch the packet's path visits at @p stage (cached or not). */
    Label pathSwitchAt(const Packet &p, unsigned stage) const;

    /** Build a core::Path for BACKTRACK (cold path only). */
    core::Path materializePath(const Packet &p) const;

    // Queue operations with stage occupancy bookkeeping.  Inline:
    // every packet movement of every cycle funnels through these.

    void
    setOccupied(unsigned stage, Label j)
    {
        occWords_[static_cast<std::size_t>(stage) *
                      occWordsPerStage_ +
                  (j >> 6)] |= std::uint64_t{1} << (j & 63);
    }

    void
    clearOccupied(unsigned stage, Label j)
    {
        occWords_[static_cast<std::size_t>(stage) *
                      occWordsPerStage_ +
                  (j >> 6)] &= ~(std::uint64_t{1} << (j & 63));
    }

    /**
     * Claim the tail slot of (stage, j) for in-place construction;
     * nullptr when full.  The slot holds a stale packet: the caller
     * must overwrite every live field (pathSw may stay stale — it
     * is only read while pathValid).
     */
    Packet *
    emplaceAt(unsigned stage, Label j)
    {
        const std::size_t q = queues_.qid(stage, j);
        if (queues_.full(q))
            return nullptr;
        const bool was_empty = queues_.empty(q);
        Packet &slot = queues_.emplaceBack(q);
        ++stageSize_[stage];
        if (was_empty) {
            ++stageOccupied_[stage];
            setOccupied(stage, j);
        }
        return &slot;
    }

    bool
    pushAt(unsigned stage, Label j, Packet &&p)
    {
        const std::size_t q = queues_.qid(stage, j);
        const bool was_empty = queues_.empty(q);
        if (!queues_.push(q, std::move(p)))
            return false;
        ++stageSize_[stage];
        if (was_empty) {
            ++stageOccupied_[stage];
            setOccupied(stage, j);
        }
        return true;
    }

    void
    dropAt(unsigned stage, Label j)
    {
        const std::size_t q = queues_.qid(stage, j);
        queues_.dropFront(q);
        --stageSize_[stage];
        if (queues_.empty(q)) {
            --stageOccupied_[stage];
            clearOccupied(stage, j);
        }
    }

    void
    moveAt(unsigned from_stage, Label from_j, unsigned to_stage,
           Label to_j)
    {
        const std::size_t from_q = queues_.qid(from_stage, from_j);
        const std::size_t to_q = queues_.qid(to_stage, to_j);
        const bool was_empty = queues_.empty(to_q);
        queues_.moveFront(from_q, to_q);
        --stageSize_[from_stage];
        ++stageSize_[to_stage];
        if (queues_.empty(from_q)) {
            --stageOccupied_[from_stage];
            clearOccupied(from_stage, from_j);
        }
        if (was_empty) {
            ++stageOccupied_[to_stage];
            setOccupied(to_stage, to_j);
        }
    }

    /**
     * Collect the occupied queues of @p stage into serviceList_ in
     * rotated service order; returns the count.
     */
    unsigned gatherOccupied(unsigned stage, Label offset);
};

} // namespace iadm::sim

#endif // IADM_SIM_NETWORK_SIM_HPP
