/**
 * @file
 * Cycle-accurate packet-switched simulation of the IADM network.
 *
 * The simulator is the MIMD packet-switching environment that
 * Section 4 of the paper assumes: bounded per-switch queues, one
 * packet forwarded per switch per cycle, per-cycle injection at the
 * input column, and routing-scheme plug-ins (SSDT with and without
 * queue balancing, sender-computed TSDT, and the distance-tag
 * baseline of [9]) so the schemes can be compared under identical
 * traffic and blockage conditions.  Transient blockages can be
 * scheduled on the event calendar to model busy links.
 */

#ifndef IADM_SIM_NETWORK_SIM_HPP
#define IADM_SIM_NETWORK_SIM_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "fault/fault_set.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/switch_model.hpp"
#include "sim/traffic.hpp"
#include "topology/iadm.hpp"

namespace iadm::sim {

/** Per-hop routing discipline used by the simulated switches. */
enum class RoutingScheme
{
    SsdtStatic,    //!< SSDT, flip only on blockage (Section 4)
    SsdtBalanced,  //!< SSDT + emptier-queue nonstraight choice
    TsdtSender,    //!< sender-computed TSDT tags via REROUTE
    DistanceTag,   //!< extra-tag-bit distance scheme of [9]
    TsdtDynamic,   //!< in-network TSDT: packets repair tags and
                   //!< physically backtrack (Section 4's dynamic
                   //!< implementation)
};

const char *routingSchemeName(RoutingScheme s);

/** Inverse of routingSchemeName(); nullopt for unknown names. */
std::optional<RoutingScheme>
parseRoutingScheme(const std::string &name);

/** Simulation parameters. */
struct SimConfig
{
    Label netSize = 16;
    RoutingScheme scheme = RoutingScheme::SsdtStatic;
    double injectionRate = 0.1; //!< packets/node/cycle
    std::size_t queueCapacity = 4;
    std::uint64_t seed = 1;
    bool crossbarSwitches = false; //!< Gamma semantics: accept up to 3
};

/** The simulator. */
class NetworkSim
{
  public:
    NetworkSim(const SimConfig &cfg,
               std::unique_ptr<TrafficPattern> traffic,
               fault::FaultSet static_faults = {});

    /** Advance one cycle. */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    Cycle now() const { return now_; }
    const SimConfig &config() const { return cfg_; }
    const Metrics &metrics() const { return metrics_; }
    Metrics &metrics() { return metrics_; }
    const topo::IadmTopology &topology() const { return topo_; }
    const fault::FaultSet &faults() const { return faults_; }

    /** Discard metrics collected so far (end-of-warmup reset). */
    void resetMetrics();

    /** Change the injection rate (e.g. to 0 for a drain phase). */
    void setInjectionRate(double rate) { cfg_.injectionRate = rate; }

    /** Packets currently queued in the network. */
    std::size_t inFlight() const;

    /**
     * Schedule a transient blockage: @p link goes down at @p from
     * and comes back at @p until.
     */
    void scheduleTransientBlockage(const topo::Link &link, Cycle from,
                                   Cycle until);

    /** Access the calendar for custom scheduled events. */
    EventQueue &events() { return events_; }

  private:
    SimConfig cfg_;
    topo::IadmTopology topo_;
    fault::FaultSet faults_;
    std::unique_ptr<TrafficPattern> traffic_;
    Rng rng_;
    Cycle now_ = 0;
    std::uint64_t nextPacketId_ = 0;
    Metrics metrics_;
    EventQueue events_;
    core::NetworkState ssdtState_;
    std::vector<std::vector<SwitchQueue>> queues_; //!< [stage][switch]

    void inject();
    void advanceStage(unsigned stage,
                      std::vector<unsigned> &accepted_next);

    /**
     * Choose the output link for the head packet of (stage, j) under
     * the configured scheme; returns nullopt to stall this cycle.
     */
    std::optional<topo::Link> chooseLink(unsigned stage, Label j,
                                         Packet &p);
};

} // namespace iadm::sim

#endif // IADM_SIM_NETWORK_SIM_HPP
