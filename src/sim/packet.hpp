/**
 * @file
 * Packets for the packet-switched IADM simulation (the MIMD
 * environment Section 4 targets).
 *
 * Packet is the unit the hot path copies between ring-buffer queue
 * slots every hop, so its layout is pinned: 8-byte fields first,
 * then the tag and 4-byte fields, then the cached path and flags.
 * sizeof(Packet) is static_assert'ed below (and re-checked in
 * tests/sim_test.cpp) so accidental growth of the hot struct fails
 * loudly instead of silently dilating every queue operation.
 */

#ifndef IADM_SIM_PACKET_HPP
#define IADM_SIM_PACKET_HPP

#include <cstdint>

#include "common/bits.hpp"
#include "core/tsdt.hpp"

namespace iadm::sim {

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** One message moving through the network. */
struct Packet
{
    /**
     * Largest stage count whose TSDT path fits the in-packet cache
     * (N up to 2^16; larger networks fall back to re-tracing).
     */
    static constexpr unsigned kMaxTracedStages = 16;

    std::uint64_t id = 0;
    Cycle injected = 0;   //!< cycle the packet entered stage 0
    Cycle movedAt = ~Cycle{0}; //!< cycle of the last hop (move guard)
    core::TsdtTag tag;     //!< routing tag (TSDT/dynamic schemes)
    Label src = 0;
    Label dst = 0;
    unsigned reroutes = 0; //!< spare-link / tag repairs experienced
    unsigned resumeStage = 0; //!< stage to resume forward motion at

    /**
     * Cached TSDT path: the switch visited at every stage 0..n under
     * (src, tag), refreshed whenever the tag is computed or
     * rewritten.  Lets the dynamic scheme's backward walk and
     * blockage classification read the path instead of re-running
     * core::tsdtTrace every cycle.  Valid only while pathValid.
     */
    std::uint16_t pathSw[kMaxTracedStages + 1] = {};

    /**
     * Truncated FaultSet::version() stamp of the last fault-epoch
     * this packet's routing verdict was computed against: set at
     * injection for sender-routed packets and refreshed on every
     * in-flight re-resolution / BACKTRACK failure.  A stalled or
     * undeliverable head retries only when the live (truncated)
     * version differs — a 16-bit wraparound collision merely delays
     * the retry to the next mutation, it never causes a wrong route.
     */
    std::uint16_t lastEpoch = 0;

    bool hasTag = false;
    bool goingBack = false;   //!< dynamic scheme: walking backward
    bool undeliverable = false; //!< dynamic scheme: BACKTRACK failed
    bool pathValid = false;   //!< pathSw mirrors the current tag
};

// The hot-struct pin: growing Packet dilates every slab copy the
// simulator makes, so growth must be a conscious decision here (and
// in the matching test), never a side effect.  96 bytes also means
// every ring slot spans exactly two cache lines (stride is 32 mod
// 64), never three.
static_assert(sizeof(Packet) == 96, "Packet grew: re-budget the "
                                    "hot path before raising this");

} // namespace iadm::sim

#endif // IADM_SIM_PACKET_HPP
