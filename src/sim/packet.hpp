/**
 * @file
 * Packets for the packet-switched IADM simulation (the MIMD
 * environment Section 4 targets).
 */

#ifndef IADM_SIM_PACKET_HPP
#define IADM_SIM_PACKET_HPP

#include <cstdint>

#include "common/bits.hpp"
#include "core/tsdt.hpp"

namespace iadm::sim {

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** One message moving through the network. */
struct Packet
{
    std::uint64_t id = 0;
    Label src = 0;
    Label dst = 0;
    Cycle injected = 0;   //!< cycle the packet entered stage 0
    Cycle delivered = 0;  //!< cycle it left stage n-1 (when done)
    unsigned reroutes = 0; //!< spare-link / tag repairs experienced
    core::TsdtTag tag;     //!< routing tag (TSDT/dynamic schemes)
    bool hasTag = false;
    bool goingBack = false;   //!< dynamic scheme: walking backward
    bool undeliverable = false; //!< dynamic scheme: BACKTRACK failed
    unsigned resumeStage = 0; //!< stage to resume forward motion at
    Cycle movedAt = ~Cycle{0}; //!< cycle of the last hop (move guard)
};

} // namespace iadm::sim

#endif // IADM_SIM_PACKET_HPP
