#include "sim/route_cache.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/stats.hpp"

namespace iadm::sim {

namespace {

/** Smallest power of two >= max(v, 1). */
std::size_t
pow2At(std::size_t v)
{
    std::size_t s = 1;
    while (s < v)
        s <<= 1;
    return s;
}

} // namespace

RouteCache::RouteCache(Label n_size, std::size_t capacity)
{
    // The compressed entry packs (src << 16) | dst keys AND a
    // 16-bit state-bit delta word, so networks beyond 2^16 nodes
    // cannot use this cache at all — fail loudly instead of
    // aliasing keys or truncating deltas.
    IADM_ASSERT(n_size <= (Label{1} << 16),
                "RouteCache supports net_size <= 65536 (16-bit key "
                "halves and a 16-bit path-delta word); N=", n_size,
                " does not fit — run with the cache disabled");
    if (capacity == 0)
        capacity = autoCapacity(n_size);
    table_.assign(pow2At(capacity), Entry{});
    mask_ = table_.size() - 1;
}

std::size_t
RouteCache::autoCapacity(Label n_size)
{
    const std::size_t pairs =
        static_cast<std::size_t>(n_size) * n_size;
    return std::min<std::size_t>(pairs * 2, std::size_t{1} << 20);
}

void
RouteCache::clear()
{
    for (Entry &e : table_)
        e.flags = 0;
}

std::size_t
RouteCache::occupied() const
{
    std::size_t live = 0;
    for (const Entry &e : table_)
        live += e.occupied();
    return live;
}

std::pair<RouteCache::Entry *, bool>
RouteCache::acquire(Label src, Label dst, std::uint64_t version,
                    std::uint8_t mode)
{
    // Entries hold 32-bit truncated stamps.  The full 64-bit stream
    // is monotone per owner, so the high word moves at most once per
    // 2^32 mutations; clearing the table there makes truncated
    // equality equivalent to full equality for everything that
    // remains.
    const auto high = static_cast<std::uint32_t>(version >> 32);
    if (high != versionHigh_) {
        clear();
        versionHigh_ = high;
    }
    const auto v32 = static_cast<std::uint32_t>(version);

    const std::uint32_t key = keyOf(src, dst);
    const std::size_t base = slotOf(src, dst);

    // One pass over the probe window: a current-version key match
    // (of the same content mode) is a hit; otherwise remember the
    // best slot to claim — the key's own (stale) slot if present,
    // else the first vacant or stale slot.  Claims never leave
    // holes (occupied slots stay occupied), so stopping the scan at
    // a vacant slot is safe.
    Entry *claim = nullptr;
    bool evicting = false;
    for (unsigned i = 0; i < kMaxProbe; ++i) {
        Entry &e = table_[(base + i) & mask_];
        if (!e.occupied()) {
            if (claim == nullptr)
                claim = &e;
            break;
        }
        if (e.key == key) {
            if (e.version == v32 &&
                (e.flags & Entry::kUniversal) == mode) {
                ++stats_.hits;
                return {&e, true};
            }
            // The pair's previous-epoch (or other-mode) entry:
            // always reuse it so a key never occupies two slots of
            // the window.
            claim = &e;
            continue;
        }
        if (claim == nullptr && e.version != v32)
            claim = &e; // stale foreign entry: free to overwrite
    }
    if (claim == nullptr) {
        // Window full of live current-epoch entries: evict the
        // first-probed slot (deterministic, direct-mapped flavor).
        claim = &table_[base];
        evicting = true;
    }
    ++stats_.misses;
    if (evicting)
        ++stats_.evictions;
    claim->key = key;
    claim->version = v32;
    claim->flags = Entry::kOccupied | mode;
    return {claim, false};
}

void
RouteCache::fillUniversal(Entry &e, const topo::IadmTopology &topo,
                          const fault::FaultSet &faults, Label src,
                          Label dst)
{
    const core::CompactRoute cr =
        core::universalRouteCompact(topo, faults, src, dst);
    // The state bits ARE the compressed path; the destination bits
    // are recoverable from the key (Theorem 3.1), so nothing else
    // of the route needs storing.
    e.delta = static_cast<std::uint16_t>(cr.tag.stateBits());
    IADM_ASSERT(cr.reroutes <= 0xffffu,
                "reroute count ", cr.reroutes,
                " overflows the compressed entry (bound is ~4n^2)");
    e.reroutes = static_cast<std::uint16_t>(cr.reroutes);
    if (cr.ok)
        e.flags |= Entry::kOk;
}

void
RouteCache::checkUniversalHit([[maybe_unused]] const Entry &e,
                              [[maybe_unused]] const topo::IadmTopology &topo,
                              [[maybe_unused]] const fault::FaultSet &faults,
                              [[maybe_unused]] Label src,
                              [[maybe_unused]] Label dst)
{
#ifdef IADM_SANITIZE_BUILD
    const auto fresh = core::universalRoute(topo, faults, src, dst);
    IADM_ASSERT(fresh.ok == e.ok(),
                "route cache hit diverged (ok) for ", src, "->",
                dst);
    IADM_ASSERT(!fresh.ok || fresh.tag == e.tagFor(topo.stages()),
                "route cache hit diverged (tag) for ", src, "->",
                dst);
    IADM_ASSERT(!fresh.ok ||
                    fresh.corollary41 +
                            fresh.backtrackStats.bitsChanged ==
                        e.reroutes,
                "route cache hit diverged (reroutes) for ", src,
                "->", dst);
    if (fresh.ok) {
        // The compressed entry must decode to the exact REROUTE
        // path (decode o encode = identity).
        std::uint16_t sw[kMaxPathSw];
        core::decodeDelta(src, dst, e.delta, topo.stages(), sw);
        for (unsigned i = 0; i <= topo.stages(); ++i)
            IADM_ASSERT(sw[i] == fresh.path.switchAt(i),
                        "route cache hit diverged (decoded path) "
                        "for ",
                        src, "->", dst, " at stage ", i);
    }
#endif
}

std::pair<const RouteCache::Entry *, bool>
RouteCache::resolveUniversal(const topo::IadmTopology &topo,
                             const fault::FaultSet &faults, Label src,
                             Label dst)
{
    const auto [entry, hit] =
        acquire(src, dst, faults.version(), Entry::kUniversal);
    if (hit) {
        checkUniversalHit(*entry, topo, faults, src, dst);
        return {entry, true};
    }
    fillUniversal(*entry, topo, faults, src, dst);
    return {entry, false};
}

void
RouteCache::exportStats(obs::StatsRegistry &reg) const
{
    reg.counter("route_cache.capacity", table_.size());
    reg.counter("route_cache.entry_bytes", sizeof(Entry));
    reg.counter("route_cache.occupancy", occupied());
    reg.counter("route_cache.hits", stats_.hits);
    reg.counter("route_cache.misses", stats_.misses);
    reg.counter("route_cache.evictions", stats_.evictions);
}

} // namespace iadm::sim
