/**
 * @file
 * Fault-epoch route cache: memoized REROUTE outcomes keyed by
 * (source, destination) and stamped with the fault set's mutation
 * version.
 *
 * Algorithm REROUTE is a pure function of (topology, fault set,
 * src, dst), and a simulation's fault set changes only at injection
 * epochs (static scenarios never, transient blockages a handful of
 * times per run) — so the classic flow-cache move applies: compute
 * each pair's route once per fault epoch and replay the stored
 * outcome for every later packet of that epoch.  An entry stores
 * everything a replay needs — the final TsdtTag, the per-stage path
 * in the packet-embedded form (Packet::pathSw), the per-packet
 * reroute count, and a FAIL bit so unreachable pairs are not
 * re-searched every cycle.
 *
 * Invalidation is O(1) for the whole table: entries carry the
 * FaultSet::version() they were computed under, and a lookup under
 * any other version is a miss (the slot is then reusable).  The
 * table is open-addressing with linear probing over a bounded probe
 * window; when the window is full of live entries the oldest-probed
 * slot is evicted — a wrong answer is impossible, an evicted pair
 * is merely recomputed.  Each Entry is exactly one cache line.
 *
 * Under IADM_SANITIZE builds every hit is cross-checked against a
 * fresh universalRoute() call (resolveUniversal) or re-trace
 * (callers that fill entries themselves do the equivalent check).
 */

#ifndef IADM_SIM_ROUTE_CACHE_HPP
#define IADM_SIM_ROUTE_CACHE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/reroute.hpp"
#include "sim/packet.hpp"

namespace iadm::obs {
class StatsRegistry;
}

namespace iadm::sim {

/** Memoized per-(src, dst) routing outcomes for one fault epoch. */
class RouteCache
{
  public:
    /** pathSw slots per entry (mirrors Packet::pathSw). */
    static constexpr unsigned kMaxPathSw =
        Packet::kMaxTracedStages + 1;

    /** Slots inspected per probe before evicting. */
    static constexpr unsigned kMaxProbe = 8;

    /**
     * One cached route.  Exactly 64 bytes — one cache line per
     * probe — enforced below.
     */
    struct Entry
    {
        std::uint64_t version = 0; //!< FaultSet::version() at fill
        core::TsdtTag tag;         //!< REROUTE's final tag
        std::uint32_t reroutes = 0; //!< Packet::reroutes to charge
        std::uint32_t key = 0;     //!< (src << 16) | dst
        std::uint16_t pathSw[kMaxPathSw] = {}; //!< per-stage path
        std::uint8_t flags = 0;    //!< kOccupied | kOk | kPathValid

        static constexpr std::uint8_t kOccupied = 1;
        static constexpr std::uint8_t kOk = 2;        //!< FAIL bit inverse
        static constexpr std::uint8_t kPathValid = 4;
        /**
         * Content mode: set when the entry holds a REROUTE
         * (universalRoute) outcome, clear when it holds the
         * initial-tag trace the dynamic scheme injects with.  Part
         * of the match key — the two fills answer different
         * questions for the same (src, dst), so a mode mismatch is
         * a miss, never a wrong replay.
         */
        static constexpr std::uint8_t kUniversal = 8;

        bool occupied() const { return flags & kOccupied; }
        bool ok() const { return flags & kOk; }
        bool pathValid() const { return flags & kPathValid; }
    };
    static_assert(sizeof(Entry) == 64,
                  "RouteCache::Entry must stay one cache line");

    /** Cumulative counters (not reset by the owner's warmup). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0; //!< live entries overwritten
    };

    /** Empty cache: capacity() == 0, must not be probed. */
    RouteCache() = default;

    /**
     * @param n_size   network size (keys pack two 16-bit labels, so
     *                 n_size must be <= 65536)
     * @param capacity table entries; 0 picks autoCapacity(n_size).
     *                 Rounded up to a power of two.
     */
    explicit RouteCache(Label n_size, std::size_t capacity = 0);

    /**
     * Default sizing: two slots per (src, dst) pair, capped at 2^20
     * entries (64 MiB) so giant networks degrade to an
     * eviction-bounded cache instead of exhausting memory.
     */
    static std::size_t autoCapacity(Label n_size);

    /**
     * Look up (src, dst) under fault version @p version and content
     * mode @p mode (Entry::kUniversal or 0) and claim a slot on
     * miss.  Returns (entry, hit): on a hit the entry is valid and
     * must not be written; on a miss it has key/version/mode set
     * and is otherwise blank, and the caller must fill tag /
     * reroutes / pathSw and the kOk / kPathValid flags before the
     * next acquire.  Stats are updated.
     */
    std::pair<Entry *, bool> acquire(Label src, Label dst,
                                     std::uint64_t version,
                                     std::uint8_t mode);

    /**
     * Convenience resolution through universalRouteCompact(): probe,
     * fill on miss, and (under IADM_SANITIZE builds) cross-check
     * every hit against a fresh universalRoute() call.  Returns
     * (entry, hit); the entry is always filled (check ok()).
     */
    std::pair<const Entry *, bool>
    resolveUniversal(const topo::IadmTopology &topo,
                     const fault::FaultSet &faults, Label src,
                     Label dst);

    // --- split probe/fill for sharded batch resolution ------------
    //
    // A sharded injector cannot interleave probes and fills the way
    // resolveUniversal() does: probes mutate the table (claims,
    // evictions) and must stay serial to keep the exact serial
    // hit/miss/eviction sequence, while fills are the expensive part
    // and are safe to parallelize — each claimed entry is written by
    // exactly one attempt, and probe decisions read only the header
    // fields (key/version/flags mode bit) that acquire() itself
    // sets, never the payload a fill writes.  The insertion
    // discipline is therefore: claim every slot of the batch through
    // acquire() under the serial epoch guard, snapshot hits (a later
    // claim of the batch may evict a hit's slot), redirect
    // claims whose slot a later claim of the same batch evicted,
    // then fill the claimed entries concurrently.

    /**
     * Fill a freshly acquire()d universal-mode entry from REROUTE
     * (universalRouteCompact).  A pure function of
     * (topo, faults, src, dst) writing only @p e's payload — safe to
     * run concurrently for distinct entries.
     */
    static void fillUniversal(Entry &e,
                              const topo::IadmTopology &topo,
                              const fault::FaultSet &faults,
                              Label src, Label dst);

    /**
     * IADM_SANITIZE cross-check of a universal-mode hit (or a
     * snapshot of one) against a fresh universalRoute() call.
     * No-op in regular builds.  Read-only — safe concurrently.
     */
    static void checkUniversalHit(const Entry &e,
                                  const topo::IadmTopology &topo,
                                  const fault::FaultSet &faults,
                                  Label src, Label dst);

    /** Hint the first probe slot of (src, dst) into cache. */
    void
    prefetch(Label src, Label dst) const
    {
        __builtin_prefetch(&table_[slotOf(src, dst)]);
    }

    std::size_t capacity() const { return table_.size(); }
    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

    /** Register the counters into @p reg as route_cache.*. */
    void exportStats(obs::StatsRegistry &reg) const;

    /** Drop every entry (and keep the stats). */
    void clear();

  private:
    std::vector<Entry> table_;
    std::size_t mask_ = 0;
    Stats stats_;

    static std::uint32_t
    keyOf(Label src, Label dst)
    {
        return (src << 16) | dst;
    }

    /** First probe slot of (src, dst): a splitmix64-mixed key. */
    std::size_t
    slotOf(Label src, Label dst) const
    {
        std::uint64_t z = keyOf(src, dst) + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return (z ^ (z >> 31)) & mask_;
    }
};

} // namespace iadm::sim

#endif // IADM_SIM_ROUTE_CACHE_HPP
