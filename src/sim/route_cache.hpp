/**
 * @file
 * Fault-epoch route cache: memoized REROUTE outcomes keyed by
 * (source, destination) and stamped with the fault set's mutation
 * version.
 *
 * Algorithm REROUTE is a pure function of (topology, fault set,
 * src, dst), and a simulation's fault set changes only at injection
 * epochs (static scenarios never, transient blockages a handful of
 * times per run) — so the classic flow-cache move applies: compute
 * each pair's route once per fault epoch and replay the stored
 * outcome for every later packet of that epoch.
 *
 * An entry stores everything a replay needs in 16 bytes: the key,
 * the epoch stamp, the per-packet reroute count, a FAIL bit so
 * unreachable pairs are not re-searched every cycle — and the
 * route itself as a *compressed path delta* rather than an explicit
 * per-stage switch list.  The final tag's destination bits are the
 * key's own dst (Theorem 3.1: REROUTE never changes them), and its
 * n state bits pin down the full path under Lemma A1.1, so the
 * 16-bit delta word IS the path; core::decodeDelta() expands it
 * back into Packet::pathSw in ~n integer ops on a hit.  This is the
 * Hari/Niesen/Wilfong observation (PAPERS.md) that forwarding state
 * compresses far below an explicit path, specialized to the IADM
 * state model where it is exact and lossless (docs/SIMULATOR.md).
 *
 * Invalidation is O(1) for the whole table: entries carry the
 * FaultSet::version() they were computed under, and a lookup under
 * any other version is a miss (the slot is then reusable).  Stamps
 * are stored truncated to 32 bits; the table tracks the last-seen
 * high word and clears itself whenever it moves (at most once per
 * 2^32 mutations), so truncated equality always implies full
 * equality.  The table is open-addressing with linear probing over
 * a bounded probe window — four entries per cache line now, so the
 * window spans 4 lines instead of 8 at double the associativity;
 * when the window is full of live entries the first-probed slot is
 * evicted — a wrong answer is impossible, an evicted pair is merely
 * recomputed.
 *
 * Under IADM_SANITIZE builds every hit is cross-checked against a
 * fresh universalRoute() call (resolveUniversal) or re-trace
 * (callers that fill entries themselves do the equivalent check).
 */

#ifndef IADM_SIM_ROUTE_CACHE_HPP
#define IADM_SIM_ROUTE_CACHE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/reroute.hpp"
#include "sim/packet.hpp"

namespace iadm::obs {
class StatsRegistry;
}

namespace iadm::sim {

/** Memoized per-(src, dst) routing outcomes for one fault epoch. */
class RouteCache
{
  public:
    /**
     * Decode-buffer slots a cached path expands into (mirrors
     * Packet::pathSw).
     */
    static constexpr unsigned kMaxPathSw =
        Packet::kMaxTracedStages + 1;

    /** Slots inspected per probe before evicting (4 cache lines). */
    static constexpr unsigned kMaxProbe = 16;

    /**
     * One cached route, compressed to a quarter cache line: the
     * explicit pathSw[] of the 64-byte layout is replaced by the
     * 16-bit state-bit delta that decodeDelta() expands on demand.
     */
    struct Entry
    {
        std::uint32_t key = 0;      //!< (src << 16) | dst
        std::uint32_t version = 0;  //!< truncated FaultSet::version()
        std::uint16_t delta = 0;    //!< final-tag state bits (path)
        std::uint16_t reroutes = 0; //!< Packet::reroutes to charge
        std::uint8_t flags = 0;     //!< kOccupied | kOk | kUniversal

        static constexpr std::uint8_t kOccupied = 1;
        static constexpr std::uint8_t kOk = 2; //!< FAIL bit inverse
        /**
         * Content mode: set when the entry holds a REROUTE
         * (universalRoute) outcome, clear when it holds the
         * initial-tag (all-state-C) route the dynamic scheme injects
         * with.  Part of the match key — the two fills answer
         * different questions for the same (src, dst), so a mode
         * mismatch is a miss, never a wrong replay.
         */
        static constexpr std::uint8_t kUniversal = 8;

        bool occupied() const { return flags & kOccupied; }
        bool ok() const { return flags & kOk; }

        /** Pack (src, dst) into the stored key form. */
        static std::uint32_t
        packKey(Label src, Label dst)
        {
            return (src << 16) | dst;
        }

        Label dstLabel() const { return key & 0xffffu; }
        Label srcLabel() const { return key >> 16; }

        /**
         * Reconstruct the entry's final TsdtTag.  Valid because the
         * destination bits of both content modes equal the key's dst
         * (Theorem 3.1 for REROUTE outcomes, by construction for
         * initial tags), so they need not be stored.
         */
        core::TsdtTag
        tagFor(unsigned n_stages) const
        {
            return {n_stages, dstLabel(), delta};
        }
    };
    static_assert(sizeof(Entry) <= 16,
                  "RouteCache::Entry must stay within a quarter "
                  "cache line — the compressed-path memory-wall fix "
                  "rests on it");
    // The compressed layout leans on the 16-bit packing twice over:
    // labels must fit the key halves, and n <= 16 state bits must
    // fit the delta word.  Both reduce to net_size <= 65536, which
    // the constructor enforces at runtime with a clear error.
    static_assert(sizeof(Label) * 8 >= 32,
                  "Entry::key packs two 16-bit labels into a Label-"
                  "sized word");
    static_assert(Packet::kMaxTracedStages >= 16,
                  "a 16-bit delta word encodes up to n = 16 stages; "
                  "the packet path buffer must hold that decode");

    /** Cumulative counters (not reset by the owner's warmup). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0; //!< live entries overwritten
    };

    /** Empty cache: capacity() == 0, must not be probed. */
    RouteCache() = default;

    /**
     * @param n_size   network size (keys pack two 16-bit labels, so
     *                 n_size must be <= 65536)
     * @param capacity table entries; 0 picks autoCapacity(n_size).
     *                 Rounded up to a power of two.
     */
    explicit RouteCache(Label n_size, std::size_t capacity = 0);

    /**
     * Default sizing: two slots per (src, dst) pair, capped at 2^20
     * entries (16 MiB at the compressed entry size — a quarter of
     * the 64-byte layout's 64 MiB) so giant networks degrade to an
     * eviction-bounded cache instead of exhausting memory.
     */
    static std::size_t autoCapacity(Label n_size);

    /**
     * Look up (src, dst) under fault version @p version and content
     * mode @p mode (Entry::kUniversal or 0) and claim a slot on
     * miss.  Returns (entry, hit): on a hit the entry is valid and
     * must not be written; on a miss it has key/version/mode set
     * and is otherwise blank, and the caller must fill delta /
     * reroutes and the kOk flag before the next acquire.  Stats are
     * updated.
     */
    std::pair<Entry *, bool> acquire(Label src, Label dst,
                                     std::uint64_t version,
                                     std::uint8_t mode);

    /**
     * Convenience resolution through universalRouteCompact(): probe,
     * fill on miss, and (under IADM_SANITIZE builds) cross-check
     * every hit against a fresh universalRoute() call.  Returns
     * (entry, hit); the entry is always filled (check ok()).
     */
    std::pair<const Entry *, bool>
    resolveUniversal(const topo::IadmTopology &topo,
                     const fault::FaultSet &faults, Label src,
                     Label dst);

    // --- split probe/fill for sharded batch resolution ------------
    //
    // A sharded injector cannot interleave probes and fills the way
    // resolveUniversal() does: probes mutate the table (claims,
    // evictions) and must stay serial to keep the exact serial
    // hit/miss/eviction sequence, while fills are the expensive part
    // and are safe to parallelize — each claimed entry is written by
    // exactly one attempt, and probe decisions read only the header
    // fields (key/version/flags mode bit) that acquire() itself
    // sets, never the payload a fill writes.  The insertion
    // discipline is therefore: claim every slot of the batch through
    // acquire() under the serial epoch guard, snapshot hits (a later
    // claim of the batch may evict a hit's slot), redirect
    // claims whose slot a later claim of the same batch evicted,
    // then fill the claimed entries concurrently.

    /**
     * Fill a freshly acquire()d universal-mode entry from REROUTE
     * (universalRouteCompact).  A pure function of
     * (topo, faults, src, dst) writing only @p e's payload — safe to
     * run concurrently for distinct entries.
     */
    static void fillUniversal(Entry &e,
                              const topo::IadmTopology &topo,
                              const fault::FaultSet &faults,
                              Label src, Label dst);

    /**
     * IADM_SANITIZE cross-check of a universal-mode hit (or a
     * snapshot of one) against a fresh universalRoute() call.
     * No-op in regular builds.  Read-only — safe concurrently.
     */
    static void checkUniversalHit(const Entry &e,
                                  const topo::IadmTopology &topo,
                                  const fault::FaultSet &faults,
                                  Label src, Label dst);

    /** Hint the first probe slot of (src, dst) into cache. */
    void
    prefetch(Label src, Label dst) const
    {
        __builtin_prefetch(&table_[slotOf(src, dst)]);
    }

    std::size_t capacity() const { return table_.size(); }

    /** Live entries (O(capacity) scan — stats-export cold path). */
    std::size_t occupied() const;

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

    /** Register counters and geometry into @p reg as route_cache.*. */
    void exportStats(obs::StatsRegistry &reg) const;

    /** Drop every entry (and keep the stats). */
    void clear();

  private:
    std::vector<Entry> table_;
    std::size_t mask_ = 0;
    Stats stats_;
    /**
     * High word of the last version acquire() saw.  Entries store
     * 32-bit truncated stamps; whenever the high word moves the
     * whole table is cleared, so two equal truncated stamps can
     * never belong to different full versions.
     */
    std::uint32_t versionHigh_ = 0;

    static std::uint32_t
    keyOf(Label src, Label dst)
    {
        return Entry::packKey(src, dst);
    }

    /** First probe slot of (src, dst): a splitmix64-mixed key. */
    std::size_t
    slotOf(Label src, Label dst) const
    {
        std::uint64_t z = keyOf(src, dst) + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return (z ^ (z >> 31)) & mask_;
    }
};

} // namespace iadm::sim

#endif // IADM_SIM_ROUTE_CACHE_HPP
