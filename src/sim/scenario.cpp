#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "core/multicast.hpp"
#include "core/tsdt.hpp"
#include "fault/fault_set.hpp"
#include "topology/iadm.hpp"

namespace iadm::sim {

namespace {

/** Salt for the deterministic multicast group membership draws:
 *  groups depend only on (N, groups, fanout, group index), never on
 *  the replicate seed, so every replicate of a cell storms the same
 *  destination sets. */
constexpr std::uint64_t kMcastSalt = 0x3ca57a6e5eed5ull;

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::string cur;
    std::istringstream is(s);
    while (std::getline(is, cur, sep))
        parts.push_back(cur);
    return parts;
}

bool
parseDouble(const std::string &s, double &out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size() && std::isfinite(out);
    } catch (...) {
        return false;
    }
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size() && !s.empty() && s[0] != '-';
    } catch (...) {
        return false;
    }
}

unsigned
labelBits(Label n_size)
{
    unsigned n = 0;
    while ((Label{1} << n) < n_size)
        ++n;
    return n;
}

// --- destination sources ------------------------------------------

/** Hotspot with a hot *set*: the hot draw picks uniformly among the
 *  hot nodes.  The single-node case is materialized as the legacy
 *  HotspotTraffic instead, whose draw stream it would not match
 *  (one extra uniform() per hot pick). */
class MultiHotspotTraffic : public TrafficPattern
{
  public:
    MultiHotspotTraffic(Label n_size, std::vector<Label> hot,
                        double hot_fraction)
        : nSize_(n_size), hot_(std::move(hot)),
          hotFraction_(hot_fraction)
    {
    }

    Label
    pick(Label, Rng &rng) override
    {
        if (rng.chance(hotFraction_))
            return hot_[rng.uniform(hot_.size())];
        return static_cast<Label>(rng.uniform(nSize_));
    }

    std::string name() const override { return "hotspot-set"; }
    bool gated() const override { return false; }

  private:
    Label nSize_;
    std::vector<Label> hot_;
    double hotFraction_;
};

/**
 * Multicast storm: sources are partitioned into @p groups round-robin
 * (group of src = src mod groups); each group has a fixed set of
 * @p fanout destinations, derived deterministically from
 * (N, groups, fanout, group) alone.  Every source walks its group's
 * destinations cyclically in the *delivery order of the multicast
 * tree rooted at that source* (core::buildMulticastTree against the
 * fault-free network) — the unicast-packet approximation of the
 * switch-replicated storm, preserving the tree's output ordering.
 * pick() draws no randomness and advances a per-source cursor, which
 * is safe because the simulator only calls pick() from the serial
 * injection draw phase (see traffic.hpp).
 */
class McastTraffic : public TrafficPattern
{
  public:
    McastTraffic(Label n_size, std::uint32_t groups,
                 std::uint32_t fanout)
        : groups_(groups), cursor_(n_size, 0)
    {
        const topo::IadmTopology topo(n_size);
        const fault::FaultSet no_faults;
        std::vector<std::vector<Label>> dests(groups);
        for (std::uint32_t g = 0; g < groups; ++g) {
            // Rejection-sample a distinct destination set from a
            // group-salted stream: deterministic, replicate- and
            // seed-independent.
            Rng grng(kMcastSalt ^
                     (std::uint64_t{g} * 0x9e3779b97f4a7c15ull) ^
                     (std::uint64_t{n_size} << 32) ^ fanout);
            std::vector<char> taken(n_size, 0);
            while (dests[g].size() < fanout) {
                const auto d =
                    static_cast<Label>(grng.uniform(n_size));
                if (taken[d])
                    continue;
                taken[d] = 1;
                dests[g].push_back(d);
            }
            std::sort(dests[g].begin(), dests[g].end());
        }
        order_.resize(n_size);
        for (Label src = 0; src < n_size; ++src) {
            const auto &gd = dests[src % groups];
            const auto tree = core::buildMulticastTree(
                topo, no_faults, src, gd);
            if (tree && !tree->links.empty()) {
                // Delivery order = the output order of the tree's
                // last-stage links.
                for (const topo::Link &l : tree->links.back())
                    order_[src].push_back(l.to);
            }
            // Fault-free trees always exist, but stay total anyway:
            // append anything the walk missed, in label order.
            for (const Label d : gd) {
                if (std::find(order_[src].begin(),
                              order_[src].end(),
                              d) == order_[src].end())
                    order_[src].push_back(d);
            }
        }
    }

    Label
    pick(Label src, Rng &) override
    {
        const auto &ord = order_[src];
        const Label d = ord[cursor_[src]];
        cursor_[src] = (cursor_[src] + 1) % ord.size();
        return d;
    }

    std::string name() const override { return "mcast"; }
    bool gated() const override { return false; }

  private:
    std::uint32_t groups_;
    std::vector<std::vector<Label>> order_; //!< [src] dest cycle
    std::vector<std::uint32_t> cursor_;     //!< [src] next index
};

// --- the composed pattern -----------------------------------------

/**
 * Destination source wrapped in the spec's shaper stack.  Gates run
 * in clause order and every gate runs every cycle (no short-circuit)
 * with a state-independent draw count, pinning the RNG stream; see
 * the concurrency contract in traffic.hpp.
 */
class ScenarioTraffic : public TrafficPattern
{
  public:
    ScenarioTraffic(ScenarioSpec spec, Label n_size,
                    std::unique_ptr<TrafficPattern> base)
        : spec_(std::move(spec)), base_(std::move(base))
    {
        st_.reserve(spec_.shapers.size());
        for (const ShaperSpec &sh : spec_.shapers) {
            ShaperState s;
            s.spec = sh;
            switch (sh.kind) {
              case ShaperSpec::Kind::Bursty:
                s.pOnToOff = 1.0 / sh.burstLen;
                s.pOffToOn = 1.0 / sh.idleLen;
                s.on.assign(n_size, 0);
                break;
              case ShaperSpec::Kind::Ramp:
                s.cur = sh.rampFrom;
                break;
              case ShaperSpec::Kind::Closed:
                s.out.assign(n_size, 0);
                closed_ = true;
                break;
            }
            st_.push_back(std::move(s));
        }
    }

    Label
    pick(Label src, Rng &rng) override
    {
        return base_->pick(src, rng);
    }

    std::string name() const override { return spec_.name(); }

    bool
    gate(Label src, Rng &rng) override
    {
        bool open = true;
        for (ShaperState &s : st_) {
            bool g = true;
            switch (s.spec.kind) {
              case ShaperSpec::Kind::Bursty: {
                // One draw on both branches (see BurstyTraffic).
                const bool was_on = s.on[src] != 0;
                if (was_on) {
                    if (rng.chance(s.pOnToOff))
                        s.on[src] = 0;
                } else if (rng.chance(s.pOffToOn)) {
                    s.on[src] = 1;
                }
                g = was_on;
                break;
              }
              case ShaperSpec::Kind::Ramp:
                g = rng.chance(s.cur); // one draw, factor thinning
                break;
              case ShaperSpec::Kind::Closed:
                g = s.out[src] < s.spec.window; // no draws
                break;
            }
            open = open && g;
        }
        return open;
    }

    bool gated() const override { return true; }

    void
    beginCycle(Cycle now) override
    {
        for (ShaperState &s : st_) {
            if (s.spec.kind != ShaperSpec::Kind::Ramp)
                continue;
            const double t =
                s.spec.rampCycles == 0
                    ? 1.0
                    : std::min(1.0, static_cast<double>(now) /
                                        static_cast<double>(
                                            s.spec.rampCycles));
            s.cur = s.spec.rampFrom +
                    (s.spec.rampTo - s.spec.rampFrom) * t;
        }
    }

    bool closedLoop() const override { return closed_; }

    void
    onInject(Label src) override
    {
        for (ShaperState &s : st_) {
            if (s.spec.kind == ShaperSpec::Kind::Closed)
                ++s.out[src];
        }
    }

    void
    onRetire(Label src) override
    {
        for (ShaperState &s : st_) {
            if (s.spec.kind != ShaperSpec::Kind::Closed)
                continue;
            IADM_ASSERT(s.out[src] > 0,
                        "closed-loop retire underflow at source ",
                        src);
            --s.out[src];
        }
    }

  private:
    struct ShaperState
    {
        ShaperSpec spec;
        double pOnToOff = 0.0, pOffToOn = 0.0; //!< bursty
        std::vector<std::uint8_t> on;          //!< bursty, per-source
        double cur = 1.0;                      //!< ramp factor
        std::vector<std::uint32_t> out; //!< closed, per-source count
    };

    ScenarioSpec spec_;
    std::unique_ptr<TrafficPattern> base_;
    std::vector<ShaperState> st_;
    bool closed_ = false;
};

// --- parsing helpers ----------------------------------------------

bool
parseHotNodes(const std::string &s, std::vector<Label> &out)
{
    out.clear();
    for (const auto &piece : splitOn(s, '+')) {
        std::uint64_t v = 0;
        if (!parseU64(piece, v))
            return false;
        const auto node = static_cast<Label>(v);
        if (std::find(out.begin(), out.end(), node) != out.end())
            return false; // duplicate hot node
        out.push_back(node);
    }
    return !out.empty();
}

/** Parse a dst clause body (role prefix already stripped). */
bool
parseDst(const std::vector<std::string> &p, DstSpec &d)
{
    if (p.empty())
        return false;
    if (p[0] == "uniform") {
        d.kind = DstSpec::Kind::Uniform;
        return p.size() == 1;
    }
    if (p[0] == "hotspot") {
        d.kind = DstSpec::Kind::Hotspot;
        if (p.size() > 3)
            return false;
        if (p.size() >= 2 && !parseHotNodes(p[1], d.hotNodes))
            return false;
        if (p.size() == 1)
            d.hotNodes = {0};
        if (p.size() >= 3 &&
            (!parseDouble(p[2], d.hotFraction) ||
             d.hotFraction < 0.0 || d.hotFraction > 1.0))
            return false;
        return true;
    }
    if (p[0] == "bitrev" || p[0] == "transpose") {
        d.kind = DstSpec::Kind::Perm;
        d.perm = p[0] == "bitrev" ? DstSpec::PermFamily::BitReversal
                                  : DstSpec::PermFamily::Transpose;
        return p.size() == 1;
    }
    if (p[0] == "shift") {
        d.kind = DstSpec::Kind::Perm;
        d.perm = DstSpec::PermFamily::Shift;
        std::uint64_t v = 0;
        if (p.size() != 2 || !parseU64(p[1], v) || v == 0)
            return false;
        d.permArg = static_cast<Label>(v);
        return true;
    }
    if (p[0] == "perm") {
        d.kind = DstSpec::Kind::Perm;
        if (p.size() < 2)
            return false;
        const std::string &fam = p[1];
        std::uint64_t v = 0;
        if (fam == "shift" || fam == "complement" ||
            fam == "exchange") {
            d.perm = fam == "shift"
                         ? DstSpec::PermFamily::Shift
                         : fam == "complement"
                               ? DstSpec::PermFamily::Complement
                               : DstSpec::PermFamily::Exchange;
            if (p.size() != 3 || !parseU64(p[2], v))
                return false;
            if (d.perm != DstSpec::PermFamily::Exchange && v == 0)
                return false; // shift 0 / mask 0 = identity typo
            d.permArg = static_cast<Label>(v);
            return true;
        }
        if (p.size() != 2)
            return false;
        if (fam == "bitrev")
            d.perm = DstSpec::PermFamily::BitReversal;
        else if (fam == "transpose")
            d.perm = DstSpec::PermFamily::Transpose;
        else if (fam == "shuffle")
            d.perm = DstSpec::PermFamily::Shuffle;
        else
            return false;
        return true;
    }
    if (p[0] == "adversarial") {
        d.kind = DstSpec::Kind::Adversarial;
        return p.size() == 1;
    }
    if (p[0] == "mcast") {
        d.kind = DstSpec::Kind::Multicast;
        std::uint64_t g = 0, f = 0;
        if (p.size() != 3 || !parseU64(p[1], g) ||
            !parseU64(p[2], f))
            return false;
        if (g == 0 || f < 2)
            return false;
        d.groups = static_cast<std::uint32_t>(g);
        d.fanout = static_cast<std::uint32_t>(f);
        return true;
    }
    return false;
}

/** Parse a shaper clause body (role prefix already stripped). */
bool
parseShaper(const std::vector<std::string> &p, ShaperSpec &s)
{
    if (p.empty())
        return false;
    if (p[0] == "bursty") {
        s.kind = ShaperSpec::Kind::Bursty;
        return p.size() == 3 && parseDouble(p[1], s.burstLen) &&
               parseDouble(p[2], s.idleLen) && s.burstLen >= 1.0 &&
               s.idleLen >= 1.0;
    }
    if (p[0] == "ramp") {
        s.kind = ShaperSpec::Kind::Ramp;
        if (p.size() != 4 || !parseDouble(p[1], s.rampFrom) ||
            !parseDouble(p[2], s.rampTo) ||
            !parseU64(p[3], s.rampCycles))
            return false;
        return s.rampFrom >= 0.0 && s.rampFrom <= 1.0 &&
               s.rampTo >= 0.0 && s.rampTo <= 1.0 &&
               s.rampCycles >= 1;
    }
    if (p[0] == "closed") {
        s.kind = ShaperSpec::Kind::Closed;
        std::uint64_t w = 0;
        if (p.size() != 2 || !parseU64(p[1], w) || w == 0)
            return false;
        s.window = static_cast<std::uint32_t>(w);
        return true;
    }
    return false;
}

std::string
dstName(const DstSpec &d)
{
    switch (d.kind) {
      case DstSpec::Kind::Uniform:
        return "dst:uniform";
      case DstSpec::Kind::Hotspot: {
        std::string nodes;
        for (std::size_t i = 0; i < d.hotNodes.size(); ++i) {
            if (i != 0)
                nodes += '+';
            nodes += std::to_string(d.hotNodes[i]);
        }
        return "dst:hotspot:" + nodes + ":" +
               jsonNumber(d.hotFraction);
      }
      case DstSpec::Kind::Perm:
        switch (d.perm) {
          case DstSpec::PermFamily::Shift:
            return "dst:perm:shift:" + std::to_string(d.permArg);
          case DstSpec::PermFamily::BitReversal:
            return "dst:perm:bitrev";
          case DstSpec::PermFamily::Transpose:
            return "dst:perm:transpose";
          case DstSpec::PermFamily::Complement:
            return "dst:perm:complement:" +
                   std::to_string(d.permArg);
          case DstSpec::PermFamily::Shuffle:
            return "dst:perm:shuffle";
          case DstSpec::PermFamily::Exchange:
            return "dst:perm:exchange:" + std::to_string(d.permArg);
        }
        return "?";
      case DstSpec::Kind::Adversarial:
        return "dst:adversarial";
      case DstSpec::Kind::Multicast:
        return "dst:mcast:" + std::to_string(d.groups) + ":" +
               std::to_string(d.fanout);
    }
    return "?";
}

std::string
shaperName(const ShaperSpec &s, bool first)
{
    std::string out = first ? "shape:" : "over:";
    switch (s.kind) {
      case ShaperSpec::Kind::Bursty:
        return out + "bursty:" + jsonNumber(s.burstLen) + ":" +
               jsonNumber(s.idleLen);
      case ShaperSpec::Kind::Ramp:
        return out + "ramp:" + jsonNumber(s.rampFrom) + ":" +
               jsonNumber(s.rampTo) + ":" +
               std::to_string(s.rampCycles);
      case ShaperSpec::Kind::Closed:
        return out + "closed:" + std::to_string(s.window);
    }
    return "?";
}

std::unique_ptr<TrafficPattern>
makeDst(const DstSpec &d, Label n_size)
{
    switch (d.kind) {
      case DstSpec::Kind::Uniform:
        return std::make_unique<UniformTraffic>(n_size);
      case DstSpec::Kind::Hotspot:
        if (d.hotNodes.size() == 1) {
            // Single hot node: the legacy pattern, whose RNG draw
            // stream (chance, then uniform) is frozen by the golden
            // fixtures.
            return std::make_unique<HotspotTraffic>(
                n_size, d.hotNodes[0], d.hotFraction);
        }
        return std::make_unique<MultiHotspotTraffic>(
            n_size, d.hotNodes, d.hotFraction);
      case DstSpec::Kind::Perm:
        switch (d.perm) {
          case DstSpec::PermFamily::Shift:
            return makeShiftTraffic(n_size, d.permArg);
          case DstSpec::PermFamily::BitReversal:
            return makeBitReversalTraffic(n_size);
          case DstSpec::PermFamily::Transpose:
            return makeTransposeTraffic(n_size);
          case DstSpec::PermFamily::Complement:
            return std::make_unique<PermutationTraffic>(
                perm::bitComplementPerm(n_size, d.permArg));
          case DstSpec::PermFamily::Shuffle:
            return std::make_unique<PermutationTraffic>(
                perm::perfectShufflePerm(n_size));
          case DstSpec::PermFamily::Exchange:
            return std::make_unique<PermutationTraffic>(
                perm::exchangePerm(
                    n_size,
                    static_cast<unsigned>(d.permArg)));
        }
        IADM_PANIC("unreachable perm family");
      case DstSpec::Kind::Adversarial:
        return std::make_unique<PermutationTraffic>(
            adversarialPerm(n_size));
      case DstSpec::Kind::Multicast:
        return std::make_unique<McastTraffic>(n_size, d.groups,
                                              d.fanout);
    }
    IADM_PANIC("unreachable dst kind");
}

} // namespace

// --- ScenarioSpec --------------------------------------------------

std::string
ScenarioSpec::name() const
{
    std::string out;
    for (std::size_t i = 0; i < shapers.size(); ++i) {
        out += shaperName(shapers[i], i == 0);
        out += '/';
    }
    out += dstName(dst);
    return out;
}

std::optional<ScenarioSpec>
ScenarioSpec::parse(const std::string &spec)
{
    if (spec.empty())
        return std::nullopt;
    ScenarioSpec s;
    bool have_dst = false;
    for (const std::string &clause : splitOn(spec, '/')) {
        const auto parts = splitOn(clause, ':');
        if (parts.empty())
            return std::nullopt;
        const std::string &role = parts[0];
        if (role == "dst") {
            if (have_dst)
                return std::nullopt; // one destination source only
            if (!parseDst({parts.begin() + 1, parts.end()}, s.dst))
                return std::nullopt;
            have_dst = true;
            continue;
        }
        if (role == "shape" || role == "over") {
            ShaperSpec sh;
            if (!parseShaper({parts.begin() + 1, parts.end()}, sh))
                return std::nullopt;
            s.shapers.push_back(sh);
            continue;
        }
        // Role-free sugar: "bursty:B:I" is a shaper atom (the
        // legacy short form); everything else is a destination atom
        // ("uniform", "hotspot:0:0.2", "shift:4", "mcast:4:8", ...).
        if (role == "bursty") {
            ShaperSpec sh;
            if (!parseShaper(parts, sh))
                return std::nullopt;
            s.shapers.push_back(sh);
            continue;
        }
        if (have_dst)
            return std::nullopt;
        if (!parseDst(parts, s.dst))
            return std::nullopt;
        have_dst = true;
    }
    return s;
}

std::optional<std::string>
ScenarioSpec::validate(Label n_size) const
{
    const unsigned bits = labelBits(n_size);
    switch (dst.kind) {
      case DstSpec::Kind::Uniform:
      case DstSpec::Kind::Adversarial:
        break;
      case DstSpec::Kind::Hotspot:
        for (const Label h : dst.hotNodes) {
            if (h >= n_size)
                return "hotspot node " + std::to_string(h) +
                       " out of range for N=" +
                       std::to_string(n_size);
        }
        break;
      case DstSpec::Kind::Perm:
        switch (dst.perm) {
          case DstSpec::PermFamily::Shift:
            if (dst.permArg >= n_size)
                return "shift distance " +
                       std::to_string(dst.permArg) +
                       " out of range for N=" +
                       std::to_string(n_size);
            break;
          case DstSpec::PermFamily::Transpose:
            if (bits % 2 != 0)
                return "transpose needs an even number of label "
                       "bits (N=" +
                       std::to_string(n_size) + " has " +
                       std::to_string(bits) + ")";
            break;
          case DstSpec::PermFamily::Complement:
            if (dst.permArg >= n_size)
                return "complement mask " +
                       std::to_string(dst.permArg) +
                       " out of range for N=" +
                       std::to_string(n_size);
            break;
          case DstSpec::PermFamily::Exchange:
            if (dst.permArg >= bits)
                return "exchange dimension " +
                       std::to_string(dst.permArg) +
                       " out of range for N=" +
                       std::to_string(n_size) + " (" +
                       std::to_string(bits) + " bits)";
            break;
          default:
            break;
        }
        break;
      case DstSpec::Kind::Multicast:
        if (dst.fanout > n_size)
            return "multicast fanout " +
                   std::to_string(dst.fanout) +
                   " exceeds N=" + std::to_string(n_size);
        if (dst.groups > n_size)
            return "multicast group count " +
                   std::to_string(dst.groups) +
                   " exceeds N=" + std::to_string(n_size);
        break;
    }
    return std::nullopt;
}

std::unique_ptr<TrafficPattern>
ScenarioSpec::make(Label n_size) const
{
    if (const auto err = validate(n_size))
        IADM_FATAL("invalid scenario '", name(), "': ", *err);
    auto base = makeDst(dst, n_size);
    if (shapers.empty())
        return base;
    return std::make_unique<ScenarioTraffic>(*this, n_size,
                                             std::move(base));
}

perm::Permutation
adversarialPerm(Label n_size)
{
    // Greedy link-overlap maximization: visit sources in ascending
    // order and give each the unused destination whose initial-tag
    // path shares the most already-loaded switch visits (stages
    // 1..n), first-best on ties.  O(N^2) path traces, paid once per
    // pattern construction; deterministic by construction.
    const unsigned n = labelBits(n_size);
    std::vector<std::vector<std::uint32_t>> load(
        n + 1, std::vector<std::uint32_t>(n_size, 0));
    std::vector<Label> images(n_size, 0);
    std::vector<char> used(n_size, 0);
    for (Label src = 0; src < n_size; ++src) {
        Label best = 0;
        std::int64_t best_score = -1;
        for (Label dst = 0; dst < n_size; ++dst) {
            if (used[dst])
                continue;
            const auto path = core::tsdtTrace(
                src, core::initialTag(n, dst), n_size);
            std::int64_t score = 0;
            for (unsigned st = 1; st <= n; ++st)
                score += load[st][path.switchAt(st)];
            if (score > best_score) {
                best_score = score;
                best = dst;
            }
        }
        used[best] = 1;
        images[src] = best;
        const auto path = core::tsdtTrace(
            src, core::initialTag(n, best), n_size);
        for (unsigned st = 1; st <= n; ++st)
            ++load[st][path.switchAt(st)];
    }
    return perm::Permutation(std::move(images));
}

} // namespace iadm::sim
