/**
 * @file
 * Composable traffic scenarios: a Click-style mini-grammar that
 * wires one destination source together with a stack of load
 * shapers into a single TrafficPattern (docs/SIMULATOR.md,
 * "Scenario grammar").
 *
 * A spec is a '/'-separated list of clauses, each `role:kind:args`:
 *
 *   dst:uniform                       uniform destinations
 *   dst:hotspot:0+5+9:0.3             hot node set ('+'-separated)
 *                                     and hot fraction
 *   dst:perm:shift:4                  permutation family: shift,
 *   dst:perm:bitrev                   bitrev, transpose, complement
 *   dst:perm:complement:63            (xor mask), shuffle,
 *   dst:perm:shuffle                  exchange (cube dimension)
 *   dst:perm:exchange:2
 *   dst:adversarial                   greedy link-overlap-maximizing
 *                                     worst-case permutation
 *   dst:mcast:4:8                     multicast storm: 4 groups of 8
 *                                     destinations, sources cycle
 *                                     through their group's
 *                                     multicast-tree delivery order
 *   shape:bursty:16:64                on/off Markov bursts (expected
 *                                     burst / idle lengths)
 *   shape:ramp:0.1:0.9:2000           rate factor ramping linearly
 *                                     from 0.1x to 0.9x of the
 *                                     configured injection rate over
 *                                     2000 cycles, then holding
 *   shape:closed:4                    closed-loop load: at most 4
 *                                     outstanding packets per source
 *                                     (pins the simulator serial)
 *
 * At most one dst clause; any number of shapers, gated in clause
 * order (every shaper's gate runs every cycle — no short-circuit —
 * so the RNG draw order is pinned).  Additional shapers after the
 * first canonically print as `over:`; parse treats `shape:` and
 * `over:` identically.  Bare legacy atoms ("uniform",
 * "hotspot:0:0.2", "bitrev", "transpose") and the short forms
 * "bursty:B:I" and "shift:K" are accepted as sugar.
 */

#ifndef IADM_SIM_SCENARIO_HPP
#define IADM_SIM_SCENARIO_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/traffic.hpp"

namespace iadm::sim {

/** The destination source (the `dst:` clause). */
struct DstSpec
{
    enum class Kind : std::uint8_t
    {
        Uniform,
        Hotspot,     //!< hotFraction of traffic to the hot set
        Perm,        //!< fixed permutation from the family below
        Adversarial, //!< greedy congestion-maximizing permutation
        Multicast,   //!< group storms over multicast-tree orders
    };

    enum class PermFamily : std::uint8_t
    {
        Shift,
        BitReversal,
        Transpose,
        Complement, //!< u -> u ^ mask
        Shuffle,    //!< perfect shuffle (label left-rotate)
        Exchange,   //!< u -> u ^ 2^k
    };

    Kind kind = Kind::Uniform;
    std::vector<Label> hotNodes;            //!< Hotspot
    double hotFraction = 0.2;               //!< Hotspot
    PermFamily perm = PermFamily::Shift;    //!< Perm
    Label permArg = 1; //!< shift distance / xor mask / dimension
    std::uint32_t groups = 4;               //!< Multicast
    std::uint32_t fanout = 8;               //!< Multicast

    bool operator==(const DstSpec &) const = default;
};

/** One load shaper (`shape:` / `over:` clause). */
struct ShaperSpec
{
    enum class Kind : std::uint8_t
    {
        Bursty, //!< per-source on/off Markov chain
        Ramp,   //!< time-varying multiplicative rate factor
        Closed, //!< per-source outstanding-packet window
    };

    Kind kind = Kind::Bursty;
    double burstLen = 16.0;          //!< Bursty: expected ON run
    double idleLen = 64.0;           //!< Bursty: expected OFF run
    double rampFrom = 0.1;           //!< Ramp: initial factor
    double rampTo = 1.0;             //!< Ramp: final factor
    std::uint64_t rampCycles = 1000; //!< Ramp: cycles to rampTo
    std::uint32_t window = 1;        //!< Closed: outstanding cap

    bool operator==(const ShaperSpec &) const = default;
};

/**
 * A parsed scenario: one destination source plus a shaper stack.
 * Equality is structural, so ScenarioSpec works as a sweep-axis
 * value exactly like the other axis spec types.
 */
struct ScenarioSpec
{
    DstSpec dst;
    std::vector<ShaperSpec> shapers;

    /**
     * Canonical spelling: shapers first (`shape:` then `over:`),
     * destination last, e.g.
     * "shape:ramp:0.1:0.9:2000/over:bursty:16:64/dst:hotspot:0:0.2".
     * Re-parsing the canonical name yields an equal spec.
     */
    std::string name() const;

    /** Parse the grammar (incl. sugar); nullopt on bad input.
     *  N-independent range checks happen here. */
    static std::optional<ScenarioSpec> parse(const std::string &spec);

    /**
     * N-dependent validation (hot nodes < N, shift < N, transpose
     * needs an even bit count, ...).  nullopt when valid, else a
     * one-line diagnostic suitable for a CLI error message.
     */
    std::optional<std::string> validate(Label n_size) const;

    /**
     * Materialize the pattern.  Fails fatally on a spec that
     * validate(n_size) rejects — CLI front ends must validate first
     * and exit 2 with the diagnostic.
     */
    std::unique_ptr<TrafficPattern> make(Label n_size) const;

    bool operator==(const ScenarioSpec &) const = default;
};

/**
 * The greedy worst-case permutation `dst:adversarial` materializes:
 * sources are assigned (in ascending order) the unused destination
 * whose initial-tag path overlaps the already-loaded links most.
 * Deterministic; exposed for tests.
 */
perm::Permutation adversarialPerm(Label n_size);

} // namespace iadm::sim

#endif // IADM_SIM_SCENARIO_HPP
