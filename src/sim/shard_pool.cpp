#include "sim/shard_pool.hpp"

#include "common/logging.hpp"

namespace iadm::sim {

ShardPool::ShardPool(unsigned shards) : shards_(shards)
{
    IADM_ASSERT(shards >= 2,
                "a ShardPool needs at least 2 shards; shards=1 is "
                "the serial path and must not construct one");
    threads_.reserve(shards - 1);
    for (unsigned k = 1; k < shards; ++k)
        threads_.emplace_back([this, k] { workerLoop(k); });
}

ShardPool::~ShardPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
        ++generation_;
    }
    cvStart_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ShardPool::run(const std::function<void(unsigned)> &fn)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        IADM_ASSERT(job_ == nullptr, "ShardPool::run is not reentrant");
        job_ = &fn;
        remaining_ = shards_ - 1;
        ++generation_;
    }
    cvStart_.notify_all();
    fn(0); // the caller is shard 0
    std::unique_lock<std::mutex> lk(m_);
    cvDone_.wait(lk, [this] { return remaining_ == 0; });
    job_ = nullptr;
}

void
ShardPool::workerLoop(unsigned shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *job;
        {
            std::unique_lock<std::mutex> lk(m_);
            cvStart_.wait(lk,
                          [&] { return generation_ != seen; });
            seen = generation_;
            if (stop_)
                return;
            job = job_;
        }
        (*job)(shard);
        {
            std::lock_guard<std::mutex> lk(m_);
            if (--remaining_ == 0)
                cvDone_.notify_one();
        }
    }
}

} // namespace iadm::sim
