/**
 * @file
 * Persistent worker-thread pool for intra-simulation sharding.
 *
 * One NetworkSim with SimConfig::shards == S owns one ShardPool of
 * S - 1 parked worker threads; the calling thread acts as shard 0.
 * run(fn) invokes fn(k) once for every shard k in [0, S) and
 * returns only when all invocations have finished — a dispatch
 * barrier, not a task queue.  The sharded service loop calls run()
 * a handful of times per stage per cycle, so workers park on a
 * condition variable between dispatches instead of being respawned
 * (thread creation would dominate the serviced work at small N).
 *
 * The pool provides the synchronization edges the sharded step
 * relies on: everything written before run() is visible to every
 * shard, and everything any shard wrote is visible to the caller
 * after run() returns.  Determinism is the caller's job — shards
 * must partition their writes (docs/SIMULATOR.md, "Determinism").
 */

#ifndef IADM_SIM_SHARD_POOL_HPP
#define IADM_SIM_SHARD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iadm::sim {

/** Barrier-style dispatch pool; shard 0 runs on the caller. */
class ShardPool
{
  public:
    /** Spawn @p shards - 1 parked workers (shards must be >= 2). */
    explicit ShardPool(unsigned shards);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    unsigned shards() const { return shards_; }

    /**
     * Invoke @p fn(k) for every shard k in [0, shards()) — k == 0
     * on the calling thread — and wait for all of them to finish.
     * Not reentrant; one dispatch at a time.
     */
    void run(const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned shard);

    unsigned shards_;
    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    const std::function<void(unsigned)> *job_ = nullptr;
    std::uint64_t generation_ = 0; //!< bumps per dispatch (and stop)
    unsigned remaining_ = 0;       //!< workers still in flight
    bool stop_ = false;
};

} // namespace iadm::sim

#endif // IADM_SIM_SHARD_POOL_HPP
