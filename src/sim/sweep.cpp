#include "sim/sweep.hpp"

#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/logging.hpp"
#include "common/json_writer.hpp"
#include "fault/injection.hpp"
#include "obs/stats.hpp"
#include "obs/trace_sink.hpp"

namespace iadm::sim {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

/** Salt separating the fault/setup rng stream from the sim seed. */
constexpr std::uint64_t kScenarioSalt = 0x5cafed00d5eed5ull;

/** Salt separating the churn-process stream from traffic and from
 *  the static-scenario draws (docs/SWEEP.md). */
constexpr std::uint64_t kChurnSalt = 0xc402d5eed5ull;

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Split "name:arg1:arg2" into colon-separated pieces. */
std::vector<std::string>
splitColons(const std::string &spec)
{
    std::vector<std::string> parts;
    std::string cur;
    std::istringstream is(spec);
    while (std::getline(is, cur, ':'))
        parts.push_back(cur);
    return parts;
}

} // namespace

// --- FaultScenario -------------------------------------------------

std::string
FaultScenario::name() const
{
    switch (kind) {
      case Kind::None: return "none";
      case Kind::RandomLinks:
        return "links:" + std::to_string(count);
      case Kind::Nonstraight:
        return "nonstraight:" + std::to_string(count);
      case Kind::DoubleNonstraight:
        return "double:" + std::to_string(count);
      case Kind::Switches:
        return "switches:" + std::to_string(count);
    }
    return "?";
}

std::optional<FaultScenario>
FaultScenario::parse(const std::string &spec)
{
    const auto parts = splitColons(spec);
    if (parts.empty())
        return std::nullopt;
    FaultScenario fs;
    if (parts[0] == "none") {
        if (parts.size() != 1)
            return std::nullopt;
        return fs;
    }
    if (parts.size() != 2)
        return std::nullopt;
    if (parts[0] == "links")
        fs.kind = Kind::RandomLinks;
    else if (parts[0] == "nonstraight")
        fs.kind = Kind::Nonstraight;
    else if (parts[0] == "double")
        fs.kind = Kind::DoubleNonstraight;
    else if (parts[0] == "switches")
        fs.kind = Kind::Switches;
    else
        return std::nullopt;
    try {
        fs.count = std::stoul(parts[1]);
    } catch (...) {
        return std::nullopt;
    }
    return fs;
}

fault::FaultSet
FaultScenario::make(const topo::IadmTopology &topo, Rng &rng) const
{
    switch (kind) {
      case Kind::None: return {};
      case Kind::RandomLinks:
        return fault::randomLinkFaults(topo, count, rng);
      case Kind::Nonstraight:
        return fault::randomNonstraightFaults(topo, count, rng);
      case Kind::DoubleNonstraight:
        return fault::randomDoubleNonstraightFaults(topo, count, rng);
      case Kind::Switches:
        return fault::randomSwitchFaults(topo, count, rng);
    }
    IADM_PANIC("unreachable fault scenario kind");
}

// --- ChurnSpec -----------------------------------------------------

std::string
ChurnSpec::name() const
{
    switch (kind) {
      case Kind::None: return "none";
      case Kind::Bernoulli:
        return "bernoulli:" + jsonNumber(pFail) + ":" +
               jsonNumber(pRepair);
      case Kind::Geometric:
        return "geometric:" + jsonNumber(mtbf) + ":" +
               jsonNumber(mttr);
      case Kind::Burst:
        return "burst:" + std::to_string(interval) + ":" +
               std::to_string(duration) + ":" + std::to_string(span);
    }
    return "?";
}

std::optional<ChurnSpec>
ChurnSpec::parse(const std::string &spec)
{
    const auto parts = splitColons(spec);
    if (parts.empty())
        return std::nullopt;
    ChurnSpec c;
    try {
        if (parts[0] == "none") {
            if (parts.size() != 1)
                return std::nullopt;
            return c;
        }
        if (parts[0] == "bernoulli") {
            if (parts.size() != 3)
                return std::nullopt;
            c.kind = Kind::Bernoulli;
            c.pFail = std::stod(parts[1]);
            c.pRepair = std::stod(parts[2]);
            if (c.pFail < 0 || c.pFail > 1 || c.pRepair < 0 ||
                c.pRepair > 1)
                return std::nullopt;
            return c;
        }
        if (parts[0] == "geometric") {
            if (parts.size() != 3)
                return std::nullopt;
            c.kind = Kind::Geometric;
            c.mtbf = std::stod(parts[1]);
            c.mttr = std::stod(parts[2]);
            if (c.mtbf < 1 || c.mttr < 1)
                return std::nullopt;
            return c;
        }
        if (parts[0] == "burst") {
            if (parts.size() != 4)
                return std::nullopt;
            c.kind = Kind::Burst;
            c.interval = std::stoull(parts[1]);
            c.duration = std::stoull(parts[2]);
            c.span = static_cast<Label>(std::stoul(parts[3]));
            if (c.interval == 0 || c.duration == 0 || c.span == 0)
                return std::nullopt;
            return c;
        }
    } catch (...) {
        return std::nullopt;
    }
    return std::nullopt;
}

std::unique_ptr<fault::FaultProcess>
ChurnSpec::make(const topo::IadmTopology &topo,
                std::uint64_t seed) const
{
    switch (kind) {
      case Kind::None: return nullptr;
      case Kind::Bernoulli:
        return std::make_unique<fault::BernoulliChurn>(
            topo, pFail, pRepair, seed);
      case Kind::Geometric:
        return std::make_unique<fault::GeometricChurn>(topo, mtbf,
                                                       mttr, seed);
      case Kind::Burst:
        return std::make_unique<fault::BurstChurn>(
            topo, interval, duration, span, seed);
    }
    IADM_PANIC("unreachable churn kind");
}

// --- TrafficSpec ---------------------------------------------------

std::string
TrafficSpec::name() const
{
    switch (kind) {
      case Kind::Uniform: return "uniform";
      case Kind::Hotspot:
        return "hotspot:" + std::to_string(hotNode) + ":" +
               jsonNumber(hotFraction);
      case Kind::BitReversal: return "bitrev";
      case Kind::Transpose: return "transpose";
      case Kind::Scenario: return scenario.name();
    }
    return "?";
}

namespace {

/** Strict full-string numeric parses for the legacy hotspot form;
 *  trailing garbage ("0+5") falls through to the scenario grammar. */
bool
parseLabelStrict(const std::string &s, Label &out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<Label>(std::stoul(s, &pos));
        return pos == s.size() && !s.empty() && s[0] != '-';
    } catch (...) {
        return false;
    }
}

bool
parseFractionStrict(const std::string &s, double &out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size() && std::isfinite(out) && out >= 0.0 &&
               out <= 1.0;
    } catch (...) {
        return false;
    }
}

/** Legacy atoms only; nullopt hands the spec to ScenarioSpec. */
std::optional<TrafficSpec>
parseLegacyTraffic(const std::vector<std::string> &parts)
{
    TrafficSpec t;
    if (parts[0] == "uniform") {
        if (parts.size() != 1)
            return std::nullopt;
        return t;
    }
    if (parts[0] == "bitrev") {
        if (parts.size() != 1)
            return std::nullopt;
        t.kind = TrafficSpec::Kind::BitReversal;
        return t;
    }
    if (parts[0] == "transpose") {
        if (parts.size() != 1)
            return std::nullopt;
        t.kind = TrafficSpec::Kind::Transpose;
        return t;
    }
    if (parts[0] == "hotspot") {
        t.kind = TrafficSpec::Kind::Hotspot;
        if (parts.size() > 3)
            return std::nullopt;
        if (parts.size() >= 2 &&
            !parseLabelStrict(parts[1], t.hotNode))
            return std::nullopt;
        // The fraction is range-checked at parse time: negative, >1,
        // NaN and inf used to slide straight through stod.
        if (parts.size() >= 3 &&
            !parseFractionStrict(parts[2], t.hotFraction))
            return std::nullopt;
        return t;
    }
    return std::nullopt;
}

} // namespace

std::optional<TrafficSpec>
TrafficSpec::parse(const std::string &spec)
{
    const auto parts = splitColons(spec);
    if (parts.empty())
        return std::nullopt;
    // Legacy atoms keep their frozen spellings and spec fields; a
    // multi-node hotspot ("hotspot:0+5:0.3") fails the strict legacy
    // parse and lands in the scenario grammar below.
    if (spec.find('/') == std::string::npos) {
        if (auto legacy = parseLegacyTraffic(parts))
            return legacy;
        if (parts[0] == "uniform" || parts[0] == "bitrev" ||
            parts[0] == "transpose")
            return std::nullopt; // malformed legacy atom, not sugar
    }
    auto sc = ScenarioSpec::parse(spec);
    if (!sc)
        return std::nullopt;
    TrafficSpec t;
    t.kind = Kind::Scenario;
    t.scenario = std::move(*sc);
    return t;
}

std::optional<std::string>
TrafficSpec::validate(Label n_size) const
{
    switch (kind) {
      case Kind::Uniform:
      case Kind::BitReversal:
        return std::nullopt;
      case Kind::Transpose: {
        unsigned bits = 0;
        while ((Label{1} << bits) < n_size)
            ++bits;
        if (bits % 2 != 0)
            return "transpose needs an even number of label bits "
                   "(N=" + std::to_string(n_size) + " has " +
                   std::to_string(bits) + ")";
        return std::nullopt;
      }
      case Kind::Hotspot:
        if (hotNode >= n_size)
            return "hotspot node " + std::to_string(hotNode) +
                   " out of range for N=" + std::to_string(n_size);
        return std::nullopt;
      case Kind::Scenario:
        return scenario.validate(n_size);
    }
    return std::nullopt;
}

std::unique_ptr<TrafficPattern>
TrafficSpec::make(Label n_size) const
{
    if (const auto err = validate(n_size))
        IADM_FATAL("invalid traffic spec '", name(), "': ", *err);
    switch (kind) {
      case Kind::Uniform:
        return std::make_unique<UniformTraffic>(n_size);
      case Kind::Hotspot:
        return std::make_unique<HotspotTraffic>(n_size, hotNode,
                                                hotFraction);
      case Kind::BitReversal:
        return makeBitReversalTraffic(n_size);
      case Kind::Transpose:
        return makeTransposeTraffic(n_size);
      case Kind::Scenario:
        return scenario.make(n_size);
    }
    IADM_PANIC("unreachable traffic kind");
}

// --- grid geometry -------------------------------------------------

std::size_t
SweepGrid::cellCount() const
{
    return netSizes.size() * schemes.size() * injectionRates.size() *
           queueCapacities.size() * faults.size() * traffics.size() *
           crossbarModes.size() * churns.size();
}

SweepCell
resolveCell(const SweepGrid &grid, std::size_t index)
{
    IADM_ASSERT(index < grid.cellCount(), "cell index out of range");
    // Canonical nesting order, crossbar fastest: the cell index is
    // part of the seed derivation, so this order is frozen (see
    // docs/SWEEP.md).
    SweepCell c;
    c.cellIndex = index;
    auto take = [&index](std::size_t n) {
        const std::size_t i = index % n;
        index /= n;
        return i;
    };
    c.crossbar = grid.crossbarModes[take(grid.crossbarModes.size())];
    c.traffic = grid.traffics[take(grid.traffics.size())];
    c.fault = grid.faults[take(grid.faults.size())];
    c.queueCapacity =
        grid.queueCapacities[take(grid.queueCapacities.size())];
    c.injectionRate =
        grid.injectionRates[take(grid.injectionRates.size())];
    c.scheme = grid.schemes[take(grid.schemes.size())];
    c.netSize = grid.netSizes[take(grid.netSizes.size())];
    // Churn is taken LAST (slowest-varying): with the default
    // single-None axis the divisions above see the exact legacy
    // index stream, so pre-churn grids keep their cell indices and
    // replicate seeds.
    c.churn = grid.churns[take(grid.churns.size())];
    return c;
}

std::uint64_t
deriveSeed(std::uint64_t master_seed, std::uint64_t cell_index,
           std::uint64_t replicate)
{
    std::uint64_t z = mix64(master_seed + kGolden * (cell_index + 1));
    return mix64(z + kGolden * (replicate + 1));
}

// --- runner --------------------------------------------------------

std::vector<CellResult>
runSweep(const SweepGrid &grid, const SweepOptions &opts)
{
    IADM_ASSERT(grid.replicates > 0, "replicates must be positive");
    const std::size_t cells = grid.cellCount();
    const std::size_t total = grid.runCount();

    unsigned workers = opts.workers != 0
                           ? opts.workers
                           : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (total > 0 && workers > total)
        workers = static_cast<unsigned>(total);

    // One preallocated slot per replicate: workers write disjoint
    // slots, so results need no lock and assemble in cell order
    // independent of completion order.
    std::vector<std::vector<std::optional<ReplicateResult>>> slots(
        cells);
    for (auto &s : slots)
        s.resize(grid.replicates);

    std::atomic<std::size_t> next{0};

    // The collector guards only progress bookkeeping; metrics flow
    // through the lock-free slots above.
    std::mutex collectorMx;
    std::vector<unsigned> repsDone(cells, 0);
    std::size_t cellsDone = 0;

    const auto runOne = [&](std::size_t run_index) {
        const std::size_t ci = run_index / grid.replicates;
        const auto rep =
            static_cast<unsigned>(run_index % grid.replicates);
        const SweepCell cell = resolveCell(grid, ci);
        const std::uint64_t seed =
            deriveSeed(grid.masterSeed, ci, rep);

        SimConfig cfg;
        cfg.netSize = cell.netSize;
        cfg.scheme = cell.scheme;
        cfg.injectionRate = cell.injectionRate;
        cfg.queueCapacity = cell.queueCapacity;
        cfg.crossbarSwitches = cell.crossbar;
        cfg.maxPacketAge = grid.maxPacketAge;
        cfg.seed = seed;
        cfg.shards = opts.simShards == 0 ? 1 : opts.simShards;

        const topo::IadmTopology topo(cell.netSize);
        Rng scenario_rng(mix64(seed ^ kScenarioSalt));
        fault::FaultSet faults = cell.fault.make(topo, scenario_rng);

        NetworkSim simulation(cfg, cell.traffic.make(cell.netSize),
                              std::move(faults));
        // The churn stream is salted separately from the scenario
        // rng: adding churn to a grid never perturbs the static
        // fault placement or setup-hook draws of existing cells.
        if (auto proc =
                cell.churn.make(topo, mix64(seed ^ kChurnSalt)))
            simulation.addFaultProcess(std::move(proc));
        // Each replicate owns its sink, like its Metrics: workers
        // stay share-nothing and trace determinism mirrors metric
        // determinism.
        std::optional<obs::TraceSink> sink;
        if (opts.traceCapacity != 0) {
            sink.emplace(opts.traceCapacity);
            simulation.setTraceSink(&*sink);
        }
        if (opts.setup)
            opts.setup(simulation, cell, scenario_rng);
        simulation.run(grid.warmupCycles);
        simulation.resetMetrics();
        if (sink)
            sink->clear(); // retained window = measured cycles
        // The monitor watches only the measured cycles (attached
        // after the metrics reset, like the sink's clear): warmup
        // transients are the steady-state detector's subject, not
        // pre-filtered noise.
        std::optional<obs::HealthMonitor> health;
        if (opts.health) {
            health.emplace(opts.healthConfig);
            simulation.setHealthMonitor(&*health);
        }
        simulation.run(grid.measureCycles);

        ReplicateResult result(seed, simulation.metrics(),
                               grid.measureCycles);
        if (const RouteCache *rc = simulation.routeCache()) {
            result.cacheCapacity = rc->capacity();
            result.cacheOccupancy = rc->occupied();
            result.cacheEntryBytes = sizeof(RouteCache::Entry);
        }
        if (health) {
            result.healthEnabled = true;
            result.health = health->report();
            result.steady = health->steadyState().analyze();
        }
        slots[ci][rep] = std::move(result);
        if (sink && opts.onReplicateTrace)
            opts.onReplicateTrace(cell, rep, *sink, simulation);

        std::lock_guard<std::mutex> lock(collectorMx);
        if (++repsDone[ci] == grid.replicates) {
            ++cellsDone;
            if (opts.onCellDone) {
                CellResult done;
                done.cell = cell;
                for (const auto &slot : slots[ci])
                    done.replicates.push_back(*slot);
                opts.onCellDone(done, cellsDone, cells);
            }
        }
    };

    const auto workerLoop = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= total)
                break;
            runOne(i);
        }
    };

    if (workers <= 1) {
        workerLoop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(workerLoop);
        for (auto &t : pool)
            t.join();
    }

    std::vector<CellResult> results;
    results.reserve(cells);
    for (std::size_t ci = 0; ci < cells; ++ci) {
        CellResult r;
        r.cell = resolveCell(grid, ci);
        r.replicates.reserve(grid.replicates);
        for (auto &slot : slots[ci]) {
            IADM_ASSERT(slot.has_value(), "missing replicate result");
            r.replicates.push_back(std::move(*slot));
        }
        results.push_back(std::move(r));
    }
    return results;
}

// --- report --------------------------------------------------------

namespace {

void
writeReplicate(JsonWriter &w, const ReplicateResult &r,
               bool include_stats)
{
    const Metrics &m = r.metrics;
    const Cycle cycles = r.measuredCycles;
    w.beginObject();
    w.key("seed");
    w.value(r.seed);
    w.key("injected");
    w.value(m.injected());
    w.key("delivered");
    w.value(m.delivered());
    w.key("throttled");
    w.value(m.throttled());
    w.key("unroutable");
    w.value(m.unroutable());
    w.key("dropped");
    w.value(m.dropped());
    if (m.dropped() != 0) {
        // Additive taxonomy keys: absent whenever nothing was
        // dropped, so drop-free documents (and their golden
        // fixtures) are byte-identical to the pre-taxonomy schema.
        w.key("drops_by_reason");
        w.beginObject();
        for (unsigned dr = 0; dr < kDropReasons; ++dr) {
            w.key(dropReasonName(static_cast<DropReason>(dr)));
            w.value(m.droppedFor(static_cast<DropReason>(dr)));
        }
        w.endObject();
        w.key("drops_by_stage");
        w.beginArray();
        for (unsigned s = 0; s < m.stages(); ++s)
            w.value(m.dropsAt(s));
        w.endArray();
    }
    w.key("avg_latency");
    w.value(m.avgLatency());
    w.key("max_latency");
    w.value(m.maxLatency());
    if (m.latencyCapped()) {
        // Emitted only when true: the histogram tail was clamped at
        // Metrics::latencyCap(), so the percentile fields above are
        // lower bounds.  Absent in the default (uncapped) documents,
        // which the golden fixtures freeze.
        w.key("latency_capped");
        w.value(true);
    }
    w.key("p50_latency");
    w.value(m.latencyPercentile(0.5));
    w.key("p90_latency");
    w.value(m.latencyPercentile(0.9));
    w.key("p99_latency");
    w.value(m.latencyPercentile(0.99));
    w.key("throughput");
    w.value(m.throughput(cycles));
    w.key("reroutes");
    w.value(m.totalReroutes());
    w.key("stalls");
    w.value(m.totalStalls());
    w.key("backtrack_hops");
    w.value(m.backtrackHops());
    w.key("route_cache_hits");
    w.value(m.routeCacheHits());
    w.key("route_cache_misses");
    w.value(m.routeCacheMisses());
    if (m.routeCacheEvictions() != 0) {
        // Additive like drops_by_reason: eviction-free documents
        // (every golden fixture, and any run where the table never
        // saturates a probe window) keep the pre-geometry schema.
        w.key("route_cache_evictions");
        w.value(m.routeCacheEvictions());
    }

    w.key("stalls_by_stage");
    w.beginArray();
    for (unsigned s = 0; s < m.stages(); ++s)
        w.value(m.stallsAt(s));
    w.endArray();

    w.key("reroutes_by_stage");
    w.beginArray();
    for (unsigned s = 0; s < m.stages(); ++s)
        w.value(m.reroutesAt(s));
    w.endArray();

    w.key("avg_queue_depth_by_stage");
    w.beginArray();
    for (unsigned s = 0; s < m.stages(); ++s)
        w.value(m.avgQueueDepth(s));
    w.endArray();

    w.key("nonstraight_imbalance_by_stage");
    w.beginArray();
    for (unsigned s = 0; s < m.stages(); ++s)
        w.value(m.nonstraightImbalance(s));
    w.endArray();

    // Sparse exact latency histogram: [latency, count] pairs for
    // nonzero buckets (the last bucket also holds every latency
    // above the cap).
    w.key("latency_hist");
    w.beginArray();
    const auto &hist = m.latencyHistogram();
    for (std::size_t lat = 0; lat < hist.size(); ++lat) {
        if (hist[lat] == 0)
            continue;
        w.beginArray();
        w.value(static_cast<std::uint64_t>(lat));
        w.value(hist[lat]);
        w.endArray();
    }
    w.endArray();

    if (r.healthEnabled) {
        // Additive like drops_by_reason: absent without --health, so
        // default documents (and golden fixtures) stay byte-stable.
        w.key("health");
        w.beginObject();
        w.key("healthy");
        w.value(r.health.healthy());
        w.key("scans");
        w.value(r.health.scans);
        w.key("deadlocks");
        w.value(r.health.deadlocks);
        w.key("wait_cycle_sightings");
        w.value(r.health.waitCycleSightings);
        w.key("progress_violations");
        w.value(r.health.progressViolations);
        w.key("max_head_stall");
        w.value(r.health.maxHeadStall);
        w.key("last_progress_cycle");
        w.value(r.health.lastProgressCycle);
        w.endObject();

        w.key("steady_state");
        w.beginObject();
        w.key("stable");
        w.value(r.steady.stable);
        w.key("windows");
        w.value(static_cast<std::uint64_t>(r.steady.windows));
        w.key("truncated_windows");
        w.value(
            static_cast<std::uint64_t>(r.steady.truncatedWindows));
        w.key("steady_throughput");
        w.value(r.steady.steadyThroughput);
        w.key("steady_avg_latency");
        w.value(r.steady.steadyAvgLatency);
        w.key("whole_throughput");
        w.value(r.steady.wholeThroughput);
        w.key("whole_avg_latency");
        w.value(r.steady.wholeAvgLatency);
        w.endObject();
    }

    if (include_stats) {
        w.key("stats");
        obs::StatsRegistry reg;
        m.exportStats(reg, cycles);
        if (r.cacheCapacity != 0) {
            // Cache geometry rides in the opt-in stats section only:
            // the default document stays frozen by the goldens.
            reg.counter("route_cache.capacity", r.cacheCapacity);
            reg.counter("route_cache.entry_bytes",
                        r.cacheEntryBytes);
            reg.counter("route_cache.occupancy", r.cacheOccupancy);
            reg.counter("route_cache.evictions",
                        m.routeCacheEvictions());
        }
        reg.writeJson(w);
    }
    w.endObject();
}

} // namespace

void
writeSweepReport(std::ostream &os, const SweepGrid &grid,
                 const std::vector<CellResult> &results,
                 const ReportOptions &ropts)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("iadm-sweep-v1");
    if (ropts.buildType != nullptr) {
        w.key("build_type");
        w.value(ropts.buildType);
    }
    w.key("master_seed");
    w.value(grid.masterSeed);
    w.key("warmup_cycles");
    w.value(grid.warmupCycles);
    w.key("measure_cycles");
    w.value(grid.measureCycles);
    w.key("replicates");
    w.value(grid.replicates);
    if (grid.maxPacketAge != 0) {
        // Gated like the churn axis: absent in legacy documents.
        w.key("max_packet_age");
        w.value(grid.maxPacketAge);
    }

    w.key("grid");
    w.beginObject();
    w.key("net_sizes");
    w.beginArray();
    for (const Label n : grid.netSizes)
        w.value(static_cast<std::uint64_t>(n));
    w.endArray();
    w.key("schemes");
    w.beginArray();
    for (const auto s : grid.schemes)
        w.value(routingSchemeName(s));
    w.endArray();
    w.key("injection_rates");
    w.beginArray();
    for (const double r : grid.injectionRates)
        w.value(r);
    w.endArray();
    w.key("queue_capacities");
    w.beginArray();
    for (const std::size_t c : grid.queueCapacities)
        w.value(static_cast<std::uint64_t>(c));
    w.endArray();
    w.key("fault_scenarios");
    w.beginArray();
    for (const auto &f : grid.faults)
        w.value(f.name());
    w.endArray();
    w.key("traffics");
    w.beginArray();
    for (const auto &t : grid.traffics)
        w.value(t.name());
    w.endArray();
    w.key("crossbar_modes");
    w.beginArray();
    for (const bool b : grid.crossbarModes)
        w.value(b);
    w.endArray();
    // The churn axis appears only when it deviates from the default
    // single-None value: churn-free grids keep producing the exact
    // pre-churn document bytes.
    const bool has_churn = grid.churns.size() != 1 ||
                           !(grid.churns[0] == ChurnSpec{});
    if (has_churn) {
        w.key("churns");
        w.beginArray();
        for (const auto &c : grid.churns)
            w.value(c.name());
        w.endArray();
    }
    w.endObject();

    w.key("cells");
    w.beginArray();
    for (const auto &cr : results) {
        w.beginObject();
        w.key("cell_index");
        w.value(static_cast<std::uint64_t>(cr.cell.cellIndex));
        w.key("net_size");
        w.value(static_cast<std::uint64_t>(cr.cell.netSize));
        w.key("scheme");
        w.value(routingSchemeName(cr.cell.scheme));
        w.key("injection_rate");
        w.value(cr.cell.injectionRate);
        w.key("queue_capacity");
        w.value(static_cast<std::uint64_t>(cr.cell.queueCapacity));
        w.key("fault_scenario");
        w.value(cr.cell.fault.name());
        w.key("traffic");
        w.value(cr.cell.traffic.name());
        w.key("crossbar");
        w.value(cr.cell.crossbar);
        if (has_churn) {
            w.key("churn");
            w.value(cr.cell.churn.name());
        }
        w.key("replicates");
        w.beginArray();
        for (const auto &rep : cr.replicates)
            writeReplicate(w, rep, ropts.includeStats);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    if (ropts.includeWallClock) {
        w.key("elapsed_ms");
        w.value(ropts.elapsedMs);
    }
    w.endObject();
    os << "\n";
    IADM_ASSERT(w.done(), "unterminated JSON document");
}

std::string
sweepReportJson(const SweepGrid &grid,
                const std::vector<CellResult> &results,
                const ReportOptions &ropts)
{
    std::ostringstream os;
    writeSweepReport(os, grid, results, ropts);
    return os.str();
}

} // namespace iadm::sim
