/**
 * @file
 * Deterministic parallel parameter-sweep runner for the packet
 * simulator.
 *
 * A SweepGrid is the cartesian product of simulator axes (network
 * size x routing scheme x injection rate x queue capacity x fault
 * scenario x traffic pattern x crossbar mode); each cell is run for
 * a configurable number of independent replicates.  Replicate seeds
 * are derived from (master_seed, cell_index, replicate) with a
 * splitmix64-style mix, so every simulation is fully determined by
 * the grid alone: results are identical no matter how many workers
 * run the sweep or how the scheduler interleaves them.
 *
 * Workers are plain std::thread instances pulling run indices from
 * an atomic counter; each owns its NetworkSim (no shared mutable
 * state) and deposits the finished Metrics snapshot into its
 * preallocated result slot.  A mutex-guarded collector serializes
 * only the optional progress callback.
 */

#ifndef IADM_SIM_SWEEP_HPP
#define IADM_SIM_SWEEP_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "fault/fault_process.hpp"
#include "fault/fault_set.hpp"
#include "obs/health.hpp"
#include "sim/metrics.hpp"
#include "sim/network_sim.hpp"
#include "sim/scenario.hpp"

namespace iadm::obs {
class TraceSink;
}

namespace iadm::sim {

/** Named static-fault scenario, one axis of the sweep grid. */
struct FaultScenario
{
    enum class Kind : std::uint8_t
    {
        None,              //!< fault-free network
        RandomLinks,       //!< count random links of any kind
        Nonstraight,       //!< count random nonstraight links
        DoubleNonstraight, //!< both nonstraight links of count switches
        Switches,          //!< count random whole-switch blockages
    };

    Kind kind = Kind::None;
    std::size_t count = 0;

    /** Canonical spelling, e.g. "none", "links:4", "switches:2". */
    std::string name() const;

    /** Parse the canonical spelling; nullopt on bad input. */
    static std::optional<FaultScenario> parse(const std::string &spec);

    /** Materialize the scenario for one replicate (rng-seeded). */
    fault::FaultSet make(const topo::IadmTopology &topo,
                         Rng &rng) const;

    bool operator==(const FaultScenario &) const = default;
};

/**
 * Traffic-pattern axis of the sweep grid.
 *
 * Four legacy kinds keep their frozen canonical spellings
 * ("uniform", "hotspot:<node>:<frac>", "bitrev", "transpose") — the
 * golden fixtures bake those names into report JSON.  Everything
 * else is Kind::Scenario: the spec string is handed to
 * ScenarioSpec::parse (sim/scenario.hpp), which also accepts the
 * short forms "bursty:B:I" and "shift:K", and the canonical name is
 * the scenario grammar's canonical spelling.
 */
struct TrafficSpec
{
    enum class Kind : std::uint8_t
    {
        Uniform,
        Hotspot,     //!< hotFraction of traffic to hotNode
        BitReversal,
        Transpose,
        Scenario,    //!< composed scenario (sim/scenario.hpp)
    };

    Kind kind = Kind::Uniform;
    Label hotNode = 0;
    double hotFraction = 0.2;
    ScenarioSpec scenario; //!< used only when kind == Scenario

    /** Canonical spelling, e.g. "uniform", "hotspot:0:0.2", or the
     *  scenario grammar's canonical name. */
    std::string name() const;

    static std::optional<TrafficSpec> parse(const std::string &spec);

    /**
     * N-dependent validation (hot node < N, plus everything
     * ScenarioSpec::validate checks).  nullopt when valid, else a
     * one-line diagnostic; CLI front ends reject with exit 2.
     */
    std::optional<std::string> validate(Label n_size) const;

    /** Materialize the pattern; fails fatally if validate(n_size)
     *  rejects the spec (front ends must validate first). */
    std::unique_ptr<TrafficPattern> make(Label n_size) const;

    bool operator==(const TrafficSpec &) const = default;
};

/**
 * Fault-churn axis of the sweep grid: a seed-derived FaultProcess
 * attached to every replicate of the cell (fault/fault_process.hpp).
 * The process seed mixes the replicate seed with a dedicated salt,
 * so churn schedules are as reproducible as the traffic itself and
 * independent of the static-scenario rng draws.
 */
struct ChurnSpec
{
    enum class Kind : std::uint8_t
    {
        None,      //!< no churn process (the default axis value)
        Bernoulli, //!< per-cycle coin flips: pFail / pRepair
        Geometric, //!< per-link geometric holding times: mtbf / mttr
        Burst,     //!< periodic regional outages: interval/duration/span
    };

    Kind kind = Kind::None;
    double pFail = 0.0;        //!< Bernoulli: up -> down per cycle
    double pRepair = 0.0;      //!< Bernoulli: down -> up per cycle
    double mtbf = 0.0;         //!< Geometric: mean cycles up
    double mttr = 0.0;         //!< Geometric: mean cycles down
    std::uint64_t interval = 0; //!< Burst: cycles between outages
    std::uint64_t duration = 0; //!< Burst: outage length in cycles
    Label span = 1;            //!< Burst: switches per outage

    /** Canonical spelling, e.g. "none", "bernoulli:1e-05:0.01",
     *  "geometric:5000:200", "burst:2000:150:4". */
    std::string name() const;

    static std::optional<ChurnSpec> parse(const std::string &spec);

    /** Instantiate the process for one replicate; null for None. */
    std::unique_ptr<fault::FaultProcess>
    make(const topo::IadmTopology &topo, std::uint64_t seed) const;

    bool operator==(const ChurnSpec &) const = default;
};

/**
 * The sweep specification: every axis, the replicate count, run
 * lengths, and the master seed all replicate seeds derive from.
 */
struct SweepGrid
{
    std::vector<Label> netSizes{16};
    std::vector<RoutingScheme> schemes{RoutingScheme::SsdtStatic};
    std::vector<double> injectionRates{0.1};
    std::vector<std::size_t> queueCapacities{4};
    std::vector<FaultScenario> faults{FaultScenario{}};
    std::vector<TrafficSpec> traffics{TrafficSpec{}};
    std::vector<bool> crossbarModes{false};
    /** Churn axis; the single-None default keeps legacy cell
     *  indices (and therefore replicate seeds) unchanged. */
    std::vector<ChurnSpec> churns{ChurnSpec{}};

    unsigned replicates = 1;
    Cycle warmupCycles = 0;
    Cycle measureCycles = 1000;
    std::uint64_t masterSeed = 1;
    /** SimConfig::maxPacketAge for every replicate (0 = no cap).
     *  A scalar, not an axis: it is a lifecycle guarantee of the
     *  experiment, not a swept variable. */
    Cycle maxPacketAge = 0;

    /** Number of cells (cartesian product, replicates excluded). */
    std::size_t cellCount() const;

    /** Total simulation runs: cellCount() * replicates. */
    std::size_t runCount() const { return cellCount() * replicates; }
};

/** One fully resolved grid cell. */
struct SweepCell
{
    std::size_t cellIndex = 0;
    Label netSize = 16;
    RoutingScheme scheme = RoutingScheme::SsdtStatic;
    double injectionRate = 0.1;
    std::size_t queueCapacity = 4;
    FaultScenario fault;
    TrafficSpec traffic;
    bool crossbar = false;
    ChurnSpec churn;
};

/** Resolve cell @p index of @p grid (canonical axis nesting order). */
SweepCell resolveCell(const SweepGrid &grid, std::size_t index);

/**
 * Seed for one replicate: a splitmix64-style mix of the master seed,
 * the cell index and the replicate number.  Documented in
 * docs/SWEEP.md; changing this breaks report reproducibility.
 */
std::uint64_t deriveSeed(std::uint64_t master_seed,
                         std::uint64_t cell_index,
                         std::uint64_t replicate);

/** Result of one replicate run: the seed used and a Metrics copy. */
struct ReplicateResult
{
    std::uint64_t seed = 0;
    Metrics metrics;
    Cycle measuredCycles = 0;

    /**
     * Route-cache geometry snapshot taken after the measured run
     * (all zero when the replicate ran without a cache).  Pressure
     * counters (hits/misses/evictions) live in metrics; geometry is
     * a property of the cache instance, which dies with the
     * simulator, so it is captured here.
     */
    std::size_t cacheCapacity = 0;   //!< slots in the table
    std::size_t cacheOccupancy = 0;  //!< live entries at run end
    std::size_t cacheEntryBytes = 0; //!< sizeof(RouteCache::Entry)

    /**
     * Liveness + steady-state summary, populated only when the sweep
     * ran with SweepOptions::health (the monitor, like the cache
     * geometry, dies with the simulator).
     */
    bool healthEnabled = false;
    obs::HealthReport health;
    obs::SteadyStateTracker::Result steady;

    ReplicateResult() : metrics(2, 1) {}
    ReplicateResult(std::uint64_t s, Metrics m, Cycle c)
        : seed(s), metrics(std::move(m)), measuredCycles(c) {}
};

/** All replicates of one cell, in replicate order. */
struct CellResult
{
    SweepCell cell;
    std::vector<ReplicateResult> replicates;
};

/** Runner knobs. */
struct SweepOptions
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned workers = 1;

    /**
     * Intra-simulation shard count handed to every replicate's
     * SimConfig::shards; 0 and 1 both mean serial.  Orthogonal to
     * workers: each of the `workers` cell workers steps its own
     * simulator, and that simulator in turn services switch rows on
     * `simShards` threads — total threads ≈ workers * simShards, so
     * size the product, not each knob, to the machine.  Sharding is
     * metric-exact (sweep JSON is byte-identical at any value); it
     * pays on big-N cells and costs barrier overhead on small ones.
     */
    unsigned simShards = 1;

    /**
     * Optional pre-run hook, called once per replicate after the
     * simulator is constructed and before warmup; use it to schedule
     * transient blockages or other calendar events.  The Rng is
     * derived from the replicate seed, so hooked sweeps stay
     * deterministic as long as the hook uses only it.  Called
     * concurrently from worker threads; must not touch shared state.
     */
    std::function<void(NetworkSim &, const SweepCell &, Rng &)>
        setup;

    /**
     * Progress callback, invoked under the collector mutex as each
     * cell completes (all replicates done); never concurrent.
     */
    std::function<void(const CellResult &, std::size_t done,
                       std::size_t total)>
        onCellDone;

    /**
     * Event-trace ring capacity per replicate; 0 (the default)
     * leaves tracing detached.  Nonzero attaches a fresh TraceSink
     * to every replicate's simulator (cleared after warmup, so the
     * retained window covers the measured cycles) and hands it to
     * onReplicateTrace when the replicate finishes.  Recording
     * requires a build with the hooks compiled in
     * (obs::traceCompiledIn()); otherwise the sinks stay empty.
     */
    std::size_t traceCapacity = 0;

    /**
     * Per-replicate trace consumer, called from worker threads right
     * after the measured run (before the simulator is destroyed).
     * Concurrent when workers > 1: write to per-replicate files or
     * lock inside.  Replicate identity comes from (cell, replicate).
     */
    std::function<void(const SweepCell &, unsigned replicate,
                       const obs::TraceSink &, const NetworkSim &)>
        onReplicateTrace;

    /**
     * Attach a liveness monitor (obs::HealthMonitor) to every
     * replicate for the measured run and record its verdicts in
     * ReplicateResult.  Purely additive: the simulation trajectory
     * is untouched and the report gains `health` / `steady_state`
     * sections per replicate — with this off the report stays
     * byte-identical to a build without the feature.  Detection
     * requires hooks compiled in (obs::healthCompiledIn()).
     */
    bool health = false;

    /** Monitor knobs used when health is on. */
    obs::HealthConfig healthConfig;
};

/**
 * Run the whole grid and return one CellResult per cell, in cell
 * order.  Deterministic: the returned metrics depend only on the
 * grid (and hook), never on worker count or scheduling.
 */
std::vector<CellResult> runSweep(const SweepGrid &grid,
                                 const SweepOptions &opts = {});

/** Extra knobs for report serialization. */
struct ReportOptions
{
    /**
     * Include wall-clock fields (elapsed_ms).  Off for byte-exact
     * comparison across runs; on for human-facing reports.
     */
    bool includeWallClock = false;
    double elapsedMs = 0.0;

    /**
     * When set, emit a "build_type" field after "schema" so perf
     * numbers from unoptimized builds can be identified after the
     * fact (benches pass iadm::bench::buildType()).  Null omits the
     * field, keeping the default document byte-stable.
     */
    const char *buildType = nullptr;

    /**
     * Append a "stats" object to every replicate — the uniform
     * StatsRegistry rendering (docs/OBSERVABILITY.md) of the same
     * metrics the named report fields summarize.  Off by default:
     * the default document is frozen by the golden fixtures.
     */
    bool includeStats = false;
};

/**
 * Serialize a finished sweep as the iadm-sweep-v1 JSON document
 * (schema in docs/SWEEP.md).  Field order is fixed; with
 * includeWallClock off the output is byte-identical for identical
 * grids regardless of worker count.
 */
void writeSweepReport(std::ostream &os, const SweepGrid &grid,
                      const std::vector<CellResult> &results,
                      const ReportOptions &ropts = {});

/** writeSweepReport into a string. */
std::string sweepReportJson(const SweepGrid &grid,
                            const std::vector<CellResult> &results,
                            const ReportOptions &ropts = {});

} // namespace iadm::sim

#endif // IADM_SIM_SWEEP_HPP
