#include "sim/switch_model.hpp"

#include "common/logging.hpp"

namespace iadm::sim {

Packet &
SwitchQueue::front()
{
    IADM_ASSERT(!empty(), "front() on empty queue");
    return ring_[head_ & mask_];
}

const Packet &
SwitchQueue::front() const
{
    IADM_ASSERT(!empty(), "front() on empty queue");
    return ring_[head_ & mask_];
}

Packet
SwitchQueue::pop()
{
    IADM_ASSERT(!empty(), "pop() on empty queue");
    return std::move(ring_[head_++ & mask_]);
}

} // namespace iadm::sim
