#include "sim/switch_model.hpp"

#include "common/logging.hpp"

namespace iadm::sim {

bool
SwitchQueue::push(Packet p)
{
    if (full())
        return false;
    q_.push_back(std::move(p));
    return true;
}

Packet &
SwitchQueue::front()
{
    IADM_ASSERT(!q_.empty(), "front() on empty queue");
    return q_.front();
}

const Packet &
SwitchQueue::front() const
{
    IADM_ASSERT(!q_.empty(), "front() on empty queue");
    return q_.front();
}

Packet
SwitchQueue::pop()
{
    IADM_ASSERT(!q_.empty(), "pop() on empty queue");
    Packet p = std::move(q_.front());
    q_.pop_front();
    return p;
}

} // namespace iadm::sim
