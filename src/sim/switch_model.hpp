/**
 * @file
 * Queued switch model for the packet-switched IADM simulation.
 *
 * Each switch of each stage owns one FIFO input queue of bounded
 * capacity.  The IADM switch "selects one of its input links and
 * connects it to one or more of its output links" — modeled as: per
 * cycle, a switch forwards at most one packet and accepts at most
 * one packet (the Gamma network's 3x3 crossbar switches lift the
 * acceptance restriction).
 *
 * Storage is ring buffers, never node-based containers: QueueArena
 * packs all stages x N queues of a simulator into one contiguous
 * Packet slab with power-of-two ring indexing (head/tail are
 * free-running counters, wrap is a mask), so the steady-state hot
 * path performs no heap allocation and queue metadata stays
 * cache-resident.  SwitchQueue is the standalone single-queue
 * equivalent for callers that need just one FIFO.
 *
 * Concurrency contract (intra-simulation sharding,
 * docs/SIMULATOR.md): QueueArena is not thread-safe as a whole, but
 * every element it stores — a head_/tail_ cursor pair and the slab
 * slots of one queue — belongs to exactly one queue, so concurrent
 * access is safe as long as no two threads touch the *same* queue.
 * The sharded step relies on this: phase A pops only from rows the
 * shard owns, phase B pushes only into destination queues routed to
 * the owning shard, and a barrier separates the phases.  There are
 * no arena-global mutable members to race on (slots_/mask_ are set
 * at construction).
 */

#ifndef IADM_SIM_SWITCH_MODEL_HPP
#define IADM_SIM_SWITCH_MODEL_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/packet.hpp"

namespace iadm::sim {

namespace detail {

/** Smallest power of two >= max(v, 1). */
constexpr std::uint32_t
ringSlots(std::size_t v)
{
    std::uint32_t s = 1;
    while (s < v)
        s <<= 1;
    return s;
}

} // namespace detail

/** Bounded FIFO of packets attached to one switch (ring buffer). */
class SwitchQueue
{
  public:
    explicit SwitchQueue(std::size_t capacity = 4)
        : ring_(detail::ringSlots(capacity)),
          mask_(detail::ringSlots(capacity) - 1),
          capacity_(capacity)
    {
    }

    bool full() const { return size() >= capacity_; }
    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }
    std::size_t capacity() const { return capacity_; }

    /** Enqueue; returns false when full. */
    bool
    push(Packet p)
    {
        if (full())
            return false;
        ring_[tail_++ & mask_] = std::move(p);
        return true;
    }

    /** The head packet (queue must be nonempty). */
    Packet &front();
    const Packet &front() const;

    /** Remove and return the head packet. */
    Packet pop();

  private:
    std::vector<Packet> ring_;
    std::uint32_t head_ = 0; //!< free-running; index is head_ & mask_
    std::uint32_t tail_ = 0;
    std::uint32_t mask_;
    std::size_t capacity_;
};

/**
 * All stages x N switch queues of one simulator in a single
 * contiguous Packet slab.
 *
 * Queue q = stage * N + j owns slots
 * [q << slotShift, (q + 1) << slotShift); its ring position is the
 * free-running head/tail counter masked by (slots - 1).  Every
 * operation is O(1) with no allocation; the per-queue metadata
 * (head_, tail_) lives in two flat arrays so the per-cycle
 * service scan touches memory sequentially.
 */
class QueueArena
{
  public:
    QueueArena() = default;

    QueueArena(unsigned stages, Label n_size, std::size_t capacity)
        : slots_(detail::ringSlots(capacity)),
          mask_(slots_ - 1),
          shift_(0),
          cap_(capacity),
          queues_(static_cast<std::size_t>(stages) * n_size),
          n_(n_size)
    {
        while ((std::uint32_t{1} << shift_) < slots_)
            ++shift_;
        slab_.resize(queues_ * slots_);
        head_.assign(queues_, 0);
        tail_.assign(queues_, 0);
    }

    /** Queue id of switch @p j at stage @p stage. */
    std::size_t
    qid(unsigned stage, Label j) const
    {
        return static_cast<std::size_t>(stage) * n_ + j;
    }

    std::size_t capacity() const { return cap_; }
    std::size_t queueCount() const { return queues_; }

    bool empty(std::size_t q) const { return head_[q] == tail_[q]; }
    bool full(std::size_t q) const { return size(q) >= cap_; }

    std::size_t
    size(std::size_t q) const
    {
        return tail_[q] - head_[q];
    }

    Packet &
    front(std::size_t q)
    {
        return slab_[(q << shift_) + (head_[q] & mask_)];
    }

    /** Enqueue; returns false when full. */
    bool
    push(std::size_t q, Packet &&p)
    {
        if (full(q))
            return false;
        slab_[(q << shift_) + (tail_[q]++ & mask_)] = std::move(p);
        return true;
    }

    /**
     * Claim the tail slot of @p q for in-place construction (the
     * caller must have checked the queue is not full) and return
     * it; the slot still holds a stale packet to overwrite.
     */
    Packet &
    emplaceBack(std::size_t q)
    {
        return slab_[(q << shift_) + (tail_[q]++ & mask_)];
    }

    /** Remove and return the head packet (queue must be nonempty). */
    Packet
    pop(std::size_t q)
    {
        return std::move(slab_[(q << shift_) + (head_[q]++ & mask_)]);
    }

    /** Discard the head packet without copying it out. */
    void dropFront(std::size_t q) { ++head_[q]; }

    /**
     * Move the head of @p src to the tail of @p dst in one
     * slab-to-slab assignment (no intermediate Packet).  The caller
     * must have checked that src is nonempty and dst is not full.
     */
    void
    moveFront(std::size_t src, std::size_t dst)
    {
        slab_[(dst << shift_) + (tail_[dst]++ & mask_)] = std::move(
            slab_[(src << shift_) + (head_[src]++ & mask_)]);
    }

    /**
     * Hint the head (pop side) or tail (push side) slot of @p q
     * into cache ahead of use; Packet spans two cache lines.
     */
    void
    prefetchFront(std::size_t q) const
    {
        const auto *p = reinterpret_cast<const char *>(
            &slab_[(q << shift_) + (head_[q] & mask_)]);
        __builtin_prefetch(p);
        __builtin_prefetch(p + 64);
        __builtin_prefetch(p + sizeof(Packet) - 1);
    }

    void
    prefetchTail(std::size_t q)
    {
        auto *p = reinterpret_cast<char *>(
            &slab_[(q << shift_) + (tail_[q] & mask_)]);
        __builtin_prefetch(p, 1);
        __builtin_prefetch(p + 64, 1);
        __builtin_prefetch(p + sizeof(Packet) - 1, 1);
    }

    /** Packets across every queue — O(queues) scan, not hot-path. */
    std::size_t
    totalSize() const
    {
        std::size_t total = 0;
        for (std::size_t q = 0; q < queues_; ++q)
            total += size(q);
        return total;
    }

  private:
    std::vector<Packet> slab_;          //!< queues x slots packets
    std::vector<std::uint32_t> head_;   //!< free-running per queue
    std::vector<std::uint32_t> tail_;
    std::uint32_t slots_ = 0; //!< physical ring slots (power of two)
    std::uint32_t mask_ = 0;
    unsigned shift_ = 0;      //!< log2(slots_)
    std::size_t cap_ = 0;     //!< logical capacity (<= slots_)
    std::size_t queues_ = 0;
    Label n_ = 0;
};

} // namespace iadm::sim

#endif // IADM_SIM_SWITCH_MODEL_HPP
