/**
 * @file
 * Queued switch model for the packet-switched IADM simulation.
 *
 * Each switch of each stage owns one FIFO input queue of bounded
 * capacity.  The IADM switch "selects one of its input links and
 * connects it to one or more of its output links" — modeled as: per
 * cycle, a switch forwards at most one packet and accepts at most
 * one packet (the Gamma network's 3x3 crossbar switches lift the
 * acceptance restriction).
 */

#ifndef IADM_SIM_SWITCH_MODEL_HPP
#define IADM_SIM_SWITCH_MODEL_HPP

#include <deque>
#include <optional>

#include "sim/packet.hpp"

namespace iadm::sim {

/** Bounded FIFO of packets attached to one switch. */
class SwitchQueue
{
  public:
    explicit SwitchQueue(std::size_t capacity = 4)
        : capacity_(capacity) {}

    bool full() const { return q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Enqueue; returns false when full. */
    bool push(Packet p);

    /** The head packet (queue must be nonempty). */
    Packet &front();
    const Packet &front() const;

    /** Remove and return the head packet. */
    Packet pop();

  private:
    std::deque<Packet> q_;
    std::size_t capacity_;
};

} // namespace iadm::sim

#endif // IADM_SIM_SWITCH_MODEL_HPP
