#include "sim/traffic.hpp"

namespace iadm::sim {

Label
UniformTraffic::pick(Label, Rng &rng)
{
    return static_cast<Label>(rng.uniform(nSize_));
}

Label
PermutationTraffic::pick(Label src, Rng &)
{
    return perm_(src);
}

Label
HotspotTraffic::pick(Label, Rng &rng)
{
    if (rng.chance(hotFraction_))
        return hot_;
    return static_cast<Label>(rng.uniform(nSize_));
}

BurstyTraffic::BurstyTraffic(Label n_size, double burst_len,
                             double idle_len)
    : nSize_(n_size), pOnToOff_(1.0 / burst_len),
      pOffToOn_(1.0 / idle_len), on_(n_size, 0)
{
}

Label
BurstyTraffic::pick(Label, Rng &rng)
{
    return static_cast<Label>(rng.uniform(nSize_));
}

bool
BurstyTraffic::gate(Label src, Rng &rng)
{
    // Exactly one draw per call on both branches: the draw count per
    // (cycle, source) is constant, so the downstream rate/pick
    // stream never shifts with the chain state.
    const bool was_on = on_[src] != 0;
    if (was_on) {
        if (rng.chance(pOnToOff_))
            on_[src] = 0;
    } else if (rng.chance(pOffToOn_)) {
        on_[src] = 1;
    }
    return was_on;
}

double
BurstyTraffic::dutyCycle() const
{
    // Stationary distribution of the two-state chain.
    return pOffToOn_ / (pOffToOn_ + pOnToOff_);
}

std::unique_ptr<TrafficPattern>
makeBitReversalTraffic(Label n_size)
{
    return std::make_unique<PermutationTraffic>(
        perm::bitReversalPerm(n_size));
}

std::unique_ptr<TrafficPattern>
makeTransposeTraffic(Label n_size)
{
    return std::make_unique<PermutationTraffic>(
        perm::transposePerm(n_size));
}

std::unique_ptr<TrafficPattern>
makeShiftTraffic(Label n_size, Label shift)
{
    return std::make_unique<PermutationTraffic>(
        perm::shiftPerm(n_size, shift));
}

} // namespace iadm::sim
