/**
 * @file
 * Traffic patterns for the packet-switched simulation.
 *
 * Concurrency contract: the simulator invokes every mutating hook —
 * gate(), pick(), beginCycle(), onInject(), onRetire() — from serial
 * code only.  gate/pick/beginCycle run in the injection draw phase,
 * which is serial even on a sharded simulator (the RNG stream must
 * not depend on the shard count); onInject fires from the serial
 * injection epilogue; and onRetire fires from the service loop,
 * which is why a closed-loop pattern (closedLoop() == true) pins its
 * simulator to shards = 1, exactly like SsdtBalanced.  Patterns may
 * therefore keep plain per-source state, but that state must be
 * per-source *bytes or wider* — never std::vector<bool>, whose
 * packed words would make any future concurrent use a data race by
 * construction.
 */

#ifndef IADM_SIM_TRAFFIC_HPP
#define IADM_SIM_TRAFFIC_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "perm/permutation.hpp"
#include "sim/packet.hpp"

namespace iadm::sim {

/** Chooses a destination for each newly injected packet. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;
    virtual Label pick(Label src, Rng &rng) = 0;
    virtual std::string name() const = 0;

    /**
     * Source-side admission gate, consulted once per source per
     * cycle before the rate draw; patterns with temporal structure
     * (bursts, ramps, closed-loop windows) override it.  Default:
     * always open.  Implementations must draw the same number of
     * random values per call regardless of the outcome, so serial
     * and sharded runs stay stream-identical.
     */
    virtual bool
    gate(Label, Rng &)
    {
        return true;
    }

    /**
     * True when gate() may return false or advance state (and so
     * must really be called every cycle).  Patterns whose gate is
     * the always-open default override this to false, letting the
     * simulator skip N virtual calls per cycle; a gate that draws
     * no randomness is stream-identical whether called or skipped.
     */
    virtual bool
    gated() const
    {
        return true;
    }

    /**
     * Called once at the top of each injection cycle (before any
     * gate() call of that cycle), but only when gated() is true.
     * Time-varying shapers (rate ramps) update their per-cycle
     * state here instead of per source.
     */
    virtual void beginCycle(Cycle) {}

    /**
     * True when the pattern needs injection/retirement feedback
     * (closed-loop load).  The simulator then calls onInject /
     * onRetire and runs serially (shards pinned to 1) so the
     * retirement callbacks fire from single-threaded code.
     */
    virtual bool
    closedLoop() const
    {
        return false;
    }

    /** A packet from @p src entered the network (enqueued). */
    virtual void onInject(Label) {}

    /** A packet from @p src left it (delivered or dropped). */
    virtual void onRetire(Label) {}
};

/** Uniformly random destinations. */
class UniformTraffic : public TrafficPattern
{
  public:
    explicit UniformTraffic(Label n_size) : nSize_(n_size) {}
    Label pick(Label src, Rng &rng) override;
    std::string name() const override { return "uniform"; }
    bool gated() const override { return false; }

  private:
    Label nSize_;
};

/** Fixed permutation traffic (each source always sends to p(src)). */
class PermutationTraffic : public TrafficPattern
{
  public:
    explicit PermutationTraffic(perm::Permutation p)
        : perm_(std::move(p)) {}
    Label pick(Label src, Rng &rng) override;
    std::string name() const override { return "permutation"; }
    bool gated() const override { return false; }

  private:
    perm::Permutation perm_;
};

/**
 * Hotspot traffic: with probability @p hot_fraction the destination
 * is the hot node, otherwise uniform.
 */
class HotspotTraffic : public TrafficPattern
{
  public:
    HotspotTraffic(Label n_size, Label hot, double hot_fraction)
        : nSize_(n_size), hot_(hot), hotFraction_(hot_fraction) {}
    Label pick(Label src, Rng &rng) override;
    std::string name() const override { return "hotspot"; }
    bool gated() const override { return false; }

  private:
    Label nSize_;
    Label hot_;
    double hotFraction_;
};

/**
 * Bursty traffic: uniform destinations modulated by a per-source
 * two-state (on/off) Markov chain with expected burst and idle
 * lengths; the chain advances in gate(), called once per source
 * per cycle.  gate() draws exactly one random value per call
 * whatever the state, so the stream is shard-count independent.
 */
class BurstyTraffic : public TrafficPattern
{
  public:
    BurstyTraffic(Label n_size, double burst_len, double idle_len);

    Label pick(Label src, Rng &rng) override;
    std::string name() const override { return "bursty"; }
    bool gate(Label src, Rng &rng) override;

    /** Long-run fraction of time a source is ON. */
    double dutyCycle() const;

  private:
    Label nSize_;
    double pOnToOff_; //!< 1 / burst length
    double pOffToOn_; //!< 1 / idle length
    /** Per-source chain state, one byte per source (see the file
     *  header: never std::vector<bool> — adjacent sources must not
     *  share a word). */
    std::vector<std::uint8_t> on_;
};

/** Bit-reversal permutation traffic (a classic cube stressor). */
std::unique_ptr<TrafficPattern> makeBitReversalTraffic(Label n_size);

/** Matrix-transpose permutation traffic (n even). */
std::unique_ptr<TrafficPattern> makeTransposeTraffic(Label n_size);

/** Uniform-shift ("tornado"-style) permutation traffic. */
std::unique_ptr<TrafficPattern> makeShiftTraffic(Label n_size,
                                                 Label shift);

} // namespace iadm::sim

#endif // IADM_SIM_TRAFFIC_HPP
