/**
 * @file
 * Traffic patterns for the packet-switched simulation.
 */

#ifndef IADM_SIM_TRAFFIC_HPP
#define IADM_SIM_TRAFFIC_HPP

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "perm/permutation.hpp"

namespace iadm::sim {

/** Chooses a destination for each newly injected packet. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;
    virtual Label pick(Label src, Rng &rng) const = 0;
    virtual std::string name() const = 0;

    /**
     * Source-side admission gate, consulted once per source per
     * cycle before the rate draw; patterns with temporal structure
     * (bursts) override it.  Default: always open.
     */
    virtual bool
    gate(Label, Rng &) const
    {
        return true;
    }

    /**
     * True when gate() may return false or advance state (and so
     * must really be called every cycle).  Patterns whose gate is
     * the always-open default override this to false, letting the
     * simulator skip N virtual calls per cycle; a gate that draws
     * no randomness is stream-identical whether called or skipped.
     */
    virtual bool
    gated() const
    {
        return true;
    }
};

/** Uniformly random destinations. */
class UniformTraffic : public TrafficPattern
{
  public:
    explicit UniformTraffic(Label n_size) : nSize_(n_size) {}
    Label pick(Label src, Rng &rng) const override;
    std::string name() const override { return "uniform"; }
    bool gated() const override { return false; }

  private:
    Label nSize_;
};

/** Fixed permutation traffic (each source always sends to p(src)). */
class PermutationTraffic : public TrafficPattern
{
  public:
    explicit PermutationTraffic(perm::Permutation p)
        : perm_(std::move(p)) {}
    Label pick(Label src, Rng &rng) const override;
    std::string name() const override { return "permutation"; }
    bool gated() const override { return false; }

  private:
    perm::Permutation perm_;
};

/**
 * Hotspot traffic: with probability @p hot_fraction the destination
 * is the hot node, otherwise uniform.
 */
class HotspotTraffic : public TrafficPattern
{
  public:
    HotspotTraffic(Label n_size, Label hot, double hot_fraction)
        : nSize_(n_size), hot_(hot), hotFraction_(hot_fraction) {}
    Label pick(Label src, Rng &rng) const override;
    std::string name() const override { return "hotspot"; }
    bool gated() const override { return false; }

  private:
    Label nSize_;
    Label hot_;
    double hotFraction_;
};

/**
 * Bursty traffic: uniform destinations modulated by a per-source
 * two-state (on/off) Markov chain with expected burst and idle
 * lengths; the chain advances in gate(), called once per source
 * per cycle.
 */
class BurstyTraffic : public TrafficPattern
{
  public:
    BurstyTraffic(Label n_size, double burst_len, double idle_len);

    Label pick(Label src, Rng &rng) const override;
    std::string name() const override { return "bursty"; }
    bool gate(Label src, Rng &rng) const override;

    /** Long-run fraction of time a source is ON. */
    double dutyCycle() const;

  private:
    Label nSize_;
    double pOnToOff_; //!< 1 / burst length
    double pOffToOn_; //!< 1 / idle length
    mutable std::vector<bool> on_;
};

/** Bit-reversal permutation traffic (a classic cube stressor). */
std::unique_ptr<TrafficPattern> makeBitReversalTraffic(Label n_size);

/** Matrix-transpose permutation traffic (n even). */
std::unique_ptr<TrafficPattern> makeTransposeTraffic(Label n_size);

/** Uniform-shift ("tornado"-style) permutation traffic. */
std::unique_ptr<TrafficPattern> makeShiftTraffic(Label n_size,
                                                 Label shift);

} // namespace iadm::sim

#endif // IADM_SIM_TRAFFIC_HPP
