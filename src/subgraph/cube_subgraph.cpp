#include "subgraph/cube_subgraph.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::subgraph {

CubeSubgraph::CubeSubgraph(const topo::IadmTopology &topo, Label offset,
                           std::uint64_t last_minus)
    : topo_(&topo), offset_(offset), lastMinus_(last_minus)
{
    IADM_ASSERT(offset < topo.size(), "offset out of range");
    IADM_ASSERT(topo.size() <= 64 ||
                last_minus == 0,
                "last-stage mask limited to N <= 64");
}

Label
CubeSubgraph::logicalLabel(Label j) const
{
    return modAdd(j, offset_, topo_->size());
}

topo::Link
CubeSubgraph::activeNonstraight(unsigned i, Label j) const
{
    const unsigned n = topo_->stages();
    if (i == n - 1) {
        const bool minus = (lastMinus_ >> j) & 1u;
        return minus ? topo_->minusLink(i, j) : topo_->plusLink(i, j);
    }
    return bit(logicalLabel(j), i) == 0 ? topo_->plusLink(i, j)
                                        : topo_->minusLink(i, j);
}

std::vector<topo::Link>
CubeSubgraph::activeLinks(unsigned i, Label j) const
{
    return {topo_->straightLink(i, j), activeNonstraight(i, j)};
}

bool
CubeSubgraph::contains(const topo::Link &l) const
{
    if (l.kind == topo::LinkKind::Straight)
        return true;
    return activeNonstraight(l.stage, l.from) == l;
}

std::set<std::uint64_t>
CubeSubgraph::linkKeys() const
{
    std::set<std::uint64_t> keys;
    for (unsigned i = 0; i < topo_->stages(); ++i) {
        for (Label j = 0; j < topo_->size(); ++j) {
            keys.insert(topo_->straightLink(i, j).key());
            keys.insert(activeNonstraight(i, j).key());
        }
    }
    return keys;
}

std::set<std::uint64_t>
CubeSubgraph::prefixLinkKeys() const
{
    std::set<std::uint64_t> keys;
    for (unsigned i = 0; i + 1 < topo_->stages(); ++i) {
        for (Label j = 0; j < topo_->size(); ++j) {
            keys.insert(topo_->straightLink(i, j).key());
            keys.insert(activeNonstraight(i, j).key());
        }
    }
    return keys;
}

core::Path
CubeSubgraph::route(Label src, Label dest) const
{
    const Label n_size = topo_->size();
    const unsigned n = topo_->stages();
    IADM_ASSERT(src < n_size && dest < n_size, "bad address");

    // The subgraph emulates an ICube on logical labels; the logical
    // destination tag is dest + x.
    const Label logical_dest = modAdd(dest, offset_, n_size);
    std::vector<Label> sw{src};
    std::vector<topo::LinkKind> kinds;
    Label j = src;
    for (unsigned i = 0; i < n; ++i) {
        const Label lj = logicalLabel(j);
        topo::Link l = topo_->straightLink(i, j);
        if (bit(lj, i) != bit(logical_dest, i))
            l = activeNonstraight(i, j);
        kinds.push_back(l.kind);
        j = l.to;
        sw.push_back(j);
    }
    IADM_ASSERT(j == dest, "cube-subgraph routing missed: ", j,
                " != ", dest);
    return {std::move(sw), std::move(kinds)};
}

std::string
CubeSubgraph::str() const
{
    std::ostringstream os;
    os << "CubeSubgraph(x=" << offset_ << ", lastMinus=0x" << std::hex
       << lastMinus_ << std::dec << ")";
    return os.str();
}

} // namespace iadm::subgraph
