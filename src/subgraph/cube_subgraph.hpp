/**
 * @file
 * Cube subgraphs of the IADM network (Section 6).
 *
 * Setting every switch to one of its two states activates, per
 * switch, the straight link plus exactly one nonstraight link; the
 * set of active links is a subgraph of the IADM network.  Relabeling
 * every switch j to the logical label (j + x) mod N and operating in
 * state C under the logical labels yields a subgraph isomorphic to
 * the ICube network (Figure 8); the isomorphism maps logical ICube
 * switch v to physical switch (v - x) mod N in every column.  At
 * stage n-1 the +-2^{n-1} links coincide in endpoints, so each of
 * the N last-stage switches may freely choose either physical link,
 * giving the 2^N factor of Theorem 6.1.
 */

#ifndef IADM_SUBGRAPH_CUBE_SUBGRAPH_HPP
#define IADM_SUBGRAPH_CUBE_SUBGRAPH_HPP

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/path.hpp"
#include "topology/iadm.hpp"

namespace iadm::subgraph {

/**
 * One member of the constructive cube-subgraph family: a relabeling
 * offset x plus the per-switch sign choices of stage n-1.
 */
class CubeSubgraph
{
  public:
    /**
     * @param topo        the host IADM network
     * @param offset      relabeling constant x (0 <= x < N)
     * @param last_minus  bit j set = switch j of stage n-1 uses its
     *                    physical -2^{n-1} link (default: all Plus)
     */
    CubeSubgraph(const topo::IadmTopology &topo, Label offset,
                 std::uint64_t last_minus = 0);

    Label offset() const { return offset_; }
    std::uint64_t lastStageMinusMask() const { return lastMinus_; }
    Label size() const { return topo_->size(); }
    unsigned stages() const { return topo_->stages(); }

    /** Logical label of physical switch @p j: (j + x) mod N. */
    Label logicalLabel(Label j) const;

    /**
     * The active nonstraight link of physical switch @p j at stage
     * @p i: +2^i when bit i of the logical label is 0, -2^i when it
     * is 1; at stage n-1 the sign comes from the last-stage mask.
     */
    topo::Link activeNonstraight(unsigned i, Label j) const;

    /** Both active links (straight first) of switch @p j, stage @p i. */
    std::vector<topo::Link> activeLinks(unsigned i, Label j) const;

    /** True iff @p l is one of the subgraph's links. */
    bool contains(const topo::Link &l) const;

    /**
     * The subgraph's identity as a sorted set of link keys
     * ("two cube subgraphs are distinct if they differ in at least
     * one link").
     */
    std::set<std::uint64_t> linkKeys() const;

    /** Link keys restricted to stages 0..n-2 (Theorem 6.1 proof). */
    std::set<std::uint64_t> prefixLinkKeys() const;

    /**
     * Destination-tag route of a physical message src -> dest inside
     * the subgraph, using the logical tag (dest + x) semantics; the
     * returned path uses only active links.
     */
    core::Path route(Label src, Label dest) const;

    std::string str() const;

  private:
    const topo::IadmTopology *topo_;
    Label offset_;
    std::uint64_t lastMinus_;
};

} // namespace iadm::subgraph

#endif // IADM_SUBGRAPH_CUBE_SUBGRAPH_HPP
