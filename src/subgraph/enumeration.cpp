#include "subgraph/enumeration.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::subgraph {

Label
StateSubgraph::nonstraightTarget(unsigned i, Label j) const
{
    const auto d = std::int64_t{1} << i;
    return minus[static_cast<std::size_t>(i) * size + j]
               ? modAdd(j, -d, size)
               : modAdd(j, d, size);
}

StateSubgraph
StateSubgraph::fromCube(const CubeSubgraph &g)
{
    StateSubgraph s;
    s.size = g.size();
    s.stages = g.stages();
    s.minus.assign(static_cast<std::size_t>(s.size) * s.stages, false);
    for (unsigned i = 0; i < s.stages; ++i) {
        for (Label j = 0; j < s.size; ++j) {
            s.minus[static_cast<std::size_t>(i) * s.size + j] =
                g.activeNonstraight(i, j).kind == topo::LinkKind::Minus;
        }
    }
    return s;
}

CubeSubgraph
relabeled(const topo::IadmTopology &topo, Label x)
{
    return CubeSubgraph(topo, x, 0);
}

std::size_t
countDistinctPrefixFamilies(const topo::IadmTopology &topo)
{
    std::set<std::set<std::uint64_t>> distinct;
    for (Label x = 0; x < topo.size(); ++x)
        distinct.insert(relabeled(topo, x).prefixLinkKeys());
    return distinct.size();
}

namespace {

/**
 * The column-i pair constraint: pi must map every {j, t_i(j)} pair
 * onto a {v, v ^ 2^i} pair, i.e. pi(t_i(j)) == pi(j) ^ 2^i.
 */
bool
columnConstraintHolds(const StateSubgraph &g, unsigned i,
                      const std::vector<Label> &pi)
{
    for (Label j = 0; j < g.size; ++j) {
        const Label t = g.nonstraightTarget(i, j);
        if (pi[t] != static_cast<Label>(flipBit(pi[j], i)))
            return false;
    }
    return true;
}

/** All t_i fixed-point-free involutions (necessary condition). */
bool
allStagesInvolutions(const StateSubgraph &g)
{
    for (unsigned i = 0; i < g.stages; ++i) {
        for (Label j = 0; j < g.size; ++j) {
            const Label t = g.nonstraightTarget(i, j);
            if (t == j || g.nonstraightTarget(i, t) != j)
                return false;
        }
    }
    return true;
}

/**
 * Depth-first search over columns: given pi_i (satisfying the
 * column-i constraint), each t_i-pair independently chooses which
 * of its two images keeps the straight link, generating pi_{i+1};
 * recurse while the next column's constraint can be met.
 */
bool
dfsColumns(const StateSubgraph &g, unsigned i,
           const std::vector<Label> &pi)
{
    if (i + 1 >= g.stages) {
        // Column n's map is unconstrained: any per-pair choice works.
        return true;
    }
    // Collect the representative of each t_i-pair.
    std::vector<Label> reps;
    std::vector<bool> seen(g.size, false);
    for (Label j = 0; j < g.size; ++j) {
        if (!seen[j]) {
            seen[j] = true;
            seen[g.nonstraightTarget(i, j)] = true;
            reps.push_back(j);
        }
    }
    const auto half = static_cast<unsigned>(reps.size());
    std::vector<Label> next(g.size);
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << half);
         ++mask) {
        for (unsigned k = 0; k < half; ++k) {
            const Label j = reps[k];
            const Label t = g.nonstraightTarget(i, j);
            const auto flip = static_cast<Label>(flipBit(pi[j], i));
            if ((mask >> k) & 1u) {
                next[j] = flip;
                next[t] = pi[j];
            } else {
                next[j] = pi[j];
                next[t] = flip;
            }
        }
        if (columnConstraintHolds(g, i + 1, next) &&
            dfsColumns(g, i + 1, next))
            return true;
    }
    return false;
}

} // namespace

bool
isIsomorphicToICube(const StateSubgraph &g)
{
    IADM_ASSERT(g.size >= 2 && g.size <= 32,
                "iso search practical for N <= 32 only");
    if (!allStagesInvolutions(g))
        return false;

    // Enumerate pi_0: map t_0-pairs onto {v, v^1} pairs.
    std::vector<Label> reps;
    std::vector<bool> seen(g.size, false);
    for (Label j = 0; j < g.size; ++j) {
        if (!seen[j]) {
            seen[j] = true;
            seen[g.nonstraightTarget(0, j)] = true;
            reps.push_back(j);
        }
    }
    const auto half = static_cast<unsigned>(reps.size());
    std::vector<unsigned> perm(half);
    for (unsigned k = 0; k < half; ++k)
        perm[k] = k;

    std::vector<Label> pi(g.size);
    do {
        for (std::uint64_t orient = 0;
             orient < (std::uint64_t{1} << half); ++orient) {
            for (unsigned k = 0; k < half; ++k) {
                const Label j = reps[k];
                const Label t = g.nonstraightTarget(0, j);
                // Target pair for pair k: {2*perm[k], 2*perm[k]+1}.
                const Label v = static_cast<Label>(2 * perm[k]);
                if ((orient >> k) & 1u) {
                    pi[j] = v | 1u;
                    pi[t] = v;
                } else {
                    pi[j] = v;
                    pi[t] = v | 1u;
                }
            }
            if (dfsColumns(g, 0, pi))
                return true;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return false;
}

std::vector<StateSubgraph>
involutionAssignments(const topo::IadmTopology &topo)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();
    IADM_ASSERT(n >= 2 && (std::uint64_t{1} << ((1u << (n - 1)) - 1))
                              <= (std::uint64_t{1} << 20),
                "too many involution assignments to materialize");

    // Per stage i in [0, n-1): the +-2^i move splits Z_N into 2^i
    // cycles; each cycle c + k*2^i (k = 0..N/2^i-1) has two perfect
    // matchings: pair positions (2m, 2m+1) or (2m+1, 2m+2).
    struct StageChoices
    {
        unsigned stage;
        std::vector<Label> cycle_starts;
    };
    std::vector<StageChoices> stages;
    unsigned total_cycles = 0;
    for (unsigned i = 0; i + 1 < n; ++i) {
        StageChoices sc;
        sc.stage = i;
        for (Label c = 0; c < (Label{1} << i); ++c)
            sc.cycle_starts.push_back(c);
        total_cycles += static_cast<unsigned>(sc.cycle_starts.size());
        stages.push_back(std::move(sc));
    }

    std::vector<StateSubgraph> out;
    const std::uint64_t combos = std::uint64_t{1} << total_cycles;
    for (std::uint64_t mask = 0; mask < combos; ++mask) {
        StateSubgraph g;
        g.size = n_size;
        g.stages = n;
        g.minus.assign(static_cast<std::size_t>(n_size) * n, false);
        unsigned bit_idx = 0;
        for (const auto &sc : stages) {
            const Label step = Label{1} << sc.stage;
            const Label cycle_len = n_size >> sc.stage;
            for (Label c : sc.cycle_starts) {
                const unsigned offset =
                    static_cast<unsigned>((mask >> bit_idx) & 1u);
                ++bit_idx;
                // Pair positions (2m + offset, 2m + 1 + offset).
                for (Label m = 0; m < cycle_len / 2; ++m) {
                    const Label a = modAdd(
                        c, (2 * m + offset) *
                               static_cast<std::int64_t>(step),
                        n_size);
                    const Label b = modAdd(a, step, n_size);
                    // a's active nonstraight is +2^i (towards b);
                    // b's is -2^i (back to a).
                    g.minus[static_cast<std::size_t>(sc.stage) *
                                n_size + a] = false;
                    g.minus[static_cast<std::size_t>(sc.stage) *
                                n_size + b] = true;
                }
            }
        }
        out.push_back(std::move(g));
    }
    return out;
}

namespace {

/** Pairing function of stage i as an explicit involution table. */
std::vector<Label>
pairingOf(const StateSubgraph &g, unsigned i)
{
    std::vector<Label> t(g.size);
    for (Label j = 0; j < g.size; ++j)
        t[j] = g.nonstraightTarget(i, j);
    return t;
}

bool
blockwiseRec(std::vector<std::vector<Label>> pairings, Label n_size)
{
    if (pairings.size() <= 1)
        return true;
    const auto &t0 = pairings.front();
    // Verify involution (defensive) and build block ids.
    std::vector<Label> block(n_size, ~Label{0});
    Label blocks = 0;
    for (Label j = 0; j < n_size; ++j) {
        if (block[j] != ~Label{0})
            continue;
        const Label p = t0[j];
        if (p == j || t0[p] != j)
            return false;
        block[j] = blocks;
        block[p] = blocks;
        ++blocks;
    }
    // Later pairings must map t0-blocks onto t0-blocks; build the
    // quotient pairings.
    std::vector<std::vector<Label>> quotient;
    for (std::size_t k = 1; k < pairings.size(); ++k) {
        const auto &t = pairings[k];
        std::vector<Label> q(blocks, ~Label{0});
        for (Label j = 0; j < n_size; ++j) {
            if (block[t[j]] != block[t[t0[j]]])
                return false; // the pair {j, t0(j)} is torn apart
            const Label from = block[j];
            const Label to = block[t[j]];
            if (q[from] != ~Label{0} && q[from] != to)
                return false;
            q[from] = to;
        }
        quotient.push_back(std::move(q));
    }
    return blockwiseRec(std::move(quotient), blocks);
}

} // namespace

bool
blockwiseButterflyCompatible(const StateSubgraph &g)
{
    std::vector<std::vector<Label>> pairings;
    for (unsigned i = 0; i + 1 < g.stages; ++i)
        pairings.push_back(pairingOf(g, i));
    return blockwiseRec(std::move(pairings), g.size);
}

SmartCensus
smartCensus(const topo::IadmTopology &topo)
{
    const Label n_size = topo.size();
    SmartCensus census;
    census.paperLowerBound =
        (static_cast<std::uint64_t>(n_size) / 2) << n_size;

    // The constructive family's sign patterns (prefix stages).
    std::vector<StateSubgraph> family;
    for (Label x = 0; x < n_size / 2; ++x)
        family.push_back(StateSubgraph::fromCube(
            CubeSubgraph(topo, x)));
    const auto prefix_equal = [&](const StateSubgraph &a,
                                  const StateSubgraph &b) {
        for (unsigned i = 0; i + 1 < a.stages; ++i)
            for (Label j = 0; j < a.size; ++j)
                if (a.minus[static_cast<std::size_t>(i) * a.size +
                            j] !=
                    b.minus[static_cast<std::size_t>(i) * b.size +
                            j])
                    return false;
        return true;
    };

    for (const StateSubgraph &g : involutionAssignments(topo)) {
        ++census.involutionValid;
        if (!blockwiseButterflyCompatible(g))
            continue;
        ++census.blockwiseValid;
        bool in_family = false;
        for (const auto &f : family)
            in_family |= prefix_equal(g, f);
        if (in_family) {
            ++census.familyMembers;
            ++census.isoToICube;
        } else if (isIsomorphicToICube(g)) {
            ++census.nonFamilyIso;
            ++census.isoToICube;
        }
    }
    census.totalWithLastStage = census.isoToICube << n_size;
    return census;
}

SubgraphCensus
exhaustiveCensus(const topo::IadmTopology &topo)
{
    const Label n_size = topo.size();
    const unsigned n = topo.stages();
    const unsigned prefix_switches = n_size * (n - 1);
    IADM_ASSERT(prefix_switches <= 20,
                "census is exponential; use N = 4 or N = 8");

    SubgraphCensus census;
    census.stateSubgraphsPrefix = std::uint64_t{1} << prefix_switches;
    census.paperLowerBound =
        (static_cast<std::uint64_t>(n_size) / 2) << n_size;

    StateSubgraph g;
    g.size = n_size;
    g.stages = n;
    g.minus.assign(static_cast<std::size_t>(n_size) * n, false);

    for (std::uint64_t mask = 0;
         mask < (std::uint64_t{1} << prefix_switches); ++mask) {
        for (unsigned b = 0; b < prefix_switches; ++b)
            g.minus[b] = (mask >> b) & 1u;
        // Last stage: fixed signs; +-2^{n-1} coincide in endpoints,
        // so adjacency (and hence isomorphism) is unaffected.
        if (!allStagesInvolutions(g))
            continue;
        ++census.involutionValid;
        if (isIsomorphicToICube(g))
            ++census.isoToICube;
    }
    census.totalWithLastStage = census.isoToICube << n_size;
    return census;
}

} // namespace iadm::subgraph
