#include "subgraph/reconfigure.hpp"

#include "common/logging.hpp"

namespace iadm::subgraph {

std::vector<Label>
viableOffsets(const topo::IadmTopology &topo,
              const fault::FaultSet &faults)
{
    std::vector<Label> viable;
    for (Label x = 0; x < topo.size(); ++x) {
        const CubeSubgraph g(topo, x);
        bool ok = true;
        for (unsigned i = 0; ok && i + 1 < topo.stages(); ++i) {
            for (Label j = 0; ok && j < topo.size(); ++j) {
                if (faults.isBlocked(topo.straightLink(i, j)) ||
                    faults.isBlocked(g.activeNonstraight(i, j)))
                    ok = false;
            }
        }
        if (ok)
            viable.push_back(x);
    }
    return viable;
}

std::optional<CubeSubgraph>
reconfigureAroundFaults(const topo::IadmTopology &topo,
                        const fault::FaultSet &faults)
{
    IADM_ASSERT(topo.size() <= 64,
                "last-stage sign mask limited to N <= 64");
    const unsigned last = topo.stages() - 1;
    for (Label x : viableOffsets(topo, faults)) {
        // The last stage chooses per-switch between the +-2^{n-1}
        // links; the straight links must be healthy too.
        std::uint64_t minus_mask = 0;
        bool ok = true;
        for (Label j = 0; ok && j < topo.size(); ++j) {
            if (faults.isBlocked(topo.straightLink(last, j))) {
                ok = false;
                break;
            }
            const bool plus_ok =
                !faults.isBlocked(topo.plusLink(last, j));
            const bool minus_ok =
                !faults.isBlocked(topo.minusLink(last, j));
            if (!plus_ok && !minus_ok)
                ok = false;
            else if (!plus_ok)
                minus_mask |= std::uint64_t{1} << j;
        }
        if (ok)
            return CubeSubgraph(topo, x, minus_mask);
    }
    return std::nullopt;
}

} // namespace iadm::subgraph
