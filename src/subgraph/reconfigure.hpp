/**
 * @file
 * Fault reconfiguration via cube subgraphs (Section 6).
 *
 * When the ICube network embedded in the IADM network suffers
 * nonstraight link faults, the system can relabel every switch j to
 * j + x and reconfigure to a cube subgraph that avoids the faulty
 * links, preserving the ability to pass all cube-admissible
 * permutations.  Straight-link faults cannot be repaired this way:
 * every cube subgraph contains all straight links.
 */

#ifndef IADM_SUBGRAPH_RECONFIGURE_HPP
#define IADM_SUBGRAPH_RECONFIGURE_HPP

#include <optional>
#include <vector>

#include "fault/fault_set.hpp"
#include "subgraph/cube_subgraph.hpp"

namespace iadm::subgraph {

/**
 * Find a cube subgraph of @p topo none of whose links are blocked in
 * @p faults, searching the constructive family (all offsets x, with
 * free last-stage sign choices).  Returns nullopt when no family
 * member avoids the faults — in particular whenever any straight
 * link is faulty.
 */
std::optional<CubeSubgraph> reconfigureAroundFaults(
    const topo::IadmTopology &topo, const fault::FaultSet &faults);

/** All offsets x whose prefix stages (0..n-2) avoid the faults. */
std::vector<Label> viableOffsets(const topo::IadmTopology &topo,
                                 const fault::FaultSet &faults);

} // namespace iadm::subgraph

#endif // IADM_SUBGRAPH_RECONFIGURE_HPP
