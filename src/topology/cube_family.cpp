#include "topology/cube_family.hpp"

#include "common/logging.hpp"

namespace iadm::topo {

std::string
GeneralizedCubeTopology::name() const
{
    return "GeneralizedCube(N=" + std::to_string(size()) + ")";
}

unsigned
GeneralizedCubeTopology::bitOfStage(unsigned stage) const
{
    return stages() - 1 - stage;
}

std::vector<Link>
GeneralizedCubeTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    const auto ex = static_cast<Label>(flipBit(j, bitOfStage(stage)));
    return {{stage, j, j, LinkKind::Straight},
            {stage, j, ex, LinkKind::Exchange}};
}

Label
GeneralizedCubeTopology::nextHop(unsigned stage, Label j,
                                 Label dest) const
{
    const unsigned b = bitOfStage(stage);
    return static_cast<Label>(withBit(j, b, bit(dest, b)));
}

std::string
OmegaTopology::name() const
{
    return "Omega(N=" + std::to_string(size()) + ")";
}

Label
OmegaTopology::shuffle(Label j) const
{
    const unsigned n = stages();
    return static_cast<Label>(((j << 1) | bit(j, n - 1)) &
                              lowMask(n));
}

std::vector<Link>
OmegaTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    const Label s = shuffle(j);
    const auto ex = static_cast<Label>(flipBit(s, 0));
    // The "straight" link here is the shuffle itself (box passes the
    // message straight through); Exchange flips the low bit.
    return {{stage, j, s, LinkKind::Straight},
            {stage, j, ex, LinkKind::Exchange}};
}

Label
OmegaTopology::nextHop(unsigned stage, Label j, Label dest) const
{
    // After stage i, bit 0 of the position must match bit n-1-i of
    // the destination (classic Omega destination-tag rule).
    const unsigned b = stages() - 1 - stage;
    return static_cast<Label>(withBit(shuffle(j), 0, bit(dest, b)));
}

std::string
BaselineTopology::name() const
{
    return "Baseline(N=" + std::to_string(size()) + ")";
}

Label
BaselineTopology::blockUnshuffle(unsigned stage, Label j) const
{
    // Stage i works within blocks of size W = 2^{n-i}; the box of
    // input j feeds the same local position of both W/2 sub-blocks.
    // This is the local label shared by the box's two outputs.
    const unsigned width = stages() - stage;
    const Label half_mask = static_cast<Label>(lowMask(width - 1));
    const Label block_base = j & ~static_cast<Label>(lowMask(width));
    return block_base | (j & half_mask);
}

std::vector<Link>
BaselineTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    // Recursive construction of the baseline network: the box sends
    // its top output to the upper sub-block and its bottom output
    // to the lower sub-block, preserving the local position.
    const unsigned width = stages() - stage;
    const Label top = blockUnshuffle(stage, j);
    const Label bottom =
        top | (Label{1} << (width - 1));
    return {{stage, j, top, LinkKind::Straight},
            {stage, j, bottom, LinkKind::Exchange}};
}

std::string
FlipTopology::name() const
{
    return "Flip(N=" + std::to_string(size()) + ")";
}

std::vector<Link>
FlipTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    // Mirror of the Generalized Cube: ascending bit order.
    const auto ex = static_cast<Label>(flipBit(j, stage));
    return {{stage, j, j, LinkKind::Straight},
            {stage, j, ex, LinkKind::Exchange}};
}

} // namespace iadm::topo
