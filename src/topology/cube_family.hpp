/**
 * @file
 * Other members of the multistage cube family: Generalized Cube,
 * Omega, Baseline and STARAN flip networks.
 *
 * The paper's results are "relevant to any of them" because all
 * cube-type networks are topologically equivalent ([16][17][20][21]
 * in the paper).  These topologies let tests demonstrate that
 * equivalence (identical permutation admissibility up to port
 * renaming) and give permutation experiments extra comparison
 * points.
 *
 * All are modeled as N switch-nodes per column with two output links
 * per switch (Straight and Exchange); the Exchange link of these
 * networks does not in general coincide with an IADM link, so it
 * keeps the generic Exchange kind.
 */

#ifndef IADM_TOPOLOGY_CUBE_FAMILY_HPP
#define IADM_TOPOLOGY_CUBE_FAMILY_HPP

#include "topology/topology.hpp"

namespace iadm::topo {

/**
 * Generalized Cube network: stage i of links applies cube function
 * cube_{n-1-i} (descending bit order, the reverse of the ICube).
 */
class GeneralizedCubeTopology : public MultistageTopology
{
  public:
    explicit GeneralizedCubeTopology(Label n_size)
        : MultistageTopology(n_size) {}

    std::string name() const override;
    std::vector<Link> outLinks(unsigned stage, Label j) const override;

    /** The bit manipulated by this stage: n-1-stage. */
    unsigned bitOfStage(unsigned stage) const;

    /** Destination-tag next hop toward @p dest. */
    Label nextHop(unsigned stage, Label j, Label dest) const;
};

/**
 * Omega network: each stage is a perfect shuffle followed by an
 * exchange-box choice on the low bit.  Modeled on switch-nodes: the
 * out-links of j at any stage go to shuffle(j) and shuffle(j) ^ 1.
 */
class OmegaTopology : public MultistageTopology
{
  public:
    explicit OmegaTopology(Label n_size) : MultistageTopology(n_size) {}

    std::string name() const override;
    std::vector<Link> outLinks(unsigned stage, Label j) const override;

    /** Perfect shuffle: left-rotate the n-bit label by one. */
    Label shuffle(Label j) const;

    /** Destination-tag next hop toward @p dest. */
    Label nextHop(unsigned stage, Label j, Label dest) const;
};

/**
 * Baseline network: stage i splits the label space into 2^i blocks
 * and applies an inverse shuffle within each block.
 */
class BaselineTopology : public MultistageTopology
{
  public:
    explicit BaselineTopology(Label n_size)
        : MultistageTopology(n_size) {}

    std::string name() const override;
    std::vector<Link> outLinks(unsigned stage, Label j) const override;

    /** The block-local inverse shuffle applied after stage i. */
    Label blockUnshuffle(unsigned stage, Label j) const;
};

/**
 * STARAN flip network: a Generalized Cube traversed with flip
 * control; topologically the links coincide with the reversed
 * exchange pattern.  Modeled as cube_{i} applied in ascending order
 * on the *input* side, which makes it the mirror of the Generalized
 * Cube here.
 */
class FlipTopology : public MultistageTopology
{
  public:
    explicit FlipTopology(Label n_size) : MultistageTopology(n_size) {}

    std::string name() const override;
    std::vector<Link> outLinks(unsigned stage, Label j) const override;
};

} // namespace iadm::topo

#endif // IADM_TOPOLOGY_CUBE_FAMILY_HPP
