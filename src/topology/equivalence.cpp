#include "topology/equivalence.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace iadm::topo {

namespace {

constexpr Label kUnset = ~Label{0};

/** The two out-neighbors of (stage, v); panics unless out-degree 2. */
std::pair<Label, Label>
outPair(const MultistageTopology &t, unsigned stage, Label v)
{
    const auto links = t.outLinks(stage, v);
    IADM_ASSERT(links.size() == 2,
                "layered isomorphism search needs out-degree 2");
    return {links[0].to, links[1].to};
}

/**
 * Full search over columns: for the transition out of @p stage,
 * enumerate every consistent column-(stage+1) assignment (each
 * constraint offers at most two pairings) and recurse into the next
 * column inside the enumeration, so cross-column backtracking is
 * complete.
 */
bool
dfsColumns(const MultistageTopology &a, const MultistageTopology &b,
           unsigned stage, const std::vector<Label> &pi,
           ColumnMaps &maps);

bool
assignAndDescend(const MultistageTopology &a,
                 const MultistageTopology &b, unsigned stage,
                 const std::vector<Label> &pi, Label v,
                 std::vector<Label> &next, std::vector<bool> &used,
                 ColumnMaps &maps)
{
    const Label n_size = a.size();
    if (v == n_size)
        return dfsColumns(a, b, stage + 1, next, maps);
    const auto [a1, a2] = outPair(a, stage, v);
    const auto [b1, b2] = outPair(b, stage, pi[v]);

    const auto try_option = [&](Label x1, Label x2) {
        struct Undo
        {
            Label node = kUnset;
            Label value = kUnset;
        } undo1, undo2;
        const auto set = [&](Label node, Label value, Undo &u) {
            if (next[node] != kUnset)
                return next[node] == value;
            if (used[value])
                return false;
            next[node] = value;
            used[value] = true;
            u = {node, value};
            return true;
        };
        const auto rollback = [&](const Undo &u) {
            if (u.node != kUnset) {
                next[u.node] = kUnset;
                used[u.value] = false;
            }
        };
        if (!set(a1, x1, undo1))
            return false;
        if (a1 != a2 && !set(a2, x2, undo2)) {
            rollback(undo1);
            return false;
        }
        if (assignAndDescend(a, b, stage, pi, v + 1, next, used,
                             maps))
            return true;
        rollback(undo2);
        rollback(undo1);
        return false;
    };

    if (a1 == a2) {
        // Degenerate (parallel) out-pair: the image pair must also
        // coincide.
        if (b1 != b2)
            return false;
        return try_option(b1, b1);
    }
    if (try_option(b1, b2))
        return true;
    if (b1 != b2)
        return try_option(b2, b1);
    return false;
}

bool
dfsColumns(const MultistageTopology &a, const MultistageTopology &b,
           unsigned stage, const std::vector<Label> &pi,
           ColumnMaps &maps)
{
    maps[stage] = pi;
    if (stage == a.stages())
        return true;
    const Label n_size = a.size();
    std::vector<Label> next(n_size, kUnset);
    std::vector<bool> used(n_size, false);
    return assignAndDescend(a, b, stage, pi, 0, next, used, maps);
}

} // namespace

bool
verifyColumnIsomorphism(const MultistageTopology &a,
                        const MultistageTopology &b,
                        const ColumnMaps &maps)
{
    if (a.size() != b.size() || a.stages() != b.stages())
        return false;
    const Label n_size = a.size();
    const unsigned n = a.stages();
    if (maps.size() != n + 1)
        return false;
    for (const auto &m : maps) {
        if (m.size() != n_size)
            return false;
        std::vector<bool> seen(n_size, false);
        for (Label v : m) {
            if (v >= n_size || seen[v])
                return false;
            seen[v] = true;
        }
    }
    for (unsigned i = 0; i < n; ++i) {
        for (Label v = 0; v < n_size; ++v) {
            for (const Link &l : a.outLinks(i, v)) {
                const Label from = maps[i][v];
                const Label to = maps[i + 1][l.to];
                bool found = false;
                for (const Link &m : b.outLinks(i, from))
                    found |= (m.to == to);
                if (!found)
                    return false;
            }
        }
    }
    return true;
}

ColumnMaps
bitReversalIsomorphism(Label n_size)
{
    const unsigned n = log2Floor(n_size);
    std::vector<Label> rev(n_size);
    for (Label v = 0; v < n_size; ++v)
        rev[v] = static_cast<Label>(reverseBits(v, n));
    return ColumnMaps(n + 1, rev);
}

ColumnMaps
identityIsomorphism(Label n_size)
{
    const unsigned n = log2Floor(n_size);
    std::vector<Label> id(n_size);
    std::iota(id.begin(), id.end(), Label{0});
    return ColumnMaps(n + 1, id);
}

std::optional<ColumnMaps>
findLayeredIsomorphism(const MultistageTopology &a,
                       const MultistageTopology &b)
{
    if (a.size() != b.size() || a.stages() != b.stages())
        return std::nullopt;
    IADM_ASSERT(a.size() <= 8,
                "layered isomorphism search enumerates pi_0 "
                "permutations; practical for N <= 8");
    const Label n_size = a.size();
    std::vector<Label> pi(n_size);
    std::iota(pi.begin(), pi.end(), Label{0});
    ColumnMaps maps(a.stages() + 1);
    do {
        if (dfsColumns(a, b, 0, pi, maps)) {
            IADM_ASSERT(verifyColumnIsomorphism(a, b, maps),
                        "search returned a non-isomorphism");
            return maps;
        }
    } while (std::next_permutation(pi.begin(), pi.end()));
    return std::nullopt;
}

} // namespace iadm::topo
