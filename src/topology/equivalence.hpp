/**
 * @file
 * Topological equivalence of cube-type networks ([16][17][20][21]
 * in the paper).
 *
 * All multistage cube-type networks — ICube, Generalized Cube,
 * Omega, Baseline, STARAN flip — are isomorphic as layered graphs
 * under per-column relabelings.  This module provides:
 *
 *  - verifyColumnIsomorphism(): check an explicit family of column
 *    bijections link-for-link;
 *  - bitReversalIsomorphism(): the closed-form ICube <-> Generalized
 *    Cube map (reverse every label in every column);
 *  - findLayeredIsomorphism(): a backtracking search that decides
 *    isomorphism of any two out-degree-2 layered networks and
 *    returns a witness (practical for N <= 16).
 */

#ifndef IADM_TOPOLOGY_EQUIVALENCE_HPP
#define IADM_TOPOLOGY_EQUIVALENCE_HPP

#include <optional>
#include <vector>

#include "topology/topology.hpp"

namespace iadm::topo {

/** One bijection per column, columns 0..n. */
using ColumnMaps = std::vector<std::vector<Label>>;

/**
 * True iff @p maps is a layered-graph isomorphism from @p a to
 * @p b: for every link (i, v) -> w of a, (i, maps[i][v]) ->
 * maps[i+1][w] is a link of b (and the maps are bijections).
 */
bool verifyColumnIsomorphism(const MultistageTopology &a,
                             const MultistageTopology &b,
                             const ColumnMaps &maps);

/** Reverse-all-bits maps: an ICube <-> Generalized Cube witness. */
ColumnMaps bitReversalIsomorphism(Label n_size);

/** Identity maps (for same-graph sanity checks). */
ColumnMaps identityIsomorphism(Label n_size);

/**
 * Search for a layered isomorphism between two out-degree-2
 * networks of the same size.  Exponential worst case (enumerates
 * column-0 bijections with forward pruning); fine for N <= 8.
 */
std::optional<ColumnMaps> findLayeredIsomorphism(
    const MultistageTopology &a, const MultistageTopology &b);

} // namespace iadm::topo

#endif // IADM_TOPOLOGY_EQUIVALENCE_HPP
