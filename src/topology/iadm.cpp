#include "topology/iadm.hpp"

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::topo {

std::string
IadmTopology::name() const
{
    return "IADM(N=" + std::to_string(size()) + ")";
}

std::vector<Link>
IadmTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    return {straightLink(stage, j), plusLink(stage, j),
            minusLink(stage, j)};
}

Link
IadmTopology::straightLink(unsigned stage, Label j) const
{
    return {stage, j, j, LinkKind::Straight};
}

Link
IadmTopology::plusLink(unsigned stage, Label j) const
{
    return {stage, j, modAdd(j, std::int64_t{1} << stage, size()),
            LinkKind::Plus};
}

Link
IadmTopology::minusLink(unsigned stage, Label j) const
{
    return {stage, j, modAdd(j, -(std::int64_t{1} << stage), size()),
            LinkKind::Minus};
}

Link
IadmTopology::link(unsigned stage, Label j, LinkKind kind) const
{
    switch (kind) {
      case LinkKind::Straight: return straightLink(stage, j);
      case LinkKind::Plus: return plusLink(stage, j);
      case LinkKind::Minus: return minusLink(stage, j);
      default: IADM_PANIC("no such IADM link kind");
    }
}

Link
IadmTopology::oppositeNonstraight(const Link &l) const
{
    IADM_ASSERT(l.kind == LinkKind::Plus || l.kind == LinkKind::Minus,
                "oppositeNonstraight of a straight link");
    return link(l.stage, l.from,
                l.kind == LinkKind::Plus ? LinkKind::Minus
                                         : LinkKind::Plus);
}

std::string
AdmTopology::name() const
{
    return "ADM(N=" + std::to_string(size()) + ")";
}

Label
AdmTopology::stride(unsigned stage) const
{
    return Label{1} << (stages() - 1 - stage);
}

std::vector<Link>
AdmTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    const auto d = static_cast<std::int64_t>(stride(stage));
    return {
        {stage, j, j, LinkKind::Straight},
        {stage, j, modAdd(j, d, size()), LinkKind::Plus},
        {stage, j, modAdd(j, -d, size()), LinkKind::Minus},
    };
}

std::string
GammaTopology::name() const
{
    return "Gamma(N=" + std::to_string(size()) + ")";
}

} // namespace iadm::topo
