/**
 * @file
 * The Inverse Augmented Data Manipulator (IADM) network and its
 * relatives (ADM, Gamma).
 *
 * IADM: n = log2 N stages labeled 0..n-1, 3N links and N switches per
 * stage, plus the output column S_n.  Switch j of stage i has output
 * links to (j - 2^i) mod N, j and (j + 2^i) mod N of stage i+1
 * (paper, Section 1 and Figure 2).
 */

#ifndef IADM_TOPOLOGY_IADM_HPP
#define IADM_TOPOLOGY_IADM_HPP

#include "topology/topology.hpp"

namespace iadm::topo {

/** The IADM network (Rau/Fortes/Siegel, Figure 2). */
class IadmTopology : public MultistageTopology
{
  public:
    explicit IadmTopology(Label n_size) : MultistageTopology(n_size) {}

    std::string name() const override;

    /**
     * Straight, Plus and Minus links of switch j at stage i.  At the
     * last stage Plus and Minus reach the same switch but remain two
     * distinct physical links.
     */
    std::vector<Link> outLinks(unsigned stage, Label j) const override;

    /** The straight link (j in S_i, j in S_{i+1}). */
    Link straightLink(unsigned stage, Label j) const;

    /** The +2^i link of switch j at stage i. */
    Link plusLink(unsigned stage, Label j) const;

    /** The -2^i link of switch j at stage i. */
    Link minusLink(unsigned stage, Label j) const;

    /** Link of a given kind from switch j at stage i. */
    Link link(unsigned stage, Label j, LinkKind kind) const;

    /**
     * The nonstraight link of the opposite sign, i.e. the "spare"
     * link of Theorem 3.2.  @pre kind is Plus or Minus.
     */
    Link oppositeNonstraight(const Link &l) const;
};

/**
 * The Augmented Data Manipulator (ADM) network: identical to the
 * IADM with input and output sides interchanged, i.e. stage i moves
 * by +-2^{n-1-i} (paper, Section 1).
 */
class AdmTopology : public MultistageTopology
{
  public:
    explicit AdmTopology(Label n_size) : MultistageTopology(n_size) {}

    std::string name() const override;
    std::vector<Link> outLinks(unsigned stage, Label j) const override;

    /** The power of two this stage moves by: 2^{n-1-stage}. */
    Label stride(unsigned stage) const;
};

/**
 * The Gamma network: topologically equivalent to the IADM network;
 * it differs only in switch implementation (3x3 crossbars able to
 * connect all three inputs at once, versus the IADM's
 * one-input-to-many switches).  The graph is therefore the IADM
 * graph; the class exists so simulations can select Gamma switch
 * semantics by type.
 */
class GammaTopology : public IadmTopology
{
  public:
    explicit GammaTopology(Label n_size) : IadmTopology(n_size) {}
    std::string name() const override;
};

} // namespace iadm::topo

#endif // IADM_TOPOLOGY_IADM_HPP
