#include "topology/icube.hpp"

#include "common/logging.hpp"
#include "common/modmath.hpp"

namespace iadm::topo {

std::string
ICubeTopology::name() const
{
    return "ICube(N=" + std::to_string(size()) + ")";
}

Link
ICubeTopology::cubeLink(unsigned stage, Label j) const
{
    const bool odd = bit(j, stage) == 1;
    const auto d = std::int64_t{1} << stage;
    if (odd)
        return {stage, j, modAdd(j, -d, size()), LinkKind::Minus};
    return {stage, j, modAdd(j, d, size()), LinkKind::Plus};
}

std::vector<Link>
ICubeTopology::outLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage < stages() && j < size(),
                "bad switch S", stage, ":", j);
    return {{stage, j, j, LinkKind::Straight}, cubeLink(stage, j)};
}

Label
ICubeTopology::nextHop(unsigned stage, Label j, Label dest) const
{
    return static_cast<Label>(withBit(j, stage, bit(dest, stage)));
}

} // namespace iadm::topo
