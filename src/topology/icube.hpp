/**
 * @file
 * The Indirect Binary n-Cube (ICube) network, modeled per the
 * paper's second graph model (Figure 3) so that it is literally a
 * subgraph of the IADM network of the same size.
 *
 * Switch j at stage i connects to C_i(j, t) for t in {0, 1}: the
 * straight link (t = j_i) and the link that sets bit i to the
 * complement of j_i.  The latter is the +2^i link when j is an
 * even_i switch and the -2^i link when j is an odd_i switch, and is
 * exposed with that IADM kind.
 */

#ifndef IADM_TOPOLOGY_ICUBE_HPP
#define IADM_TOPOLOGY_ICUBE_HPP

#include "topology/topology.hpp"

namespace iadm::topo {

/** The ICube network as the canonical cube subgraph of the IADM. */
class ICubeTopology : public MultistageTopology
{
  public:
    explicit ICubeTopology(Label n_size) : MultistageTopology(n_size) {}

    std::string name() const override;

    /** Straight link plus the bit-i-complementing nonstraight link. */
    std::vector<Link> outLinks(unsigned stage, Label j) const override;

    /** The cube (exchange) link: sets bit i of j to its complement. */
    Link cubeLink(unsigned stage, Label j) const;

    /**
     * Destination-tag next hop: switch j at stage i routes a message
     * for destination d to C_i(j, d_i) (Section 2).
     */
    Label nextHop(unsigned stage, Label j, Label dest) const;
};

} // namespace iadm::topo

#endif // IADM_TOPOLOGY_ICUBE_HPP
