#include "topology/render.hpp"

#include <sstream>

#include "common/bits.hpp"

namespace iadm::topo {

std::string
asciiDiagram(const MultistageTopology &topo)
{
    std::ostringstream os;
    os << topo.name() << "  (" << topo.stages()
       << " link stages, " << topo.linksPerStage()
       << " links/stage)\n";
    for (Label j = 0; j < topo.size(); ++j) {
        os << "  " << j << " ";
        for (unsigned i = 0; i < topo.stages(); ++i) {
            os << "|";
            for (const Link &l : topo.outLinks(i, j)) {
                switch (l.kind) {
                  case LinkKind::Straight: os << "="; break;
                  case LinkKind::Plus: os << "+"; break;
                  case LinkKind::Minus: os << "-"; break;
                  case LinkKind::Exchange: os << "x"; break;
                }
                os << l.to << " ";
            }
        }
        os << "| " << j << "\n";
    }
    return os.str();
}

std::string
linkTable(const MultistageTopology &topo)
{
    std::ostringstream os;
    for (const Link &l : topo.allLinks())
        os << l.str() << "\n";
    return os.str();
}

std::string
parityTable(const MultistageTopology &topo)
{
    std::ostringstream os;
    for (unsigned i = 0; i < topo.stages(); ++i) {
        os << "stage " << i << ": even_" << i << " = {";
        bool first = true;
        for (Label j = 0; j < topo.size(); ++j) {
            if (bit(j, i) == 0) {
                os << (first ? "" : ",") << j;
                first = false;
            }
        }
        os << "}, odd_" << i << " = {";
        first = true;
        for (Label j = 0; j < topo.size(); ++j) {
            if (bit(j, i) == 1) {
                os << (first ? "" : ",") << j;
                first = false;
            }
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace iadm::topo
