/**
 * @file
 * Text rendering of multistage networks for figure reproduction.
 *
 * The paper's Figures 1-3 and 8 are network drawings; asciiDiagram()
 * reproduces their content as column-per-stage text, and
 * linkTable() prints the exact link lists so the figures can be
 * verified mechanically.
 */

#ifndef IADM_TOPOLOGY_RENDER_HPP
#define IADM_TOPOLOGY_RENDER_HPP

#include <string>

#include "topology/topology.hpp"

namespace iadm::topo {

/**
 * Column-per-stage ASCII diagram: one row per switch label, with the
 * out-links of each stage listed as +/-/= glyph columns.
 */
std::string asciiDiagram(const MultistageTopology &topo);

/** One line per link: "S0: 1 -(+1)-> 2". */
std::string linkTable(const MultistageTopology &topo);

/**
 * Per-stage even/odd switch classification (Figure 2 annotates the
 * even_i/odd_i switches of the IADM network).
 */
std::string parityTable(const MultistageTopology &topo);

} // namespace iadm::topo

#endif // IADM_TOPOLOGY_RENDER_HPP
