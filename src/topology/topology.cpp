#include "topology/topology.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hpp"

namespace iadm::topo {

const char *
linkKindName(LinkKind k)
{
    switch (k) {
      case LinkKind::Straight: return "straight";
      case LinkKind::Plus: return "plus";
      case LinkKind::Minus: return "minus";
      case LinkKind::Exchange: return "exchange";
    }
    return "?";
}

std::string
Link::str() const
{
    std::ostringstream os;
    os << "S" << stage << ": " << from;
    switch (kind) {
      case LinkKind::Straight: os << " -(0)-> "; break;
      case LinkKind::Plus: os << " -(+" << (1u << stage) << ")-> "; break;
      case LinkKind::Minus: os << " -(-" << (1u << stage) << ")-> "; break;
      case LinkKind::Exchange: os << " -(x)-> "; break;
    }
    os << to;
    return os.str();
}

MultistageTopology::MultistageTopology(Label n_size)
    : netSize(n_size), numStages(log2Floor(n_size))
{
    if (!isPowerOfTwo(n_size) || n_size < 2)
        IADM_FATAL("network size must be a power of two >= 2, got ",
                   n_size);
}

std::vector<Link>
MultistageTopology::inLinks(unsigned stage, Label j) const
{
    IADM_ASSERT(stage >= 1 && stage <= numStages, "bad stage ", stage);
    std::vector<Link> result;
    for (Label from = 0; from < netSize; ++from) {
        for (const Link &l : outLinks(stage - 1, from)) {
            if (l.to == j)
                result.push_back(l);
        }
    }
    return result;
}

std::vector<Link>
MultistageTopology::stageLinks(unsigned stage) const
{
    IADM_ASSERT(stage < numStages, "bad stage ", stage);
    std::vector<Link> result;
    for (Label j = 0; j < netSize; ++j) {
        auto out = outLinks(stage, j);
        result.insert(result.end(), out.begin(), out.end());
    }
    std::sort(result.begin(), result.end());
    return result;
}

std::vector<Link>
MultistageTopology::allLinks() const
{
    std::vector<Link> result;
    for (unsigned i = 0; i < numStages; ++i) {
        auto sl = stageLinks(i);
        result.insert(result.end(), sl.begin(), sl.end());
    }
    return result;
}

std::size_t
MultistageTopology::linksPerStage() const
{
    return stageLinks(0).size();
}

void
MultistageTopology::validate() const
{
    const std::size_t per_stage = linksPerStage();
    for (unsigned i = 0; i < numStages; ++i) {
        auto links = stageLinks(i);
        IADM_ASSERT(links.size() == per_stage,
                    "nonuniform link count at stage ", i);
        for (const Link &l : links) {
            IADM_ASSERT(l.stage == i, "link stage mismatch: ", l.str());
            IADM_ASSERT(l.from < netSize && l.to < netSize,
                        "link endpoint out of range: ", l.str());
        }
        // No duplicate physical links.
        for (std::size_t k = 1; k < links.size(); ++k)
            IADM_ASSERT(!(links[k - 1] == links[k]),
                        "duplicate link: ", links[k].str());
    }
}

std::string
MultistageTopology::toDot() const
{
    std::ostringstream os;
    os << "digraph \"" << name() << "\" {\n  rankdir=LR;\n";
    for (unsigned i = 0; i <= numStages; ++i) {
        os << "  { rank=same;";
        for (Label j = 0; j < netSize; ++j)
            os << " \"s" << i << "_" << j << "\"";
        os << " }\n";
    }
    for (unsigned i = 0; i <= numStages; ++i) {
        for (Label j = 0; j < netSize; ++j) {
            os << "  \"s" << i << "_" << j << "\" [label=\"" << j
               << "\"];\n";
        }
    }
    for (const Link &l : allLinks()) {
        os << "  \"s" << l.stage << "_" << l.from << "\" -> \"s"
           << (l.stage + 1) << "_" << l.to << "\" [label=\""
           << linkKindName(l.kind)[0] << "\"];\n";
    }
    os << "}\n";
    return os.str();
}

void
forEachSwitch(const MultistageTopology &topo,
              const std::function<void(unsigned, Label)> &fn)
{
    for (unsigned i = 0; i < topo.stages(); ++i)
        for (Label j = 0; j < topo.size(); ++j)
            fn(i, j);
}

} // namespace iadm::topo
