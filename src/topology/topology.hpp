/**
 * @file
 * Graph framework for multistage interconnection networks.
 *
 * Networks are modeled per Section 2 of the paper: a column of N
 * switches per stage, stages 0..n-1 of links, plus an output column
 * S_n.  A link lives "at stage i" and joins a switch of S_i to a
 * switch of S_{i+1}.  Switches are nodes; links are edges (the
 * paper's first graph model, which it uses for the IADM network and,
 * via its second model, for the ICube network).
 */

#ifndef IADM_TOPOLOGY_TOPOLOGY_HPP
#define IADM_TOPOLOGY_TOPOLOGY_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bits.hpp"

namespace iadm::topo {

/** Identifies a switch: column (stage) 0..n and row (label) 0..N-1. */
struct SwitchId
{
    unsigned stage;
    Label index;

    friend bool
    operator==(const SwitchId &a, const SwitchId &b)
    {
        return a.stage == b.stage && a.index == b.index;
    }
    friend auto operator<=>(const SwitchId &, const SwitchId &) = default;
};

/**
 * The kind of a link leaving a switch at stage i.
 *
 * In the IADM network, Straight joins j to j, Plus is the +2^i link
 * and Minus is the -2^i link.  At stage n-1, Plus and Minus reach the
 * same switch (+2^{n-1} == -2^{n-1} mod N) but remain physically
 * distinct links: the paper counts 3N links at every stage and
 * Theorem 6.1 relies on the choice between them.
 *
 * Exchange is used by 2-output cube-type networks whose nonstraight
 * link complements bit i (possibly with carry-free semantics); for
 * the ICube embedded in the IADM, the exchange link *is* the Plus
 * link of an even_i switch or the Minus link of an odd_i switch, and
 * we expose it as such so the subgraph relation is literal.
 */
enum class LinkKind : std::uint8_t
{
    Straight = 0,
    Plus = 1,
    Minus = 2,
    Exchange = 3,
};

/** Short human-readable name of a link kind. */
const char *linkKindName(LinkKind k);

/** A directed link from stage @p stage to stage+1. */
struct Link
{
    unsigned stage;   //!< stage of the source switch
    Label from;       //!< source switch label
    Label to;         //!< destination switch label (stage+1)
    LinkKind kind;    //!< physical kind of the link

    /**
     * Encode to a unique 64-bit key.  Identity of a link is
     * (stage, from, kind): the paper treats the two +-2^{n-1} links
     * as distinct even though their endpoints coincide.
     */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(stage) << 40) |
               (static_cast<std::uint64_t>(from) << 8) |
               static_cast<std::uint64_t>(kind);
    }

    friend bool
    operator==(const Link &a, const Link &b)
    {
        return a.key() == b.key();
    }
    friend bool
    operator<(const Link &a, const Link &b)
    {
        return a.key() < b.key();
    }

    /** "S2: 3 -(+4)-> 7" style rendering. */
    std::string str() const;
};

/**
 * Abstract multistage network of size N = 2^n.
 *
 * Concrete topologies implement outLinks(); everything else (input
 * links, full link lists, validation, DOT export) derives from it.
 */
class MultistageTopology
{
  public:
    /** @param n_size network size N; must be a power of two >= 2. */
    explicit MultistageTopology(Label n_size);
    virtual ~MultistageTopology() = default;

    /** Network size N. */
    Label size() const { return netSize; }

    /** Number of link stages n = log2 N. */
    unsigned stages() const { return numStages; }

    /** Human-readable topology name. */
    virtual std::string name() const = 0;

    /**
     * Output links of switch @p j at stage @p stage.
     * @pre stage < stages(), j < size().
     */
    virtual std::vector<Link> outLinks(unsigned stage, Label j) const = 0;

    /** Input links of switch @p j of stage @p stage (1 <= stage <= n). */
    std::vector<Link> inLinks(unsigned stage, Label j) const;

    /** All links of one stage, ordered by (from, kind). */
    std::vector<Link> stageLinks(unsigned stage) const;

    /** All links of the network. */
    std::vector<Link> allLinks() const;

    /** Number of links per stage (e.g. 3N for the IADM network). */
    std::size_t linksPerStage() const;

    /**
     * Structural self-check: every link lands inside the next
     * column, per-stage link counts are uniform, and in/out degrees
     * are consistent.  Panics on violation (a topology bug).
     */
    void validate() const;

    /** Graphviz DOT rendering of the whole network. */
    std::string toDot() const;

  private:
    Label netSize;
    unsigned numStages;
};

/** Iterate over every (stage, switch) pair of the link stages. */
void forEachSwitch(const MultistageTopology &topo,
                   const std::function<void(unsigned, Label)> &fn);

} // namespace iadm::topo

#endif // IADM_TOPOLOGY_TOPOLOGY_HPP
