/**
 * @file
 * ADM-network routing via the reversed-IADM reduction: structural
 * validity, completeness against a generic BFS oracle, and the
 * link-twin translation.
 */

#include <gtest/gtest.h>

#include "baselines/adm_routing.hpp"
#include "core/oracle.hpp"
#include "fault/injection.hpp"
#include "topology/cube_family.hpp"

namespace iadm {
namespace {

using baselines::admRoute;
using baselines::reversedTwin;
using topo::AdmTopology;

/** Check that the returned switches/links are real ADM links. */
void
validateAdmPath(const AdmTopology &adm,
                const baselines::AdmRouteResult &res, Label s,
                Label d)
{
    ASSERT_EQ(res.switches.size(), adm.stages() + 1);
    EXPECT_EQ(res.switches.front(), s);
    EXPECT_EQ(res.switches.back(), d);
    ASSERT_EQ(res.links.size(), adm.stages());
    for (unsigned j = 0; j < adm.stages(); ++j) {
        const topo::Link &l = res.links[j];
        EXPECT_EQ(l.stage, j);
        EXPECT_EQ(l.from, res.switches[j]);
        EXPECT_EQ(l.to, res.switches[j + 1]);
        bool real = false;
        for (const topo::Link &m : adm.outLinks(j, l.from))
            real |= (m == l);
        EXPECT_TRUE(real) << "not an ADM link: " << l.str();
    }
}

TEST(AdmRouting, ReversedTwinRoundTrip)
{
    AdmTopology adm(16);
    for (unsigned i = 0; i < adm.stages(); ++i) {
        for (Label j = 0; j < adm.size(); ++j) {
            for (const topo::Link &l : adm.outLinks(i, j)) {
                const topo::Link twin = reversedTwin(adm, l);
                // Endpoints swap; stages mirror.
                EXPECT_EQ(twin.stage, adm.stages() - 1 - l.stage);
                EXPECT_EQ(twin.from, l.to);
                EXPECT_EQ(twin.to, l.from);
            }
        }
    }
}

TEST(AdmRouting, FaultFreeAllPairs)
{
    AdmTopology adm(16);
    fault::FaultSet none;
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto res = admRoute(adm, none, s, d);
            ASSERT_TRUE(res.ok);
            validateAdmPath(adm, res, s, d);
        }
    }
}

TEST(AdmRouting, MatchesGenericOracleUnderFaults)
{
    // Completeness transfers from REROUTE through the reduction.
    AdmTopology adm(16);
    Rng rng(4242);
    for (int trial = 0; trial < 200; ++trial) {
        const auto fs = fault::randomLinkFaults(
            adm, 1 + rng.uniform(20), rng);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        const bool oracle = core::genericReachable(adm, fs, s, d);
        const auto res = admRoute(adm, fs, s, d);
        ASSERT_EQ(res.ok, oracle) << "s=" << s << " d=" << d;
        if (res.ok) {
            validateAdmPath(adm, res, s, d);
            for (const topo::Link &l : res.links)
                EXPECT_FALSE(fs.isBlocked(l));
        }
    }
}

TEST(AdmRouting, UsesRerouteMachinery)
{
    AdmTopology adm(16);
    fault::FaultSet fs;
    // Block the ADM link that the canonical solution would use so
    // a reroute is forced: the straight (0,0) at ADM stage 2
    // corresponds to IADM stage 1.
    fs.blockLink(topo::Link{2, 0, 0, topo::LinkKind::Straight});
    const auto res = admRoute(adm, fs, 1, 0);
    if (res.ok)
        validateAdmPath(adm, res, 1, 0);
    // Either way the inner result must agree with the oracle.
    EXPECT_EQ(res.ok, core::genericReachable(adm, fs, 1, 0));
}

TEST(GenericOracle, AgreesWithIadmOracle)
{
    topo::IadmTopology iadm(16);
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        const auto fs = fault::randomLinkFaults(
            iadm, rng.uniform(25), rng);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        EXPECT_EQ(core::genericReachable(iadm, fs, s, d),
                  core::oracleReachable(iadm, fs, s, d));
    }
}

TEST(GenericOracle, WorksOnCubeFamily)
{
    topo::OmegaTopology omega(16);
    fault::FaultSet none;
    for (Label s = 0; s < 16; ++s)
        for (Label d = 0; d < 16; ++d)
            EXPECT_TRUE(core::genericReachable(omega, none, s, d));
    // Omega has a single path per pair: block a link on it.
    fault::FaultSet fs;
    fs.blockLink(omega.outLinks(0, 0)[0]); // 0 -> 0 shuffle link
    EXPECT_FALSE(core::genericReachable(omega, fs, 0, 0));
}

} // namespace
} // namespace iadm
