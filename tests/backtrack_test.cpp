/**
 * @file
 * Algorithm BACKTRACK tests: the Figure 5/6 rerouting shapes, the
 * FAIL conditions (steps 1, 4a, 4b, 5, 9 — Figure 9), and iterated
 * backtracking.
 */

#include <gtest/gtest.h>

#include "core/backtrack.hpp"
#include "core/oracle.hpp"
#include "core/tsdt.hpp"

namespace iadm {
namespace {

using core::backtrack;
using core::BacktrackStats;
using core::Path;
using core::tsdtTrace;
using core::TsdtTag;
using fault::BlockageKind;
using fault::FaultSet;
using topo::IadmTopology;
using topo::LinkKind;

/** The all-C path for (s, d) in an N-network. */
Path
canonicalPath(Label s, Label d, Label n_size)
{
    return tsdtTrace(s, core::initialTag(log2Floor(n_size), d),
                     n_size);
}

TEST(Backtrack, FailsWhenNoPrecedingNonstraightLink)
{
    // Step 1 FAIL: an all-straight prefix cannot be left (Theorem
    // 3.3 "only if").
    const Label n_size = 16;
    IadmTopology topo(n_size);
    FaultSet fs;
    fs.blockLink(topo.straightLink(2, 5));
    // 5 -> 5: all-straight path; blockage at stage 2.
    const Path p = canonicalPath(5, 5, n_size);
    const auto tag = core::initialTag(4, 5);
    EXPECT_FALSE(backtrack(topo, fs, p, 2, BlockageKind::Straight,
                           tag)
                     .has_value());
}

TEST(Backtrack, Figure5StraightBlockage)
{
    // Figure 5 shape: nonstraight at stage i-k, straights to stage
    // i, straight link blocked at stage i; the reroute climbs the
    // sigma side.  Use s=1, d=0, N=16: canonical path
    // 1 ->(-1) 0 -> 0 -> 0 -> 0 (D = 15, k-hat = 0).
    const Label n_size = 16;
    IadmTopology topo(n_size);
    const Path p = canonicalPath(1, 0, n_size);
    ASSERT_EQ(p.kindAt(0), LinkKind::Minus);
    ASSERT_EQ(p.switchAt(1), 0u);
    ASSERT_EQ(p.kindAt(2), LinkKind::Straight);

    FaultSet fs;
    fs.blockLink(topo.straightLink(2, 0));
    const auto tag = core::initialTag(4, 0);
    const auto re =
        backtrack(topo, fs, p, 2, BlockageKind::Straight, tag);
    ASSERT_TRUE(re.has_value());
    const Path q = tsdtTrace(1, *re, n_size);
    EXPECT_EQ(q.destination(), 0u);
    EXPECT_TRUE(q.isBlockageFree(fs));
    // The reroute leaves the original at stage 0 (the nonstraight
    // stage): 1 -> 2 -> 4 -> ... on +2^l links.
    EXPECT_EQ(q.switchAt(1), 2u);
    EXPECT_EQ(q.switchAt(2), 4u);
}

TEST(Backtrack, Figure6DoubleNonstraightBlockage)
{
    // Figure 6 shape: both nonstraight outputs of the stage-i switch
    // are blocked; the reroute uses the straight link of the other
    // pivot at stage i.
    const Label n_size = 16;
    IadmTopology topo(n_size);
    // s=1, d=4: D=3, canonical path 1 ->(-1) 0 ->(+2)... compute:
    // d bits: 0,0,1,0.  Stage 0: 1 odd, t=0 -> -1 -> 0; stage 1:
    // 0 even, t=0 -> straight; stage 2: 0 even, t=1 -> +4; stage 3
    // straight.
    const Path p = canonicalPath(1, 4, n_size);
    ASSERT_EQ(p.switchAt(2), 0u);
    ASSERT_EQ(p.kindAt(2), LinkKind::Plus);

    FaultSet fs;
    fs.blockLink(topo.plusLink(2, 0));
    fs.blockLink(topo.minusLink(2, 0));
    const auto tag = core::initialTag(4, 4);
    const auto re = backtrack(topo, fs, p, 2,
                              BlockageKind::DoubleNonstraight, tag);
    ASSERT_TRUE(re.has_value());
    const Path q = tsdtTrace(1, *re, n_size);
    EXPECT_EQ(q.destination(), 4u);
    EXPECT_TRUE(q.isBlockageFree(fs));
    // Reroute avoids switch 0 at stage 2.
    EXPECT_NE(q.switchAt(2), 0u);
}

TEST(Backtrack, Step4aTriesBothNonstraightLinks)
{
    // If the default reroute link at stage q is blocked, the other
    // nonstraight link of the same switch is used.
    const Label n_size = 16;
    IadmTopology topo(n_size);
    const Path p = canonicalPath(1, 0, n_size);
    const auto tag = core::initialTag(4, 0);

    // Straight blockage at stage 1 (link 0 -> 0): reroute switch at
    // stage 1 is 2; default (linkfound=1, sigma=+1) is +2 -> 4.
    FaultSet fs;
    fs.blockLink(topo.straightLink(1, 0));
    fs.blockLink(topo.plusLink(1, 2)); // kill the default
    const auto re =
        backtrack(topo, fs, p, 1, BlockageKind::Straight, tag);
    ASSERT_TRUE(re.has_value());
    const Path q = tsdtTrace(1, *re, n_size);
    EXPECT_TRUE(q.isBlockageFree(fs));
    EXPECT_EQ(q.switchAt(1), 2u);
    EXPECT_EQ(q.kindAt(1), LinkKind::Minus); // 2 -> 0 fallback
}

TEST(Backtrack, Step4aFailsWhenBothBlocked)
{
    const Label n_size = 16;
    IadmTopology topo(n_size);
    const Path p = canonicalPath(1, 0, n_size);
    const auto tag = core::initialTag(4, 0);
    FaultSet fs;
    fs.blockLink(topo.straightLink(1, 0));
    fs.blockLink(topo.plusLink(1, 2));
    fs.blockLink(topo.minusLink(1, 2));
    EXPECT_FALSE(backtrack(topo, fs, p, 1, BlockageKind::Straight,
                           tag)
                     .has_value());
    EXPECT_FALSE(
        core::oracleReachable(topo, fs, 1, 0));
}

TEST(Backtrack, Step4bFailsWhenStraightAlsoBlocked)
{
    const Label n_size = 16;
    IadmTopology topo(n_size);
    const Path p = canonicalPath(1, 4, n_size);
    const auto tag = core::initialTag(4, 4);
    FaultSet fs;
    fs.blockLink(topo.plusLink(2, 0));
    fs.blockLink(topo.minusLink(2, 0));
    fs.blockLink(topo.straightLink(2, 4)); // the 4b reroute link
    EXPECT_FALSE(backtrack(topo, fs, p, 2,
                           BlockageKind::DoubleNonstraight, tag)
                     .has_value());
    EXPECT_FALSE(core::oracleReachable(topo, fs, 1, 4));
}

TEST(Backtrack, Step5FailsOnClimbBlockage)
{
    // A blockage strictly inside the climb (stages r+1..q-1 of the
    // reroute) disconnects the pair (proof of step 5).
    const Label n_size = 16;
    IadmTopology topo(n_size);
    const Path p = canonicalPath(1, 0, n_size);
    const auto tag = core::initialTag(4, 0);
    FaultSet fs;
    fs.blockLink(topo.straightLink(2, 0));
    fs.blockLink(topo.plusLink(1, 2)); // climb link 2 -> 4
    EXPECT_FALSE(backtrack(topo, fs, p, 2, BlockageKind::Straight,
                           tag)
                     .has_value());
    EXPECT_FALSE(core::oracleReachable(topo, fs, 1, 0));
}

TEST(Backtrack, Step6TriggersIteratedBacktracking)
{
    // Block the stage-r reroute link so backtracking must continue
    // to a lower stage along the original path.
    const Label n_size = 16;
    IadmTopology topo(n_size);
    // s=3, d=0: D = 13 (1011 LSB-first); canonical path:
    // 3 ->(-1) 2 ->(-2) 0 -> 0 ->(+-8) 8?  Compute d=0: all t=0.
    // stage0: 3 odd -1 -> 2; stage1: 2 odd_1 -2 -> 0; stage2: 0
    // straight; stage3: 0 straight.
    const Path p = canonicalPath(3, 0, n_size);
    ASSERT_EQ(p.switchAt(1), 2u);
    ASSERT_EQ(p.switchAt(2), 0u);
    ASSERT_EQ(p.kindAt(2), LinkKind::Straight);

    FaultSet fs;
    fs.blockLink(topo.straightLink(2, 0)); // blockage at q=2
    fs.blockLink(topo.plusLink(1, 2));     // step 6: r=1 side link
    const auto tag = core::initialTag(4, 0);
    BacktrackStats stats;
    const auto re = backtrack(topo, fs, p, 2,
                              BlockageKind::Straight, tag, &stats);
    ASSERT_TRUE(re.has_value());
    EXPECT_GE(stats.iterations, 2u);
    const Path q = tsdtTrace(3, *re, n_size);
    EXPECT_EQ(q.destination(), 0u);
    EXPECT_TRUE(q.isBlockageFree(fs));
    // Second iteration climbs from stage 0: 3 -> 4 -> ...
    EXPECT_EQ(q.switchAt(1), 4u);
}

TEST(Backtrack, Step9SignMismatchFails)
{
    // Figure 9: when iterated backtracking finds a nonstraight link
    // of the opposite sign, no blockage-free path exists.
    const Label n_size = 16;
    IadmTopology topo(n_size);
    // Build a path with a +2^0 then a -2^1 hop: s=1, d=2.
    // D = 1: canonical: stage0: 1 odd t=bit0(2)=0 -> -1 -> 0?  That
    // gives 1 ->(-1) 0 ->(+2) 2 -> 2 -> 2: kinds -,+,0,0.
    const Path p = canonicalPath(1, 2, n_size);
    ASSERT_EQ(p.kindAt(0), LinkKind::Minus);
    ASSERT_EQ(p.kindAt(1), LinkKind::Plus);

    // Double-nonstraight blockage at stage 2 would need backtrack
    // to stage 1 (Plus found -> sigma = -1); block the sigma-side
    // continuation to force iteration to stage 0, where the link is
    // Minus: sign mismatch -> FAIL.
    // Make stage 2 the blockage: both nonstraight outputs of switch
    // 2 at stage 2... but the canonical path goes straight at stage
    // 2; use a straight blockage instead.
    FaultSet fs;
    fs.blockLink(topo.straightLink(2, 2));    // q=2, r=1 (Plus)
    fs.blockLink(topo.minusLink(1, 0));       // step 6 at r=1:
                                              // sigma=-1 link 0->-2
    const auto tag = core::tagForPath(p, 4);
    const auto re =
        backtrack(topo, fs, p, 2, BlockageKind::Straight, tag);
    EXPECT_FALSE(re.has_value());
    EXPECT_FALSE(core::oracleReachable(topo, fs, 1, 2));
}

TEST(Backtrack, StatsArePopulated)
{
    const Label n_size = 16;
    IadmTopology topo(n_size);
    const Path p = canonicalPath(1, 0, n_size);
    FaultSet fs;
    fs.blockLink(topo.straightLink(3, 0));
    BacktrackStats stats;
    const auto re = backtrack(topo, fs, p, 3, BlockageKind::Straight,
                              core::initialTag(4, 0), &stats);
    ASSERT_TRUE(re.has_value());
    EXPECT_EQ(stats.iterations, 1u);
    EXPECT_EQ(stats.stagesVisited, 3u); // backtracked 3 -> 0
    EXPECT_GE(stats.bitsChanged, 3u);   // k = 3 state bits
}

TEST(Backtrack, ComplexityIsOk)
{
    // Corollary 4.2: k-stage backtracking changes exactly k state
    // bits (plus the stage-q bit for a straight blockage).
    const Label n_size = 256;
    IadmTopology topo(n_size);
    for (unsigned q = 1; q < 8; ++q) {
        const Path p = canonicalPath(1, 0, n_size);
        FaultSet fs;
        fs.blockLink(topo.straightLink(q, 0));
        BacktrackStats stats;
        const auto re =
            backtrack(topo, fs, p, q, BlockageKind::Straight,
                      core::initialTag(8, 0), &stats);
        ASSERT_TRUE(re.has_value());
        // r = 0 here, so k = q.
        EXPECT_EQ(stats.bitsChanged, q + 1); // k bits + stage-q bit
    }
}

} // namespace
} // namespace iadm
