/**
 * @file
 * Baseline-scheme tests: distance tags [9], the three dynamic
 * rerouting techniques, single-stage look-ahead [10], redundant
 * number representations [13] and local control [7] — plus the
 * complexity relations the paper claims between them and the SDT
 * schemes.
 */

#include <gtest/gtest.h>

#include "baselines/distance_tag.hpp"
#include "baselines/dynamic_reroute.hpp"
#include "baselines/local_control.hpp"
#include "baselines/lookahead.hpp"
#include "baselines/redundant_number.hpp"
#include "common/modmath.hpp"
#include "core/oracle.hpp"
#include "core/ssdt.hpp"
#include "core/tsdt.hpp"
#include "fault/injection.hpp"

namespace iadm {
namespace {

using namespace baselines;
using topo::IadmTopology;
using topo::LinkKind;

TEST(SignedDigitTag, DominantTagValues)
{
    OpCount ops;
    const auto pos = SignedDigitTag::positiveDominant(4, 11, ops);
    EXPECT_EQ(pos.value(), 11);
    EXPECT_EQ(pos.str(), "++0+");
    const auto neg = SignedDigitTag::negativeDominant(4, 11, ops);
    EXPECT_EQ(neg.value(), 11 - 16);
    EXPECT_EQ(neg.str(), "-0-0");
    EXPECT_EQ(ops.ops, 8u);
}

TEST(SignedDigitTag, ZeroDistance)
{
    OpCount ops;
    const auto pos = SignedDigitTag::positiveDominant(3, 0, ops);
    EXPECT_EQ(pos.value(), 0);
    EXPECT_EQ(pos.str(), "000");
}

TEST(DistanceTag, RoutesAllPairs)
{
    IadmTopology topo(32);
    for (Label s = 0; s < 32; ++s) {
        for (Label d = 0; d < 32; ++d) {
            OpCount ops;
            const auto p = distanceTagRoute(topo, s, d, ops);
            EXPECT_EQ(p.source(), s);
            EXPECT_EQ(p.destination(), d);
            p.validate(topo);
            EXPECT_EQ(ops.ops, 5u); // O(n) tag setup
        }
    }
}

TEST(DistanceTag, TraceFollowsDigits)
{
    IadmTopology topo(8);
    SignedDigitTag tag(3);
    tag.setDigit(0, 1);
    tag.setDigit(1, -1);
    tag.setDigit(2, 0);
    const auto p = distanceTagTrace(topo, 5, tag);
    EXPECT_EQ(p.switchAt(1), 6u);
    EXPECT_EQ(p.switchAt(2), 4u);
    EXPECT_EQ(p.switchAt(3), 4u);
    EXPECT_EQ(p.kindAt(0), LinkKind::Plus);
    EXPECT_EQ(p.kindAt(1), LinkKind::Minus);
}

class McMillenSchemeP
    : public ::testing::TestWithParam<McMillenScheme>
{
};

TEST_P(McMillenSchemeP, DeliversWithoutFaults)
{
    IadmTopology topo(16);
    fault::FaultSet none;
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto res =
                dynamicDistanceRoute(topo, none, s, d, GetParam());
            EXPECT_TRUE(res.delivered);
            EXPECT_EQ(res.path.destination(), d);
            EXPECT_EQ(res.reroutes, 0u);
        }
    }
}

TEST_P(McMillenSchemeP, RepairsSingleNonstraightBlockage)
{
    // All three techniques of [9] repair any single nonstraight
    // blockage (like SSDT, at higher cost).
    IadmTopology topo(8);
    for (const topo::Link &l : topo.allLinks()) {
        if (l.kind == LinkKind::Straight)
            continue;
        fault::FaultSet fs;
        fs.blockLink(l);
        for (Label s = 0; s < 8; ++s) {
            for (Label d = 0; d < 8; ++d) {
                const auto res =
                    dynamicDistanceRoute(topo, fs, s, d,
                                         GetParam());
                EXPECT_TRUE(res.delivered)
                    << "blocked " << l.str() << " s=" << s
                    << " d=" << d;
                EXPECT_TRUE(res.path.isBlockageFree(fs));
            }
        }
    }
}

TEST_P(McMillenSchemeP, FailsOnStraightBlockage)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(1, 0));
    const auto res =
        dynamicDistanceRoute(topo, fs, 0, 0, GetParam());
    EXPECT_FALSE(res.delivered);
    EXPECT_EQ(res.failedStage, 1);
}

TEST_P(McMillenSchemeP, AgreesWithSsdtOnDelivery)
{
    // Under nonstraight-only blockage patterns (one per switch),
    // the dynamic distance schemes and SSDT deliver identically.
    IadmTopology topo(16);
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        fault::FaultSet fs;
        for (unsigned i = 0; i < topo.stages(); ++i)
            for (Label j = 0; j < 16; ++j)
                if (rng.chance(0.3))
                    fs.blockLink(rng.chance(0.5)
                                     ? topo.plusLink(i, j)
                                     : topo.minusLink(i, j));
        core::SsdtRouter ssdt(topo);
        for (Label s = 0; s < 16; ++s) {
            const auto d = static_cast<Label>(rng.uniform(16));
            const auto a =
                dynamicDistanceRoute(topo, fs, s, d, GetParam());
            const auto b = ssdt.route(s, d, fs);
            EXPECT_TRUE(a.delivered);
            EXPECT_TRUE(b.delivered);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, McMillenSchemeP,
    ::testing::Values(McMillenScheme::TwosComplement,
                      McMillenScheme::DigitAddition,
                      McMillenScheme::ExtraTagBit));

TEST(McMillen, RerouteCostExceedsO1)
{
    // The paper's complexity claim: schemes 1 and 2 of [9] pay
    // O(log N) digit work per reroute, versus the TSDT/SSDT single
    // bit flip.
    IadmTopology topo(256);
    fault::FaultSet fs;
    // The positive dominant tag for 1 -> 0 (D = 255, all-ones)
    // starts with +2^0 from switch 1; block it.
    fs.blockLink(topo.plusLink(0, 1));
    const auto tc = dynamicDistanceRoute(
        topo, fs, 1, 0, McMillenScheme::TwosComplement);
    ASSERT_TRUE(tc.delivered);
    EXPECT_EQ(tc.reroutes, 1u);
    // Setup is n ops; the repair adds ~2(n - i) more.
    EXPECT_GE(tc.ops.ops, 8u + 2u * 8u - 2u);
}

TEST(Lookahead, AvoidsStraightBlockageWithNonzeroPriorDigit)
{
    // d_i != 0, d_{i+1} = 0: the rewrite (d_i,0) -> (-d_i,d_i)
    // dodges the blocked straight link one stage ahead.
    IadmTopology topo(16);
    // s=0, d=2: digits 0,+1,0,0.  The path goes straight at stage 0,
    // +2 at stage 1 (0 -> 2), straight at stages 2, 3.
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(2, 2));
    const auto res = lookaheadRoute(topo, fs, 0, 2);
    ASSERT_TRUE(res.delivered);
    EXPECT_TRUE(res.path.isBlockageFree(fs));
    EXPECT_EQ(res.reroutes, 1u);
    // Rewritten route: -2 at stage 1, +4 at stage 2.
    EXPECT_EQ(res.path.switchAt(2), 14u);
}

TEST(Lookahead, CannotHelpWhenPriorDigitZero)
{
    // The "only some cases" limitation: straight blockage with a
    // straight predecessor digit defeats single-stage look-ahead
    // (deeper backtracking would be required — Theorem 3.3).
    IadmTopology topo(16);
    // s=0, d=4: digits 0,0,+1,0; block the straight hop at stage 1.
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(1, 0));
    const auto res = lookaheadRoute(topo, fs, 0, 4);
    EXPECT_FALSE(res.delivered);
    // But TSDT's REROUTE cannot help here either...
    EXPECT_FALSE(core::oracleReachable(topo, fs, 0, 4));
    // ...unless the path has an earlier nonstraight link, where
    // REROUTE succeeds and look-ahead still fails (k = 2 > 1).
    fault::FaultSet fs2;
    fs2.blockLink(topo.straightLink(2, 2));
    // s=1, d=2: digits of D=1: +1,0,0,0: nonstraight at stage 0,
    // straights after; blockage at stage 2 needs 2-stage backtrack.
    const auto la = lookaheadRoute(topo, fs2, 1, 2);
    EXPECT_FALSE(la.delivered);
    EXPECT_TRUE(core::oracleReachable(topo, fs2, 1, 2));
}

TEST(Lookahead, DeliversWithoutFaults)
{
    IadmTopology topo(16);
    fault::FaultSet none;
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto res = lookaheadRoute(topo, none, s, d);
            EXPECT_TRUE(res.delivered);
            EXPECT_EQ(res.reroutes, 0u);
        }
    }
}

TEST(RedundantNumber, EnumerationMatchesOracle)
{
    IadmTopology topo(16);
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            OpCount ops;
            const auto reps = allRepresentations(
                4, distance(s, d, 16), ops);
            EXPECT_EQ(reps.size(),
                      core::oracleCountPaths(topo, s, d));
            for (const auto &tag : reps) {
                const auto p = distanceTagTrace(topo, s, tag);
                EXPECT_EQ(p.destination(), d);
            }
        }
    }
}

TEST(RedundantNumber, CountFormulaMatchesEnumeration)
{
    for (unsigned n = 1; n <= 8; ++n) {
        for (Label d = 0; d < (Label{1} << n); ++d) {
            OpCount ops;
            EXPECT_EQ(allRepresentations(n, d, ops).size(),
                      countRepresentations(n, d))
                << "n=" << n << " d=" << d;
        }
    }
}

TEST(RedundantNumber, RouteIsCompleteButExpensive)
{
    // Exhaustive representation search is as complete as REROUTE
    // but pays exponential ops.
    IadmTopology topo(16);
    Rng rng(23);
    for (int trial = 0; trial < 100; ++trial) {
        const auto fs = fault::randomLinkFaults(topo, 10, rng);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        const auto res = redundantNumberRoute(topo, fs, s, d);
        EXPECT_EQ(res.delivered,
                  core::oracleReachable(topo, fs, s, d));
        if (res.delivered) {
            EXPECT_TRUE(res.path.isBlockageFree(fs));
        }
    }
}

TEST(LocalControl, MatchesStateCRoute)
{
    // [7]'s destination-tag local control is exactly the all-C
    // (ICube-emulation) path.
    IadmTopology topo(32);
    for (Label s = 0; s < 32; ++s) {
        for (Label d = 0; d < 32; ++d) {
            OpCount ops;
            const auto p =
                destinationTagLocalControl(topo, s, d, ops);
            const auto q = core::tsdtTrace(
                s, core::initialTag(5, d), 32);
            EXPECT_EQ(p, q);
        }
    }
}

TEST(LocalControl, SignedBitDifferenceReachesDestination)
{
    IadmTopology topo(32);
    for (Label s = 0; s < 32; ++s) {
        for (Label d = 0; d < 32; ++d) {
            OpCount ops;
            const auto p =
                signedBitDifferenceRoute(topo, s, d, ops);
            EXPECT_EQ(p.destination(), d);
            p.validate(topo);
        }
    }
}

TEST(LocalControl, SignedBitDifferenceEqualsLocalControl)
{
    // On the IADM both Lee-Lee algorithms coincide: the carry-free
    // C-route sets bit i from s_i to d_i exactly when the signed
    // bit difference digit e_i = d_i - s_i is nonzero, with the
    // same sign.  (The SBD tag is the carry-free signed-digit
    // representation of d - s.)
    IadmTopology topo(16);
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            OpCount ops;
            const auto a =
                destinationTagLocalControl(topo, s, d, ops);
            const auto b =
                signedBitDifferenceRoute(topo, s, d, ops);
            EXPECT_TRUE(a == b) << "s=" << s << " d=" << d;
        }
    }
}

TEST(LocalControl, FallsBackOnBlockage)
{
    IadmTopology topo(16);
    fault::FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1)); // local-control 1 -> 0 hop
    const auto res = localControlRoute(topo, fs, 1, 0);
    EXPECT_TRUE(res.delivered);
    EXPECT_TRUE(res.usedFallback);
    EXPECT_TRUE(res.path.isBlockageFree(fs));

    fault::FaultSet none;
    const auto clean = localControlRoute(topo, none, 1, 0);
    EXPECT_TRUE(clean.delivered);
    EXPECT_FALSE(clean.usedFallback);
}

TEST(Complexity, SdtRerouteIsO1VsBaselineOLogN)
{
    // The quantitative heart of experiment C1: per nonstraight
    // reroute, TSDT flips one bit while the two's-complement scheme
    // rewrites O(n) digits.  Measure op growth across N.
    std::uint64_t prev_ops = 0;
    for (unsigned n = 3; n <= 10; ++n) {
        const Label n_size = Label{1} << n;
        IadmTopology topo(n_size);
        fault::FaultSet fs;
        fs.blockLink(topo.minusLink(0, 1));
        const auto res = dynamicDistanceRoute(
            topo, fs, 1, 0, McMillenScheme::TwosComplement);
        ASSERT_TRUE(res.delivered);
        EXPECT_GT(res.ops.ops, prev_ops); // grows with n
        prev_ops = res.ops.ops;
    }
    // TSDT: the same repair is one bit complement regardless of N
    // (Corollary 4.1) — no measurable growth to compare, by
    // construction a single setStateBit call.
    SUCCEED();
}

} // namespace
} // namespace iadm
