/**
 * @file
 * Perf-gate smoke (`ctest -L perf`): the compressed-delta route
 * cache is a speed change only.  Each of the three golden grids
 * (plain transient-storm, static-faulted, churned — the same grids
 * the golden fixtures freeze) is run twice, cache on and cache
 * force-disabled, and the two iadm-sweep-v1 reports must be
 * byte-identical once the route_cache_* counter lines (the only
 * legitimately cache-dependent output) are stripped.
 *
 * This is deliberately a live A/B, not a fixture diff: it stays
 * valid across intentional fixture regenerations, and it pins the
 * decode-on-hit path (packets built from decodeDelta'd pathSw)
 * against the never-cached path on every grid class at once.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/sweep.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using namespace sim;

/** All five schemes at N = 64 — shared base of the three grids. */
SweepGrid
baseGrid(std::uint64_t master_seed)
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.traffics = {TrafficSpec{}};
    grid.replicates = 1; // half the golden runtime, same claim
    grid.warmupCycles = 200;
    grid.measureCycles = 1200;
    grid.masterSeed = master_seed;
    return grid;
}

/** goldenGrid() of golden_sweep_test.cpp, one replicate. */
SweepGrid
plainGrid()
{
    SweepGrid grid = baseGrid(20260806);
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 6}};
    return grid;
}

/** Its transient-blockage storm, verbatim (same rng draw order). */
void
scheduleStorm(NetworkSim &s, const SweepCell &cell, Rng &rng)
{
    const topo::IadmTopology topo(cell.netSize);
    for (int k = 0; k < 16; ++k) {
        const auto stage =
            static_cast<unsigned>(rng.uniform(topo.stages()));
        const auto j = static_cast<Label>(rng.uniform(cell.netSize));
        const auto kind = rng.uniform(3);
        const topo::Link link =
            kind == 0   ? topo.straightLink(stage, j)
            : kind == 1 ? topo.plusLink(stage, j)
                        : topo.minusLink(stage, j);
        const Cycle from = 250 + rng.uniform(900);
        const Cycle len = 100 + rng.uniform(200);
        s.scheduleTransientBlockage(link, from, from + len);
    }
}

/** goldenFaultedGrid() of golden_sweep_test.cpp, one replicate. */
SweepGrid
faultedGrid()
{
    SweepGrid grid = baseGrid(20260807);
    grid.faults = {
        FaultScenario{FaultScenario::Kind::Nonstraight, 4},
        FaultScenario{FaultScenario::Kind::RandomLinks, 6},
        FaultScenario{FaultScenario::Kind::DoubleNonstraight, 2}};
    return grid;
}

/** goldenChurnGrid() of churn_test.cpp, one replicate. */
SweepGrid
churnGrid()
{
    SweepGrid grid = baseGrid(20260807);
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 4}};
    grid.churns = {ChurnSpec::parse("geometric:500:100").value()};
    grid.measureCycles = 1000;
    grid.maxPacketAge = 600;
    return grid;
}

/** Drop the route_cache_* lines (hit/miss/eviction counters are the
 *  one part of the report allowed to differ when the cache toggles). */
std::string
stripCacheStats(const std::string &report)
{
    std::istringstream is(report);
    std::ostringstream os;
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("route_cache") == std::string::npos)
            os << line << '\n';
    }
    return os.str();
}

void
expectCacheParity(const SweepGrid &grid, bool with_storm)
{
    SweepOptions cached;
    cached.workers = 2;
    if (with_storm)
        cached.setup = scheduleStorm;
    const std::string on =
        sweepReportJson(grid, runSweep(grid, cached));

    SweepOptions uncached;
    uncached.workers = 2;
    uncached.setup = [with_storm](NetworkSim &s,
                                  const SweepCell &cell, Rng &rng) {
        s.setRouteCacheEnabled(false);
        // Disabling draws nothing from rng: the scenario stream
        // stays aligned with the cached twin's.
        if (with_storm)
            scheduleStorm(s, cell, rng);
    };
    const std::string off =
        sweepReportJson(grid, runSweep(grid, uncached));

    EXPECT_NE(on, off)
        << "cache counters should register traffic on tsdt cells";
    EXPECT_EQ(stripCacheStats(on), stripCacheStats(off))
        << "disabling the route cache changed routing results";
}

TEST(CacheParityPerf, PlainTransientStormGrid)
{
    expectCacheParity(plainGrid(), true);
}

TEST(CacheParityPerf, StaticFaultedGrid)
{
    expectCacheParity(faultedGrid(), false);
}

TEST(CacheParityPerf, ChurnedGrid)
{
    expectCacheParity(churnGrid(), false);
}

} // namespace
} // namespace iadm
