/**
 * @file
 * Fault-churn and packet-lifecycle tests (the `robustness` suite).
 *
 * Covers the composable blockage model end to end: refcounted
 * transient windows that overlap static faults, seed-derived churn
 * processes (Bernoulli / geometric / burst), the parked-packet
 * retry protocol for transiently-unroutable packets, the stall-age
 * cap with its drop-reason taxonomy, sender-scheme head-of-line
 * re-resolution, and the determinism guarantees of churned sweeps
 * (byte-identical reports across worker counts, plus a golden
 * fixture under tests/data/).
 *
 * Regenerating the fixture (only after an *intentional* behaviour
 * change):  IADM_REGEN_GOLDEN=1 ./churn_test
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include "fault/fault_process.hpp"
#include "perm/permutation.hpp"
#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;
using topo::IadmTopology;

std::unique_ptr<TrafficPattern>
uniform(Label n)
{
    return std::make_unique<UniformTraffic>(n);
}

std::unique_ptr<TrafficPattern>
identity(Label n)
{
    return std::make_unique<PermutationTraffic>(perm::Permutation(n));
}

// --- composable blockage model ------------------------------------

TEST(Blockage, TransientOverWindowDoesNotUnblockStaticFault)
{
    // Regression: a transient window on an already-faulty link used
    // to *restore* the link when the window closed, erasing the
    // static fault.  With refcounted claims the restore releases
    // only the window's own claim.
    IadmTopology topo(8);
    const topo::Link link = topo.straightLink(1, 3);
    fault::FaultSet fs;
    fs.blockLink(link); // static fault
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.injectionRate = 0.0;
    NetworkSim s(cfg, uniform(8), fs);
    s.scheduleTransientBlockage(link, 10, 50);
    s.run(100); // well past the restore at cycle 50
    EXPECT_TRUE(s.faults().isBlocked(link))
        << "transient restore erased the static fault";
    EXPECT_EQ(s.faults().refcount(link), 1u);
}

TEST(Blockage, OverlappingTransientWindowsUnwindInOrder)
{
    IadmTopology topo(8);
    const topo::Link link = topo.plusLink(0, 2);
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.injectionRate = 0.0;
    NetworkSim s(cfg, uniform(8));
    s.scheduleTransientBlockage(link, 10, 100);
    s.scheduleTransientBlockage(link, 20, 60);
    s.run(80); // the inner window has closed, the outer has not
    EXPECT_TRUE(s.faults().isBlocked(link))
        << "inner window's restore unblocked the outer window";
    s.run(40); // past cycle 100
    EXPECT_FALSE(s.faults().isBlocked(link));
    EXPECT_TRUE(s.faults().empty());
}

// --- churn processes ----------------------------------------------

using Transition = std::tuple<std::uint64_t, std::uint64_t, bool>;

/** Drive @p proc to @p horizon, logging every transition. */
std::pair<std::vector<Transition>, std::string>
driveProcess(fault::FaultProcess &proc, fault::FaultSet &fs,
             std::uint64_t horizon)
{
    std::vector<Transition> log;
    const auto obs = [&](std::uint64_t cycle, const topo::Link &l,
                         bool down) {
        log.emplace_back(cycle, l.key(), down);
    };
    for (std::uint64_t now = 1; now <= horizon; ++now)
        if (proc.nextTransition() <= now)
            proc.runUntil(now, fs, obs);
    return {std::move(log), fs.str()};
}

class ChurnKinds
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ChurnKinds, SameSeedSameTransitions)
{
    const auto spec = ChurnSpec::parse(GetParam());
    ASSERT_TRUE(spec.has_value());
    IadmTopology topo(16);
    const auto p1 = spec->make(topo, 99);
    const auto p2 = spec->make(topo, 99);
    ASSERT_NE(p1, nullptr);
    fault::FaultSet f1, f2;
    const auto r1 = driveProcess(*p1, f1, 3000);
    const auto r2 = driveProcess(*p2, f2, 3000);
    EXPECT_FALSE(r1.first.empty())
        << "process never fired in 3000 cycles";
    EXPECT_EQ(r1.first, r2.first);
    EXPECT_EQ(r1.second, r2.second);
}

TEST_P(ChurnKinds, EveryFailureIsEventuallyRepaired)
{
    // Claims must balance: once the process goes quiet (or at any
    // down/up-paired point), downs - ups equals the claims it still
    // holds, and each link's refcount is exactly its net claims.
    const auto spec = ChurnSpec::parse(GetParam());
    ASSERT_TRUE(spec.has_value());
    IadmTopology topo(16);
    const auto p = spec->make(topo, 7);
    fault::FaultSet fs;
    const auto [log, str] = driveProcess(*p, fs, 5000);
    std::size_t downs = 0, ups = 0;
    for (const auto &[cycle, key, down] : log)
        down ? ++downs : ++ups;
    std::size_t claims = 0;
    for (const auto &[key, cnt] : fs.keys())
        claims += cnt;
    EXPECT_EQ(downs, ups + claims)
        << "a repair fired without a matching failure (or lost one)";
}

TEST_P(ChurnKinds, NameParseRoundTrip)
{
    const auto spec = ChurnSpec::parse(GetParam());
    ASSERT_TRUE(spec.has_value());
    const auto again = ChurnSpec::parse(spec->name());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*spec, *again);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ChurnKinds,
                         ::testing::Values("bernoulli:0.001:0.05",
                                           "geometric:300:60",
                                           "burst:400:120:4"));

TEST(ChurnSpec, RejectsMalformedSpecs)
{
    EXPECT_FALSE(ChurnSpec::parse("").has_value());
    EXPECT_FALSE(ChurnSpec::parse("bernoulli").has_value());
    EXPECT_FALSE(ChurnSpec::parse("bernoulli:2:0.5").has_value());
    EXPECT_FALSE(ChurnSpec::parse("geometric:0:5").has_value());
    EXPECT_FALSE(ChurnSpec::parse("burst:100:50").has_value());
    EXPECT_FALSE(ChurnSpec::parse("burst:0:50:2").has_value());
    EXPECT_FALSE(ChurnSpec::parse("meteor:1:2").has_value());
    EXPECT_TRUE(ChurnSpec::parse("none").has_value());
    EXPECT_EQ(ChurnSpec::parse("none")->make(IadmTopology(8), 1),
              nullptr);
}

TEST(Churn, SimAppliesAndRepairsChurnFaults)
{
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.injectionRate = 0.2;
    cfg.seed = 31;
    NetworkSim s(cfg, uniform(16));
    const auto spec = ChurnSpec::parse("geometric:300:50");
    ASSERT_TRUE(spec.has_value());
    s.addFaultProcess(spec->make(s.topology(), 1234));
    EXPECT_EQ(s.faultProcessCount(), 1u);
    s.run(4000);
    const auto &m = s.metrics();
    EXPECT_GT(m.faultDowns(), 0u);
    EXPECT_GT(m.faultUps(), 0u);
    EXPECT_GE(m.faultDowns(), m.faultUps()); // claims never go negative
    EXPECT_GT(m.delivered(), 0u);
    EXPECT_GT(m.deliveredDuringFaults(), 0u);
    // Lifecycle conservation, drops included.
    EXPECT_EQ(m.injected(),
              m.delivered() + m.dropped() + s.inFlight());
}

// --- packet lifecycle: park / retry / expire ----------------------

TEST(Lifecycle, ParkedUnroutablePacketDeliversAfterRepair)
{
    // Identity traffic at N=8 routes straight-only, so a straight
    // blockage at stage 0 of switch 5 makes 5->5 *provably*
    // unroutable while it lasts.  Dynamic-TSDT packets get a FAIL
    // verdict from BACKTRACK; because the blockage is transient they
    // must park and deliver after the repair, not drop.
    IadmTopology topo(8);
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.scheme = RoutingScheme::TsdtDynamic;
    cfg.injectionRate = 0.4;
    cfg.seed = 5;
    NetworkSim s(cfg, identity(8));
    s.scheduleTransientBlockage(topo.straightLink(0, 5), 2, 600);
    s.run(1500);
    const auto &m = s.metrics();
    EXPECT_EQ(m.dropped(), 0u)
        << "transiently-unroutable packets were dropped";
    EXPECT_GT(m.recoveries(), 0u)
        << "no parked packet ever resumed after the repair";
    EXPECT_GT(m.avgRecoveryWait(), 0.0);
    EXPECT_EQ(m.injected(), m.delivered() + s.inFlight());
    EXPECT_TRUE(s.faults().empty());
}

TEST(Lifecycle, AgeCapDropsParkedPacketsAsUnroutable)
{
    // Same setup, but with a stall-age cap shorter than the outage:
    // parked FAIL-verdict packets now expire with the Unroutable
    // reason instead of waiting out the repair.
    IadmTopology topo(8);
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.scheme = RoutingScheme::TsdtDynamic;
    cfg.injectionRate = 0.4;
    cfg.seed = 5;
    cfg.maxPacketAge = 100;
    NetworkSim s(cfg, identity(8));
    s.scheduleTransientBlockage(topo.straightLink(0, 5), 2, 600);
    s.run(1500);
    const auto &m = s.metrics();
    EXPECT_GT(m.droppedFor(DropReason::Unroutable), 0u);
    EXPECT_EQ(m.droppedFor(DropReason::Legacy), 0u);
    EXPECT_EQ(m.dropped(), m.droppedFor(DropReason::Unroutable) +
                               m.droppedFor(DropReason::Expired));
    // Per-stage attribution: the FAIL verdicts all happen at the
    // blocked stage-0 switch.
    EXPECT_EQ(m.dropsAt(0), m.droppedFor(DropReason::Unroutable));
    EXPECT_EQ(m.injected(),
              m.delivered() + m.dropped() + s.inFlight());
}

TEST(Lifecycle, AgeCapExpiresBlockedSenderPackets)
{
    // Sender-computed tags meet an in-flight blockage with no
    // alternative (straight is forced on the identity pairs): the
    // head stalls, and with an age cap it must expire with the
    // Expired reason — it was never proven unroutable by REROUTE.
    IadmTopology topo(8);
    SimConfig cfg;
    cfg.netSize = 8;
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.injectionRate = 1.0;
    cfg.seed = 9;
    cfg.maxPacketAge = 60;
    NetworkSim s(cfg, identity(8));
    s.scheduleTransientBlockage(topo.straightLink(2, 5), 10, 800);
    s.run(900);
    const auto &m = s.metrics();
    EXPECT_GT(m.droppedFor(DropReason::Expired), 0u);
    EXPECT_EQ(m.droppedFor(DropReason::Unroutable), 0u)
        << "a sender stall was misclassified as a FAIL verdict";
    EXPECT_EQ(m.injected(),
              m.delivered() + m.dropped() + s.inFlight());
}

TEST(Lifecycle, SenderHeadOfLineReResolvesAroundNewFaults)
{
    // Packets whose planned link goes down mid-flight used to stall
    // until the repair; the head must instead re-run REROUTE from
    // its current switch once per fault epoch and take a spare path
    // (Theorem 3.1 guarantees one for state-bit repairs).  Geometric
    // churn at high load keeps enough packets in flight across
    // enough failures that re-resolution provably fires.
    SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = RoutingScheme::TsdtSender;
    cfg.injectionRate = 0.8;
    cfg.seed = 12;
    NetworkSim s(cfg, uniform(16));
    const auto spec = ChurnSpec::parse("geometric:300:60");
    ASSERT_TRUE(spec.has_value());
    s.addFaultProcess(spec->make(s.topology(), 42));
    s.run(2000);
    const auto &m = s.metrics();
    EXPECT_GT(m.totalReroutes(), 0u)
        << "no in-flight sender packet ever re-resolved";
    EXPECT_GT(m.recoveries(), 0u);
    EXPECT_EQ(m.dropped(), 0u);
    EXPECT_EQ(m.injected(), m.delivered() + s.inFlight());
}

// --- sweep integration --------------------------------------------

SweepGrid
churnGrid()
{
    SweepGrid grid;
    grid.netSizes = {16};
    grid.schemes = {RoutingScheme::TsdtSender,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.2};
    grid.queueCapacities = {4};
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 2}};
    grid.traffics = {TrafficSpec{}};
    grid.churns = {ChurnSpec::parse("bernoulli:0.0005:0.05").value(),
                   ChurnSpec::parse("burst:300:80:4").value()};
    grid.replicates = 2;
    grid.warmupCycles = 100;
    grid.measureCycles = 600;
    grid.masterSeed = 77;
    grid.maxPacketAge = 400;
    return grid;
}

TEST(ChurnSweep, ReportIsByteIdenticalAcrossWorkerCounts)
{
    const SweepGrid grid = churnGrid();
    const auto render = [&](unsigned workers) {
        SweepOptions opts;
        opts.workers = workers;
        return sweepReportJson(grid, runSweep(grid, opts));
    };
    const std::string w1 = render(1);
    EXPECT_EQ(w1, render(4));
    EXPECT_EQ(w1, render(8));
}

TEST(ChurnSweep, ChurnAxisAndAgeCapAppearOnlyWhenUsed)
{
    SweepGrid plain;
    plain.netSizes = {8};
    plain.measureCycles = 50;
    const std::string without =
        sweepReportJson(plain, runSweep(plain, {}));
    EXPECT_EQ(without.find("churn"), std::string::npos);
    EXPECT_EQ(without.find("max_packet_age"), std::string::npos);

    const SweepGrid grid = churnGrid();
    const std::string with =
        sweepReportJson(grid, runSweep(grid, {}));
    EXPECT_NE(with.find("\"churns\": ["), std::string::npos);
    EXPECT_NE(with.find("\"bernoulli:"), std::string::npos);
    EXPECT_NE(with.find("\"churn\": \"burst:300:80:4\""),
              std::string::npos);
    EXPECT_NE(with.find("\"max_packet_age\": 400"),
              std::string::npos);
}

TEST(ChurnSweep, DropsByReasonKeysGateOnAnyDrop)
{
    // The taxonomy keys are additive: absent whenever dropped == 0
    // (the frozen legacy schema), present and self-consistent when
    // anything was dropped.
    SweepGrid grid = churnGrid();
    const auto results = runSweep(grid, {});
    const std::string report = sweepReportJson(grid, results);
    bool any_dropped = false;
    for (const auto &cell : results)
        for (const auto &rep : cell.replicates)
            any_dropped = any_dropped || rep.metrics.dropped() != 0;
    EXPECT_EQ(report.find("drops_by_reason") != std::string::npos,
              any_dropped);
    EXPECT_EQ(report.find("drops_by_stage") != std::string::npos,
              any_dropped);
}

// --- golden fixture -----------------------------------------------

#ifndef IADM_TEST_DATA_DIR
#error "IADM_TEST_DATA_DIR must point at tests/data"
#endif

const char *const kChurnFixturePath =
    IADM_TEST_DATA_DIR "/golden_sweep_n64_churn.json";

/** The frozen churn grid: all five schemes under geometric churn
 *  with an age cap, N = 64.  Changing anything here (or any churn
 *  rng draw order) invalidates the fixture. */
SweepGrid
goldenChurnGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 4}};
    grid.traffics = {TrafficSpec{}};
    grid.churns = {ChurnSpec::parse("geometric:500:100").value()};
    grid.replicates = 2;
    grid.warmupCycles = 200;
    grid.measureCycles = 1000;
    grid.masterSeed = 20260807;
    grid.maxPacketAge = 600;
    return grid;
}

TEST(ChurnSweep, GoldenChurnGridMatchesFixtureByteForByte)
{
    SweepOptions opts;
    opts.workers = 2;
    const SweepGrid grid = goldenChurnGrid();
    const std::string report =
        sweepReportJson(grid, runSweep(grid, opts));

    if (std::getenv("IADM_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(kChurnFixturePath, std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << kChurnFixturePath;
        os << report;
        GTEST_SKIP() << "fixture regenerated at "
                     << kChurnFixturePath;
    }

    std::ifstream is(kChurnFixturePath, std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << kChurnFixturePath
                    << " (run with IADM_REGEN_GOLDEN=1 to create)";
    std::ostringstream fixture;
    fixture << is.rdbuf();
    ASSERT_EQ(report.size(), fixture.str().size());
    EXPECT_TRUE(report == fixture.str())
        << "churned sweep diverged from the golden fixture";
}

} // namespace
} // namespace iadm
