/**
 * @file
 * Unit tests for the common substrate: bits, modular arithmetic,
 * logging helpers and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bits.hpp"
#include "common/modmath.hpp"
#include "common/rng.hpp"

namespace iadm {
namespace {

TEST(Bits, BitExtraction)
{
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 2), 0u);
    EXPECT_EQ(bit(0b1010, 3), 1u);
}

TEST(Bits, WithBitSetsExactlyOneBit)
{
    for (std::uint64_t v : {0ull, 5ull, 0xffull, 0x123456ull}) {
        for (unsigned i = 0; i < 24; ++i) {
            EXPECT_EQ(bit(withBit(v, i, 1), i), 1u);
            EXPECT_EQ(bit(withBit(v, i, 0), i), 0u);
            // Other bits untouched.
            for (unsigned k = 0; k < 24; ++k) {
                if (k != i) {
                    EXPECT_EQ(bit(withBit(v, i, 1), k), bit(v, k));
                    EXPECT_EQ(bit(withBit(v, i, 0), k), bit(v, k));
                }
            }
        }
    }
}

TEST(Bits, FlipBitIsInvolution)
{
    for (std::uint64_t v : {0ull, 7ull, 0xdeadull}) {
        for (unsigned i = 0; i < 16; ++i) {
            EXPECT_EQ(flipBit(flipBit(v, i), i), v);
            EXPECT_NE(flipBit(v, i), v);
        }
    }
}

TEST(Bits, PowerOfTwoAndLog)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(8), 3u);
    EXPECT_EQ(log2Floor(9), 3u);
    EXPECT_EQ(log2Floor(1u << 20), 20u);
}

TEST(Bits, Popcount)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(0xff), 8u);
    EXPECT_EQ(popcount(0b1011), 3u);
}

TEST(Bits, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(3), 0b111u);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
}

TEST(Bits, LsbFirstStringMatchesPaperNotation)
{
    // Paper notation: j_0 j_1 ... j_{n-1}, LSB first.  Switch 1 in
    // an N=8 network is written "100".
    EXPECT_EQ(toLsbFirstString(1, 3), "100");
    EXPECT_EQ(toLsbFirstString(4, 3), "001");
    EXPECT_EQ(toMsbFirstString(4, 3), "100");
}

TEST(Bits, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    for (std::uint64_t v = 0; v < 64; ++v)
        EXPECT_EQ(reverseBits(reverseBits(v, 6), 6), v);
}

TEST(ModMath, ModAddWrapsBothWays)
{
    EXPECT_EQ(modAdd(7, 1, 8), 0u);
    EXPECT_EQ(modAdd(0, -1, 8), 7u);
    EXPECT_EQ(modAdd(3, 8, 8), 3u);
    EXPECT_EQ(modAdd(3, -16, 8), 3u);
    EXPECT_EQ(modSub(0, 5, 8), 3u);
}

TEST(ModMath, Distance)
{
    EXPECT_EQ(distance(1, 0, 8), 7u);
    EXPECT_EQ(distance(0, 1, 8), 1u);
    EXPECT_EQ(distance(5, 5, 8), 0u);
    EXPECT_EQ(signedDistance(1, 0, 8), -1);
    EXPECT_EQ(signedDistance(0, 4, 8), 4);
    EXPECT_EQ(signedDistance(0, 5, 8), -3);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs |= (a2() != c());
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniform(13), 13u);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniform(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRoughlyUnbiased)
{
    Rng rng(5);
    std::map<std::uint64_t, int> hist;
    constexpr int draws = 60000;
    for (int i = 0; i < draws; ++i)
        ++hist[rng.uniform(6)];
    for (const auto &[v, c] : hist) {
        EXPECT_GT(c, draws / 6 - draws / 30) << "value " << v;
        EXPECT_LT(c, draws / 6 + draws / 30) << "value " << v;
    }
}

TEST(Rng, SampleDistinct)
{
    Rng rng(3);
    const auto s = rng.sample(50, 20);
    EXPECT_EQ(s.size(), 20u);
    std::set<std::size_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 20u);
    for (auto v : s)
        EXPECT_LT(v, 50u);
}

TEST(Rng, SampleFullPoolIsPermutation)
{
    Rng rng(9);
    const auto s = rng.sample(10, 10);
    std::set<std::size_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 10u);
}

TEST(Rng, UniformRangeFullSpanDoesNotOverflow)
{
    // Regression: hi - lo + 1 wraps to 0 over the full 64-bit range
    // and used to trip uniform()'s zero-bound assertion.  Any value
    // is in range; the draws must still advance the stream.
    Rng rng(41);
    const auto a = rng.uniformRange(0, ~std::uint64_t{0});
    const auto b = rng.uniformRange(0, ~std::uint64_t{0});
    Rng replay(41);
    EXPECT_EQ(a, replay.uniformRange(0, ~std::uint64_t{0}));
    EXPECT_EQ(b, replay.uniformRange(0, ~std::uint64_t{0}));
    EXPECT_NE(a, b); // astronomically unlikely to collide
}

TEST(Rng, UniformRangeNearFullSpan)
{
    // One below the full span still goes through rejection
    // sampling; both ends must be reachable in principle and no
    // assertion may fire.
    Rng rng(42);
    for (int i = 0; i < 64; ++i) {
        const auto v = rng.uniformRange(1, ~std::uint64_t{0});
        EXPECT_GE(v, 1u);
    }
    for (int i = 0; i < 64; ++i)
        (void)rng.uniformRange(0, ~std::uint64_t{0} - 1);
}

TEST(Rng, UniformRangeSingleton)
{
    Rng rng(43);
    EXPECT_EQ(rng.uniformRange(7, 7), 7u);
    EXPECT_EQ(rng.uniformRange(0, 0), 0u);
    const auto top = ~std::uint64_t{0};
    EXPECT_EQ(rng.uniformRange(top, top), top);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

} // namespace
} // namespace iadm
