/**
 * @file
 * NetworkController tests: tag correctness under fault event
 * streams, cache behavior, and targeted invalidation.
 */

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/oracle.hpp"
#include "fault/injection.hpp"

namespace iadm {
namespace {

using core::NetworkController;
using topo::IadmTopology;

TEST(Controller, TagsAreCorrectAndCached)
{
    IadmTopology topo(16);
    NetworkController ctl(topo);
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto tag = ctl.tagFor(s, d);
            ASSERT_TRUE(tag.has_value());
            const auto p = core::tsdtTrace(s, *tag, 16);
            EXPECT_EQ(p.destination(), d);
        }
    }
    EXPECT_EQ(ctl.stats().computes, 256u);
    // Second sweep: all hits.
    for (Label s = 0; s < 16; ++s)
        for (Label d = 0; d < 16; ++d)
            (void)ctl.tagFor(s, d);
    EXPECT_EQ(ctl.stats().computes, 256u);
    EXPECT_EQ(ctl.stats().hits, 256u);
}

TEST(Controller, FailureInvalidatesOnlyAffectedPairs)
{
    IadmTopology topo(16);
    NetworkController ctl(topo);
    for (Label s = 0; s < 16; ++s)
        for (Label d = 0; d < 16; ++d)
            (void)ctl.tagFor(s, d);
    const auto before = ctl.cacheSize();
    EXPECT_EQ(before, 256u);

    // Fail one nonstraight link: only tags whose canonical path
    // used it get dropped.
    ctl.linkFailed(topo.minusLink(0, 1));
    EXPECT_LT(ctl.cacheSize(), before);
    EXPECT_GT(ctl.cacheSize(), 200u); // most pairs untouched
    const auto invalidated = before - ctl.cacheSize();
    EXPECT_EQ(ctl.stats().invalidations, invalidated);

    // Every pair must still resolve correctly post-failure.
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto tag = ctl.tagFor(s, d);
            const bool reachable = core::oracleReachable(
                topo, ctl.faults(), s, d);
            ASSERT_EQ(tag.has_value(), reachable);
            if (tag) {
                const auto p = core::tsdtTrace(s, *tag, 16);
                EXPECT_EQ(p.destination(), d);
                EXPECT_TRUE(p.isBlockageFree(ctl.faults()));
            }
        }
    }
}

TEST(Controller, RepairRestoresDisconnectedPairs)
{
    IadmTopology topo(8);
    NetworkController ctl(topo);
    const auto link = topo.straightLink(1, 5);
    ctl.linkFailed(link);
    EXPECT_FALSE(ctl.tagFor(5, 5).has_value());
    ctl.linkRepaired(link);
    EXPECT_TRUE(ctl.tagFor(5, 5).has_value());
}

TEST(Controller, SurvivesRandomEventStream)
{
    IadmTopology topo(16);
    NetworkController ctl(topo);
    Rng rng(314);
    const auto links = topo.allLinks();
    std::vector<topo::Link> down;
    for (int event = 0; event < 120; ++event) {
        if (!down.empty() && rng.chance(0.4)) {
            const auto idx = rng.uniform(down.size());
            ctl.linkRepaired(down[idx]);
            down.erase(down.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        } else {
            const auto &l = links[rng.uniform(links.size())];
            ctl.linkFailed(l);
            down.push_back(l);
        }
        // Spot-check a handful of pairs against the oracle.
        for (int k = 0; k < 6; ++k) {
            const auto s = static_cast<Label>(rng.uniform(16));
            const auto d = static_cast<Label>(rng.uniform(16));
            const auto tag = ctl.tagFor(s, d);
            ASSERT_EQ(tag.has_value(),
                      core::oracleReachable(topo, ctl.faults(), s,
                                            d))
                << "event " << event << " s=" << s << " d=" << d;
            if (tag) {
                EXPECT_TRUE(core::tsdtTrace(s, *tag, 16)
                                .isBlockageFree(ctl.faults()));
            }
        }
    }
    // The cache must have done real work.
    EXPECT_GT(ctl.stats().hits, 0u);
    EXPECT_GT(ctl.stats().invalidations, 0u);
}

TEST(Controller, CacheAmortizesLookups)
{
    IadmTopology topo(64);
    NetworkController ctl(topo);
    Rng rng(315);
    for (int k = 0; k < 5000; ++k) {
        const auto s = static_cast<Label>(rng.uniform(64));
        const auto d = static_cast<Label>(rng.uniform(64));
        (void)ctl.tagFor(s, d);
    }
    // 64*64 = 4096 distinct pairs at most; the rest must be hits.
    EXPECT_LE(ctl.stats().computes, 4096u);
    EXPECT_GE(ctl.stats().hits, 5000u - 4096u);
}

} // namespace
} // namespace iadm
