/**
 * @file
 * Dynamic (in-network) TSDT rerouting tests: outcome equivalence
 * with sender-side REROUTE, and the hop/probe cost model of the
 * walking-message implementation.
 */

#include <gtest/gtest.h>

#include "core/distributed.hpp"
#include "core/oracle.hpp"
#include "fault/injection.hpp"

namespace iadm {
namespace {

using core::distributedRoute;
using core::universalRoute;
using topo::IadmTopology;

TEST(Distributed, FaultFreeCostsExactlyNForwardHops)
{
    IadmTopology topo(32);
    fault::FaultSet none;
    for (Label s = 0; s < 32; ++s) {
        for (Label d = 0; d < 32; ++d) {
            const auto res = distributedRoute(topo, none, s, d);
            EXPECT_TRUE(res.delivered);
            EXPECT_EQ(res.forwardHops, topo.stages());
            EXPECT_EQ(res.backtrackHops, 0u);
            EXPECT_EQ(res.flips, 0u);
            EXPECT_EQ(res.rewrites, 0u);
        }
    }
}

TEST(Distributed, OutcomeEqualsReroute)
{
    // The walk executes the same algorithm: delivery must coincide
    // with sender-side REROUTE (and hence with the oracle) on every
    // instance.
    IadmTopology topo(32);
    Rng rng(21);
    for (int trial = 0; trial < 400; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, 1 + rng.uniform(40), rng);
        const auto s = static_cast<Label>(rng.uniform(32));
        const auto d = static_cast<Label>(rng.uniform(32));
        const auto dyn = distributedRoute(topo, fs, s, d);
        const auto snd = universalRoute(topo, fs, s, d);
        ASSERT_EQ(dyn.delivered, snd.ok)
            << "s=" << s << " d=" << d;
        if (dyn.delivered) {
            EXPECT_TRUE(dyn.path.isBlockageFree(fs));
            EXPECT_EQ(dyn.path.destination(), d);
        }
    }
}

TEST(Distributed, NonstraightBlockageCostsNoExtraHops)
{
    // A Corollary 4.1 repair happens in place: n forward hops, no
    // backward movement.
    IadmTopology topo(16);
    fault::FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1)); // canonical 1->0 first hop
    const auto res = distributedRoute(topo, fs, 1, 0);
    ASSERT_TRUE(res.delivered);
    EXPECT_EQ(res.flips, 1u);
    EXPECT_EQ(res.forwardHops, 4u);
    EXPECT_EQ(res.backtrackHops, 0u);
}

TEST(Distributed, StraightBlockageWalksBack)
{
    // Straight blockage at stage k with the nonstraight link at
    // stage 0: the message walks k hops backward.
    IadmTopology topo(32);
    for (unsigned k = 1; k < 5; ++k) {
        fault::FaultSet fs;
        fs.blockLink(topo.straightLink(k, 0));
        const auto res = distributedRoute(topo, fs, 1, 0);
        ASSERT_TRUE(res.delivered);
        EXPECT_EQ(res.rewrites, 1u);
        EXPECT_EQ(res.backtrackHops, k);
        // Forward: to the blockage (k hops... wait: stage k probe
        // happens at stage k) then the full reroute: k hops back to
        // stage 0, then n forward from there.
        EXPECT_EQ(res.forwardHops, k + topo.stages() - 0);
        EXPECT_EQ(res.totalHops(), 2 * k + topo.stages());
    }
}

TEST(Distributed, ProbesAccountBlockageChecks)
{
    IadmTopology topo(16);
    fault::FaultSet fs;
    fs.blockLink(topo.minusLink(0, 1));
    const auto res = distributedRoute(topo, fs, 1, 0);
    // One blocked-port probe plus one spare-port probe.
    EXPECT_EQ(res.probes, 2u);
}

TEST(Distributed, FailureReportsStage)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(1, 5));
    const auto res = distributedRoute(topo, fs, 5, 5);
    EXPECT_FALSE(res.delivered);
    EXPECT_EQ(res.failedStage, 1);
}

TEST(Distributed, CostNeverBelowPipelineDepth)
{
    IadmTopology topo(64);
    Rng rng(23);
    for (int trial = 0; trial < 300; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, rng.uniform(60), rng);
        const auto s = static_cast<Label>(rng.uniform(64));
        const auto d = static_cast<Label>(rng.uniform(64));
        const auto res = distributedRoute(topo, fs, s, d);
        if (res.delivered) {
            EXPECT_GE(res.forwardHops, topo.stages());
            EXPECT_EQ(res.forwardHops,
                      topo.stages() + res.backtrackHops);
        }
    }
}

} // namespace
} // namespace iadm
