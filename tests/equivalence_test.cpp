/**
 * @file
 * Cube-family equivalence tests ([16][17][20][21] in the paper):
 * explicit and searched layered-graph isomorphisms between ICube,
 * Generalized Cube, Omega, Baseline and Flip networks.
 */

#include <gtest/gtest.h>

#include "topology/cube_family.hpp"
#include "topology/equivalence.hpp"
#include "topology/iadm.hpp"
#include "topology/icube.hpp"

namespace iadm {
namespace {

using namespace topo;

TEST(Equivalence, IdentityMapsAreIsomorphismsOntoSelf)
{
    for (Label n_size : {4u, 8u, 16u}) {
        const ICubeTopology cube(n_size);
        const OmegaTopology omega(n_size);
        const auto id = identityIsomorphism(n_size);
        EXPECT_TRUE(verifyColumnIsomorphism(cube, cube, id));
        EXPECT_TRUE(verifyColumnIsomorphism(omega, omega, id));
    }
}

TEST(Equivalence, ICubeEqualsFlipExactly)
{
    // Our ICube (second graph model, carry-free exchange) and the
    // STARAN flip network have identical link structure.
    for (Label n_size : {4u, 8u, 16u, 32u}) {
        const ICubeTopology cube(n_size);
        const FlipTopology flip(n_size);
        EXPECT_TRUE(verifyColumnIsomorphism(
            cube, flip, identityIsomorphism(n_size)));
    }
}

TEST(Equivalence, BitReversalMapsICubeOntoGeneralizedCube)
{
    // Reversing every label swaps ascending and descending cube
    // stage orders: the classic closed-form witness.
    for (Label n_size : {4u, 8u, 16u, 32u, 64u}) {
        const ICubeTopology cube(n_size);
        const GeneralizedCubeTopology gc(n_size);
        EXPECT_TRUE(verifyColumnIsomorphism(
            cube, gc, bitReversalIsomorphism(n_size)));
    }
}

TEST(Equivalence, WrongMapsAreRejected)
{
    const ICubeTopology cube(8);
    const OmegaTopology omega(8);
    // Identity is NOT an isomorphism ICube -> Omega.
    EXPECT_FALSE(verifyColumnIsomorphism(cube, omega,
                                         identityIsomorphism(8)));
    // Malformed maps are rejected.
    ColumnMaps broken = identityIsomorphism(8);
    broken[1][0] = broken[1][1];
    EXPECT_FALSE(verifyColumnIsomorphism(cube, cube, broken));
    broken = identityIsomorphism(8);
    broken.pop_back();
    EXPECT_FALSE(verifyColumnIsomorphism(cube, cube, broken));
}

TEST(Equivalence, SearchFindsAllPairwiseIsosAtN8)
{
    // The paper's premise: the cube-type networks are all
    // topologically equivalent.  Verify every pair at N=8 by
    // search.
    const Label n_size = 8;
    const ICubeTopology cube(n_size);
    const GeneralizedCubeTopology gc(n_size);
    const OmegaTopology omega(n_size);
    const BaselineTopology baseline(n_size);
    const FlipTopology flip(n_size);
    const MultistageTopology *nets[] = {&cube, &gc, &omega,
                                        &baseline, &flip};
    for (const auto *a : nets) {
        for (const auto *b : nets) {
            const auto maps = findLayeredIsomorphism(*a, *b);
            ASSERT_TRUE(maps.has_value())
                << a->name() << " vs " << b->name();
            EXPECT_TRUE(verifyColumnIsomorphism(*a, *b, *maps));
        }
    }
}

TEST(Equivalence, SearchFindsOmegaIsoAtN4)
{
    const ICubeTopology cube(4);
    const OmegaTopology omega(4);
    const auto maps = findLayeredIsomorphism(cube, omega);
    ASSERT_TRUE(maps.has_value());
    EXPECT_TRUE(verifyColumnIsomorphism(cube, omega, *maps));
}

TEST(Equivalence, SearchRejectsBrokenNetwork)
{
    // A "cube" whose stage-0 exchange forms a single 8-cycle
    // (all +1 shifts) is not isomorphic to the ICube.
    class ShiftNet : public MultistageTopology
    {
      public:
        explicit ShiftNet(Label n) : MultistageTopology(n) {}
        std::string name() const override { return "ShiftNet"; }
        std::vector<Link>
        outLinks(unsigned stage, Label j) const override
        {
            if (stage == 0) {
                return {{stage, j, j, LinkKind::Straight},
                        {stage, j,
                         static_cast<Label>((j + 1) % size()),
                         LinkKind::Exchange}};
            }
            const auto ex =
                static_cast<Label>(flipBit(j, stage));
            return {{stage, j, j, LinkKind::Straight},
                    {stage, j, ex, LinkKind::Exchange}};
        }
    };
    const ShiftNet shifted(8);
    const ICubeTopology cube(8);
    EXPECT_FALSE(findLayeredIsomorphism(cube, shifted).has_value());
}

TEST(Equivalence, SizeMismatchIsNotIsomorphic)
{
    const ICubeTopology a(4);
    const ICubeTopology b(8);
    EXPECT_FALSE(findLayeredIsomorphism(a, b).has_value());
    EXPECT_FALSE(
        verifyColumnIsomorphism(a, b, identityIsomorphism(4)));
}

} // namespace
} // namespace iadm
