/**
 * @file
 * Fault model tests: FaultSet semantics, the switch-to-link blockage
 * transformation, and the injection policies.
 */

#include <gtest/gtest.h>

#include "fault/fault_set.hpp"
#include "fault/injection.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using fault::FaultSet;
using topo::IadmTopology;
using topo::Link;
using topo::LinkKind;

TEST(FaultSet, BlockUnblock)
{
    IadmTopology t(8);
    FaultSet fs;
    const Link l = t.plusLink(1, 3);
    EXPECT_FALSE(fs.isBlocked(l));
    fs.blockLink(l);
    EXPECT_TRUE(fs.isBlocked(l));
    EXPECT_EQ(fs.count(), 1u);
    fs.unblockLink(l);
    EXPECT_FALSE(fs.isBlocked(l));
    EXPECT_TRUE(fs.empty());
}

TEST(FaultSet, DistinguishesParallelLastStageLinks)
{
    // The two physical +-2^{n-1} links share endpoints but block
    // independently.
    IadmTopology t(8);
    FaultSet fs;
    fs.blockLink(t.plusLink(2, 0));
    EXPECT_TRUE(fs.isBlocked(t.plusLink(2, 0)));
    EXPECT_FALSE(fs.isBlocked(t.minusLink(2, 0)));
    EXPECT_EQ(t.plusLink(2, 0).to, t.minusLink(2, 0).to);
}

TEST(FaultSet, BlockSwitchBlocksAllInputs)
{
    IadmTopology t(16);
    FaultSet fs;
    fs.blockSwitch(t, 2, 5);
    for (const Link &l : t.inLinks(2, 5))
        EXPECT_TRUE(fs.isBlocked(l));
    EXPECT_EQ(fs.count(), 3u);
}

TEST(FaultSet, BlockInputSwitchBlocksItsOutputs)
{
    IadmTopology t(16);
    FaultSet fs;
    fs.blockSwitch(t, 0, 5);
    for (const Link &l : t.outLinks(0, 5))
        EXPECT_TRUE(fs.isBlocked(l));
}

TEST(FaultSet, ClearAndStr)
{
    IadmTopology t(8);
    FaultSet fs;
    fs.blockLink(t.straightLink(0, 1));
    fs.blockLink(t.minusLink(1, 2));
    EXPECT_EQ(fs.count(), 2u);
    EXPECT_NE(fs.str(), "{}");
    fs.clear();
    EXPECT_TRUE(fs.empty());
    EXPECT_EQ(fs.str(), "{}");
}

TEST(FaultSet, MergeUnionsBlockages)
{
    IadmTopology t(8);
    FaultSet a, b;
    a.blockLink(t.plusLink(0, 1));
    b.blockLink(t.minusLink(1, 2));
    b.blockLink(t.plusLink(0, 1)); // overlap
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_TRUE(a.isBlocked(t.plusLink(0, 1)));
    EXPECT_TRUE(a.isBlocked(t.minusLink(1, 2)));
}

TEST(FaultSet, RefcountedClaimsComposeAndUnwind)
{
    // Two independent blockage sources on the same link: releasing
    // one must not unblock it (the transient-overlap bug class).
    IadmTopology t(8);
    FaultSet fs;
    const Link l = t.straightLink(1, 3);
    fs.blockLink(l); // e.g. a static fault
    fs.blockLink(l); // e.g. an overlapping transient window
    EXPECT_EQ(fs.refcount(l), 2u);
    EXPECT_EQ(fs.count(), 1u); // links, not claims
    fs.unblockLink(l);
    EXPECT_TRUE(fs.isBlocked(l)) << "first release cleared a claim "
                                    "it did not own";
    EXPECT_EQ(fs.refcount(l), 1u);
    fs.unblockLink(l);
    EXPECT_FALSE(fs.isBlocked(l));
    EXPECT_EQ(fs.refcount(l), 0u);
    EXPECT_TRUE(fs.empty());
}

TEST(FaultSet, UnmatchedUnblockIsANoOp)
{
    IadmTopology t(8);
    FaultSet fs;
    const Link l = t.plusLink(0, 2);
    const std::uint64_t v0 = fs.version();
    fs.unblockLink(l); // nothing to release
    EXPECT_EQ(fs.version(), v0) << "no-op release bumped version";
    fs.blockLink(t.minusLink(2, 4));
    fs.unblockLink(l); // still not blocked
    EXPECT_TRUE(fs.isBlocked(t.minusLink(2, 4)));
    EXPECT_EQ(fs.count(), 1u);
}

TEST(FaultSet, EveryMutationBumpsVersion)
{
    // RouteCache epochs key off version(): any blocked-set change
    // must move it, including claim releases that keep the link
    // blocked (a spurious invalidation is safe; a missed one is
    // not... and claim counts are not observable by routing).
    IadmTopology t(8);
    FaultSet fs;
    const Link l = t.straightLink(0, 1);
    std::uint64_t v = fs.version();
    fs.blockLink(l);
    EXPECT_NE(fs.version(), v);
    v = fs.version();
    fs.blockLink(l); // second claim, link already blocked
    EXPECT_NE(fs.version(), v);
    v = fs.version();
    fs.unblockLink(l); // release, link stays blocked
    EXPECT_NE(fs.version(), v);
    v = fs.version();
    fs.unblockLink(l); // last release, link unblocks
    EXPECT_NE(fs.version(), v);
}

TEST(FaultSet, MergeAddsClaimCounts)
{
    IadmTopology t(8);
    FaultSet a, b;
    const Link l = t.plusLink(0, 1);
    a.blockLink(l);
    b.blockLink(l);
    a.merge(b);
    EXPECT_EQ(a.refcount(l), 2u);
    a.unblockLink(l);
    EXPECT_TRUE(a.isBlocked(l)) << "merged claim was not additive";
    a.unblockLink(l);
    EXPECT_TRUE(a.empty());
}

TEST(Injection, RandomLinkFaultsCount)
{
    IadmTopology t(16);
    Rng rng(1);
    for (std::size_t count : {0u, 1u, 5u, 20u}) {
        const FaultSet fs = fault::randomLinkFaults(t, count, rng);
        EXPECT_EQ(fs.count(), count);
    }
}

TEST(Injection, RandomNonstraightOnly)
{
    IadmTopology t(16);
    Rng rng(2);
    const FaultSet fs = fault::randomNonstraightFaults(t, 25, rng);
    EXPECT_EQ(fs.count(), 25u);
    for (const Link &l : t.allLinks()) {
        if (l.kind == LinkKind::Straight) {
            EXPECT_FALSE(fs.isBlocked(l)) << l.str();
        }
    }
}

TEST(Injection, BernoulliExtremes)
{
    IadmTopology t(8);
    Rng rng(3);
    EXPECT_TRUE(fault::bernoulliLinkFaults(t, 0.0, rng).empty());
    const FaultSet all = fault::bernoulliLinkFaults(t, 1.0, rng);
    EXPECT_EQ(all.count(), t.allLinks().size());
}

TEST(Injection, SwitchFaultsBlockTriples)
{
    IadmTopology t(16);
    Rng rng(4);
    const FaultSet fs = fault::randomSwitchFaults(t, 3, rng);
    // Distinct switches have disjoint input link triples.
    EXPECT_EQ(fs.count(), 9u);
}

TEST(Injection, DoubleNonstraightFaults)
{
    IadmTopology t(16);
    Rng rng(5);
    const FaultSet fs =
        fault::randomDoubleNonstraightFaults(t, 4, rng);
    EXPECT_EQ(fs.count(), 8u);
    for (const Link &l : t.allLinks())
        if (l.kind == LinkKind::Straight) {
            EXPECT_FALSE(fs.isBlocked(l));
        }
    // Blocked links come in per-switch pairs.
    unsigned pairs = 0;
    for (unsigned i = 0; i < t.stages(); ++i) {
        for (Label j = 0; j < t.size(); ++j) {
            const bool p = fs.isBlocked(t.plusLink(i, j));
            const bool m = fs.isBlocked(t.minusLink(i, j));
            EXPECT_EQ(p, m) << "stage " << i << " switch " << j;
            pairs += (p && m) ? 1 : 0;
        }
    }
    EXPECT_EQ(pairs, 4u);
}

TEST(Injection, Deterministic)
{
    IadmTopology t(32);
    Rng a(77), b(77);
    const FaultSet fa = fault::randomLinkFaults(t, 10, a);
    const FaultSet fb = fault::randomLinkFaults(t, 10, b);
    EXPECT_EQ(fa.keys(), fb.keys());
}

TEST(BlockageKind, Names)
{
    EXPECT_STREQ(fault::blockageKindName(fault::BlockageKind::None),
                 "none");
    EXPECT_STREQ(
        fault::blockageKindName(fault::BlockageKind::Straight),
        "straight");
    EXPECT_STREQ(
        fault::blockageKindName(fault::BlockageKind::Nonstraight),
        "nonstraight");
    EXPECT_STREQ(fault::blockageKindName(
                     fault::BlockageKind::DoubleNonstraight),
                 "double-nonstraight");
}

} // namespace
} // namespace iadm
