/**
 * @file
 * Golden-equivalence fixture for the simulator hot path.
 *
 * The flattened hot path (link tables, queue arena, cached TSDT
 * paths) must be a pure re-implementation: a fixed sweep grid over
 * all five routing schemes at N = 64, with static faults AND
 * transient blockages, must produce an iadm-sweep-v1 report that is
 * byte-identical to the fixture captured from the seed simulator
 * (tests/data/golden_sweep_n64.json).  The iadm-sweep-v1
 * determinism guarantee (same grid => same bytes, any worker count)
 * turns behavioural equivalence into a straight file diff.
 *
 * Regenerating (only after an *intentional* behaviour change):
 *   IADM_REGEN_GOLDEN=1 ./golden_sweep_test
 * and commit the updated fixture with an explanation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;

#ifndef IADM_TEST_DATA_DIR
#error "IADM_TEST_DATA_DIR must point at tests/data"
#endif

const char *const kFixturePath =
    IADM_TEST_DATA_DIR "/golden_sweep_n64.json";

/** The frozen grid.  Changing anything here invalidates the fixture. */
SweepGrid
goldenGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 6}};
    grid.traffics = {TrafficSpec{}};
    grid.replicates = 2;
    grid.warmupCycles = 200;
    grid.measureCycles = 1200;
    grid.masterSeed = 20260806;
    return grid;
}

/**
 * Transient-blockage storm, derived entirely from the replicate's
 * scenario rng so the schedule is part of the frozen grid: 16 random
 * links each go down for 100-300 cycles inside the measure window.
 */
SweepOptions
goldenOptions()
{
    SweepOptions opts;
    opts.workers = 2;
    opts.setup = [](NetworkSim &s, const SweepCell &cell, Rng &rng) {
        const topo::IadmTopology topo(cell.netSize);
        for (int k = 0; k < 16; ++k) {
            const auto stage =
                static_cast<unsigned>(rng.uniform(topo.stages()));
            const auto j = static_cast<Label>(
                rng.uniform(cell.netSize));
            const auto kind = rng.uniform(3);
            const topo::Link link =
                kind == 0   ? topo.straightLink(stage, j)
                : kind == 1 ? topo.plusLink(stage, j)
                            : topo.minusLink(stage, j);
            const Cycle from = 250 + rng.uniform(900);
            const Cycle len = 100 + rng.uniform(200);
            s.scheduleTransientBlockage(link, from, from + len);
        }
    };
    return opts;
}

std::string
runGolden()
{
    const SweepGrid grid = goldenGrid();
    const auto results = runSweep(grid, goldenOptions());
    return sweepReportJson(grid, results); // wall clock off: frozen
}

TEST(GoldenSweep, FlattenedSimulatorMatchesSeedFixtureByteForByte)
{
    const std::string report = runGolden();

    if (std::getenv("IADM_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(kFixturePath, std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << kFixturePath;
        os << report;
        GTEST_SKIP() << "fixture regenerated at " << kFixturePath;
    }

    std::ifstream is(kFixturePath, std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << kFixturePath
                    << " (run with IADM_REGEN_GOLDEN=1 to create)";
    std::ostringstream fixture;
    fixture << is.rdbuf();

    // Byte-for-byte: any drift in routing decisions, rng draw order,
    // metrics accounting or JSON formatting fails here.
    ASSERT_EQ(report.size(), fixture.str().size());
    EXPECT_TRUE(report == fixture.str())
        << "simulator output diverged from the golden fixture";
}

// --- faulted fixture: the route cache's home turf -----------------

const char *const kFaultedFixturePath =
    IADM_TEST_DATA_DIR "/golden_sweep_n64_faulted.json";

/**
 * The frozen faulted grid: every blockage class REROUTE
 * distinguishes (nonstraight, straight-containing random links, and
 * double-nonstraight) crossed with all five schemes, so the cached
 * REROUTE replay is pinned for Corollary 4.1 flips, BACKTRACK
 * rewrites and FAIL outcomes alike.
 */
SweepGrid
goldenFaultedGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.faults = {
        FaultScenario{FaultScenario::Kind::Nonstraight, 4},
        FaultScenario{FaultScenario::Kind::RandomLinks, 6},
        FaultScenario{FaultScenario::Kind::DoubleNonstraight, 2}};
    grid.traffics = {TrafficSpec{}};
    grid.replicates = 2;
    grid.warmupCycles = 200;
    grid.measureCycles = 1200;
    grid.masterSeed = 20260807;
    return grid;
}

/** Drop the route_cache_* report lines (hit/miss counts are the one
 *  part of the report allowed to differ when the cache is toggled). */
std::string
stripCacheStats(const std::string &report)
{
    std::istringstream is(report);
    std::ostringstream os;
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("route_cache") == std::string::npos)
            os << line << '\n';
    }
    return os.str();
}

TEST(GoldenSweep, FaultedGridMatchesFixtureByteForByte)
{
    SweepOptions opts;
    opts.workers = 2;
    const SweepGrid grid = goldenFaultedGrid();
    const std::string report =
        sweepReportJson(grid, runSweep(grid, opts));

    if (std::getenv("IADM_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(kFaultedFixturePath, std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << kFaultedFixturePath;
        os << report;
        GTEST_SKIP() << "fixture regenerated at "
                     << kFaultedFixturePath;
    }

    std::ifstream is(kFaultedFixturePath, std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << kFaultedFixturePath
                    << " (run with IADM_REGEN_GOLDEN=1 to create)";
    std::ostringstream fixture;
    fixture << is.rdbuf();
    ASSERT_EQ(report.size(), fixture.str().size());
    EXPECT_TRUE(report == fixture.str())
        << "faulted sweep diverged from the golden fixture";
}

TEST(GoldenSweep, RouteCacheDoesNotChangeRoutingResults)
{
    // The same faulted grid with the cache force-disabled must
    // reproduce the cached report exactly, save for the hit/miss
    // counters themselves: memoization is a speed change, never a
    // routing change.
    SweepGrid grid = goldenFaultedGrid();
    grid.replicates = 1; // half the runtime; same determinism claim

    SweepOptions cached;
    cached.workers = 2;
    const std::string with_cache =
        sweepReportJson(grid, runSweep(grid, cached));

    SweepOptions uncached;
    uncached.workers = 2;
    uncached.setup = [](NetworkSim &s, const SweepCell &,
                        Rng &) { s.setRouteCacheEnabled(false); };
    const std::string without_cache =
        sweepReportJson(grid, runSweep(grid, uncached));

    EXPECT_NE(with_cache, without_cache)
        << "cache stats should register traffic on faulted tsdt "
           "cells";
    EXPECT_EQ(stripCacheStats(with_cache),
              stripCacheStats(without_cache))
        << "disabling the route cache changed routing results";
}

} // namespace
} // namespace iadm
