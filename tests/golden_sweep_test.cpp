/**
 * @file
 * Golden-equivalence fixture for the simulator hot path.
 *
 * The flattened hot path (link tables, queue arena, cached TSDT
 * paths) must be a pure re-implementation: a fixed sweep grid over
 * all five routing schemes at N = 64, with static faults AND
 * transient blockages, must produce an iadm-sweep-v1 report that is
 * byte-identical to the fixture captured from the seed simulator
 * (tests/data/golden_sweep_n64.json).  The iadm-sweep-v1
 * determinism guarantee (same grid => same bytes, any worker count)
 * turns behavioural equivalence into a straight file diff.
 *
 * Regenerating (only after an *intentional* behaviour change):
 *   IADM_REGEN_GOLDEN=1 ./golden_sweep_test
 * and commit the updated fixture with an explanation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;

#ifndef IADM_TEST_DATA_DIR
#error "IADM_TEST_DATA_DIR must point at tests/data"
#endif

const char *const kFixturePath =
    IADM_TEST_DATA_DIR "/golden_sweep_n64.json";

/** The frozen grid.  Changing anything here invalidates the fixture. */
SweepGrid
goldenGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 6}};
    grid.traffics = {TrafficSpec{}};
    grid.replicates = 2;
    grid.warmupCycles = 200;
    grid.measureCycles = 1200;
    grid.masterSeed = 20260806;
    return grid;
}

/**
 * Transient-blockage storm, derived entirely from the replicate's
 * scenario rng so the schedule is part of the frozen grid: 16 random
 * links each go down for 100-300 cycles inside the measure window.
 */
SweepOptions
goldenOptions()
{
    SweepOptions opts;
    opts.workers = 2;
    opts.setup = [](NetworkSim &s, const SweepCell &cell, Rng &rng) {
        const topo::IadmTopology topo(cell.netSize);
        for (int k = 0; k < 16; ++k) {
            const auto stage =
                static_cast<unsigned>(rng.uniform(topo.stages()));
            const auto j = static_cast<Label>(
                rng.uniform(cell.netSize));
            const auto kind = rng.uniform(3);
            const topo::Link link =
                kind == 0   ? topo.straightLink(stage, j)
                : kind == 1 ? topo.plusLink(stage, j)
                            : topo.minusLink(stage, j);
            const Cycle from = 250 + rng.uniform(900);
            const Cycle len = 100 + rng.uniform(200);
            s.scheduleTransientBlockage(link, from, from + len);
        }
    };
    return opts;
}

std::string
runGolden()
{
    const SweepGrid grid = goldenGrid();
    const auto results = runSweep(grid, goldenOptions());
    return sweepReportJson(grid, results); // wall clock off: frozen
}

TEST(GoldenSweep, FlattenedSimulatorMatchesSeedFixtureByteForByte)
{
    const std::string report = runGolden();

    if (std::getenv("IADM_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(kFixturePath, std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << kFixturePath;
        os << report;
        GTEST_SKIP() << "fixture regenerated at " << kFixturePath;
    }

    std::ifstream is(kFixturePath, std::ios::binary);
    ASSERT_TRUE(is) << "missing fixture " << kFixturePath
                    << " (run with IADM_REGEN_GOLDEN=1 to create)";
    std::ostringstream fixture;
    fixture << is.rdbuf();

    // Byte-for-byte: any drift in routing decisions, rng draw order,
    // metrics accounting or JSON formatting fails here.
    ASSERT_EQ(report.size(), fixture.str().size());
    EXPECT_TRUE(report == fixture.str())
        << "simulator output diverged from the golden fixture";
}

} // namespace
} // namespace iadm
