/**
 * @file
 * Health-monitor suite (`ctest -L health`; also in the tsan and asan
 * presets).
 *
 * Covers, bottom-up:
 *   - the wait-for-cycle detector on hand-constructed graphs: a
 *     built deadlock is flagged deterministically after exactly
 *     `confirmScans` scans, transient cycles stay sightings, acyclic
 *     graphs stay clean,
 *   - progress-bound episode accounting (one violation per stuck
 *     episode, not per scan),
 *   - the MSER steady-state rule: warmup ramps are truncated,
 *     constant series are kept whole, short series refuse to claim
 *     stability,
 *   - simulator integration: churn-heavy N=64 runs across all five
 *     schemes pass clean, the three golden sweep grids report
 *     healthy with the monitor attached, and the monitor never
 *     perturbs the simulation (the health-on sweep report minus its
 *     additive sections is byte-identical to the health-off report),
 *   - the serve daemon: `health` wire query against a churning
 *     daemon with a live watchdog (epoch_torn == 0), and the
 *     per-request service-time histogram.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/health.hpp"
#include "obs/steady_state.hpp"
#include "serve/server.hpp"
#include "serve/server_core.hpp"
#include "serve/wire.hpp"
#include "sim/sweep.hpp"

namespace iadm {
namespace {

using namespace sim;
using obs::HealthConfig;
using obs::HealthMonitor;
using obs::SteadyStateTracker;

// ------------------------------------------------- wait-for cycles

/** One scan over an 8-queue network with the 3-cycle 0->1->2->0. */
void
scanWithCycle(HealthMonitor &hm, std::uint64_t cycle)
{
    hm.beginScan(cycle, 8);
    hm.waitEdge(0, 1);
    hm.waitEdge(1, 2);
    hm.waitEdge(2, 0);
    hm.endScan();
}

TEST(WaitForCycle, ConstructedDeadlockIsFlaggedDeterministically)
{
    HealthConfig cfg;
    cfg.confirmScans = 2;
    HealthMonitor hm(cfg);

    scanWithCycle(hm, 100);
    EXPECT_EQ(hm.report().waitCycleSightings, 1u);
    EXPECT_EQ(hm.report().deadlocks, 0u) << "one scan is a sighting";

    scanWithCycle(hm, 200);
    EXPECT_EQ(hm.report().waitCycleSightings, 2u);
    EXPECT_EQ(hm.report().deadlocks, 1u)
        << "the cycle persisted for confirmScans scans";
    EXPECT_FALSE(hm.report().healthy());

    // The same cycle persisting further is still the one deadlock.
    scanWithCycle(hm, 300);
    scanWithCycle(hm, 400);
    EXPECT_EQ(hm.report().deadlocks, 1u);
    EXPECT_EQ(hm.report().scans, 4u);
}

TEST(WaitForCycle, TransientCycleNeverConfirms)
{
    HealthConfig cfg;
    cfg.confirmScans = 2;
    HealthMonitor hm(cfg);

    // Seen, dissolved, seen again: the streak resets in between, so
    // it can never reach confirmScans.
    scanWithCycle(hm, 100);
    hm.beginScan(200, 8); // churn repaired something: no cycle
    hm.endScan();
    scanWithCycle(hm, 300);
    EXPECT_EQ(hm.report().waitCycleSightings, 2u);
    EXPECT_EQ(hm.report().deadlocks, 0u);
    EXPECT_TRUE(hm.report().healthy());
}

TEST(WaitForCycle, AcyclicWaitChainsAreClean)
{
    HealthMonitor hm;
    for (int s = 0; s < 4; ++s) {
        // Forward-traffic shape: stage s waits only on stage s+1.
        hm.beginScan(100 * (s + 1), 8);
        hm.waitEdge(0, 1);
        hm.waitEdge(1, 2);
        hm.waitEdge(2, 3);
        hm.waitEdge(5, 6);
        hm.endScan();
    }
    EXPECT_EQ(hm.report().waitCycleSightings, 0u);
    EXPECT_EQ(hm.report().deadlocks, 0u);
}

TEST(WaitForCycle, TailLeadingIntoACycleCountsItOnce)
{
    HealthMonitor hm;
    hm.beginScan(100, 8);
    hm.waitEdge(5, 0); // tail merging into the cycle
    hm.waitEdge(0, 1);
    hm.waitEdge(1, 2);
    hm.waitEdge(2, 0);
    hm.endScan();
    EXPECT_EQ(hm.report().waitCycleSightings, 1u)
        << "the tail's walk and the cycle's own walk found the same "
           "cycle twice";
}

TEST(WaitForCycle, DisjointCyclesCountSeparately)
{
    HealthConfig cfg;
    cfg.confirmScans = 2;
    HealthMonitor hm(cfg);
    for (int i = 0; i < 2; ++i) {
        hm.beginScan(100 * (i + 1), 8);
        hm.waitEdge(0, 1);
        hm.waitEdge(1, 0);
        hm.waitEdge(4, 5);
        hm.waitEdge(5, 6);
        hm.waitEdge(6, 4);
        hm.endScan();
    }
    EXPECT_EQ(hm.report().waitCycleSightings, 4u);
    EXPECT_EQ(hm.report().deadlocks, 2u);
}

// ------------------------------------------------- progress bound

TEST(ProgressBound, EachStuckEpisodeCountsOnce)
{
    HealthConfig cfg;
    cfg.progressBound = 100;
    HealthMonitor hm(cfg);
    const auto scanStuck = [&](std::uint64_t cycle,
                               std::uint64_t stuck) {
        hm.beginScan(cycle, 8);
        hm.headStuck(3, stuck);
        hm.endScan();
    };

    scanStuck(100, 50); // below the bound
    EXPECT_EQ(hm.report().progressViolations, 0u);
    scanStuck(200, 120); // crosses the bound: one violation
    EXPECT_EQ(hm.report().progressViolations, 1u);
    scanStuck(300, 184); // same episode, still stuck: no recount
    EXPECT_EQ(hm.report().progressViolations, 1u);
    scanStuck(400, 10); // the head moved: episode over
    EXPECT_EQ(hm.report().progressViolations, 1u);
    scanStuck(500, 150); // a fresh episode crosses the bound
    EXPECT_EQ(hm.report().progressViolations, 2u);
    EXPECT_EQ(hm.report().maxHeadStall, 184u);
}

TEST(ProgressBound, ZeroBoundDisablesTheCheck)
{
    HealthConfig cfg;
    cfg.progressBound = 0;
    HealthMonitor hm(cfg);
    hm.beginScan(100, 8);
    hm.headStuck(1, 1u << 30);
    hm.endScan();
    EXPECT_EQ(hm.report().progressViolations, 0u);
    EXPECT_EQ(hm.report().maxHeadStall, 1u << 30)
        << "the stall gauge still tracks with the check disabled";
}

TEST(Progress, NoteDeliveredAdvancesOnlyOnNewDeliveries)
{
    HealthMonitor hm;
    hm.noteDelivered(10, 5);
    EXPECT_EQ(hm.report().lastProgressCycle, 10u);
    hm.noteDelivered(20, 5); // nothing new delivered
    EXPECT_EQ(hm.report().lastProgressCycle, 10u);
    hm.noteDelivered(30, 7);
    EXPECT_EQ(hm.report().lastProgressCycle, 30u);
}

// ------------------------------------------------- MSER steady state

TEST(SteadyState, ShortSeriesRefusesToClaimStability)
{
    SteadyStateTracker t;
    for (int i = 0; i < 4; ++i)
        t.addWindow(0.1 * (i + 1), 10.0);
    const auto r = t.analyze();
    EXPECT_FALSE(r.stable);
    EXPECT_EQ(r.windows, 4u);
    EXPECT_EQ(r.truncatedWindows, 0u);
    EXPECT_DOUBLE_EQ(r.steadyThroughput, r.wholeThroughput);
    EXPECT_DOUBLE_EQ(r.steadyAvgLatency, r.wholeAvgLatency);
}

TEST(SteadyState, MserTruncatesTheWarmupRamp)
{
    // 8 ramp windows (queues filling) then 24 flat windows: MSER
    // must delete exactly the ramp — a constant suffix has zero
    // standard error, and ties prefer the smallest deletion point.
    SteadyStateTracker t;
    for (int i = 0; i < 8; ++i)
        t.addWindow(0.1 * (i + 1), 50.0);
    for (int i = 0; i < 24; ++i)
        t.addWindow(1.0, 20.0);
    const auto r = t.analyze();
    EXPECT_TRUE(r.stable);
    EXPECT_EQ(r.windows, 32u);
    EXPECT_EQ(r.truncatedWindows, 8u);
    EXPECT_DOUBLE_EQ(r.steadyThroughput, 1.0);
    EXPECT_DOUBLE_EQ(r.steadyAvgLatency, 20.0);
    EXPECT_LT(r.wholeThroughput, r.steadyThroughput)
        << "the ramp drags the whole-run average down";
    EXPECT_GT(r.wholeAvgLatency, r.steadyAvgLatency);
}

TEST(SteadyState, ConstantSeriesKeepsEveryWindow)
{
    SteadyStateTracker t;
    for (int i = 0; i < 16; ++i)
        t.addWindow(0.5, 12.0);
    const auto r = t.analyze();
    EXPECT_TRUE(r.stable);
    EXPECT_EQ(r.truncatedWindows, 0u);
    EXPECT_DOUBLE_EQ(r.steadyThroughput, 0.5);
    EXPECT_DOUBLE_EQ(r.steadyThroughput, r.wholeThroughput);
}

// ------------------------------------------------- sim integration

TEST(SimHealth, ChurnHeavyRunPassesCleanForEveryScheme)
{
    // The liveness acceptance: a churn-heavy N=64 run — the regime
    // where park-and-retry could in principle starve — must report
    // zero deadlocks and zero progress violations for all five
    // schemes.  The load is heavy in *churn* (geometric MTBF 500 /
    // MTTR 100 across every link) but below saturation in rate, so
    // any violation is a liveness bug, not an offered-load artifact.
    for (const RoutingScheme scheme :
         {RoutingScheme::SsdtStatic, RoutingScheme::SsdtBalanced,
          RoutingScheme::TsdtSender, RoutingScheme::DistanceTag,
          RoutingScheme::TsdtDynamic}) {
        SimConfig cfg;
        cfg.netSize = 64;
        cfg.scheme = scheme;
        cfg.injectionRate = 0.15;
        cfg.seed = 20260807;
        cfg.maxPacketAge = 600;
        NetworkSim s(cfg,
                     std::make_unique<UniformTraffic>(cfg.netSize));
        const auto churn = ChurnSpec::parse("geometric:500:100");
        ASSERT_TRUE(churn.has_value());
        s.addFaultProcess(churn->make(s.topology(), 0x4ea17u));
        obs::HealthConfig hc;
        hc.progressBound = 2000;
        obs::HealthMonitor monitor(hc);
        s.setHealthMonitor(&monitor);
        s.run(4000);

        const auto &rep = monitor.report();
        EXPECT_TRUE(rep.healthy())
            << routingSchemeName(scheme) << ": deadlocks="
            << rep.deadlocks
            << " violations=" << rep.progressViolations;
        EXPECT_GT(rep.scans, 0u);
        EXPECT_GT(monitor.steadyState().windowCount(), 0u);
        EXPECT_GT(rep.lastProgressCycle, 0u)
            << "a 4000-cycle churn run must deliver something";
    }
}

// The three golden grids, restated from golden_sweep_test.cpp /
// churn_test.cpp (the fixtures freeze them; restating keeps this
// suite self-contained).
SweepGrid
goldenGrid()
{
    SweepGrid grid;
    grid.netSizes = {64};
    grid.schemes = {RoutingScheme::SsdtStatic,
                    RoutingScheme::SsdtBalanced,
                    RoutingScheme::TsdtSender,
                    RoutingScheme::DistanceTag,
                    RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.25};
    grid.queueCapacities = {4};
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 6}};
    grid.traffics = {TrafficSpec{}};
    grid.replicates = 2;
    grid.warmupCycles = 200;
    grid.measureCycles = 1200;
    grid.masterSeed = 20260806;
    return grid;
}

SweepGrid
goldenFaultedGrid()
{
    SweepGrid grid = goldenGrid();
    grid.faults = {
        FaultScenario{FaultScenario::Kind::Nonstraight, 4},
        FaultScenario{FaultScenario::Kind::RandomLinks, 6},
        FaultScenario{FaultScenario::Kind::DoubleNonstraight, 2}};
    grid.masterSeed = 20260807;
    return grid;
}

SweepGrid
goldenChurnGrid()
{
    SweepGrid grid = goldenGrid();
    grid.faults = {FaultScenario{FaultScenario::Kind::RandomLinks, 4}};
    grid.churns = {ChurnSpec::parse("geometric:500:100").value()};
    grid.measureCycles = 1000;
    grid.masterSeed = 20260807;
    grid.maxPacketAge = 600;
    return grid;
}

/** goldenGrid()'s transient-blockage storm (golden_sweep_test.cpp). */
void
goldenTransientSetup(NetworkSim &s, const SweepCell &cell, Rng &rng)
{
    const topo::IadmTopology topo(cell.netSize);
    for (int k = 0; k < 16; ++k) {
        const auto stage =
            static_cast<unsigned>(rng.uniform(topo.stages()));
        const auto j = static_cast<Label>(rng.uniform(cell.netSize));
        const auto kind = rng.uniform(3);
        const topo::Link link =
            kind == 0   ? topo.straightLink(stage, j)
            : kind == 1 ? topo.plusLink(stage, j)
                        : topo.minusLink(stage, j);
        const Cycle from = 250 + rng.uniform(900);
        const Cycle len = 100 + rng.uniform(200);
        s.scheduleTransientBlockage(link, from, from + len);
    }
}

/** Every replicate of a health-on sweep must carry a clean report. */
void
expectAllHealthy(const std::vector<CellResult> &results,
                 const char *what)
{
    std::size_t replicates = 0;
    for (const auto &cell : results) {
        for (const auto &rep : cell.replicates) {
            ++replicates;
            ASSERT_TRUE(rep.healthEnabled) << what;
            EXPECT_TRUE(rep.health.healthy())
                << what << " " << routingSchemeName(cell.cell.scheme)
                << ": deadlocks=" << rep.health.deadlocks
                << " violations=" << rep.health.progressViolations;
            EXPECT_GT(rep.health.scans, 0u) << what;
        }
    }
    EXPECT_GT(replicates, 0u) << what;
}

TEST(SimHealth, AllThreeGoldenGridsReportClean)
{
    SweepOptions opts;
    opts.workers = 2;
    opts.health = true;

    SweepOptions transient = opts;
    transient.setup = goldenTransientSetup;
    expectAllHealthy(runSweep(goldenGrid(), transient), "transient");
    expectAllHealthy(runSweep(goldenFaultedGrid(), opts), "faulted");
    expectAllHealthy(runSweep(goldenChurnGrid(), opts), "churn");
}

TEST(SimHealth, MonitorNeverPerturbsTheSweepReport)
{
    // Byte-identity two ways.  First: the monitor must not change
    // the simulation — a health-on run whose additive sections are
    // suppressed renders byte-identical to a health-off run.
    // Second: the sections really are additive — present only with
    // health on.
    SweepGrid grid = goldenChurnGrid();
    grid.netSizes = {16};
    grid.measureCycles = 600; // small: this is a purity check

    SweepOptions off;
    off.workers = 2;
    const std::string plain =
        sweepReportJson(grid, runSweep(grid, off));
    EXPECT_EQ(plain.find("\"health\""), std::string::npos);
    EXPECT_EQ(plain.find("\"steady_state\""), std::string::npos);

    SweepOptions on = off;
    on.health = true;
    auto results = runSweep(grid, on);
    const std::string with =
        sweepReportJson(grid, results);
    EXPECT_NE(with.find("\"health\""), std::string::npos);
    EXPECT_NE(with.find("\"deadlocks\": 0"), std::string::npos);
    EXPECT_NE(with.find("\"steady_state\""), std::string::npos);

    for (auto &cell : results)
        for (auto &rep : cell.replicates)
            rep.healthEnabled = false; // suppress the new sections
    EXPECT_EQ(sweepReportJson(grid, results), plain)
        << "attaching the monitor changed the simulation itself";
}

// ------------------------------------------------- serve daemon

TEST(ServeHealth, WireParsesHealthOpAndPairElements)
{
    const auto r = serve::parseRequest(R"({"id":3,"op":"health"})");
    EXPECT_EQ(r.op, serve::Request::Op::Health);
    EXPECT_EQ(r.id, 3u);

    std::string out;
    serve::ResponseWriter w(out, 1);
    w.beginArray("hist");
    w.pairElement(4, 9);
    w.pairElement(8, 2);
    w.endArray();
    w.finish();
    EXPECT_EQ(out, "{\"id\":1,\"hist\":[[4,9],[8,2]]}\n");
}

TEST(ServeHealth, ServiceHistogramCountsEveryRequest)
{
    serve::ServeConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = sim::RoutingScheme::TsdtSender;
    serve::ServerCore core(cfg);

    std::vector<serve::Request> reqs;
    for (std::uint64_t i = 0; i < 16; ++i) {
        serve::Request r;
        r.op = serve::Request::Op::Route;
        r.id = i + 1;
        r.src = static_cast<Label>(i);
        r.dst = static_cast<Label>(15 - i);
        reqs.push_back(r);
    }
    std::string out;
    core.resolveBatch(reqs.data(), 5, out);
    core.resolveBatch(reqs.data() + 5, 1, out);
    core.resolveBatch(reqs.data() + 6, 10, out);

    const auto st = core.statsSnapshot();
    EXPECT_EQ(st.serviceSamples, 16u);
    EXPECT_EQ(st.serviceSamples, st.requests);
    std::uint64_t sum = 0;
    for (const auto c : st.serviceHist)
        sum += c;
    EXPECT_EQ(sum, st.serviceSamples);
    EXPECT_GE(st.servicePercentileUs(0.99),
              st.servicePercentileUs(0.50));
    EXPECT_GT(st.lastProgressEpoch + 1, 0u); // present (may be 0)

    // The stats response carries the histogram fields.
    serve::Request stats;
    stats.op = serve::Request::Op::Stats;
    stats.id = 99;
    std::string sout;
    core.resolveBatch(&stats, 1, sout);
    EXPECT_NE(sout.find("\"service_samples\":"), std::string::npos)
        << sout;
    EXPECT_NE(sout.find("\"service_p50_us\":"), std::string::npos);
    EXPECT_NE(sout.find("\"service_p99_us\":"), std::string::npos);
    EXPECT_NE(sout.find("\"service_hist\":[["), std::string::npos);
}

/** Blocking test client with a wedge-detection receive timeout. */
class Client
{
  public:
    explicit Client(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
        timeval tv{};
        tv.tv_sec = 10;
        if (connected_)
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
    }
    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    bool send(const std::string &s)
    {
        std::size_t off = 0;
        while (off < s.size()) {
            const ssize_t n = ::send(fd_, s.data() + off,
                                     s.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    std::string recvLine()
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return {};
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
    std::string buf_;
};

std::uint64_t
jsonInt(const std::string &line, const std::string &key)
{
    const auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " in " << line;
    if (pos == std::string::npos)
        return 0;
    return std::strtoull(line.c_str() + pos + key.size() + 3,
                         nullptr, 10);
}

TEST(ServeHealth, HealthQueryAnswersAgainstChurningDaemon)
{
    // The serve acceptance: a churning daemon with a live watchdog
    // answers the health query with status "ok", a zero torn-epoch
    // counter, and an advancing last-progress epoch.
    serve::ServeConfig cfg;
    cfg.netSize = 64;
    cfg.scheme = sim::RoutingScheme::TsdtSender;
    cfg.seed = 3;
    cfg.tickUs = 200;
    const auto churn = sim::ChurnSpec::parse("bernoulli:0.02:0.1");
    ASSERT_TRUE(churn.has_value());
    cfg.churn = *churn;

    const topo::IadmTopology net(cfg.netSize);
    fault::FaultSet faults;
    std::string err;
    ASSERT_TRUE(serve::ServerCore::parseFaultArg(
        net, "links:8", cfg.seed, faults, err))
        << err;
    serve::ServerCore core(cfg, std::move(faults));
    serve::RouteServer server(
        core, "/tmp/iadm_health_test_" +
                  std::to_string(::getpid()) + ".sock");
    ASSERT_TRUE(server.start(&err)) << err;
    std::thread loop([&] { server.run(); });
    serve::ChurnTicker ticker(core);
    serve::HealthWatchdog watchdog(core);

    Client c(server.socketPath());
    ASSERT_TRUE(c.connected());
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(c.send("{\"id\":" + std::to_string(i + 1) +
                           ",\"op\":\"route\",\"src\":" +
                           std::to_string(i % 64) + ",\"dst\":" +
                           std::to_string((i * 7) % 64) + "}\n"));
        ASSERT_FALSE(c.recvLine().empty()) << "daemon wedged";
    }

    // Poll until the watchdog has visibly beaten (its thread races
    // this client; tickUs=200 means beats arrive within ~ms).
    std::string line;
    for (int tries = 0; tries < 100; ++tries) {
        ASSERT_TRUE(c.send("{\"id\":777,\"op\":\"health\"}\n"));
        line = c.recvLine();
        ASSERT_FALSE(line.empty()) << "daemon wedged on health";
        if (jsonInt(line, "watchdog_ticks") > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    EXPECT_NE(line.find("\"op\":\"health\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"uptime_windows\":["), std::string::npos)
        << line;
    EXPECT_EQ(jsonInt(line, "epoch_torn"), 0u) << line;
    EXPECT_GT(jsonInt(line, "watchdog_ticks"), 0u) << line;
    EXPECT_GE(jsonInt(line, "requests"), 50u) << line;
    EXPECT_GT(jsonInt(line, "last_progress_epoch"), 0u)
        << "batches completed, so the progress epoch must be pinned: "
        << line;
    EXPECT_GE(jsonInt(line, "epoch"),
              jsonInt(line, "last_progress_epoch"))
        << line;

    server.stop();
    loop.join();
    const auto st = core.statsSnapshot();
    EXPECT_EQ(st.epochTorn, 0u);
    EXPECT_GT(st.churnTicks, 0u);
}

} // namespace
} // namespace iadm
