/**
 * @file
 * Hardware model tests: gate-level blocks equal the functional
 * models exhaustively, and gate counts reproduce the paper's
 * "less complex hardware" claim (constant SDT switches versus
 * O(log N) distance-tag switches).
 */

#include <gtest/gtest.h>

#include "core/ssdt.hpp"
#include "core/tsdt.hpp"
#include "hw/adder.hpp"
#include "hw/switch_logic.hpp"

namespace iadm {
namespace {

using namespace hw;
using topo::LinkKind;

TEST(RippleAdder, MatchesIntegerAdditionExhaustively)
{
    for (unsigned w : {1u, 2u, 4u, 6u}) {
        const RippleAdder adder(w);
        const std::uint64_t mod = std::uint64_t{1} << w;
        for (std::uint64_t a = 0; a < mod; ++a)
            for (std::uint64_t b = 0; b < mod; ++b)
                for (unsigned c = 0; c < 2; ++c)
                    EXPECT_EQ(adder.add(a, b, c), (a + b + c) % mod);
    }
}

TEST(RippleAdder, GateCountLinear)
{
    EXPECT_EQ(RippleAdder(4).gates().equivalents() * 2,
              RippleAdder(8).gates().equivalents());
    EXPECT_EQ(RippleAdder(8).gates().xorGates, 16u);
}

TEST(TwosComplementer, MatchesNegationExhaustively)
{
    for (unsigned w : {1u, 3u, 5u, 8u}) {
        const TwosComplementer tc(w);
        const std::uint64_t mod = std::uint64_t{1} << w;
        for (std::uint64_t a = 0; a < mod; ++a)
            EXPECT_EQ(tc.complement(a), (mod - a) % mod);
    }
}

TEST(TsdtDecoder, TruthTableMatchesFunctionalModel)
{
    // All 8 (parity, dest bit, state bit) combinations, checked
    // against tsdtLinkKind at a matching switch.
    const unsigned n = 3;
    for (unsigned p = 0; p < 2; ++p) {
        for (unsigned b = 0; b < 2; ++b) {
            for (unsigned s = 0; s < 2; ++s) {
                const auto sel = TsdtDecoder::evaluate(p, b, s);
                EXPECT_EQ(sel.straight + sel.plus + sel.minus, 1);
                // Switch with bit 1 == p at stage 1.
                const Label j = static_cast<Label>(p << 1);
                const core::TsdtTag tag(
                    n, static_cast<Label>(b << 1),
                    static_cast<Label>(s << 1));
                EXPECT_EQ(TsdtDecoder::kindOf(sel),
                          core::tsdtLinkKind(j, 1, tag))
                    << "p=" << p << " b=" << b << " s=" << s;
            }
        }
    }
}

TEST(SsdtSwitchLogic, MatchesRouterExhaustively)
{
    // All (parity, state, tag, blockage-pattern) combinations
    // against the functional SSDT repair rule.
    for (unsigned p = 0; p < 2; ++p) {
        for (unsigned st = 0; st < 2; ++st) {
            for (unsigned t = 0; t < 2; ++t) {
                for (unsigned blk = 0; blk < 8; ++blk) {
                    const bool bs = blk & 1, bp = blk & 2,
                               bm = blk & 4;
                    const auto out = SsdtSwitch::evaluate(
                        p, st == 1, t, bs, bp, bm);
                    // Functional reference.
                    const Label j = static_cast<Label>(p);
                    const auto state = st
                                           ? core::SwitchState::Cbar
                                           : core::SwitchState::C;
                    const auto kind =
                        core::linkKindFor(j, t, 0, state);
                    if (kind == LinkKind::Straight) {
                        EXPECT_EQ(out.kind, LinkKind::Straight);
                        EXPECT_EQ(out.fail, bs);
                        EXPECT_FALSE(out.toggled);
                    } else {
                        const bool first_blocked =
                            (kind == LinkKind::Plus) ? bp : bm;
                        if (!first_blocked) {
                            EXPECT_EQ(out.kind, kind);
                            EXPECT_FALSE(out.toggled);
                            EXPECT_FALSE(out.fail);
                        } else {
                            EXPECT_TRUE(out.toggled);
                            EXPECT_NE(out.kind, kind);
                            EXPECT_NE(out.kind, LinkKind::Straight);
                            const bool spare_blocked =
                                (out.kind == LinkKind::Plus) ? bp
                                                             : bm;
                            EXPECT_EQ(out.fail, spare_blocked);
                        }
                    }
                }
            }
        }
    }
}

TEST(GateCounts, SdtSwitchesAreConstantInN)
{
    // The decoder and the SSDT repair logic do not depend on N at
    // all; this is the paper's O(1) hardware claim.
    EXPECT_LT(SsdtSwitch::gates().equivalents(), 40u);
    EXPECT_LT(TsdtSwitch::gates().equivalents(), 25u);
}

TEST(GateCounts, DistanceTagSwitchesGrowWithN)
{
    unsigned prev2c = 0, prevda = 0, preveb = 0;
    for (unsigned n = 3; n <= 16; ++n) {
        const auto c2c = TwosComplementSwitch(n).gates();
        const auto cda = DigitAdditionSwitch(n).gates();
        const auto ceb = ExtraTagBitSwitch(n).gates();
        EXPECT_GT(c2c.equivalents(), prev2c);
        EXPECT_GT(cda.equivalents(), prevda);
        EXPECT_GT(ceb.equivalents(), preveb);
        prev2c = c2c.equivalents();
        prevda = cda.equivalents();
        preveb = ceb.equivalents();
        // And the SDT switches stay strictly cheaper.
        EXPECT_LT(SsdtSwitch::gates().equivalents(),
                  c2c.equivalents());
        EXPECT_LT(TsdtSwitch::gates().equivalents(),
                  cda.equivalents());
    }
}

TEST(GateCounts, RewriteMatchesTwosComplement)
{
    const TwosComplementSwitch sw(4);
    for (std::uint64_t m = 0; m < 32; ++m)
        EXPECT_EQ(sw.rewriteMagnitude(m), (32 - m) % 32);
}

TEST(GateCounts, StrMentionsEquivalents)
{
    const auto s = SsdtSwitch::gates().str();
    EXPECT_NE(s.find("gate eq."), std::string::npos);
}

} // namespace
} // namespace iadm
