/**
 * @file
 * Cross-module integration tests: every router the library offers
 * must tell a single consistent story on shared fault instances,
 * and the simulator must honor the core routing machinery.
 */

#include <gtest/gtest.h>

#include "baselines/redundant_number.hpp"
#include "core/distributed.hpp"
#include "core/oracle.hpp"
#include "core/reroute.hpp"
#include "core/ssdt.hpp"
#include "fault/injection.hpp"
#include "perm/multipass.hpp"
#include "sim/network_sim.hpp"
#include "subgraph/reconfigure.hpp"

namespace iadm {
namespace {

using topo::IadmTopology;

TEST(Integration, AllCompleteRoutersAgreeWithOracle)
{
    // REROUTE, the dynamic walk and the exhaustive redundant-number
    // search are all complete: on any instance they must agree with
    // the BFS oracle and with each other.
    IadmTopology topo(16);
    Rng rng(1001);
    for (int trial = 0; trial < 300; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, rng.uniform(30), rng);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        const bool oracle = core::oracleReachable(topo, fs, s, d);
        EXPECT_EQ(core::universalRoute(topo, fs, s, d).ok, oracle);
        EXPECT_EQ(core::distributedRoute(topo, fs, s, d).delivered,
                  oracle);
        EXPECT_EQ(
            baselines::redundantNumberRoute(topo, fs, s, d).delivered,
            oracle);
    }
}

TEST(Integration, SsdtSuccessImpliesRerouteSuccess)
{
    // SSDT covers a subset of what REROUTE covers, never more.
    IadmTopology topo(32);
    Rng rng(1002);
    for (int trial = 0; trial < 300; ++trial) {
        const auto fs = fault::randomLinkFaults(
            topo, 5 + rng.uniform(40), rng);
        core::SsdtRouter ssdt(topo);
        const auto s = static_cast<Label>(rng.uniform(32));
        const auto d = static_cast<Label>(rng.uniform(32));
        if (ssdt.route(s, d, fs).delivered) {
            EXPECT_TRUE(core::universalRoute(topo, fs, s, d).ok);
        }
    }
}

TEST(Integration, ReconfiguredSubgraphRoutesSurviveReroute)
{
    // Any path inside a fault-free cube subgraph is also a REROUTE-
    // compatible path: tracing its tag must avoid the faults.
    IadmTopology topo(16);
    Rng rng(1003);
    for (int trial = 0; trial < 100; ++trial) {
        const auto fs =
            fault::randomNonstraightFaults(topo, 3, rng);
        const auto g = subgraph::reconfigureAroundFaults(topo, fs);
        if (!g)
            continue;
        for (int k = 0; k < 10; ++k) {
            const auto s = static_cast<Label>(rng.uniform(16));
            const auto d = static_cast<Label>(rng.uniform(16));
            const auto path = g->route(s, d);
            EXPECT_TRUE(path.isBlockageFree(fs));
            // The same path expressed as a TSDT tag re-traces.
            const auto tag = core::tagForPath(path, 4);
            EXPECT_EQ(core::tsdtTrace(s, tag, 16), path);
        }
    }
}

TEST(Integration, MultipassWavesAreRealizableAsTags)
{
    IadmTopology topo(16);
    Rng rng(1004);
    const auto p = perm::randomPerm(16, rng);
    const auto res = perm::routeInPasses(topo, p);
    ASSERT_TRUE(res.ok);
    for (const perm::Wave &w : res.waves) {
        for (const core::Path &path : w.paths) {
            const auto tag = core::tagForPath(path, 4);
            EXPECT_EQ(core::tsdtTrace(path.source(), tag, 16), path);
        }
    }
}

TEST(Integration, IcubeRouteMatchesAllCStateTrace)
{
    // The bare ICube route equals the IADM's all-state-C path.
    IadmTopology iadm(32);
    topo::ICubeTopology cube(32);
    fault::FaultSet none;
    for (Label s = 0; s < 32; ++s) {
        for (Label d = 0; d < 32; ++d) {
            const auto cr = core::icubeRoute(cube, none, s, d);
            ASSERT_TRUE(cr.has_value());
            const auto path =
                core::tsdtTrace(s, core::initialTag(5, d), 32);
            for (unsigned i = 0; i <= 5; ++i)
                EXPECT_EQ(cr->switchAt(i), path.switchAt(i));
        }
    }
}

TEST(Integration, IcubeRouteFailsExactlyWhenCanonicalPathBlocked)
{
    IadmTopology iadm(16);
    topo::ICubeTopology cube(16);
    Rng rng(1005);
    for (int trial = 0; trial < 300; ++trial) {
        // Faults on cube links only (shared with the IADM).
        const auto links = cube.allLinks();
        fault::FaultSet fs;
        for (std::size_t idx :
             rng.sample(links.size(), 1 + rng.uniform(8)))
            fs.blockLink(links[idx]);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        const auto canonical =
            core::tsdtTrace(s, core::initialTag(4, d), 16);
        EXPECT_EQ(core::icubeRoute(cube, fs, s, d).has_value(),
                  canonical.isBlockageFree(fs));
    }
}

TEST(Integration, SimTsdtPacketsFollowRerouteTags)
{
    // Every packet the TSDT-sender sim delivers was driven by a tag
    // REROUTE produced against the static faults; spot-check that
    // such tags exist and avoid the faults for many random pairs.
    IadmTopology topo(16);
    Rng frng(1006);
    const auto fs = fault::randomLinkFaults(topo, 6, frng);
    sim::SimConfig cfg;
    cfg.netSize = 16;
    cfg.scheme = sim::RoutingScheme::TsdtSender;
    cfg.injectionRate = 0.2;
    cfg.seed = 9;
    sim::NetworkSim s(cfg,
                      std::make_unique<sim::UniformTraffic>(16), fs);
    s.run(2000);
    EXPECT_GT(s.metrics().delivered(), 0u);
    EXPECT_EQ(s.metrics().injected(),
              s.metrics().delivered() + s.inFlight());
}

TEST(Integration, LatencyPercentilesAreOrdered)
{
    sim::SimConfig cfg;
    cfg.netSize = 32;
    cfg.scheme = sim::RoutingScheme::SsdtBalanced;
    cfg.injectionRate = 0.45;
    cfg.seed = 10;
    sim::NetworkSim s(cfg,
                      std::make_unique<sim::UniformTraffic>(32));
    s.run(4000);
    const auto &m = s.metrics();
    ASSERT_GT(m.delivered(), 1000u);
    const auto p50 = m.latencyPercentile(0.5);
    const auto p90 = m.latencyPercentile(0.9);
    const auto p99 = m.latencyPercentile(0.99);
    EXPECT_GE(p50, 5u); // pipeline depth
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, m.maxLatency());
    EXPECT_EQ(m.latencyPercentile(0.0),
              static_cast<sim::Cycle>(5));
}

TEST(Integration, SwitchFaultEqualsAllInputLinkFaults)
{
    // The paper's switch-blockage transformation, end to end: a
    // blocked switch and its three blocked input links must yield
    // identical reachability for every pair.
    IadmTopology topo(16);
    for (unsigned stage = 1; stage < 4; ++stage) {
        fault::FaultSet by_switch;
        by_switch.blockSwitch(topo, stage, 7);
        fault::FaultSet by_links;
        for (const auto &l : topo.inLinks(stage, 7))
            by_links.blockLink(l);
        for (Label s = 0; s < 16; ++s)
            for (Label d = 0; d < 16; ++d)
                EXPECT_EQ(
                    core::universalRoute(topo, by_switch, s, d).ok,
                    core::universalRoute(topo, by_links, s, d).ok);
    }
}

} // namespace
} // namespace iadm
