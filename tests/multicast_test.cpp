/**
 * @file
 * Multicast-tree tests: coverage, cost, merge-freedom, and the
 * sign-choice fault avoidance.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/multicast.hpp"
#include "fault/injection.hpp"

namespace iadm {
namespace {

using core::buildMulticastTree;
using core::MulticastTree;
using topo::IadmTopology;
using topo::LinkKind;

TEST(Multicast, SingleDestinationEqualsUnicastCost)
{
    IadmTopology topo(16);
    fault::FaultSet none;
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            const auto t = buildMulticastTree(topo, none, s, {d});
            ASSERT_TRUE(t.has_value());
            EXPECT_EQ(t->linkCount(), topo.stages());
            EXPECT_EQ(t->coverage(16), std::set<Label>{d});
        }
    }
}

TEST(Multicast, FullBroadcastCoversEveryOutput)
{
    IadmTopology topo(16);
    fault::FaultSet none;
    std::vector<Label> all(16);
    for (Label d = 0; d < 16; ++d)
        all[d] = d;
    for (Label s : {0u, 5u, 15u}) {
        const auto t = buildMulticastTree(topo, none, s, all);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->coverage(16).size(), 16u);
        // A binomial broadcast uses 2^{i+1} links at stage i:
        // total 2 + 4 + 8 + 16 = 2N - 2.
        EXPECT_EQ(t->linkCount(), 2u * 16 - 2);
    }
}

TEST(Multicast, RandomSubsetsCoverExactly)
{
    IadmTopology topo(64);
    fault::FaultSet none;
    Rng rng(91);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = static_cast<Label>(rng.uniform(64));
        std::set<Label> want;
        const auto k = 1 + rng.uniform(12);
        while (want.size() < k)
            want.insert(static_cast<Label>(rng.uniform(64)));
        const std::vector<Label> dests(want.begin(), want.end());
        const auto t = buildMulticastTree(topo, none, s, dests);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->coverage(64), want);
        // Cost bounds: at least n (one path) and at most n * |D|
        // (separate unicasts); sharing must help for clustered
        // sets.
        EXPECT_GE(t->linkCount(), topo.stages());
        EXPECT_LE(t->linkCount(), topo.stages() * want.size());
    }
}

TEST(Multicast, SharingBeatsSeparateUnicasts)
{
    // Destinations {j, j+N/2} share all but the last stage.
    IadmTopology topo(32);
    fault::FaultSet none;
    const auto t = buildMulticastTree(topo, none, 3, {7, 7 + 16});
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->linkCount(), topo.stages() + 1);
}

TEST(Multicast, AvoidsBlockedNonstraightBySignChoice)
{
    IadmTopology topo(16);
    // Broadcast from 0; block the +1 link at stage 0 (the natural
    // divergence link): the builder must take -1 instead.
    fault::FaultSet fs;
    fs.blockLink(topo.plusLink(0, 0));
    std::vector<Label> all(16);
    for (Label d = 0; d < 16; ++d)
        all[d] = d;
    const auto t = buildMulticastTree(topo, fs, 0, all);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->coverage(16).size(), 16u);
    for (const auto &stage_links : t->links)
        for (const auto &l : stage_links)
            EXPECT_FALSE(fs.isBlocked(l));
}

TEST(Multicast, FailsWhenBothSignsDead)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.plusLink(0, 0));
    fs.blockLink(topo.minusLink(0, 0));
    // 0 -> 1 must flip bit 0 at stage 0.
    EXPECT_FALSE(buildMulticastTree(topo, fs, 0, {1}).has_value());
    // But 0 -> {0} (all-straight) still works.
    EXPECT_TRUE(buildMulticastTree(topo, fs, 0, {0}).has_value());
}

TEST(Multicast, FailsOnMandatoryStraightBlockage)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.straightLink(1, 0));
    // 0 -> {0}: the all-straight path is forced.
    EXPECT_FALSE(buildMulticastTree(topo, fs, 0, {0}).has_value());
}

TEST(Multicast, TreeLinksNeverDuplicate)
{
    IadmTopology topo(32);
    fault::FaultSet none;
    Rng rng(92);
    for (int trial = 0; trial < 100; ++trial) {
        std::set<Label> want;
        while (want.size() < 8)
            want.insert(static_cast<Label>(rng.uniform(32)));
        const auto t = buildMulticastTree(
            topo, none, static_cast<Label>(rng.uniform(32)),
            {want.begin(), want.end()});
        ASSERT_TRUE(t.has_value());
        std::set<std::uint64_t> keys;
        for (const auto &stage_links : t->links)
            for (const auto &l : stage_links)
                EXPECT_TRUE(keys.insert(l.key()).second);
    }
}

} // namespace
} // namespace iadm
