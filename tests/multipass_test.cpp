/**
 * @file
 * Multi-pass permutation scheduling tests.
 */

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "perm/multipass.hpp"

namespace iadm {
namespace {

using namespace perm;
using topo::IadmTopology;

/** Validate a schedule: coverage, disjointness, fault avoidance. */
void
validateSchedule(const IadmTopology &topo, const Permutation &p,
                 const fault::FaultSet &faults,
                 const MultipassResult &res)
{
    std::vector<bool> covered(p.size(), false);
    for (const Wave &w : res.waves) {
        ASSERT_EQ(w.sources.size(), w.paths.size());
        EXPECT_FALSE(w.sources.empty());
        EXPECT_TRUE(pathsSwitchDisjoint(w.paths));
        for (std::size_t k = 0; k < w.sources.size(); ++k) {
            const Label s = w.sources[k];
            EXPECT_FALSE(covered[s]) << "source scheduled twice";
            covered[s] = true;
            const core::Path &path = w.paths[k];
            path.validate(topo);
            EXPECT_EQ(path.source(), s);
            EXPECT_EQ(path.destination(), p(s));
            EXPECT_TRUE(path.isBlockageFree(faults));
        }
    }
    if (res.ok) {
        for (Label s = 0; s < p.size(); ++s)
            EXPECT_TRUE(covered[s]) << "source " << s << " missing";
    }
}

TEST(Multipass, AdmissiblePermutationsTakeOnePass)
{
    IadmTopology topo(16);
    for (const Permutation &p :
         {Permutation(16), shiftPerm(16, 7),
          bitComplementPerm(16, 5)}) {
        const auto res = routeInPasses(topo, p);
        ASSERT_TRUE(res.ok);
        EXPECT_EQ(res.passes(), 1u);
        validateSchedule(topo, p, {}, res);
    }
}

TEST(Multipass, BitReversalTakesFewPasses)
{
    IadmTopology topo(16);
    const auto p = bitReversalPerm(16);
    const auto res = routeInPasses(topo, p);
    ASSERT_TRUE(res.ok);
    EXPECT_GE(res.passes(), 2u);
    EXPECT_LE(res.passes(), 4u);
    validateSchedule(topo, p, {}, res);
}

TEST(Multipass, RandomPermutationsScheduleCompletely)
{
    IadmTopology topo(32);
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        const auto p = randomPerm(32, rng);
        const auto res = routeInPasses(topo, p);
        ASSERT_TRUE(res.ok);
        EXPECT_LE(res.passes(), 6u);
        validateSchedule(topo, p, {}, res);
    }
}

TEST(Multipass, RoutesAroundFaults)
{
    IadmTopology topo(16);
    Rng rng(4);
    unsigned complete = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const auto fs = fault::randomLinkFaults(topo, 6, rng);
        const auto p = randomPerm(16, rng);
        const auto res = routeInPasses(topo, p, fs);
        validateSchedule(topo, p, fs, res);
        complete += res.ok;
    }
    // Most 6-fault patterns leave every pair connected.
    EXPECT_GT(complete, 30u);
}

TEST(Multipass, DisconnectedPairReportsFailure)
{
    IadmTopology topo(8);
    fault::FaultSet fs;
    // Cut all outputs of source 3.
    for (const auto &l : topo.outLinks(0, 3))
        fs.blockLink(l);
    const auto res = routeInPasses(topo, Permutation(8), fs);
    EXPECT_FALSE(res.ok);
    // Everything else still got scheduled.
    std::size_t scheduled = 0;
    for (const Wave &w : res.waves)
        scheduled += w.sources.size();
    EXPECT_EQ(scheduled, 7u);
}

TEST(Multipass, LargeNetwork)
{
    IadmTopology topo(128);
    Rng rng(5);
    const auto p = randomPerm(128, rng);
    const auto res = routeInPasses(topo, p);
    ASSERT_TRUE(res.ok);
    EXPECT_LE(res.passes(), 8u);
    validateSchedule(topo, p, {}, res);
}

} // namespace
} // namespace iadm
