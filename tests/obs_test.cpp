/**
 * @file
 * Unit tests for the observability subsystem (src/obs/): the
 * TraceSink ring buffer, the StatsRegistry, both trace exporters,
 * the snapshot reconstructor, and the non-perturbation guarantees
 * the golden sweep fixtures rely on (attaching a sink must never
 * change simulation results; the stats / latency_capped report
 * fields must stay absent by default).
 */

#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json_writer.hpp"
#include "obs/inspector.hpp"
#include "obs/stats.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_sink.hpp"
#include "sim/metrics.hpp"
#include "sim/network_sim.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace iadm;
using obs::EventKind;
using obs::TraceEvent;
using obs::TraceSink;

TEST(TraceSink, LayoutIsPinned)
{
    // The hot record() is a 24-byte store; growth dilates the ring.
    EXPECT_EQ(sizeof(TraceEvent), 24u);
    EXPECT_TRUE(std::is_trivially_copyable_v<TraceEvent>);
}

TEST(TraceSink, RecordAndSnapshot)
{
    TraceSink sink(8);
    EXPECT_EQ(sink.capacity(), 8u);
    EXPECT_EQ(sink.size(), 0u);

    for (std::uint64_t k = 0; k < 5; ++k)
        sink.record(EventKind::Hop, /*packet=*/k, /*cycle=*/k * 2,
                    /*stage=*/1, /*sw=*/3, /*link=*/0, /*aux=*/4,
                    /*tag_dest=*/7, /*tag_state=*/1);
    EXPECT_EQ(sink.size(), 5u);
    EXPECT_EQ(sink.recorded(), 5u);
    EXPECT_EQ(sink.droppedOldest(), 0u);

    const auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t k = 0; k < 5; ++k) {
        EXPECT_EQ(events[k].packet, k);
        EXPECT_EQ(events[k].cycle, k * 2);
        EXPECT_EQ(events[k].kind, EventKind::Hop);
        EXPECT_EQ(events[k].sw, 3u);
        EXPECT_EQ(events[k].aux, 4u);
        EXPECT_EQ(events[k].tagDest, 7u);
        EXPECT_EQ(events[k].tagState, 1u);
    }
}

TEST(TraceSink, WrapDropsOldestKeepsNewest)
{
    TraceSink sink(4);
    for (std::uint64_t k = 0; k < 11; ++k)
        sink.record(EventKind::Inject, k, k, 0, 0,
                    TraceEvent::kNoLink, 0, 0, 0);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.recorded(), 11u);
    EXPECT_EQ(sink.droppedOldest(), 7u);

    // The retained window is the newest events, oldest first.
    const auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint64_t k = 0; k < 4; ++k)
        EXPECT_EQ(events[k].packet, 7 + k);
}

TEST(TraceSink, CapacityRoundsUpToPowerOfTwo)
{
    TraceSink sink(5);
    EXPECT_EQ(sink.capacity(), 8u);
}

TEST(TraceSink, ClearForgetsEventsKeepsCapacity)
{
    TraceSink sink(8);
    sink.record(EventKind::Hop, 1, 1, 0, 0, 0, 0, 0, 0);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.capacity(), 8u);
    EXPECT_TRUE(sink.snapshot().empty());
}

TEST(StatsRegistry, RegistrationOrderAndLookup)
{
    obs::StatsRegistry reg;
    reg.counter("sim.delivered", 42);
    reg.scalar("sim.avg_latency", 4.5);
    reg.vector("sim.stalls_by_stage", {1, 2, 3});
    reg.histogram("sim.latency_hist", {0, 0, 5, 1});

    ASSERT_EQ(reg.size(), 4u);
    EXPECT_EQ(reg.entries()[0].name, "sim.delivered");
    EXPECT_EQ(reg.entries()[3].name, "sim.latency_hist");

    const auto *e = reg.find("sim.delivered");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->counter, 42u);
    EXPECT_EQ(reg.find("no.such.stat"), nullptr);
}

TEST(StatsRegistry, TextAndJsonRenderings)
{
    obs::StatsRegistry reg;
    reg.counter("a.count", 7);
    reg.scalar("a.rate", 0.5);
    reg.vector("a.vec", {4, 5});
    reg.histogram("a.hist", {0, 3, 0, 2});

    const std::string text = reg.str();
    EXPECT_NE(text.find("a.count 7"), std::string::npos);
    EXPECT_NE(text.find("a.vec 4 5"), std::string::npos);
    // Histograms render sparsely: zero buckets are skipped.
    EXPECT_NE(text.find("a.hist 1:3 3:2"), std::string::npos);

    std::ostringstream os;
    {
        JsonWriter w(os);
        reg.writeJson(w);
    }
    const std::string json = os.str();
    EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"a.rate\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"a.vec\": ["), std::string::npos);
    // Histogram pairs are sparse: buckets 1 and 3, never 0 or 2.
    EXPECT_NE(json.find("\"a.hist\": ["), std::string::npos);
    const std::size_t hist_at = json.find("\"a.hist\"");
    EXPECT_EQ(json.find("0,", hist_at), std::string::npos);
}

/** Fill a sink with a deterministic mixed-kind event sequence. */
void
fillSample(TraceSink &sink)
{
    sink.record(EventKind::Inject, 1, 0, 0, 5, TraceEvent::kNoLink,
                0, 12, 1);
    sink.record(EventKind::Hop, 1, 1, 0, 5, 1, 6, 12, 1);
    sink.record(EventKind::Stall, 2, 1, 0, 3, 0, 3, 9, 0);
    sink.record(EventKind::Reroute, 1, 1, 1, 6, 2, 1, 12, 3);
    sink.record(EventKind::Deliver, 1, 4, 3, 12, 0, 12, 12, 1);
}

TEST(TraceExport, ChromeDocumentShape)
{
    TraceSink sink(16);
    fillSample(sink);

    std::ostringstream os;
    obs::writeChromeTrace(os, sink, {16, 4, "tsdt"});
    const std::string doc = os.str();

    // Structural sanity a Chrome/Perfetto loader requires.
    EXPECT_EQ(doc.front(), '{');
    for (const char *needle :
         {"\"traceEvents\"", "\"displayTimeUnit\"",
          "\"ph\": \"X\"", "\"ph\": \"i\"", "\"pid\": 1",
          "\"name\": \"inject\"", "\"name\": \"deliver\"",
          "\"cat\": \"stage0\"", "\"cat\": \"stage3\"",
          "\"iadm-trace-chrome-v1\""})
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle;

    // Balanced braces/brackets => no truncated emission.
    long depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const char c = doc[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(TraceExport, BinaryRoundTrip)
{
    TraceSink sink(16);
    fillSample(sink);

    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    obs::writeBinaryTrace(ss, sink, {16, 4, "tsdt"});

    const auto back = obs::readBinaryTrace(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->meta.netSize, 16u);
    EXPECT_EQ(back->meta.stages, 4u);
    EXPECT_EQ(back->meta.scheme, "tsdt");

    const auto orig = sink.snapshot();
    ASSERT_EQ(back->events.size(), orig.size());
    for (std::size_t k = 0; k < orig.size(); ++k) {
        EXPECT_EQ(back->events[k].packet, orig[k].packet);
        EXPECT_EQ(back->events[k].cycle, orig[k].cycle);
        EXPECT_EQ(back->events[k].kind, orig[k].kind);
        EXPECT_EQ(back->events[k].sw, orig[k].sw);
        EXPECT_EQ(back->events[k].link, orig[k].link);
    }
}

TEST(TraceExport, BinaryRejectsCorruption)
{
    TraceSink sink(16);
    fillSample(sink);
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    obs::writeBinaryTrace(ss, sink, {16, 4, "tsdt"});
    std::string doc = ss.str();

    // Bad magic.
    std::string bad = doc;
    bad[0] ^= 0x5a;
    std::istringstream is1(bad);
    EXPECT_FALSE(obs::readBinaryTrace(is1).has_value());

    // Truncated mid-event.
    std::istringstream is2(doc.substr(0, doc.size() - 7));
    EXPECT_FALSE(obs::readBinaryTrace(is2).has_value());
}

TEST(Inspector, SnapshotReconstructsOccupancy)
{
    TraceSink sink(64);
    // Packet 1: injected at stage-0 switch 5 on cycle 0, then one
    // hop per cycle 5 -> 4 -> 4 -> 12, delivered on cycle 4.
    // Packet 2: injected at switch 3 on cycle 1, still queued at
    // stage 0 afterwards.  Packet 3: throttled (never enqueued).
    sink.record(EventKind::Inject, 1, 0, 0, 5, TraceEvent::kNoLink,
                0, 12, 0);
    sink.record(EventKind::Hop, 1, 1, 0, 5, 2, 4, 12, 0);
    sink.record(EventKind::StateFlip, 1, 1, 1, 4, 1, 1, 12, 2);
    sink.record(EventKind::Inject, 2, 1, 0, 3, TraceEvent::kNoLink,
                0, 9, 0);
    sink.record(EventKind::Drop, 3, 1, 0, 7, TraceEvent::kNoLink, 0,
                1, 0, TraceEvent::kFlagNotEnqueued);
    // Future events: must not affect a cycle-1 snapshot.
    sink.record(EventKind::Hop, 1, 2, 1, 4, 0, 4, 12, 0);
    sink.record(EventKind::Hop, 1, 3, 2, 4, 1, 12, 12, 0);
    sink.record(EventKind::Deliver, 1, 4, 3, 12, 1, 12, 12, 0);

    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    obs::writeBinaryTrace(ss, sink, {16, 4, "tsdt"});
    const auto trace = obs::readBinaryTrace(ss);
    ASSERT_TRUE(trace.has_value());

    const auto snap = obs::queueSnapshot(*trace, 1);
    EXPECT_EQ(snap.cycle, 1u);
    EXPECT_EQ(snap.netSize, 16u);
    ASSERT_EQ(snap.depth.size(), 4u);
    EXPECT_EQ(snap.inFlight, 2u); // packets 1 and 2
    EXPECT_EQ(snap.depth[0][5], 0u); // packet 1 left stage 0
    EXPECT_EQ(snap.depth[1][4], 1u); // ... and arrived at stage 1
    EXPECT_EQ(snap.depth[0][3], 1u); // packet 2 still queued
    EXPECT_EQ(snap.depth[0][7], 0u); // packet 3 was never enqueued
    EXPECT_EQ(snap.state[1][4], 1);  // StateFlip left Cbar
    EXPECT_EQ(snap.state[0][5], -1); // untouched => unknown

    // The rendering mentions the heatmap rows.
    const std::string text = obs::printSnapshot(snap);
    EXPECT_NE(text.find("S0"), std::string::npos);
    EXPECT_NE(text.find("in-flight=2"), std::string::npos);

    // After the deliver event the packet leaves the network.
    EXPECT_EQ(obs::queueSnapshot(*trace, 4).inFlight, 1u);
}

TEST(Metrics, LatencyCapSetsHonestyFlag)
{
    sim::Metrics m(16, 4);
    sim::Packet p;
    p.injected = 0;

    m.recordDelivered(p, 10);
    EXPECT_FALSE(m.latencyCapped());

    m.recordDelivered(p, sim::Metrics::latencyCap() + 50);
    EXPECT_TRUE(m.latencyCapped());
    // The overflow bucket clamps the percentile to the cap.
    EXPECT_EQ(m.latencyPercentile(1.0), sim::Metrics::latencyCap());
}

TEST(Metrics, ZeroSampleGuardsOnPartialData)
{
    // A metrics object with traffic on some stages but none on
    // others: the untouched stages must read 0, not NaN/UB.
    sim::Metrics m(16, 4);
    topo::IadmTopology net(16);
    m.recordHop(net.plusLink(0, 1));
    m.sampleQueueDepth(0, 3);

    EXPECT_GT(m.nonstraightImbalance(0), 0.0);
    EXPECT_DOUBLE_EQ(m.avgQueueDepth(0), 3.0);
    for (unsigned s = 1; s < 4; ++s) {
        EXPECT_DOUBLE_EQ(m.nonstraightImbalance(s), 0.0);
        EXPECT_DOUBLE_EQ(m.avgQueueDepth(s), 0.0);
    }
    EXPECT_DOUBLE_EQ(m.avgLatency(), 0.0); // nothing delivered
    EXPECT_EQ(m.latencyPercentile(0.99), 0u);
}

TEST(Metrics, ExportStatsRegistersSimNames)
{
    sim::Metrics m(16, 4);
    sim::Packet p;
    p.injected = 2;
    m.recordInjected();
    m.recordDelivered(p, 6);
    m.recordStall(1);

    obs::StatsRegistry reg;
    m.exportStats(reg, 100);
    const auto *delivered = reg.find("sim.delivered");
    ASSERT_NE(delivered, nullptr);
    EXPECT_EQ(delivered->counter, 1u);
    ASSERT_NE(reg.find("sim.stalls_by_stage"), nullptr);
    EXPECT_EQ(reg.find("sim.stalls_by_stage")->values[1], 1u);
    ASSERT_NE(reg.find("sim.latency_hist"), nullptr);
    EXPECT_EQ(reg.find("sim.latency_hist")->values[4], 1u);
    ASSERT_NE(reg.find("sim.latency_capped"), nullptr);
    EXPECT_EQ(reg.find("sim.latency_capped")->counter, 0u);
}

/** One small deterministic sweep, optionally with sinks attached. */
std::string
sweepReport(std::size_t trace_capacity, bool include_stats)
{
    sim::SweepGrid grid;
    grid.netSizes = {16};
    grid.schemes = {sim::RoutingScheme::TsdtDynamic};
    grid.injectionRates = {0.3};
    grid.faults = {
        *sim::FaultScenario::parse("links:3"),
    };
    grid.replicates = 2;
    grid.warmupCycles = 50;
    grid.measureCycles = 300;
    grid.masterSeed = 7;

    sim::SweepOptions opts;
    opts.traceCapacity = trace_capacity;
    std::uint64_t traced_events = 0;
    if (trace_capacity != 0) {
        opts.onReplicateTrace = [&traced_events](
                                    const sim::SweepCell &, unsigned,
                                    const obs::TraceSink &sink,
                                    const sim::NetworkSim &) {
            traced_events += sink.recorded();
        };
    }
    const auto results = sim::runSweep(grid, opts);
    sim::ReportOptions ropts;
    ropts.includeStats = include_stats;
    const std::string doc =
        sim::sweepReportJson(grid, results, ropts);
    if (trace_capacity != 0 && obs::traceCompiledIn()) {
        EXPECT_GT(traced_events, 0u);
    }
    return doc;
}

TEST(SweepObservability, AttachedSinkDoesNotPerturbResults)
{
    // The golden-fixture guarantee: tracing is an observer.  The
    // report with per-replicate sinks attached is byte-identical to
    // the report without them.
    const std::string plain = sweepReport(0, false);
    const std::string traced = sweepReport(1 << 14, false);
    EXPECT_EQ(plain, traced);

    // And the default document never contains the optional keys.
    EXPECT_EQ(plain.find("\"stats\""), std::string::npos);
    EXPECT_EQ(plain.find("\"latency_capped\""), std::string::npos);
}

TEST(SweepObservability, StatsSectionIsAdditive)
{
    const std::string plain = sweepReport(0, false);
    const std::string with_stats = sweepReport(0, true);
    EXPECT_NE(with_stats.find("\"stats\""), std::string::npos);
    EXPECT_NE(with_stats.find("\"sim.delivered\""),
              std::string::npos);

    // Removing every stats object (from the comma before its key to
    // its matching close brace) yields the plain document: the
    // section is purely additive.
    std::string stripped = with_stats;
    for (std::size_t at = stripped.find("\"stats\"");
         at != std::string::npos;
         at = stripped.find("\"stats\"", at)) {
        const std::size_t comma = stripped.rfind(',', at);
        ASSERT_NE(comma, std::string::npos);
        std::size_t end = stripped.find('{', at);
        ASSERT_NE(end, std::string::npos);
        for (long depth = 1; depth != 0;) {
            ++end;
            ASSERT_LT(end, stripped.size());
            if (stripped[end] == '{')
                ++depth;
            else if (stripped[end] == '}')
                --depth;
        }
        stripped.erase(comma, end - comma + 1);
        at = comma;
    }
    EXPECT_EQ(stripped, plain);
}

} // namespace
