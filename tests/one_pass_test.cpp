/**
 * @file
 * Exact one-pass passability tests (the [19]-style question for
 * the IADM/Gamma network).
 */

#include <gtest/gtest.h>

#include "perm/multipass.hpp"
#include "perm/one_pass.hpp"

namespace iadm {
namespace {

using namespace perm;
using topo::IadmTopology;

TEST(OnePass, WitnessesAreValidAndDisjoint)
{
    IadmTopology topo(16);
    Rng rng(61);
    unsigned passable = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const auto p = randomPerm(16, rng);
        const auto w = onePassWitness(topo, p);
        if (!w)
            continue;
        ++passable;
        ASSERT_EQ(w->size(), 16u);
        EXPECT_TRUE(pathsSwitchDisjoint(*w));
        for (Label s = 0; s < 16; ++s) {
            (*w)[s].validate(topo);
            EXPECT_EQ((*w)[s].source(), s);
            EXPECT_EQ((*w)[s].destination(), p(s));
        }
    }
    // Random permutations at N=16 are rarely passable; the suite
    // only requires that any found witness is sound.
    SUCCEED() << passable << " passable";
}

TEST(OnePass, SubgraphPassableImpliesExactlyPassable)
{
    IadmTopology topo(16);
    Rng rng(62);
    for (int trial = 0; trial < 40; ++trial) {
        Permutation base(16);
        do {
            base = randomPerm(16, rng);
        } while (!isICubeAdmissible(base));
        EXPECT_TRUE(onePassPassable(topo, base));
    }
}

TEST(OnePass, CensusN4AllPermutationsPass)
{
    const auto c = onePassCensus(4);
    EXPECT_EQ(c.permutations, 24u);
    EXPECT_EQ(c.viaSubgraph, 24u);
    EXPECT_EQ(c.exactlyPassable, 24u);
}

TEST(OnePass, CensusN8QuantifiesTheGap)
{
    // The Section 6 cube-subgraph family certifies 13696 of the
    // 40320 permutations; the IADM's true one-pass set is nearly
    // twice as large (26496) — redundant paths beyond any single
    // cube subgraph do real work.
    const auto c = onePassCensus(8);
    EXPECT_EQ(c.permutations, 40320u);
    EXPECT_EQ(c.viaSubgraph, 13696u);
    EXPECT_EQ(c.exactlyPassable, 26496u);
}

TEST(OnePass, BitReversalAndShuffleNotOnePassAtN8)
{
    IadmTopology topo(8);
    EXPECT_FALSE(onePassPassable(topo, bitReversalPerm(8)));
    EXPECT_FALSE(onePassPassable(topo, perfectShufflePerm(8)));
    // Consistency: the greedy scheduler therefore needs >= 2 waves.
    EXPECT_GE(routeInPasses(topo, bitReversalPerm(8)).passes(), 2u);
}

TEST(OnePass, ExactDominatesGreedySinglePass)
{
    // If the greedy multipass scheduler finishes in one wave, the
    // exact decision must agree (greedy success is a witness).
    IadmTopology topo(8);
    Rng rng(63);
    for (int trial = 0; trial < 200; ++trial) {
        const auto p = randomPerm(8, rng);
        const auto mp = routeInPasses(topo, p);
        if (mp.ok && mp.passes() == 1) {
            EXPECT_TRUE(onePassPassable(topo, p));
        }
    }
}

} // namespace
} // namespace iadm
