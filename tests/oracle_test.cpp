/**
 * @file
 * Oracle tests: BFS reachability/path search and exhaustive path
 * enumeration, cross-checked against the Parker-Raghavendra
 * representation count and the paper's Figure 7.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/redundant_number.hpp"
#include "common/modmath.hpp"
#include "core/oracle.hpp"
#include "fault/injection.hpp"
#include "topology/iadm.hpp"

namespace iadm {
namespace {

using core::oracleAllPaths;
using core::oracleCountPaths;
using core::oracleFindPath;
using core::oracleReachable;
using topo::IadmTopology;

TEST(Oracle, FaultFreeAlwaysReachable)
{
    IadmTopology topo(16);
    fault::FaultSet none;
    for (Label s = 0; s < 16; ++s)
        for (Label d = 0; d < 16; ++d)
            EXPECT_TRUE(oracleReachable(topo, none, s, d));
}

TEST(Oracle, FoundPathIsValidAndClear)
{
    IadmTopology topo(16);
    Rng rng(8);
    for (int trial = 0; trial < 200; ++trial) {
        const auto faults = fault::randomLinkFaults(topo, 12, rng);
        const auto s = static_cast<Label>(rng.uniform(16));
        const auto d = static_cast<Label>(rng.uniform(16));
        const auto p = oracleFindPath(topo, faults, s, d);
        if (p) {
            p->validate(topo);
            EXPECT_EQ(p->source(), s);
            EXPECT_EQ(p->destination(), d);
            EXPECT_TRUE(p->isBlockageFree(faults));
        }
    }
}

TEST(Oracle, Figure7HasFourPaths)
{
    // Figure 7: all routing paths from 1 to 0 in an N=8 IADM
    // network; the distance D = 7 has four signed-digit
    // representations: -1, (+1,-2), (+1,+2,+4), (+1,+2,-4).
    IadmTopology topo(8);
    const auto paths = oracleAllPaths(topo, 1, 0);
    EXPECT_EQ(paths.size(), 4u);
    std::set<std::vector<Label>> visited;
    for (const core::Path &p : paths) {
        std::vector<Label> sw;
        for (unsigned i = 0; i <= 3; ++i)
            sw.push_back(p.switchAt(i));
        visited.insert(sw);
    }
    EXPECT_TRUE(visited.count({1, 0, 0, 0}));
    EXPECT_TRUE(visited.count({1, 2, 0, 0}));
    EXPECT_TRUE(visited.count({1, 2, 4, 0}));
    // The fourth path uses the other physical +-4 link (1,2,4,0
    // again with the Plus link); switch sequences repeat.
    EXPECT_EQ(visited.size(), 3u);
}

TEST(Oracle, CountMatchesEnumeration)
{
    IadmTopology topo(16);
    for (Label s = 0; s < 16; ++s) {
        for (Label d = 0; d < 16; ++d) {
            EXPECT_EQ(oracleCountPaths(topo, s, d),
                      oracleAllPaths(topo, s, d).size());
        }
    }
}

TEST(Oracle, CountMatchesRedundantRepresentations)
{
    // Paths correspond 1:1 to signed-digit representations [13].
    for (Label n_size : {4u, 8u, 16u, 32u}) {
        IadmTopology topo(n_size);
        const unsigned n = topo.stages();
        for (Label s = 0; s < n_size; ++s) {
            for (Label d = 0; d < n_size; ++d) {
                const Label dist = distance(s, d, n_size);
                EXPECT_EQ(oracleCountPaths(topo, s, d),
                          baselines::countRepresentations(n, dist))
                    << "s=" << s << " d=" << d << " N=" << n_size;
            }
        }
    }
}

TEST(Oracle, IdentityPairHasOnePath)
{
    IadmTopology topo(32);
    for (Label s = 0; s < 32; ++s)
        EXPECT_EQ(oracleCountPaths(topo, s, s), 1u);
}

TEST(Oracle, AllPathsAreDistinctAndValid)
{
    IadmTopology topo(16);
    for (Label s : {0u, 3u, 7u, 12u}) {
        for (Label d = 0; d < 16; ++d) {
            const auto paths = oracleAllPaths(topo, s, d);
            std::set<std::uint64_t> keys;
            for (const core::Path &p : paths) {
                p.validate(topo);
                EXPECT_EQ(p.source(), s);
                EXPECT_EQ(p.destination(), d);
                // Identity = the multiset of link keys.
                std::uint64_t h = 1469598103934665603ull;
                for (const topo::Link &l : p.links()) {
                    h ^= l.key();
                    h *= 1099511628211ull;
                }
                EXPECT_TRUE(keys.insert(h).second)
                    << "duplicate path " << p.str();
            }
        }
    }
}

TEST(Oracle, StraightPrefixBlockageKillsReachability)
{
    // s == d: the unique path is all-straight; block any straight
    // link on it and the pair is disconnected.
    IadmTopology topo(16);
    for (unsigned i = 0; i < topo.stages(); ++i) {
        fault::FaultSet fs;
        fs.blockLink(topo.straightLink(i, 5));
        EXPECT_FALSE(oracleReachable(topo, fs, 5, 5));
        EXPECT_TRUE(oracleReachable(topo, fs, 5, 6));
    }
}

TEST(Oracle, LastStageParallelLinksAreRedundant)
{
    // Block one of the two +-2^{n-1} links: still reachable via the
    // other.
    IadmTopology topo(8);
    fault::FaultSet fs;
    fs.blockLink(topo.plusLink(2, 1));
    // 1 -> 5 requires distance 4 = +-2^2 at stage 2.
    EXPECT_TRUE(oracleReachable(topo, fs, 1, 5));
    fs.blockLink(topo.minusLink(2, 1));
    EXPECT_FALSE(oracleReachable(topo, fs, 1, 5));
}

TEST(Oracle, AlternatingBitDistanceMaximizesPathCount)
{
    // Path multiplicity equals the number of signed-digit
    // representations of D; the alternating pattern 0b010101 (= 21
    // for N = 64) maximizes it, not the all-ones distance.
    IadmTopology topo(64);
    std::uint64_t best = 0;
    Label best_d = 0;
    for (Label d = 0; d < 64; ++d) {
        const auto c = oracleCountPaths(topo, 0, d);
        if (c > best) {
            best = c;
            best_d = d;
        }
    }
    EXPECT_EQ(best_d, 21u);
    EXPECT_GT(best, oracleCountPaths(topo, 0, 63));
    // D and -D (mod N) are sign-symmetric: identical multiplicity.
    EXPECT_EQ(oracleCountPaths(topo, 0, 63),
              oracleCountPaths(topo, 0, 1));
    // A unit distance has n+1 representations: +1 at stage k after
    // k wrap-around -1 digits, 0 <= k <= n.
    EXPECT_EQ(oracleCountPaths(topo, 0, 1), 7u);
}

} // namespace
} // namespace iadm
