/**
 * @file
 * Direct unit tests for core::Path, the logging/assert machinery
 * (death tests) and the umbrella header.
 */

#include <gtest/gtest.h>

#include "iadm.hpp" // the umbrella header must self-compile

namespace iadm {
namespace {

using core::Path;
using topo::IadmTopology;
using topo::LinkKind;

Path
samplePath()
{
    // 1 -(-1)-> 0 -(0)-> 0 -(+4)-> 4 in an N=8 network.
    return Path({1, 0, 0, 4},
                {LinkKind::Minus, LinkKind::Straight, LinkKind::Plus});
}

TEST(Path, Accessors)
{
    const Path p = samplePath();
    EXPECT_EQ(p.length(), 3u);
    EXPECT_FALSE(p.empty());
    EXPECT_EQ(p.source(), 1u);
    EXPECT_EQ(p.destination(), 4u);
    EXPECT_EQ(p.switchAt(1), 0u);
    EXPECT_EQ(p.kindAt(2), LinkKind::Plus);
    const auto l = p.linkAt(0);
    EXPECT_EQ(l.stage, 0u);
    EXPECT_EQ(l.from, 1u);
    EXPECT_EQ(l.to, 0u);
    EXPECT_EQ(l.kind, LinkKind::Minus);
    EXPECT_EQ(p.links().size(), 3u);
}

TEST(Path, LastNonstraightBefore)
{
    const Path p = samplePath();
    EXPECT_EQ(p.lastNonstraightBefore(3), 2);
    EXPECT_EQ(p.lastNonstraightBefore(2), 0);
    EXPECT_EQ(p.lastNonstraightBefore(1), 0);
    EXPECT_EQ(p.lastNonstraightBefore(0), -1);
}

TEST(Path, FirstBlockedStage)
{
    IadmTopology topo(8);
    const Path p = samplePath();
    fault::FaultSet fs;
    EXPECT_EQ(p.firstBlockedStage(fs), -1);
    EXPECT_TRUE(p.isBlockageFree(fs));
    fs.blockLink(topo.plusLink(2, 0));
    EXPECT_EQ(p.firstBlockedStage(fs), 2);
    fs.blockLink(topo.minusLink(0, 1));
    EXPECT_EQ(p.firstBlockedStage(fs), 0);
    EXPECT_FALSE(p.isBlockageFree(fs));
}

TEST(Path, ValidatePassesForRealPath)
{
    IadmTopology topo(8);
    samplePath().validate(topo);
}

TEST(Path, StrMentionsOffsets)
{
    const auto s = samplePath().str();
    EXPECT_NE(s.find("-1"), std::string::npos);
    EXPECT_NE(s.find("+4"), std::string::npos);
    EXPECT_NE(s.find("(0)"), std::string::npos);
}

TEST(Path, EqualityIncludesKinds)
{
    // Same switches, different physical last-stage link: distinct.
    const Path a({1, 5, 5, 1},
                 {LinkKind::Plus, LinkKind::Straight,
                  LinkKind::Plus});
    const Path b({1, 5, 5, 1},
                 {LinkKind::Plus, LinkKind::Straight,
                  LinkKind::Minus});
    EXPECT_FALSE(a == b);
}

using PathDeathTest = ::testing::Test;

TEST(PathDeathTest, MismatchedLengthsPanic)
{
    EXPECT_DEATH(Path({1, 2}, {}), "path needs one more switch");
}

TEST(PathDeathTest, ValidateRejectsFakeHop)
{
    IadmTopology topo(8);
    // Claims a straight hop but moves.
    const Path bogus({1, 3, 3, 3},
                     {LinkKind::Straight, LinkKind::Straight,
                      LinkKind::Straight});
    EXPECT_DEATH(bogus.validate(topo), "path hop mismatch");
}

TEST(PathDeathTest, ValidateRejectsWrongLength)
{
    IadmTopology topo(16); // needs 4 link stages
    EXPECT_DEATH(samplePath().validate(topo), "path length");
}

TEST(LoggingDeathTest, AssertFires)
{
    EXPECT_DEATH(IADM_ASSERT(1 == 2, "math broke"),
                 "assertion failed");
}

TEST(LoggingDeathTest, PanicFires)
{
    EXPECT_DEATH(IADM_PANIC("boom ", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, BadNetworkSizeIsFatal)
{
    EXPECT_DEATH(
        {
            IadmTopology t(12); // not a power of two
            (void)t;
        },
        "power of two");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    IADM_WARN("this is only a drill: ", 1);
    IADM_INFORM("status ", 2);
    SUCCEED();
}

} // namespace
} // namespace iadm
