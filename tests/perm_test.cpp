/**
 * @file
 * Permutation tests: generators, cube admissibility, the Section 6
 * translation property, and one-pass IADM permutation routing with
 * and without faults.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/modmath.hpp"
#include "fault/injection.hpp"
#include "perm/admissibility.hpp"
#include "perm/perm_router.hpp"
#include "perm/permutation.hpp"

namespace iadm {
namespace {

using namespace perm;
using topo::IadmTopology;

TEST(Permutation, IdentityAndInverse)
{
    const Permutation id(8);
    EXPECT_TRUE(id.isIdentity());
    Rng rng(1);
    const Permutation p = randomPerm(16, rng);
    EXPECT_TRUE(p.compose(p.inverse()).isIdentity());
    EXPECT_TRUE(p.inverse().compose(p).isIdentity());
}

TEST(Permutation, ComposeOrder)
{
    const Permutation s = shiftPerm(8, 1);
    const Permutation r = bitReversalPerm(8);
    // (r.compose(s))(u) = r(s(u)).
    for (Label u = 0; u < 8; ++u)
        EXPECT_EQ(r.compose(s)(u), r(s(u)));
}

TEST(Permutation, TranslateRoundTrip)
{
    Rng rng(2);
    const Permutation p = randomPerm(32, rng);
    for (Label x = 0; x < 32; ++x) {
        const Permutation t = p.translated(x);
        // translated by x then by N - x is the original.
        EXPECT_EQ(t.translated(modSub(0, x, 32)), p);
    }
}

TEST(Permutation, GeneratorsAreBijections)
{
    Rng rng(3);
    // Construction validates bijectivity internally; also check a
    // couple of images.
    EXPECT_EQ(shiftPerm(16, 3)(15), 2u);
    EXPECT_EQ(bitReversalPerm(16)(1), 8u);
    EXPECT_EQ(bitComplementPerm(16, 15)(0), 15u);
    EXPECT_EQ(perfectShufflePerm(16)(9), 3u); // 1001 -> 0011
    EXPECT_EQ(exchangePerm(16, 2)(0), 4u);
    EXPECT_EQ(transposePerm(16)(0b0110), 0b1001u);
    (void)randomPerm(64, rng);
}

TEST(Permutation, BpcGenerator)
{
    // Identity bit map, no complement: identity permutation.
    const std::vector<unsigned> idmap{0, 1, 2};
    EXPECT_TRUE(bpcPerm(8, idmap, 0).isIdentity());
    // Bit reversal as a BPC.
    const std::vector<unsigned> rev{2, 1, 0};
    EXPECT_EQ(bpcPerm(8, rev, 0), bitReversalPerm(8));
    // Complement mask only.
    EXPECT_EQ(bpcPerm(8, idmap, 5), bitComplementPerm(8, 5));
}

TEST(Admissibility, IdentityAndComplementPass)
{
    for (Label n_size : {4u, 8u, 16u, 64u}) {
        EXPECT_TRUE(isICubeAdmissible(Permutation(n_size)));
        EXPECT_TRUE(isICubeAdmissible(
            bitComplementPerm(n_size, n_size - 1)));
        EXPECT_TRUE(isICubeAdmissible(exchangePerm(n_size, 0)));
    }
}

TEST(Admissibility, ShiftsPassTheICube)
{
    // Uniform shifts are cube-admissible (classic result).
    for (Label x = 0; x < 16; ++x)
        EXPECT_TRUE(isICubeAdmissible(shiftPerm(16, x)))
            << "x=" << x;
}

TEST(Admissibility, BitReversalFailsTheICube)
{
    // Bit reversal is the classic Omega/ICube-inadmissible
    // permutation for N >= 8.
    EXPECT_FALSE(isICubeAdmissible(bitReversalPerm(8)));
    EXPECT_FALSE(isICubeAdmissible(bitReversalPerm(16)));
    EXPECT_FALSE(isOmegaAdmissible(bitReversalPerm(16)));
}

TEST(Admissibility, CountsAgreeAcrossEquivalentNetworks)
{
    // Omega, Generalized Cube and ICube pass the same *number* of
    // permutations (topological equivalence, [16][20][21]) even
    // though the passable sets differ pointwise.
    unsigned icube = 0, omega = 0, gcube = 0;
    std::vector<Label> images{0, 1, 2, 3, 4, 5, 6, 7};
    do {
        const Permutation p{std::vector<Label>(images)};
        icube += isICubeAdmissible(p);
        omega += isOmegaAdmissible(p);
        gcube += isGeneralizedCubeAdmissible(p);
    } while (std::next_permutation(images.begin(), images.end()));
    EXPECT_EQ(icube, omega);
    EXPECT_EQ(icube, gcube);
    // Each network passes exactly prod_boxes 2^{boxes} = 2^{N/2*n}
    // permutations... for N=8: 2^12 = 4096.
    EXPECT_EQ(icube, 4096u);
}

TEST(Admissibility, TranslationPropertyOfSection6)
{
    // pi passes via the offset-x subgraph iff its translate is
    // ICube-admissible — and the physical paths are disjoint.
    IadmTopology topo(16);
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        const Permutation p = randomPerm(16, rng);
        const auto x = static_cast<Label>(rng.uniform(16));
        const bool pass = passableViaSubgraph(p, x);
        if (pass) {
            const subgraph::CubeSubgraph g(topo, x);
            std::vector<core::Path> paths;
            for (Label s = 0; s < 16; ++s)
                paths.push_back(g.route(s, p(s)));
            EXPECT_TRUE(pathsSwitchDisjoint(paths));
        }
    }
}

TEST(Admissibility, ShiftedCubePermsPassViaMatchingOffset)
{
    // Section 6: the IADM passes every cube-admissible permutation
    // plus the same set with x added to source and destination
    // labels.
    const Label n_size = 16;
    Rng rng(6);
    for (int trial = 0; trial < 100; ++trial) {
        // Take a random admissible permutation (rejection-sample).
        Permutation base(n_size);
        do {
            base = randomPerm(n_size, rng);
        } while (!isICubeAdmissible(base));
        for (Label x = 0; x < n_size; ++x) {
            // pi(u) = base(u - x) + x passes via the offset that
            // undoes the translation: y = N - x (the subgraph's
            // physical->logical map is logical = physical + y, so
            // pi.translated(y) = base.translated(x + y) = base).
            const Permutation shifted = base.translated(x);
            EXPECT_TRUE(passableViaSubgraph(
                shifted, modSub(0, x, n_size)));
        }
    }
}

TEST(Admissibility, OffsetsXandXPlusHalfNEquivalent)
{
    // Offsets x and x + N/2 route identically (their subgraphs
    // coincide), so passability agrees.
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        const Permutation p = randomPerm(16, rng);
        for (Label x = 0; x < 8; ++x)
            EXPECT_EQ(passableViaSubgraph(p, x),
                      passableViaSubgraph(p, x + 8));
    }
}

TEST(PermRouter, RoutesCubeAdmissiblePermutations)
{
    IadmTopology topo(16);
    for (const Permutation &p :
         {Permutation(16), shiftPerm(16, 5),
          bitComplementPerm(16, 9), exchangePerm(16, 3)}) {
        const auto res = routePermutation(topo, p);
        ASSERT_TRUE(res.ok);
        EXPECT_TRUE(pathsSwitchDisjoint(res.paths));
        for (Label s = 0; s < 16; ++s)
            EXPECT_EQ(res.paths[s].destination(), p(s));
    }
}

TEST(PermRouter, FindsNonzeroOffsetWhenNeeded)
{
    // A permutation admissible only after translation: build
    // lambda(v) = base(v) and present pi(u) = lambda(u - x) + x.
    const Label n_size = 16;
    Rng rng(8);
    Permutation base(n_size);
    do {
        base = randomPerm(n_size, rng);
    } while (!isICubeAdmissible(base) ||
             passableViaSubgraph(base.translated(3), 0));
    const Permutation pi = base.translated(3);
    IadmTopology topo(n_size);
    const auto res = routePermutation(topo, pi);
    ASSERT_TRUE(res.ok);
    EXPECT_NE(res.offset % 8, 0u);
    EXPECT_TRUE(pathsSwitchDisjoint(res.paths));
}

TEST(PermRouter, ReconfiguresAroundNonstraightFaults)
{
    // The Section 6 fault application: with a nonstraight link
    // fault, the router must pick a subgraph avoiding it and still
    // pass the (shifted) cube permutation.
    IadmTopology topo(16);
    Rng rng(9);
    unsigned routed = 0;
    for (int trial = 0; trial < 100; ++trial) {
        const auto fs = fault::randomNonstraightFaults(topo, 2, rng);
        const Permutation p = shiftPerm(16, rng.uniform(16));
        const auto res = routePermutation(topo, p, fs);
        if (!res.ok)
            continue;
        ++routed;
        for (Label s = 0; s < 16; ++s) {
            EXPECT_EQ(res.paths[s].destination(), p(s));
            EXPECT_TRUE(res.paths[s].isBlockageFree(fs));
        }
        EXPECT_TRUE(pathsSwitchDisjoint(res.paths));
    }
    EXPECT_GT(routed, 40u);
}

TEST(PermRouter, RejectsInadmissiblePermutations)
{
    IadmTopology topo(16);
    const auto res = routePermutation(topo, bitReversalPerm(16));
    // Bit reversal is not passable via any relabeling offset
    // (translation preserves its conflict structure).
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.offsetsTried, 16u);
}

} // namespace
} // namespace iadm
